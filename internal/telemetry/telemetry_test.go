package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers one counter family from many
// goroutines; run with -race. The final value must be exact.
func TestConcurrentCounters(t *testing.T) {
	reg := New()
	const workers, perWorker = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the workers resolve the handle every iteration (exercises
			// the registry map), half cache it (the hot-path pattern).
			c := reg.Counter("test.hits", "target", "vx86")
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					reg.Counter("test.hits", "target", "vx86").Inc()
				} else {
					c.Inc()
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.CounterValue("test.hits", "target", "vx86"); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.CounterValue("test.hits"); got != 0 {
		t.Fatalf("unlabeled instance = %d, want 0 (families must be distinct)", got)
	}
}

// TestConcurrentHistogram checks count/sum/min/max integrity under
// parallel observation.
func TestConcurrentHistogram(t *testing.T) {
	reg := New()
	h := reg.Histogram("test.latency")
	const workers, perWorker = 8, 5_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= perWorker; i++ {
				h.Observe(int64(w*perWorker + i))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	n := int64(workers * perWorker)
	wantSum := n * (n + 1) / 2
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Min != 1 || s.Max != n {
		t.Fatalf("min/max = %d/%d, want 1/%d", s.Min, s.Max, n)
	}
	var bktTotal uint64
	for _, c := range s.Bkt {
		bktTotal += c
	}
	if bktTotal != s.Count {
		t.Fatalf("bucket total = %d, want %d", bktTotal, s.Count)
	}
}

func TestHistogramTimer(t *testing.T) {
	reg := New()
	h := reg.Histogram("test.timer")
	stop := h.Time()
	ns := stop()
	if ns < 0 {
		t.Fatalf("negative elapsed time %d", ns)
	}
	if h.Count() != 1 || h.Sum() != ns {
		t.Fatalf("timer did not observe: count=%d sum=%d ns=%d", h.Count(), h.Sum(), ns)
	}
}

// TestRingOverflow verifies the overwrite-oldest semantics: a ring of
// capacity C retains exactly the last C events in order, and reports
// the precise drop count.
func TestRingOverflow(t *testing.T) {
	const capacity, emitted = 8, 27
	r := NewRing(capacity)
	for i := 0; i < emitted; i++ {
		r.Emit(EvCacheMiss, "k", int64(i))
	}
	if r.Total() != emitted {
		t.Fatalf("total = %d, want %d", r.Total(), emitted)
	}
	if r.Dropped() != emitted-capacity {
		t.Fatalf("dropped = %d, want %d", r.Dropped(), emitted-capacity)
	}
	evs := r.Snapshot()
	if len(evs) != capacity {
		t.Fatalf("retained = %d, want %d", len(evs), capacity)
	}
	for i, e := range evs {
		wantSeq := uint64(emitted - capacity + i)
		if e.Seq != wantSeq || e.Value != int64(wantSeq) {
			t.Fatalf("event %d: seq=%d value=%d, want seq=value=%d", i, e.Seq, e.Value, wantSeq)
		}
	}
}

func TestRingUnderfillAndZeroCap(t *testing.T) {
	r := NewRing(16)
	r.Emit(EvCacheHit, "a", 1)
	r.Emit(EvInvalidate, "b", 2)
	evs := r.Snapshot()
	if len(evs) != 2 || evs[0].Kind != EvCacheHit || evs[1].Kind != EvInvalidate {
		t.Fatalf("underfilled snapshot wrong: %+v", evs)
	}
	if got := r.Find(EvInvalidate); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("Find = %+v", got)
	}

	z := NewRing(0)
	z.Emit(EvCacheHit, "x", 0)
	if z.Total() != 1 || z.Len() != 0 || z.Dropped() != 1 {
		t.Fatalf("zero-cap ring: total=%d len=%d dropped=%d", z.Total(), z.Len(), z.Dropped())
	}
}

// TestConcurrentRing checks the ring under parallel emitters (-race)
// and that sequence numbers stay unique.
func TestConcurrentRing(t *testing.T) {
	r := NewRing(64)
	const workers, perWorker = 8, 1_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Emit(EvTrapTaken, "t", int64(i))
			}
		}()
	}
	wg.Wait()
	if r.Total() != workers*perWorker {
		t.Fatalf("total = %d, want %d", r.Total(), workers*perWorker)
	}
	seen := map[uint64]bool{}
	for _, e := range r.Snapshot() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
	if len(seen) != 64 {
		t.Fatalf("retained %d, want 64", len(seen))
	}
}

func TestSnapshotAndHandler(t *testing.T) {
	reg := New()
	reg.Counter("a.b").Add(3)
	reg.Gauge("c.d", "fn", "main").Set(-7)
	reg.Histogram("e.f").Observe(100)
	reg.Events().Emit(EvProfileLoaded, "mod", 42)

	s := reg.Snapshot()
	if s.Counters["a.b"] != 3 {
		t.Fatalf("counter snapshot = %v", s.Counters)
	}
	if s.Gauges["c.d{fn=main}"] != -7 {
		t.Fatalf("gauge snapshot = %v", s.Gauges)
	}
	if h := s.Histograms["e.f"]; h.Count != 1 || h.Sum != 100 || h.Min != 100 || h.Max != 100 {
		t.Fatalf("histogram snapshot = %+v", h)
	}
	if s.Events.Total != 1 {
		t.Fatalf("events snapshot = %+v", s.Events)
	}

	// The HTTP handler must serve the same thing as JSON.
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var decoded Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("handler body is not JSON: %v", err)
	}
	if decoded.Counters["a.b"] != 3 || decoded.Gauges["c.d{fn=main}"] != -7 {
		t.Fatalf("handler snapshot mismatch: %+v", decoded)
	}

	// And the event log endpoint as JSONL.
	rec = httptest.NewRecorder()
	reg.EventsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/events", nil))
	var ev Event
	if err := json.Unmarshal(rec.Body.Bytes(), &ev); err != nil {
		t.Fatalf("events body is not JSONL: %v", err)
	}
	if ev.Name != "mod" || ev.Value != 42 {
		t.Fatalf("event = %+v", ev)
	}
}

func TestKeyPanicsOnOddLabels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd label list")
		}
	}()
	Key("x", "only-key")
}
