package telemetry

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
)

// WriteJSON dumps a full registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteEventsJSONL writes the retained events as JSON lines (the
// llva-run -trace-log format), oldest first.
func (r *Registry) WriteEventsJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.events.Snapshot() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry snapshot as JSON (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// EventsHandler serves the retained event log as JSON lines.
func (r *Registry) EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = r.WriteEventsJSONL(w)
	})
}

// Publish exposes the registry under the given name in the process-wide
// expvar table (visible at /debug/vars). Safe to call once per name.
func (r *Registry) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
