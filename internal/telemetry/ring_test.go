package telemetry

import (
	"sync"
	"testing"
)

// TestRingExactDroppedOnWrap: wrapping the ring must account every
// overwritten event — Total, Len, and Dropped stay exactly consistent,
// and the snapshot retains the newest cap events in seq order.
func TestRingExactDroppedOnWrap(t *testing.T) {
	const capacity, emits = 8, 20
	r := NewRing(capacity)
	for i := 0; i < emits; i++ {
		r.Emit(EvTrapTaken, "e", int64(i))
	}
	if r.Total() != emits {
		t.Errorf("Total() = %d, want %d", r.Total(), emits)
	}
	if r.Len() != capacity {
		t.Errorf("Len() = %d, want %d", r.Len(), capacity)
	}
	if r.Dropped() != emits-capacity {
		t.Errorf("Dropped() = %d, want %d", r.Dropped(), emits-capacity)
	}
	snap := r.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("snapshot retains %d events, want %d", len(snap), capacity)
	}
	for i, e := range snap {
		if want := uint64(emits - capacity + i); e.Seq != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

// TestRingZeroCapacityCounts: a zero-capacity ring retains nothing but
// still counts every emit as dropped.
func TestRingZeroCapacityCounts(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 5; i++ {
		r.Emit(EvCacheHit, "x", 0)
	}
	if r.Len() != 0 || r.Total() != 5 || r.Dropped() != 5 {
		t.Errorf("len=%d total=%d dropped=%d, want 0/5/5", r.Len(), r.Total(), r.Dropped())
	}
	if got := r.Snapshot(); len(got) != 0 {
		t.Errorf("snapshot = %v, want empty", got)
	}
}

// TestRingConcurrentEmitSnapshot: emitters racing snapshotters (run
// under -race by the race-prof target) must never corrupt the ring —
// every snapshot is seq-ordered with no gaps inside the retained
// window, and the final counts are exact.
func TestRingConcurrentEmitSnapshot(t *testing.T) {
	const capacity, writers, perWriter = 64, 8, 500
	r := NewRing(capacity)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				for i := 1; i < len(snap); i++ {
					if snap[i].Seq != snap[i-1].Seq+1 {
						t.Errorf("snapshot out of order: seq %d after %d",
							snap[i].Seq, snap[i-1].Seq)
						return
					}
				}
				_ = r.Dropped()
				_ = r.Stats()
			}
		}()
	}
	var emitters sync.WaitGroup
	for w := 0; w < writers; w++ {
		emitters.Add(1)
		go func(w int) {
			defer emitters.Done()
			for i := 0; i < perWriter; i++ {
				r.Emit(EvSpecEnqueued, "f", int64(w))
			}
		}(w)
	}
	emitters.Wait()
	close(stop)
	wg.Wait()
	const total = writers * perWriter
	if r.Total() != total {
		t.Errorf("Total() = %d, want %d", r.Total(), total)
	}
	if r.Dropped() != total-capacity {
		t.Errorf("Dropped() = %d, want exactly %d", r.Dropped(), total-capacity)
	}
}
