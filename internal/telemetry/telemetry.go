// Package telemetry is the repo-wide observability layer: a
// dependency-light metrics registry (counters, gauges, ns-precision
// histograms) plus a ring-buffered structured event log. It exists to
// make the paper's quantitative claims — translation cost ≪ run time
// (Table 2), transparent caching of code and profile data through the
// OS storage API (Section 4.1) — directly measurable on every run.
//
// Hot-path updates are single atomic operations on pre-resolved metric
// handles; the registry map is only consulted when a handle is first
// created. Metrics belong to labeled families: the instance name is
// the family name plus an ordered label list, rendered canonically as
// name{k=v,...}.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bitlen(v) == i (bucket 0 covers v <= 0..1).
const histBuckets = 64

// Histogram accumulates a distribution of int64 observations
// (conventionally nanoseconds) in power-of-two buckets, with exact
// count/sum/min/max. All updates are lock-free.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Int64
	min   atomic.Int64 // valid when count > 0
	max   atomic.Int64
	bkt   [histBuckets]atomic.Uint64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.bkt[i].Add(1)
}

// Time starts a timer; the returned stop function records the elapsed
// time in nanoseconds and returns it.
func (h *Histogram) Time() func() int64 {
	start := time.Now()
	return func() int64 {
		ns := time.Since(start).Nanoseconds()
		h.Observe(ns)
		return ns
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramSnapshot is a consistent-enough copy for export.
type HistogramSnapshot struct {
	Count uint64            `json:"count"`
	Sum   int64             `json:"sum"`
	Min   int64             `json:"min"`
	Max   int64             `json:"max"`
	Mean  float64           `json:"mean"`
	Bkt   map[string]uint64 `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	s.Bkt = map[string]uint64{}
	for i := range h.bkt {
		if n := h.bkt[i].Load(); n > 0 {
			lo := int64(0)
			if i > 0 {
				lo = int64(1) << (i - 1)
			}
			s.Bkt[fmt.Sprintf("le_%d", lo*2)] = n
		}
	}
	return s
}

// Registry holds the metric families of one subsystem (or one process;
// registries are cheap and composable). The zero value is not usable —
// call New.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	events   *Ring
}

// DefaultEventCap is the event-ring capacity of a fresh registry.
const DefaultEventCap = 4096

// New creates an empty registry with an event ring of DefaultEventCap.
func New() *Registry { return NewWithEventCap(DefaultEventCap) }

// NewWithEventCap creates an empty registry with a custom event-ring
// capacity (0 disables event retention; emits are counted but dropped).
func NewWithEventCap(cap int) *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		events:   NewRing(cap),
	}
}

// Events returns the registry's event ring.
func (r *Registry) Events() *Ring { return r.events }

// Key renders the canonical instance name of a family member. Labels
// are ordered key-value pairs: Key("x", "fn", "main") = `x{fn=main}`.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("telemetry: odd label list for " + name)
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating on first use) the named counter. The
// returned handle should be cached by hot paths.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	k := Key(name, labels...)
	r.mu.RLock()
	c, ok := r.counters[k]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[k]; !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	k := Key(name, labels...)
	r.mu.RLock()
	g, ok := r.gauges[k]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[k]; !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	k := Key(name, labels...)
	r.mu.RLock()
	h, ok := r.hists[k]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[k]; !ok {
		h = newHistogram()
		r.hists[k] = h
	}
	return h
}

// CounterValue reads a counter without creating it (0 if absent).
func (r *Registry) CounterValue(name string, labels ...string) uint64 {
	k := Key(name, labels...)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if c, ok := r.counters[k]; ok {
		return c.Value()
	}
	return 0
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events     EventsSnapshot               `json:"events"`
}

// Snapshot copies the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.Snapshot()
	}
	s.Events = r.events.Stats()
	return s
}

// Names returns the sorted instance names of every metric (diagnostics).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for k := range r.counters {
		out = append(out, k)
	}
	for k := range r.gauges {
		out = append(out, k)
	}
	for k := range r.hists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
