package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// EventKind is the type tag of a structured event.
type EventKind uint8

const (
	EvTranslateStart EventKind = iota
	EvTranslateEnd
	EvCacheHit
	EvCacheMiss
	EvStampMismatch
	EvInvalidate
	EvTrapTaken
	EvTraceFormed
	EvProfileLoaded
	EvProfileStored
	EvJITRequest
	EvSpecEnqueued
	EvSpecHit
	EvSpecWaste
	EvCacheEvicted
	EvCacheCorrupt
)

var eventNames = [...]string{
	EvTranslateStart: "TranslateStart",
	EvTranslateEnd:   "TranslateEnd",
	EvCacheHit:       "CacheHit",
	EvCacheMiss:      "CacheMiss",
	EvStampMismatch:  "StampMismatch",
	EvInvalidate:     "Invalidate",
	EvTrapTaken:      "TrapTaken",
	EvTraceFormed:    "TraceFormed",
	EvProfileLoaded:  "ProfileLoaded",
	EvProfileStored:  "ProfileStored",
	EvJITRequest:     "JITRequest",
	EvSpecEnqueued:   "SpecEnqueued",
	EvSpecHit:        "SpecHit",
	EvSpecWaste:      "SpecWaste",
	EvCacheEvicted:   "CacheEvicted",
	EvCacheCorrupt:   "CacheCorrupt",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("Event(%d)", uint8(k))
}

// MarshalText makes event kinds render by name in JSON trace logs.
func (k EventKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses an event kind by name (trace-log consumers).
func (k *EventKind) UnmarshalText(b []byte) error {
	s := string(b)
	for i, n := range eventNames {
		if n == s {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event kind %q", s)
}

// Event is one structured occurrence: what happened (Kind), to what
// (Name — a function, cache key, or trap detail), and an optional
// magnitude (Value — nanoseconds, trap number, trace length...).
type Event struct {
	Seq   uint64    `json:"seq"`
	Time  int64     `json:"time_unix_ns"`
	Kind  EventKind `json:"kind"`
	Name  string    `json:"name,omitempty"`
	Value int64     `json:"value,omitempty"`
}

// Ring is a fixed-capacity event buffer: when full, the oldest events
// are overwritten. Seq numbers are global and never reused, so readers
// can detect how much history was lost (Dropped).
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever emitted; also the next Seq
}

// NewRing creates a ring retaining up to cap events (cap <= 0 retains
// nothing but still counts emits).
func NewRing(cap int) *Ring {
	if cap < 0 {
		cap = 0
	}
	return &Ring{buf: make([]Event, 0, cap)}
}

// Emit appends one event.
func (r *Ring) Emit(kind EventKind, name string, value int64) {
	now := time.Now().UnixNano()
	r.mu.Lock()
	seq := r.next
	r.next++
	if cap(r.buf) == 0 {
		r.mu.Unlock()
		return
	}
	e := Event{Seq: seq, Time: now, Kind: kind, Name: name, Value: value}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[seq%uint64(cap(r.buf))] = e
	}
	r.mu.Unlock()
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of events ever emitted.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Dropped returns how many events were overwritten or discarded.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next - uint64(len(r.buf))
}

// Snapshot returns the retained events oldest-first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) || len(r.buf) == 0 {
		return append(out, r.buf...)
	}
	// Full ring: the oldest element sits at next % cap.
	c := uint64(cap(r.buf))
	start := r.next % c
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// Find returns the retained events of one kind, oldest-first.
func (r *Ring) Find(kind EventKind) []Event {
	var out []Event
	for _, e := range r.Snapshot() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// EventsSnapshot summarizes ring state for metric export.
type EventsSnapshot struct {
	Total    uint64 `json:"total"`
	Retained int    `json:"retained"`
	Dropped  uint64 `json:"dropped"`
}

// Stats returns the ring's aggregate state.
func (r *Ring) Stats() EventsSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return EventsSnapshot{
		Total:    r.next,
		Retained: len(r.buf),
		Dropped:  r.next - uint64(len(r.buf)),
	}
}
