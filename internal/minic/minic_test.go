package minic

import (
	"strings"
	"testing"

	"llva/internal/core"
	"llva/internal/interp"
)

// compileRun compiles src, verifies the module, runs main on the
// interpreter and returns (exit status, program output).
func compileRun(t *testing.T, src string) (int, string) {
	t.Helper()
	m, err := Compile("test.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	var out strings.Builder
	ip, err := interp.New(m, &out)
	if err != nil {
		t.Fatalf("interp.New: %v", err)
	}
	code, err := ip.RunMain()
	if err != nil {
		t.Fatalf("run: %v\noutput so far: %s", err, out.String())
	}
	return code, out.String()
}

func TestHello(t *testing.T) {
	_, out := compileRun(t, `
int main() {
	print_str("hello, world");
	print_nl();
	return 0;
}`)
	if out != "hello, world\n" {
		t.Errorf("output = %q", out)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	code, out := compileRun(t, `
int collatz_len(int n) {
	int len = 0;
	while (n != 1) {
		if (n % 2 == 0) n = n / 2;
		else n = 3 * n + 1;
		len++;
	}
	return len;
}
int main() {
	int i;
	int best = 0, best_i = 0;
	for (i = 1; i <= 50; i++) {
		int l = collatz_len(i);
		if (l > best) { best = l; best_i = i; }
	}
	print_int(best_i); print_char(' '); print_int(best); print_nl();
	return best_i;
}`)
	if out != "27 111\n" || code != 27 {
		t.Errorf("out=%q code=%d, want %q code 27", out, code, "27 111\n")
	}
}

func TestPointersAndStructs(t *testing.T) {
	_, out := compileRun(t, `
struct Node {
	int val;
	struct Node *next;
};

int main() {
	struct Node *head = 0;
	int i;
	for (i = 5; i >= 1; i--) {
		struct Node *n = (struct Node*)malloc(sizeof(struct Node));
		n->val = i * 10;
		n->next = head;
		head = n;
	}
	struct Node *p;
	int sum = 0;
	for (p = head; p != 0; p = p->next) {
		print_int(p->val); print_char(' ');
		sum += p->val;
	}
	print_int(sum); print_nl();
	return 0;
}`)
	if out != "10 20 30 40 50 150\n" {
		t.Errorf("out = %q", out)
	}
}

func TestArrays2D(t *testing.T) {
	_, out := compileRun(t, `
int grid[4][4];
int main() {
	int i, j;
	for (i = 0; i < 4; i++)
		for (j = 0; j < 4; j++)
			grid[i][j] = i * 4 + j;
	int trace = 0;
	for (i = 0; i < 4; i++) trace += grid[i][i];
	print_int(trace); print_nl();
	return 0;
}`)
	if out != "30\n" {
		t.Errorf("out = %q, want 30", out)
	}
}

func TestGlobalInitializers(t *testing.T) {
	_, out := compileRun(t, `
int table[5] = {2, 3, 5, 7, 11};
char msg[] = "primes:";
double factor = 1.5;

int main() {
	print_str(msg);
	int i;
	int sum = 0;
	for (i = 0; i < 5; i++) { print_char(' '); print_int(table[i]); sum += table[i]; }
	print_nl();
	print_float(sum * factor); print_nl();
	return 0;
}`)
	want := "primes: 2 3 5 7 11\n42.0000\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestSwitchLowersToMbr(t *testing.T) {
	m, err := Compile("test.c", `
int classify(int x) {
	switch (x) {
	case 0: return 10;
	case 1: return 20;
	case 5: return 30;
	default: return -1;
	}
}
int main() { return classify(5); }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	found := false
	for _, bb := range m.Function("classify").Blocks {
		for _, in := range bb.Instructions() {
			if in.Op() == core.OpMbr {
				found = true
			}
		}
	}
	if !found {
		t.Error("switch did not lower to mbr")
	}
	code, _ := compileRun(t, `
int classify(int x) {
	switch (x) {
	case 0: return 10;
	case 1: return 20;
	case 5: return 30;
	default: return -1;
	}
}
int main() { return classify(5) + classify(2); }`)
	if code != 29 {
		t.Errorf("code = %d, want 29", code)
	}
}

func TestFunctionPointers(t *testing.T) {
	code, _ := compileRun(t, `
typedef int (*binop)(int, int);
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }

int apply(binop f, int a, int b) { return f(a, b); }

int main() {
	binop ops[2];
	ops[0] = add;
	ops[1] = mul;
	return apply(ops[0], 3, 4) + apply(ops[1], 3, 4);
}`)
	if code != 19 {
		t.Errorf("code = %d, want 19", code)
	}
}

func TestShortCircuitAndTernary(t *testing.T) {
	code, _ := compileRun(t, `
int calls = 0;
int bump() { calls++; return 1; }
int main() {
	int a = 0;
	if (a != 0 && bump()) {}
	if (a == 0 || bump()) {}
	int m = a > 0 ? 100 : 7;
	return calls * 10 + m;   /* calls must be 0 */
}`)
	if code != 7 {
		t.Errorf("code = %d, want 7 (short-circuit must skip bump())", code)
	}
}

func TestStringsAndChars(t *testing.T) {
	_, out := compileRun(t, `
int my_strlen(char *s) {
	int n = 0;
	while (s[n] != '\0') n++;
	return n;
}
int main() {
	char buf[16];
	char *src = "abcdef";
	int i, n = my_strlen(src);
	for (i = 0; i <= n; i++) buf[i] = src[n - 1 - i >= 0 ? n - 1 - i : n];
	buf[n] = '\0';
	print_str(buf); print_nl();
	print_int(n); print_nl();
	return 0;
}`)
	if out != "fedcba\n6\n" {
		t.Errorf("out = %q", out)
	}
}

func TestFloatMath(t *testing.T) {
	_, out := compileRun(t, `
double dist(double x1, double y1, double x2, double y2) {
	double dx = x2 - x1, dy = y2 - y1;
	return sqrt(dx*dx + dy*dy);
}
int main() {
	print_float(dist(0.0, 0.0, 3.0, 4.0)); print_nl();
	float f = 0.5f;
	double d = f + 0.25;
	print_float(d); print_nl();
	return 0;
}`)
	if out != "5.0000\n0.7500\n" {
		t.Errorf("out = %q", out)
	}
}

func TestRecursionMutual(t *testing.T) {
	code, _ := compileRun(t, `
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main() { return is_even(10) * 10 + is_odd(7); }`)
	if code != 11 {
		t.Errorf("code = %d, want 11", code)
	}
}

func TestDoWhileAndCompoundAssign(t *testing.T) {
	code, _ := compileRun(t, `
int main() {
	int x = 1, n = 0;
	do { x <<= 1; n++; } while (x < 100);
	x -= 28;  /* 128 - 28 = 100 */
	x /= 4;   /* 25 */
	x %= 11;  /* 3 */
	return x * 10 + n;  /* n = 7 */
}`)
	if code != 37 {
		t.Errorf("code = %d, want 37", code)
	}
}

func TestUnsignedSemantics(t *testing.T) {
	code, _ := compileRun(t, `
int main() {
	unsigned int u = 0;
	u--;                      /* wraps to 0xFFFFFFFF */
	unsigned int half = u / 2;  /* 0x7FFFFFFF */
	int shifted = (int)(half >> 30);  /* 1 */
	signed char c = (signed char)255; /* -1 */
	return shifted * 10 + (c == -1 ? 1 : 0);
}`)
	if code != 11 {
		t.Errorf("code = %d, want 11", code)
	}
}

func TestSizeof(t *testing.T) {
	code, _ := compileRun(t, `
struct Pair { int a; double b; };
int main() {
	/* 64-bit layout: int(4) pad(4) double(8) = 16 */
	return (int)(sizeof(struct Pair) + sizeof(int) * 100 + sizeof(char*) * 1000);
}`)
	if code != 16+400+8000 {
		t.Errorf("code = %d, want %d", code, 16+400+8000)
	}
}
