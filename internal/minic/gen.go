package minic

import (
	"fmt"

	"llva/internal/core"
)

// Compile compiles a MiniC translation unit to an LLVA module.
func Compile(name, src string) (*core.Module, error) {
	m := core.NewModule(name)
	p, err := newParser(name, src, m.Types())
	if err != nil {
		return nil, err
	}
	u, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	g := &genCtx{
		m:      m,
		ctx:    m.Types(),
		u:      u,
		fields: u.fieldNames,
		file:   name,
	}
	if err := g.run(); err != nil {
		return nil, err
	}
	return m, nil
}

// genError carries a positioned compile error through builder panics.
type genError struct{ err error }

type genCtx struct {
	m      *core.Module
	ctx    *core.TypeContext
	u      *unit
	fields map[*core.Type][]string
	file   string

	strCount int
}

func (g *genCtx) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", g.file, line, fmt.Sprintf(format, args...))
}

// fail aborts generation with a positioned error (recovered in run).
func (g *genCtx) fail(line int, format string, args ...any) {
	panic(genError{g.errf(line, format, args...)})
}

func (g *genCtx) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ge, ok := r.(genError); ok {
				err = ge.err
				return
			}
			panic(r)
		}
	}()

	// Built-in runtime functions become declarations on first use; user
	// extern declarations and function definitions are declared up front
	// so mutual recursion and use-before-definition work.
	for _, fd := range g.u.funcs {
		g.declareFunc(fd)
	}
	for _, gd := range g.u.globals {
		g.defineGlobal(gd)
	}
	for _, fd := range g.u.funcs {
		if fd.Body != nil {
			g.genFunc(fd)
		}
	}
	return nil
}

func (g *genCtx) declareFunc(fd *funcDecl) {
	ptypes := make([]*core.Type, len(fd.Params))
	for i, pa := range fd.Params {
		ptypes[i] = pa.Ty
		if !pa.Ty.IsFirstClass() {
			g.fail(fd.Line, "parameter %d of %s has non-scalar type %s (pass a pointer instead)",
				i, fd.Name, pa.Ty)
		}
	}
	if fd.Ret.Kind() != core.VoidKind && !fd.Ret.IsFirstClass() {
		g.fail(fd.Line, "function %s returns non-scalar type %s", fd.Name, fd.Ret)
	}
	sig := g.ctx.Function(fd.Ret, ptypes, false)
	if f := g.m.Function(fd.Name); f != nil {
		if f.Signature() != sig {
			g.fail(fd.Line, "conflicting declarations of %s", fd.Name)
		}
		return
	}
	f := g.m.NewFunction(fd.Name, sig)
	f.Internal = fd.Static
	for i, pa := range fd.Params {
		if pa.Name != "" {
			f.Params[i].SetName(pa.Name)
		}
	}
}

// builtins maps runtime library functions to their LLVA signatures,
// declared on first use.
func (g *genCtx) builtinSig(name string) *core.Type {
	c := g.ctx
	sp := c.Pointer(c.SByte())
	sig := func(ret *core.Type, params ...*core.Type) *core.Type {
		return c.Function(ret, params, false)
	}
	switch name {
	case "print_int":
		return sig(c.Void(), c.Long())
	case "print_uint":
		return sig(c.Void(), c.ULong())
	case "print_char":
		return sig(c.Void(), c.Long())
	case "print_str":
		return sig(c.Void(), sp)
	case "print_float":
		return sig(c.Void(), c.Double())
	case "print_nl":
		return sig(c.Void())
	case "malloc":
		return sig(sp, c.ULong())
	case "calloc":
		return sig(sp, c.ULong(), c.ULong())
	case "free":
		return sig(c.Void(), sp)
	case "memcpy":
		return sig(c.Void(), sp, sp, c.ULong())
	case "memset":
		return sig(c.Void(), sp, c.Long(), c.ULong())
	case "strlen":
		return sig(c.ULong(), sp)
	case "strcmp":
		return sig(c.Long(), sp, sp)
	case "exit":
		return sig(c.Void(), c.Long())
	case "abort":
		return sig(c.Void())
	case "clock":
		return sig(c.ULong())
	case "srand":
		return sig(c.Void(), c.ULong())
	case "rand":
		return sig(c.ULong())
	case "sqrt", "fabs", "exp", "log", "sin", "cos":
		return sig(c.Double(), c.Double())
	case "pow":
		return sig(c.Double(), c.Double(), c.Double())
	}
	return nil
}

func (g *genCtx) lookupFunc(name string, line int) *core.Function {
	if f := g.m.Function(name); f != nil {
		return f
	}
	if sig := g.builtinSig(name); sig != nil {
		return g.m.NewFunction(name, sig)
	}
	return nil
}

func (g *genCtx) defineGlobal(gd *globalDecl) {
	ty := gd.Ty
	var init *core.Constant
	if gd.Init != nil {
		// Inferred-length arrays: fix the length from the initializer.
		if ty.Kind() == core.ArrayKind && ty.Len() == 0 {
			switch iv := gd.Init.(type) {
			case *strLit:
				ty = g.ctx.Array(len(iv.Val)+1, ty.Elem())
			case *initList:
				ty = g.ctx.Array(len(iv.Elems), ty.Elem())
			}
		}
		init = g.constInit(gd.Init, ty)
	} else if !gd.Extern {
		init = core.NewZero(ty)
	}
	if g.m.Global(gd.Name) != nil {
		g.fail(gd.Line, "global %s redefined", gd.Name)
	}
	g.m.NewGlobal(gd.Name, ty, init, gd.Const)
}

// constInit evaluates a global initializer expression to a constant of the
// target type.
func (g *genCtx) constInit(e expr, ty *core.Type) *core.Constant {
	switch x := e.(type) {
	case *intLit:
		return g.convConst(core.NewUint(x.Ty, x.Val), ty, x.Line)
	case *floatLit:
		if !ty.IsFloat() {
			g.fail(x.Line, "float initializer for %s", ty)
		}
		return core.NewFloat(ty, x.Val)
	case *strLit:
		if ty.Kind() == core.ArrayKind &&
			(ty.Elem().Kind() == core.SByteKind || ty.Elem().Kind() == core.UByteKind) {
			return g.stringConst(x.Val, ty)
		}
		if ty.Kind() == core.PointerKind && ty.Elem().Kind() == core.SByteKind {
			gv := g.internString(x.Val)
			// A pointer global initialized to a string would need a
			// constant GEP; MiniC requires array-typed string globals.
			_ = gv
			g.fail(x.Line, "char* globals cannot be initialized with string literals; use char name[]")
		}
		g.fail(x.Line, "string initializer for %s", ty)
	case *unaryExpr:
		if x.Op == "-" {
			c := g.constInit(x.X, ty)
			if c.CK == core.ConstInt {
				return core.NewInt(ty, -c.Int64())
			}
			if c.CK == core.ConstFloat {
				return core.NewFloat(ty, -c.F)
			}
		}
		if x.Op == "&" {
			if id, ok := x.X.(*identExpr); ok {
				if gv := g.m.Global(id.Name); gv != nil {
					c := core.NewGlobalRef(gv)
					if c.Type() != ty {
						g.fail(x.Line, "initializer &%s has type %s, want %s", id.Name, c.Type(), ty)
					}
					return c
				}
			}
		}
		g.fail(x.Line, "initializer is not constant")
	case *identExpr:
		// function reference in a function-pointer table
		if f := g.lookupFunc(x.Name, x.Line); f != nil {
			c := core.NewGlobalRef(f)
			if c.Type() != ty {
				g.fail(x.Line, "initializer %s has type %s, want %s", x.Name, c.Type(), ty)
			}
			return c
		}
		g.fail(x.Line, "initializer is not constant: %s", x.Name)
	case *sizeofExpr:
		return g.convConst(core.NewUint(g.ctx.Long(),
			uint64(g.m.Layout().Size(x.Ty))), ty, x.Line)
	case *initList:
		switch ty.Kind() {
		case core.ArrayKind:
			if len(x.Elems) > ty.Len() {
				g.fail(x.Line, "too many initializers for %s", ty)
			}
			elems := make([]*core.Constant, ty.Len())
			for i := range elems {
				if i < len(x.Elems) {
					elems[i] = g.constInit(x.Elems[i], ty.Elem())
				} else {
					elems[i] = core.NewZero(ty.Elem())
				}
			}
			return core.NewArray(ty, elems)
		case core.StructKind:
			if len(x.Elems) > len(ty.Fields()) {
				g.fail(x.Line, "too many initializers for %s", ty)
			}
			elems := make([]*core.Constant, len(ty.Fields()))
			for i := range elems {
				if i < len(x.Elems) {
					elems[i] = g.constInit(x.Elems[i], ty.Fields()[i])
				} else {
					elems[i] = core.NewZero(ty.Fields()[i])
				}
			}
			return core.NewStruct(ty, elems)
		}
		g.fail(x.Line, "brace initializer for scalar type %s", ty)
	case *binaryExpr:
		// constant folding of integer expressions
		a := g.constInit(x.X, ty)
		b := g.constInit(x.Y, ty)
		if op, ok := core.OpcodeByName[map[string]string{
			"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
			"&": "and", "|": "or", "^": "xor"}[x.Op]]; ok {
			if c := core.FoldBinary(g.ctx, op, a, b); c != nil {
				return c
			}
		}
		g.fail(x.Line, "initializer is not constant")
	case *castExpr:
		c := g.constInit(x.X, x.Ty)
		return g.convConst(c, ty, x.Line)
	}
	g.fail(lineOf(e), "initializer is not constant")
	return nil
}

func (g *genCtx) convConst(c *core.Constant, ty *core.Type, line int) *core.Constant {
	if c.Type() == ty {
		return c
	}
	if out := core.FoldCast(c, ty); out != nil {
		return out
	}
	g.fail(line, "cannot convert constant %s to %s", c, ty)
	return nil
}

// stringConst encodes a string literal as an [N x sbyte/ubyte] constant,
// NUL-padded to the array length.
func (g *genCtx) stringConst(s string, ty *core.Type) *core.Constant {
	n := ty.Len()
	elems := make([]*core.Constant, n)
	for i := 0; i < n; i++ {
		var b byte
		if i < len(s) {
			b = s[i]
		}
		elems[i] = core.NewUint(ty.Elem(), uint64(b))
	}
	return core.NewArray(ty, elems)
}

// internString creates (or reuses) an anonymous global for a string
// literal and returns the global. Literal type is [len+1 x sbyte].
func (g *genCtx) internString(s string) *core.GlobalVariable {
	name := fmt.Sprintf(".str%d", g.strCount)
	g.strCount++
	ty := g.ctx.Array(len(s)+1, g.ctx.SByte())
	return g.m.NewGlobal(name, ty, g.stringConst(s, ty), true)
}

func lineOf(e expr) int {
	switch x := e.(type) {
	case *intLit:
		return x.Line
	case *floatLit:
		return x.Line
	case *strLit:
		return x.Line
	case *identExpr:
		return x.Line
	case *unaryExpr:
		return x.Line
	case *postfixExpr:
		return x.Line
	case *binaryExpr:
		return x.Line
	case *assignExpr:
		return x.Line
	case *condExpr:
		return x.Line
	case *callExpr:
		return x.Line
	case *indexExpr:
		return x.Line
	case *memberExpr:
		return x.Line
	case *castExpr:
		return x.Line
	case *sizeofExpr:
		return x.Line
	case *initList:
		return x.Line
	}
	return 0
}
