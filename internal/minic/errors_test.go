package minic

import (
	"strings"
	"testing"
)

// TestCompileErrors checks MiniC rejects malformed programs with a
// positioned diagnostic.
func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undefined-var", "int main() { return x; }", "undefined"},
		{"undefined-fn", "int main() { return nope(1); }", "undefined function"},
		{"redeclared", "int main() { int a = 1; int a = 2; return a; }", "redeclared"},
		{"bad-call-arity", `
int f(int a, int b) { return a + b; }
int main() { return f(1); }`, "argument"},
		{"return-value-from-void", "void f() { return 3; }\nint main(){ f(); return 0; }", "void"},
		{"missing-return-value", "int f() { return; }\nint main(){ return f(); }", "without value"},
		{"break-outside-loop", "int main() { break; return 0; }", "break"},
		{"continue-outside-loop", "int main() { continue; return 0; }", "continue"},
		{"bad-member", `
struct P { int x; };
int main() { struct P p; p.x = 1; return p.y; }`, "no field"},
		{"member-of-nonstruct", "int main() { int a = 1; return a.x; }", "non-struct"},
		{"deref-nonpointer", "int main() { int a = 1; return *a; }", "non-pointer"},
		{"index-nonarray", "int main() { int a = 1; return a[0]; }", "index"},
		{"assign-to-rvalue", "int main() { 3 = 4; return 0; }", "lvalue"},
		{"unterminated-block", "int main() { return 0;", "end of file"},
		{"unknown-type", "foo main() { return 0; }", "expected type"},
		{"struct-redefined", `
struct S { int a; };
struct S { int b; };
int main() { return 0; }`, "redefined"},
		{"conflicting-proto", `
int f(int a);
long f(int a) { return 1; }
int main() { return 0; }`, "conflicting"},
		{"struct-by-value-param", `
struct S { int a; };
int f(struct S s) { return s.a; }
int main() { return 0; }`, "pointer instead"},
		{"local-array-no-len", "int main() { int a[]; return 0; }", "length"},
		{"switch-on-pointer", `
int main() {
	int x = 1;
	int *p = &x;
	switch (p) { case 0: return 1; default: return 0; }
}`, "integer"},
		{"non-constant-case", `
int main() {
	int x = 1;
	switch (x) { case x: return 1; default: return 0; }
}`, "constant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("bad.c", tc.src)
			if err == nil {
				t.Fatalf("accepted malformed program:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err.Error(), tc.want)
			}
			if !strings.Contains(err.Error(), "bad.c:") {
				t.Errorf("error %q lacks a file:line position", err.Error())
			}
		})
	}
}

// TestLexErrors covers malformed tokens.
func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		"int main() { char c = 'ab'; return 0; }",
		"int main() { char *s = \"unterminated; return 0; }",
		"int main() { return 1 @ 2; }",
		"/* unterminated comment",
	} {
		if _, err := Compile("bad.c", src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}
