package minic

import (
	"fmt"

	"llva/internal/core"
)

// unit is a parsed translation unit.
type unit struct {
	funcs   []*funcDecl
	globals []*globalDecl
	// fieldNames maps each struct type to its field names, for member
	// access resolution during IR generation.
	fieldNames map[*core.Type][]string
}

type parser struct {
	lex  *lexer
	tok  tok
	peek *tok
	ctx  *core.TypeContext
	file string

	typedefs map[string]*core.Type
	structs  map[string]*core.Type
	fields   map[*core.Type][]string

	// pending carries a pre-parsed base type on the struct-use path
	// (tryStructDef cannot rewind the lexer).
	pending *core.Type
	// lastFn carries the parameter list from a function declarator to
	// parseTopDecl.
	lastFn fnInfo
}

func newParser(file, src string, ctx *core.TypeContext) (*parser, error) {
	p := &parser{
		lex:      newMLexer(file, src),
		ctx:      ctx,
		file:     file,
		typedefs: make(map[string]*core.Type),
		structs:  make(map[string]*core.Type),
		fields:   make(map[*core.Type][]string),
	}
	return p, p.advance()
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (tok, error) {
	if p.peek == nil {
		t, err := p.lex.next()
		if err != nil {
			return tok{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.file, p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) isPunct(s string) bool { return p.tok.kind == tPunct && p.tok.text == s }
func (p *parser) isKw(s string) bool    { return p.tok.kind == tKeyword && p.tok.text == s }

func (p *parser) expect(s string) error {
	if (p.tok.kind == tPunct || p.tok.kind == tKeyword) && p.tok.text == s {
		return p.advance()
	}
	return p.errf("expected %q, got %s", s, p.tok)
}

func (p *parser) ident() (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errf("expected identifier, got %s", p.tok)
	}
	n := p.tok.text
	return n, p.advance()
}

// parseUnit parses the whole translation unit.
func (p *parser) parseUnit() (*unit, error) {
	u := &unit{fieldNames: p.fields}
	for p.tok.kind != tEOF {
		switch {
		case p.isKw("typedef"):
			if err := p.parseTypedef(); err != nil {
				return nil, err
			}
		case p.isKw("struct"):
			// Could be a struct definition ("struct S { ... };") or a
			// declaration using a struct type.
			done, err := p.tryStructDef()
			if err != nil {
				return nil, err
			}
			if done {
				continue
			}
			if err := p.parseTopDecl(u, false, false); err != nil {
				return nil, err
			}
		case p.isKw("extern"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.parseTopDecl(u, true, false); err != nil {
				return nil, err
			}
		case p.isKw("static"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.parseTopDecl(u, false, true); err != nil {
				return nil, err
			}
		default:
			if err := p.parseTopDecl(u, false, false); err != nil {
				return nil, err
			}
		}
	}
	return u, nil
}

func (p *parser) parseTypedef() error {
	if err := p.advance(); err != nil { // typedef
		return err
	}
	base, err := p.parseTypeBase()
	if err != nil {
		return err
	}
	ty, name, _, err := p.parseDeclarator(base)
	if err != nil {
		return err
	}
	if name == "" {
		return p.errf("typedef requires a name")
	}
	p.typedefs[name] = ty
	return p.expect(";")
}

// tryStructDef handles "struct Name { fields };" — returns true if it
// consumed a full definition (or forward declaration).
func (p *parser) tryStructDef() (bool, error) {
	save := p.tok
	nxt, err := p.peekTok()
	if err != nil {
		return false, err
	}
	if nxt.kind != tIdent {
		return false, p.errf("expected struct name")
	}
	// Look two ahead: "struct Name {" is a definition; "struct Name ;" a
	// forward declaration; otherwise it is a type use.
	if err := p.advance(); err != nil { // now at name
		return false, err
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return false, err
	}
	switch {
	case p.isPunct("{"):
		if err := p.parseStructBody(name); err != nil {
			return false, err
		}
		return true, p.expect(";")
	case p.isPunct(";"):
		p.structType(name) // forward declaration
		return true, p.advance()
	default:
		// Not a definition: rewind is impossible with this lexer, so
		// continue parsing the declaration from here with the struct type
		// as base.
		base := p.structType(name)
		_ = save
		return false, p.continueTopDeclWith(base)
	}
}

func (p *parser) continueTopDeclWith(base *core.Type) error {
	p.pending = base
	return nil
}

func (p *parser) structType(name string) *core.Type {
	if t, ok := p.structs[name]; ok {
		return t
	}
	t := p.ctx.NamedStruct("struct." + name)
	p.structs[name] = t
	return t
}

func (p *parser) parseStructBody(name string) error {
	t := p.structType(name)
	if !t.Opaque() {
		return p.errf("struct %s redefined", name)
	}
	if err := p.advance(); err != nil { // '{'
		return err
	}
	var fieldTypes []*core.Type
	var fieldNames []string
	for !p.isPunct("}") {
		base, err := p.parseTypeBase()
		if err != nil {
			return err
		}
		for {
			ty, fname, _, err := p.parseDeclarator(base)
			if err != nil {
				return err
			}
			if fname == "" {
				return p.errf("struct field requires a name")
			}
			fieldTypes = append(fieldTypes, ty)
			fieldNames = append(fieldNames, fname)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return err
				}
				continue
			}
			break
		}
		if err := p.expect(";"); err != nil {
			return err
		}
	}
	if err := p.advance(); err != nil { // '}'
		return err
	}
	p.ctx.SetBody(t, fieldTypes...)
	p.fields[t] = fieldNames
	return nil
}

// parseTopDecl parses a function definition/declaration or global
// variable(s).
func (p *parser) parseTopDecl(u *unit, isExtern, isStatic bool) error {
	base, err := p.parseTypeBase()
	if err != nil {
		return err
	}
	ty, name, isFn, err := p.parseDeclarator(base)
	if err != nil {
		return err
	}
	if name == "" {
		return p.errf("declaration requires a name")
	}
	if isFn {
		return p.parseFuncRest(u, ty, name, isExtern, isStatic)
	}
	// global variable(s)
	for {
		g := &globalDecl{Name: name, Ty: ty, Extern: isExtern}
		g.Line = p.tok.line
		if p.isPunct("=") {
			if err := p.advance(); err != nil {
				return err
			}
			init, err := p.parseInitializer()
			if err != nil {
				return err
			}
			g.Init = init
			// char s[] = "..." infers the array length in gen.
		}
		u.globals = append(u.globals, g)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return err
			}
			ty, name, isFn, err = p.parseDeclarator(base)
			if err != nil {
				return err
			}
			if isFn || name == "" {
				return p.errf("bad declaration list")
			}
			continue
		}
		break
	}
	return p.expect(";")
}

// fnInfo is attached by parseDeclarator when the declarator is a function.
type fnInfo struct {
	params []param
	ret    *core.Type
}

func (p *parser) parseFuncRest(u *unit, retTy *core.Type, name string, isExtern, isStatic bool) error {
	fd := &funcDecl{Name: name, Ret: retTy, Params: p.lastFn.params, Static: isStatic}
	fd.Line = p.tok.line
	if p.isPunct(";") {
		u.funcs = append(u.funcs, fd) // declaration only
		return p.advance()
	}
	if isExtern {
		return p.errf("extern function %s cannot have a body", name)
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fd.Body = body
	u.funcs = append(u.funcs, fd)
	return nil
}

// ------------------------------------------------------------------ types

// parseTypeBase parses the base type: primitives with signed/unsigned,
// struct uses, typedef names, with const ignored.
func (p *parser) parseTypeBase() (*core.Type, error) {
	if p.pending != nil {
		t := p.pending
		p.pending = nil
		return t, nil
	}
	for p.isKw("const") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	unsigned := false
	signedSeen := false
	for p.isKw("unsigned") || p.isKw("signed") {
		unsigned = p.isKw("unsigned")
		signedSeen = !unsigned
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	_ = signedSeen
	switch {
	case p.isKw("void"):
		if unsigned {
			return nil, p.errf("unsigned void")
		}
		return p.ctx.Void(), p.advance()
	case p.isKw("char"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if unsigned {
			return p.ctx.UByte(), nil
		}
		return p.ctx.SByte(), nil
	case p.isKw("short"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if unsigned {
			return p.ctx.UShort(), nil
		}
		return p.ctx.Short(), nil
	case p.isKw("int"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if unsigned {
			return p.ctx.UInt(), nil
		}
		return p.ctx.Int(), nil
	case p.isKw("long"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isKw("long") { // long long == long
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.isKw("int") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if unsigned {
			return p.ctx.ULong(), nil
		}
		return p.ctx.Long(), nil
	case p.isKw("float"):
		return p.ctx.Float(), p.advance()
	case p.isKw("double"):
		return p.ctx.Double(), p.advance()
	case p.isKw("struct"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return p.structType(name), nil
	case unsigned:
		// bare "unsigned" means unsigned int
		return p.ctx.UInt(), nil
	case p.tok.kind == tIdent:
		if t, ok := p.typedefs[p.tok.text]; ok {
			return t, p.advance()
		}
	}
	return nil, p.errf("expected type, got %s", p.tok)
}

// isTypeStart reports whether the current token begins a type.
func (p *parser) isTypeStart() bool {
	if p.pending != nil {
		return true
	}
	if p.tok.kind == tKeyword {
		switch p.tok.text {
		case "void", "char", "short", "int", "long", "float", "double",
			"unsigned", "signed", "struct", "const":
			return true
		}
		return false
	}
	if p.tok.kind == tIdent {
		_, ok := p.typedefs[p.tok.text]
		return ok
	}
	return false
}

// parseDeclarator parses pointer stars, the name, array suffixes and
// function parameter lists:
//
//	*name, name[N], (*name)(params), name(params)
//
// It returns the declared type, the name (empty for abstract declarators)
// and whether this is a function declarator (parameters in p.lastFn).
func (p *parser) parseDeclarator(base *core.Type) (*core.Type, string, bool, error) {
	t := base
	for p.isPunct("*") {
		t = p.ctx.Pointer(t)
		if err := p.advance(); err != nil {
			return nil, "", false, err
		}
	}
	// function-pointer declarator: ( * name ) ( params )
	if p.isPunct("(") {
		nxt, err := p.peekTok()
		if err != nil {
			return nil, "", false, err
		}
		if nxt.kind == tPunct && nxt.text == "*" {
			if err := p.advance(); err != nil { // '('
				return nil, "", false, err
			}
			if err := p.advance(); err != nil { // '*'
				return nil, "", false, err
			}
			name := ""
			if p.tok.kind == tIdent {
				name, err = p.ident()
				if err != nil {
					return nil, "", false, err
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, "", false, err
			}
			params, variadic, err := p.parseParams()
			if err != nil {
				return nil, "", false, err
			}
			ptypes := make([]*core.Type, len(params))
			for i, pa := range params {
				ptypes[i] = pa.Ty
			}
			sig := p.ctx.Function(t, ptypes, variadic)
			return p.ctx.Pointer(sig), name, false, nil
		}
	}
	name := ""
	if p.tok.kind == tIdent {
		var err error
		name, err = p.ident()
		if err != nil {
			return nil, "", false, err
		}
	}
	// function declarator
	if p.isPunct("(") && name != "" {
		params, variadic, err := p.parseParams()
		if err != nil {
			return nil, "", false, err
		}
		_ = variadic
		p.lastFn = fnInfo{params: params, ret: t}
		return t, name, true, nil
	}
	// array suffixes
	var dims []int
	for p.isPunct("[") {
		if err := p.advance(); err != nil {
			return nil, "", false, err
		}
		if p.isPunct("]") {
			dims = append(dims, -1) // inferred (char s[] = "...")
			if err := p.advance(); err != nil {
				return nil, "", false, err
			}
			continue
		}
		n, err := p.parseConstIntExpr()
		if err != nil {
			return nil, "", false, err
		}
		dims = append(dims, int(n))
		if err := p.expect("]"); err != nil {
			return nil, "", false, err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		if dims[i] < 0 {
			// Marker for inferred length: an array of length 0 adjusted
			// during IR generation from the initializer.
			t = p.ctx.Array(0, t)
		} else {
			t = p.ctx.Array(dims[i], t)
		}
	}
	return t, name, false, nil
}

func (p *parser) parseParams() ([]param, bool, error) {
	if err := p.expect("("); err != nil {
		return nil, false, err
	}
	var out []param
	variadic := false
	// "()" and "(void)" both mean no parameters.
	if p.isKw("void") {
		nxt, err := p.peekTok()
		if err != nil {
			return nil, false, err
		}
		if nxt.kind == tPunct && nxt.text == ")" {
			if err := p.advance(); err != nil {
				return nil, false, err
			}
		}
	}
	for !p.isPunct(")") {
		if len(out) > 0 {
			if err := p.expect(","); err != nil {
				return nil, false, err
			}
		}
		if p.isPunct(".") {
			// "..." lexes as three '.' puncts
			for i := 0; i < 3; i++ {
				if !p.isPunct(".") {
					return nil, false, p.errf("expected ...")
				}
				if err := p.advance(); err != nil {
					return nil, false, err
				}
			}
			variadic = true
			continue
		}
		base, err := p.parseTypeBase()
		if err != nil {
			return nil, false, err
		}
		ty, name, isFn, err := p.parseDeclarator(base)
		if err != nil {
			return nil, false, err
		}
		if isFn {
			return nil, false, p.errf("function parameter cannot itself declare a function")
		}
		// arrays decay to pointers in parameters
		if ty.Kind() == core.ArrayKind {
			ty = p.ctx.Pointer(ty.Elem())
		}
		out = append(out, param{Name: name, Ty: ty})
	}
	return out, variadic, p.advance()
}

// parseConstIntExpr evaluates a constant integer expression (array sizes,
// case labels).
func (p *parser) parseConstIntExpr() (int64, error) {
	e, err := p.parseConditional()
	if err != nil {
		return 0, err
	}
	return p.evalConstInt(e)
}

func (p *parser) evalConstInt(e expr) (int64, error) {
	switch x := e.(type) {
	case *intLit:
		return int64(x.Val), nil
	case *unaryExpr:
		v, err := p.evalConstInt(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "~":
			return ^v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *binaryExpr:
		a, err := p.evalConstInt(x.X)
		if err != nil {
			return 0, err
		}
		b, err := p.evalConstInt(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, p.errf("division by zero in constant expression")
			}
			return a / b, nil
		case "%":
			if b == 0 {
				return 0, p.errf("division by zero in constant expression")
			}
			return a % b, nil
		case "<<":
			return a << uint(b), nil
		case ">>":
			return a >> uint(b), nil
		case "&":
			return a & b, nil
		case "|":
			return a | b, nil
		case "^":
			return a ^ b, nil
		}
	case *sizeofExpr:
		return int64(core.Layout{PointerSize: 8}.Size(x.Ty)), nil
	}
	return 0, p.errf("expression is not a compile-time integer constant")
}
