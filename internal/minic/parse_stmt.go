package minic

import "llva/internal/core"

// ------------------------------------------------------------- statements

func (p *parser) parseBlock() (*blockStmt, error) {
	b := &blockStmt{}
	b.Line = p.tok.line
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.isPunct("}") {
		if p.tok.kind == tEOF {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.List = append(b.List, s)
	}
	return b, p.advance()
}

func (p *parser) parseStmt() (stmt, error) {
	line := p.tok.line
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isPunct(";"):
		s := &blockStmt{}
		s.Line = line
		return s, p.advance()
	case p.isKw("if"):
		return p.parseIf()
	case p.isKw("while"):
		return p.parseWhile()
	case p.isKw("do"):
		return p.parseDoWhile()
	case p.isKw("for"):
		return p.parseFor()
	case p.isKw("switch"):
		return p.parseSwitch()
	case p.isKw("return"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		s := &returnStmt{}
		s.Line = line
		if !p.isPunct(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.X = x
		}
		return s, p.expect(";")
	case p.isKw("break"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		s := &breakStmt{}
		s.Line = line
		return s, p.expect(";")
	case p.isKw("continue"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		s := &continueStmt{}
		s.Line = line
		return s, p.expect(";")
	case p.isTypeStart():
		return p.parseLocalDecl()
	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s := &exprStmt{X: x}
		s.Line = line
		return s, p.expect(";")
	}
}

// parseLocalDecl parses "type declarator [= init] (, declarator [= init])* ;"
// Multiple declarators expand to a block of declStmts.
func (p *parser) parseLocalDecl() (stmt, error) {
	line := p.tok.line
	base, err := p.parseTypeBase()
	if err != nil {
		return nil, err
	}
	var decls []stmt
	for {
		ty, name, isFn, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if isFn || name == "" {
			return nil, p.errf("bad local declaration")
		}
		d := &declStmt{Name: name, Ty: ty}
		d.Line = line
		if p.isPunct("=") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			init, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		decls = append(decls, d)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	b := &blockStmt{List: decls, NoScope: true}
	b.Line = line
	return b, nil
}

func (p *parser) parseIf() (stmt, error) {
	s := &ifStmt{}
	s.Line = p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	s.Cond = cond
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	s.Then, err = p.parseStmt()
	if err != nil {
		return nil, err
	}
	if p.isKw("else") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		s.Else, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) parseWhile() (stmt, error) {
	s := &whileStmt{}
	s.Line = p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	s.Cond = cond
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	s.Body, err = p.parseStmt()
	return s, err
}

func (p *parser) parseDoWhile() (stmt, error) {
	s := &whileStmt{Do: true}
	s.Line = p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	if !p.isKw("while") {
		return nil, p.errf("expected while after do body")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	s.Cond, err = p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return s, p.expect(";")
}

func (p *parser) parseFor() (stmt, error) {
	s := &forStmt{}
	s.Line = p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		if p.isTypeStart() {
			init, err := p.parseLocalDecl() // consumes ';'
			if err != nil {
				return nil, err
			}
			s.Init = init
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			es := &exprStmt{X: x}
			es.Line = s.Line
			s.Init = es
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	} else if err := p.advance(); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = c
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	s.Body = body
	return s, err
}

func (p *parser) parseSwitch() (stmt, error) {
	s := &switchStmt{}
	s.Line = p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	s.X = x
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	// Each case body runs until the next case/default/}. MiniC switch
	// bodies do not fall through: each case is implicitly terminated
	// (break is accepted and redundant). This matches how the workloads
	// use switch and maps directly onto the LLVA mbr instruction.
	for !p.isPunct("}") {
		switch {
		case p.isKw("case"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			v, err := p.parseConstIntExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			s.Cases = append(s.Cases, switchCase{Val: v, Body: body})
		case p.isKw("default"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			s.Default = body
			if s.Default == nil {
				s.Default = []stmt{}
			}
		default:
			return nil, p.errf("expected case or default in switch, got %s", p.tok)
		}
	}
	return s, p.advance()
}

func (p *parser) parseCaseBody() ([]stmt, error) {
	var body []stmt
	for !p.isKw("case") && !p.isKw("default") && !p.isPunct("}") {
		if p.isKw("break") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			// implicit: case bodies never fall through
			continue
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
	return body, nil
}

// ------------------------------------------------------------ expressions

func (p *parser) parseExpr() (expr, error) { return p.parseAssign() }

func (p *parser) parseAssign() (expr, error) {
	l, err := p.parseConditional()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tPunct {
		switch p.tok.text {
		case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
			op := p.tok.text
			line := p.tok.line
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			a := &assignExpr{Op: op, L: l, R: r}
			a.Line = line
			return a, nil
		}
	}
	return l, nil
}

func (p *parser) parseConditional() (expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.isPunct("?") {
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		thn, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		els, err := p.parseConditional()
		if err != nil {
			return nil, err
		}
		e := &condExpr{Cond: c, Then: thn, Else: els}
		e.Line = line
		return e, nil
	}
	return c, nil
}

// binary operator precedence, lowest first
var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok.kind != tPunct {
			return l, nil
		}
		prec, ok := binPrec[p.tok.text]
		if !ok || prec < minPrec {
			return l, nil
		}
		op := p.tok.text
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		b := &binaryExpr{Op: op, X: l, Y: r}
		b.Line = line
		l = b
	}
}

func (p *parser) parseUnary() (expr, error) {
	line := p.tok.line
	if p.tok.kind == tPunct {
		switch p.tok.text {
		case "-", "!", "~", "*", "&":
			op := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			u := &unaryExpr{Op: op, X: x}
			u.Line = line
			return u, nil
		case "+":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return p.parseUnary()
		case "++", "--":
			op := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			u := &unaryExpr{Op: op, X: x}
			u.Line = line
			return u, nil
		case "(":
			// Could be a cast "(type) expr" or a parenthesized expression.
			nxt, err := p.peekTok()
			if err != nil {
				return nil, err
			}
			isCast := false
			if nxt.kind == tKeyword {
				switch nxt.text {
				case "void", "char", "short", "int", "long", "float",
					"double", "unsigned", "signed", "struct", "const":
					isCast = true
				}
			} else if nxt.kind == tIdent {
				_, isCast = p.typedefs[nxt.text]
			}
			if isCast {
				if err := p.advance(); err != nil { // '('
					return nil, err
				}
				base, err := p.parseTypeBase()
				if err != nil {
					return nil, err
				}
				ty, name, _, err := p.parseDeclarator(base)
				if err != nil {
					return nil, err
				}
				if name != "" {
					return nil, p.errf("unexpected name in cast")
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				c := &castExpr{Ty: ty, X: x}
				c.Line = line
				return c, nil
			}
		}
	}
	if p.isKw("sizeof") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		base, err := p.parseTypeBase()
		if err != nil {
			return nil, err
		}
		ty, _, _, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		s := &sizeofExpr{Ty: ty}
		s.Line = line
		return s, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		line := p.tok.line
		switch {
		case p.isPunct("("):
			if err := p.advance(); err != nil {
				return nil, err
			}
			var args []expr
			for !p.isPunct(")") {
				if len(args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			c := &callExpr{Fn: x, Args: args}
			c.Line = line
			x = c
		case p.isPunct("["):
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			ie := &indexExpr{X: x, Idx: idx}
			ie.Line = line
			x = ie
		case p.isPunct("."):
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			me := &memberExpr{X: x, Name: name}
			me.Line = line
			x = me
		case p.isPunct("->"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			me := &memberExpr{X: x, Name: name, Arrow: true}
			me.Line = line
			x = me
		case p.isPunct("++"), p.isPunct("--"):
			op := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			pe := &postfixExpr{Op: op, X: x}
			pe.Line = line
			x = pe
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (expr, error) {
	line := p.tok.line
	switch p.tok.kind {
	case tInt:
		t := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		e := &intLit{Val: t.ival, Ty: p.intLitType(t)}
		e.Line = line
		return e, nil
	case tChar:
		t := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		e := &intLit{Val: t.ival, Ty: p.ctx.SByte()}
		e.Line = line
		return e, nil
	case tFloat:
		t := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		e := &floatLit{Val: t.fval, Ty: p.ctx.Double()}
		e.Line = line
		return e, nil
	case tString:
		t := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Adjacent string literals concatenate, as in C.
		val := t.text
		for p.tok.kind == tString {
			val += p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		e := &strLit{Val: val}
		e.Line = line
		return e, nil
	case tIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		e := &identExpr{Name: name}
		e.Line = line
		return e, nil
	}
	if p.isPunct("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return x, p.expect(")")
	}
	return nil, p.errf("expected expression, got %s", p.tok)
}

// intLitType picks the literal's type from its suffixes and magnitude.
func (p *parser) intLitType(t tok) *core.Type {
	hasU, hasL := false, false
	for i := len(t.text) - 1; i >= 0; i-- {
		switch t.text[i] {
		case 'u':
			hasU = true
			continue
		case 'l':
			hasL = true
			continue
		}
		break
	}
	switch {
	case hasU && hasL:
		return p.ctx.ULong()
	case hasL:
		return p.ctx.Long()
	case hasU:
		if t.ival > 0xffffffff {
			return p.ctx.ULong()
		}
		return p.ctx.UInt()
	case t.ival > 0x7fffffff:
		return p.ctx.Long()
	default:
		return p.ctx.Int()
	}
}

// parseInitializer parses a global initializer: expression or brace list.
func (p *parser) parseInitializer() (expr, error) {
	if p.isPunct("{") {
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		lst := &initList{}
		lst.Line = line
		for !p.isPunct("}") {
			if len(lst.Elems) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
				if p.isPunct("}") { // trailing comma
					break
				}
			}
			e, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			lst.Elems = append(lst.Elems, e)
		}
		return lst, p.advance()
	}
	return p.parseAssign()
}
