package minic

import (
	"llva/internal/core"
)

// ------------------------------------------------------------ conversions

// rank orders numeric types for the usual arithmetic conversions.
func rank(t *core.Type) int {
	switch t.Kind() {
	case core.DoubleKind:
		return 10
	case core.FloatKind:
		return 9
	case core.ULongKind:
		return 8
	case core.LongKind:
		return 7
	case core.UIntKind:
		return 6
	case core.IntKind:
		return 5
	case core.UShortKind:
		return 4
	case core.ShortKind:
		return 3
	case core.UByteKind:
		return 2
	case core.SByteKind:
		return 1
	case core.BoolKind:
		return 0
	}
	return -1
}

// commonType implements C's usual arithmetic conversions (simplified):
// both operands convert to the higher-ranked type, with everything below
// int promoted to int first.
func (fg *fgen) commonType(a, b *core.Type) *core.Type {
	ra, rb := rank(a), rank(b)
	hi := a
	if rb > ra {
		hi = b
	}
	if rank(hi) < 5 { // integer promotion
		return fg.g.ctx.Int()
	}
	return hi
}

// convert coerces v to type to, inserting a cast when needed.
func (fg *fgen) convert(v core.Value, to *core.Type, line int) core.Value {
	from := v.Type()
	if from == to {
		return v
	}
	if c, ok := v.(*core.Constant); ok {
		if folded := core.FoldCast(c, to); folded != nil {
			return folded
		}
	}
	if err := core.CheckCast(from, to); err != nil {
		fg.g.fail(line, "cannot convert %s to %s", from, to)
	}
	return fg.b.Cast(v, to, "")
}

// genCond evaluates e as a branch condition (bool). Non-bool scalars
// compare against zero, as in C.
func (fg *fgen) genCond(e expr) core.Value {
	v := fg.genExpr(e)
	t := v.Type()
	if t.Kind() == core.BoolKind {
		return v
	}
	line := lineOf(e)
	switch {
	case t.IsInteger():
		return fg.b.SetNE(v, core.NewUint(t, 0), "")
	case t.IsFloat():
		return fg.b.SetNE(v, core.NewFloat(t, 0), "")
	case t.Kind() == core.PointerKind:
		return fg.b.SetNE(v, core.NewNull(t), "")
	}
	fg.g.fail(line, "expression of type %s is not a condition", t)
	return nil
}

// ------------------------------------------------------------------ exprs

// genExpr evaluates e as an rvalue.
func (fg *fgen) genExpr(e expr) core.Value {
	switch x := e.(type) {
	case *intLit:
		return core.NewUint(x.Ty, x.Val)
	case *floatLit:
		return core.NewFloat(x.Ty, x.Val)
	case *strLit:
		gv := fg.g.internString(x.Val)
		zero := core.NewUint(fg.g.ctx.Long(), 0)
		return fg.b.GEP(gv, []core.Value{zero, zero}, "")
	case *identExpr:
		return fg.genIdent(x)
	case *unaryExpr:
		return fg.genUnary(x)
	case *postfixExpr:
		return fg.genIncDec(x.X, x.Op, true, x.Line)
	case *binaryExpr:
		return fg.genBinary(x)
	case *assignExpr:
		return fg.genAssign(x)
	case *condExpr:
		return fg.genCondExpr(x)
	case *callExpr:
		return fg.genCall(x)
	case *indexExpr, *memberExpr:
		addr, ty := fg.genAddr(e)
		if ty.Kind() == core.ArrayKind {
			return fg.decay(addr, ty)
		}
		return fg.b.Load(addr, "")
	case *castExpr:
		v := fg.genExpr(x.X)
		return fg.convert(v, x.Ty, x.Line)
	case *sizeofExpr:
		return core.NewUint(fg.g.ctx.Long(), uint64(fg.g.m.Layout().Size(x.Ty)))
	}
	fg.g.fail(lineOf(e), "unhandled expression %T", e)
	return nil
}

// decay converts an array address to a pointer to its first element.
func (fg *fgen) decay(addr core.Value, arrTy *core.Type) core.Value {
	zero := core.NewUint(fg.g.ctx.Long(), 0)
	return fg.b.GEP(addr, []core.Value{zero, zero}, "")
}

func (fg *fgen) genIdent(x *identExpr) core.Value {
	if l, ok := fg.lookup(x.Name); ok {
		if l.ty.Kind() == core.ArrayKind {
			return fg.decay(l.addr, l.ty)
		}
		return fg.b.Load(l.addr, x.Name+".val")
	}
	if gv := fg.g.m.Global(x.Name); gv != nil {
		if gv.ValueType().Kind() == core.ArrayKind {
			return fg.decay(gv, gv.ValueType())
		}
		return fg.b.Load(gv, x.Name+".val")
	}
	if f := fg.g.lookupFunc(x.Name, x.Line); f != nil {
		return f
	}
	fg.g.fail(x.Line, "undefined identifier %s", x.Name)
	return nil
}

// genAddr evaluates e as an lvalue, returning (address, pointee type).
func (fg *fgen) genAddr(e expr) (core.Value, *core.Type) {
	switch x := e.(type) {
	case *identExpr:
		if l, ok := fg.lookup(x.Name); ok {
			return l.addr, l.ty
		}
		if gv := fg.g.m.Global(x.Name); gv != nil {
			return gv, gv.ValueType()
		}
		fg.g.fail(x.Line, "undefined identifier %s", x.Name)
	case *unaryExpr:
		if x.Op == "*" {
			p := fg.genExpr(x.X)
			if p.Type().Kind() != core.PointerKind {
				fg.g.fail(x.Line, "dereference of non-pointer %s", p.Type())
			}
			return p, p.Type().Elem()
		}
	case *indexExpr:
		return fg.genIndexAddr(x)
	case *memberExpr:
		return fg.genMemberAddr(x)
	case *castExpr:
		// (T*)p used as an lvalue target — rare but allowed via *cast
		fg.g.fail(x.Line, "cast expression is not an lvalue")
	}
	fg.g.fail(lineOf(e), "expression is not an lvalue")
	return nil, nil
}

func (fg *fgen) genIndexAddr(x *indexExpr) (core.Value, *core.Type) {
	idx := fg.genExpr(x.Idx)
	idx = fg.convert(idx, fg.g.ctx.Long(), x.Line)
	// Array lvalue: index through [0, i]; pointer rvalue: index through [i].
	switch base := x.X.(type) {
	case *identExpr, *indexExpr, *memberExpr:
		// Try the lvalue path first so multi-dimensional arrays index in
		// place rather than through a decayed copy.
		addr, ty := fg.genAddr(base)
		if ty.Kind() == core.ArrayKind {
			zero := core.NewUint(fg.g.ctx.Long(), 0)
			p := fg.b.GEP(addr, []core.Value{zero, idx}, "")
			return p, ty.Elem()
		}
		if ty.Kind() == core.PointerKind {
			ptr := fg.b.Load(addr, "")
			p := fg.b.GEP(ptr, []core.Value{idx}, "")
			return p, ty.Elem()
		}
		fg.g.fail(x.Line, "cannot index %s", ty)
	default:
		ptr := fg.genExpr(x.X)
		if ptr.Type().Kind() != core.PointerKind {
			fg.g.fail(x.Line, "cannot index %s", ptr.Type())
		}
		p := fg.b.GEP(ptr, []core.Value{idx}, "")
		return p, ptr.Type().Elem()
	}
	return nil, nil
}

func (fg *fgen) genMemberAddr(x *memberExpr) (core.Value, *core.Type) {
	var base core.Value
	var sty *core.Type
	if x.Arrow {
		base = fg.genExpr(x.X)
		if base.Type().Kind() != core.PointerKind {
			fg.g.fail(x.Line, "-> on non-pointer %s", base.Type())
		}
		sty = base.Type().Elem()
	} else {
		var t *core.Type
		base, t = fg.genAddr(x.X)
		sty = t
	}
	if sty.Kind() != core.StructKind {
		fg.g.fail(x.Line, "member access on non-struct %s", sty)
	}
	names := fg.g.fields[sty]
	fi := -1
	for i, n := range names {
		if n == x.Name {
			fi = i
			break
		}
	}
	if fi < 0 {
		fg.g.fail(x.Line, "%s has no field %s", sty, x.Name)
	}
	zero := core.NewUint(fg.g.ctx.Long(), 0)
	idx := core.NewUint(fg.g.ctx.UByte(), uint64(fi))
	p := fg.b.GEP(base, []core.Value{zero, idx}, "")
	return p, sty.Fields()[fi]
}

func (fg *fgen) genUnary(x *unaryExpr) core.Value {
	switch x.Op {
	case "-":
		v := fg.genExpr(x.X)
		t := v.Type()
		if rank(t) < 5 && t.IsInteger() || t.Kind() == core.BoolKind {
			v = fg.convert(v, fg.g.ctx.Int(), x.Line)
			t = v.Type()
		}
		if t.IsFloat() {
			return fg.b.Sub(core.NewFloat(t, 0), v, "")
		}
		return fg.b.Sub(core.NewUint(t, 0), v, "")
	case "~":
		v := fg.genExpr(x.X)
		t := v.Type()
		if !t.IsInteger() {
			fg.g.fail(x.Line, "~ on non-integer %s", t)
		}
		return fg.b.Xor(v, core.NewInt(t, -1), "")
	case "!":
		c := fg.genCond(x.X)
		return fg.b.Xor(c, core.NewBool(fg.g.ctx.Bool(), true), "")
	case "*":
		p := fg.genExpr(x.X)
		if p.Type().Kind() != core.PointerKind {
			fg.g.fail(x.Line, "dereference of non-pointer %s", p.Type())
		}
		elem := p.Type().Elem()
		if elem.Kind() == core.ArrayKind {
			return fg.decay(p, elem)
		}
		return fg.b.Load(p, "")
	case "&":
		addr, ty := fg.genAddr(x.X)
		_ = ty
		return addr
	case "++", "--":
		return fg.genIncDec(x.X, x.Op, false, x.Line)
	}
	fg.g.fail(x.Line, "unhandled unary %s", x.Op)
	return nil
}

// genIncDec implements ++/-- (pre and post) for integers, floats and
// pointers.
func (fg *fgen) genIncDec(target expr, op string, post bool, line int) core.Value {
	addr, ty := fg.genAddr(target)
	old := fg.b.Load(addr, "")
	var next core.Value
	switch {
	case ty.IsInteger():
		one := core.NewUint(ty, 1)
		if op == "++" {
			next = fg.b.Add(old, one, "")
		} else {
			next = fg.b.Sub(old, one, "")
		}
	case ty.IsFloat():
		one := core.NewFloat(ty, 1)
		if op == "++" {
			next = fg.b.Add(old, one, "")
		} else {
			next = fg.b.Sub(old, one, "")
		}
	case ty.Kind() == core.PointerKind:
		step := int64(1)
		if op == "--" {
			step = -1
		}
		next = fg.b.GEP(old, []core.Value{core.NewInt(fg.g.ctx.Long(), step)}, "")
	default:
		fg.g.fail(line, "%s on type %s", op, ty)
	}
	fg.b.Store(next, addr)
	if post {
		return old
	}
	return next
}

func (fg *fgen) genBinary(x *binaryExpr) core.Value {
	switch x.Op {
	case "&&", "||":
		return fg.genShortCircuit(x)
	}
	a := fg.genExpr(x.X)
	b := fg.genExpr(x.Y)
	return fg.genBinOp(x.Op, a, b, x.Line)
}

func (fg *fgen) genBinOp(op string, a, b core.Value, line int) core.Value {
	at, bt := a.Type(), b.Type()

	// pointer arithmetic
	if at.Kind() == core.PointerKind || bt.Kind() == core.PointerKind {
		switch op {
		case "+":
			if at.Kind() == core.PointerKind && bt.IsInteger() {
				return fg.b.GEP(a, []core.Value{fg.convert(b, fg.g.ctx.Long(), line)}, "")
			}
			if bt.Kind() == core.PointerKind && at.IsInteger() {
				return fg.b.GEP(b, []core.Value{fg.convert(a, fg.g.ctx.Long(), line)}, "")
			}
		case "-":
			if at.Kind() == core.PointerKind && bt.IsInteger() {
				i := fg.convert(b, fg.g.ctx.Long(), line)
				neg := fg.b.Sub(core.NewUint(fg.g.ctx.Long(), 0), i, "")
				return fg.b.GEP(a, []core.Value{neg}, "")
			}
			if at.Kind() == core.PointerKind && bt.Kind() == core.PointerKind {
				if at != bt {
					fg.g.fail(line, "subtraction of incompatible pointers %s and %s", at, bt)
				}
				l := fg.g.ctx.Long()
				ai := fg.b.Cast(a, l, "")
				bi := fg.b.Cast(b, l, "")
				diff := fg.b.Sub(ai, bi, "")
				sz := fg.g.m.Layout().Size(at.Elem())
				return fg.b.Div(diff, core.NewInt(l, sz), "")
			}
		case "==", "!=", "<", ">", "<=", ">=":
			if at != bt {
				// allow comparing any pointer against a null of another
				// pointer type by casting
				if at.Kind() == core.PointerKind && bt.Kind() == core.PointerKind {
					b = fg.b.Cast(b, at, "")
				} else if bt.IsInteger() {
					b = fg.convert(b, fg.g.ctx.Long(), line)
					a = fg.b.Cast(a, fg.g.ctx.Long(), "")
				} else {
					fg.g.fail(line, "bad pointer comparison %s vs %s", at, bt)
				}
			}
			return fg.cmp(op, a, b)
		default:
			fg.g.fail(line, "operator %s on pointer", op)
		}
		fg.g.fail(line, "bad pointer arithmetic")
	}

	switch op {
	case "<<", ">>":
		if rank(at) < 5 {
			a = fg.convert(a, fg.g.ctx.Int(), line)
		}
		amt := fg.convert(b, fg.g.ctx.UByte(), line)
		if op == "<<" {
			return fg.b.Shl(a, amt, "")
		}
		return fg.b.Shr(a, amt, "")
	}

	ct := fg.commonType(at, bt)
	a = fg.convert(a, ct, line)
	b = fg.convert(b, ct, line)
	switch op {
	case "+":
		return fg.b.Add(a, b, "")
	case "-":
		return fg.b.Sub(a, b, "")
	case "*":
		return fg.b.Mul(a, b, "")
	case "/":
		return fg.b.Div(a, b, "")
	case "%":
		return fg.b.Rem(a, b, "")
	case "&":
		return fg.b.And(a, b, "")
	case "|":
		return fg.b.Or(a, b, "")
	case "^":
		return fg.b.Xor(a, b, "")
	case "==", "!=", "<", ">", "<=", ">=":
		return fg.cmp(op, a, b)
	}
	fg.g.fail(line, "unhandled operator %s", op)
	return nil
}

func (fg *fgen) cmp(op string, a, b core.Value) core.Value {
	switch op {
	case "==":
		return fg.b.SetEQ(a, b, "")
	case "!=":
		return fg.b.SetNE(a, b, "")
	case "<":
		return fg.b.SetLT(a, b, "")
	case ">":
		return fg.b.SetGT(a, b, "")
	case "<=":
		return fg.b.SetLE(a, b, "")
	default:
		return fg.b.SetGE(a, b, "")
	}
}

// genShortCircuit lowers && and || with control flow and a phi.
func (fg *fgen) genShortCircuit(x *binaryExpr) core.Value {
	boolTy := fg.g.ctx.Bool()
	a := fg.genCond(x.X)
	aEnd := fg.b.Block()
	evalB := fg.newBlock("sc.rhs")
	joinB := fg.newBlock("sc.end")
	if x.Op == "&&" {
		fg.b.CondBr(a, evalB, joinB)
	} else {
		fg.b.CondBr(a, joinB, evalB)
	}
	fg.setBlock(evalB)
	b := fg.genCond(x.Y)
	bEnd := fg.b.Block()
	fg.b.Br(joinB)
	fg.setBlock(joinB)
	phi := fg.b.Phi(boolTy, "")
	short := core.NewBool(boolTy, x.Op == "||")
	phi.AddPhiIncoming(short, aEnd)
	phi.AddPhiIncoming(b, bEnd)
	return phi
}

// genCondExpr lowers c ? a : b.
func (fg *fgen) genCondExpr(x *condExpr) core.Value {
	cond := fg.genCond(x.Cond)
	thenB := fg.newBlock("sel.then")
	elseB := fg.newBlock("sel.else")
	joinB := fg.newBlock("sel.end")
	fg.b.CondBr(cond, thenB, elseB)

	fg.setBlock(thenB)
	a := fg.genExpr(x.Then)
	aBlk := fg.b.Block()

	fg.setBlock(elseB)
	b := fg.genExpr(x.Else)
	bBlk := fg.b.Block()

	var ct *core.Type
	if a.Type() == b.Type() {
		ct = a.Type()
	} else if a.Type().Kind() == core.PointerKind && b.Type().Kind() == core.PointerKind {
		ct = a.Type()
	} else {
		ct = fg.commonType(a.Type(), b.Type())
	}
	fg.setBlock(aBlk)
	// conversions must be emitted in the respective arms, before the join
	a2 := fg.convert(a, ct, x.Line)
	fg.b.Br(joinB)
	aBlk = fg.b.Block()

	fg.setBlock(bBlk)
	b2 := fg.convert(b, ct, x.Line)
	fg.b.Br(joinB)
	bBlk = fg.b.Block()

	fg.setBlock(joinB)
	phi := fg.b.Phi(ct, "")
	phi.AddPhiIncoming(a2, aBlk)
	phi.AddPhiIncoming(b2, bBlk)
	return phi
}

func (fg *fgen) genAssign(x *assignExpr) core.Value {
	addr, ty := fg.genAddr(x.L)
	if !ty.IsFirstClass() {
		fg.g.fail(x.Line, "cannot assign to value of type %s", ty)
	}
	var v core.Value
	if x.Op == "=" {
		v = fg.convert(fg.genExpr(x.R), ty, x.Line)
	} else {
		old := fg.b.Load(addr, "")
		r := fg.genExpr(x.R)
		op := x.Op[:len(x.Op)-1] // strip '='
		v = fg.convert(fg.genBinOp(op, old, r, x.Line), ty, x.Line)
	}
	fg.b.Store(v, addr)
	return v
}

func (fg *fgen) genCall(x *callExpr) core.Value {
	var callee core.Value
	if id, ok := x.Fn.(*identExpr); ok {
		// Function-pointer locals shadow function names.
		if l, found := fg.lookup(id.Name); found {
			callee = fg.b.Load(l.addr, "")
		} else if gv := fg.g.m.Global(id.Name); gv != nil &&
			gv.ValueType().Kind() == core.PointerKind &&
			gv.ValueType().Elem().Kind() == core.FunctionKind {
			callee = fg.b.Load(gv, "")
		} else if f := fg.g.lookupFunc(id.Name, id.Line); f != nil {
			callee = f
		} else {
			fg.g.fail(x.Line, "call to undefined function %s", id.Name)
		}
	} else {
		callee = fg.genExpr(x.Fn)
	}
	ct := callee.Type()
	if ct.Kind() != core.PointerKind || ct.Elem().Kind() != core.FunctionKind {
		fg.g.fail(x.Line, "called value has type %s", ct)
	}
	sig := ct.Elem()
	if len(x.Args) != len(sig.Params()) {
		fg.g.fail(x.Line, "call with %d argument(s), want %d", len(x.Args), len(sig.Params()))
	}
	args := make([]core.Value, len(x.Args))
	for i, ae := range x.Args {
		args[i] = fg.convert(fg.genExpr(ae), sig.Params()[i], x.Line)
	}
	return fg.b.Call(callee, args, "")
}
