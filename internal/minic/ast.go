package minic

import "llva/internal/core"

// The AST. Types are resolved to core (LLVA) types during parsing, since
// MiniC's type system is a direct image of LLVA's: char = sbyte,
// unsigned char = ubyte, and so on.

// node carries a source line for error messages.
type node struct{ Line int }

// ---- expressions ----

type expr interface{ exprNode() }

type intLit struct {
	node
	Val uint64
	Ty  *core.Type
}

type floatLit struct {
	node
	Val float64
	Ty  *core.Type
}

type strLit struct {
	node
	Val string
}

type identExpr struct {
	node
	Name string
}

type unaryExpr struct {
	node
	Op string // - ! ~ * & ++ -- (pre)
	X  expr
}

type postfixExpr struct {
	node
	Op string // ++ --
	X  expr
}

type binaryExpr struct {
	node
	Op   string
	X, Y expr
}

type assignExpr struct {
	node
	Op   string // = += -= ...
	L, R expr
}

type condExpr struct {
	node
	Cond, Then, Else expr
}

type callExpr struct {
	node
	Fn   expr
	Args []expr
}

type indexExpr struct {
	node
	X, Idx expr
}

type memberExpr struct {
	node
	X     expr
	Name  string
	Arrow bool // p->f vs s.f
}

type castExpr struct {
	node
	Ty *core.Type
	X  expr
}

type sizeofExpr struct {
	node
	Ty *core.Type
}

// initList is a brace-enclosed initializer for global arrays/structs.
type initList struct {
	node
	Elems []expr
}

func (*intLit) exprNode()      {}
func (*floatLit) exprNode()    {}
func (*strLit) exprNode()      {}
func (*identExpr) exprNode()   {}
func (*unaryExpr) exprNode()   {}
func (*postfixExpr) exprNode() {}
func (*binaryExpr) exprNode()  {}
func (*assignExpr) exprNode()  {}
func (*condExpr) exprNode()    {}
func (*callExpr) exprNode()    {}
func (*indexExpr) exprNode()   {}
func (*memberExpr) exprNode()  {}
func (*castExpr) exprNode()    {}
func (*sizeofExpr) exprNode()  {}
func (*initList) exprNode()    {}

// ---- statements ----

type stmt interface{ stmtNode() }

type declStmt struct {
	node
	Name string
	Ty   *core.Type
	Init expr // may be nil
}

type exprStmt struct {
	node
	X expr
}

type blockStmt struct {
	node
	List []stmt
	// NoScope marks synthetic groups (multi-declarator statements) that
	// must not open a new lexical scope.
	NoScope bool
}

type ifStmt struct {
	node
	Cond       expr
	Then, Else stmt // Else may be nil
}

type whileStmt struct {
	node
	Cond expr
	Body stmt
	Do   bool // do-while
}

type forStmt struct {
	node
	Init stmt // may be nil (declStmt or exprStmt)
	Cond expr // may be nil
	Post expr // may be nil
	Body stmt
}

type returnStmt struct {
	node
	X expr // may be nil
}

type breakStmt struct{ node }
type continueStmt struct{ node }

type switchStmt struct {
	node
	X       expr
	Cases   []switchCase
	Default []stmt // nil if absent
}

type switchCase struct {
	Val  int64
	Body []stmt
}

func (*declStmt) stmtNode()     {}
func (*exprStmt) stmtNode()     {}
func (*blockStmt) stmtNode()    {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*forStmt) stmtNode()      {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}
func (*switchStmt) stmtNode()   {}

// ---- top level ----

type param struct {
	Name string
	Ty   *core.Type
}

type funcDecl struct {
	node
	Name   string
	Ret    *core.Type
	Params []param
	Body   *blockStmt // nil for extern declarations
	Static bool
}

type globalDecl struct {
	node
	Name   string
	Ty     *core.Type
	Init   expr // constant expression or nil
	Extern bool
	Const  bool
}
