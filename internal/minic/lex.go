// Package minic is a small C front-end for LLVA: it compiles a C subset
// (integers, floats, pointers, arrays, structs, typedefs, the usual
// operators and control flow) to LLVA virtual object code. It substitutes
// for the GCC-based C front-end used in the paper, producing the same
// style of code: locals as allocas (promoted to SSA registers by the
// mem2reg pass), typed getelementptr for all addressing, and explicit
// casts everywhere (LLVA has no implicit coercion).
package minic

import (
	"fmt"
	"strings"
)

type tkind uint8

const (
	tEOF tkind = iota
	tIdent
	tInt
	tFloat
	tChar
	tString
	tPunct
	tKeyword
)

var keywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "unsigned": true, "signed": true,
	"struct": true, "typedef": true, "extern": true, "static": true,
	"const": true, "sizeof": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"return": true, "break": true, "continue": true,
	"switch": true, "case": true, "default": true,
}

type tok struct {
	kind tkind
	text string
	ival uint64
	fval float64
	line int
}

func (t tok) String() string {
	switch t.kind {
	case tEOF:
		return "end of file"
	case tString:
		return fmt.Sprintf("%q", t.text)
	case tChar:
		return fmt.Sprintf("'%s'", t.text)
	}
	return t.text
}

type lexer struct {
	src  string
	pos  int
	line int
	file string
}

func newMLexer(file, src string) *lexer { return &lexer{src: src, line: 1, file: file} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", l.file, l.line, fmt.Sprintf(format, args...))
}

var punct2 = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
	"<<": true, ">>": true, "++": true, "--": true, "->": true,
	"+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true,
}

var punct3 = map[string]bool{"<<=": true, ">>=": true}

func (l *lexer) next() (tok, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return tok{}, l.errf("unterminated comment")
			}
			l.pos += 2
		default:
			return l.lexOne()
		}
	}
	return tok{kind: tEOF, line: l.line}, nil
}

func (l *lexer) lexOne() (tok, error) {
	line := l.line
	c := l.src[l.pos]
	switch {
	case isAlpha(c):
		start := l.pos
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		if keywords[word] {
			return tok{kind: tKeyword, text: word, line: line}, nil
		}
		return tok{kind: tIdent, text: word, line: line}, nil
	case isNum(c):
		return l.lexNumber()
	case c == '\'':
		return l.lexChar()
	case c == '"':
		return l.lexString()
	default:
		// longest-match punctuation
		if l.pos+3 <= len(l.src) && punct3[l.src[l.pos:l.pos+3]] {
			t := tok{kind: tPunct, text: l.src[l.pos : l.pos+3], line: line}
			l.pos += 3
			return t, nil
		}
		if l.pos+2 <= len(l.src) && punct2[l.src[l.pos:l.pos+2]] {
			t := tok{kind: tPunct, text: l.src[l.pos : l.pos+2], line: line}
			l.pos += 2
			return t, nil
		}
		if strings.ContainsRune("+-*/%<>=!&|^~(){}[];,.?:", rune(c)) {
			l.pos++
			return tok{kind: tPunct, text: string(c), line: line}, nil
		}
	}
	return tok{}, l.errf("unexpected character %q", string(c))
}

func (l *lexer) lexNumber() (tok, error) {
	start := l.pos
	line := l.line
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
		var v uint64
		if _, err := fmt.Sscanf(l.src[start:l.pos], "%v", &v); err != nil {
			if _, err2 := fmt.Sscanf(l.src[start+2:l.pos], "%x", &v); err2 != nil {
				return tok{}, l.errf("bad hex literal %q", l.src[start:l.pos])
			}
		}
		return l.intSuffix(tok{kind: tInt, text: l.src[start:l.pos], ival: v, line: line})
	}
	isFlt := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isNum(c) {
			l.pos++
			continue
		}
		if c == '.' && !isFlt {
			isFlt = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) &&
			(isNum(l.src[l.pos+1]) || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+') {
			isFlt = true
			l.pos += 2
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if isFlt {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return tok{}, l.errf("bad float literal %q", text)
		}
		// optional f suffix
		if l.pos < len(l.src) && (l.src[l.pos] == 'f' || l.src[l.pos] == 'F') {
			l.pos++
		}
		return tok{kind: tFloat, text: text, fval: f, line: line}, nil
	}
	var v uint64
	if _, err := fmt.Sscanf(text, "%d", &v); err != nil {
		return tok{}, l.errf("bad integer literal %q", text)
	}
	return l.intSuffix(tok{kind: tInt, text: text, ival: v, line: line})
}

// intSuffix consumes optional u/l suffixes (recorded in text).
func (l *lexer) intSuffix(t tok) (tok, error) {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case 'u', 'U':
			t.text += "u"
			l.pos++
		case 'l', 'L':
			t.text += "l"
			l.pos++
		default:
			return t, nil
		}
	}
	return t, nil
}

func (l *lexer) lexChar() (tok, error) {
	line := l.line
	l.pos++
	if l.pos >= len(l.src) {
		return tok{}, l.errf("unterminated character literal")
	}
	var v byte
	if l.src[l.pos] == '\\' {
		l.pos++
		if l.pos >= len(l.src) {
			return tok{}, l.errf("unterminated character literal")
		}
		switch l.src[l.pos] {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		case '"':
			v = '"'
		default:
			return tok{}, l.errf("bad escape \\%c", l.src[l.pos])
		}
		l.pos++
	} else {
		v = l.src[l.pos]
		l.pos++
	}
	if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
		return tok{}, l.errf("unterminated character literal")
	}
	l.pos++
	return tok{kind: tChar, text: string(v), ival: uint64(v), line: line}, nil
}

func (l *lexer) lexString() (tok, error) {
	line := l.line
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return tok{kind: tString, text: b.String(), line: line}, nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '0':
				b.WriteByte(0)
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			default:
				return tok{}, l.errf("bad escape \\%c in string", l.src[l.pos])
			}
			l.pos++
			continue
		}
		if c == '\n' {
			return tok{}, l.errf("unterminated string literal")
		}
		b.WriteByte(c)
		l.pos++
	}
	return tok{}, l.errf("unterminated string literal")
}

func isAlpha(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isNum(c byte) bool   { return c >= '0' && c <= '9' }
func isAlnum(c byte) bool { return isAlpha(c) || isNum(c) }
func isHexDigit(c byte) bool {
	return isNum(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
