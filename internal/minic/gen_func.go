package minic

import (
	"fmt"

	"llva/internal/core"
)

// local is a named slot in the current function: addr points at the
// storage (an alloca or a global) of type ty.
type local struct {
	addr core.Value
	ty   *core.Type
}

// fgen generates IR for one function. In the style of C front-ends for
// LLVA, every local lives in an alloca and is accessed with load/store;
// the mem2reg pass later promotes these to SSA registers (paper, Fig. 2:
// "the translator preallocates all fixed-size alloca objects").
type fgen struct {
	g      *genCtx
	f      *core.Function
	b      *core.Builder
	scopes []map[string]local
	breaks []*core.BasicBlock
	conts  []*core.BasicBlock

	blockID    int
	terminated bool
}

func (g *genCtx) genFunc(fd *funcDecl) {
	f := g.m.Function(fd.Name)
	fg := &fgen{g: g, f: f, b: core.NewBuilder(f)}
	entry := f.NewBlock("entry")
	fg.b.SetBlock(entry)
	fg.pushScope()

	// Spill parameters to allocas so they are assignable.
	for i, pa := range fd.Params {
		a := fg.b.Alloca(pa.Ty, pa.Name+".addr")
		fg.b.Store(f.Params[i], a)
		fg.declare(pa.Name, a, pa.Ty, fd.Line)
	}
	fg.genBlockStmt(fd.Body)

	if !fg.terminated {
		ret := f.Signature().Ret()
		switch {
		case ret.Kind() == core.VoidKind:
			fg.b.RetVoid()
		case fd.Name == "main":
			fg.b.Ret(fg.zero(ret))
		default:
			// Falling off the end of a non-void function returns zero, as
			// the workloads never rely on it this keeps IR well-formed.
			fg.b.Ret(fg.zero(ret))
		}
	}
	fg.popScope()
}

func (fg *fgen) pushScope() { fg.scopes = append(fg.scopes, make(map[string]local)) }
func (fg *fgen) popScope()  { fg.scopes = fg.scopes[:len(fg.scopes)-1] }

func (fg *fgen) declare(name string, addr core.Value, ty *core.Type, line int) {
	s := fg.scopes[len(fg.scopes)-1]
	if _, dup := s[name]; dup {
		fg.g.fail(line, "%s redeclared in this scope", name)
	}
	s[name] = local{addr: addr, ty: ty}
}

func (fg *fgen) lookup(name string) (local, bool) {
	for i := len(fg.scopes) - 1; i >= 0; i-- {
		if l, ok := fg.scopes[i][name]; ok {
			return l, true
		}
	}
	return local{}, false
}

func (fg *fgen) newBlock(tag string) *core.BasicBlock {
	fg.blockID++
	return fg.f.NewBlock(fmt.Sprintf("%s%d", tag, fg.blockID))
}

// setBlock repositions the builder and clears the terminated flag.
func (fg *fgen) setBlock(bb *core.BasicBlock) {
	fg.b.SetBlock(bb)
	fg.terminated = false
}

// branchTo emits a branch to bb unless the current block already ended.
func (fg *fgen) branchTo(bb *core.BasicBlock) {
	if !fg.terminated {
		fg.b.Br(bb)
		fg.terminated = true
	}
}

func (fg *fgen) zero(ty *core.Type) core.Value {
	switch {
	case ty.IsInteger():
		return core.NewUint(ty, 0)
	case ty.IsFloat():
		return core.NewFloat(ty, 0)
	case ty.Kind() == core.BoolKind:
		return core.NewBool(ty, false)
	case ty.Kind() == core.PointerKind:
		return core.NewNull(ty)
	}
	fg.g.fail(0, "no zero value for %s", ty)
	return nil
}

// ------------------------------------------------------------- statements

func (fg *fgen) genBlockStmt(b *blockStmt) {
	if !b.NoScope {
		fg.pushScope()
		defer fg.popScope()
	}
	for _, s := range b.List {
		fg.genStmt(s)
	}
}

// startDeadBlockIfNeeded opens a fresh block for statements that follow a
// terminator (e.g. code after return); such code is unreachable but must
// still be well-formed.
func (fg *fgen) startDeadBlockIfNeeded() {
	if fg.terminated {
		fg.setBlock(fg.newBlock("dead"))
	}
}

func (fg *fgen) genStmt(s stmt) {
	fg.startDeadBlockIfNeeded()
	switch x := s.(type) {
	case *blockStmt:
		fg.genBlockStmt(x)
	case *exprStmt:
		fg.genExpr(x.X)
	case *declStmt:
		fg.genDecl(x)
	case *ifStmt:
		fg.genIf(x)
	case *whileStmt:
		fg.genWhile(x)
	case *forStmt:
		fg.genFor(x)
	case *returnStmt:
		fg.genReturn(x)
	case *breakStmt:
		if len(fg.breaks) == 0 {
			fg.g.fail(x.Line, "break outside loop or switch")
		}
		fg.branchTo(fg.breaks[len(fg.breaks)-1])
	case *continueStmt:
		if len(fg.conts) == 0 {
			fg.g.fail(x.Line, "continue outside loop")
		}
		fg.branchTo(fg.conts[len(fg.conts)-1])
	case *switchStmt:
		fg.genSwitch(x)
	default:
		fg.g.fail(0, "unhandled statement %T", s)
	}
}

func (fg *fgen) genDecl(d *declStmt) {
	ty := d.Ty
	if ty.Kind() == core.ArrayKind && ty.Len() == 0 {
		fg.g.fail(d.Line, "local array %s requires an explicit length", d.Name)
	}
	if !ty.IsSized() {
		fg.g.fail(d.Line, "cannot declare local of unsized type %s", ty)
	}
	a := fg.b.Alloca(ty, d.Name)
	fg.declare(d.Name, a, ty, d.Line)
	if d.Init != nil {
		v := fg.genExpr(d.Init)
		fg.b.Store(fg.convert(v, ty, d.Line), a)
	}
}

func (fg *fgen) genIf(s *ifStmt) {
	cond := fg.genCond(s.Cond)
	thenB := fg.newBlock("if.then")
	joinB := fg.newBlock("if.end")
	elseB := joinB
	if s.Else != nil {
		elseB = fg.newBlock("if.else")
	}
	fg.b.CondBr(cond, thenB, elseB)
	fg.setBlock(thenB)
	fg.genStmt(s.Then)
	fg.branchTo(joinB)
	if s.Else != nil {
		fg.setBlock(elseB)
		fg.genStmt(s.Else)
		fg.branchTo(joinB)
	}
	fg.setBlock(joinB)
}

func (fg *fgen) genWhile(s *whileStmt) {
	condB := fg.newBlock("while.cond")
	bodyB := fg.newBlock("while.body")
	endB := fg.newBlock("while.end")
	if s.Do {
		fg.b.Br(bodyB)
	} else {
		fg.b.Br(condB)
	}
	fg.setBlock(condB)
	fg.b.CondBr(fg.genCond(s.Cond), bodyB, endB)
	fg.setBlock(bodyB)
	fg.breaks = append(fg.breaks, endB)
	fg.conts = append(fg.conts, condB)
	fg.genStmt(s.Body)
	fg.breaks = fg.breaks[:len(fg.breaks)-1]
	fg.conts = fg.conts[:len(fg.conts)-1]
	fg.branchTo(condB)
	fg.setBlock(endB)
}

func (fg *fgen) genFor(s *forStmt) {
	fg.pushScope()
	if s.Init != nil {
		fg.genStmt(s.Init)
	}
	condB := fg.newBlock("for.cond")
	bodyB := fg.newBlock("for.body")
	postB := fg.newBlock("for.post")
	endB := fg.newBlock("for.end")
	fg.b.Br(condB)
	fg.setBlock(condB)
	if s.Cond != nil {
		fg.b.CondBr(fg.genCond(s.Cond), bodyB, endB)
	} else {
		fg.b.Br(bodyB)
	}
	fg.setBlock(bodyB)
	fg.breaks = append(fg.breaks, endB)
	fg.conts = append(fg.conts, postB)
	fg.genStmt(s.Body)
	fg.breaks = fg.breaks[:len(fg.breaks)-1]
	fg.conts = fg.conts[:len(fg.conts)-1]
	fg.branchTo(postB)
	fg.setBlock(postB)
	if s.Post != nil {
		fg.genExpr(s.Post)
	}
	fg.branchTo(condB)
	fg.setBlock(endB)
	fg.popScope()
}

func (fg *fgen) genReturn(s *returnStmt) {
	ret := fg.f.Signature().Ret()
	if s.X == nil {
		if ret.Kind() != core.VoidKind {
			fg.g.fail(s.Line, "return without value in non-void function")
		}
		fg.b.RetVoid()
	} else {
		if ret.Kind() == core.VoidKind {
			fg.g.fail(s.Line, "return with value in void function")
		}
		v := fg.genExpr(s.X)
		fg.b.Ret(fg.convert(v, ret, s.Line))
	}
	fg.terminated = true
}

// genSwitch lowers a switch to the LLVA mbr (multi-way branch)
// instruction; case bodies never fall through (see parseSwitch).
func (fg *fgen) genSwitch(s *switchStmt) {
	v := fg.genExpr(s.X)
	if !v.Type().IsInteger() {
		fg.g.fail(s.Line, "switch requires an integer expression")
	}
	endB := fg.newBlock("sw.end")
	defB := endB
	if s.Default != nil {
		defB = fg.newBlock("sw.default")
	}
	var cases []int64
	var targets []*core.BasicBlock
	caseBlocks := make([]*core.BasicBlock, len(s.Cases))
	for i, c := range s.Cases {
		caseBlocks[i] = fg.newBlock("sw.case")
		cases = append(cases, c.Val)
		targets = append(targets, caseBlocks[i])
	}
	fg.b.Mbr(v, defB, cases, targets)
	fg.terminated = true
	fg.breaks = append(fg.breaks, endB)
	for i, c := range s.Cases {
		fg.setBlock(caseBlocks[i])
		fg.pushScope()
		for _, st := range c.Body {
			fg.genStmt(st)
		}
		fg.popScope()
		fg.branchTo(endB)
	}
	if s.Default != nil {
		fg.setBlock(defB)
		fg.pushScope()
		for _, st := range s.Default {
			fg.genStmt(st)
		}
		fg.popScope()
		fg.branchTo(endB)
	}
	fg.breaks = fg.breaks[:len(fg.breaks)-1]
	fg.setBlock(endB)
}
