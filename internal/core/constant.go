package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ConstKind discriminates the flavours of constants.
type ConstKind uint8

// The constant kinds. Scalar constants (int, float, bool, null, undef) may
// appear as instruction operands; aggregate constants (array, struct,
// zeroinitializer, string) appear as global variable initializers.
const (
	ConstInt ConstKind = iota
	ConstFloat
	ConstBool
	ConstNull
	ConstUndef
	ConstZero   // zeroinitializer (any sized type)
	ConstArray  // element list
	ConstStruct // field list
	ConstGlobal // address of a GlobalVariable or Function
)

// Constant is an immutable LLVA constant value. Constants do not track
// uses; passes never mutate them in place.
type Constant struct {
	CK    ConstKind
	ty    *Type
	I     uint64      // ConstInt (bit pattern), ConstBool (0/1)
	F     float64     // ConstFloat
	Elems []*Constant // ConstArray / ConstStruct
	Ref   Value       // ConstGlobal: the referenced *GlobalVariable or *Function
}

// Type returns the constant's type.
func (c *Constant) Type() *Type { return c.ty }

// Name returns "" — constants are unnamed.
func (c *Constant) Name() string { return "" }

// Ident renders the constant as an instruction operand.
func (c *Constant) Ident() string {
	switch c.CK {
	case ConstInt:
		if c.ty.IsSigned() {
			return strconv.FormatInt(c.Int64(), 10)
		}
		return strconv.FormatUint(c.I, 10)
	case ConstFloat:
		s := strconv.FormatFloat(c.F, 'g', -1, 64)
		// Assembly requires a disambiguating mark so floats re-parse as
		// floats.
		if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
			s += ".0"
		}
		return s
	case ConstBool:
		if c.I != 0 {
			return "true"
		}
		return "false"
	case ConstNull:
		return "null"
	case ConstUndef:
		return "undef"
	case ConstZero:
		return "zeroinitializer"
	case ConstArray:
		var b strings.Builder
		b.WriteString("[ ")
		for i, e := range c.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.ty.String())
			b.WriteByte(' ')
			b.WriteString(e.Ident())
		}
		b.WriteString(" ]")
		return b.String()
	case ConstStruct:
		var b strings.Builder
		b.WriteString("{ ")
		for i, e := range c.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.ty.String())
			b.WriteByte(' ')
			b.WriteString(e.Ident())
		}
		b.WriteString(" }")
		return b.String()
	case ConstGlobal:
		return c.Ref.Ident()
	}
	return "<bad-constant>"
}

// NewGlobalRef returns a constant holding the address of a global variable
// or function, for use in global initializers (e.g. function-pointer
// tables).
func NewGlobalRef(ref Value) *Constant {
	switch ref.(type) {
	case *GlobalVariable, *Function:
		return &Constant{CK: ConstGlobal, ty: ref.Type(), Ref: ref}
	}
	panic("core: NewGlobalRef of non-global value")
}

// NewUnresolvedGlobalRef returns a ConstGlobal of the given pointer type
// whose Ref is a Placeholder; parsers use it for forward references and
// call Resolve once the real global is known.
func NewUnresolvedGlobalRef(ty *Type, name string) *Constant {
	return &Constant{CK: ConstGlobal, ty: ty, Ref: NewPlaceholder(ty, name)}
}

// Resolve replaces an unresolved ConstGlobal's placeholder with the real
// global value, which must have the same type.
func (c *Constant) Resolve(ref Value) error {
	if c.CK != ConstGlobal {
		return errf("Resolve on non-global constant")
	}
	if ref.Type() != c.ty {
		return errf("global %%%s has type %s, initializer expects %s",
			ref.Name(), ref.Type(), c.ty)
	}
	c.Ref = ref
	return nil
}

// Int64 returns the constant integer's value sign-extended to 64 bits
// according to its type.
func (c *Constant) Int64() int64 {
	switch c.ty.Kind() {
	case SByteKind:
		return int64(int8(c.I))
	case ShortKind:
		return int64(int16(c.I))
	case IntKind:
		return int64(int32(c.I))
	default:
		return int64(c.I)
	}
}

// IsZero reports whether the constant is a zero of its type (integer 0,
// float +0, false, null, or zeroinitializer).
func (c *Constant) IsZero() bool {
	switch c.CK {
	case ConstInt, ConstBool:
		return c.I == 0
	case ConstFloat:
		return c.F == 0
	case ConstNull, ConstZero:
		return true
	}
	return false
}

// truncInt masks v to the bit width of integer type t (identity for 64-bit).
func truncInt(t *Type, v uint64) uint64 {
	switch t.Kind() {
	case UByteKind, SByteKind:
		return v & 0xff
	case UShortKind, ShortKind:
		return v & 0xffff
	case UIntKind, IntKind:
		return v & 0xffffffff
	case BoolKind:
		return v & 1
	}
	return v
}

// NewInt returns an integer constant of type t holding value v (truncated
// to t's width). t must be an integer type.
func NewInt(t *Type, v int64) *Constant {
	if !t.IsInteger() {
		panic("core: NewInt with non-integer type " + t.String())
	}
	return &Constant{CK: ConstInt, ty: t, I: truncInt(t, uint64(v))}
}

// NewUint returns an unsigned integer constant.
func NewUint(t *Type, v uint64) *Constant {
	if !t.IsInteger() {
		panic("core: NewUint with non-integer type " + t.String())
	}
	return &Constant{CK: ConstInt, ty: t, I: truncInt(t, v)}
}

// NewFloat returns a floating-point constant of type t (float or double).
// Float-typed constants are rounded to float32 precision.
func NewFloat(t *Type, v float64) *Constant {
	if !t.IsFloat() {
		panic("core: NewFloat with non-float type " + t.String())
	}
	if t.Kind() == FloatKind {
		v = float64(float32(v))
	}
	return &Constant{CK: ConstFloat, ty: t, F: v}
}

// NewBool returns the boolean constant for v.
func NewBool(t *Type, v bool) *Constant {
	if t.Kind() != BoolKind {
		panic("core: NewBool with non-bool type")
	}
	var i uint64
	if v {
		i = 1
	}
	return &Constant{CK: ConstBool, ty: t, I: i}
}

// NewNull returns the null pointer constant of pointer type t.
func NewNull(t *Type) *Constant {
	if t.Kind() != PointerKind {
		panic("core: NewNull with non-pointer type " + t.String())
	}
	return &Constant{CK: ConstNull, ty: t}
}

// NewUndef returns an undef constant of first-class type t.
func NewUndef(t *Type) *Constant { return &Constant{CK: ConstUndef, ty: t} }

// NewZero returns the zeroinitializer constant for any sized type t.
func NewZero(t *Type) *Constant { return &Constant{CK: ConstZero, ty: t} }

// NewArray returns an array constant. All elements must have type t.Elem()
// and len(elems) must equal t.Len().
func NewArray(t *Type, elems []*Constant) *Constant {
	if t.Kind() != ArrayKind || len(elems) != t.Len() {
		panic("core: bad array constant")
	}
	for _, e := range elems {
		if e.ty != t.Elem() {
			panic("core: array constant element type mismatch")
		}
	}
	return &Constant{CK: ConstArray, ty: t, Elems: elems}
}

// NewStruct returns a struct constant whose fields match t's field types.
func NewStruct(t *Type, elems []*Constant) *Constant {
	if t.Kind() != StructKind || len(elems) != len(t.Fields()) {
		panic("core: bad struct constant")
	}
	for i, e := range elems {
		if e.ty != t.Fields()[i] {
			panic("core: struct constant field type mismatch")
		}
	}
	return &Constant{CK: ConstStruct, ty: t, Elems: elems}
}

// NewString returns an array-of-ubyte constant holding s followed by a NUL
// terminator, matching C string literal lowering.
func NewString(ctx *TypeContext, s string) *Constant {
	ub := ctx.UByte()
	elems := make([]*Constant, len(s)+1)
	for i := 0; i < len(s); i++ {
		elems[i] = NewUint(ub, uint64(s[i]))
	}
	elems[len(s)] = NewUint(ub, 0)
	return NewArray(ctx.Array(len(s)+1, ub), elems)
}

// ConstantEqual reports whether two constants are structurally identical.
func ConstantEqual(a, b *Constant) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.CK != b.CK || a.ty != b.ty {
		return false
	}
	switch a.CK {
	case ConstInt, ConstBool:
		return a.I == b.I
	case ConstFloat:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case ConstNull, ConstUndef, ConstZero:
		return true
	case ConstArray, ConstStruct:
		if len(a.Elems) != len(b.Elems) {
			return false
		}
		for i := range a.Elems {
			if !ConstantEqual(a.Elems[i], b.Elems[i]) {
				return false
			}
		}
		return true
	case ConstGlobal:
		return a.Ref.Name() == b.Ref.Name()
	}
	return false
}

func (c *Constant) String() string {
	return fmt.Sprintf("%s %s", c.ty, c.Ident())
}
