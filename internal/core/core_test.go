package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func ctx() *TypeContext { return NewTypeContext() }

func TestTypeInterning(t *testing.T) {
	c := ctx()
	if c.Pointer(c.Int()) != c.Pointer(c.Int()) {
		t.Error("pointer types not interned")
	}
	if c.Array(4, c.Double()) != c.Array(4, c.Double()) {
		t.Error("array types not interned")
	}
	if c.Array(4, c.Double()) == c.Array(5, c.Double()) {
		t.Error("arrays of different length compare equal")
	}
	if c.Struct(c.Int(), c.Double()) != c.Struct(c.Int(), c.Double()) {
		t.Error("struct types not interned")
	}
	if c.Function(c.Int(), []*Type{c.Long()}, false) !=
		c.Function(c.Int(), []*Type{c.Long()}, false) {
		t.Error("function types not interned")
	}
	if c.Function(c.Int(), []*Type{c.Long()}, false) ==
		c.Function(c.Int(), []*Type{c.Long()}, true) {
		t.Error("variadic flag ignored in interning")
	}
}

func TestNamedStructRecursion(t *testing.T) {
	c := ctx()
	qt := c.NamedStruct("QT")
	if !qt.Opaque() {
		t.Error("fresh named struct must be opaque")
	}
	c.SetBody(qt, c.Double(), c.Array(4, c.Pointer(qt)))
	if qt.Opaque() {
		t.Error("struct still opaque after SetBody")
	}
	if qt.Fields()[1].Elem().Elem() != qt {
		t.Error("recursive field does not point back")
	}
	if c.NamedStruct("QT") != qt {
		t.Error("named structs are not nominal")
	}
	if !qt.IsSized() {
		t.Error("recursive struct with body should be sized")
	}
}

func TestTypeStringRendering(t *testing.T) {
	c := ctx()
	cases := map[string]*Type{
		"int":               c.Int(),
		"double*":           c.Pointer(c.Double()),
		"[8 x ubyte]":       c.Array(8, c.UByte()),
		"{ int, long* }":    c.Struct(c.Int(), c.Pointer(c.Long())),
		"void (int, ...)":   c.Function(c.Void(), []*Type{c.Int()}, true),
		"int (sbyte*)*":     c.Pointer(c.Function(c.Int(), []*Type{c.Pointer(c.SByte())}, false)),
		"[2 x [3 x float]]": c.Array(2, c.Array(3, c.Float())),
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestLayoutQuadTree(t *testing.T) {
	// The paper's Section 3.1 example: T[0].Children[3] is at byte 20
	// with 32-bit pointers and byte 32 with 64-bit pointers.
	c := ctx()
	qt := c.NamedStruct("QT")
	c.SetBody(qt, c.Double(), c.Array(4, c.Pointer(qt)))
	idx := []*Constant{
		NewInt(c.Long(), 0), NewUint(c.UByte(), 1), NewInt(c.Long(), 3),
	}
	if off, _ := (Layout{PointerSize: 8}).GEPOffset(qt, idx); off != 32 {
		t.Errorf("64-bit offset = %d, want 32", off)
	}
	if off, _ := (Layout{PointerSize: 4}).GEPOffset(qt, idx); off != 20 {
		t.Errorf("32-bit offset = %d, want 20", off)
	}
	if sz := (Layout{PointerSize: 8}).Size(qt); sz != 40 {
		t.Errorf("sizeof(QT) = %d with 64-bit pointers, want 40", sz)
	}
	if sz := (Layout{PointerSize: 4}).Size(qt); sz != 24 {
		t.Errorf("sizeof(QT) = %d with 32-bit pointers, want 24", sz)
	}
}

func TestLayoutAlignment(t *testing.T) {
	lay := Layout{PointerSize: 8}
	c := ctx()
	// { sbyte, double } pads the first field to 8.
	s := c.Struct(c.SByte(), c.Double())
	if lay.Size(s) != 16 {
		t.Errorf("size = %d, want 16", lay.Size(s))
	}
	if lay.FieldOffset(s, 1) != 8 {
		t.Errorf("field 1 offset = %d, want 8", lay.FieldOffset(s, 1))
	}
	// trailing padding keeps arrays of the struct aligned
	s2 := c.Struct(c.Double(), c.Int())
	if lay.Size(s2) != 16 {
		t.Errorf("size = %d, want 16 (trailing pad)", lay.Size(s2))
	}
}

func TestExactly28Opcodes(t *testing.T) {
	if NumOpcodes != 28 {
		t.Errorf("instruction set has %d opcodes; the paper's Table 1 lists exactly 28", NumOpcodes)
	}
	// Count per category as in Table 1.
	categories := map[string][]Opcode{
		"arithmetic":   {OpAdd, OpSub, OpMul, OpDiv, OpRem},
		"bitwise":      {OpAnd, OpOr, OpXor, OpShl, OpShr},
		"comparison":   {OpSetEQ, OpSetNE, OpSetLT, OpSetGT, OpSetLE, OpSetGE},
		"control-flow": {OpRet, OpBr, OpMbr, OpInvoke, OpUnwind},
		"memory":       {OpLoad, OpStore, OpGetElementPtr, OpAlloca},
		"other":        {OpCast, OpCall, OpPhi},
	}
	total := 0
	for _, ops := range categories {
		total += len(ops)
	}
	if total != 28 {
		t.Errorf("categories sum to %d, want 28", total)
	}
	for name, op := range OpcodeByName {
		if op.String() != name {
			t.Errorf("OpcodeByName[%q] round-trips to %q", name, op.String())
		}
	}
}

func TestDefaultExceptionsEnabled(t *testing.T) {
	// Paper Section 3.3: true by default for load, store and div; false
	// for all other operations.
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		want := op == OpLoad || op == OpStore || op == OpDiv
		if got := op.DefaultExceptionsEnabled(); got != want {
			t.Errorf("%s: DefaultExceptionsEnabled = %v, want %v", op, got, want)
		}
	}
}

func TestUseListsAndRAUW(t *testing.T) {
	m := NewModule("t")
	c := m.Types()
	f := m.NewFunction("f", c.Function(c.Int(), []*Type{c.Int()}, false))
	bb := f.NewBlock("entry")
	b := NewBuilder(f)
	b.SetBlock(bb)
	x := f.Params[0]
	a := b.Add(x, x, "a")
	mul := b.Mul(a, a, "m")
	b.Ret(mul)

	if a.NumUses() != 2 {
		t.Errorf("a has %d uses, want 2", a.NumUses())
	}
	if x.NumUses() != 2 {
		t.Errorf("x has %d uses, want 2", x.NumUses())
	}
	// Replace a with x everywhere.
	ReplaceAllUsesWith(a, x)
	if a.NumUses() != 0 {
		t.Errorf("a still has %d uses after RAUW", a.NumUses())
	}
	if x.NumUses() != 4 {
		t.Errorf("x has %d uses after RAUW, want 4", x.NumUses())
	}
	a.EraseFromParent()
	if got := len(bb.Instructions()); got != 2 {
		t.Errorf("block has %d instructions after erase, want 2", got)
	}
	if err := VerifyFunction(f); err != nil {
		t.Errorf("function invalid after RAUW+erase: %v", err)
	}
}

func TestVerifierCatchesBadIR(t *testing.T) {
	build := func(mutate func(m *Module, f *Function, b *Builder)) error {
		m := NewModule("bad")
		c := m.Types()
		f := m.NewFunction("f", c.Function(c.Int(), []*Type{c.Int()}, false))
		b := NewBuilder(f)
		b.SetBlock(f.NewBlock("entry"))
		mutate(m, f, b)
		return Verify(m)
	}

	// missing terminator
	if err := build(func(m *Module, f *Function, b *Builder) {
		b.Add(f.Params[0], f.Params[0], "x")
	}); err == nil {
		t.Error("verifier accepted a block without a terminator")
	}

	// type mismatch constructed behind the builder's back
	if err := build(func(m *Module, f *Function, b *Builder) {
		in := NewInstruction(OpAdd, m.Types().Int(),
			f.Params[0], NewInt(m.Types().Long(), 1))
		b.Block().Append(in)
		b.Ret(f.Params[0])
	}); err == nil {
		t.Error("verifier accepted mixed-type add (LLVA has no implicit coercion)")
	}

	// use before definition (dominance violation)
	if err := build(func(m *Module, f *Function, b *Builder) {
		entry := b.Block()
		other := f.NewBlock("other")
		b.SetBlock(other)
		v := b.Add(f.Params[0], f.Params[0], "v")
		b.Ret(v)
		b.SetBlock(entry)
		// entry uses v, but v is defined in 'other' which doesn't dominate
		w := b.Mul(v, v, "w")
		b.Ret(w)
		_ = w
	}); err == nil {
		t.Error("verifier accepted SSA dominance violation")
	}

	// return type mismatch
	if err := build(func(m *Module, f *Function, b *Builder) {
		b.Ret(NewInt(m.Types().Long(), 0))
	}); err == nil {
		t.Error("verifier accepted wrong return type")
	}
}

func TestVerifierPhiPredecessorAgreement(t *testing.T) {
	m := NewModule("t")
	c := m.Types()
	f := m.NewFunction("f", c.Function(c.Int(), []*Type{c.Bool()}, false))
	entry := f.NewBlock("entry")
	a := f.NewBlock("a")
	join := f.NewBlock("join")
	b := NewBuilder(f)
	b.SetBlock(entry)
	b.CondBr(f.Params[0], a, join)
	b.SetBlock(a)
	b.Br(join)
	b.SetBlock(join)
	phi := b.Phi(c.Int(), "p")
	phi.AddPhiIncoming(NewInt(c.Int(), 1), a)
	// missing incoming for entry
	b.Ret(phi)
	if err := Verify(m); err == nil {
		t.Error("verifier accepted phi with missing incoming edge")
	}
	phi.AddPhiIncoming(NewInt(c.Int(), 2), entry)
	if err := Verify(m); err != nil {
		t.Errorf("verifier rejected valid phi: %v", err)
	}
}

// TestFoldBinaryMatchesGoSemantics property-checks integer constant
// folding against Go's evaluation.
func TestFoldBinaryMatchesGoSemantics(t *testing.T) {
	c := ctx()
	long := c.Long()
	fn := func(a, b int64) bool {
		x, y := NewInt(long, a), NewInt(long, b)
		type caseT struct {
			op   Opcode
			want func(a, b int64) (int64, bool)
		}
		for _, tc := range []caseT{
			{OpAdd, func(a, b int64) (int64, bool) { return a + b, true }},
			{OpSub, func(a, b int64) (int64, bool) { return a - b, true }},
			{OpMul, func(a, b int64) (int64, bool) { return a * b, true }},
			{OpAnd, func(a, b int64) (int64, bool) { return a & b, true }},
			{OpOr, func(a, b int64) (int64, bool) { return a | b, true }},
			{OpXor, func(a, b int64) (int64, bool) { return a ^ b, true }},
			{OpDiv, func(a, b int64) (int64, bool) {
				if b == 0 || (a == math.MinInt64 && b == -1) {
					return 0, false
				}
				return a / b, true
			}},
			{OpRem, func(a, b int64) (int64, bool) {
				if b == 0 || (a == math.MinInt64 && b == -1) {
					return 0, false
				}
				return a % b, true
			}},
		} {
			got := FoldBinary(c, tc.op, x, y)
			want, foldable := tc.want(a, b)
			if !foldable {
				if got != nil {
					return false // must not fold trapping operations
				}
				continue
			}
			if got == nil || got.Int64() != want {
				return false
			}
		}
		// comparisons
		if FoldBinary(c, OpSetLT, x, y).I != boolBit(a < b) {
			return false
		}
		if FoldBinary(c, OpSetGE, x, y).I != boolBit(a >= b) {
			return false
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// TestFoldCastRoundTrip property-checks that widening an integer and
// casting back preserves the value.
func TestFoldCastRoundTrip(t *testing.T) {
	c := ctx()
	fn := func(v int32) bool {
		x := NewInt(c.Int(), int64(v))
		asLong := FoldCast(x, c.Long())
		if asLong == nil || asLong.Int64() != int64(v) {
			return false
		}
		back := FoldCast(asLong, c.Int())
		return back != nil && back.Int64() == int64(v)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// unsigned extension zero-extends
	ub := NewUint(c.UByte(), 0xFF)
	if got := FoldCast(ub, c.Long()); got.Int64() != 255 {
		t.Errorf("ubyte 255 -> long = %d, want 255", got.Int64())
	}
	// signed extension sign-extends
	sb := NewInt(c.SByte(), -1)
	if got := FoldCast(sb, c.Long()); got.Int64() != -1 {
		t.Errorf("sbyte -1 -> long = %d, want -1", got.Int64())
	}
}

func TestFoldShift(t *testing.T) {
	c := ctx()
	x := NewInt(c.Int(), -8)
	if got := FoldShift(OpShr, x, NewUint(c.UByte(), 1)); got.Int64() != -4 {
		t.Errorf("arithmetic shr(-8, 1) = %d, want -4", got.Int64())
	}
	u := NewUint(c.UInt(), 0x80000000)
	if got := FoldShift(OpShr, u, NewUint(c.UByte(), 31)); got.I != 1 {
		t.Errorf("logical shr = %d, want 1", got.I)
	}
	// over-wide shifts
	if got := FoldShift(OpShl, x, NewUint(c.UByte(), 40)); got.Int64() != 0 {
		t.Errorf("over-wide shl = %d, want 0", got.Int64())
	}
	if got := FoldShift(OpShr, x, NewUint(c.UByte(), 40)); got.Int64() != -1 {
		t.Errorf("over-wide signed shr of negative = %d, want -1", got.Int64())
	}
}

func TestConstantStringAndEquality(t *testing.T) {
	c := ctx()
	s1 := NewString(c, "hi")
	s2 := NewString(c, "hi")
	s3 := NewString(c, "ho")
	if !ConstantEqual(s1, s2) {
		t.Error("identical strings not equal")
	}
	if ConstantEqual(s1, s3) {
		t.Error("different strings equal")
	}
	if s1.Type().Len() != 3 {
		t.Errorf("string array length %d, want 3 (NUL terminated)", s1.Type().Len())
	}
	if !strings.Contains(s1.Ident(), "104") { // 'h'
		t.Errorf("string constant rendering: %s", s1.Ident())
	}
}

func TestModuleRemoveFunctionGlobal(t *testing.T) {
	m := NewModule("t")
	c := m.Types()
	g := m.NewGlobal("g", c.Int(), NewInt(c.Int(), 1), false)
	f := m.NewFunction("f", c.Function(c.Void(), nil, false))
	f.Internal = true
	m.RemoveGlobal(g)
	m.RemoveFunction(f)
	if m.Global("g") != nil || m.Function("f") != nil {
		t.Error("removal left lookups behind")
	}
	if len(m.Globals) != 0 || len(m.Functions) != 0 {
		t.Error("removal left slices behind")
	}
}

func TestInstructionMoveAndInsert(t *testing.T) {
	m := NewModule("t")
	c := m.Types()
	f := m.NewFunction("f", c.Function(c.Int(), []*Type{c.Int()}, false))
	b1 := f.NewBlock("b1")
	b2 := f.NewBlock("b2")
	b := NewBuilder(f)
	b.SetBlock(b1)
	v := b.Add(f.Params[0], f.Params[0], "v")
	b.Br(b2)
	b.SetBlock(b2)
	r := b.Mul(v, v, "r")
	b.Ret(r)

	v.MoveTo(b2)
	if v.Parent() != b2 || b1.Len() != 1 {
		t.Error("MoveTo did not relocate the instruction")
	}
	if b2.Instructions()[len(b2.Instructions())-1] != v {
		t.Error("MoveTo must append at the end")
	}
	// InsertBefore places an instruction ahead of another.
	v.removeFromBlock()
	v.parent = nil
	b2.InsertBefore(r, v)
	if b2.Instructions()[0] != v {
		t.Error("InsertBefore did not place v first")
	}
}
