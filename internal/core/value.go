package core

import "fmt"

// Value is anything usable as an instruction operand: constants, function
// arguments, instructions (their results), basic blocks (as branch targets),
// functions and global variables (as their addresses).
type Value interface {
	// Type returns the value's LLVA type.
	Type() *Type
	// Name returns the value's register/symbol name (may be empty for
	// unnamed values; the printer assigns numeric names on demand).
	Name() string
	// Ident renders the value as an operand in assembly (e.g. "%x",
	// "42", "null").
	Ident() string
}

// Use records a single use of a Value by an Instruction operand slot.
type Use struct {
	User  *Instruction
	Index int // operand index within User
}

// userTracked is implemented by values that maintain def-use chains.
// Constants are shared and immutable, so they do not track uses.
type userTracked interface {
	addUse(Use)
	removeUse(Use)
}

// useList is embedded in definable values to maintain def-use chains.
type useList struct {
	uses []Use
}

func (u *useList) addUse(use Use) { u.uses = append(u.uses, use) }

func (u *useList) removeUse(use Use) {
	for i, x := range u.uses {
		if x == use {
			last := len(u.uses) - 1
			u.uses[i] = u.uses[last]
			u.uses = u.uses[:last]
			return
		}
	}
}

// Uses returns a snapshot of all uses of the value.
func (u *useList) Uses() []Use {
	out := make([]Use, len(u.uses))
	copy(out, u.uses)
	return out
}

// NumUses reports the current number of uses.
func (u *useList) NumUses() int { return len(u.uses) }

func trackUse(v Value, use Use) {
	if t, ok := v.(userTracked); ok {
		t.addUse(use)
	}
}

func untrackUse(v Value, use Use) {
	if t, ok := v.(userTracked); ok {
		t.removeUse(use)
	}
}

// replaceable is implemented by values supporting ReplaceAllUsesWith.
type replaceable interface {
	Value
	Uses() []Use
}

// ReplaceAllUsesWith rewrites every use of old to refer to new instead.
func ReplaceAllUsesWith(old replaceable, new Value) {
	if old == new {
		return
	}
	for _, u := range old.Uses() {
		u.User.SetOperand(u.Index, new)
	}
}

// Placeholder is a temporary stand-in value used by parsers and builders
// for forward references. It tracks uses so it can be replaced (via
// ReplaceAllUsesWith) once the real definition is seen. A verified module
// never contains placeholders.
type Placeholder struct {
	useList
	ty   *Type
	name string
}

// NewPlaceholder creates a placeholder of the given type and name.
func NewPlaceholder(ty *Type, name string) *Placeholder {
	return &Placeholder{ty: ty, name: name}
}

// Type returns the placeholder's declared type.
func (p *Placeholder) Type() *Type { return p.ty }

// Name returns the forward-referenced name.
func (p *Placeholder) Name() string { return p.name }

// Ident renders the placeholder as an operand.
func (p *Placeholder) Ident() string { return "%" + p.name }

// Argument is a formal parameter of a Function.
type Argument struct {
	useList
	name   string
	ty     *Type
	parent *Function
	index  int
}

// Type returns the parameter type.
func (a *Argument) Type() *Type { return a.ty }

// Name returns the parameter name.
func (a *Argument) Name() string { return a.name }

// SetName renames the parameter.
func (a *Argument) SetName(n string) { a.name = n }

// Ident renders the argument as an operand.
func (a *Argument) Ident() string { return "%" + a.name }

// Parent returns the function owning this parameter.
func (a *Argument) Parent() *Function { return a.parent }

// Index returns the zero-based parameter position.
func (a *Argument) Index() int { return a.index }

func (a *Argument) String() string { return fmt.Sprintf("%s %%%s", a.ty, a.name) }
