package core

import (
	"fmt"
	"strings"
)

// VerifyError aggregates all problems found while verifying a module or
// function.
type VerifyError struct {
	Problems []string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("verify: %d problem(s):\n  %s",
		len(e.Problems), strings.Join(e.Problems, "\n  "))
}

type verifier struct {
	problems []string
}

func (v *verifier) errf(format string, args ...any) {
	v.problems = append(v.problems, fmt.Sprintf(format, args...))
}

// Verify checks that a module is well formed LLVA: strict type rules on
// every instruction, exactly one terminator per block, phi/predecessor
// agreement, and the SSA dominance property (every use is dominated by its
// definition).
func Verify(m *Module) error {
	v := &verifier{}
	if m.PointerSize != 4 && m.PointerSize != 8 {
		v.errf("module: pointer size must be 4 or 8, got %d", m.PointerSize)
	}
	for _, g := range m.Globals {
		if g.Init != nil && g.Init.Type() != g.ValueType() {
			v.errf("global %%%s: initializer type %s does not match %s",
				g.Name(), g.Init.Type(), g.ValueType())
		}
		if !g.ValueType().IsSized() {
			v.errf("global %%%s: unsized value type %s", g.Name(), g.ValueType())
		}
	}
	for _, f := range m.Functions {
		v.checkFunction(f)
	}
	if len(v.problems) > 0 {
		return &VerifyError{Problems: v.problems}
	}
	return nil
}

// VerifyFunction checks a single function.
func VerifyFunction(f *Function) error {
	v := &verifier{}
	v.checkFunction(f)
	if len(v.problems) > 0 {
		return &VerifyError{Problems: v.problems}
	}
	return nil
}

func (v *verifier) checkFunction(f *Function) {
	sig := f.Signature()
	if rt := sig.Ret(); rt.Kind() != VoidKind && !rt.IsFirstClass() {
		v.errf("%%%s: return type %s is not first-class", f.Name(), rt)
	}
	for _, p := range sig.Params() {
		if !p.IsFirstClass() {
			v.errf("%%%s: parameter type %s is not first-class", f.Name(), p)
		}
	}
	if f.IsDeclaration() {
		return
	}

	blockIndex := make(map[*BasicBlock]int, len(f.Blocks))
	for i, bb := range f.Blocks {
		blockIndex[bb] = i
	}

	for _, bb := range f.Blocks {
		v.checkBlock(f, bb, blockIndex)
	}
	v.checkDominance(f, blockIndex)
}

func (v *verifier) checkBlock(f *Function, bb *BasicBlock, blockIndex map[*BasicBlock]int) {
	where := fmt.Sprintf("%%%s/%%%s", f.Name(), bb.Name())
	if len(bb.instrs) == 0 {
		v.errf("%s: empty basic block", where)
		return
	}
	for i, in := range bb.instrs {
		last := i == len(bb.instrs)-1
		if in.IsTerminator() != last {
			if in.IsTerminator() {
				v.errf("%s: terminator %s in the middle of the block", where, in.Op())
			} else {
				v.errf("%s: block does not end in a terminator", where)
			}
		}
		if in.op == OpPhi && i >= bb.FirstNonPhi() {
			v.errf("%s: phi %%%s after non-phi instruction", where, in.Name())
		}
		for _, s := range in.Blocks() {
			if s == nil {
				v.errf("%s: %s references nil block", where, in.Op())
			} else if _, ok := blockIndex[s]; !ok {
				v.errf("%s: %s references block %%%s from another function",
					where, in.Op(), s.Name())
			}
		}
		v.checkInstr(f, bb, in, where)
	}
	// Phi incoming blocks must be exactly the predecessors.
	preds := bb.Predecessors()
	for _, phi := range bb.Phis() {
		if len(phi.Blocks()) != len(preds) {
			v.errf("%s: phi %%%s has %d incoming values but block has %d predecessors",
				where, phi.Name(), len(phi.Blocks()), len(preds))
			continue
		}
		for _, p := range preds {
			if phi.PhiIncomingFor(p) == nil {
				v.errf("%s: phi %%%s missing incoming for predecessor %%%s",
					where, phi.Name(), p.Name())
			}
		}
	}
}

func (v *verifier) checkInstr(f *Function, bb *BasicBlock, in *Instruction, where string) {
	ctx := f.Parent().Types()
	op := in.op
	bad := func(format string, args ...any) {
		v.errf("%s: %s: %s", where, in.Op(), fmt.Sprintf(format, args...))
	}
	switch {
	case op == OpShl || op == OpShr:
		if in.NumOperands() != 2 {
			bad("needs 2 operands")
			return
		}
		if !in.Operand(0).Type().IsInteger() {
			bad("shifted value must be integer, got %s", in.Operand(0).Type())
		}
		if in.Operand(1).Type().Kind() != UByteKind {
			bad("shift amount must be ubyte, got %s", in.Operand(1).Type())
		}
		if in.ty != in.Operand(0).Type() {
			bad("result type %s != operand type %s", in.ty, in.Operand(0).Type())
		}
	case op.IsBinary():
		if in.NumOperands() != 2 {
			bad("needs 2 operands")
			return
		}
		x, y := in.Operand(0), in.Operand(1)
		if x.Type() != y.Type() {
			bad("operand types differ: %s vs %s (no implicit coercion in LLVA)", x.Type(), y.Type())
		}
		if op.IsComparison() {
			if in.ty.Kind() != BoolKind {
				bad("comparison result must be bool")
			}
		} else {
			if in.ty != x.Type() {
				bad("result type %s != operand type %s", in.ty, x.Type())
			}
			if op <= OpRem {
				if !x.Type().IsInteger() && !x.Type().IsFloat() {
					bad("arithmetic on non-numeric type %s", x.Type())
				}
			} else if !x.Type().IsInteger() && x.Type().Kind() != BoolKind {
				bad("bitwise op on type %s", x.Type())
			}
		}
	case op == OpRet:
		rt := f.Signature().Ret()
		if rt.Kind() == VoidKind {
			if in.NumOperands() != 0 {
				bad("returning a value from a void function")
			}
		} else if in.NumOperands() != 1 {
			bad("missing return value")
		} else if in.Operand(0).Type() != rt {
			bad("return type %s, function returns %s", in.Operand(0).Type(), rt)
		}
	case op == OpBr:
		switch in.NumBlocks() {
		case 1:
			if in.NumOperands() != 0 {
				bad("unconditional br with operands")
			}
		case 2:
			if in.NumOperands() != 1 || in.Operand(0).Type().Kind() != BoolKind {
				bad("conditional br requires a bool condition")
			}
		default:
			bad("br with %d targets", in.NumBlocks())
		}
	case op == OpMbr:
		if in.NumOperands() != 1 || !in.Operand(0).Type().IsInteger() {
			bad("mbr requires one integer index operand")
		}
		if in.NumBlocks() != len(in.Cases)+1 {
			bad("mbr has %d targets for %d cases", in.NumBlocks(), len(in.Cases))
		}
	case op == OpCall || op == OpInvoke:
		if in.NumOperands() < 1 {
			bad("missing callee")
			return
		}
		pt := in.Callee().Type()
		if pt.Kind() != PointerKind || pt.Elem().Kind() != FunctionKind {
			bad("callee type %s is not pointer-to-function", pt)
			return
		}
		sig := pt.Elem()
		args := in.CallArgs()
		if !sig.Variadic() && len(args) != len(sig.Params()) ||
			sig.Variadic() && len(args) < len(sig.Params()) {
			bad("%d arguments for signature %s", len(args), sig)
			return
		}
		for i, p := range sig.Params() {
			if args[i].Type() != p {
				bad("argument %d has type %s, want %s", i, args[i].Type(), p)
			}
		}
		if in.ty != sig.Ret() {
			bad("result type %s != signature return %s", in.ty, sig.Ret())
		}
		if op == OpInvoke && in.NumBlocks() != 2 {
			bad("invoke needs normal and unwind targets")
		}
	case op == OpUnwind:
		if in.NumOperands() != 0 {
			bad("unwind takes no operands")
		}
	case op == OpLoad:
		pt := in.Operand(0).Type()
		if pt.Kind() != PointerKind {
			bad("load of non-pointer %s", pt)
		} else {
			if in.ty != pt.Elem() {
				bad("loaded type %s != pointee %s", in.ty, pt.Elem())
			}
			if !pt.Elem().IsFirstClass() {
				bad("load of non-first-class type %s", pt.Elem())
			}
		}
	case op == OpStore:
		if in.NumOperands() != 2 {
			bad("store needs value and pointer")
			return
		}
		pt := in.Operand(1).Type()
		if pt.Kind() != PointerKind {
			bad("store to non-pointer %s", pt)
		} else if in.Operand(0).Type() != pt.Elem() {
			bad("stored type %s != pointee %s", in.Operand(0).Type(), pt.Elem())
		}
	case op == OpGetElementPtr:
		pt := in.Operand(0).Type()
		if pt.Kind() != PointerKind {
			bad("getelementptr on non-pointer %s", pt)
			return
		}
		rt, err := GEPResultType(pt.Elem(), in.Operands()[1:])
		if err != nil {
			bad("%v", err)
			return
		}
		want := ctx.Pointer(rt)
		if in.ty != want {
			bad("result type %s, want %s", in.ty, want)
		}
	case op == OpAlloca:
		if in.Allocated == nil || !in.Allocated.IsSized() {
			bad("alloca of unsized type")
			return
		}
		if in.ty != ctx.Pointer(in.Allocated) {
			bad("result type %s, want %s", in.ty, ctx.Pointer(in.Allocated))
		}
		if in.NumOperands() == 1 && in.Operand(0).Type().Kind() != UIntKind {
			bad("alloca count must be uint")
		}
	case op == OpCast:
		if err := CheckCast(in.Operand(0).Type(), in.ty); err != nil {
			bad("%v", err)
		}
	case op == OpPhi:
		if !in.ty.IsFirstClass() {
			bad("phi of non-first-class type %s", in.ty)
		}
		if in.NumOperands() != in.NumBlocks() {
			bad("phi value/block count mismatch")
		}
		for i, o := range in.Operands() {
			if o.Type() != in.ty {
				bad("incoming %d has type %s, want %s", i, o.Type(), in.ty)
			}
		}
	}
	_ = bb
}

// checkDominance verifies the SSA property: every instruction operand that
// is itself an instruction must be defined at a program point dominating
// the use. Phi uses are checked at the end of the incoming block.
func (v *verifier) checkDominance(f *Function, blockIndex map[*BasicBlock]int) {
	dom := computeDominators(f, blockIndex)
	n := len(f.Blocks)

	// position of each instruction within its block for intra-block checks
	pos := make(map[*Instruction]int)
	for _, bb := range f.Blocks {
		for i, in := range bb.instrs {
			pos[in] = i
		}
	}
	dominates := func(a, b *BasicBlock) bool {
		ai, bi := blockIndex[a], blockIndex[b]
		return dom[bi][ai]
	}

	for _, bb := range f.Blocks {
		for _, in := range bb.instrs {
			for oi, op := range in.Operands() {
				def, ok := op.(*Instruction)
				if !ok {
					continue
				}
				if def.parent == nil {
					v.errf("%%%s/%%%s: %s uses detached instruction", f.Name(), bb.Name(), in.Op())
					continue
				}
				var useBlock *BasicBlock
				var usePos int
				if in.op == OpPhi {
					useBlock = in.Block(oi)
					usePos = len(useBlock.instrs) // end of incoming block
				} else {
					useBlock = bb
					usePos = pos[in]
				}
				if def.parent == useBlock {
					if pos[def] >= usePos {
						v.errf("%%%s/%%%s: %%%s used before its definition",
							f.Name(), bb.Name(), def.Name())
					}
				} else if !dominates(def.parent, useBlock) {
					v.errf("%%%s/%%%s: use of %%%s (defined in %%%s) is not dominated by its definition",
						f.Name(), useBlock.Name(), def.Name(), def.parent.Name())
				}
			}
		}
	}
	_ = n
}

// computeDominators returns, for each block index b, the set of block
// indices that dominate b, as a bitset-per-block. Uses the classic
// iterative dataflow formulation, which is fine at verifier scale.
func computeDominators(f *Function, blockIndex map[*BasicBlock]int) [][]bool {
	n := len(f.Blocks)
	dom := make([][]bool, n)
	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	for i := range dom {
		dom[i] = make([]bool, n)
		if i == 0 {
			dom[0][0] = true
		} else {
			copy(dom[i], full)
		}
	}
	preds := make([][]int, n)
	reachable := make([]bool, n)
	reachable[0] = true
	// propagate reachability
	changedR := true
	for changedR {
		changedR = false
		for i, bb := range f.Blocks {
			if !reachable[i] {
				continue
			}
			for _, s := range bb.Successors() {
				si := blockIndex[s]
				if !reachable[si] {
					reachable[si] = true
					changedR = true
				}
			}
		}
	}
	for i, bb := range f.Blocks {
		for _, s := range bb.Successors() {
			si := blockIndex[s]
			preds[si] = append(preds[si], i)
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 1; i < n; i++ {
			if !reachable[i] {
				continue
			}
			newDom := make([]bool, n)
			first := true
			for _, p := range preds[i] {
				if !reachable[p] {
					continue
				}
				if first {
					copy(newDom, dom[p])
					first = false
				} else {
					for j := range newDom {
						newDom[j] = newDom[j] && dom[p][j]
					}
				}
			}
			newDom[i] = true
			for j := range newDom {
				if newDom[j] != dom[i][j] {
					dom[i] = newDom
					changed = true
					break
				}
			}
		}
	}
	// Unreachable blocks: treat as dominated by everything (uses inside
	// them are vacuously fine).
	for i := 0; i < n; i++ {
		if !reachable[i] {
			copy(dom[i], full)
		}
	}
	return dom
}
