package core

import "fmt"

// Function cloning and restricted tail duplication for the tier-2
// optimizing translator. The clone is detached — it carries the original
// name, signature and parent module (so types and symbol references
// resolve) but is NOT registered in the module, so it can be transformed
// and discarded without the module ever observing an intermediate state.
//
// A clone's instructions hold tracked uses on shared module-level values
// (functions, globals), so cloning and discarding mutate those shared
// use lists: callers that clone concurrently with other IR mutation must
// serialize (codegen holds a package mutex around all tier-2 transforms).

// CloneFunctionBody returns a detached private copy of f: same name,
// signature and parent module, fresh blocks/instructions/arguments.
// Blocks keep their order, so index-based metadata (per-block profile
// heat) transfers directly. Operands that are module-level values —
// constants, globals, functions (including recursive references to f
// itself) — are shared, not copied. Discard the clone with
// DiscardFunctionBody when done.
func CloneFunctionBody(f *Function) *Function {
	nf := &Function{
		name:     f.name,
		sig:      f.sig,
		ty:       f.ty,
		parent:   f.parent,
		Internal: f.Internal,
		nextID:   f.nextID,
	}
	vmap := make(map[Value]Value)
	for _, p := range f.Params {
		np := &Argument{name: p.name, ty: p.ty, parent: nf, index: p.index}
		nf.Params = append(nf.Params, np)
		vmap[p] = np
	}
	bmap := make(map[*BasicBlock]*BasicBlock, len(f.Blocks))
	for _, bb := range f.Blocks {
		nb := &BasicBlock{name: bb.name, parent: nf}
		nf.Blocks = append(nf.Blocks, nb)
		bmap[bb] = nb
	}
	// Two passes: create all clones first so forward references (phis,
	// back edges) resolve, then wire operands and block references.
	var clones, origs []*Instruction
	for _, bb := range f.Blocks {
		for _, in := range bb.instrs {
			cl := NewInstruction(in.op, in.ty)
			cl.ExceptionsEnabled = in.ExceptionsEnabled
			cl.Allocated = in.Allocated
			cl.Cases = append([]int64(nil), in.Cases...)
			cl.name = in.name
			bmap[bb].Append(cl)
			vmap[in] = cl
			clones = append(clones, cl)
			origs = append(origs, in)
		}
	}
	for k, cl := range clones {
		for _, op := range origs[k].ops {
			if nv, ok := vmap[op]; ok {
				cl.AddOperand(nv)
			} else {
				cl.AddOperand(op)
			}
		}
		for _, ob := range origs[k].blocks {
			cl.AddBlock(bmap[ob])
		}
	}
	return nf
}

// DiscardFunctionBody releases a detached clone: every operand use the
// body holds — including uses on shared functions and globals — is
// untracked, and the block list is cleared. The clone must not be used
// afterwards.
func DiscardFunctionBody(f *Function) {
	for _, bb := range f.Blocks {
		for _, in := range bb.instrs {
			in.dropOperands()
			in.blocks = nil
			in.parent = nil
		}
		bb.instrs = nil
		bb.parent = nil
	}
	f.Blocks = nil
}

// canTailDuplicate reports whether bb may be duplicated for one
// predecessor without breaking SSA. The restriction: every value defined
// in bb is used only inside bb, or as a phi incoming in a successor
// attributed to an edge leaving bb. Then the duplicate's values need no
// new dominance relationships — the only repairs are phi incomings on
// bb's successors.
func canTailDuplicate(bb *BasicBlock) bool {
	if bb == bb.parent.Blocks[0] {
		return false // duplicating the entry makes no sense
	}
	term := bb.Terminator()
	if term == nil {
		return false
	}
	switch term.op {
	case OpBr, OpMbr, OpRet:
	default:
		return false // invoke/unwind: frame bookkeeping is not worth duplicating
	}
	succs := make(map[*BasicBlock]bool, len(term.blocks))
	for _, s := range term.blocks {
		succs[s] = true
	}
	for _, in := range bb.instrs {
		if !in.HasResult() {
			continue
		}
		for _, u := range in.Uses() {
			if u.User.parent == bb {
				continue
			}
			if u.User.op == OpPhi && succs[u.User.parent] &&
				u.Index < len(u.User.blocks) && u.User.blocks[u.Index] == bb {
				continue
			}
			return false
		}
	}
	return true
}

// TailDuplicate clones bb as a private copy reached only from pred,
// retargeting pred's terminator edge(s) from bb to the copy and
// repairing phis: bb's own phis lose pred's incoming (the copy starts
// from that value directly), and every successor phi gains an incoming
// for the copy. Returns (nil, false) when duplication would break SSA
// (see canTailDuplicate) or pred does not branch to bb. The caller is
// expected to verify the function afterwards and fall back on failure.
func TailDuplicate(f *Function, pred, bb *BasicBlock) (*BasicBlock, bool) {
	if !canTailDuplicate(bb) {
		return nil, false
	}
	pt := pred.Terminator()
	if pt == nil {
		return nil, false
	}
	targets := false
	for _, s := range pt.blocks {
		if s == bb {
			targets = true
		}
	}
	if !targets {
		return nil, false
	}

	dup := f.NewBlock(fmt.Sprintf("%s.dup%d", bb.name, len(f.Blocks)))
	vmap := make(map[Value]Value)
	// Phis collapse: the copy has exactly one predecessor, so each phi
	// becomes the value flowing in from pred.
	for _, phi := range bb.Phis() {
		vmap[phi] = phi.PhiIncomingFor(pred)
	}
	mapv := func(v Value) Value {
		if nv, ok := vmap[v]; ok {
			return nv
		}
		return v
	}
	var clones, origs []*Instruction
	for _, in := range bb.instrs {
		if in.op == OpPhi {
			continue
		}
		cl := NewInstruction(in.op, in.ty)
		cl.ExceptionsEnabled = in.ExceptionsEnabled
		cl.Allocated = in.Allocated
		cl.Cases = append([]int64(nil), in.Cases...)
		cl.name = in.name
		dup.Append(cl)
		vmap[in] = cl
		clones = append(clones, cl)
		origs = append(origs, in)
	}
	for k, cl := range clones {
		for _, op := range origs[k].ops {
			cl.AddOperand(mapv(op))
		}
		for _, ob := range origs[k].blocks {
			cl.AddBlock(ob) // same successors as the original
		}
	}

	// Successor phis: the copy is a new predecessor carrying the same
	// values bb would have delivered (mapped through the clone).
	seen := make(map[*BasicBlock]bool)
	for _, s := range bb.Terminator().blocks {
		if seen[s] {
			continue
		}
		seen[s] = true
		for _, phi := range s.Phis() {
			if v := phi.PhiIncomingFor(bb); v != nil {
				phi.AddPhiIncoming(mapv(v), dup)
			}
		}
	}

	// Retarget pred's edge(s) and drop pred's incomings from bb's phis.
	for i, s := range pt.blocks {
		if s == bb {
			pt.SetBlock(i, dup)
		}
	}
	for _, phi := range bb.Phis() {
		for i := 0; i < len(phi.blocks); i++ {
			if phi.blocks[i] == pred {
				phi.RemovePhiIncoming(i)
				break
			}
		}
	}
	return dup, true
}
