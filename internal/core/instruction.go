package core

import (
	"fmt"
	"strings"
)

// Opcode identifies one of the 28 LLVA instructions (paper, Table 1).
type Opcode uint8

// The entire LLVA instruction set: 5 arithmetic, 5 bitwise, 6 comparison,
// 5 control-flow, 4 memory, and 3 other instructions.
const (
	// arithmetic
	OpAdd Opcode = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	// bitwise
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// comparison
	OpSetEQ
	OpSetNE
	OpSetLT
	OpSetGT
	OpSetLE
	OpSetGE
	// control flow
	OpRet
	OpBr
	OpMbr
	OpInvoke
	OpUnwind
	// memory
	OpLoad
	OpStore
	OpGetElementPtr
	OpAlloca
	// other
	OpCast
	OpCall
	OpPhi

	NumOpcodes = int(OpPhi) + 1
)

var opNames = [...]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpSetEQ: "seteq", OpSetNE: "setne", OpSetLT: "setlt", OpSetGT: "setgt",
	OpSetLE: "setle", OpSetGE: "setge",
	OpRet: "ret", OpBr: "br", OpMbr: "mbr", OpInvoke: "invoke", OpUnwind: "unwind",
	OpLoad: "load", OpStore: "store", OpGetElementPtr: "getelementptr",
	OpAlloca: "alloca",
	OpCast:   "cast", OpCall: "call", OpPhi: "phi",
}

func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// OpcodeByName maps an assembly mnemonic back to its opcode.
var OpcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for i, n := range opNames {
		m[n] = Opcode(i)
	}
	return m
}()

// IsTerminator reports whether the opcode ends a basic block.
func (o Opcode) IsTerminator() bool {
	switch o {
	case OpRet, OpBr, OpMbr, OpInvoke, OpUnwind:
		return true
	}
	return false
}

// IsBinary reports whether the opcode is a two-operand arithmetic, bitwise
// or comparison operation.
func (o Opcode) IsBinary() bool { return o <= OpSetGE }

// IsComparison reports whether the opcode is one of the six set* opcodes.
func (o Opcode) IsComparison() bool { return o >= OpSetEQ && o <= OpSetGE }

// DefaultExceptionsEnabled returns the paper's default for the
// ExceptionsEnabled attribute: true for load, store and div; false for all
// other operations (Section 3.3). Rem shares div's trapping behaviour on
// hardware but the paper names only div; we follow the paper exactly.
func (o Opcode) DefaultExceptionsEnabled() bool {
	switch o {
	case OpLoad, OpStore, OpDiv:
		return true
	}
	return false
}

// CanTrap reports whether executing the opcode can raise an exception at
// all (regardless of the ExceptionsEnabled attribute).
func (o Opcode) CanTrap() bool {
	switch o {
	case OpLoad, OpStore, OpDiv, OpRem, OpCall, OpInvoke, OpUnwind:
		return true
	}
	return false
}

// Instruction is a single LLVA instruction. The result (if the type is
// non-void) is itself the SSA Value defined by the instruction.
//
// Operand/block layout by opcode:
//
//	binary ops:    ops[0], ops[1]
//	ret:           ops[] empty (ret void) or ops[0] = value
//	br:            unconditional: blocks[0]; conditional: ops[0]=bool,
//	               blocks[0]=true target, blocks[1]=false target
//	mbr:           ops[0]=index value, blocks[0]=default,
//	               Cases[i] -> blocks[i+1]
//	invoke:        ops[0]=callee, ops[1:]=args, blocks[0]=normal,
//	               blocks[1]=unwind
//	unwind:        none
//	load:          ops[0]=pointer
//	store:         ops[0]=value, ops[1]=pointer
//	getelementptr: ops[0]=pointer, ops[1:]=indices
//	alloca:        ops[] empty or ops[0]=count (uint); Allocated holds the
//	               element type
//	cast:          ops[0]=value; result type is the destination
//	call:          ops[0]=callee (pointer to function), ops[1:]=args
//	phi:           ops[i] paired with blocks[i] (incoming value per pred)
type Instruction struct {
	useList
	op     Opcode
	ty     *Type
	name   string
	ops    []Value
	blocks []*BasicBlock
	parent *BasicBlock

	// Cases holds the mbr case values, parallel to blocks[1:].
	Cases []int64
	// Allocated is the element type allocated by an alloca.
	Allocated *Type
	// ExceptionsEnabled is the paper's per-instruction static exception
	// attribute: when false, exceptions raised by this instruction are
	// ignored rather than delivered (Section 3.3).
	ExceptionsEnabled bool
}

// NewInstruction creates a detached instruction. Most callers should use
// Builder instead, which validates operand types and appends to a block.
func NewInstruction(op Opcode, ty *Type, operands ...Value) *Instruction {
	in := &Instruction{op: op, ty: ty, ExceptionsEnabled: op.DefaultExceptionsEnabled()}
	for _, v := range operands {
		in.AddOperand(v)
	}
	return in
}

// Op returns the instruction's opcode.
func (in *Instruction) Op() Opcode { return in.op }

// Type returns the instruction result type (void for non-producing ops).
func (in *Instruction) Type() *Type { return in.ty }

// Name returns the result register name.
func (in *Instruction) Name() string { return in.name }

// SetName sets the result register name.
func (in *Instruction) SetName(n string) { in.name = n }

// Ident renders the instruction result as an operand.
func (in *Instruction) Ident() string { return "%" + in.name }

// Parent returns the containing basic block (nil if detached).
func (in *Instruction) Parent() *BasicBlock { return in.parent }

// NumOperands returns the operand count.
func (in *Instruction) NumOperands() int { return len(in.ops) }

// Operand returns the i'th operand.
func (in *Instruction) Operand(i int) Value { return in.ops[i] }

// Operands returns the operand slice; callers must not append to it.
func (in *Instruction) Operands() []Value { return in.ops }

// SetOperand replaces operand i, maintaining def-use chains.
func (in *Instruction) SetOperand(i int, v Value) {
	if old := in.ops[i]; old != nil {
		untrackUse(old, Use{User: in, Index: i})
	}
	in.ops[i] = v
	if v != nil {
		trackUse(v, Use{User: in, Index: i})
	}
}

// AddOperand appends an operand, maintaining def-use chains.
func (in *Instruction) AddOperand(v Value) {
	in.ops = append(in.ops, nil)
	in.SetOperand(len(in.ops)-1, v)
}

// dropOperands detaches all operand uses (used when erasing).
func (in *Instruction) dropOperands() {
	for i, v := range in.ops {
		if v != nil {
			untrackUse(v, Use{User: in, Index: i})
			in.ops[i] = nil
		}
	}
	in.ops = in.ops[:0]
}

// NumBlocks returns the number of attached block references (successors for
// terminators, incoming blocks for phis).
func (in *Instruction) NumBlocks() int { return len(in.blocks) }

// Block returns the i'th attached block.
func (in *Instruction) Block(i int) *BasicBlock { return in.blocks[i] }

// Blocks returns the attached block slice; callers must not append to it.
func (in *Instruction) Blocks() []*BasicBlock { return in.blocks }

// SetBlock replaces attached block i.
func (in *Instruction) SetBlock(i int, bb *BasicBlock) { in.blocks[i] = bb }

// AddBlock appends an attached block.
func (in *Instruction) AddBlock(bb *BasicBlock) { in.blocks = append(in.blocks, bb) }

// IsTerminator reports whether the instruction ends its block.
func (in *Instruction) IsTerminator() bool { return in.op.IsTerminator() }

// Successors returns the control-flow successors of a terminator (empty for
// ret and unwind).
func (in *Instruction) Successors() []*BasicBlock {
	if !in.IsTerminator() {
		return nil
	}
	return in.blocks
}

// PhiIncoming returns the i'th (value, predecessor) pair of a phi.
func (in *Instruction) PhiIncoming(i int) (Value, *BasicBlock) {
	return in.ops[i], in.blocks[i]
}

// AddPhiIncoming appends an incoming (value, predecessor) pair to a phi.
func (in *Instruction) AddPhiIncoming(v Value, bb *BasicBlock) {
	if in.op != OpPhi {
		panic("core: AddPhiIncoming on non-phi")
	}
	in.AddOperand(v)
	in.AddBlock(bb)
}

// RemovePhiIncoming deletes the i'th incoming pair of a phi.
func (in *Instruction) RemovePhiIncoming(i int) {
	if in.op != OpPhi {
		panic("core: RemovePhiIncoming on non-phi")
	}
	// Shift operands down, re-registering moved uses at their new index.
	n := len(in.ops)
	untrackUse(in.ops[i], Use{User: in, Index: i})
	for j := i; j < n-1; j++ {
		v := in.ops[j+1]
		untrackUse(v, Use{User: in, Index: j + 1})
		in.ops[j] = v
		trackUse(v, Use{User: in, Index: j})
		in.blocks[j] = in.blocks[j+1]
	}
	in.ops = in.ops[:n-1]
	in.blocks = in.blocks[:n-1]
}

// PhiIncomingFor returns the incoming value of a phi for predecessor bb,
// or nil if bb is not an incoming block.
func (in *Instruction) PhiIncomingFor(bb *BasicBlock) Value {
	for i, b := range in.blocks {
		if b == bb {
			return in.ops[i]
		}
	}
	return nil
}

// Callee returns the called value of a call or invoke instruction.
func (in *Instruction) Callee() Value { return in.ops[0] }

// CallArgs returns the argument operands of a call or invoke.
func (in *Instruction) CallArgs() []Value { return in.ops[1:] }

// CalledFunction returns the statically-known callee Function of a call or
// invoke, or nil for indirect calls.
func (in *Instruction) CalledFunction() *Function {
	f, _ := in.ops[0].(*Function)
	return f
}

// HasResult reports whether the instruction defines an SSA value.
func (in *Instruction) HasResult() bool {
	return in.ty != nil && in.ty.Kind() != VoidKind
}

// removeFromBlock unlinks the instruction from its parent block.
func (in *Instruction) removeFromBlock() {
	bb := in.parent
	if bb == nil {
		return
	}
	for i, x := range bb.instrs {
		if x == in {
			bb.instrs = append(bb.instrs[:i], bb.instrs[i+1:]...)
			break
		}
	}
	in.parent = nil
}

// MoveTo unlinks the instruction from its current block and appends it to
// bb, preserving operands and uses.
func (in *Instruction) MoveTo(bb *BasicBlock) {
	in.removeFromBlock()
	bb.Append(in)
}

// EraseFromParent unlinks the instruction and drops its operand uses. The
// instruction must itself be unused.
func (in *Instruction) EraseFromParent() {
	if len(in.uses) != 0 {
		panic("core: erasing instruction that still has uses: " + in.String())
	}
	in.removeFromBlock()
	in.dropOperands()
	in.blocks = nil
}

// String renders the instruction in LLVA assembly syntax.
func (in *Instruction) String() string {
	var b strings.Builder
	in.write(&b)
	return b.String()
}

func operandStr(v Value) string {
	if v == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s %s", v.Type(), v.Ident())
}

func (in *Instruction) write(b *strings.Builder) {
	if in.HasResult() {
		fmt.Fprintf(b, "%%%s = ", in.name)
	}
	b.WriteString(in.op.String())
	switch in.op {
	case OpRet:
		if len(in.ops) == 0 {
			b.WriteString(" void")
		} else {
			b.WriteByte(' ')
			b.WriteString(operandStr(in.ops[0]))
		}
	case OpBr:
		if len(in.blocks) == 1 {
			fmt.Fprintf(b, " label %%%s", in.blocks[0].name)
		} else {
			fmt.Fprintf(b, " %s, label %%%s, label %%%s",
				operandStr(in.ops[0]), in.blocks[0].name, in.blocks[1].name)
		}
	case OpMbr:
		fmt.Fprintf(b, " %s, label %%%s [", operandStr(in.ops[0]), in.blocks[0].name)
		for i, c := range in.Cases {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, " %s %d, label %%%s", in.ops[0].Type(), c, in.blocks[i+1].name)
		}
		b.WriteString(" ]")
	case OpInvoke, OpCall:
		fmt.Fprintf(b, " %s %s(", in.ty, in.ops[0].Ident())
		for i, a := range in.ops[1:] {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(operandStr(a))
		}
		b.WriteByte(')')
		if in.op == OpInvoke {
			fmt.Fprintf(b, " to label %%%s unwind label %%%s",
				in.blocks[0].name, in.blocks[1].name)
		}
	case OpUnwind:
		// no operands
	case OpLoad:
		fmt.Fprintf(b, " %s", operandStr(in.ops[0]))
	case OpStore:
		fmt.Fprintf(b, " %s, %s", operandStr(in.ops[0]), operandStr(in.ops[1]))
	case OpGetElementPtr:
		b.WriteByte(' ')
		b.WriteString(operandStr(in.ops[0]))
		for _, idx := range in.ops[1:] {
			b.WriteString(", ")
			b.WriteString(operandStr(idx))
		}
	case OpAlloca:
		fmt.Fprintf(b, " %s", in.Allocated)
		if len(in.ops) == 1 {
			fmt.Fprintf(b, ", %s", operandStr(in.ops[0]))
		}
	case OpCast:
		fmt.Fprintf(b, " %s to %s", operandStr(in.ops[0]), in.ty)
	case OpPhi:
		fmt.Fprintf(b, " %s ", in.ty)
		for i := range in.ops {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "[ %s, %%%s ]", in.ops[i].Ident(), in.blocks[i].name)
		}
	default: // binary ops
		if in.op == OpShl || in.op == OpShr {
			// the shift amount is ubyte-typed, stated explicitly
			fmt.Fprintf(b, " %s %s, %s %s", in.ops[0].Type(), in.ops[0].Ident(),
				in.ops[1].Type(), in.ops[1].Ident())
		} else {
			fmt.Fprintf(b, " %s %s, %s", in.ops[0].Type(), in.ops[0].Ident(), in.ops[1].Ident())
		}
	}
	// The ExceptionsEnabled attribute is printed only when it differs
	// from the opcode default, as a parseable suffix.
	if in.ExceptionsEnabled != in.op.DefaultExceptionsEnabled() {
		if in.ExceptionsEnabled {
			b.WriteString(" !exc")
		} else {
			b.WriteString(" !noexc")
		}
	}
}
