package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Module is a translation unit of LLVA virtual object code: named types,
// global variables and functions, plus the implementation-configuration
// flags the paper exposes for non-type-safe code (pointer size and
// endianness, Section 3.2).
type Module struct {
	Name string
	ctx  *TypeContext

	// PointerSize is the byte width of pointers (4 or 8).
	PointerSize int
	// LittleEndian records the byte order the object code assumes.
	LittleEndian bool

	Globals   []*GlobalVariable
	Functions []*Function

	globalsByName map[string]*GlobalVariable
	funcsByName   map[string]*Function
}

// NewModule creates an empty module with the default 64-bit little-endian
// configuration.
func NewModule(name string) *Module {
	return &Module{
		Name:          name,
		ctx:           NewTypeContext(),
		PointerSize:   8,
		LittleEndian:  true,
		globalsByName: make(map[string]*GlobalVariable),
		funcsByName:   make(map[string]*Function),
	}
}

// Types returns the module's type context.
func (m *Module) Types() *TypeContext { return m.ctx }

// Layout returns the module's memory layout rules.
func (m *Module) Layout() Layout { return Layout{PointerSize: m.PointerSize} }

// NewGlobal adds a global variable holding a value of type valueType.
// init may be nil for external globals.
func (m *Module) NewGlobal(name string, valueType *Type, init *Constant, isConst bool) *GlobalVariable {
	if _, dup := m.globalsByName[name]; dup {
		panic("core: duplicate global %" + name)
	}
	g := &GlobalVariable{
		name:      name,
		valueType: valueType,
		ty:        m.ctx.Pointer(valueType),
		Init:      init,
		IsConst:   isConst,
		parent:    m,
	}
	m.Globals = append(m.Globals, g)
	m.globalsByName[name] = g
	return g
}

// NewFunction adds a function with the given signature. A function with no
// body (no basic blocks) is a declaration.
func (m *Module) NewFunction(name string, sig *Type) *Function {
	if sig.Kind() != FunctionKind {
		panic("core: NewFunction with non-function type " + sig.String())
	}
	if _, dup := m.funcsByName[name]; dup {
		panic("core: duplicate function %" + name)
	}
	f := &Function{
		name:   name,
		sig:    sig,
		ty:     m.ctx.Pointer(sig),
		parent: m,
	}
	for i, pt := range sig.Params() {
		f.Params = append(f.Params, &Argument{
			name: fmt.Sprintf("arg%d", i), ty: pt, parent: f, index: i,
		})
	}
	m.Functions = append(m.Functions, f)
	m.funcsByName[name] = f
	return f
}

// Global returns the named global variable, or nil.
func (m *Module) Global(name string) *GlobalVariable { return m.globalsByName[name] }

// Function returns the named function, or nil.
func (m *Module) Function(name string) *Function { return m.funcsByName[name] }

// RemoveFunction deletes a function from the module. The function must be
// unused.
func (m *Module) RemoveFunction(f *Function) {
	if f.NumUses() != 0 {
		panic("core: removing function that still has uses: %" + f.name)
	}
	delete(m.funcsByName, f.name)
	for i, x := range m.Functions {
		if x == f {
			m.Functions = append(m.Functions[:i], m.Functions[i+1:]...)
			break
		}
	}
	for _, bb := range f.Blocks {
		for _, in := range bb.instrs {
			in.dropOperands()
		}
	}
	f.Blocks = nil
}

// RemoveGlobal deletes a global variable from the module. It must be unused.
func (m *Module) RemoveGlobal(g *GlobalVariable) {
	if g.NumUses() != 0 {
		panic("core: removing global that still has uses: %" + g.name)
	}
	delete(m.globalsByName, g.name)
	for i, x := range m.Globals {
		if x == g {
			m.Globals = append(m.Globals[:i], m.Globals[i+1:]...)
			break
		}
	}
}

// GlobalVariable is a module-level memory object. As a Value it denotes the
// address of the object, so its Type is a pointer to the value type.
type GlobalVariable struct {
	useList
	name      string
	valueType *Type
	ty        *Type // pointer to valueType
	parent    *Module

	// Init is the initializer; nil marks an external declaration.
	Init *Constant
	// IsConst marks read-only (constant) globals.
	IsConst bool
}

// Type returns the pointer-to-value type of the global.
func (g *GlobalVariable) Type() *Type { return g.ty }

// ValueType returns the type of the stored value.
func (g *GlobalVariable) ValueType() *Type { return g.valueType }

// Name returns the symbol name.
func (g *GlobalVariable) Name() string { return g.name }

// Ident renders the global as an operand.
func (g *GlobalVariable) Ident() string { return "%" + g.name }

// Parent returns the owning module.
func (g *GlobalVariable) Parent() *Module { return g.parent }

// Function is an LLVA function: a list of basic blocks, the first of which
// is the entry block. As a Value it denotes the function's address and has
// pointer-to-function type so that direct and indirect calls are uniform.
type Function struct {
	useList
	name   string
	sig    *Type // function type
	ty     *Type // pointer to sig
	parent *Module

	Params []*Argument
	Blocks []*BasicBlock

	// Internal marks linkage-internal functions eligible for
	// interprocedural optimization and dead-function elimination.
	Internal bool

	nextID int // unnamed value numbering
}

// Type returns the pointer-to-function type.
func (f *Function) Type() *Type { return f.ty }

// Signature returns the underlying function type.
func (f *Function) Signature() *Type { return f.sig }

// Name returns the function's symbol name.
func (f *Function) Name() string { return f.name }

// Ident renders the function as an operand.
func (f *Function) Ident() string { return "%" + f.name }

// Parent returns the owning module.
func (f *Function) Parent() *Module { return f.parent }

// IsDeclaration reports whether the function has no body.
func (f *Function) IsDeclaration() bool { return len(f.Blocks) == 0 }

// IsIntrinsic reports whether the function is an LLVA intrinsic, i.e. a
// function implemented by the translator itself (paper, Section 3.5).
// Intrinsics are named "llva.*".
func (f *Function) IsIntrinsic() bool { return strings.HasPrefix(f.name, "llva.") }

// Entry returns the entry basic block.
func (f *Function) Entry() *BasicBlock { return f.Blocks[0] }

// NewBlock appends a new basic block with the given label name.
func (f *Function) NewBlock(name string) *BasicBlock {
	bb := &BasicBlock{name: name, parent: f}
	f.Blocks = append(f.Blocks, bb)
	return bb
}

// RemoveBlock unlinks a basic block from the function. Instructions inside
// are dropped; the block must not be referenced by other blocks.
func (f *Function) RemoveBlock(bb *BasicBlock) {
	for _, in := range bb.instrs {
		in.dropOperands()
		in.parent = nil
	}
	bb.instrs = nil
	for i, x := range f.Blocks {
		if x == bb {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			break
		}
	}
	bb.parent = nil
}

// Block returns the basic block with the given name, or nil.
func (f *Function) Block(name string) *BasicBlock {
	for _, bb := range f.Blocks {
		if bb.name == name {
			return bb
		}
	}
	return nil
}

// NumInstructions counts the instructions in the function body.
func (f *Function) NumInstructions() int {
	n := 0
	for _, bb := range f.Blocks {
		n += len(bb.instrs)
	}
	return n
}

// AssignNames gives every value and block a unique name so the function
// can be printed and re-parsed: unnamed values receive numeric names and
// duplicated names get uniquifying suffixes (value names and block labels
// are separate namespaces in the assembly syntax).
func (f *Function) AssignNames() {
	values := make(map[string]bool)
	blocks := make(map[string]bool)
	fresh := func(seen map[string]bool) string {
		for {
			n := strconv.Itoa(f.nextID)
			f.nextID++
			if !seen[n] {
				seen[n] = true
				return n
			}
		}
	}
	uniquify := func(seen map[string]bool, name string) string {
		if name == "" {
			return fresh(seen)
		}
		if !seen[name] {
			seen[name] = true
			return name
		}
		for i := 1; ; i++ {
			cand := name + "." + strconv.Itoa(i)
			if !seen[cand] {
				seen[cand] = true
				return cand
			}
		}
	}
	for _, p := range f.Params {
		p.name = uniquify(values, p.name)
	}
	for _, bb := range f.Blocks {
		bb.name = uniquify(blocks, bb.name)
		for _, in := range bb.instrs {
			if in.HasResult() {
				in.name = uniquify(values, in.name)
			}
		}
	}
}

// BasicBlock is a list of instructions ending in exactly one control-flow
// instruction that explicitly names its successors (paper, Section 3.1).
// As a Value, a block is a label usable as a branch target.
type BasicBlock struct {
	useList
	name   string
	parent *Function
	instrs []*Instruction
}

// Type returns the label type.
func (bb *BasicBlock) Type() *Type { return bb.parent.parent.ctx.Label() }

// Name returns the block's label.
func (bb *BasicBlock) Name() string { return bb.name }

// SetName renames the block.
func (bb *BasicBlock) SetName(n string) { bb.name = n }

// Ident renders the block as a label operand.
func (bb *BasicBlock) Ident() string { return "label %" + bb.name }

// Parent returns the containing function.
func (bb *BasicBlock) Parent() *Function { return bb.parent }

// Instructions returns the instruction list; callers must not append.
func (bb *BasicBlock) Instructions() []*Instruction { return bb.instrs }

// Len returns the number of instructions in the block.
func (bb *BasicBlock) Len() int { return len(bb.instrs) }

// Append adds an instruction at the end of the block.
func (bb *BasicBlock) Append(in *Instruction) {
	if in.parent != nil {
		panic("core: instruction already attached")
	}
	in.parent = bb
	bb.instrs = append(bb.instrs, in)
}

// InsertAt places an instruction at index i.
func (bb *BasicBlock) InsertAt(i int, in *Instruction) {
	if in.parent != nil {
		panic("core: instruction already attached")
	}
	in.parent = bb
	bb.instrs = append(bb.instrs, nil)
	copy(bb.instrs[i+1:], bb.instrs[i:])
	bb.instrs[i] = in
}

// InsertBefore places in immediately before pos (which must be in bb).
func (bb *BasicBlock) InsertBefore(pos, in *Instruction) {
	for i, x := range bb.instrs {
		if x == pos {
			bb.InsertAt(i, in)
			return
		}
	}
	panic("core: InsertBefore position not found")
}

// Terminator returns the block's final control-flow instruction, or nil if
// the block is not (yet) well formed.
func (bb *BasicBlock) Terminator() *Instruction {
	if len(bb.instrs) == 0 {
		return nil
	}
	last := bb.instrs[len(bb.instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Successors returns the block's control-flow successors.
func (bb *BasicBlock) Successors() []*BasicBlock {
	t := bb.Terminator()
	if t == nil {
		return nil
	}
	return t.Successors()
}

// Predecessors computes the blocks that branch to bb. This walks the
// function; analyses that need repeated queries should build a CFG once.
func (bb *BasicBlock) Predecessors() []*BasicBlock {
	var preds []*BasicBlock
	for _, other := range bb.parent.Blocks {
		for _, s := range other.Successors() {
			if s == bb {
				preds = append(preds, other)
				break
			}
		}
	}
	return preds
}

// Phis returns the phi instructions at the head of the block.
func (bb *BasicBlock) Phis() []*Instruction {
	var out []*Instruction
	for _, in := range bb.instrs {
		if in.op != OpPhi {
			break
		}
		out = append(out, in)
	}
	return out
}

// FirstNonPhi returns the index of the first non-phi instruction.
func (bb *BasicBlock) FirstNonPhi() int {
	for i, in := range bb.instrs {
		if in.op != OpPhi {
			return i
		}
	}
	return len(bb.instrs)
}
