package core

import "math"

// FoldBinary evaluates a binary opcode over two constants, returning the
// folded constant or nil when the operation cannot be folded (e.g. division
// by zero, which must trap at run time, or operands that are not simple
// scalars).
func FoldBinary(ctx *TypeContext, op Opcode, x, y *Constant) *Constant {
	if x.ty != y.ty {
		return nil
	}
	t := x.ty
	switch {
	case t.IsInteger():
		return foldInt(ctx, op, t, x, y)
	case t.IsFloat():
		return foldFloat(ctx, op, t, x, y)
	case t.Kind() == BoolKind:
		return foldBool(ctx, op, x, y)
	case t.Kind() == PointerKind && op.IsComparison():
		// Only null-vs-null pointer comparisons are foldable.
		if x.CK == ConstNull && y.CK == ConstNull {
			return foldCmpUint(ctx, op, 0, 0, false)
		}
	}
	return nil
}

func foldInt(ctx *TypeContext, op Opcode, t *Type, x, y *Constant) *Constant {
	if x.CK != ConstInt || y.CK != ConstInt {
		return nil
	}
	signed := t.IsSigned()
	a, b := x.I, y.I
	sa, sb := x.Int64(), y.Int64()
	switch op {
	case OpAdd:
		return NewUint(t, a+b)
	case OpSub:
		return NewUint(t, a-b)
	case OpMul:
		return NewUint(t, a*b)
	case OpDiv:
		if b == 0 {
			return nil // traps at run time
		}
		if signed {
			if sa == math.MinInt64 && sb == -1 {
				return nil // overflow traps
			}
			return NewInt(t, sa/sb)
		}
		return NewUint(t, a/b)
	case OpRem:
		if b == 0 {
			return nil
		}
		if signed {
			if sa == math.MinInt64 && sb == -1 {
				return nil
			}
			return NewInt(t, sa%sb)
		}
		return NewUint(t, a%b)
	case OpAnd:
		return NewUint(t, a&b)
	case OpOr:
		return NewUint(t, a|b)
	case OpXor:
		return NewUint(t, a^b)
	}
	if op.IsComparison() {
		if signed {
			return foldCmpInt(ctx, op, sa, sb)
		}
		return foldCmpUint(ctx, op, a, b, true)
	}
	return nil
}

// FoldShift folds shl/shr where the amount is a ubyte constant.
func FoldShift(op Opcode, x *Constant, amt *Constant) *Constant {
	if x.CK != ConstInt || amt.CK != ConstInt {
		return nil
	}
	t := x.ty
	s := uint(amt.I)
	bits := uint(8 * sizeOfInt(t))
	if s >= bits {
		// LLVA defines over-wide shifts as producing 0 (or the sign for
		// arithmetic right shifts), matching a full shift-out.
		if op == OpShr && t.IsSigned() && x.Int64() < 0 {
			return NewInt(t, -1)
		}
		return NewUint(t, 0)
	}
	switch op {
	case OpShl:
		return NewUint(t, x.I<<s)
	case OpShr:
		if t.IsSigned() {
			return NewInt(t, x.Int64()>>s)
		}
		return NewUint(t, x.I>>s)
	}
	return nil
}

func sizeOfInt(t *Type) int {
	switch t.Kind() {
	case UByteKind, SByteKind:
		return 1
	case UShortKind, ShortKind:
		return 2
	case UIntKind, IntKind:
		return 4
	default:
		return 8
	}
}

func foldFloat(ctx *TypeContext, op Opcode, t *Type, x, y *Constant) *Constant {
	if x.CK != ConstFloat || y.CK != ConstFloat {
		return nil
	}
	a, b := x.F, y.F
	switch op {
	case OpAdd:
		return NewFloat(t, a+b)
	case OpSub:
		return NewFloat(t, a-b)
	case OpMul:
		return NewFloat(t, a*b)
	case OpDiv:
		return NewFloat(t, a/b) // IEEE: no trap, yields inf/nan
	case OpRem:
		return NewFloat(t, math.Mod(a, b))
	case OpSetEQ:
		return NewBool(ctx.Bool(), a == b)
	case OpSetNE:
		return NewBool(ctx.Bool(), a != b)
	case OpSetLT:
		return NewBool(ctx.Bool(), a < b)
	case OpSetGT:
		return NewBool(ctx.Bool(), a > b)
	case OpSetLE:
		return NewBool(ctx.Bool(), a <= b)
	case OpSetGE:
		return NewBool(ctx.Bool(), a >= b)
	}
	return nil
}

func foldBool(ctx *TypeContext, op Opcode, x, y *Constant) *Constant {
	if (x.CK != ConstBool && x.CK != ConstInt) || (y.CK != ConstBool && y.CK != ConstInt) {
		return nil
	}
	a, b := x.I&1, y.I&1
	t := ctx.Bool()
	switch op {
	case OpAnd:
		return NewBool(t, a&b != 0)
	case OpOr:
		return NewBool(t, a|b != 0)
	case OpXor:
		return NewBool(t, a^b != 0)
	case OpSetEQ:
		return NewBool(t, a == b)
	case OpSetNE:
		return NewBool(t, a != b)
	case OpSetLT:
		return NewBool(t, a < b)
	case OpSetGT:
		return NewBool(t, a > b)
	case OpSetLE:
		return NewBool(t, a <= b)
	case OpSetGE:
		return NewBool(t, a >= b)
	}
	return nil
}

func foldCmpInt(ctx *TypeContext, op Opcode, a, b int64) *Constant {
	t := ctx.Bool()
	switch op {
	case OpSetEQ:
		return NewBool(t, a == b)
	case OpSetNE:
		return NewBool(t, a != b)
	case OpSetLT:
		return NewBool(t, a < b)
	case OpSetGT:
		return NewBool(t, a > b)
	case OpSetLE:
		return NewBool(t, a <= b)
	case OpSetGE:
		return NewBool(t, a >= b)
	}
	return nil
}

func foldCmpUint(ctx *TypeContext, op Opcode, a, b uint64, _ bool) *Constant {
	t := ctx.Bool()
	switch op {
	case OpSetEQ:
		return NewBool(t, a == b)
	case OpSetNE:
		return NewBool(t, a != b)
	case OpSetLT:
		return NewBool(t, a < b)
	case OpSetGT:
		return NewBool(t, a > b)
	case OpSetLE:
		return NewBool(t, a <= b)
	case OpSetGE:
		return NewBool(t, a >= b)
	}
	return nil
}

// FoldCast evaluates a cast of a constant to the destination type, or nil
// when not foldable.
func FoldCast(c *Constant, to *Type) *Constant {
	from := c.ty
	if from == to {
		return c
	}
	switch c.CK {
	case ConstUndef:
		return NewUndef(to)
	case ConstInt, ConstBool:
		switch {
		case to.IsInteger():
			// Sign- or zero-extend according to the SOURCE type's
			// signedness, then truncate to the destination width.
			if from.IsSigned() {
				return NewInt(to, c.Int64())
			}
			return NewUint(to, c.I)
		case to.Kind() == BoolKind:
			return NewBool(to, c.I != 0)
		case to.IsFloat():
			if from.IsSigned() {
				return NewFloat(to, float64(c.Int64()))
			}
			return NewFloat(to, float64(c.I))
		case to.Kind() == PointerKind:
			if c.I == 0 {
				return NewNull(to)
			}
			return nil // arbitrary int-to-pointer is a runtime value
		}
	case ConstFloat:
		switch {
		case to.IsFloat():
			return NewFloat(to, c.F)
		case to.IsInteger():
			if math.IsNaN(c.F) || math.IsInf(c.F, 0) {
				return nil
			}
			if to.IsSigned() {
				return NewInt(to, int64(c.F))
			}
			if c.F < 0 {
				return NewInt(to, int64(c.F))
			}
			return NewUint(to, uint64(c.F))
		case to.Kind() == BoolKind:
			return NewBool(to, c.F != 0)
		}
	case ConstNull:
		switch {
		case to.Kind() == PointerKind:
			return NewNull(to)
		case to.IsInteger():
			return NewUint(to, 0)
		case to.Kind() == BoolKind:
			return NewBool(to, false)
		}
	}
	return nil
}
