// Package core implements the LLVA virtual instruction set architecture:
// the type system, SSA values, the 28-instruction set, modules, functions,
// basic blocks, an IR builder, constant folding, and a verifier.
//
// The design follows the MICRO-36 2003 paper "LLVA: A Low-level Virtual
// Instruction Set Architecture": a typed, three-address, load/store V-ISA
// with an infinite SSA register file, explicit control-flow graphs, a
// language-independent type system of primitives plus four derived types
// (pointer, array, structure, function), and per-instruction exception
// attributes.
package core

import (
	"fmt"
	"strings"
)

// Kind identifies a type in the LLVA type system.
type Kind uint8

// The LLVA primitive and derived type kinds. Primitive types have
// predefined sizes; the four derived kinds are pointer, array, structure
// and function (paper, Section 3.1).
const (
	VoidKind Kind = iota
	BoolKind
	UByteKind
	SByteKind
	UShortKind
	ShortKind
	UIntKind
	IntKind
	ULongKind
	LongKind
	FloatKind
	DoubleKind
	LabelKind
	PointerKind
	ArrayKind
	StructKind
	FunctionKind
)

var kindNames = [...]string{
	VoidKind:     "void",
	BoolKind:     "bool",
	UByteKind:    "ubyte",
	SByteKind:    "sbyte",
	UShortKind:   "ushort",
	ShortKind:    "short",
	UIntKind:     "uint",
	IntKind:      "int",
	ULongKind:    "ulong",
	LongKind:     "long",
	FloatKind:    "float",
	DoubleKind:   "double",
	LabelKind:    "label",
	PointerKind:  "pointer",
	ArrayKind:    "array",
	StructKind:   "struct",
	FunctionKind: "function",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Type is an LLVA type. Types are interned per TypeContext, so two types
// are equal iff their pointers are equal. Named struct types are nominal
// (unique per name within a context) which permits recursive types such as
// the paper's QuadTree example.
type Type struct {
	kind     Kind
	elem     *Type   // pointer pointee / array element
	n        int     // array length
	fields   []*Type // struct fields
	params   []*Type // function parameters
	ret      *Type   // function return
	variadic bool
	name     string // non-empty for named struct types
	body     bool   // named struct: body has been set
}

// Kind reports the type's kind.
func (t *Type) Kind() Kind { return t.kind }

// Name returns the name of a named struct type, or "".
func (t *Type) Name() string { return t.name }

// Elem returns the pointee of a pointer type or element of an array type.
func (t *Type) Elem() *Type { return t.elem }

// Len returns the length of an array type.
func (t *Type) Len() int { return t.n }

// Fields returns a struct type's field types. The slice must not be mutated.
func (t *Type) Fields() []*Type { return t.fields }

// Params returns a function type's parameter types.
func (t *Type) Params() []*Type { return t.params }

// Ret returns a function type's return type.
func (t *Type) Ret() *Type { return t.ret }

// Variadic reports whether a function type accepts extra trailing arguments.
func (t *Type) Variadic() bool { return t.variadic }

// IsInteger reports whether t is one of the eight integer types.
func (t *Type) IsInteger() bool {
	return t.kind >= UByteKind && t.kind <= LongKind
}

// IsSigned reports whether t is a signed integer type.
func (t *Type) IsSigned() bool {
	switch t.kind {
	case SByteKind, ShortKind, IntKind, LongKind:
		return true
	}
	return false
}

// IsFloat reports whether t is float or double.
func (t *Type) IsFloat() bool { return t.kind == FloatKind || t.kind == DoubleKind }

// IsFirstClass reports whether values of this type may live in virtual
// registers. Per the paper, registers hold only scalars: boolean, integer,
// floating point, and pointer.
func (t *Type) IsFirstClass() bool {
	switch t.kind {
	case BoolKind, FloatKind, DoubleKind, PointerKind:
		return true
	}
	return t.IsInteger()
}

// IsSized reports whether values of the type have a knowable size in memory.
func (t *Type) IsSized() bool {
	switch t.kind {
	case VoidKind, LabelKind, FunctionKind:
		return false
	case StructKind:
		if t.name != "" && !t.body {
			return false // opaque named struct
		}
		for _, f := range t.fields {
			if !f.IsSized() {
				return false
			}
		}
		return true
	case ArrayKind:
		return t.elem.IsSized()
	}
	return true
}

// Opaque reports whether t is a named struct whose body has not been set.
func (t *Type) Opaque() bool { return t.kind == StructKind && t.name != "" && !t.body }

// String renders the type in LLVA assembly syntax. Named structs render as
// %name; use Definition for the full body.
func (t *Type) String() string {
	var b strings.Builder
	t.write(&b, false)
	return b.String()
}

// Definition renders a named struct type's full body (e.g. for module-level
// type declarations); for other types it is identical to String.
func (t *Type) Definition() string {
	var b strings.Builder
	t.write(&b, true)
	return b.String()
}

func (t *Type) write(b *strings.Builder, expandName bool) {
	if t == nil {
		b.WriteString("<nil-type>")
		return
	}
	if t.name != "" && !expandName {
		b.WriteByte('%')
		b.WriteString(t.name)
		return
	}
	switch t.kind {
	case PointerKind:
		t.elem.write(b, false)
		b.WriteByte('*')
	case ArrayKind:
		fmt.Fprintf(b, "[%d x ", t.n)
		t.elem.write(b, false)
		b.WriteByte(']')
	case StructKind:
		if t.name != "" && !t.body {
			b.WriteString("opaque")
			return
		}
		b.WriteString("{ ")
		for i, f := range t.fields {
			if i > 0 {
				b.WriteString(", ")
			}
			f.write(b, false)
		}
		b.WriteString(" }")
	case FunctionKind:
		t.ret.write(b, false)
		b.WriteString(" (")
		for i, p := range t.params {
			if i > 0 {
				b.WriteString(", ")
			}
			p.write(b, false)
		}
		if t.variadic {
			if len(t.params) > 0 {
				b.WriteString(", ")
			}
			b.WriteString("...")
		}
		b.WriteByte(')')
	default:
		b.WriteString(t.kind.String())
	}
}

// key returns the canonical interning key for structural types.
func (t *Type) key() string {
	var b strings.Builder
	t.writeKey(&b)
	return b.String()
}

func (t *Type) writeKey(b *strings.Builder) {
	if t.name != "" {
		// Named structs are nominal: key on the name.
		b.WriteString("%")
		b.WriteString(t.name)
		return
	}
	switch t.kind {
	case PointerKind:
		b.WriteByte('p')
		t.elem.writeKey(b)
	case ArrayKind:
		fmt.Fprintf(b, "a%d:", t.n)
		t.elem.writeKey(b)
	case StructKind:
		b.WriteByte('s')
		for _, f := range t.fields {
			f.writeKey(b)
			b.WriteByte(',')
		}
		b.WriteByte(';')
	case FunctionKind:
		b.WriteByte('f')
		t.ret.writeKey(b)
		b.WriteByte('(')
		for _, p := range t.params {
			p.writeKey(b)
			b.WriteByte(',')
		}
		if t.variadic {
			b.WriteString("...")
		}
		b.WriteByte(')')
	default:
		b.WriteString(t.kind.String())
	}
}

// TypeContext owns and interns types. All types used within one Module must
// come from the module's context.
type TypeContext struct {
	prim    [DoubleKind + 2]*Type // primitives indexed by kind (incl. label)
	derived map[string]*Type
	named   map[string]*Type
}

// NewTypeContext creates an empty type context with all primitive types.
func NewTypeContext() *TypeContext {
	c := &TypeContext{
		derived: make(map[string]*Type),
		named:   make(map[string]*Type),
	}
	for k := VoidKind; k <= LabelKind; k++ {
		c.prim[k] = &Type{kind: k}
	}
	return c
}

// Primitive returns the unique primitive type of the given kind.
func (c *TypeContext) Primitive(k Kind) *Type {
	if k > LabelKind {
		panic("core: Primitive called with derived kind " + k.String())
	}
	return c.prim[k]
}

// Convenience accessors for the primitive types.
func (c *TypeContext) Void() *Type   { return c.prim[VoidKind] }
func (c *TypeContext) Bool() *Type   { return c.prim[BoolKind] }
func (c *TypeContext) UByte() *Type  { return c.prim[UByteKind] }
func (c *TypeContext) SByte() *Type  { return c.prim[SByteKind] }
func (c *TypeContext) UShort() *Type { return c.prim[UShortKind] }
func (c *TypeContext) Short() *Type  { return c.prim[ShortKind] }
func (c *TypeContext) UInt() *Type   { return c.prim[UIntKind] }
func (c *TypeContext) Int() *Type    { return c.prim[IntKind] }
func (c *TypeContext) ULong() *Type  { return c.prim[ULongKind] }
func (c *TypeContext) Long() *Type   { return c.prim[LongKind] }
func (c *TypeContext) Float() *Type  { return c.prim[FloatKind] }
func (c *TypeContext) Double() *Type { return c.prim[DoubleKind] }
func (c *TypeContext) Label() *Type  { return c.prim[LabelKind] }

func (c *TypeContext) intern(t *Type) *Type {
	k := t.key()
	if got, ok := c.derived[k]; ok {
		return got
	}
	c.derived[k] = t
	return t
}

// Pointer returns the pointer type to elem.
func (c *TypeContext) Pointer(elem *Type) *Type {
	if elem.kind == VoidKind || elem.kind == LabelKind {
		panic("core: pointer to " + elem.kind.String())
	}
	return c.intern(&Type{kind: PointerKind, elem: elem})
}

// Array returns the array type [n x elem].
func (c *TypeContext) Array(n int, elem *Type) *Type {
	if n < 0 {
		panic("core: negative array length")
	}
	return c.intern(&Type{kind: ArrayKind, n: n, elem: elem})
}

// Struct returns the anonymous structure type with the given fields.
func (c *TypeContext) Struct(fields ...*Type) *Type {
	cp := make([]*Type, len(fields))
	copy(cp, fields)
	return c.intern(&Type{kind: StructKind, fields: cp, body: true})
}

// Function returns the function type ret(params...). variadic adds "...".
func (c *TypeContext) Function(ret *Type, params []*Type, variadic bool) *Type {
	cp := make([]*Type, len(params))
	copy(cp, params)
	return c.intern(&Type{kind: FunctionKind, ret: ret, params: cp, variadic: variadic})
}

// NamedStruct returns the named struct type for name, creating an opaque one
// if it does not yet exist. Named structs are nominal, enabling recursive
// types; call SetBody to provide fields.
func (c *TypeContext) NamedStruct(name string) *Type {
	if t, ok := c.named[name]; ok {
		return t
	}
	t := &Type{kind: StructKind, name: name}
	c.named[name] = t
	return t
}

// SetBody sets the field list of a named struct type. It panics if the body
// has already been set.
func (c *TypeContext) SetBody(t *Type, fields ...*Type) {
	if t.kind != StructKind || t.name == "" {
		panic("core: SetBody on non-named-struct type")
	}
	if t.body {
		panic("core: SetBody called twice on %" + t.name)
	}
	t.fields = append([]*Type(nil), fields...)
	t.body = true
}

// NamedTypes returns the names of all named struct types, in no particular
// order.
func (c *TypeContext) NamedTypes() map[string]*Type { return c.named }
