package core

// Layout computes the memory layout (sizes, alignments, field offsets) of
// LLVA types for a particular implementation configuration. The only
// implementation parameter the V-ISA exposes is the pointer size (paper,
// Section 3.2); all other types have predefined sizes.
type Layout struct {
	// PointerSize is the pointer width in bytes (4 or 8).
	PointerSize int
}

// Size returns the in-memory size of t in bytes.
func (l Layout) Size(t *Type) int64 {
	switch t.Kind() {
	case BoolKind, UByteKind, SByteKind:
		return 1
	case UShortKind, ShortKind:
		return 2
	case UIntKind, IntKind, FloatKind:
		return 4
	case ULongKind, LongKind, DoubleKind:
		return 8
	case PointerKind:
		return int64(l.PointerSize)
	case ArrayKind:
		return int64(t.Len()) * l.Size(t.Elem())
	case StructKind:
		size := int64(0)
		for _, f := range t.Fields() {
			size = align(size, l.Align(f)) + l.Size(f)
		}
		return align(size, l.Align(t))
	}
	panic("core: Size of unsized type " + t.String())
}

// Align returns the natural alignment of t in bytes.
func (l Layout) Align(t *Type) int64 {
	switch t.Kind() {
	case BoolKind, UByteKind, SByteKind:
		return 1
	case UShortKind, ShortKind:
		return 2
	case UIntKind, IntKind, FloatKind:
		return 4
	case ULongKind, LongKind, DoubleKind:
		return 8
	case PointerKind:
		return int64(l.PointerSize)
	case ArrayKind:
		return l.Align(t.Elem())
	case StructKind:
		a := int64(1)
		for _, f := range t.Fields() {
			if fa := l.Align(f); fa > a {
				a = fa
			}
		}
		return a
	}
	panic("core: Align of unsized type " + t.String())
}

// FieldOffset returns the byte offset of struct field i within t.
func (l Layout) FieldOffset(t *Type, i int) int64 {
	if t.Kind() != StructKind {
		panic("core: FieldOffset on non-struct " + t.String())
	}
	off := int64(0)
	for j, f := range t.Fields() {
		off = align(off, l.Align(f))
		if j == i {
			return off
		}
		off += l.Size(f)
	}
	panic("core: FieldOffset index out of range")
}

func align(off, a int64) int64 {
	if a <= 1 {
		return off
	}
	return (off + a - 1) &^ (a - 1)
}

// GEPOffset computes the constant byte offset of a getelementptr whose
// indices are all constants. base is the pointer operand's pointee type.
// It returns the offset and the resulting element type.
func (l Layout) GEPOffset(base *Type, indices []*Constant) (int64, *Type) {
	off := indices[0].Int64() * l.Size(base)
	cur := base
	for _, idx := range indices[1:] {
		switch cur.Kind() {
		case StructKind:
			fi := int(idx.Int64())
			off += l.FieldOffset(cur, fi)
			cur = cur.Fields()[fi]
		case ArrayKind:
			cur = cur.Elem()
			off += idx.Int64() * l.Size(cur)
		default:
			panic("core: GEP steps into non-aggregate " + cur.String())
		}
	}
	return off, cur
}

// GEPResultType computes the pointee type a getelementptr produces given
// the pointer operand's pointee type and the index operand types/values.
// Struct indices must be constants; array/pointer steps may be dynamic.
func GEPResultType(base *Type, indices []Value) (*Type, error) {
	cur := base
	for i, idx := range indices {
		if i == 0 {
			continue // first index steps over the pointer itself
		}
		switch cur.Kind() {
		case StructKind:
			c, ok := idx.(*Constant)
			if !ok || c.CK != ConstInt {
				return nil, errf("getelementptr struct index %d must be a constant integer", i)
			}
			fi := int(c.Int64())
			if fi < 0 || fi >= len(cur.Fields()) {
				return nil, errf("getelementptr struct index %d out of range for %s", fi, cur)
			}
			cur = cur.Fields()[fi]
		case ArrayKind:
			cur = cur.Elem()
		default:
			return nil, errf("getelementptr index %d steps into non-aggregate %s", i, cur)
		}
	}
	return cur, nil
}
