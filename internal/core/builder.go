package core

import "fmt"

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// Builder constructs well-typed LLVA instructions and appends them to a
// current insertion block. Type errors panic: the builder is a programming
// API, and malformed IR is a caller bug (front-ends validate inputs before
// reaching the builder).
type Builder struct {
	fn  *Function
	bb  *BasicBlock
	ctx *TypeContext
}

// NewBuilder creates a builder positioned at no block.
func NewBuilder(f *Function) *Builder {
	return &Builder{fn: f, ctx: f.parent.ctx}
}

// SetBlock positions the builder at the end of bb.
func (b *Builder) SetBlock(bb *BasicBlock) { b.bb = bb }

// Block returns the current insertion block.
func (b *Builder) Block() *BasicBlock { return b.bb }

// Func returns the function under construction.
func (b *Builder) Func() *Function { return b.fn }

func (b *Builder) emit(in *Instruction, name string) *Instruction {
	in.name = name
	b.bb.Append(in)
	return in
}

func (b *Builder) binary(op Opcode, x, y Value, name string) *Instruction {
	if x.Type() != y.Type() {
		panic(fmt.Sprintf("core: %s operand type mismatch: %s vs %s", op, x.Type(), y.Type()))
	}
	var rt *Type
	if op.IsComparison() {
		rt = b.ctx.Bool()
	} else {
		rt = x.Type()
	}
	return b.emit(NewInstruction(op, rt, x, y), name)
}

// Arithmetic and bitwise instructions.
func (b *Builder) Add(x, y Value, name string) *Instruction { return b.binary(OpAdd, x, y, name) }
func (b *Builder) Sub(x, y Value, name string) *Instruction { return b.binary(OpSub, x, y, name) }
func (b *Builder) Mul(x, y Value, name string) *Instruction { return b.binary(OpMul, x, y, name) }
func (b *Builder) Div(x, y Value, name string) *Instruction { return b.binary(OpDiv, x, y, name) }
func (b *Builder) Rem(x, y Value, name string) *Instruction { return b.binary(OpRem, x, y, name) }
func (b *Builder) And(x, y Value, name string) *Instruction { return b.binary(OpAnd, x, y, name) }
func (b *Builder) Or(x, y Value, name string) *Instruction  { return b.binary(OpOr, x, y, name) }
func (b *Builder) Xor(x, y Value, name string) *Instruction { return b.binary(OpXor, x, y, name) }

// Shl and Shr take a ubyte shift amount, matching LLVA's fixed shift-count
// type.
func (b *Builder) Shl(x, amt Value, name string) *Instruction {
	return b.shift(OpShl, x, amt, name)
}
func (b *Builder) Shr(x, amt Value, name string) *Instruction {
	return b.shift(OpShr, x, amt, name)
}

func (b *Builder) shift(op Opcode, x, amt Value, name string) *Instruction {
	if !x.Type().IsInteger() {
		panic("core: shift of non-integer " + x.Type().String())
	}
	if amt.Type().Kind() != UByteKind {
		panic("core: shift amount must be ubyte, got " + amt.Type().String())
	}
	return b.emit(NewInstruction(op, x.Type(), x, amt), name)
}

// Comparison instructions (result type bool).
func (b *Builder) SetEQ(x, y Value, name string) *Instruction { return b.binary(OpSetEQ, x, y, name) }
func (b *Builder) SetNE(x, y Value, name string) *Instruction { return b.binary(OpSetNE, x, y, name) }
func (b *Builder) SetLT(x, y Value, name string) *Instruction { return b.binary(OpSetLT, x, y, name) }
func (b *Builder) SetGT(x, y Value, name string) *Instruction { return b.binary(OpSetGT, x, y, name) }
func (b *Builder) SetLE(x, y Value, name string) *Instruction { return b.binary(OpSetLE, x, y, name) }
func (b *Builder) SetGE(x, y Value, name string) *Instruction { return b.binary(OpSetGE, x, y, name) }

// RetVoid emits "ret void".
func (b *Builder) RetVoid() *Instruction {
	return b.emit(NewInstruction(OpRet, b.ctx.Void()), "")
}

// Ret emits "ret <v>".
func (b *Builder) Ret(v Value) *Instruction {
	return b.emit(NewInstruction(OpRet, b.ctx.Void(), v), "")
}

// Br emits an unconditional branch.
func (b *Builder) Br(target *BasicBlock) *Instruction {
	in := NewInstruction(OpBr, b.ctx.Void())
	in.AddBlock(target)
	return b.emit(in, "")
}

// CondBr emits a conditional branch on a bool value.
func (b *Builder) CondBr(cond Value, t, f *BasicBlock) *Instruction {
	if cond.Type().Kind() != BoolKind {
		panic("core: br condition must be bool")
	}
	in := NewInstruction(OpBr, b.ctx.Void(), cond)
	in.AddBlock(t)
	in.AddBlock(f)
	return b.emit(in, "")
}

// Mbr emits a multi-way branch on an integer value with the given case
// values and targets.
func (b *Builder) Mbr(v Value, def *BasicBlock, cases []int64, targets []*BasicBlock) *Instruction {
	if !v.Type().IsInteger() {
		panic("core: mbr index must be integer")
	}
	if len(cases) != len(targets) {
		panic("core: mbr cases/targets length mismatch")
	}
	in := NewInstruction(OpMbr, b.ctx.Void(), v)
	in.AddBlock(def)
	in.Cases = append(in.Cases, cases...)
	for _, t := range targets {
		in.AddBlock(t)
	}
	return b.emit(in, "")
}

func checkCall(callee Value, args []Value) *Type {
	pt := callee.Type()
	if pt.Kind() != PointerKind || pt.Elem().Kind() != FunctionKind {
		panic("core: callee is not a pointer to function: " + pt.String())
	}
	sig := pt.Elem()
	if !sig.Variadic() && len(args) != len(sig.Params()) ||
		sig.Variadic() && len(args) < len(sig.Params()) {
		panic(fmt.Sprintf("core: call to %s with %d args", sig, len(args)))
	}
	for i, p := range sig.Params() {
		if args[i].Type() != p {
			panic(fmt.Sprintf("core: call arg %d type %s, want %s", i, args[i].Type(), p))
		}
	}
	return sig.Ret()
}

// Call emits a direct or indirect function call.
func (b *Builder) Call(callee Value, args []Value, name string) *Instruction {
	rt := checkCall(callee, args)
	ops := append([]Value{callee}, args...)
	return b.emit(NewInstruction(OpCall, rt, ops...), name)
}

// Invoke emits a call with explicit normal and unwind successors,
// implementing source-language exceptions via stack unwinding.
func (b *Builder) Invoke(callee Value, args []Value, normal, unwind *BasicBlock, name string) *Instruction {
	rt := checkCall(callee, args)
	ops := append([]Value{callee}, args...)
	in := NewInstruction(OpInvoke, rt, ops...)
	in.AddBlock(normal)
	in.AddBlock(unwind)
	return b.emit(in, name)
}

// Unwind emits an unwind instruction, which pops stack frames until the
// nearest dynamically-enclosing invoke and transfers to its unwind block.
func (b *Builder) Unwind() *Instruction {
	return b.emit(NewInstruction(OpUnwind, b.ctx.Void()), "")
}

// Load emits a typed load through a pointer.
func (b *Builder) Load(ptr Value, name string) *Instruction {
	pt := ptr.Type()
	if pt.Kind() != PointerKind {
		panic("core: load of non-pointer " + pt.String())
	}
	if !pt.Elem().IsFirstClass() {
		panic("core: load of non-first-class type " + pt.Elem().String())
	}
	return b.emit(NewInstruction(OpLoad, pt.Elem(), ptr), name)
}

// Store emits a typed store through a pointer.
func (b *Builder) Store(v, ptr Value) *Instruction {
	pt := ptr.Type()
	if pt.Kind() != PointerKind {
		panic("core: store to non-pointer " + pt.String())
	}
	if v.Type() != pt.Elem() {
		panic(fmt.Sprintf("core: store type mismatch: %s into %s", v.Type(), pt))
	}
	return b.emit(NewInstruction(OpStore, b.ctx.Void(), v, ptr), "")
}

// GEP emits a getelementptr: type-safe pointer arithmetic with offsets in
// terms of abstract type properties (field numbers and element indices),
// never exposing pointer size or endianness (paper, Section 3.1).
func (b *Builder) GEP(ptr Value, indices []Value, name string) *Instruction {
	pt := ptr.Type()
	if pt.Kind() != PointerKind {
		panic("core: getelementptr on non-pointer " + pt.String())
	}
	if len(indices) == 0 {
		panic("core: getelementptr requires at least one index")
	}
	for _, idx := range indices {
		if !idx.Type().IsInteger() {
			panic("core: getelementptr index must be integer, got " + idx.Type().String())
		}
	}
	rt, err := GEPResultType(pt.Elem(), indices)
	if err != nil {
		panic("core: " + err.Error())
	}
	ops := append([]Value{ptr}, indices...)
	return b.emit(NewInstruction(OpGetElementPtr, b.ctx.Pointer(rt), ops...), name)
}

// Alloca emits a stack allocation of one elem and returns its typed
// address. Stack frame layout is abstracted behind this instruction
// (paper, Section 3.2).
func (b *Builder) Alloca(elem *Type, name string) *Instruction {
	in := NewInstruction(OpAlloca, b.ctx.Pointer(elem))
	in.Allocated = elem
	return b.emit(in, name)
}

// AllocaN emits a stack allocation of count elements (count is uint).
func (b *Builder) AllocaN(elem *Type, count Value, name string) *Instruction {
	if count.Type().Kind() != UIntKind {
		panic("core: alloca count must be uint")
	}
	in := NewInstruction(OpAlloca, b.ctx.Pointer(elem), count)
	in.Allocated = elem
	return b.emit(in, name)
}

// Cast emits the sole type-conversion instruction, converting a register
// value from one scalar type to another (there is no implicit coercion in
// LLVA).
func (b *Builder) Cast(v Value, to *Type, name string) *Instruction {
	if err := CheckCast(v.Type(), to); err != nil {
		panic("core: " + err.Error())
	}
	return b.emit(NewInstruction(OpCast, to, v), name)
}

// Phi emits an empty phi of the given type; add incomings with
// AddPhiIncoming. Phis merge SSA values at control-flow join points.
func (b *Builder) Phi(ty *Type, name string) *Instruction {
	if !ty.IsFirstClass() {
		panic("core: phi of non-first-class type " + ty.String())
	}
	in := NewInstruction(OpPhi, ty)
	in.name = name
	// Phis must precede all non-phi instructions in the block.
	b.bb.InsertAt(b.bb.FirstNonPhi(), in)
	return in
}

// CheckCast validates a cast between two types: any scalar-to-scalar
// conversion between bool, integer, floating-point and pointer types is
// permitted.
func CheckCast(from, to *Type) error {
	if !from.IsFirstClass() || !to.IsFirstClass() {
		return errf("cast between non-scalar types %s and %s", from, to)
	}
	if from.IsFloat() && to.Kind() == PointerKind || from.Kind() == PointerKind && to.IsFloat() {
		return errf("cast between floating point and pointer: %s to %s", from, to)
	}
	return nil
}
