package workloads

import (
	"strings"
	"testing"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/machine"
	"llva/internal/mem"
	"llva/internal/rt"
	"llva/internal/target"
)

func interpRun(t *testing.T, m *core.Module) (int, string) {
	t.Helper()
	var out strings.Builder
	ip, err := interp.New(m, &out)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	code, err := ip.RunMain()
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	return code, out.String()
}

func machineRun(t *testing.T, m *core.Module, d *target.Desc) (int, string) {
	t.Helper()
	tr, err := codegen.New(d, m)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tr.TranslateModule()
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	var out strings.Builder
	env := rt.NewEnv(mem.New(0, true), &out)
	mc, err := machine.New(d, m, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.LoadObject(obj); err != nil {
		t.Fatal(err)
	}
	v, err := mc.Run("main")
	if err != nil {
		t.Fatalf("machine %s: %v\noutput: %s", d.Name, err, out.String())
	}
	return int(int32(v)), out.String()
}

// TestWorkloadsCompile checks every workload compiles, verifies, and
// optimizes cleanly.
func TestWorkloadsCompile(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			if _, err := w.Compile(); err != nil {
				t.Fatal(err)
			}
			if _, err := w.CompileOptimized(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWorkloadsRun runs every workload on the interpreter and checks a
// zero exit status and non-trivial output. (Run-to-run determinism is
// enforced by TestWorkloadGoldenOutputs, which pins the exact bytes.)
func TestWorkloadsRun(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			m1, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			code1, out1 := interpRun(t, m1)
			if code1 != 0 {
				t.Errorf("exit status %d, want 0\noutput: %s", code1, out1)
			}
			if len(strings.TrimSpace(out1)) == 0 {
				t.Error("no output")
			}
		})
	}
}

// TestWorkloadsOptimizationPreservesOutput runs each workload unoptimized
// and after O2 and compares outputs.
func TestWorkloadsOptimizationPreservesOutput(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			m0, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			_, out0 := interpRun(t, m0)
			m2, err := w.CompileOptimized()
			if err != nil {
				t.Fatal(err)
			}
			_, out2 := interpRun(t, m2)
			if out0 != out2 {
				t.Errorf("O2 changed output:\nO0: %q\nO2: %q", out0, out2)
			}
		})
	}
}

// TestWorkloadsCrossEngine runs every optimized workload on both
// simulated processors and compares against the interpreter — the full
// Table 2 configuration must be semantically sound end to end.
func TestWorkloadsCrossEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine sweep is slow")
	}
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			m, err := w.CompileOptimized()
			if err != nil {
				t.Fatal(err)
			}
			refCode, refOut := interpRun(t, m)
			for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
				code, out := machineRun(t, m, d)
				if code != refCode || out != refOut {
					t.Errorf("%s diverges:\ninterp: %d %q\n%s: %d %q",
						d.Name, refCode, refOut, d.Name, code, out)
				}
			}
		})
	}
}

func TestWorkloadRegistry(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Errorf("suite has %d workloads, want 17 (Table 2 rows)", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if w.LOC() < 30 {
			t.Errorf("workload %s suspiciously small: %d LOC", w.Name, w.LOC())
		}
		if ByName(w.Name) != w {
			// ByName returns a fresh slice element; compare by name only.
			if ByName(w.Name) == nil || ByName(w.Name).Name != w.Name {
				t.Errorf("ByName(%s) broken", w.Name)
			}
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
}
