package workloads

// The PtrDist-analog workloads: pointer-intensive C programs.

// srcAnagram mirrors ptrdist-anagram: word signatures, hash tables with
// chaining, anagram class discovery over an embedded dictionary.
const srcAnagram = `
/* anagram: group dictionary words by letter signature (ptrdist-anagram analog) */

struct Word {
	char text[16];
	unsigned long sig;
	struct Word *next;      /* chain within a hash bucket */
	struct Word *classmate; /* next word in the same anagram class */
	int classSize;
};

struct Word *buckets[127];
char dict[] =
	"stone notes seton tones steno onset "
	"listen silent enlist tinsel inlets "
	"parse spare pears reaps spear pares "
	"dear dare read "
	"rat tar art "
	"evil vile live veil "
	"meat team tame mate "
	"angel glean angle "
	"brag grab garb "
	"cat act tac "
	"stop pots opts spot tops post "
	"arc car "
	"bored robed orbed "
	"loop polo pool "
	"night thing "
	"below elbow bowel "
	"study dusty "
	"cheap peach "
	"could cloud "
	"state taste "
	"acre race care "
	"earth heart hater "
	"danger garden gander "
	"lemon melon "
	"diary dairy "
	"unique single words here zzz";

unsigned long signature(char *w, int n) {
	/* order-independent letter multiset signature: product of primes */
	unsigned long primes[26];
	unsigned long sig = 1;
	int i;
	primes[0] = 2;  primes[1] = 3;  primes[2] = 5;  primes[3] = 7;
	primes[4] = 11; primes[5] = 13; primes[6] = 17; primes[7] = 19;
	primes[8] = 23; primes[9] = 29; primes[10] = 31; primes[11] = 37;
	primes[12] = 41; primes[13] = 43; primes[14] = 47; primes[15] = 53;
	primes[16] = 59; primes[17] = 61; primes[18] = 67; primes[19] = 71;
	primes[20] = 73; primes[21] = 79; primes[22] = 83; primes[23] = 89;
	primes[24] = 97; primes[25] = 101;
	for (i = 0; i < n; i++) {
		int c = (int)w[i] - 'a';
		if (c >= 0 && c < 26) sig *= primes[c];
	}
	return sig;
}

struct Word *newWord(char *src, int n) {
	struct Word *w = (struct Word*)malloc(sizeof(struct Word));
	int i;
	for (i = 0; i < n && i < 15; i++) w->text[i] = src[i];
	w->text[i] = '\0';
	w->sig = signature(src, n);
	w->next = 0;
	w->classmate = 0;
	w->classSize = 1;
	return w;
}

/* insert into hash table; link anagram classes */
int insert(struct Word *w) {
	int h = (int)(w->sig % 127u);
	struct Word *p = buckets[h];
	while (p != 0) {
		if (p->sig == w->sig) {
			w->classmate = p->classmate;
			p->classmate = w;
			p->classSize++;
			return 0; /* joined an existing class */
		}
		p = p->next;
	}
	w->next = buckets[h];
	buckets[h] = w;
	return 1; /* new class */
}

int main() {
	int classes = 0;
	int words = 0;
	int i = 0;
	int start;
	int pass;

	for (pass = 0; pass < 20; pass++) {
		/* reset table each pass to exercise allocation and chasing */
		int b;
		for (b = 0; b < 127; b++) buckets[b] = 0;
		classes = 0;
		words = 0;
		i = 0;
		while (dict[i] != '\0') {
			while (dict[i] == ' ') i++;
			if (dict[i] == '\0') break;
			start = i;
			while (dict[i] != ' ' && dict[i] != '\0') i++;
			classes += insert(newWord(&dict[start], i - start));
			words++;
		}
	}

	/* report: words, classes, size of largest class, its signature hash */
	int best = 0;
	unsigned long bestSig = 0;
	for (i = 0; i < 127; i++) {
		struct Word *p = buckets[i];
		while (p != 0) {
			if (p->classSize > best) { best = p->classSize; bestSig = p->sig; }
			p = p->next;
		}
	}
	print_int(words); print_char(' ');
	print_int(classes); print_char(' ');
	print_int(best); print_char(' ');
	print_uint(bestSig % 1000000u); print_nl();
	return 0;
}
`

// srcKS mirrors ptrdist-ks: Kernighan-Lin/Schweikert graph partitioning
// with gain computation and vertex swapping.
const srcKS = `
/* ks: Kernighan-Lin graph bipartitioning (ptrdist-ks analog) */

int NV;
int adj[64][64];   /* weighted adjacency matrix */
int side[64];      /* 0 or 1 */
int locked[64];

void buildGraph() {
	int i, j;
	NV = 64;
	srand(12345);
	for (i = 0; i < NV; i++)
		for (j = 0; j < NV; j++) adj[i][j] = 0;
	for (i = 0; i < NV; i++) {
		int d;
		for (d = 0; d < 6; d++) {
			int j2 = (int)(rand() % 64u);
			int w = 1 + (int)(rand() % 9u);
			if (j2 != i) { adj[i][j2] = w; adj[j2][i] = w; }
		}
	}
	for (i = 0; i < NV; i++) side[i] = i % 2;
}

int cutCost() {
	int i, j, cost = 0;
	for (i = 0; i < NV; i++)
		for (j = i + 1; j < NV; j++)
			if (side[i] != side[j]) cost += adj[i][j];
	return cost;
}

/* D-value: external minus internal cost of vertex v */
int dValue(int v) {
	int j, e = 0, in = 0;
	for (j = 0; j < NV; j++) {
		if (j == v) continue;
		if (side[j] != side[v]) e += adj[v][j];
		else in += adj[v][j];
	}
	return e - in;
}

int klPass() {
	int moved, improved = 0;
	int i;
	for (i = 0; i < NV; i++) locked[i] = 0;
	for (moved = 0; moved < NV / 2; moved++) {
		/* best unlocked pair (a in side0, b in side1) by gain */
		int bestA = -1, bestB = -1, bestGain = -1000000;
		int a, b;
		for (a = 0; a < NV; a++) {
			if (locked[a] || side[a] != 0) continue;
			for (b = 0; b < NV; b++) {
				if (locked[b] || side[b] != 1) continue;
				int gain = dValue(a) + dValue(b) - 2 * adj[a][b];
				if (gain > bestGain) { bestGain = gain; bestA = a; bestB = b; }
			}
		}
		if (bestA < 0 || bestGain <= 0) break;
		side[bestA] = 1; side[bestB] = 0;
		locked[bestA] = 1; locked[bestB] = 1;
		improved += bestGain;
	}
	return improved;
}

int main() {
	buildGraph();
	int before = cutCost();
	int pass, gain;
	int totalGain = 0;
	for (pass = 0; pass < 3; pass++) {
		gain = klPass();
		totalGain += gain;
		if (gain <= 0) break;
	}
	int after = cutCost();
	print_int(before); print_char(' ');
	print_int(after); print_char(' ');
	print_int(totalGain); print_nl();
	return 0;
}
`

// srcFT mirrors ptrdist-ft: minimum spanning tree over a sparse graph
// with a pointer-based priority structure.
const srcFT = `
/* ft: Prim minimum spanning tree with a pairing of linked lists (ptrdist-ft analog) */

struct Edge {
	int to;
	int weight;
	struct Edge *next;
};

struct Edge *adjList[256];
int inTree[256];
long dist[256];
int parent[256];
int NV;

void addEdge(int a, int b, int w) {
	struct Edge *e = (struct Edge*)malloc(sizeof(struct Edge));
	e->to = b; e->weight = w; e->next = adjList[a]; adjList[a] = e;
	struct Edge *r = (struct Edge*)malloc(sizeof(struct Edge));
	r->to = a; r->weight = w; r->next = adjList[b]; adjList[b] = r;
}

void buildGraph() {
	int i;
	NV = 256;
	srand(777);
	for (i = 0; i < NV; i++) adjList[i] = 0;
	/* ring to guarantee connectivity */
	for (i = 0; i < NV; i++) addEdge(i, (i + 1) % NV, 1 + (int)(rand() % 50u));
	/* random chords */
	for (i = 0; i < 3 * NV; i++) {
		int a = (int)(rand() % 256u);
		int b = (int)(rand() % 256u);
		if (a != b) addEdge(a, b, 1 + (int)(rand() % 100u));
	}
}

long prim() {
	int i;
	long total = 0;
	for (i = 0; i < NV; i++) { inTree[i] = 0; dist[i] = 1000000; parent[i] = -1; }
	dist[0] = 0;
	for (i = 0; i < NV; i++) {
		/* extract-min over the lazy list (ft uses a heap; same access pattern) */
		int best = -1;
		long bestD = 2000000;
		int v;
		for (v = 0; v < NV; v++) {
			if (!inTree[v] && dist[v] < bestD) { bestD = dist[v]; best = v; }
		}
		if (best < 0) break;
		inTree[best] = 1;
		total += dist[best];
		struct Edge *e = adjList[best];
		while (e != 0) {
			if (!inTree[e->to] && (long)e->weight < dist[e->to]) {
				dist[e->to] = (long)e->weight;
				parent[e->to] = best;
			}
			e = e->next;
		}
	}
	return total;
}

int main() {
	buildGraph();
	long w1 = prim();
	/* perturb: penalize tree edges (both directions), re-run */
	int v;
	for (v = 1; v < NV; v++) {
		struct Edge *e = adjList[v];
		while (e != 0) {
			if (e->to == parent[v]) e->weight += 40;
			e = e->next;
		}
		e = adjList[parent[v] < 0 ? 0 : parent[v]];
		while (e != 0) {
			if (e->to == v) e->weight += 40;
			e = e->next;
		}
	}
	long w2 = prim();
	print_int(w1); print_char(' '); print_int(w2); print_nl();
	return 0;
}
`

// srcYacr2 mirrors ptrdist-yacr2: VLSI channel routing with vertical
// constraints, via the left-edge algorithm.
const srcYacr2 = `
/* yacr2: left-edge channel routing with vertical constraints (ptrdist-yacr2 analog) */

int NNETS;
int leftEnd[128];
int rightEnd[128];
int track[128];
int over[128];   /* net on top terminal of each column */
int under[128];  /* net on bottom terminal */

void buildChannel() {
	int i;
	NNETS = 96;
	srand(424242);
	for (i = 0; i < NNETS; i++) {
		int a = (int)(rand() % 120u);
		int b = a + 1 + (int)(rand() % 24u);
		if (b > 127) b = 127;
		leftEnd[i] = a; rightEnd[i] = b; track[i] = -1;
	}
	for (i = 0; i < 128; i++) {
		over[i] = (int)(rand() % 96u);
		under[i] = (int)(rand() % 96u);
	}
}

/* does net n have a vertical constraint against net m? (n must be above m) */
int mustBeAbove(int n, int m) {
	int c;
	for (c = leftEnd[n]; c <= rightEnd[n]; c++) {
		if (over[c] == n && under[c] == m && c >= leftEnd[m] && c <= rightEnd[m])
			return 1;
	}
	return 0;
}

int overlaps(int a, int b) {
	return !(rightEnd[a] < leftEnd[b] || rightEnd[b] < leftEnd[a]);
}

int route() {
	int tracksUsed = 0;
	int assigned = 0;
	int t;
	for (t = 0; assigned < NNETS && t < 96; t++) {
		int lastRight = -1;
		int n;
		/* left-edge: sweep nets by left endpoint */
		for (;;) {
			int best = -1;
			for (n = 0; n < NNETS; n++) {
				if (track[n] >= 0) continue;
				if (leftEnd[n] <= lastRight) continue;
				if (best < 0 || leftEnd[n] < leftEnd[best]) best = n;
			}
			if (best < 0) break;
			/* vertical constraints against nets already in this track set */
			int ok = 1;
			for (n = 0; n < NNETS; n++) {
				if (track[n] == t && overlaps(best, n)) { ok = 0; break; }
				if (track[n] >= 0 && track[n] > t && mustBeAbove(n, best)) { ok = 0; break; }
			}
			if (ok) {
				track[best] = t;
				lastRight = rightEnd[best];
				assigned++;
			} else {
				lastRight = leftEnd[best]; /* skip this net for now */
			}
		}
		tracksUsed = t + 1;
	}
	return tracksUsed;
}

int main() {
	buildChannel();
	int tracks = route();
	int unrouted = 0;
	long span = 0;
	int n;
	for (n = 0; n < NNETS; n++) {
		if (track[n] < 0) unrouted++;
		else span += (long)(rightEnd[n] - leftEnd[n]);
	}
	print_int(tracks); print_char(' ');
	print_int(unrouted); print_char(' ');
	print_int(span); print_nl();
	return 0;
}
`

// srcBC mirrors ptrdist-bc: an arbitrary-precision calculator; here a
// recursive-descent expression interpreter with variables and a loop
// construct over an embedded program.
const srcBC = `
/* bc: expression interpreter (ptrdist-bc analog) */

char program[] =
	"a=3; b=4; c=a*a+b*b;"
	"s=0; i=1;"
	"L: s=s+i*i-(i/2); i=i+1; if i<200 goto L;"
	"d=(c+s)*2-(s/7);"
	"x=1; j=0;"
	"M: x=(x*31+7)%100003; j=j+1; if j<500 goto M;"
	"r=d+x+c;";

long vars[26];
int pos;

long parseExpr();

void skipSpaces() {
	while (program[pos] == ' ') pos++;
}

long parsePrimary() {
	skipSpaces();
	char c = program[pos];
	if (c >= '0' && c <= '9') {
		long v = 0;
		while (program[pos] >= '0' && program[pos] <= '9') {
			v = v * 10 + (long)(program[pos] - '0');
			pos++;
		}
		return v;
	}
	if (c == '(') {
		pos++;
		long v = parseExpr();
		skipSpaces();
		if (program[pos] == ')') pos++;
		return v;
	}
	if (c >= 'a' && c <= 'z') {
		pos++;
		return vars[(int)(c - 'a')];
	}
	if (c == '-') {
		pos++;
		return -parsePrimary();
	}
	return 0;
}

long parseTerm() {
	long v = parsePrimary();
	for (;;) {
		skipSpaces();
		char c = program[pos];
		if (c == '*') { pos++; v = v * parsePrimary(); }
		else if (c == '/') {
			pos++;
			long d = parsePrimary();
			if (d != 0) v = v / d;
		}
		else if (c == '%') {
			pos++;
			long d = parsePrimary();
			if (d != 0) v = v % d;
		}
		else return v;
	}
}

long parseExpr() {
	long v = parseTerm();
	for (;;) {
		skipSpaces();
		char c = program[pos];
		if (c == '+') { pos++; v = v + parseTerm(); }
		else if (c == '-') { pos++; v = v - parseTerm(); }
		else return v;
	}
}

int labelPos[26];

void findLabels() {
	int i = 0;
	while (program[i] != '\0') {
		if (program[i] >= 'A' && program[i] <= 'Z' && program[i+1] == ':')
			labelPos[(int)(program[i] - 'A')] = i + 2;
		i++;
	}
}

/* execute one statement starting at pos; returns 0 at end of program */
int step() {
	skipSpaces();
	char c = program[pos];
	if (c == '\0') return 0;
	if (c == ';') { pos++; return 1; }
	if (c >= 'A' && c <= 'Z') { pos += 2; return 1; } /* label */
	if (c == 'i' && program[pos+1] == 'f') {
		pos += 2;
		long lhs = parseExpr();
		skipSpaces();
		char op = program[pos];
		pos++;
		long rhs = parseExpr();
		int cond = 0;
		if (op == '<') cond = lhs < rhs;
		if (op == '>') cond = lhs > rhs;
		if (op == '=') cond = lhs == rhs;
		skipSpaces();
		/* expect: goto X */
		pos += 4;
		skipSpaces();
		char lbl = program[pos];
		pos++;
		if (cond) pos = labelPos[(int)(lbl - 'A')];
		return 1;
	}
	/* assignment: v=expr */
	int v = (int)(c - 'a');
	pos++;
	skipSpaces();
	pos++; /* '=' */
	vars[v] = parseExpr();
	return 1;
}

int main() {
	int i;
	findLabels();
	for (i = 0; i < 26; i++) vars[i] = 0;
	pos = 0;
	long steps = 0;
	while (step()) steps++;
	print_int(vars['r' - 'a']); print_char(' ');
	print_int(vars['s' - 'a']); print_char(' ');
	print_int(steps); print_nl();
	return 0;
}
`
