package workloads

// SPEC analog workloads, part 2.

// srcAmmp mirrors 188.ammp: molecular dynamics with pairwise short-range
// forces and velocity-Verlet integration.
const srcAmmp = `
/* ammp: Lennard-Jones molecular dynamics (188.ammp analog) */

double px[128]; double py[128]; double pz[128];
double vx[128]; double vy[128]; double vz[128];
double fx[128]; double fy[128]; double fz[128];
int NA;

void initAtoms() {
	int i;
	NA = 128;
	srand(1234);
	for (i = 0; i < NA; i++) {
		/* lattice with jitter */
		px[i] = (double)(i % 8) * 1.2 + (double)(rand() % 100) / 1000.0;
		py[i] = (double)((i / 8) % 4) * 1.2 + (double)(rand() % 100) / 1000.0;
		pz[i] = (double)(i / 32) * 1.2 + (double)(rand() % 100) / 1000.0;
		vx[i] = 0.0; vy[i] = 0.0; vz[i] = 0.0;
	}
}

double computeForces() {
	int i, j;
	double pot = 0.0;
	for (i = 0; i < NA; i++) { fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0; }
	for (i = 0; i < NA; i++) {
		for (j = i + 1; j < NA; j++) {
			double dx = px[i] - px[j];
			double dy = py[i] - py[j];
			double dz = pz[i] - pz[j];
			double r2 = dx*dx + dy*dy + dz*dz;
			if (r2 > 9.0) continue;         /* cutoff */
			if (r2 < 0.01) r2 = 0.01;       /* clamp */
			double inv2 = 1.0 / r2;
			double inv6 = inv2 * inv2 * inv2;
			double inv12 = inv6 * inv6;
			pot += 4.0 * (inv12 - inv6);
			double fmag = 24.0 * (2.0 * inv12 - inv6) * inv2;
			fx[i] += fmag * dx; fx[j] -= fmag * dx;
			fy[i] += fmag * dy; fy[j] -= fmag * dy;
			fz[i] += fmag * dz; fz[j] -= fmag * dz;
		}
	}
	return pot;
}

int main() {
	initAtoms();
	double dt = 0.002;
	double pot = 0.0;
	int step;
	for (step = 0; step < 40; step++) {
		pot = computeForces();
		int i;
		for (i = 0; i < NA; i++) {
			vx[i] += dt * fx[i]; vy[i] += dt * fy[i]; vz[i] += dt * fz[i];
			px[i] += dt * vx[i]; py[i] += dt * vy[i]; pz[i] += dt * vz[i];
		}
	}
	double ke = 0.0;
	int i;
	for (i = 0; i < NA; i++) ke += vx[i]*vx[i] + vy[i]*vy[i] + vz[i]*vz[i];
	ke = 0.5 * ke;
	print_float(pot); print_nl();
	print_float(ke); print_nl();
	return 0;
}
`

// srcVPR mirrors 175.vpr: FPGA placement by simulated annealing over a
// grid, minimizing total wirelength.
const srcVPR = `
/* vpr: simulated annealing placement (175.vpr analog) */

int cellX[100]; int cellY[100];
int nets[160][4];     /* each net connects up to 4 cells; [0] = count */
int NCELLS; int NNETS2;
int grid[12][12];     /* cell at location, or -1 */

void build() {
	int i;
	NCELLS = 100;
	NNETS2 = 160;
	srand(31415);
	int x, y;
	for (x = 0; x < 12; x++) for (y = 0; y < 12; y++) grid[x][y] = -1;
	for (i = 0; i < NCELLS; i++) {
		for (;;) {
			x = (int)(rand() % 12u);
			y = (int)(rand() % 12u);
			if (grid[x][y] < 0) { grid[x][y] = i; cellX[i] = x; cellY[i] = y; break; }
		}
	}
	for (i = 0; i < NNETS2; i++) {
		int k = 2 + (int)(rand() % 3u);
		nets[i][0] = k;
		int j;
		for (j = 1; j <= k; j++) nets[i][j] = (int)(rand() % 100u);
	}
}

/* half-perimeter wirelength of one net */
int netCost(int n) {
	int k = nets[n][0];
	int minX = 100, maxX = -1, minY = 100, maxY = -1;
	int j;
	for (j = 1; j <= k; j++) {
		int c = nets[n][j];
		if (cellX[c] < minX) minX = cellX[c];
		if (cellX[c] > maxX) maxX = cellX[c];
		if (cellY[c] < minY) minY = cellY[c];
		if (cellY[c] > maxY) maxY = cellY[c];
	}
	return (maxX - minX) + (maxY - minY);
}

int totalCost() {
	int n, c = 0;
	for (n = 0; n < NNETS2; n++) c += netCost(n);
	return c;
}

int main() {
	build();
	int before = totalCost();
	long t = 700;          /* temperature, scaled by 100 */
	int moves = 0, accepts = 0;
	int cur = before;
	while (t > 10) {
		int m;
		for (m = 0; m < 45; m++) {
			/* swap two random locations (cells or empty) */
			int x1 = (int)(rand() % 12u); int y1 = (int)(rand() % 12u);
			int x2 = (int)(rand() % 12u); int y2 = (int)(rand() % 12u);
			int a = grid[x1][y1]; int b = grid[x2][y2];
			if (a < 0 && b < 0) continue;
			int old = cur;
			/* apply */
			grid[x1][y1] = b; grid[x2][y2] = a;
			if (a >= 0) { cellX[a] = x2; cellY[a] = y2; }
			if (b >= 0) { cellX[b] = x1; cellY[b] = y1; }
			int now = totalCost();
			int delta = now - old;
			moves++;
			/* accept downhill always; uphill with pseudo-probability */
			long thresh = (long)(rand() % 1000u);
			if (delta <= 0 || (long)delta * 300 < t * thresh / 1000) {
				cur = now;
				accepts++;
			} else {
				/* undo */
				grid[x1][y1] = a; grid[x2][y2] = b;
				if (a >= 0) { cellX[a] = x1; cellY[a] = y1; }
				if (b >= 0) { cellX[b] = x2; cellY[b] = y2; }
			}
		}
		t = t * 82 / 100;
	}
	int after = totalCost();
	print_int(before); print_char(' ');
	print_int(after); print_char(' ');
	print_int(accepts); print_char(' ');
	print_int(moves); print_nl();
	return 0;
}
`

// srcTwolf mirrors 300.twolf: standard-cell placement with net bounding
// boxes, row-based with cell widths (a second, distinct annealer).
const srcTwolf = `
/* twolf: row-based standard-cell annealing (300.twolf analog) */

int cellRow[80]; int cellPos[80]; int cellWidth[80];
int rowEnd[8];
int netCells[120][6];
int NCELL; int NNET; int NROW;

void build() {
	int i;
	NCELL = 80; NNET = 120; NROW = 8;
	srand(271828);
	for (i = 0; i < NROW; i++) rowEnd[i] = 0;
	for (i = 0; i < NCELL; i++) {
		cellWidth[i] = 2 + (int)(rand() % 6u);
		int r = i % NROW;
		cellRow[i] = r;
		cellPos[i] = rowEnd[r];
		rowEnd[r] += cellWidth[i];
	}
	for (i = 0; i < NNET; i++) {
		int k = 2 + (int)(rand() % 4u);
		netCells[i][0] = k;
		int j;
		for (j = 1; j <= k; j++) netCells[i][j] = (int)(rand() % 80u);
	}
}

int netSpan(int n) {
	int k = netCells[n][0];
	int minX = 1000000, maxX = -1000000, minR = 100, maxR = -1;
	int j;
	for (j = 1; j <= k; j++) {
		int c = netCells[n][j];
		int x = cellPos[c] + cellWidth[c] / 2;
		if (x < minX) minX = x;
		if (x > maxX) maxX = x;
		if (cellRow[c] < minR) minR = cellRow[c];
		if (cellRow[c] > maxR) maxR = cellRow[c];
	}
	return (maxX - minX) + 4 * (maxR - minR);
}

int wirelength() {
	int n, c = 0;
	for (n = 0; n < NNET; n++) c += netSpan(n);
	return c;
}

/* swap two cells (exchanging row and position) */
void swapCells(int a, int b) {
	int t = cellRow[a]; cellRow[a] = cellRow[b]; cellRow[b] = t;
	t = cellPos[a]; cellPos[a] = cellPos[b]; cellPos[b] = t;
}

int main() {
	build();
	int before = wirelength();
	int cur = before;
	long temp = 800;
	int accepts = 0;
	while (temp > 5) {
		int m;
		for (m = 0; m < 35; m++) {
			int a = (int)(rand() % 80u);
			int b = (int)(rand() % 80u);
			if (a == b) continue;
			swapCells(a, b);
			int now = wirelength();
			int delta = now - cur;
			long gate = (long)(rand() % 100u);
			if (delta < 0 || (long)delta * 25 < temp * gate / 100) {
				cur = now;
				accepts++;
			} else {
				swapCells(a, b);
			}
		}
		temp = temp * 78 / 100;
	}
	print_int(before); print_char(' ');
	print_int(cur); print_char(' ');
	print_int(accepts); print_nl();
	return 0;
}
`

// srcCrafty mirrors 186.crafty: game-tree search with bitboards —
// alpha-beta over a bitboard game (8x8 domineering-style placement duel).
const srcCrafty = `
/* crafty: alpha-beta search over a bitboard game (186.crafty analog) */

/* Game: players alternately claim a free square and its right neighbor
   (player A, horizontal) or lower neighbor (player B, vertical) on an
   8x8 board held in a 64-bit bitboard. A player unable to move loses. */

unsigned long occupied;
long nodes;

int popcount(unsigned long b) {
	int n = 0;
	while (b != 0ul) { b &= b - 1ul; n++; }
	return n;
}

/* moves for horizontal player: squares s where s and s+1 free, same row */
unsigned long hMoves(unsigned long occ) {
	unsigned long free = ~occ;
	unsigned long notH = 9187201950435737471ul;  /* ~file-h mask: bit 7 of each byte clear */
	return free & (free >> 1) & notH;
}

/* moves for vertical player: squares s where s and s+8 free */
unsigned long vMoves(unsigned long occ) {
	unsigned long free = ~occ;
	return free & (free >> 8) & 72057594037927935ul; /* low 56 bits */
}

/* negamax with alpha-beta: side 0 = horizontal, 1 = vertical */
int search(unsigned long occ, int side, int alpha, int beta, int depth) {
	nodes++;
	unsigned long moves;
	if (side == 0) moves = hMoves(occ); else moves = vMoves(occ);
	if (moves == 0ul) return -1000 + depth;   /* cannot move: lose */
	if (depth >= 3) {
		/* evaluation: mobility difference */
		return popcount(hMoves(occ)) - popcount(vMoves(occ));
	}
	int best = -2000;
	while (moves != 0ul) {
		unsigned long m = moves & (0ul - moves);   /* lowest set bit */
		moves ^= m;
		unsigned long place;
		if (side == 0) place = m | (m << 1);
		else place = m | (m << 8);
		int score = -search(occ | place, 1 - side, -beta, -alpha, depth + 1);
		if (score > best) best = score;
		if (best > alpha) alpha = best;
		if (alpha >= beta) break;   /* cutoff */
	}
	return best;
}

int main() {
	nodes = 0;
	occupied = 0ul;
	/* play a short game with search at each move */
	int side = 0;
	int movesPlayed = 0;
	long checksum = 0;
	while (movesPlayed < 5) {
		unsigned long ms;
		if (side == 0) ms = hMoves(occupied); else ms = vMoves(occupied);
		if (ms == 0ul) break;
		/* pick the move with the best search score (first 14 candidates) */
		unsigned long bestMove = 0ul;
		int bestScore = -3000;
		int tried = 0;
		while (ms != 0ul && tried < 6) {
			tried++;
			unsigned long m = ms & (0ul - ms);
			ms ^= m;
			unsigned long place;
			if (side == 0) place = m | (m << 1);
			else place = m | (m << 8);
			int sc = -search(occupied | place, 1 - side, -2000, 2000, 0);
			if (sc > bestScore) { bestScore = sc; bestMove = place; }
		}
		occupied |= bestMove;
		checksum = checksum * 37 + (long)(bestMove % 1000003ul) + (long)bestScore;
		side = 1 - side;
		movesPlayed++;
	}
	print_int(movesPlayed); print_char(' ');
	print_int(popcount(occupied)); print_char(' ');
	print_int(nodes); print_char(' ');
	print_int(checksum % 1000000); print_nl();
	return 0;
}
`

// srcVortex mirrors 255.vortex: an object-oriented database — records
// with virtual dispatch through function-pointer tables, hash indexes,
// insert/lookup/delete transactions.
const srcVortex = `
/* vortex: object database with fn-pointer dispatch (255.vortex analog) */

struct Obj {
	int id;
	int kind;        /* 0=point 1=segment 2=poly */
	int a; int b; int c; int d;
	struct Obj *next;
};

typedef int (*AreaFn)(struct Obj*);
typedef int (*ValidFn)(struct Obj*);

int areaPoint(struct Obj *o) { return 0; }
int areaSegment(struct Obj *o) {
	int dx = o->c - o->a;
	int dy = o->d - o->b;
	if (dx < 0) dx = -dx;
	if (dy < 0) dy = -dy;
	return dx + dy;
}
int areaPoly(struct Obj *o) {
	int w = o->c - o->a;
	int h = o->d - o->b;
	if (w < 0) w = -w;
	if (h < 0) h = -h;
	return w * h;
}

int validAlways(struct Obj *o) { return 1; }
int validSegment(struct Obj *o) { return o->a != o->c || o->b != o->d; }
int validPoly(struct Obj *o) { return o->a < o->c && o->b < o->d; }

AreaFn areaTable[3] = {areaPoint, areaSegment, areaPoly};
ValidFn validTable[3] = {validAlways, validSegment, validPoly};

struct Obj *index2[256];
int population;

int hashId(int id) {
	unsigned int h = (unsigned int)id * 2654435761u;
	return (int)(h % 256u);
}

void insert(int id, int kind, int a, int b, int c, int d) {
	struct Obj *o = (struct Obj*)malloc(sizeof(struct Obj));
	o->id = id; o->kind = kind;
	o->a = a; o->b = b; o->c = c; o->d = d;
	int h = hashId(id);
	o->next = index2[h];
	index2[h] = o;
	population++;
}

struct Obj *lookup(int id) {
	struct Obj *o = index2[hashId(id)];
	while (o != 0) {
		if (o->id == id) return o;
		o = o->next;
	}
	return 0;
}

int deleteObj(int id) {
	int h = hashId(id);
	struct Obj *o = index2[h];
	struct Obj *prev = 0;
	while (o != 0) {
		if (o->id == id) {
			if (prev == 0) index2[h] = o->next;
			else prev->next = o->next;
			free((char*)o);
			population--;
			return 1;
		}
		prev = o;
		o = o->next;
	}
	return 0;
}

int main() {
	int i;
	srand(600);
	population = 0;
	for (i = 0; i < 256; i++) index2[i] = 0;

	long areaSum = 0;
	int found = 0, removed = 0, invalid = 0;
	int txn;
	for (txn = 0; txn < 4000; txn++) {
		int op = (int)(rand() % 10u);
		int id = (int)(rand() % 600u);
		if (op < 5) {
			insert(id + txn * 7 % 600, (int)(rand() % 3u),
				(int)(rand() % 50u), (int)(rand() % 50u),
				(int)(rand() % 50u), (int)(rand() % 50u));
		} else if (op < 8) {
			struct Obj *o = lookup(id);
			if (o != 0) {
				found++;
				if (validTable[o->kind](o))
					areaSum += (long)areaTable[o->kind](o);
				else
					invalid++;
			}
		} else {
			removed += deleteObj(id);
		}
	}
	print_int(population); print_char(' ');
	print_int(found); print_char(' ');
	print_int(removed); print_char(' ');
	print_int(invalid); print_char(' ');
	print_int(areaSum % 1000000); print_nl();
	return 0;
}
`

// srcGap mirrors 254.gap: computer algebra — arbitrary-precision integer
// arithmetic (add, multiply, divide by small) computing factorials and
// binomials.
const srcGap = `
/* gap: bignum factorials and binomials (254.gap analog) */

/* bignums: arrays of int digits base 10000, [0] = length */

void bigSet(int *x, int v) {
	x[0] = 0;
	while (v > 0) {
		x[0]++;
		x[x[0]] = v % 10000;
		v /= 10000;
	}
	if (x[0] == 0) { x[0] = 1; x[1] = 0; }
}

void bigCopy(int *dst, int *src) {
	int i;
	for (i = 0; i <= src[0]; i++) dst[i] = src[i];
}

void bigMulSmall(int *x, int m) {
	int carry = 0, i;
	for (i = 1; i <= x[0]; i++) {
		int t = x[i] * m + carry;
		x[i] = t % 10000;
		carry = t / 10000;
	}
	while (carry > 0) {
		x[0]++;
		x[x[0]] = carry % 10000;
		carry /= 10000;
	}
}

void bigDivSmall(int *x, int d) {
	int rem = 0, i;
	for (i = x[0]; i >= 1; i--) {
		int t = rem * 10000 + x[i];
		x[i] = t / d;
		rem = t % d;
	}
	while (x[0] > 1 && x[x[0]] == 0) x[0]--;
}

void bigAdd(int *x, int *y) {
	int n = x[0];
	if (y[0] > n) n = y[0];
	int carry = 0, i;
	for (i = 1; i <= n; i++) {
		int a = 0; int b = 0;
		if (i <= x[0]) a = x[i];
		if (i <= y[0]) b = y[i];
		int t = a + b + carry;
		x[i] = t % 10000;
		carry = t / 10000;
	}
	x[0] = n;
	if (carry > 0) { x[0]++; x[x[0]] = carry; }
}

int bigDigitSum(int *x) {
	int s = 0, i;
	for (i = 1; i <= x[0]; i++) {
		int d = x[i];
		while (d > 0) { s += d % 10; d /= 10; }
	}
	return s;
}

int fact[300];
int binom[300];
int tmp[300];

int main() {
	/* 150! */
	bigSet(fact, 1);
	int i;
	for (i = 2; i <= 150; i++) bigMulSmall(fact, i);
	print_int(fact[0]); print_char(' ');
	print_int(bigDigitSum(fact)); print_nl();

	/* C(200, 100) = prod (100+k)/k */
	bigSet(binom, 1);
	for (i = 1; i <= 100; i++) {
		bigMulSmall(binom, 100 + i);
		bigDivSmall(binom, i);
	}
	print_int(binom[0]); print_char(' ');
	print_int(bigDigitSum(binom)); print_nl();

	/* fibonacci-like bignum chain */
	bigSet(tmp, 1);
	int j;
	for (j = 0; j < 120; j++) {
		bigAdd(tmp, binom);
		bigCopy(binom, tmp);
	}
	print_int(tmp[0]); print_char(' ');
	print_int(bigDigitSum(tmp) % 10000); print_nl();
	return 0;
}
`
