package workloads

import (
	"testing"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/obj"
)

// TestWorkloadsAsmRoundTrip prints each workload module as LLVA assembly
// and re-parses it; the result must verify, and the fast workloads must
// still produce their golden output.
func TestWorkloadsAsmRoundTrip(t *testing.T) {
	fast := map[string]bool{"anagram": true, "yacr2": true, "gap": true, "vortex": true}
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			m, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			text := asm.Print(m)
			m2, err := asm.Parse(w.Name, text)
			if err != nil {
				t.Fatalf("reparse failed: %v", err)
			}
			if err := core.Verify(m2); err != nil {
				t.Fatalf("reparsed module fails verification: %v", err)
			}
			if fast[w.Name] {
				_, out := interpRun(t, m2)
				if out != goldenOutputs[w.Name] {
					t.Errorf("round-tripped module output drifted:\n got: %q\nwant: %q",
						out, goldenOutputs[w.Name])
				}
			}
		})
	}
}

// TestWorkloadsObjRoundTrip encodes each workload to virtual object code
// and decodes it back; the fast subset must still produce golden output.
func TestWorkloadsObjRoundTrip(t *testing.T) {
	fast := map[string]bool{"anagram": true, "yacr2": true, "gap": true, "vortex": true}
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			m, err := w.CompileOptimized()
			if err != nil {
				t.Fatal(err)
			}
			data, err := obj.Encode(m)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := obj.Decode(data)
			if err != nil {
				t.Fatalf("decode failed: %v", err)
			}
			if err := core.Verify(m2); err != nil {
				t.Fatalf("decoded module fails verification: %v", err)
			}
			// Encode must be a fixpoint.
			data2, err := obj.Encode(m2)
			if err != nil {
				t.Fatal(err)
			}
			data3, err := obj.Encode(mustDecode(t, data2))
			if err != nil {
				t.Fatal(err)
			}
			if string(data2) != string(data3) {
				t.Error("encode/decode is not a fixpoint")
			}
			if fast[w.Name] {
				_, out := interpRun(t, m2)
				if out != goldenOutputs[w.Name] {
					t.Errorf("decoded module output drifted:\n got: %q\nwant: %q",
						out, goldenOutputs[w.Name])
				}
			}
		})
	}
}

func mustDecode(t *testing.T, data []byte) *core.Module {
	t.Helper()
	m, err := obj.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
