package workloads

// SPEC CINT2000 / CFP2000 analog workloads, part 1.

// srcArt mirrors 179.art: an Adaptive Resonance Theory neural network
// scanning synthetic "thermal images" — FP-heavy inner products.
const srcArt = `
/* art: ART-1 style neural network over synthetic images (179.art analog) */

double f1[64];        /* input layer */
double weightsB[16][64]; /* bottom-up */
double weightsT[16][64]; /* top-down */
int committed[16];

void makeImage(int seed) {
	int i;
	srand((unsigned long)seed);
	for (i = 0; i < 64; i++) {
		f1[i] = (double)(rand() % 1000) / 1000.0;
	}
}

void initWeights() {
	int j, i;
	for (j = 0; j < 16; j++) {
		committed[j] = 0;
		for (i = 0; i < 64; i++) {
			weightsB[j][i] = 1.0 / (1.0 + 64.0);
			weightsT[j][i] = 1.0;
		}
	}
}

/* winner-take-all F2 activation */
int findWinner(int *mask) {
	int j, best = -1;
	double bestAct = -1.0;
	for (j = 0; j < 16; j++) {
		if (mask[j]) continue;
		double act = 0.0;
		int i;
		for (i = 0; i < 64; i++) act += weightsB[j][i] * f1[i];
		if (act > bestAct) { bestAct = act; best = j; }
	}
	return best;
}

/* vigilance test: |I and T| / |I| */
double match(int j) {
	double inter = 0.0, norm = 0.0;
	int i;
	for (i = 0; i < 64; i++) {
		double m = f1[i] * weightsT[j][i];
		if (m < f1[i]) inter += m; else inter += f1[i];
		norm += f1[i];
	}
	if (norm == 0.0) return 0.0;
	return inter / norm;
}

void learn(int j) {
	int i;
	double norm = 0.0;
	for (i = 0; i < 64; i++) {
		double m = f1[i] * weightsT[j][i];
		if (m < f1[i]) weightsT[j][i] = m; else weightsT[j][i] = f1[i];
		norm += weightsT[j][i];
	}
	for (i = 0; i < 64; i++)
		weightsB[j][i] = weightsT[j][i] / (0.5 + norm);
	committed[j] = 1;
}

int classify(int seed) {
	int mask[16];
	int tries;
	makeImage(seed);
	int j;
	for (j = 0; j < 16; j++) mask[j] = 0;
	for (tries = 0; tries < 16; tries++) {
		int w = findWinner(mask);
		if (w < 0) return -1;
		if (match(w) >= 0.6) { learn(w); return w; }
		mask[w] = 1;
	}
	return -1;
}

int main() {
	initWeights();
	int hist[16];
	int j;
	for (j = 0; j < 16; j++) hist[j] = 0;
	int img;
	int rejected = 0;
	for (img = 0; img < 120; img++) {
		int cls = classify(img % 37);
		if (cls < 0) rejected++;
		else hist[cls]++;
	}
	int used = 0, maxc = 0;
	for (j = 0; j < 16; j++) {
		if (committed[j]) used++;
		if (hist[j] > maxc) maxc = hist[j];
	}
	print_int(used); print_char(' ');
	print_int(maxc); print_char(' ');
	print_int(rejected); print_nl();
	double checksum = 0.0;
	int i;
	for (j = 0; j < 16; j++)
		for (i = 0; i < 64; i++) checksum += weightsB[j][i];
	print_float(checksum); print_nl();
	return 0;
}
`

// srcEquake mirrors 183.equake: sparse matrix-vector products driving an
// explicit time-stepping simulation.
const srcEquake = `
/* equake: sparse MVP time stepping on a synthetic mesh (183.equake analog) */

int N;
int rowStart[401];
int colIdx[4000];
double val[4000];
double disp[400];
double vel[400];
double acc[400];
double force[400];
int NNZ;

void buildMesh() {
	int i;
	N = 400;
	NNZ = 0;
	srand(99);
	for (i = 0; i < N; i++) {
		rowStart[i] = NNZ;
		/* banded sparse row: self + neighbors */
		int k;
		colIdx[NNZ] = i; val[NNZ] = 4.0; NNZ++;
		for (k = 1; k <= 4; k++) {
			int j = i - k;
			if (j >= 0) { colIdx[NNZ] = j; val[NNZ] = -1.0 / (double)k; NNZ++; }
			j = i + k;
			if (j < N) { colIdx[NNZ] = j; val[NNZ] = -1.0 / (double)k; NNZ++; }
		}
	}
	rowStart[N] = NNZ;
	for (i = 0; i < N; i++) {
		disp[i] = 0.0; vel[i] = 0.0; acc[i] = 0.0;
	}
}

void spmv(double *x, double *y) {
	int i;
	for (i = 0; i < N; i++) {
		double s = 0.0;
		int k;
		for (k = rowStart[i]; k < rowStart[i+1]; k++)
			s += val[k] * x[colIdx[k]];
		y[i] = s;
	}
}

int main() {
	buildMesh();
	int step;
	double dt = 0.01;
	for (step = 0; step < 120; step++) {
		/* impulse source at the center for early steps */
		if (step < 10) disp[N/2] += 0.5;
		spmv(disp, force);
		int i;
		for (i = 0; i < N; i++) {
			acc[i] = -force[i] - 0.1 * vel[i];
			vel[i] += dt * acc[i];
			disp[i] += dt * vel[i];
		}
	}
	double energy = 0.0, maxd = 0.0;
	int i;
	for (i = 0; i < N; i++) {
		energy += vel[i] * vel[i] + disp[i] * disp[i];
		double a = disp[i];
		if (a < 0.0) a = -a;
		if (a > maxd) maxd = a;
	}
	print_float(energy); print_nl();
	print_float(maxd); print_nl();
	print_int(NNZ); print_nl();
	return 0;
}
`

// srcMCF mirrors 181.mcf: minimum-cost flow by successive shortest
// augmenting paths on a synthetic transport network.
const srcMCF = `
/* mcf: min-cost flow via Bellman-Ford augmentation (181.mcf analog) */

struct Arc {
	int from;
	int to;
	int cap;
	int cost;
	int flow;
};

struct Arc arcs[500];
int NARCS;
int NNODES;
long dist2[130];
int prevArc[130];
int inQueue[130];
int queue[4000];

void buildNet() {
	int i;
	NNODES = 128;
	NARCS = 0;
	srand(31337);
	/* layered network: source 0 -> layers -> sink 127 */
	for (i = 0; i < 400; i++) {
		int a = (int)(rand() % 127u);
		int b = a + 1 + (int)(rand() % 8u);
		if (b > 127) b = 127;
		arcs[NARCS].from = a;
		arcs[NARCS].to = b;
		arcs[NARCS].cap = 1 + (int)(rand() % 20u);
		arcs[NARCS].cost = 1 + (int)(rand() % 30u);
		arcs[NARCS].flow = 0;
		NARCS++;
	}
}

/* Bellman-Ford shortest path from 0 to 127 over residual arcs */
int shortestPath() {
	int i;
	for (i = 0; i < NNODES; i++) { dist2[i] = 1000000000; prevArc[i] = -1; inQueue[i] = 0; }
	dist2[0] = 0;
	int head = 0, tail = 0;
	queue[tail] = 0; tail++;
	inQueue[0] = 1;
	while (head < tail) {
		int u = queue[head]; head++;
		if (head >= 4000) break;
		inQueue[u] = 0;
		int a;
		for (a = 0; a < NARCS; a++) {
			/* forward residual */
			if (arcs[a].from == u && arcs[a].flow < arcs[a].cap) {
				int v = arcs[a].to;
				long nd = dist2[u] + (long)arcs[a].cost;
				if (nd < dist2[v]) {
					dist2[v] = nd; prevArc[v] = a;
					if (!inQueue[v] && tail < 4000) { queue[tail] = v; tail++; inQueue[v] = 1; }
				}
			}
			/* backward residual */
			if (arcs[a].to == u && arcs[a].flow > 0) {
				int v = arcs[a].from;
				long nd = dist2[u] - (long)arcs[a].cost;
				if (nd < dist2[v]) {
					dist2[v] = nd; prevArc[v] = a + 10000;
					if (!inQueue[v] && tail < 4000) { queue[tail] = v; tail++; inQueue[v] = 1; }
				}
			}
		}
	}
	return dist2[127] < 1000000000;
}

int main() {
	buildNet();
	long totalCost = 0;
	int totalFlow = 0;
	int iter;
	for (iter = 0; iter < 16; iter++) {
		if (!shortestPath()) break;
		/* find bottleneck along the path */
		int v = 127;
		int bottleneck = 1000000;
		while (v != 0) {
			int a = prevArc[v];
			if (a < 0) break;
			if (a >= 10000) {
				int ar = a - 10000;
				if (arcs[ar].flow < bottleneck) bottleneck = arcs[ar].flow;
				v = arcs[ar].to;
			} else {
				int room = arcs[a].cap - arcs[a].flow;
				if (room < bottleneck) bottleneck = room;
				v = arcs[a].from;
			}
		}
		/* augment */
		v = 127;
		while (v != 0) {
			int a = prevArc[v];
			if (a < 0) break;
			if (a >= 10000) {
				int ar = a - 10000;
				arcs[ar].flow -= bottleneck;
				totalCost -= (long)bottleneck * (long)arcs[ar].cost;
				v = arcs[ar].to;
			} else {
				arcs[a].flow += bottleneck;
				totalCost += (long)bottleneck * (long)arcs[a].cost;
				v = arcs[a].from;
			}
		}
		totalFlow += bottleneck;
	}
	print_int(totalFlow); print_char(' ');
	print_int(totalCost); print_nl();
	return 0;
}
`

// srcBzip2 mirrors 256.bzip2: block transforms — move-to-front coding and
// run-length encoding over generated data, with a verification decode.
const srcBzip2 = `
/* bzip2: MTF + RLE block coder with round-trip check (256.bzip2 analog) */

unsigned char block[4096];
unsigned char mtfOut[4096];
unsigned char rleOut[8192];
unsigned char decoded[4096];
int blockLen;

void makeBlock() {
	int i;
	srand(2001);
	blockLen = 4096;
	/* skewed distribution with runs, like text */
	unsigned char c = 'a';
	for (i = 0; i < blockLen; i++) {
		if ((int)(rand() % 5u) == 0) c = (unsigned char)('a' + (int)(rand() % 16u));
		block[i] = c;
	}
}

int mtfEncode() {
	unsigned char table[256];
	int i, j;
	for (i = 0; i < 256; i++) table[i] = (unsigned char)i;
	for (i = 0; i < blockLen; i++) {
		unsigned char c = block[i];
		/* find rank */
		j = 0;
		while (table[j] != c) j++;
		mtfOut[i] = (unsigned char)j;
		/* move to front */
		while (j > 0) { table[j] = table[j-1]; j--; }
		table[0] = c;
	}
	return blockLen;
}

int rleEncode() {
	int i = 0, o = 0;
	while (i < blockLen) {
		unsigned char c = mtfOut[i];
		int run = 1;
		while (i + run < blockLen && mtfOut[i + run] == c && run < 255) run++;
		if (run >= 4) {
			rleOut[o] = 255; o++;
			rleOut[o] = (unsigned char)run; o++;
			rleOut[o] = c; o++;
			i += run;
		} else {
			rleOut[o] = c; o++;
			i++;
		}
	}
	return o;
}

int rleDecode(int n) {
	int i = 0, o = 0;
	while (i < n) {
		if (rleOut[i] == 255) {
			int run = (int)rleOut[i+1];
			unsigned char c = rleOut[i+2];
			int k;
			for (k = 0; k < run; k++) { decoded[o] = c; o++; }
			i += 3;
		} else {
			decoded[o] = rleOut[i]; o++;
			i++;
		}
	}
	return o;
}

void mtfDecode(int n) {
	unsigned char table[256];
	int i, j;
	for (i = 0; i < 256; i++) table[i] = (unsigned char)i;
	for (i = 0; i < n; i++) {
		j = (int)decoded[i];
		unsigned char c = table[j];
		while (j > 0) { table[j] = table[j-1]; j--; }
		table[0] = c;
		decoded[i] = c;
	}
}

int main() {
	int pass;
	int compressed = 0;
	long check = 0;
	for (pass = 0; pass < 6; pass++) {
		makeBlock();
		mtfEncode();
		compressed = rleEncode();
		int n = rleDecode(compressed);
		mtfDecode(n);
		int i, ok = 1;
		if (n != blockLen) ok = 0;
		for (i = 0; i < blockLen && ok; i++)
			if (decoded[i] != block[i]) ok = 0;
		if (!ok) { print_str("MISMATCH"); print_nl(); return 1; }
		check = check * 17 + (long)compressed;
	}
	print_int(blockLen); print_char(' ');
	print_int(compressed); print_char(' ');
	print_int(check % 1000000); print_nl();
	return 0;
}
`

// srcGzip mirrors 164.gzip: LZ77 with hash-chain match finding, plus a
// round-trip decode.
const srcGzip = `
/* gzip: LZ77 with hash chains and round-trip (164.gzip analog) */

unsigned char input[8192];
int tokens[6000][3];   /* (dist, len, literal) triples */
unsigned char output[16384];
int head[1024];
int prev[8192];
int inputLen;

char words[] = "the cat sat on the mat and the dog ran to the cat ";

void makeInput() {
	int i;
	srand(5150);
	inputLen = 8192;
	int wl = 0;
	while (words[wl] != '\0') wl++;
	for (i = 0; i < inputLen; i++) {
		if ((int)(rand() % 20u) == 0)
			input[i] = (unsigned char)('a' + (int)(rand() % 26u));
		else
			input[i] = (unsigned char)words[i % wl];
	}
}

int hash3(int i) {
	int h = ((int)input[i] * 33 + (int)input[i+1]) * 33 + (int)input[i+2];
	return h & 1023;
}

int compress() {
	int i;
	int nt = 0;
	for (i = 0; i < 1024; i++) head[i] = -1;
	i = 0;
	while (i < inputLen && nt < 6000) {
		int bestLen = 0, bestDist = 0;
		if (i + 3 <= inputLen) {
			int h = hash3(i);
			int cand = head[h];
			int chain = 0;
			while (cand >= 0 && chain < 16) {
				int l = 0;
				while (i + l < inputLen && l < 64 && input[cand + l] == input[i + l]) l++;
				if (l > bestLen) { bestLen = l; bestDist = i - cand; }
				cand = prev[cand];
				chain++;
			}
			prev[i] = head[h];
			head[h] = i;
		}
		if (bestLen >= 3) {
			tokens[nt][0] = bestDist;
			tokens[nt][1] = bestLen;
			tokens[nt][2] = -1;
			nt++;
			/* insert skipped positions into the hash chains */
			int k;
			for (k = 1; k < bestLen && i + k + 3 <= inputLen; k++) {
				int h2 = hash3(i + k);
				prev[i + k] = head[h2];
				head[h2] = i + k;
			}
			i += bestLen;
		} else {
			tokens[nt][0] = 0;
			tokens[nt][1] = 0;
			tokens[nt][2] = (int)input[i];
			nt++;
			i++;
		}
	}
	return nt;
}

int decompress(int nt) {
	int o = 0, t;
	for (t = 0; t < nt; t++) {
		if (tokens[t][2] >= 0) {
			output[o] = (unsigned char)tokens[t][2]; o++;
		} else {
			int d = tokens[t][0], l = tokens[t][1];
			int k;
			for (k = 0; k < l; k++) { output[o] = output[o - d]; o++; }
		}
	}
	return o;
}

int main() {
	makeInput();
	int nt = compress();
	int n = decompress(nt);
	int i, ok = 1;
	if (n != inputLen) ok = 0;
	for (i = 0; i < inputLen && ok; i++)
		if (output[i] != input[i]) ok = 0;
	if (!ok) { print_str("MISMATCH"); print_nl(); return 1; }
	/* ratio proxy: tokens vs bytes */
	print_int(inputLen); print_char(' ');
	print_int(nt); print_char(' ');
	print_int((inputLen * 100) / (nt * 3)); print_nl();
	return 0;
}
`

// srcParser mirrors 197.parser: dictionary lookup and sentence analysis
// with a linking grammar-like matcher.
const srcParser = `
/* parser: dictionary-driven sentence analysis (197.parser analog) */

struct DictEnt {
	char word[12];
	int class;           /* 0=noun 1=verb 2=det 3=adj 4=prep */
	struct DictEnt *next;
};

struct DictEnt *dict[64];

char text[] =
	"the cat saw a dog . the big dog ran to the park . "
	"a man with a hat saw the small cat . the cat ran . "
	"the man saw a park . a dog with the man ran to a cat . "
	"the small man with a big hat saw a small dog . unknownword . ";

int hashWord(char *w, int n) {
	int h = 0, i;
	for (i = 0; i < n; i++) h = h * 31 + (int)w[i];
	if (h < 0) h = -h;
	return h % 64;
}

void define(char *w, int class) {
	int n = 0;
	while (w[n] != '\0') n++;
	struct DictEnt *e = (struct DictEnt*)malloc(sizeof(struct DictEnt));
	int i;
	for (i = 0; i < n && i < 11; i++) e->word[i] = w[i];
	e->word[i] = '\0';
	e->class = class;
	int h = hashWord(w, n);
	e->next = dict[h];
	dict[h] = e;
}

int lookup(char *w, int n) {
	int h = hashWord(w, n);
	struct DictEnt *e = dict[h];
	while (e != 0) {
		int i = 0;
		while (i < n && e->word[i] == w[i]) i++;
		if (i == n && e->word[i] == '\0') return e->class;
		e = e->next;
	}
	return -1;
}

void buildDict() {
	define("the", 2); define("a", 2);
	define("cat", 0); define("dog", 0); define("man", 0);
	define("park", 0); define("hat", 0);
	define("saw", 1); define("ran", 1);
	define("big", 3); define("small", 3);
	define("to", 4); define("with", 4);
}

/* grammar: S -> NP VP; NP -> det adj* noun (PP)?; PP -> prep NP; VP -> verb (NP|PP)? */
int wordsClass[32];
int nWords;

int parseNP(int *p);

int parsePP(int *p) {
	if (*p < nWords && wordsClass[*p] == 4) {
		*p = *p + 1;
		return parseNP(p);
	}
	return 0;
}

int parseNP(int *p) {
	if (*p >= nWords || wordsClass[*p] != 2) return 0;
	*p = *p + 1;
	while (*p < nWords && wordsClass[*p] == 3) *p = *p + 1;
	if (*p >= nWords || wordsClass[*p] != 0) return 0;
	*p = *p + 1;
	if (*p < nWords && wordsClass[*p] == 4) {
		int save = *p;
		if (!parsePP(p)) *p = save;
	}
	return 1;
}

int parseS() {
	int p = 0;
	if (!parseNP(&p)) return 0;
	if (p >= nWords || wordsClass[p] != 1) return 0;
	p++;
	if (p < nWords) {
		int save = p;
		if (wordsClass[p] == 2) {
			if (!parseNP(&p)) p = save;
		} else if (wordsClass[p] == 4) {
			if (!parsePP(&p)) p = save;
		}
	}
	return p == nWords;
}

int main() {
	buildDict();
	int i = 0;
	int sentences = 0, accepted = 0, unknown = 0;
	int rounds;
	for (rounds = 0; rounds < 50; rounds++) {
		i = 0;
		nWords = 0;
		while (text[i] != '\0') {
			while (text[i] == ' ') i++;
			if (text[i] == '\0') break;
			if (text[i] == '.') {
				sentences++;
				if (nWords > 0 && parseS()) accepted++;
				nWords = 0;
				i++;
				continue;
			}
			int start = i;
			while (text[i] != ' ' && text[i] != '\0') i++;
			int cls = lookup(&text[start], i - start);
			if (cls < 0) { unknown++; cls = 0; }
			if (nWords < 32) { wordsClass[nWords] = cls; nWords++; }
		}
	}
	print_int(sentences); print_char(' ');
	print_int(accepted); print_char(' ');
	print_int(unknown); print_nl();
	return 0;
}
`
