package workloads

import (
	"testing"
)

// goldenOutputs pins each workload's exact output (captured from the
// reference interpreter and verified identical on both simulated
// processors by TestWorkloadsCrossEngine). A change here means program
// semantics drifted somewhere in the stack.
var goldenOutputs = map[string]string{
	"anagram": "85 30 6 765442\n",
	"ks":      "788 527 261\n",
	"ft":      "2969 7758\n",
	"yacr2":   "20 0 1254\n",
	"bc":      "4969273 2636800 3517\n",
	"art":     "16 2 88\n15.6163\n",
	"equake":  "45.1752\n2.4718\n3580\n",
	"mcf":     "17 4223\n",
	"bzip2":   "4096 2357 765486\n",
	"gzip":    "8192 893 305\n",
	"parser":  "400 350 50\n",
	"ammp":    "-382.7685\n7.7629\n",
	"vpr":     "1712 1101 152 872\n",
	"twolf":   "4921 3761 132\n",
	"crafty":  "5 10 176054 739113\n",
	"vortex":  "1714 474 303 108 18958\n",
	"gap":     "66 1053\n15 249\n24 440\n",
}

func TestWorkloadGoldenOutputs(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			want, ok := goldenOutputs[w.Name]
			if !ok {
				t.Fatalf("no golden output recorded for %s", w.Name)
			}
			m, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			_, got := interpRun(t, m)
			if got != want {
				t.Errorf("output drifted:\n got: %q\nwant: %q", got, want)
			}
		})
	}
}
