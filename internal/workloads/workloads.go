// Package workloads provides the benchmark suite used to regenerate the
// paper's Table 2. Each workload is a MiniC program mirroring the
// algorithmic character of one paper benchmark (PtrDist or SPEC CINT2000)
// at reduced scale: pointer-intensive data structures, hashing, state
// machines, numeric loops, annealing, search, compression — the code
// shapes that drive the size/expansion/translate-time metrics (DESIGN.md,
// substitution table).
package workloads

import (
	"fmt"
	"strings"

	"llva/internal/core"
	"llva/internal/minic"
	"llva/internal/passes"
)

// Workload is one benchmark program.
type Workload struct {
	// Name is the short name used by tools and benches.
	Name string
	// PaperName is the Table 2 row this workload mirrors.
	PaperName string
	// Source is the MiniC program text.
	Source string
	// Kind describes the dominant code shape (for documentation).
	Kind string
}

// LOC counts non-blank source lines (the paper's column 2 analog).
func (w *Workload) LOC() int {
	n := 0
	for _, line := range strings.Split(w.Source, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// Compile builds the workload's LLVA module and verifies it.
func (w *Workload) Compile() (*core.Module, error) {
	m, err := minic.Compile(w.Name+".c", w.Source)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	if err := core.Verify(m); err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return m, nil
}

// CompileOptimized builds the module and runs the link-time O2 pipeline,
// matching the paper's methodology ("the same LLVA optimizations were
// applied in both cases").
func (w *Workload) CompileOptimized() (*core.Module, error) {
	m, err := w.Compile()
	if err != nil {
		return nil, err
	}
	if _, err := passes.Optimize(m); err != nil {
		return nil, fmt.Errorf("workload %s: optimize: %w", w.Name, err)
	}
	if err := core.Verify(m); err != nil {
		return nil, fmt.Errorf("workload %s: verify after O2: %w", w.Name, err)
	}
	return m, nil
}

// All returns the suite in the paper's Table 2 order.
func All() []*Workload {
	return []*Workload{
		{Name: "anagram", PaperName: "ptrdist-anagram", Source: srcAnagram, Kind: "hashing, pointer chasing"},
		{Name: "ks", PaperName: "ptrdist-ks", Source: srcKS, Kind: "graph partitioning"},
		{Name: "ft", PaperName: "ptrdist-ft", Source: srcFT, Kind: "minimum spanning tree"},
		{Name: "yacr2", PaperName: "ptrdist-yacr2", Source: srcYacr2, Kind: "channel routing"},
		{Name: "bc", PaperName: "ptrdist-bc", Source: srcBC, Kind: "expression interpreter"},
		{Name: "art", PaperName: "179.art", Source: srcArt, Kind: "neural network (FP)"},
		{Name: "equake", PaperName: "183.equake", Source: srcEquake, Kind: "sparse FP kernel"},
		{Name: "mcf", PaperName: "181.mcf", Source: srcMCF, Kind: "min-cost flow"},
		{Name: "bzip2", PaperName: "256.bzip2", Source: srcBzip2, Kind: "block compression"},
		{Name: "gzip", PaperName: "164.gzip", Source: srcGzip, Kind: "LZ77 compression"},
		{Name: "parser", PaperName: "197.parser", Source: srcParser, Kind: "dictionary parsing"},
		{Name: "ammp", PaperName: "188.ammp", Source: srcAmmp, Kind: "molecular dynamics (FP)"},
		{Name: "vpr", PaperName: "175.vpr", Source: srcVPR, Kind: "annealing placement"},
		{Name: "twolf", PaperName: "300.twolf", Source: srcTwolf, Kind: "annealing (cells+nets)"},
		{Name: "crafty", PaperName: "186.crafty", Source: srcCrafty, Kind: "alpha-beta search, bitboards"},
		{Name: "vortex", PaperName: "255.vortex", Source: srcVortex, Kind: "object database"},
		{Name: "gap", PaperName: "254.gap", Source: srcGap, Kind: "bignum arithmetic"},
	}
}

// ByName returns the named workload, or nil.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}
