package codegen_test

import (
	"bytes"
	"testing"

	"llva/internal/asm"
	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/machine"
	"llva/internal/mem"
	"llva/internal/prof"
	"llva/internal/rt"
	"llva/internal/target"
	"llva/internal/telemetry"
)

// tier2Src is a branchy hot loop with a small out-of-line callee: the
// shape tier 2 exists for. The loop's taken-branch path and the call are
// both hot; tier-1 code pays a taken branch per iteration plus call/ret
// overhead, which superblock layout and hot inlining remove.
const tier2Src = `
long %sq(long %x) {
entry:
    %a = mul long %x, %x
    %b = add long %a, 1
    ret long %b
}

long %f(long %n, long %unused) {
entry:
    br label %loop
loop:
    %i0 = phi long [ 0, %entry ], [ %i1, %latch ]
    %s0 = phi long [ 0, %entry ], [ %s1, %latch ]
    %r = rem long %i0, 3 !noexc
    %z = seteq long %r, 0
    br bool %z, label %skip, label %hot
hot:
    %q = call long %sq(long %i0)
    %t = add long %s0, %q
    br label %latch
skip:
    br label %latch
latch:
    %s1 = phi long [ %t, %hot ], [ %s0, %skip ]
    %i1 = add long %i0, 1
    %c = setlt long %i1, %n
    br bool %c, label %loop, label %done
done:
    ret long %s1
}
`

func runTier2Obj(t *testing.T, d *target.Desc, m *core.Module, obj *codegen.NativeObject,
	p *prof.Profiler, args ...uint64) (uint64, uint64, string) {
	t.Helper()
	var out bytes.Buffer
	env := rt.NewEnv(mem.New(0, true), &out)
	mc, err := machine.New(d, m, env)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		mc.SetProfiler(p)
	}
	if err := mc.LoadObject(obj); err != nil {
		t.Fatal(err)
	}
	got, err := mc.Run("f", args...)
	if err != nil {
		t.Fatal(err)
	}
	return got, mc.Stats.Cycles, out.String()
}

// TestTier2SuperblockSpeedup checks the whole tier-2 loop on both
// targets: profile a tier-1 run, re-translate at tier 2, and require (a)
// identical result and output, (b) strictly fewer simulated cycles, and
// (c) the transformation telemetry to show superblocks formed and the
// hot callee inlined.
func TestTier2SuperblockSpeedup(t *testing.T) {
	m, err := asm.Parse("t2", tier2Src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		t.Run(d.Name, func(t *testing.T) {
			tr, err := codegen.New(d, m)
			if err != nil {
				t.Fatal(err)
			}
			reg := telemetry.New()
			tr.SetTelemetry(reg)
			obj1, err := tr.TranslateModule()
			if err != nil {
				t.Fatal(err)
			}
			p := prof.NewProfiler(25)
			want, cycles1, wantOut := runTier2Obj(t, d, m, obj1, p, n, 0)

			tr2 := tr.WithTier2(p.Artifact(m.Name, d.Name))
			if tr2.Tier() != 2 || tr.Tier() != 1 {
				t.Fatalf("tier knob: derived=%d base=%d", tr2.Tier(), tr.Tier())
			}
			obj2, err := tr2.TranslateModule()
			if err != nil {
				t.Fatal(err)
			}
			got, cycles2, out := runTier2Obj(t, d, m, obj2, nil, n, 0)
			if got != want || out != wantOut {
				t.Fatalf("tier2 differs: got %#x want %#x (out %q vs %q)", got, want, out, wantOut)
			}
			if cycles2 >= cycles1 {
				t.Errorf("tier2 not faster: %d cycles vs tier1 %d", cycles2, cycles1)
			}
			if v := reg.CounterValue(codegen.MetricTier2Funcs); v == 0 {
				t.Errorf("no functions took the tier-2 path")
			}
			if v := reg.CounterValue(codegen.MetricSuperblocks); v == 0 {
				t.Errorf("no superblocks formed")
			}
			// %sq is hot, tiny and exception-free: it must be inlined, so
			// tier-2 %f must grow beyond its source instruction count.
			f1, f2 := obj1.Func("f"), obj2.Func("f")
			if f2.NumInstrs <= f1.NumInstrs {
				t.Errorf("tier2 %%f did not grow (%d vs %d instrs): hot inline missing?",
					f2.NumInstrs, f1.NumInstrs)
			}
			t.Logf("%s: cycles %d -> %d (%.1f%%), instrs %d -> %d", d.Name,
				cycles1, cycles2, 100*float64(int64(cycles1)-int64(cycles2))/float64(cycles1),
				f1.NumInstrs, f2.NumInstrs)
		})
	}
}
