package codegen_test

import (
	"fmt"
	"strings"
	"testing"

	"llva/internal/asm"
	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/machine"
	"llva/internal/mem"
	"llva/internal/minic"
	"llva/internal/rt"
	"llva/internal/target"
)

func compileC(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := minic.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func runBoth(t *testing.T, m *core.Module, fn string, args ...uint64) map[string]uint64 {
	t.Helper()
	results := map[string]uint64{}
	var out strings.Builder
	ip, err := interp.New(m, &out)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ip.Run(fn, args...)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	results["interp"] = v
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		tr, err := codegen.New(d, m)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := tr.TranslateModule()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		env := rt.NewEnv(mem.New(0, true), &out)
		mc, err := machine.New(d, m, env)
		if err != nil {
			t.Fatal(err)
		}
		if err := mc.LoadObject(obj); err != nil {
			t.Fatal(err)
		}
		got, err := mc.Run(fn, args...)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		results[d.Name] = got
	}
	return results
}

func assertAgree(t *testing.T, results map[string]uint64) {
	t.Helper()
	want := results["interp"]
	for k, v := range results {
		if v != want {
			t.Errorf("%s = %#x, interp = %#x", k, v, want)
		}
	}
}

// TestHugeFrame forces frame displacements far beyond vsparc's disp9
// range (a 4 KiB local array plus dozens of locals), exercising the
// assembler-temporary address synthesis in spills and prologue.
func TestHugeFrame(t *testing.T) {
	var b strings.Builder
	b.WriteString("long %f(long %x) {\nentry:\n")
	b.WriteString("    %buf = alloca [512 x long]\n")
	// Chain of values long enough to spill under linear scan too.
	b.WriteString("    %v0 = add long %x, 1\n")
	for i := 1; i < 40; i++ {
		fmt.Fprintf(&b, "    %%v%d = add long %%v%d, %d\n", i, i-1, i)
	}
	// Touch the big buffer start and end.
	b.WriteString("    %p0 = getelementptr [512 x long]* %buf, long 0, long 0\n")
	b.WriteString("    store long %v39, long* %p0\n")
	b.WriteString("    %p511 = getelementptr [512 x long]* %buf, long 0, long 511\n")
	b.WriteString("    store long %v20, long* %p511\n")
	b.WriteString("    %a = load long* %p0\n")
	b.WriteString("    %bv = load long* %p511\n")
	// Keep every chain value live across the loads: sum them all.
	b.WriteString("    %s0 = add long %a, %bv\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "    %%s%d = add long %%s%d, %%v%d\n", i+1, i, i)
	}
	b.WriteString("    ret long %s40\n}\n")

	m, err := asm.Parse("huge", b.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	assertAgree(t, runBoth(t, m, "f", 7))
}

// TestManyArguments exceeds vsparc's six argument registers and vx86's
// comfort, forcing stack-passed arguments on both conventions.
func TestManyArguments(t *testing.T) {
	m := compileC(t, `
long f10(long a, long b, long c, long d, long e, long f, long g, long h, long i, long j) {
	return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h + 9*i + 10*j;
}
long wrap(long x) {
	return f10(x, x+1, x+2, x+3, x+4, x+5, x+6, x+7, x+8, x+9);
}`)
	assertAgree(t, runBoth(t, m, "wrap", 100))
}

// TestMixedFPIntArgs interleaves FP and integer parameters (separate
// register files on vsparc).
func TestMixedFPIntArgs(t *testing.T) {
	m := compileC(t, `
double mix(long a, double x, long b, double y, long c, double z) {
	return (double)(a + b + c) * x + y - z;
}
long driver(long s) {
	double r = mix(s, 2.0, s+1, 3.5, s+2, 0.5);
	return (long)r;
}`)
	assertAgree(t, runBoth(t, m, "driver", 10))
}

// TestFallthroughElision checks that an unconditional jump to the next
// block is removed during layout.
func TestFallthroughElision(t *testing.T) {
	src := `
long %f(long %x) {
entry:
    %c = setgt long %x, 0
    br bool %c, label %a, label %b
a:
    br label %b
b:
    %p = phi long [ 1, %entry ], [ 2, %a ]
    ret long %p
}
`
	m, err := asm.Parse("ft", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		tr, err := codegen.New(d, m)
		if err != nil {
			t.Fatal(err)
		}
		nf, err := tr.TranslateFunction(m.Function("f"))
		if err != nil {
			t.Fatal(err)
		}
		// Count decoded jumps: with elision, block a's jump to b (next in
		// layout) must be gone; only the conditional's fallthrough-jump
		// structure remains.
		jmps := 0
		off := 0
		for off < len(nf.Code) {
			in, n, err := d.Decode(nf.Code[off:])
			if err != nil {
				t.Fatal(err)
			}
			if in.Op == target.MJmp {
				jmps++
			}
			off += n
		}
		if jmps > 1 {
			t.Errorf("%s: %d unconditional jumps survive, expected at most 1 (fallthrough elision)", d.Name, jmps)
		}
	}
	assertAgree(t, runBoth(t, m, "f", 5))
	assertAgree(t, runBoth(t, m, "f", ^uint64(3)))
}

// TestRejectWrongConfiguration: the translator must refuse object code
// whose configuration flags don't match the implementation (Section 3.2).
func TestRejectWrongConfiguration(t *testing.T) {
	src := `
target pointersize = 32
int %f() {
entry:
    ret int 0
}
`
	m, err := asm.Parse("cfg", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codegen.New(target.VX86, m); err == nil {
		t.Error("translator accepted 32-bit object code for a 64-bit implementation")
	}
	src2 := strings.Replace(src, "pointersize = 32", "endian = big", 1)
	m2, err := asm.Parse("cfg2", src2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codegen.New(target.VSPARC, m2); err == nil {
		t.Error("translator accepted big-endian object code")
	}
}

// TestDynamicAlloca exercises the SP-adjusting alloca path.
func TestDynamicAlloca(t *testing.T) {
	src := `
long %f(uint %n) {
entry:
    %arr = alloca long, uint %n
    br label %fill
fill:
    %i = phi long [ 0, %entry ], [ %i2, %fill ]
    %p = getelementptr long* %arr, long %i
    store long %i, long* %p
    %i2 = add long %i, 1
    %nl = cast uint %n to long
    %more = setlt long %i2, %nl
    br bool %more, label %fill, label %sum
sum:
    %j = phi long [ 0, %fill ], [ %j2, %sum ]
    %acc = phi long [ 0, %fill ], [ %acc2, %sum ]
    %q = getelementptr long* %arr, long %j
    %v = load long* %q
    %acc2 = add long %acc, %v
    %j2 = add long %j, 1
    %nl2 = cast uint %n to long
    %more2 = setlt long %j2, %nl2
    br bool %more2, label %sum, label %done
done:
    ret long %acc2
}
`
	m, err := asm.Parse("dyn", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, m, "f", 50)
	assertAgree(t, res)
	if int64(res["interp"]) != 1225 {
		t.Errorf("f(50) = %d, want 1225", int64(res["interp"]))
	}
}

// TestTranslateEveryOpcode compiles a module touching all 28 opcodes and
// confirms both targets translate with no emulation fallbacks (the
// paper's "all LLVA instructions are translated directly to native
// machine code - no emulation routines are used at all").
func TestTranslateEveryOpcode(t *testing.T) {
	src := `
declare void %print_int(long %v)

%glob = global long 5

long %callee(long %x) {
entry:
    ret long %x
}

void %thrower() {
entry:
    unwind
}

long %all(long %a, long %b) {
entry:
    %p = alloca long
    store long %a, long* %p
    %ld = load long* %p
    %add = add long %a, %b
    %sub = sub long %add, %b
    %mul = mul long %sub, 3
    %div = div long %mul, 2 !noexc
    %rem = rem long %div, 1000 !noexc
    %and = and long %rem, 255
    %or = or long %and, 16
    %xor = xor long %or, 5
    %shl = shl long %xor, ubyte 2
    %shr = shr long %shl, ubyte 1
    %eq = seteq long %shr, %a
    %ne = setne long %shr, %a
    %lt = setlt long %shr, %a
    %gt = setgt long %shr, %a
    %le = setle long %shr, %a
    %ge = setge long %shr, %a
    %c1 = cast bool %eq to long
    %c2 = cast bool %ne to long
    %c3 = cast bool %lt to long
    %c4 = cast bool %gt to long
    %c5 = cast bool %le to long
    %c6 = cast bool %ge to long
    %g = getelementptr long* %glob, long 0
    %gv = load long* %g
    %called = call long %callee(long %shr)
    invoke void %thrower() to label %never unwind label %handled
never:
    ret long 0
handled:
    br label %merge
merge:
    %m = phi long [ %called, %handled ]
    %sum1 = add long %m, %c1
    %sum2 = add long %sum1, %c2
    %sum3 = add long %sum2, %c3
    %sum4 = add long %sum3, %c4
    %sum5 = add long %sum4, %c5
    %sum6 = add long %sum5, %c6
    %sum7 = add long %sum6, %gv
    %sum8 = add long %sum7, %ld
    mbr long %sum8, label %other [ long 0, label %zero ]
zero:
    ret long -1
other:
    ret long %sum8
}
`
	m, err := asm.Parse("all", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	assertAgree(t, runBoth(t, m, "all", 41, 17))
}
