package codegen

import (
	"fmt"
	"math"

	"llva/internal/core"
	"llva/internal/target"
)

// selector lowers one function's LLVA instructions to machine IR over an
// infinite virtual register file; register allocation then maps virtual
// registers onto the target.
type selector struct {
	t    *Translator
	desc *target.Desc
	f    *core.Function
	lay  core.Layout

	code       []target.MInstr
	blocks     []*core.BasicBlock
	blockIdx   map[*core.BasicBlock]int
	blockStart []int // block index -> first instruction index (epilogue last)

	vreg  map[core.Value]target.Reg
	vFP   []bool // virtual register class, indexed by vreg - VRegBase
	nextV target.Reg

	phiCarrier map[*core.Instruction]target.Reg
	fusedCmp   map[*core.Instruction]bool

	// frame state
	allocaOff    map[*core.Instruction]int32 // positive offset below FP
	saveArea     int32                       // reserved register-save area below FP
	allocaBytes  int32
	spillBytes   int32 // set by the register allocator
	savedRegs    []target.Reg
	hasCalls     bool
	hasInvoke    bool
	maxStackArgs int

	// spill traffic emitted by the allocator's rewrite (telemetry)
	nSpillLoads  int
	nSpillStores int

	// blockHeat is per-block profile heat (indexed like blockStart), set
	// only on the tier-2 path. It weighs the allocator's live intervals
	// and prices emitted spill traffic (spillCost); evictByWeight switches
	// the linear scan from furthest-end to lowest-heat-weight eviction so
	// hot-loop values keep registers (allocBest tries both and keeps the
	// cheaper allocation).
	blockHeat     []uint64
	evictByWeight bool
	spillCost     uint64
}

func newSelector(t *Translator, f *core.Function) *selector {
	s := &selector{
		t:          t,
		desc:       t.desc,
		f:          f,
		lay:        t.lay,
		blockIdx:   make(map[*core.BasicBlock]int),
		vreg:       make(map[core.Value]target.Reg),
		nextV:      target.VRegBase,
		phiCarrier: make(map[*core.Instruction]target.Reg),
		fusedCmp:   make(map[*core.Instruction]bool),
		allocaOff:  make(map[*core.Instruction]int32),
	}
	if !t.desc.StackArgs {
		// vsparc: fixed register-save area at the top of the frame:
		// return address, caller's FP, and up to 33 callee-saved slots
		// (17 integer + 15 FP allocatable registers).
		s.saveArea = 280
	} else {
		// vx86: the return address and caller's FP live above FP (pushed
		// by call and the prologue), so the save area below FP holds only
		// callee-saved registers. It is sized for the full pool because
		// alloca offsets are assigned during selection, before allocation
		// knows which registers the function uses.
		s.saveArea = int32(8 * (len(t.desc.Allocatable) + len(t.desc.FPAllocatable)))
	}
	return s
}

func (s *selector) newVReg(fp bool) target.Reg {
	r := s.nextV
	s.nextV++
	s.vFP = append(s.vFP, fp)
	return r
}

func (s *selector) isFPReg(r target.Reg) bool {
	if r.IsVirtual() {
		return s.vFP[r-target.VRegBase]
	}
	return r.IsFP()
}

func isFPType(t *core.Type) bool { return t.IsFloat() }

func (s *selector) emit(m target.MInstr) int {
	s.code = append(s.code, m)
	return len(s.code) - 1
}

// emitALU emits rd <- rs1 op rs2. The machine IR is uniformly
// three-address; on vx86 the spill rewriter legalizes it into two-address
// form with memory operands.
func (s *selector) emitALU(alu target.ALUOp, rd, rs1, rs2 target.Reg,
	size uint8, signed, fp bool) {
	s.emit(target.MInstr{Op: target.MALU, Alu: alu, Rd: rd, Rs1: rs1,
		Rs2: rs2, Size: size, Signed: signed, FP: fp})
}

// sizeOf returns the memory width of a first-class type.
func (s *selector) sizeOf(t *core.Type) uint8 {
	return uint8(s.lay.Size(t))
}

func (s *selector) run() {
	f := s.f
	s.blocks = f.Blocks
	for i, bb := range f.Blocks {
		s.blockIdx[bb] = i
	}
	// Pre-assign virtual registers to every parameter and result-bearing
	// instruction, so cross-block uses resolve regardless of layout order.
	for _, p := range f.Params {
		s.vreg[p] = s.newVReg(isFPType(p.Type()))
	}
	for _, bb := range f.Blocks {
		for _, in := range bb.Instructions() {
			if in.HasResult() {
				s.vreg[in] = s.newVReg(isFPType(in.Type()))
			}
			if in.Op() == core.OpPhi {
				s.phiCarrier[in] = s.newVReg(isFPType(in.Type()))
			}
			if in.Op() == core.OpCall || in.Op() == core.OpInvoke {
				s.hasCalls = true
			}
			if in.Op() == core.OpInvoke {
				s.hasInvoke = true
			}
		}
	}
	// Preallocate all fixed-size allocas in the frame (Section 3.2).
	for _, bb := range f.Blocks {
		for _, in := range bb.Instructions() {
			if in.Op() == core.OpAlloca && in.NumOperands() == 0 {
				size := int32(s.lay.Size(in.Allocated))
				align := int32(s.lay.Align(in.Allocated))
				s.allocaBytes = (s.allocaBytes + size + align - 1) &^ (align - 1)
				if s.allocaBytes%8 != 0 {
					s.allocaBytes = (s.allocaBytes + 7) &^ 7
				}
				s.allocaOff[in] = s.saveArea + s.allocaBytes
			}
		}
	}
	// Identify comparisons fusable into compare-and-branch (vx86).
	if s.desc.HasFlags {
		for _, bb := range f.Blocks {
			term := bb.Terminator()
			if term == nil || term.Op() != core.OpBr || term.NumBlocks() != 2 {
				continue
			}
			cmp, ok := term.Operand(0).(*core.Instruction)
			if ok && cmp.Op().IsComparison() && cmp.Parent() == bb && cmp.NumUses() == 1 {
				s.fusedCmp[cmp] = true
			}
		}
	}

	s.blockStart = make([]int, len(f.Blocks)+1)
	for bi, bb := range f.Blocks {
		s.blockStart[bi] = len(s.code)
		if bi == 0 {
			s.emitParamMoves()
		}
		// Phi headers: copy carriers into phi registers.
		for _, phi := range bb.Phis() {
			s.emit(target.MInstr{Op: target.MMovRR, Rd: s.vreg[phi],
				Rs1: s.phiCarrier[phi], FP: isFPType(phi.Type())})
		}
		for _, in := range bb.Instructions() {
			s.selectInstr(bb, in)
		}
	}
	s.blockStart[len(f.Blocks)] = len(s.code) // epilogue label
}

// emitParamMoves copies incoming arguments into their virtual registers.
func (s *selector) emitParamMoves() {
	d := s.desc
	if d.StackArgs {
		// vx86: args at [FP + 16 + 8i] (saved FP and return address below).
		for i, p := range s.f.Params {
			s.emit(target.MInstr{Op: target.MLoad, Rd: s.vreg[p], Base: d.FP,
				Index: target.NoReg, Disp: int32(16 + 8*i), Size: 8,
				FP: isFPType(p.Type())})
		}
		return
	}
	intIdx, fpIdx, stackIdx := 0, 0, 0
	for _, p := range s.f.Params {
		if isFPType(p.Type()) {
			if fpIdx < len(d.FPArgRegs) {
				s.emit(target.MInstr{Op: target.MMovRR, Rd: s.vreg[p],
					Rs1: d.FPArgRegs[fpIdx], FP: true})
				fpIdx++
				continue
			}
		} else {
			if intIdx < len(d.ArgRegs) {
				s.emit(target.MInstr{Op: target.MMovRR, Rd: s.vreg[p],
					Rs1: d.ArgRegs[intIdx]})
				intIdx++
				continue
			}
		}
		// overflow argument on the stack at [FP + 8k]
		s.emitFrameAccess(target.MLoad, s.vreg[p], d.FP, int32(8*stackIdx),
			8, false, isFPType(p.Type()))
		stackIdx++
	}
}

// emitFrameAccess emits a frame-relative load/store, synthesizing the
// address through the scratch register when the displacement exceeds the
// target's range (vsparc disp9).
func (s *selector) emitFrameAccess(op target.MOp, reg, base target.Reg,
	disp int32, size uint8, signed, fp bool) {
	d := s.desc
	if d.WordSize == 4 && (disp < -256 || disp > 255) {
		at := target.Reg(31) // vsparc assembler temporary
		s.synthImm(at, int64(disp))
		s.emit(target.MInstr{Op: target.MALU, Alu: target.AAdd, Rd: at,
			Rs1: base, Rs2: at, Size: 8})
		base, disp = at, 0
	}
	mi := target.MInstr{Op: op, Base: base, Index: target.NoReg, Disp: disp,
		Size: size, Signed: signed, FP: fp}
	if op == target.MLoad {
		mi.Rd = reg
	} else {
		mi.Rs1 = reg
	}
	s.emit(mi)
}

// synthImm materializes a 64-bit immediate into reg. On vx86 this is one
// movi with an imm64; on vsparc it is a SPARC-style sethi/or chain of
// 16-bit pieces (1-4 instructions). synthImmInto (regalloc.go) is the
// single implementation.
func (s *selector) synthImm(reg target.Reg, v int64) {
	s.code = append(s.code, synthImmInto(reg, v, s.desc)...)
}

// synthSym materializes the address of a symbol.
func (s *selector) synthSym(reg target.Reg, sym string) {
	if s.desc.WordSize != 4 {
		s.emit(target.MInstr{Op: target.MMovRI, Rd: reg, Sym: sym})
		return
	}
	// hi16 (Scale=1 marks the hi relocation), then or lo16.
	s.emit(target.MInstr{Op: target.MMovRI, Rd: reg, Sym: sym, Scale: 1})
	s.emit(target.MInstr{Op: target.MMovRI, Rd: reg, Sym: sym, HasImm: true})
}

// canonConst computes the canonical 64-bit register image of a scalar
// constant (same convention as the reference interpreter).
func canonConst(c *core.Constant) int64 {
	switch c.CK {
	case core.ConstInt:
		return c.Int64() // sign-extended for signed, small for unsigned
	case core.ConstBool:
		return int64(c.I & 1)
	case core.ConstFloat:
		f := c.F
		if c.Type().Kind() == core.FloatKind {
			f = float64(float32(f))
		}
		return int64(math.Float64bits(f))
	case core.ConstNull, core.ConstZero, core.ConstUndef:
		return 0
	}
	panic("codegen: non-scalar constant operand " + c.Ident())
}

// val returns a register holding the canonical value of v, materializing
// constants and symbol addresses as needed.
func (s *selector) val(v core.Value) target.Reg {
	switch x := v.(type) {
	case *core.Argument, *core.Instruction:
		r, ok := s.vreg[v]
		if !ok {
			panic(fmt.Sprintf("codegen: no register for %s", v.Ident()))
		}
		return r
	case *core.Constant:
		if x.CK == core.ConstGlobal {
			r := s.newVReg(false)
			s.synthSym(r, x.Ref.Name())
			return r
		}
		if x.Type().IsFloat() {
			ir := s.newVReg(false)
			s.synthImm(ir, canonConst(x))
			fr := s.newVReg(true)
			s.emit(target.MInstr{Op: target.MCvt, Cvt: target.CvtBits,
				Rd: fr, Rs1: ir, FP: true, Size: 8})
			return fr
		}
		// Unsigned constants must materialize zero-extended.
		imm := canonConst(x)
		if x.CK == core.ConstInt && !x.Type().IsSigned() {
			imm = int64(x.I)
		}
		r := s.newVReg(false)
		s.synthImm(r, imm)
		return r
	case *core.GlobalVariable:
		r := s.newVReg(false)
		s.synthSym(r, x.Name())
		return r
	case *core.Function:
		r := s.newVReg(false)
		s.synthSym(r, x.Name())
		return r
	}
	panic(fmt.Sprintf("codegen: bad operand %T", v))
}

func (s *selector) selectInstr(bb *core.BasicBlock, in *core.Instruction) {
	op := in.Op()
	switch {
	case op == core.OpPhi:
		return // handled at block header / predecessor tails
	case op == core.OpShl || op == core.OpShr:
		s.selBinary(in)
	case op.IsComparison():
		if s.fusedCmp[in] {
			return // folded into the branch
		}
		s.selCompare(in)
	case op.IsBinary():
		s.selBinary(in)
	default:
		switch op {
		case core.OpRet:
			s.selRet(in)
		case core.OpBr:
			s.selBr(bb, in)
		case core.OpMbr:
			s.selMbr(bb, in)
		case core.OpLoad:
			s.selLoad(in)
		case core.OpStore:
			s.selStore(in)
		case core.OpGetElementPtr:
			// Multi-use or non-fused GEPs compute an address value.
			if !s.gepFoldable(in) {
				s.computeGEP(in)
			}
		case core.OpAlloca:
			s.selAlloca(in)
		case core.OpCast:
			s.selCast(in)
		case core.OpCall:
			s.selCall(bb, in, nil, nil)
		case core.OpInvoke:
			s.selInvoke(bb, in)
		case core.OpUnwind:
			s.emit(target.MInstr{Op: target.MUnwind})
		default:
			panic("codegen: unhandled opcode " + op.String())
		}
	}
}

// emitPhiMoves writes phi carriers for the edge bb -> succ. It must run in
// the predecessor before its terminator's branch to succ.
func (s *selector) emitPhiMoves(bb, succ *core.BasicBlock) {
	for _, phi := range succ.Phis() {
		v := phi.PhiIncomingFor(bb)
		src := s.val(v)
		s.emit(target.MInstr{Op: target.MMovRR, Rd: s.phiCarrier[phi],
			Rs1: src, FP: isFPType(phi.Type())})
	}
}

func aluOpFor(op core.Opcode) target.ALUOp {
	switch op {
	case core.OpAdd:
		return target.AAdd
	case core.OpSub:
		return target.ASub
	case core.OpMul:
		return target.AMul
	case core.OpDiv:
		return target.ADiv
	case core.OpRem:
		return target.ARem
	case core.OpAnd:
		return target.AAnd
	case core.OpOr:
		return target.AOr
	case core.OpXor:
		return target.AXor
	case core.OpShl:
		return target.AShl
	case core.OpShr:
		return target.AShr
	}
	panic("codegen: not an ALU op: " + op.String())
}

func (s *selector) selBinary(in *core.Instruction) {
	t := in.Type()
	fp := isFPType(t)
	rd := s.vreg[in]
	x := s.val(in.Operand(0))
	alu := aluOpFor(in.Op())
	size := s.sizeOf(t)
	if t.Kind() == core.BoolKind {
		size = 1
	}
	noTrap := (in.Op() == core.OpDiv || in.Op() == core.OpRem) && !in.ExceptionsEnabled
	// Constant right operands embed as immediates where the target's
	// encoding allows (vx86 imm32), avoiding a materialization.
	if c, ok := in.Operand(1).(*core.Constant); ok && !fp && s.desc.MaxImm > 0 &&
		c.CK == core.ConstInt && in.Op() != core.OpShl && in.Op() != core.OpShr {
		imm := canonConst(c)
		if !c.Type().IsSigned() {
			imm = int64(c.I)
		}
		if imm >= -s.desc.MaxImm-1 && imm <= s.desc.MaxImm {
			s.emit(target.MInstr{Op: target.MALU, Alu: alu, Rd: rd, Rs1: x,
				HasImm: true, Imm: imm, Size: size, Signed: t.IsSigned(),
				FP: false, NoTrap: noTrap})
			return
		}
	}
	y := s.val(in.Operand(1))
	s.emit(target.MInstr{Op: target.MALU, Alu: alu, Rd: rd, Rs1: x, Rs2: y,
		Size: size, Signed: t.IsSigned(), FP: fp, NoTrap: noTrap})
}

func condFor(op core.Opcode) target.Cond {
	switch op {
	case core.OpSetEQ:
		return target.CondEQ
	case core.OpSetNE:
		return target.CondNE
	case core.OpSetLT:
		return target.CondLT
	case core.OpSetGT:
		return target.CondGT
	case core.OpSetLE:
		return target.CondLE
	default:
		return target.CondGE
	}
}

func (s *selector) selCompare(in *core.Instruction) {
	ot := in.Operand(0).Type()
	fp := isFPType(ot)
	x := s.val(in.Operand(0))
	y := s.val(in.Operand(1))
	rd := s.vreg[in]
	if s.desc.HasFlags {
		s.emit(target.MInstr{Op: target.MCmp, Rs1: x, Rs2: y, Signed: ot.IsSigned(), FP: fp})
		s.emit(target.MInstr{Op: target.MSetCC, Cnd: condFor(in.Op()), Rd: rd})
		return
	}
	s.emit(target.MInstr{Op: target.MSetCC, Cnd: condFor(in.Op()), Rd: rd,
		Rs1: x, Rs2: y, Signed: ot.IsSigned(), FP: fp})
}

func (s *selector) selRet(in *core.Instruction) {
	if in.NumOperands() == 1 {
		v := s.val(in.Operand(0))
		if isFPType(in.Operand(0).Type()) {
			s.emit(target.MInstr{Op: target.MMovRR, Rd: s.desc.FPRetReg, Rs1: v, FP: true})
		} else {
			s.emit(target.MInstr{Op: target.MMovRR, Rd: s.desc.RetReg, Rs1: v})
		}
	}
	s.emit(target.MInstr{Op: target.MJmp, Target: int32(len(s.blocks))}) // epilogue
}

func (s *selector) selBr(bb *core.BasicBlock, in *core.Instruction) {
	if in.NumBlocks() == 1 {
		s.emitPhiMoves(bb, in.Block(0))
		s.emit(target.MInstr{Op: target.MJmp, Target: int32(s.blockIdx[in.Block(0)])})
		return
	}
	// Phi moves for both targets happen before the branch; carriers are
	// per-phi so writing both edges' carriers is harmless only when the
	// edges lead to different blocks. The same block reached on both
	// edges with different phi values cannot be expressed in LLVA (one
	// incoming per predecessor), so this is safe.
	s.emitPhiMoves(bb, in.Block(0))
	if in.Block(1) != in.Block(0) {
		s.emitPhiMoves(bb, in.Block(1))
	}
	tTrue := int32(s.blockIdx[in.Block(0)])
	tFalse := int32(s.blockIdx[in.Block(1)])
	cond := in.Operand(0)

	if ci, ok := cond.(*core.Instruction); ok && s.fusedCmp[ci] {
		// compare-and-branch fusion (vx86)
		ot := ci.Operand(0).Type()
		x := s.val(ci.Operand(0))
		y := s.val(ci.Operand(1))
		s.emit(target.MInstr{Op: target.MCmp, Rs1: x, Rs2: y,
			Signed: ot.IsSigned(), FP: isFPType(ot)})
		s.emit(target.MInstr{Op: target.MJcc, Cnd: condFor(ci.Op()), Target: tTrue})
		s.emit(target.MInstr{Op: target.MJmp, Target: tFalse})
		return
	}
	c := s.val(cond)
	if s.desc.HasFlags {
		s.emit(target.MInstr{Op: target.MCmp, Rs1: c, Rs2: target.NoReg, HasImm: true, Imm: 0})
		s.emit(target.MInstr{Op: target.MJcc, Cnd: target.CondNE, Target: tTrue})
	} else {
		s.emit(target.MInstr{Op: target.MJcc, Cnd: target.CondNE, Rs1: c, Target: tTrue})
	}
	s.emit(target.MInstr{Op: target.MJmp, Target: tFalse})
}

func (s *selector) selMbr(bb *core.BasicBlock, in *core.Instruction) {
	// Phi moves for every distinct successor.
	seen := map[*core.BasicBlock]bool{}
	for _, succ := range in.Blocks() {
		if !seen[succ] {
			seen[succ] = true
			s.emitPhiMoves(bb, succ)
		}
	}
	v := s.val(in.Operand(0))
	for i, cv := range in.Cases {
		tgt := int32(s.blockIdx[in.Block(i+1)])
		if s.desc.HasFlags {
			s.emit(target.MInstr{Op: target.MCmp, Rs1: v, Rs2: target.NoReg,
				HasImm: true, Imm: cv, Signed: true})
			s.emit(target.MInstr{Op: target.MJcc, Cnd: target.CondEQ, Target: tgt})
		} else {
			cr := s.newVReg(false)
			s.synthImm(cr, cv)
			tr := s.newVReg(false)
			s.emit(target.MInstr{Op: target.MSetCC, Cnd: target.CondEQ,
				Rd: tr, Rs1: v, Rs2: cr, Signed: true})
			s.emit(target.MInstr{Op: target.MJcc, Cnd: target.CondNE, Rs1: tr, Target: tgt})
		}
	}
	s.emit(target.MInstr{Op: target.MJmp, Target: int32(s.blockIdx[in.Block(0)])})
}
