package codegen

import (
	"sort"
	"sync"

	"llva/internal/core"
	"llva/internal/passes"
	"llva/internal/prof"
	"llva/internal/target"
)

// Tier-2 profile-guided translation (paper, Section 4.2): the persisted
// guest profile's per-block sample counts drive superblock formation —
// extended traces along hot taken-branch paths, with side-entry blocks
// tail-duplicated so the trace stays private — plus translate-time
// inlining of small hot callees and post-layout branch peepholes. The
// hot path then falls through in layout order, which the simulated
// processor rewards directly: a taken branch costs one extra cycle.
//
// Tier 2 never changes observable behavior; the N-way differential
// oracle (regalloc_diff_test.go) holds interpreter, tier-1 and tier-2
// output to the same result and program output on both targets.

const (
	// tier2InlineThreshold is the max callee size (LLVA instructions) for
	// profile-driven inlining. Deliberately above passes.InlineThreshold
	// (40): -O2 already folded the tiny callees, so tier 2 must reach
	// further to find work — but only on blocks the profile proved hot.
	tier2InlineThreshold = 96

	// tier2GrowthBudget caps total instructions added by inlining into
	// one function, keeping clone+translate time bounded.
	tier2GrowthBudget = 256

	// tier2MaxDupInstrs caps the size of a block worth tail-duplicating.
	tier2MaxDupInstrs = 12
)

// tier2Mu serializes all tier-2 IR transformation. Cloning, inlining and
// tail duplication mutate use lists on *shared* module-level values
// (functions, globals), which tier-1 translation never touches — so
// demand translation stays fully concurrent while background tier-up
// runs one function at a time.
var tier2Mu sync.Mutex

// WithTier2 derives a tier-2 translator guided by art, sharing the
// module, target and telemetry handles of t. The receiver is unchanged:
// tier-1 demand translation and tier-2 background translation coexist on
// their respective translators. Call after SetTelemetry so the derived
// translator inherits the counter handles.
func (t *Translator) WithTier2(art *prof.Artifact) *Translator {
	nt := *t
	nt.tier = 2
	nt.art = art
	return &nt
}

// Tier reports the translator's optimization tier (1 or 2).
func (t *Translator) Tier() int {
	if t.tier < 2 {
		return 1
	}
	return t.tier
}

// Profile returns the guiding artifact of a tier-2 translator (nil at
// tier 1).
func (t *Translator) Profile() *prof.Artifact { return t.art }

// tryTier2 translates f through the superblock pipeline. It reports
// ok=false — fall back to tier-1 lowering — when the profile has no
// samples for f or a transformed body fails verification. When the
// tier-2 candidate's estimated dynamic cost does not beat a tier-1
// lowering, the tier-1 code is returned (ok=true); tier2_funcs still
// counts the translation — it mirrors pipeline.tierups one-for-one —
// but only shipped transformations count superblocks and duplicated
// instructions.
func (t *Translator) tryTier2(f *core.Function) (*NativeFunc, bool) {
	counts := t.art.BlockCounts(f.Name())
	if len(counts) == 0 {
		return nil, false
	}

	tier2Mu.Lock()
	defer tier2Mu.Unlock()

	// Map the sampled native offsets — recorded against the tier-1 code
	// this profile was gathered on — back to MIR blocks: a sample belongs
	// to the block with the greatest start offset ≤ it.
	offs := t.tier1BlockOffsets(f)
	heat := make([]uint64, len(f.Blocks))
	for off, n := range counts {
		bi := sort.Search(len(offs), func(i int) bool { return uint64(offs[i]) > off }) - 1
		if bi < 0 {
			bi = 0 // in the prologue: attribute to the entry block
		}
		if bi >= len(heat) {
			bi = len(heat) - 1 // in the epilogue: attribute to the last block
		}
		heat[bi] += n
	}
	// Samples are time-proportional, but every consumer downstream —
	// branch frequencies in layoutCost, spill-access pricing, interval
	// weights — wants entry frequency: a branch or a spill executes once
	// per block entry, however long the block is. Normalizing by block
	// length converts one to the other and stops long blocks from
	// looking hotter than they run. The ×8 fixed-point scale keeps
	// sparse profiles (one sample in a long block) from truncating to
	// zero; it cancels in every comparison, which only ever weighs
	// heats against each other.
	for i, bb := range f.Blocks {
		if n := bb.Len(); n > 0 {
			heat[i] = heat[i] * 8 / uint64(n)
		}
	}

	clone := core.CloneFunctionBody(f)
	defer core.DiscardFunctionBody(clone)
	hm := make(map[*core.BasicBlock]uint64, len(clone.Blocks))
	for i, bb := range clone.Blocks {
		hm[bb] = heat[i]
	}

	hmOrig := make(map[*core.BasicBlock]uint64, len(f.Blocks))
	for i, bb := range f.Blocks {
		hmOrig[bb] = heat[i]
	}

	t.inlineHot(clone, hm)
	perm, nSuper, nDup := formSuperblocks(clone, hm)

	if core.VerifyFunction(clone) != nil {
		// A transform produced invalid IR; tier-1 output is always safe.
		return nil, false
	}
	nf2, sel2 := t.lower(clone, true, perm, hm)
	nf2.NumLLVA = f.NumInstructions()

	// Final gate: estimate each candidate's dynamic cost — heat-priced
	// spill traffic (~2 cycles per access) plus the layout's branch cost —
	// and ship tier-2 only if it beats a heat-priced tier-1 lowering of
	// the untouched function. Inlining and tail duplication can raise
	// register pressure faster than they retire branches (the per-pass
	// gates see only their own axis), and block-granular samples are
	// noisy; a candidate that cannot beat the code the profile was
	// measured on is not an optimization.
	nf1, sel1 := t.lower(f, false, nil, hmOrig)
	order2 := clone.Blocks
	if perm != nil {
		order2 = make([]*core.BasicBlock, len(perm))
		for i, bi := range perm {
			order2[i] = clone.Blocks[bi]
		}
	}
	est2 := 2*sel2.spillCost + layoutCost(order2, hm) + callCost(order2, hm)
	est1 := 2*sel1.spillCost + layoutCost(f.Blocks, hmOrig) + callCost(f.Blocks, hmOrig)
	if t.tier2Funcs != nil {
		t.tier2Funcs.Inc()
	}
	if est2 >= est1 {
		return nf1, true
	}
	if t.tier2Funcs != nil {
		t.superblocks.Add(uint64(nSuper))
		t.tailDupInstrs.Add(uint64(nDup))
	}
	return nf2, true
}

// tier1BlockOffsets replays the tier-1 pipeline for f and measures the
// byte offset of each MIR block's first instruction — the address space
// the profile's block counts were sampled in. No telemetry is recorded;
// this is a measurement pass, not a translation.
func (t *Translator) tier1BlockOffsets(f *core.Function) []int {
	sel := newSelector(t, f)
	sel.run()
	if t.spillOnly {
		allocSpill(sel)
	} else {
		allocLinear(sel)
	}
	addFrame(sel)
	elideFallthroughs(sel)
	offs := make([]int, len(sel.code)+1)
	var probe []byte
	for i := range sel.code {
		probe = probe[:0]
		b, _ := t.desc.Encode(&sel.code[i], probe)
		offs[i+1] = offs[i] + len(b)
	}
	out := make([]int, len(sel.blockStart))
	for b, idx := range sel.blockStart {
		out[b] = offs[idx]
	}
	return out
}

// inlineHot repeatedly inlines the hottest eligible call site in clone:
// direct calls in profiled-hot blocks whose callee is small, defined,
// non-recursive and exception-free. Blocks created by each inline (the
// split continuation plus the cloned callee body) inherit the call
// site's heat, so superblock formation extends traces through them.
func (t *Translator) inlineHot(clone *core.Function, heat map[*core.BasicBlock]uint64) {
	budget := tier2GrowthBudget
	for {
		var call *core.Instruction
		var hottest uint64
		for _, bb := range clone.Blocks {
			h := heat[bb]
			if h == 0 || h < hottest {
				continue
			}
			for _, in := range bb.Instructions() {
				if in.Op() != core.OpCall {
					continue
				}
				callee := in.CalledFunction()
				if callee == nil || callee.IsDeclaration() || callee.IsIntrinsic() ||
					callee.Name() == clone.Name() || !passes.CanInline(callee) ||
					hasCycle(callee) {
					continue
				}
				if n := callee.NumInstructions(); n > tier2InlineThreshold || n > budget {
					continue
				}
				if h > hottest || call == nil {
					hottest, call = h, in
				}
			}
		}
		if call == nil {
			return
		}
		site := call.Parent()
		n0 := len(clone.Blocks)
		budget -= call.CalledFunction().NumInstructions()
		passes.InlineCall(clone, call)
		for _, nb := range clone.Blocks[n0:] {
			heat[nb] = heat[site]
		}
	}
}

// hasCycle reports whether f's CFG contains a loop. Tier-2 inlining
// refuses such callees: the inlined copy's blocks inherit the call
// site's heat, which is exact for loop-free bodies (each block runs at
// most once per call) but understates a loop body arbitrarily — and
// everything downstream of the lie (spill weights, the eviction policy,
// the final cost gate) would optimize the wrong blocks.
func hasCycle(f *core.Function) bool {
	const (
		gray  = 1
		black = 2
	)
	color := make(map[*core.BasicBlock]int, len(f.Blocks))
	var visit func(bb *core.BasicBlock) bool
	visit = func(bb *core.BasicBlock) bool {
		color[bb] = gray
		for _, s := range bb.Successors() {
			switch color[s] {
			case gray:
				return true
			case black:
			default:
				if visit(s) {
					return true
				}
			}
		}
		color[bb] = black
		return false
	}
	return len(f.Blocks) > 0 && visit(f.Blocks[0])
}

// callCost prices the fixed per-call overhead of direct calls to
// defined functions — call and ret (2 cycles each) plus argument and
// frame traffic, ~2 cycles per argument — weighted by block heat. The
// cost gate adds it to both candidates so calls present in both cancel;
// what remains is the overhead hot inlining actually removed.
func callCost(order []*core.BasicBlock, heat map[*core.BasicBlock]uint64) uint64 {
	var cost uint64
	for _, b := range order {
		for _, in := range b.Instructions() {
			if in.Op() != core.OpCall && in.Op() != core.OpInvoke {
				continue
			}
			callee := in.CalledFunction()
			if callee == nil || callee.IsDeclaration() {
				continue
			}
			cost += callSiteCost(callee, heat[b], len(in.CallArgs()), 3)
		}
	}
	return cost
}

// callSiteCost prices one call site: the call/return and argument-move
// overhead, plus an estimate of the callee body's own branch cost per
// invocation, with every callee block priced at the site's heat — the
// same inheritance rule inlineHot applies to inlined blocks. Pricing
// the body on both sides of the tier-2 gate lets the terms cancel,
// whether the call stays out of line or its body now sits in the
// caller, so inlining competes on its real savings: the retired call
// overhead and whatever layout improvement superblock formation finds
// in the inlined copy. Nested defined calls are chased to a fixed
// depth — mirroring inlineHot's reach — which also bounds mutually
// recursive call graphs.
func callSiteCost(callee *core.Function, h uint64, nargs, depth int) uint64 {
	cost := (h + 1) * uint64(4+2*nargs)
	if depth == 0 {
		return cost
	}
	bh := make(map[*core.BasicBlock]uint64, len(callee.Blocks))
	for _, bb := range callee.Blocks {
		bh[bb] = h
	}
	cost += layoutCost(callee.Blocks, bh)
	for _, bb := range callee.Blocks {
		for _, in := range bb.Instructions() {
			if in.Op() != core.OpCall && in.Op() != core.OpInvoke {
				continue
			}
			inner := in.CalledFunction()
			if inner == nil || inner.IsDeclaration() || inner == callee {
				continue
			}
			cost += callSiteCost(inner, h, len(in.CallArgs()), depth-1)
		}
	}
	return cost
}

// layoutCost estimates the dynamic branch cost of laying blocks out in
// the given order, mirroring the simulated processors' cycle model: a
// fallthrough unconditional branch is elided (free), a taken branch
// pays its instruction cycle plus the taken penalty, and a conditional
// pair costs 1/2 cycles when one side falls through (branch-polarity
// inversion handles either side) and 2/3 when neither does. Per-block
// heat approximates execution frequency; two-way edges split
// proportionally to successor heat (+1 so unsampled blocks keep
// plausible, order-preserving weights). Only plain branches are
// modeled — calls, switches and invokes cost the same in any order.
func layoutCost(order []*core.BasicBlock, heat map[*core.BasicBlock]uint64) uint64 {
	pos := make(map[*core.BasicBlock]int, len(order))
	for i, b := range order {
		pos[b] = i
	}
	var cost uint64
	for i, b := range order {
		term := b.Terminator()
		if term == nil || term.Op() != core.OpBr {
			continue
		}
		succs := b.Successors()
		h := heat[b] + 1
		switch len(succs) {
		case 1:
			if pos[succs[0]] != i+1 {
				cost += 2 * h
			}
		case 2:
			t0, f0 := succs[0], succs[1]
			ht, hf := heat[t0]+1, heat[f0]+1
			ft := h * ht / (ht + hf)
			ff := h - ft
			switch {
			case pos[f0] == i+1:
				cost += 2*ft + ff
			case pos[t0] == i+1:
				cost += ft + 2*ff
			default:
				cost += 2*ft + 3*ff
			}
		}
	}
	return cost
}

// formSuperblocks plans a trace-order relayout of clone.Blocks. Traces
// are seeded at the entry (always first, so the function still begins
// there) and at hot blocks in descending heat, and grown by following
// the hottest unvisited successor. When the hot continuation was
// already claimed by an earlier trace — a join, or a loop header — the
// trace may tail-duplicate it once (core.TailDuplicate) so the hot path
// keeps falling through. Cold blocks follow in their original order.
//
// The result is a permutation over the (possibly grown) f.Blocks, to be
// applied to the machine code after register allocation — never to the
// IR block list itself: the linear-scan allocator measures live
// intervals in block order, and reordering its input tears hot loops'
// intervals across cold code, buying fallthroughs with spills. A nil
// permutation means the candidate order lost to the original: the
// branch-cost model must score it strictly better, since
// block-granular sampling is noisy evidence and a relayout that breaks
// more fallthroughs than it makes must lose to the layout the profile
// was actually measured on.
func formSuperblocks(f *core.Function, heat map[*core.BasicBlock]uint64) (perm []int, nSuper, nDupInstrs int) {
	orig := append([]*core.BasicBlock(nil), f.Blocks...)
	idx := make(map[*core.BasicBlock]int, len(orig))
	for i, bb := range orig {
		idx[bb] = i
	}
	seeds := make([]*core.BasicBlock, 0, len(orig))
	for i, bb := range orig {
		if i == 0 || heat[bb] > 0 {
			seeds = append(seeds, bb)
		}
	}
	sort.SliceStable(seeds, func(a, b int) bool {
		if idx[seeds[a]] == 0 || idx[seeds[b]] == 0 {
			return idx[seeds[a]] == 0
		}
		if heat[seeds[a]] != heat[seeds[b]] {
			return heat[seeds[a]] > heat[seeds[b]]
		}
		return idx[seeds[a]] < idx[seeds[b]]
	})

	// Plan pass: grow the traces without touching f (no tail duplication)
	// and score the candidate. Tail duplication only ever removes taken
	// branches on top of this, so a plan that does not beat the original
	// order will not be rescued by it.
	plan := buildTraceOrder(nil, orig, seeds, heat, idx, nil, nil)
	if layoutCost(plan, heat) >= layoutCost(orig, heat) {
		return nil, 0, 0
	}
	order := buildTraceOrder(f, orig, seeds, heat, idx, &nSuper, &nDupInstrs)
	// Tail duplication appended its copies to f.Blocks; order holds the
	// same set of blocks in trace order. Express it as a permutation.
	pos := make(map[*core.BasicBlock]int, len(f.Blocks))
	for i, bb := range f.Blocks {
		pos[bb] = i
	}
	perm = make([]int, len(order))
	for i, bb := range order {
		perm[i] = pos[bb]
	}
	return perm, nSuper, nDupInstrs
}

// buildTraceOrder grows a trace from each seed and appends the never-hot
// remainder in original order. With f nil it is a pure planning pass;
// with f set, traces may tail-duplicate their continuation into f and
// nSuper/nDupInstrs are recorded.
func buildTraceOrder(f *core.Function, orig, seeds []*core.BasicBlock,
	heat map[*core.BasicBlock]uint64, idx map[*core.BasicBlock]int,
	nSuper, nDupInstrs *int) []*core.BasicBlock {
	visited := make(map[*core.BasicBlock]bool, len(orig))
	var order []*core.BasicBlock
	for _, sb := range seeds {
		if visited[sb] {
			continue
		}
		trace := growTrace(f, sb, heat, idx, visited, nDupInstrs)
		if len(trace) >= 2 && nSuper != nil {
			*nSuper++
		}
		order = append(order, trace...)
	}
	for _, bb := range orig {
		if !visited[bb] {
			visited[bb] = true
			order = append(order, bb)
		}
	}
	return order
}

func growTrace(f *core.Function, start *core.BasicBlock, heat map[*core.BasicBlock]uint64,
	idx map[*core.BasicBlock]int, visited map[*core.BasicBlock]bool, nDupInstrs *int) []*core.BasicBlock {
	trace := []*core.BasicBlock{start}
	visited[start] = true
	cur := start
	dupped := false
	for {
		term := cur.Terminator()
		if term == nil {
			return trace
		}
		var next, taken *core.BasicBlock
		var nextHeat, takenHeat uint64
		for _, s := range cur.Successors() {
			if visited[s] {
				if heat[s] > takenHeat {
					takenHeat, taken = heat[s], s
				}
				continue
			}
			if heat[s] == 0 {
				continue
			}
			switch {
			case next == nil || heat[s] > nextHeat:
				nextHeat, next = heat[s], s
			case heat[s] == nextHeat:
				// Tie: the samples cannot tell the sides apart, so keep
				// the successor that already fell through at tier 1.
				if ci, ok := idx[cur]; ok && idx[s] == ci+1 {
					next = s
				}
			}
		}
		if next == nil {
			// The hot continuation is already placed elsewhere. Duplicate
			// it (at most once per trace, and only small SSA-private
			// blocks) so this trace ends in a private copy that falls
			// through; otherwise the trace ends here. The planning pass
			// (f nil) never duplicates.
			if f == nil || dupped || taken == nil || takenHeat == 0 || taken.Len() > tier2MaxDupInstrs {
				return trace
			}
			dup, ok := core.TailDuplicate(f, cur, taken)
			if !ok {
				return trace
			}
			// NewBlock appended dup at the end of f.Blocks; move it right
			// after its only predecessor so the linear scan sees a tight
			// interval — at the end it would stretch every value live into
			// the duplicated tail across the whole function.
			for i, bb := range f.Blocks {
				if bb == dup {
					copy(f.Blocks[i:], f.Blocks[i+1:])
					f.Blocks = f.Blocks[:len(f.Blocks)-1]
					break
				}
			}
			for i, bb := range f.Blocks {
				if bb == cur {
					f.Blocks = append(f.Blocks, nil)
					copy(f.Blocks[i+2:], f.Blocks[i+1:])
					f.Blocks[i+1] = dup
					break
				}
			}
			dupped = true
			heat[dup] = heat[taken]
			*nDupInstrs += dup.Len()
			visited[dup] = true
			trace = append(trace, dup)
			cur = dup
			continue
		}
		visited[next] = true
		trace = append(trace, next)
		cur = next
	}
}

// invertCond returns the exact complement of c. Complements are exact on
// the simulated processor for FP too: conditions are decoded from the
// (eq, lt) flag pair, so c holds iff its complement does not — NaN
// compares set neither flag and land on the "greater" side consistently
// for both polarities.
func invertCond(c target.Cond) (target.Cond, bool) {
	switch c {
	case target.CondEQ:
		return target.CondNE, true
	case target.CondNE:
		return target.CondEQ, true
	case target.CondLT:
		return target.CondGE, true
	case target.CondGE:
		return target.CondLT, true
	case target.CondGT:
		return target.CondLE, true
	case target.CondLE:
		return target.CondGT, true
	}
	return c, false
}

// invertBranches rewrites the fused `jcc T; jmp F` pattern when block T
// starts immediately after the pair: inverting the condition and
// swapping targets lets elideFallthroughs delete the jump, so the path
// to T costs one branch fewer (2 cycles → 1) and the path to F replaces
// a fallthrough-plus-taken-jump with one taken jcc (3 → 2). Both sides
// win, so no profile guard is needed; after trace-order layout the hot
// successor is the fallthrough, which is where the savings concentrate.
func invertBranches(s *selector) {
	for i := 0; i+1 < len(s.code); i++ {
		jcc := &s.code[i]
		jmp := &s.code[i+1]
		if jcc.Op != target.MJcc || jmp.Op != target.MJmp || jcc.Target == jmp.Target {
			continue
		}
		tt := int(jcc.Target)
		if tt < 0 || tt >= len(s.blockStart) || s.blockStart[tt] != i+2 {
			continue
		}
		inv, ok := invertCond(jcc.Cnd)
		if !ok {
			continue
		}
		jcc.Cnd = inv
		jcc.Target, jmp.Target = jmp.Target, jcc.Target
	}
}

// threadJumps retargets branches that land on a block whose first
// executed instruction is an unconditional jump — a shape trace reorder
// leaves behind when a cold block holds nothing but a jump to the join.
// Each threaded branch saves the intermediate jump's 2 cycles. Chains
// are followed to a fixed point; a visited set breaks degenerate cycles.
func threadJumps(s *selector) {
	resolve := func(t0 int32) int32 {
		t := t0
		seen := map[int32]bool{t: true}
		for {
			bi := int(t)
			if bi < 0 || bi >= len(s.blockStart) || s.blockStart[bi] >= len(s.code) {
				return t
			}
			in := s.code[s.blockStart[bi]]
			if in.Op != target.MJmp || seen[in.Target] {
				return t
			}
			t = in.Target
			seen[t] = true
		}
	}
	for i := range s.code {
		switch s.code[i].Op {
		case target.MJmp, target.MJcc:
			s.code[i].Target = resolve(s.code[i].Target)
		}
	}
}
