package codegen

import (
	"llva/internal/core"
	"llva/internal/target"
)

// calleeKind classifies a call target.
type calleeKind int

const (
	callDirect   calleeKind = iota // defined LLVA function: MCall
	callExtern                     // runtime external or intrinsic: MCallExt
	callIndirect                   // through a register: MCallInd
)

func classifyCallee(v core.Value) (calleeKind, string) {
	f, ok := v.(*core.Function)
	if !ok {
		return callIndirect, ""
	}
	if f.IsDeclaration() {
		return callExtern, f.Name()
	}
	return callDirect, f.Name()
}

// selCall lowers a call. For invokes, pre/post hold the instructions to
// emit immediately before and after the call instruction itself.
func (s *selector) selCall(bb *core.BasicBlock, in *core.Instruction,
	pre, post []target.MInstr) {
	d := s.desc
	kind, sym := classifyCallee(in.Callee())
	args := in.CallArgs()

	// Evaluate arguments into virtual registers first.
	argRegs := make([]target.Reg, len(args))
	for i, a := range args {
		argRegs[i] = s.val(a)
	}

	if d.StackArgs {
		s.selCallStackArgs(in, kind, sym, args, argRegs, pre, post)
		return
	}

	// External (native runtime) functions receive every argument as raw
	// 64-bit words in the integer argument registers: FP values travel as
	// their bit patterns (the machine cannot know the runtime signature).
	if kind == callExtern {
		for i, a := range args {
			if i >= len(d.ArgRegs) {
				panic("codegen: too many arguments to external function " + sym)
			}
			if isFPType(a.Type()) {
				s.emit(target.MInstr{Op: target.MCvt, Cvt: target.CvtBits,
					Rd: d.ArgRegs[i], Rs1: argRegs[i], Size: 8})
			} else {
				s.emit(target.MInstr{Op: target.MMovRR, Rd: d.ArgRegs[i], Rs1: argRegs[i]})
			}
		}
		for _, m := range pre {
			s.emit(m)
		}
		s.emit(target.MInstr{Op: target.MCallExt, Sym: sym, NArgs: uint8(len(args))})
		s.moveResult(in)
		for _, m := range post {
			s.emit(m)
		}
		return
	}

	// Register-argument convention (vsparc): integer args fill ArgRegs,
	// FP args fill FPArgRegs, overflow goes to the outgoing stack area at
	// [SP + 8k].
	intIdx, fpIdx, stackIdx := 0, 0, 0
	for i, a := range args {
		if isFPType(a.Type()) {
			if fpIdx < len(d.FPArgRegs) {
				s.emit(target.MInstr{Op: target.MMovRR, Rd: d.FPArgRegs[fpIdx],
					Rs1: argRegs[i], FP: true})
				fpIdx++
				continue
			}
		} else {
			if intIdx < len(d.ArgRegs) {
				s.emit(target.MInstr{Op: target.MMovRR, Rd: d.ArgRegs[intIdx],
					Rs1: argRegs[i]})
				intIdx++
				continue
			}
		}
		s.emit(target.MInstr{Op: target.MStore, Rs1: argRegs[i], Base: d.SP,
			Index: target.NoReg, Disp: int32(8 * stackIdx), Size: 8,
			FP: isFPType(a.Type())})
		stackIdx++
	}
	if stackIdx > s.maxStackArgs {
		s.maxStackArgs = stackIdx
	}

	for _, m := range pre {
		s.emit(m)
	}
	switch kind {
	case callDirect:
		s.emit(target.MInstr{Op: target.MCall, Sym: sym})
	case callExtern:
		s.emit(target.MInstr{Op: target.MCallExt, Sym: sym, NArgs: uint8(len(args))})
	case callIndirect:
		fn := s.val(in.Callee())
		s.emit(target.MInstr{Op: target.MCallInd, Rs1: fn})
	}
	s.moveResult(in)
	for _, m := range post {
		s.emit(m)
	}
}

// selCallStackArgs implements the vx86 convention: arguments pushed
// right-to-left, caller cleans the stack.
func (s *selector) selCallStackArgs(in *core.Instruction, kind calleeKind,
	sym string, args []core.Value, argRegs []target.Reg, pre, post []target.MInstr) {
	for i := len(args) - 1; i >= 0; i-- {
		s.emit(target.MInstr{Op: target.MPush, Rs1: argRegs[i],
			FP: isFPType(args[i].Type())})
	}
	for _, m := range pre {
		s.emit(m)
	}
	switch kind {
	case callDirect:
		s.emit(target.MInstr{Op: target.MCall, Sym: sym})
	case callExtern:
		s.emit(target.MInstr{Op: target.MCallExt, Sym: sym, NArgs: uint8(len(args))})
	case callIndirect:
		fn := s.val(in.Callee())
		s.emit(target.MInstr{Op: target.MCallInd, Rs1: fn})
	}
	s.moveResult(in)
	if n := len(args); n > 0 {
		s.emit(target.MInstr{Op: target.MAdjSP, Imm: int64(8 * n)})
	}
	for _, m := range post {
		s.emit(m)
	}
}

func (s *selector) moveResult(in *core.Instruction) {
	if !in.HasResult() {
		return
	}
	if isFPType(in.Type()) {
		s.emit(target.MInstr{Op: target.MMovRR, Rd: s.vreg[in],
			Rs1: s.desc.FPRetReg, FP: true})
	} else {
		s.emit(target.MInstr{Op: target.MMovRR, Rd: s.vreg[in], Rs1: s.desc.RetReg})
	}
}

// selInvoke lowers an invoke: push an unwind handler around the call,
// then branch to the normal destination. An unwind in any callee pops the
// handler, restores this frame's SP/FP, and lands on the unwind block.
func (s *selector) selInvoke(bb *core.BasicBlock, in *core.Instruction) {
	normal, unwind := in.Block(0), in.Block(1)
	// Phi moves for the unwind edge must complete before the handler can
	// possibly run, i.e. before the call; their values cannot depend on
	// the invoke's own result (SSA dominance forbids it on that path).
	s.emitPhiMoves(bb, unwind)
	pre := []target.MInstr{{Op: target.MInvokePush, Target: int32(s.blockIdx[unwind])}}
	post := []target.MInstr{{Op: target.MInvokePop}}
	s.selCall(bb, in, pre, post)
	s.emitPhiMoves(bb, normal)
	s.emit(target.MInstr{Op: target.MJmp, Target: int32(s.blockIdx[normal])})
}
