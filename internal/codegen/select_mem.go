package codegen

import (
	"llva/internal/core"
	"llva/internal/target"
)

// memOperand is a target addressing-mode expression.
type memOperand struct {
	base  target.Reg
	index target.Reg
	scale uint8
	disp  int32
}

// gepFoldable reports whether a GEP can fold entirely into the addressing
// modes of its (memory-instruction) users instead of computing an address
// value — the translator's pattern fusion (paper, Section 3.1).
func (s *selector) gepFoldable(in *core.Instruction) bool {
	if in.NumUses() != 1 {
		return false
	}
	u := in.Uses()[0]
	switch u.User.Op() {
	case core.OpLoad:
		return true
	case core.OpStore:
		return u.Index == 1 // only as the address operand
	}
	return false
}

// constGEPOffset computes the byte offset of a GEP whose indices are all
// constants, or ok=false.
func (s *selector) constGEPOffset(in *core.Instruction) (int64, bool) {
	var consts []*core.Constant
	for _, idx := range in.Operands()[1:] {
		c, ok := idx.(*core.Constant)
		if !ok || c.CK != core.ConstInt {
			return 0, false
		}
		consts = append(consts, c)
	}
	off, _ := s.lay.GEPOffset(in.Operand(0).Type().Elem(), consts)
	return off, true
}

// addr lowers a pointer operand into a memory operand, folding a
// single-use GEP into base+index*scale+disp where the target allows.
func (s *selector) addr(ptr core.Value) memOperand {
	in, ok := ptr.(*core.Instruction)
	if ok && in.Op() == core.OpGetElementPtr && s.gepFoldable(in) {
		// All-constant indices: base + disp.
		if off, isConst := s.constGEPOffset(in); isConst {
			base := s.val(in.Operand(0))
			if s.fitsDisp(off) {
				return memOperand{base: base, index: target.NoReg, disp: int32(off)}
			}
			return memOperand{base: s.addImm(base, off), index: target.NoReg}
		}
		// Single dynamic index over the pointee: base + idx*scale (vx86).
		if in.NumOperands() == 2 && s.desc.MemOperands {
			elem := in.Type().Elem()
			size := s.lay.Size(elem)
			if size == 1 || size == 2 || size == 4 || size == 8 {
				base := s.val(in.Operand(0))
				idx := s.val(in.Operand(1))
				return memOperand{base: base, index: idx, scale: uint8(size)}
			}
		}
		// General: compute the address, use it directly.
		s.computeGEP(in)
		return memOperand{base: s.vreg[in], index: target.NoReg}
	}
	return memOperand{base: s.val(ptr), index: target.NoReg}
}

func (s *selector) fitsDisp(off int64) bool {
	if s.desc.WordSize == 4 {
		return off >= -256 && off <= 255
	}
	return off >= -(1<<31) && off < 1<<31
}

// addImm returns a register holding base+off.
func (s *selector) addImm(base target.Reg, off int64) target.Reg {
	if off == 0 {
		return base
	}
	rd := s.newVReg(false)
	if s.desc.MemOperands {
		// vx86: lea rd, [base + off]
		s.emit(target.MInstr{Op: target.MLea, Rd: rd, Base: base,
			Index: target.NoReg, Disp: int32(off), HasMem: true})
		return rd
	}
	t := s.newVReg(false)
	s.synthImm(t, off)
	s.emitALU(target.AAdd, rd, base, t, 8, false, false)
	return rd
}

// computeGEP materializes a GEP's address into its virtual register.
func (s *selector) computeGEP(in *core.Instruction) {
	cur := s.val(in.Operand(0))
	curType := in.Operand(0).Type().Elem()
	rd := s.vreg[in]

	for i, idxOp := range in.Operands()[1:] {
		var elem *core.Type
		if i == 0 {
			elem = curType
		} else {
			switch curType.Kind() {
			case core.StructKind:
				fi := int(idxOp.(*core.Constant).Int64())
				off := s.lay.FieldOffset(curType, fi)
				cur = s.addImm(cur, off)
				curType = curType.Fields()[fi]
				continue
			case core.ArrayKind:
				curType = curType.Elem()
				elem = curType
			}
		}
		size := s.lay.Size(elem)
		if c, ok := idxOp.(*core.Constant); ok && c.CK == core.ConstInt {
			cur = s.addImm(cur, c.Int64()*size)
			continue
		}
		idx := s.val(idxOp)
		if s.desc.MemOperands && (size == 1 || size == 2 || size == 4 || size == 8) {
			// lea cur', [cur + idx*size]
			nr := s.newVReg(false)
			s.emit(target.MInstr{Op: target.MLea, Rd: nr, Base: cur,
				Index: idx, Scale: uint8(size), HasMem: true})
			cur = nr
			continue
		}
		// scaled = idx * size (shift when power of two)
		scaled := s.newVReg(false)
		if size&(size-1) == 0 {
			k := 0
			for sz := size; sz > 1; sz >>= 1 {
				k++
			}
			if k == 0 {
				scaled = idx
			} else {
				amt := s.newVReg(false)
				s.synthImm(amt, int64(k))
				s.emitALU(target.AShl, scaled, idx, amt, 8, true, false)
			}
		} else {
			szr := s.newVReg(false)
			s.synthImm(szr, size)
			s.emitALU(target.AMul, scaled, idx, szr, 8, true, false)
		}
		nr := s.newVReg(false)
		s.emitALU(target.AAdd, nr, cur, scaled, 8, false, false)
		cur = nr
	}
	if cur != rd {
		s.emit(target.MInstr{Op: target.MMovRR, Rd: rd, Rs1: cur})
	}
}

func (s *selector) selLoad(in *core.Instruction) {
	t := in.Type()
	m := s.addr(in.Operand(0))
	s.emit(target.MInstr{Op: target.MLoad, Rd: s.vreg[in], Base: m.base,
		Index: m.index, Scale: m.scale, Disp: m.disp, Size: s.sizeOf(t),
		Signed: t.IsSigned(), FP: isFPType(t), NoTrap: !in.ExceptionsEnabled})
}

func (s *selector) selStore(in *core.Instruction) {
	t := in.Operand(0).Type()
	v := s.val(in.Operand(0))
	m := s.addr(in.Operand(1))
	s.emit(target.MInstr{Op: target.MStore, Rs1: v, Base: m.base,
		Index: m.index, Scale: m.scale, Disp: m.disp, Size: s.sizeOf(t),
		FP: isFPType(t), NoTrap: !in.ExceptionsEnabled})
}

// selAlloca produces the address of a frame-preallocated alloca, or
// adjusts SP for dynamically-sized ones.
func (s *selector) selAlloca(in *core.Instruction) {
	rd := s.vreg[in]
	if off, fixed := s.allocaOff[in]; fixed {
		// address = FP - off
		if s.desc.MemOperands {
			s.emit(target.MInstr{Op: target.MLea, Rd: rd, Base: s.desc.FP,
				Index: target.NoReg, Disp: -off, HasMem: true})
			return
		}
		t := s.newVReg(false)
		s.synthImm(t, int64(-off))
		s.emitALU(target.AAdd, rd, s.desc.FP, t, 8, false, false)
		return
	}
	// Dynamic alloca: SP -= round16(count * size); rd = SP.
	size := s.lay.Size(in.Allocated)
	count := s.val(in.Operand(0))
	bytes := s.newVReg(false)
	szr := s.newVReg(false)
	s.synthImm(szr, size)
	s.emitALU(target.AMul, bytes, count, szr, 8, false, false)
	// align up to 16
	fifteen := s.newVReg(false)
	s.synthImm(fifteen, 15)
	s.emit(target.MInstr{Op: target.MALU, Alu: target.AAdd, Rd: bytes,
		Rs1: bytes, Rs2: fifteen, Size: 8})
	mask := s.newVReg(false)
	s.synthImm(mask, ^int64(15))
	s.emit(target.MInstr{Op: target.MALU, Alu: target.AAnd, Rd: bytes,
		Rs1: bytes, Rs2: mask, Size: 8})
	s.emit(target.MInstr{Op: target.MALU, Alu: target.ASub, Rd: s.desc.SP,
		Rs1: s.desc.SP, Rs2: bytes, Size: 8})
	s.emit(target.MInstr{Op: target.MMovRR, Rd: rd, Rs1: s.desc.SP})
}

func (s *selector) selCast(in *core.Instruction) {
	from := in.Operand(0).Type()
	to := in.Type()
	src := s.val(in.Operand(0))
	rd := s.vreg[in]
	switch {
	case from == to:
		s.emit(target.MInstr{Op: target.MMovRR, Rd: rd, Rs1: src, FP: isFPType(to)})
	case to.Kind() == core.BoolKind:
		// int/float/pointer -> bool is a != 0 test.
		if from.IsFloat() {
			z := s.newVReg(true)
			zi := s.newVReg(false)
			s.synthImm(zi, 0)
			s.emit(target.MInstr{Op: target.MCvt, Cvt: target.CvtBits, Rd: z,
				Rs1: zi, FP: true, Size: 8})
			if s.desc.HasFlags {
				s.emit(target.MInstr{Op: target.MCmp, Rs1: src, Rs2: z, FP: true})
				s.emit(target.MInstr{Op: target.MSetCC, Cnd: target.CondNE, Rd: rd})
			} else {
				s.emit(target.MInstr{Op: target.MSetCC, Cnd: target.CondNE,
					Rd: rd, Rs1: src, Rs2: z, FP: true})
			}
			return
		}
		if s.desc.HasFlags {
			s.emit(target.MInstr{Op: target.MCmp, Rs1: src, Rs2: target.NoReg,
				HasImm: true, Imm: 0})
			s.emit(target.MInstr{Op: target.MSetCC, Cnd: target.CondNE, Rd: rd})
		} else {
			s.emit(target.MInstr{Op: target.MSetCC, Cnd: target.CondNE,
				Rd: rd, Rs1: src, Rs2: target.VSZero})
		}
	case from.IsFloat() && to.IsFloat():
		s.emit(target.MInstr{Op: target.MCvt, Cvt: target.CvtFToF, Rd: rd,
			Rs1: src, Size: s.sizeOf(to)})
	case from.IsFloat():
		s.emit(target.MInstr{Op: target.MCvt, Cvt: target.CvtFToInt, Rd: rd,
			Rs1: src, Size: s.sizeOf(to), Signed: to.IsSigned()})
	case to.IsFloat():
		s.emit(target.MInstr{Op: target.MCvt, Cvt: target.CvtIntToF, Rd: rd,
			Rs1: src, Size: s.sizeOf(to), Signed: from.IsSigned()})
	default:
		// int/bool/pointer -> int/pointer: re-canonicalize at the
		// destination width and signedness.
		s.emit(target.MInstr{Op: target.MCvt, Cvt: target.CvtIntExt, Rd: rd,
			Rs1: src, Size: s.sizeOf(to), Signed: to.IsSigned()})
	}
}
