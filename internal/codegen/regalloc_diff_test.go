package codegen_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"llva/internal/asm"
	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/machine"
	"llva/internal/mem"
	"llva/internal/prof"
	"llva/internal/rt"
	"llva/internal/target"
)

// allocFuzzHelpers are the fixed callees of every generated function:
// a plain callee (clobbers caller-saved registers) and one that unwinds
// for a third of its inputs (exercises the unwind-handler spill rules).
const allocFuzzHelpers = `
long %callee(long %x) {
entry:
    %a = mul long %x, 3
    %b = xor long %a, 42
    ret long %b
}

long %maybe(long %x) {
entry:
    %r = rem long %x, 3 !noexc
    %z = seteq long %r, 0
    br bool %z, label %boom, label %ok
boom:
    unwind
ok:
    %y = add long %x, 7
    ret long %y
}
`

// genAllocSrc generates a random function %f(long, long) stressing the
// register allocator: straight-line chains whose values stay live to the
// end (exhausting both register pools), diamonds and bounded loops with
// phis, calls, and invokes whose handlers use values live across the
// unwind edge. Deterministic per seed.
func genAllocSrc(seed int64) (string, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString(allocFuzzHelpers)
	b.WriteString("long %f(long %p0, long %p1) {\nentry:\n")
	vals := []string{"%p0", "%p1"}
	pick := func() string { return vals[rng.Intn(len(vals))] }
	ops := []string{"add", "sub", "mul", "and", "or", "xor"}
	cur := "entry"
	n := 0
	segs := 8 + rng.Intn(20)
	for i := 0; i < segs; i++ {
		n++
		switch k := rng.Intn(10); {
		case k < 5: // straight-line arithmetic
			v := fmt.Sprintf("%%v%d", n)
			switch rng.Intn(6) {
			case 0:
				fmt.Fprintf(&b, "    %s = div long %s, %d !noexc\n", v, pick(), 3+rng.Intn(17))
			case 1, 2:
				fmt.Fprintf(&b, "    %s = %s long %s, %d\n", v,
					ops[rng.Intn(len(ops))], pick(), rng.Intn(1000)-500)
			default:
				fmt.Fprintf(&b, "    %s = %s long %s, %s\n", v,
					ops[rng.Intn(len(ops))], pick(), pick())
			}
			vals = append(vals, v)
		case k < 7: // diamond with phi
			c, x, y, ph := fmt.Sprintf("%%c%d", n), fmt.Sprintf("%%x%d", n),
				fmt.Sprintf("%%y%d", n), fmt.Sprintf("%%m%d", n)
			tl, el, ml := fmt.Sprintf("t%d", n), fmt.Sprintf("e%d", n), fmt.Sprintf("m%d", n)
			a, a2 := pick(), pick()
			fmt.Fprintf(&b, "    %s = setlt long %s, %s\n", c, a, a2)
			fmt.Fprintf(&b, "    br bool %s, label %%%s, label %%%s\n", c, tl, el)
			fmt.Fprintf(&b, "%s:\n    %s = add long %s, 1\n    br label %%%s\n", tl, x, a, ml)
			fmt.Fprintf(&b, "%s:\n    %s = mul long %s, 3\n    br label %%%s\n", el, y, a2, ml)
			fmt.Fprintf(&b, "%s:\n    %s = phi long [ %s, %%%s ], [ %s, %%%s ]\n",
				ml, ph, x, tl, y, el)
			cur = ml
			vals = append(vals, ph)
		case k < 8: // call
			v := fmt.Sprintf("%%r%d", n)
			fmt.Fprintf(&b, "    %s = call long %%callee(long %s)\n", v, pick())
			vals = append(vals, v)
		case k < 9: // invoke with a handler that uses a live value
			iv, alt, ph := fmt.Sprintf("%%iv%d", n), fmt.Sprintf("%%alt%d", n),
				fmt.Sprintf("%%h%d", n)
			ok, uh, mg := fmt.Sprintf("ok%d", n), fmt.Sprintf("uh%d", n), fmt.Sprintf("mg%d", n)
			fmt.Fprintf(&b, "    %s = invoke long %%maybe(long %s) to label %%%s unwind label %%%s\n",
				iv, pick(), ok, uh)
			fmt.Fprintf(&b, "%s:\n    %s = add long %s, 11\n    br label %%%s\n", uh, alt, pick(), mg)
			fmt.Fprintf(&b, "%s:\n    br label %%%s\n", ok, mg)
			fmt.Fprintf(&b, "%s:\n    %s = phi long [ %s, %%%s ], [ %s, %%%s ]\n",
				mg, ph, iv, ok, alt, uh)
			cur = mg
			vals = append(vals, ph)
		default: // bounded loop with accumulator phi
			i0, i1 := fmt.Sprintf("%%i%d", n), fmt.Sprintf("%%j%d", n)
			ac0, ac1 := fmt.Sprintf("%%a%d", n), fmt.Sprintf("%%b%d", n)
			c := fmt.Sprintf("%%lc%d", n)
			lp, af := fmt.Sprintf("lp%d", n), fmt.Sprintf("af%d", n)
			seedv, stepv := pick(), pick()
			fmt.Fprintf(&b, "    br label %%%s\n", lp)
			fmt.Fprintf(&b, "%s:\n", lp)
			fmt.Fprintf(&b, "    %s = phi long [ 0, %%%s ], [ %s, %%%s ]\n", i0, cur, i1, lp)
			fmt.Fprintf(&b, "    %s = phi long [ %s, %%%s ], [ %s, %%%s ]\n", ac0, seedv, cur, ac1, lp)
			fmt.Fprintf(&b, "    %s = add long %s, %s\n", ac1, ac0, stepv)
			fmt.Fprintf(&b, "    %s = add long %s, 1\n", i1, i0)
			fmt.Fprintf(&b, "    %s = setlt long %s, %d\n", c, i1, 2+rng.Intn(6))
			fmt.Fprintf(&b, "    br bool %s, label %%%s, label %%%s\n", c, lp, af)
			fmt.Fprintf(&b, "%s:\n", af)
			cur = af
			vals = append(vals, ac1)
		}
	}
	// Fold a wide sample of values into the result: their long live
	// ranges are what forces both pools to exhaust and spill.
	sum := pick()
	for i, k := 0, 8+rng.Intn(12); i < k; i++ {
		n++
		v := fmt.Sprintf("%%s%d", n)
		fmt.Fprintf(&b, "    %s = add long %s, %s\n", v, sum, pick())
		sum = v
	}
	fmt.Fprintf(&b, "    ret long %s\n}\n", sum)
	args := []uint64{uint64(rng.Int63n(1000)), uint64(rng.Int63n(1000))}
	return b.String(), args
}

// runNative loads obj into a fresh machine and runs %f, optionally with
// a sampling profiler attached, returning the result and program output.
func runNative(t *testing.T, d *target.Desc, m *core.Module, obj *codegen.NativeObject,
	args []uint64, p *prof.Profiler) (uint64, string) {
	t.Helper()
	var out bytes.Buffer
	env := rt.NewEnv(mem.New(0, true), &out)
	mc, err := machine.New(d, m, env)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		mc.SetProfiler(p)
	}
	if err := mc.LoadObject(obj); err != nil {
		t.Fatal(err)
	}
	got, err := mc.Run("f", args...)
	if err != nil {
		t.Fatalf("%s: run: %v", d.Name, err)
	}
	return got, out.String()
}

// TestAllocatorDifferential is the N-way differential oracle: on
// randomized generated functions, the reference interpreter, tier-1 with
// the global linear-scan allocator, tier-1 with the spill-everything
// oracle (UseSpillAllocator), and tier-2 profile-guided translation
// (superblocks + hot inlining, driven by a profile gathered from a real
// tier-1 run) must all agree on the result and the program output, on
// both targets.
func TestAllocatorDifferential(t *testing.T) {
	iters := int64(40)
	if testing.Short() {
		iters = 8
	}
	for seed := int64(1); seed <= iters; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src, args := genAllocSrc(seed)
			m, err := asm.Parse("fuzz", src)
			if err != nil {
				t.Fatalf("parse: %v\n%s", err, src)
			}
			if err := core.Verify(m); err != nil {
				t.Fatalf("verify: %v\n%s", err, src)
			}
			var iout bytes.Buffer
			ip, err := interp.New(m, &iout)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ip.Run("f", args...)
			if err != nil {
				t.Fatalf("interp: %v\n%s", err, src)
			}
			wantOut := iout.String()
			for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
				var linear *codegen.NativeObject
				for _, oracle := range []bool{false, true} {
					name := d.Name + "/linear"
					if oracle {
						name = d.Name + "/spill-oracle"
					}
					tr, err := codegen.New(d, m)
					if err != nil {
						t.Fatal(err)
					}
					tr.UseSpillAllocator(oracle)
					obj, err := tr.TranslateModule()
					if err != nil {
						t.Fatalf("%s: translate: %v\n%s", name, err, src)
					}
					if !oracle {
						linear = obj
					}
					got, out := runNative(t, d, m, obj, args, nil)
					if got != want || out != wantOut {
						t.Errorf("%s: got %#x, interp %#x (seed %d)\n%s",
							name, got, want, seed, src)
					}
				}

				// Tier 2: profile a tier-1 run, then re-translate guided by
				// the gathered artifact and cross-check the optimized code.
				p := prof.NewProfiler(50)
				if got, out := runNative(t, d, m, linear, args, p); got != want || out != wantOut {
					t.Fatalf("%s/profiled: got %#x, interp %#x (seed %d)", d.Name, got, want, seed)
				}
				art := p.Artifact(m.Name, d.Name)
				tr, err := codegen.New(d, m)
				if err != nil {
					t.Fatal(err)
				}
				tr2 := tr.WithTier2(art)
				obj2, err := tr2.TranslateModule()
				if err != nil {
					t.Fatalf("%s/tier2: translate: %v\n%s", d.Name, err, src)
				}
				got, out := runNative(t, d, m, obj2, args, nil)
				if got != want || out != wantOut {
					t.Errorf("%s/tier2: got %#x, interp %#x (seed %d)\n%s",
						d.Name, got, want, seed, src)
				}
			}
		})
	}
}
