// Package codegen is the LLVA translator back-end: it compiles virtual
// object code to native code for a target I-ISA (paper, Figure 1). It
// performs instruction selection with simple pattern fusion (combining
// multiple LLVA instructions into complex I-ISA instructions where the
// target allows: getelementptr into addressing modes, comparisons into
// compare-and-branch), phi elimination, frame lowering (preallocating all
// fixed-size allocas in the stack frame, Section 3.2), calling-convention
// lowering, and register allocation.
//
// Register allocation is a global linear scan (allocLinear) shared by
// both back-ends, parameterised over the target's caller-saved and
// callee-saved register pools and safe across invoke/unwind (values live
// into an unwind handler are spilled to frame slots, since the unwinder
// restores only SP and FP). The paper's naive spill-everything allocator
// ("the x86 back-end performs virtually no optimization and very simple
// register allocation resulting in significant spill code") survives as
// a differential-testing oracle behind UseSpillAllocator.
//
// The translator runs in offline mode (whole module) or JIT mode (one
// function at a time, on demand) — both produce identical code.
package codegen

import (
	"fmt"
	"time"

	"llva/internal/core"
	"llva/internal/prof"
	"llva/internal/target"
	"llva/internal/telemetry"
)

// NativeFunc is the translated native code of one function.
type NativeFunc struct {
	Name string
	Code []byte
	// Relocs hold symbol references to resolve at load time; offsets are
	// relative to Code.
	Relocs []target.Reloc
	// NumInstrs is the machine instruction count (the Table 2 metric).
	NumInstrs int
	// NumLLVA is the source LLVA instruction count.
	NumLLVA int
}

// NativeObject is the translation of a module for one target.
type NativeObject struct {
	TargetName string
	Module     string
	Funcs      []*NativeFunc
	byName     map[string]*NativeFunc
}

// Func returns the named translated function, or nil.
func (o *NativeObject) Func(name string) *NativeFunc {
	return o.byName[name]
}

// Add appends a translated function.
func (o *NativeObject) Add(f *NativeFunc) {
	if o.byName == nil {
		o.byName = make(map[string]*NativeFunc)
	}
	o.Funcs = append(o.Funcs, f)
	o.byName[f.Name] = f
}

// CodeSize returns the total native code size in bytes.
func (o *NativeObject) CodeSize() int {
	n := 0
	for _, f := range o.Funcs {
		n += len(f.Code)
	}
	return n
}

// NumInstrs returns the total machine instruction count.
func (o *NativeObject) NumInstrs() int {
	n := 0
	for _, f := range o.Funcs {
		n += f.NumInstrs
	}
	return n
}

// Metric names published to a shared registry via SetTelemetry.
const (
	MetricSpills        = "codegen.spills"
	MetricReloads       = "codegen.reloads"
	MetricRegallocNS    = "codegen.regalloc_ns"
	MetricTier2Funcs    = "codegen.tier2_funcs"
	MetricSuperblocks   = "codegen.superblocks"
	MetricTailDupInstrs = "codegen.tail_dup_instrs"
)

// Translator compiles a module's functions for one target.
type Translator struct {
	desc *target.Desc
	m    *core.Module
	lay  core.Layout

	// spillOnly forces the naive allocator (test oracle).
	spillOnly bool

	// tier is 1 (fast, profile-free, the default) or 2 (profile-guided
	// superblock formation + hot inlining; see tier2.go). Tier 2 carries
	// the guiding profile in art.
	tier int
	art  *prof.Artifact

	// telemetry handles; nil until SetTelemetry wires them
	spills, reloads *telemetry.Counter
	regallocNS      *telemetry.Histogram
	tier2Funcs      *telemetry.Counter
	superblocks     *telemetry.Counter
	tailDupInstrs   *telemetry.Counter
}

// New creates a translator for module m targeting desc. The simulated
// processors are 64-bit little-endian; modules with other configurations
// are rejected, exactly as a real translator would refuse object code
// whose configuration flags do not match the implementation (Section 3.2).
func New(desc *target.Desc, m *core.Module) (*Translator, error) {
	if m.PointerSize != 8 {
		return nil, fmt.Errorf("codegen: %s implements 64-bit pointers; module %q requires %d-bit",
			desc.Name, m.Name, m.PointerSize*8)
	}
	if !m.LittleEndian {
		return nil, fmt.Errorf("codegen: %s is little-endian; module %q is big-endian",
			desc.Name, m.Name)
	}
	return &Translator{desc: desc, m: m, lay: m.Layout()}, nil
}

// Target returns the target description.
func (t *Translator) Target() *target.Desc { return t.desc }

// SetTelemetry publishes the translator's counters into reg: spill
// stores and reloads emitted by register allocation (codegen.spills /
// codegen.reloads) and per-function allocation time
// (codegen.regalloc_ns). Call it before translation begins; the handles
// are atomic, so concurrent TranslateFunction calls remain safe.
func (t *Translator) SetTelemetry(reg *telemetry.Registry) {
	t.spills = reg.Counter(MetricSpills)
	t.reloads = reg.Counter(MetricReloads)
	t.regallocNS = reg.Histogram(MetricRegallocNS)
	t.tier2Funcs = reg.Counter(MetricTier2Funcs)
	t.superblocks = reg.Counter(MetricSuperblocks)
	t.tailDupInstrs = reg.Counter(MetricTailDupInstrs)
}

// UseSpillAllocator forces the paper's naive spill-everything allocator
// for every function. It survives as the differential-testing oracle for
// the global linear-scan allocator.
func (t *Translator) UseSpillAllocator(on bool) { t.spillOnly = on }

// Module returns the module being translated.
func (t *Translator) Module() *core.Module { return t.m }

// TranslateModule compiles every defined function (offline mode).
func (t *Translator) TranslateModule() (*NativeObject, error) {
	obj := &NativeObject{TargetName: t.desc.Name, Module: t.m.Name}
	for _, f := range t.m.Functions {
		if f.IsDeclaration() {
			continue
		}
		nf, err := t.TranslateFunction(f)
		if err != nil {
			return nil, err
		}
		obj.Add(nf)
	}
	return obj, nil
}

// TranslateFunction compiles a single function (JIT mode unit). It only
// reads the module and builds per-call state, so independent functions
// may be translated concurrently on one Translator (internal/llee/pipeline
// relies on this). On a tier-2 translator (WithTier2), functions with
// profile coverage go through the superblock pipeline; functions the
// profile never sampled fall back to tier-1 lowering.
func (t *Translator) TranslateFunction(f *core.Function) (nf *NativeFunc, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("codegen: %%%s: %v", f.Name(), r)
		}
	}()
	if t.tier >= 2 {
		if nf, ok := t.tryTier2(f); ok {
			return nf, nil
		}
	}
	nf, _ = t.lower(f, false, nil, nil)
	return nf, nil
}

// lower runs the common back half of translation: selection, register
// allocation, frame lowering, fallthrough elision and final layout. With
// tier2 set, the allocator A/Bs heat-weighted eviction (allocBest) and
// post-allocation peepholes (branch-polarity inversion for trace
// fallthrough, jump threading) run before elision. A non-nil perm places
// blocks in trace order at the machine level — after register
// allocation, so live intervals (and therefore spills) are measured in
// the stable IR order the profile was gathered against. A non-nil hm
// feeds per-block heat to the allocator for interval weights and spill
// pricing; with tier2 false it only prices (the returned selector's
// spillCost), producing code identical to the profile-free path.
func (t *Translator) lower(f *core.Function, tier2 bool, perm []int, hm map[*core.BasicBlock]uint64) (*NativeFunc, *selector) {
	sel := newSelector(t, f)
	if hm != nil {
		sel.blockHeat = make([]uint64, len(f.Blocks))
		for i, bb := range f.Blocks {
			sel.blockHeat[i] = hm[bb]
		}
	}
	sel.run()

	// Register allocation: the global linear scan handles both targets
	// and invoke-containing functions (values live into an unwind handler
	// are force-spilled; see allocLinear). The naive allocator runs only
	// as the differential-testing oracle.
	start := time.Now()
	switch {
	case t.spillOnly:
		allocSpill(sel)
	case tier2 && sel.blockHeat != nil:
		allocBest(sel)
	default:
		allocLinear(sel)
	}
	if t.regallocNS != nil {
		t.regallocNS.Observe(time.Since(start).Nanoseconds())
		t.spills.Add(uint64(sel.nSpillStores))
		t.reloads.Add(uint64(sel.nSpillLoads))
	}

	addFrame(sel)
	if perm != nil {
		reorderBlocks(sel, perm)
	}
	if tier2 {
		invertBranches(sel)
		threadJumps(sel)
	}
	elideFallthroughs(sel)
	code, relocs := layout(sel)
	return &NativeFunc{
		Name:      f.Name(),
		Code:      code,
		Relocs:    relocs,
		NumInstrs: len(sel.code),
		NumLLVA:   f.NumInstructions(),
	}, sel
}

// reorderBlocks rearranges the machine code into the block order given
// by perm (a permutation of the selector's block indices, entry first).
// Branch targets are block indices, so only the start table changes;
// every block ends in an explicit branch — ret lowers to a jump to the
// epilogue label, invoke to a jump to its normal successor — so no
// implicit fallthrough is broken. The prologue stays ahead of the entry
// block and the epilogue stays last.
func reorderBlocks(s *selector, perm []int) {
	n := len(s.blockStart) - 1 // the final entry is the epilogue label
	out := make([]target.MInstr, 0, len(s.code))
	out = append(out, s.code[:s.blockStart[0]]...) // prologue
	newStart := make([]int, len(s.blockStart))
	for _, bi := range perm {
		newStart[bi] = len(out)
		out = append(out, s.code[s.blockStart[bi]:s.blockStart[bi+1]]...)
	}
	newStart[n] = len(out)
	out = append(out, s.code[s.blockStart[n]:]...) // epilogue
	s.code = out
	s.blockStart = newStart
}

// elideFallthroughs removes an unconditional jump whose target is the
// block that immediately follows it in layout order. Taken branches cost
// an extra cycle on the simulated processor, so block placement — and in
// particular trace-driven relayout (Section 4.2) — directly affects the
// measured cycle counts. blockStart need not be monotonic here:
// reorderBlocks places trace-ordered code with the original indices.
func elideFallthroughs(s *selector) {
	startsAt := make(map[int][]int, len(s.blockStart))
	for bi, p := range s.blockStart {
		startsAt[p] = append(startsAt[p], bi)
	}
	drop := make([]bool, len(s.code))
	for i := range s.code {
		in := &s.code[i]
		if in.Op != target.MJmp {
			continue
		}
		for _, nb := range startsAt[i+1] {
			if int32(nb) == in.Target {
				drop[i] = true
			}
		}
	}
	newPos := make([]int, len(s.code)+1)
	n := 0
	for i := range s.code {
		newPos[i] = n
		if !drop[i] {
			n++
		}
	}
	newPos[len(s.code)] = n
	out := make([]target.MInstr, 0, n)
	for i := range s.code {
		if !drop[i] {
			out = append(out, s.code[i])
		}
	}
	for bi, p := range s.blockStart {
		s.blockStart[bi] = newPos[p]
	}
	s.code = out
}

// layout assigns byte offsets, resolves PC-relative branch targets and
// encodes the final bytes.
func layout(s *selector) ([]byte, []target.Reloc) {
	d := s.desc
	// Pass 1: measure offsets.
	offs := make([]int, len(s.code)+1)
	var probe []byte
	for i := range s.code {
		probe = probe[:0]
		b, _ := d.Encode(&s.code[i], probe)
		offs[i+1] = offs[i] + len(b)
	}
	// Block index -> byte offset of its first instruction.
	blockOff := make([]int, len(s.blockStart))
	for b, idx := range s.blockStart {
		blockOff[b] = offs[idx]
	}
	// Pass 2: rewrite branch targets PC-relative and encode.
	var code []byte
	var relocs []target.Reloc
	for i := range s.code {
		in := s.code[i]
		switch in.Op {
		case target.MJmp, target.MJcc, target.MInvokePush:
			delta := blockOff[in.Target] - offs[i]
			in.Target = int32(delta / d.RelBranchScale)
		}
		start := len(code)
		var rl []target.Reloc
		code, rl = d.Encode(&in, code)
		for _, r := range rl {
			r.Offset += uint32(start)
			relocs = append(relocs, r)
		}
		if len(code)-start != offs[i+1]-offs[i] {
			panic(fmt.Sprintf("layout: instruction %d changed size during encoding", i))
		}
	}
	return code, relocs
}
