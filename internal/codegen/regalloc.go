package codegen

import (
	"fmt"
	"sort"

	"llva/internal/target"
)

// instrDefs returns the register defined by the instruction (or NoReg),
// and instrUses appends the registers it reads.
func instrDef(m *target.MInstr) target.Reg {
	switch m.Op {
	case target.MMovRR, target.MLoad, target.MLea, target.MSetCC,
		target.MPop, target.MCvt, target.MALU:
		return m.Rd
	case target.MMovRI:
		return m.Rd
	}
	return target.NoReg
}

func instrUses(m *target.MInstr, out []target.Reg) []target.Reg {
	add := func(r target.Reg) {
		if r != target.NoReg {
			out = append(out, r)
		}
	}
	switch m.Op {
	case target.MMovRR, target.MCvt, target.MPush, target.MCallInd:
		add(m.Rs1)
	case target.MMovRI:
		if m.HasImm { // vsparc "or" form reads its destination
			add(m.Rd)
		}
	case target.MALU:
		add(m.Rs1)
		if !m.HasImm {
			add(m.Rs2)
		}
		if m.HasMem {
			add(m.Base)
			add(m.Index)
		}
	case target.MCmp, target.MSetCC:
		add(m.Rs1)
		add(m.Rs2)
	case target.MJcc:
		add(m.Rs1)
	case target.MLoad, target.MLea:
		add(m.Base)
		add(m.Index)
	case target.MStore:
		add(m.Rs1)
		add(m.Base)
		add(m.Index)
	}
	return out
}

// replaceRegs rewrites every register field through fn.
func replaceRegs(m *target.MInstr, fn func(target.Reg) target.Reg) {
	m.Rd = fn(m.Rd)
	m.Rs1 = fn(m.Rs1)
	m.Rs2 = fn(m.Rs2)
	m.Base = fn(m.Base)
	m.Index = fn(m.Index)
}

// slotDisp computes the FP-relative displacement of spill slot i.
func (s *selector) slotDisp(slot int32) int32 {
	return -(s.saveArea + s.allocaBytes + 8*(slot+1))
}

// allocSpill is the naive spill-everything allocator: every virtual
// register lives in a stack slot; each instruction loads its operands
// into scratch registers and stores its result back. This reproduces the
// paper's minimal-effort x86 back-end ("significant spill code").
func allocSpill(s *selector) {
	slotOf := make(map[target.Reg]int32)
	slot := func(v target.Reg) int32 {
		if sl, ok := slotOf[v]; ok {
			return sl
		}
		sl := int32(len(slotOf))
		slotOf[v] = sl
		return sl
	}
	// Pre-assign slots in first-appearance order for determinism.
	var uses []target.Reg
	for i := range s.code {
		uses = instrUses(&s.code[i], uses[:0])
		for _, r := range uses {
			if r.IsVirtual() {
				slot(r)
			}
		}
		if d := instrDef(&s.code[i]); d.IsVirtual() {
			slot(d)
		}
	}
	s.spillBytes = int32(len(slotOf)) * 8
	rewriteWithSlots(s, slotOf, nil)
}

// rewriteWithSlots rewrites the code: virtual registers in slotOf load
// from / store to their frame slot through scratch registers; virtual
// registers in assigned map to their physical register.
func rewriteWithSlots(s *selector, slotOf map[target.Reg]int32, assigned map[target.Reg]target.Reg) {
	d := s.desc
	var out []target.MInstr
	newBlockStart := make([]int, len(s.blockStart))
	bi := 0
	var usesBuf []target.Reg

	// heatAt prices one spill access at the current block's profile heat
	// (+1 so unsampled blocks still count); allocBest compares allocations
	// by this total.
	heatAt := func() uint64 {
		if s.blockHeat == nil {
			return 0
		}
		b := bi - 1
		if b < 0 {
			b = 0
		}
		if b >= len(s.blockHeat) {
			b = len(s.blockHeat) - 1
		}
		return s.blockHeat[b] + 1
	}
	emitFrame := func(op target.MOp, reg target.Reg, disp int32, fp bool) {
		// Spill slots always hold the full canonical 64-bit value.
		if op == target.MLoad {
			s.nSpillLoads++
		} else {
			s.nSpillStores++
		}
		s.spillCost += heatAt()
		out = frameInstrs(out, d, op, reg, disp, fp)
	}

	// One-instruction forwarding window: the most recent definition stays
	// valid in its scratch register until a block boundary or a clobber,
	// so chained operations skip one reload ("the last value is still in
	// AX" — the extent of cleverness a naive translator affords).
	lastV, lastR := target.NoReg, target.NoReg

	for i := range s.code {
		atBoundary := false
		for bi < len(s.blockStart) && s.blockStart[bi] == i {
			newBlockStart[bi] = len(out)
			bi++
			atBoundary = true
		}
		if atBoundary {
			lastV, lastR = target.NoReg, target.NoReg
		}
		in := s.code[i] // copy

		// Post-allocation peepholes over values still in slots (a vreg is
		// never both spilled and assigned, so slotOf membership decides):
		// 1. A register-register move between two spilled values is a
		//    load + store, not load + mov + store.
		if in.Op == target.MMovRR && in.Rd.IsVirtual() && in.Rs1.IsVirtual() {
			_, dSp := slotOf[in.Rd]
			_, sSp := slotOf[in.Rs1]
			if dSp && sSp {
				sc := d.Scratch[0]
				if s.isFPReg(in.Rs1) {
					sc = d.FPScratch[0]
				}
				emitFrame(target.MLoad, sc, s.slotDisp(slotOf[in.Rs1]), s.isFPReg(in.Rs1))
				emitFrame(target.MStore, sc, s.slotDisp(slotOf[in.Rd]), s.isFPReg(in.Rd))
				// The copy clobbered a scratch register; the moved value
				// now lives there, so it becomes the forwarding window.
				lastV, lastR = in.Rd, sc
				continue
			}
		}
		// 2. A spilled right ALU operand folds into a memory operand
		//    (vx86 "add reg, [slot]"), except float32 whose in-register
		//    canonical form differs from its memory image.
		if in.Op == target.MALU && d.MemOperands && !in.HasImm && !in.HasMem &&
			in.Rs2.IsVirtual() && !(in.FP && in.Size == 4) {
			if sl, sp := slotOf[in.Rs2]; sp {
				in.HasMem = true
				in.Base = d.FP
				in.Index = target.NoReg
				in.Disp = s.slotDisp(sl)
				in.Rs2 = target.NoReg
				s.nSpillLoads++
				s.spillCost += heatAt()
			}
		}

		// Physical registers already present must not be chosen as
		// scratch for this instruction.
		busy := map[target.Reg]bool{}
		usesBuf = instrUses(&in, usesBuf[:0])
		for _, r := range usesBuf {
			if !r.IsVirtual() {
				busy[r] = true
			}
		}
		if dd := instrDef(&in); dd != target.NoReg && !dd.IsVirtual() {
			busy[dd] = true
		}

		scratchMap := map[target.Reg]target.Reg{}
		forwarded := false
		if lastV != target.NoReg {
			usesLast := false
			for _, r := range usesBuf {
				if r == lastV {
					usesLast = true
					break
				}
			}
			if usesLast {
				scratchMap[lastV] = lastR
				busy[lastR] = true
				forwarded = true
			}
		}
		intNext, fpNext := 0, 0
		scratchFor := func(v target.Reg) target.Reg {
			if r, ok := scratchMap[v]; ok {
				return r
			}
			var pool [3]target.Reg
			var idx *int
			if s.isFPReg(v) {
				pool = d.FPScratch
				idx = &fpNext
			} else {
				pool = d.Scratch
				idx = &intNext
			}
			for *idx < len(pool) && busy[pool[*idx]] {
				*idx++
			}
			if *idx >= len(pool) {
				panic(fmt.Sprintf("codegen: out of scratch registers for %s", in.String()))
			}
			r := pool[*idx]
			*idx++
			scratchMap[v] = r
			return r
		}

		mapReg := func(v target.Reg) target.Reg {
			if !v.IsVirtual() {
				return v
			}
			if p, ok := assigned[v]; ok {
				return p
			}
			return scratchFor(v)
		}

		// Load spilled sources (the forwarded value needs no reload).
		loaded := map[target.Reg]bool{}
		if forwarded {
			loaded[lastV] = true
		}
		for _, r := range usesBuf {
			if !r.IsVirtual() || loaded[r] {
				continue
			}
			if sl, spilled := slotOf[r]; spilled {
				loaded[r] = true
				emitFrame(target.MLoad, mapReg(r), s.slotDisp(sl), s.isFPReg(r))
			}
		}
		def := instrDef(&in)
		replaceRegs(&in, mapReg)
		// Coalescing: a register-register move whose source and
		// destination landed in the same physical register is a no-op
		// (common for phi carriers and their phis with disjoint ranges).
		if in.Op == target.MMovRR && in.Rd == in.Rs1 {
			if _, sp := slotOf[def]; !sp {
				continue
			}
		}
		out = append(out, in)
		// Store a spilled definition.
		if def.IsVirtual() {
			if sl, spilled := slotOf[def]; spilled {
				emitFrame(target.MStore, mapReg(def), s.slotDisp(sl), s.isFPReg(def))
			}
		}

		// Update the forwarding window.
		switch in.Op {
		case target.MCall, target.MCallInd, target.MCallExt, target.MRet,
			target.MUnwind, target.MInvokePush:
			// calls and unwinds clobber scratch registers
			lastV, lastR = target.NoReg, target.NoReg
		default:
			// a reused scratch register invalidates the old forwarding
			if lastR != target.NoReg {
				for v, r := range scratchMap {
					if r == lastR && v != lastV {
						lastV, lastR = target.NoReg, target.NoReg
						break
					}
				}
			}
			if def.IsVirtual() {
				if _, sp := slotOf[def]; sp {
					lastV, lastR = def, scratchMap[def]
				}
			} else if def != target.NoReg {
				// a physical definition may have clobbered the window
				if def == lastR {
					lastV, lastR = target.NoReg, target.NoReg
				}
			}
		}
	}
	for bi < len(s.blockStart) {
		newBlockStart[bi] = len(out)
		bi++
	}
	s.code = out
	s.blockStart = newBlockStart
}

// frameInstrs appends one 64-bit FP-relative frame-slot access,
// synthesizing the address through the assembler temporary when the
// displacement exceeds the target's range (vsparc disp9). All register
// save/restore and spill traffic in the back-end funnels through here.
func frameInstrs(list []target.MInstr, d *target.Desc, op target.MOp,
	reg target.Reg, disp int32, fp bool) []target.MInstr {
	base := d.FP
	if d.WordSize == 4 && (disp < -256 || disp > 255) {
		at := target.Reg(31)
		list = append(list, synthImmInto(at, int64(disp), d)...)
		list = append(list, target.MInstr{Op: target.MALU, Alu: target.AAdd,
			Rd: at, Rs1: base, Rs2: at, Size: 8})
		base, disp = at, 0
	}
	mi := target.MInstr{Op: op, Base: base, Index: target.NoReg, Disp: disp,
		Size: 8, FP: fp}
	if op == target.MLoad {
		mi.Rd = reg
	} else {
		mi.Rs1 = reg
	}
	return append(list, mi)
}

// synthImmInto builds the movi sequence for an immediate (selector.synthImm
// delegates here; the rewriter and frame lowering call it directly).
func synthImmInto(reg target.Reg, v int64, d *target.Desc) []target.MInstr {
	if d.WordSize != 4 {
		return []target.MInstr{{Op: target.MMovRI, Rd: reg, Imm: v}}
	}
	if v >= -32768 && v <= 32767 {
		return []target.MInstr{{Op: target.MMovRI, Rd: reg, Imm: v & 0xffff}}
	}
	var out []target.MInstr
	top := 3
	for top > 0 && uint16(uint64(v)>>(16*top)) == 0 {
		top--
	}
	first := top - 1
	if uint16(uint64(v)>>(16*top))&0x8000 != 0 && top < 3 && uint64(v)>>(16*(top+1)) == 0 {
		out = append(out, target.MInstr{Op: target.MMovRI, Rd: reg, Imm: 0, Scale: uint8(top + 1)})
		first = top
	} else {
		out = append(out, target.MInstr{Op: target.MMovRI, Rd: reg,
			Imm: int64(uint16(uint64(v) >> (16 * top))), Scale: uint8(top)})
	}
	for c := first; c >= 0; c-- {
		chunk := int64(uint16(uint64(v) >> (16 * c)))
		if chunk == 0 {
			continue
		}
		out = append(out, target.MInstr{Op: target.MMovRI, Rd: reg, Imm: chunk,
			Scale: uint8(c), HasImm: true})
	}
	return out
}

// interval is a live range for linear scan.
type interval struct {
	v          target.Reg
	start, end int
	fp         bool
	cross      bool // live across a call: needs a callee-saved register
	// weight is the heat-weighted use count, accumulated only when the
	// selector carries per-block profile heat (tier 2): spilling this
	// value costs ~2 cycles per weighted use, so eviction prefers the
	// cheapest victim instead of the furthest-ending one.
	weight uint64
}

// allocLinear is the global linear-scan register allocator, shared by
// both back-ends. It computes block-level liveness, builds conservative
// [min,max] live intervals, and walks them in start order over two pools
// per register class from target.Desc: caller-saved registers for
// intervals containing no call, callee-saved registers (saved by the
// prologue) for intervals that cross one. When every pool is exhausted
// it spills second-chance style: a victim interval loses its register
// to the current one and moves to a frame slot — and a non-crossing
// victim gets a second chance to relocate into a caller-saved register
// that has been free since before the victim itself began. Without
// profile heat the victim is the interval ending furthest (classic
// linear scan); with per-block heat (tier 2) it is the interval with
// the lowest heat-weighted use count, so hot-loop values keep their
// registers.
//
// Two invoke-specific rules keep unwinding — which restores only SP and
// FP — correct:
//
//  1. every value live into an unwind handler block is force-spilled to
//     a frame slot for its whole interval: even a callee-saved register
//     copy is unreliable on the unwind path, because the unwound
//     callees' restoring epilogues never run;
//  2. values live across the invoke only on the normal path follow the
//     ordinary call-crossing rule — on a normal return the callee's
//     epilogue has restored every callee-saved register.
func allocLinear(s *selector) {
	n := len(s.code)
	// Block structure for liveness.
	nb := len(s.blockStart) - 1 // last entry is the (empty) epilogue label
	blockOf := make([]int, n)
	for b := 0; b < nb; b++ {
		end := n
		if b+1 < len(s.blockStart) {
			end = s.blockStart[b+1]
		}
		for i := s.blockStart[b]; i < end && i < n; i++ {
			blockOf[i] = b
		}
	}
	succs := make([][]int, nb+1)
	for i := range s.code {
		m := &s.code[i]
		switch m.Op {
		case target.MJmp, target.MJcc, target.MInvokePush:
			b := blockOf[i]
			succs[b] = append(succs[b], int(m.Target))
		}
	}

	// Per-block use/def over virtual registers.
	useB := make([]map[target.Reg]bool, nb+1)
	defB := make([]map[target.Reg]bool, nb+1)
	for b := 0; b <= nb; b++ {
		useB[b] = map[target.Reg]bool{}
		defB[b] = map[target.Reg]bool{}
	}
	var ub []target.Reg
	for b := 0; b < nb; b++ {
		end := n
		if b+1 < len(s.blockStart) {
			end = s.blockStart[b+1]
		}
		for i := s.blockStart[b]; i < end; i++ {
			ub = instrUses(&s.code[i], ub[:0])
			for _, r := range ub {
				if r.IsVirtual() && !defB[b][r] {
					useB[b][r] = true
				}
			}
			if d := instrDef(&s.code[i]); d.IsVirtual() {
				defB[b][d] = true
			}
		}
	}
	liveIn := make([]map[target.Reg]bool, nb+1)
	liveOut := make([]map[target.Reg]bool, nb+1)
	for b := range liveIn {
		liveIn[b] = map[target.Reg]bool{}
		liveOut[b] = map[target.Reg]bool{}
	}
	for changed := true; changed; {
		changed = false
		for b := nb - 1; b >= 0; b-- {
			for _, sc := range succs[b] {
				if sc > nb {
					continue
				}
				for v := range liveIn[sc] {
					if !liveOut[b][v] {
						liveOut[b][v] = true
						changed = true
					}
				}
			}
			for v := range useB[b] {
				if !liveIn[b][v] {
					liveIn[b][v] = true
					changed = true
				}
			}
			for v := range liveOut[b] {
				if !defB[b][v] && !liveIn[b][v] {
					liveIn[b][v] = true
					changed = true
				}
			}
		}
	}

	// Intervals: conservative [min, max] positions.
	ivals := map[target.Reg]*interval{}
	touch := func(v target.Reg, pos int) {
		if !v.IsVirtual() {
			return
		}
		iv, ok := ivals[v]
		if !ok {
			ivals[v] = &interval{v: v, start: pos, end: pos, fp: s.isFPReg(v)}
			return
		}
		if pos < iv.start {
			iv.start = pos
		}
		if pos > iv.end {
			iv.end = pos
		}
	}
	weigh := func(v target.Reg, b int) {
		if s.blockHeat == nil || !v.IsVirtual() {
			return
		}
		if iv, ok := ivals[v]; ok {
			if b < len(s.blockHeat) {
				iv.weight += s.blockHeat[b]
			}
			iv.weight++
		}
	}
	for b := 0; b < nb; b++ {
		end := n
		if b+1 < len(s.blockStart) {
			end = s.blockStart[b+1]
		}
		for v := range liveIn[b] {
			touch(v, s.blockStart[b])
		}
		for v := range liveOut[b] {
			touch(v, end-1)
		}
		for i := s.blockStart[b]; i < end; i++ {
			ub = instrUses(&s.code[i], ub[:0])
			for _, r := range ub {
				touch(r, i)
				weigh(r, b)
			}
			if d := instrDef(&s.code[i]); d != target.NoReg {
				touch(d, i)
				weigh(d, b)
			}
		}
	}

	// Call sites (which clobber caller-saved registers) and the values
	// live into any unwind handler block. Every block ends with a
	// terminator — never a call — so a value live out of a block whose
	// last call sits at position p is always touched at a position > p,
	// and the strict start <= p < end test below is sound even for
	// intervals wrapping a loop back edge.
	var callPos []int
	forceSpill := map[target.Reg]bool{}
	for i := range s.code {
		switch s.code[i].Op {
		case target.MCall, target.MCallInd, target.MCallExt:
			callPos = append(callPos, i)
		case target.MInvokePush:
			if h := int(s.code[i].Target); h <= nb {
				for v := range liveIn[h] {
					forceSpill[v] = true
				}
			}
		}
	}
	for _, iv := range ivals {
		j := sort.SearchInts(callPos, iv.start)
		iv.cross = j < len(callPos) && callPos[j] < iv.end
	}

	sorted := make([]*interval, 0, len(ivals))
	for _, iv := range ivals {
		sorted = append(sorted, iv)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].start != sorted[j].start {
			return sorted[i].start < sorted[j].start
		}
		return sorted[i].v < sorted[j].v
	})

	assigned := map[target.Reg]target.Reg{}
	slotOf := map[target.Reg]int32{}
	newSlot := func(v target.Reg) { slotOf[v] = int32(len(slotOf)) }

	calleeInt := append([]target.Reg(nil), s.desc.Allocatable...)
	calleeFP := append([]target.Reg(nil), s.desc.FPAllocatable...)
	callerInt := append([]target.Reg(nil), s.desc.CallerSaved...)
	callerFP := append([]target.Reg(nil), s.desc.FPCallerSaved...)
	callerSet := map[target.Reg]bool{}
	for _, r := range s.desc.CallerSaved {
		callerSet[r] = true
	}
	for _, r := range s.desc.FPCallerSaved {
		callerSet[r] = true
	}

	type activeEntry struct {
		iv  *interval
		reg target.Reg
	}
	var active []activeEntry

	// freeAt records, per register, the end position of its last owner.
	// A register in a pool is only guaranteed free after that point: safe
	// for the interval being scanned (which starts later), but not
	// automatically for an evicted victim that started earlier.
	freeAt := map[target.Reg]int{}
	release := func(r target.Reg) {
		switch {
		case callerSet[r] && r.IsFP():
			callerFP = append(callerFP, r)
		case callerSet[r]:
			callerInt = append(callerInt, r)
		case r.IsFP():
			calleeFP = append(calleeFP, r)
		default:
			calleeInt = append(calleeInt, r)
		}
	}
	expire := func(pos int) {
		keep := active[:0]
		for _, a := range active {
			if a.iv.end < pos {
				if a.iv.end > freeAt[a.reg] {
					freeAt[a.reg] = a.iv.end
				}
				release(a.reg)
			} else {
				keep = append(keep, a)
			}
		}
		active = keep
	}
	take := func(p *[]target.Reg) target.Reg {
		if len(*p) == 0 {
			return target.NoReg
		}
		r := (*p)[0]
		*p = (*p)[1:]
		return r
	}
	// takeFreeBefore pops the first pool register whose last owner ended
	// before pos — the legality condition for relocating an already-live
	// victim (registers never handed out are absent from freeAt and
	// always qualify).
	takeFreeBefore := func(p *[]target.Reg, pos int) target.Reg {
		for i, r := range *p {
			if e, used := freeAt[r]; used && e >= pos {
				continue
			}
			*p = append((*p)[:i], (*p)[i+1:]...)
			return r
		}
		return target.NoReg
	}

	usedSet := map[target.Reg]bool{}
	for _, iv := range sorted {
		if forceSpill[iv.v] {
			newSlot(iv.v)
			continue
		}
		expire(iv.start)
		// Pool preference: non-crossing intervals take caller-saved
		// registers first (calls clobber them anyway, so they are free);
		// crossing intervals may only use callee-saved ones.
		caller, callee := &callerInt, &calleeInt
		if iv.fp {
			caller, callee = &callerFP, &calleeFP
		}
		reg := target.NoReg
		if !iv.cross {
			reg = take(caller)
		}
		if reg == target.NoReg {
			reg = take(callee)
		}
		if reg != target.NoReg {
			assigned[iv.v] = reg
			usedSet[reg] = true
			active = append(active, activeEntry{iv: iv, reg: reg})
			continue
		}
		// Pools exhausted: an active interval of the same class yields its
		// register, provided that register is legal for the current
		// interval. Without profile heat the victim is the interval ending
		// furthest (classic linear scan); with it (tier 2) the victim is
		// the cheapest to spill — lowest heat-weighted use count — and only
		// if it is both cheaper than the current interval and ends later,
		// so hot-loop values keep their registers. (The ends-later filter
		// is a measured heuristic, not a soundness condition: evicting an
		// interval shorter than the current one trades a long register
		// occupancy for little gain.)
		victim := -1
		useWeight := s.evictByWeight
		for ai, a := range active {
			if a.reg.IsFP() != iv.fp {
				continue
			}
			if iv.cross && callerSet[a.reg] {
				continue
			}
			if !useWeight {
				if a.iv.end <= iv.end {
					continue
				}
				if victim == -1 || a.iv.end > active[victim].iv.end {
					victim = ai
				}
				continue
			}
			if a.iv.weight >= iv.weight || a.iv.end <= iv.end {
				continue
			}
			if victim == -1 || a.iv.weight < active[victim].iv.weight ||
				(a.iv.weight == active[victim].iv.weight && a.iv.end > active[victim].iv.end) {
				victim = ai
			}
		}
		if victim < 0 {
			newSlot(iv.v)
			continue
		}
		a := active[victim]
		assigned[iv.v] = a.reg
		active[victim] = activeEntry{iv: iv, reg: a.reg}
		// Second chance: a non-crossing victim may relocate into a
		// caller-saved register instead of spilling — but only one whose
		// previous owner died before the victim began. The pool invariant
		// (owners dead before the current position) is not enough here:
		// the victim has been live since a.iv.start < iv.start, and an
		// owner that died in between would overlap it.
		if !a.iv.cross {
			if reloc := takeFreeBefore(caller, a.iv.start); reloc != target.NoReg {
				assigned[a.iv.v] = reloc
				usedSet[reloc] = true
				active = append(active, activeEntry{iv: a.iv, reg: reloc})
				continue
			}
		}
		newSlot(a.iv.v)
		delete(assigned, a.iv.v)
	}

	s.spillBytes = int32(len(slotOf)) * 8
	// The prologue saves only the callee-saved registers actually used.
	for r := range usedSet {
		if !callerSet[r] {
			s.savedRegs = append(s.savedRegs, r)
		}
	}
	sort.Slice(s.savedRegs, func(i, j int) bool { return s.savedRegs[i] < s.savedRegs[j] })
	rewriteWithSlots(s, slotOf, assigned)
}

// allocBest runs the linear scan twice on a profiled function — once
// with heat-weighted eviction, once with the classic furthest-end rule —
// and keeps whichever allocation emits the cheaper heat-weighted spill
// traffic (spillCost). Weighted eviction wins big on functions dominated
// by one hot loop, but on flat profiles its weight ties resolve
// arbitrarily and can cost more than the classic rule saves; measuring
// both settles it per function. The extra pass runs only on the tier-2
// path, where translation is background work.
func allocBest(s *selector) {
	code0 := append([]target.MInstr(nil), s.code...)
	bs0 := append([]int(nil), s.blockStart...)

	s.evictByWeight = true
	allocLinear(s)
	wCode, wBS := s.code, s.blockStart
	wBytes, wSaved := s.spillBytes, s.savedRegs
	wLoads, wStores, wCost := s.nSpillLoads, s.nSpillStores, s.spillCost

	s.code, s.blockStart = code0, bs0
	s.spillBytes, s.savedRegs = 0, nil
	s.nSpillLoads, s.nSpillStores, s.spillCost = 0, 0, 0
	s.evictByWeight = false
	allocLinear(s)

	if wCost < s.spillCost {
		s.code, s.blockStart = wCode, wBS
		s.spillBytes, s.savedRegs = wBytes, wSaved
		s.nSpillLoads, s.nSpillStores, s.spillCost = wLoads, wStores, wCost
	}
}
