package codegen

import (
	"llva/internal/target"
)

// addFrame prepends the prologue and appends the epilogue once the final
// frame size is known (allocas were preallocated during selection; spill
// slots were added by the register allocator).
func addFrame(s *selector) {
	d := s.desc
	if d.StackArgs {
		addFrameVX86(s)
	} else {
		addFrameVSPARC(s)
	}
}

func addFrameVX86(s *selector) {
	d := s.desc
	frame := int64(s.allocaBytes + s.spillBytes)
	frame = (frame + 15) &^ 15

	prologue := []target.MInstr{
		{Op: target.MPush, Rs1: d.FP},
		{Op: target.MMovRR, Rd: d.FP, Rs1: d.SP},
	}
	if frame > 0 {
		prologue = append(prologue, target.MInstr{Op: target.MAdjSP, Imm: -frame})
	}
	epilogue := []target.MInstr{
		{Op: target.MMovRR, Rd: d.SP, Rs1: d.FP},
		{Op: target.MPop, Rd: d.FP},
		{Op: target.MRet},
	}
	s.code = append(prologue, s.code...)
	for i := range s.blockStart {
		s.blockStart[i] += len(prologue)
	}
	// blockStart's final entry is the epilogue label, pointing at the
	// first epilogue instruction.
	s.code = append(s.code, epilogue...)
}

func addFrameVSPARC(s *selector) {
	d := s.desc
	frame := int64(s.saveArea) + int64(s.allocaBytes) + int64(s.spillBytes) +
		int64(8*s.maxStackArgs)
	frame = (frame + 15) &^ 15

	oldFPTmp := d.Scratch[1] // r12: free at function entry and exit

	var prologue []target.MInstr
	prologue = append(prologue, target.MInstr{Op: target.MMovRR, Rd: oldFPTmp, Rs1: d.FP})
	prologue = append(prologue, target.MInstr{Op: target.MAdjSP, Imm: -frame})
	// FP <- SP + frame (the caller's SP)
	prologue = append(prologue, synthImmInto(target.Reg(31), frame, d)...)
	prologue = append(prologue, target.MInstr{Op: target.MALU, Alu: target.AAdd,
		Rd: d.FP, Rs1: d.SP, Rs2: 31, Size: 8})
	// frameAccess emits a save-area access, synthesizing the address via
	// the assembler temporary when the displacement exceeds disp9 range
	// (save slots can reach -288 with many callee-saved registers).
	frameAccess := func(list []target.MInstr, op target.MOp, r target.Reg, disp int32) []target.MInstr {
		if disp >= -256 && disp <= 255 {
			mi := target.MInstr{Op: op, Base: d.FP, Index: target.NoReg,
				Disp: disp, Size: 8, FP: r.IsFP()}
			if op == target.MLoad {
				mi.Rd = r
			} else {
				mi.Rs1 = r
			}
			return append(list, mi)
		}
		list = append(list, synthImmInto(target.Reg(31), int64(disp), d)...)
		list = append(list, target.MInstr{Op: target.MALU, Alu: target.AAdd,
			Rd: 31, Rs1: d.FP, Rs2: 31, Size: 8})
		mi := target.MInstr{Op: op, Base: 31, Index: target.NoReg, Size: 8, FP: r.IsFP()}
		if op == target.MLoad {
			mi.Rd = r
		} else {
			mi.Rs1 = r
		}
		return append(list, mi)
	}

	// Save return address and the caller's FP at the top of the frame.
	prologue = frameAccess(prologue, target.MStore, target.Reg(3), -8) // RA
	prologue = frameAccess(prologue, target.MStore, oldFPTmp, -16)
	// Callee-saved registers actually used by this function.
	for i, r := range s.savedRegs {
		prologue = frameAccess(prologue, target.MStore, r, int32(-24-8*i))
	}

	var epilogue []target.MInstr
	for i, r := range s.savedRegs {
		epilogue = frameAccess(epilogue, target.MLoad, r, int32(-24-8*i))
	}
	epilogue = frameAccess(epilogue, target.MLoad, target.Reg(3), -8)
	epilogue = frameAccess(epilogue, target.MLoad, oldFPTmp, -16)
	epilogue = append(epilogue,
		target.MInstr{Op: target.MMovRR, Rd: d.SP, Rs1: d.FP},
		target.MInstr{Op: target.MMovRR, Rd: d.FP, Rs1: oldFPTmp},
		target.MInstr{Op: target.MRet},
	)

	s.code = append(prologue, s.code...)
	for i := range s.blockStart {
		s.blockStart[i] += len(prologue)
	}
	s.code = append(s.code, epilogue...)
}
