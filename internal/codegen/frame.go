package codegen

import (
	"llva/internal/target"
)

// addFrame prepends the prologue and appends the epilogue once the final
// frame size is known (allocas were preallocated during selection; spill
// slots were added by the register allocator).
func addFrame(s *selector) {
	d := s.desc
	if d.StackArgs {
		addFrameVX86(s)
	} else {
		addFrameVSPARC(s)
	}
}

func addFrameVX86(s *selector) {
	d := s.desc
	frame := int64(s.saveArea) + int64(s.allocaBytes+s.spillBytes)
	frame = (frame + 15) &^ 15

	prologue := []target.MInstr{
		{Op: target.MPush, Rs1: d.FP},
		{Op: target.MMovRR, Rd: d.FP, Rs1: d.SP},
	}
	if frame > 0 {
		prologue = append(prologue, target.MInstr{Op: target.MAdjSP, Imm: -frame})
	}
	// Callee-saved registers actually used by this function, in the save
	// area directly below FP.
	for i, r := range s.savedRegs {
		prologue = frameInstrs(prologue, d, target.MStore, r, int32(-8*(i+1)), r.IsFP())
	}
	var epilogue []target.MInstr
	for i, r := range s.savedRegs {
		epilogue = frameInstrs(epilogue, d, target.MLoad, r, int32(-8*(i+1)), r.IsFP())
	}
	epilogue = append(epilogue,
		target.MInstr{Op: target.MMovRR, Rd: d.SP, Rs1: d.FP},
		target.MInstr{Op: target.MPop, Rd: d.FP},
		target.MInstr{Op: target.MRet},
	)
	s.code = append(prologue, s.code...)
	for i := range s.blockStart {
		s.blockStart[i] += len(prologue)
	}
	// blockStart's final entry is the epilogue label, pointing at the
	// first epilogue instruction.
	s.code = append(s.code, epilogue...)
}

func addFrameVSPARC(s *selector) {
	d := s.desc
	frame := int64(s.saveArea) + int64(s.allocaBytes) + int64(s.spillBytes) +
		int64(8*s.maxStackArgs)
	frame = (frame + 15) &^ 15

	oldFPTmp := d.Scratch[1] // r12: free at function entry and exit

	var prologue []target.MInstr
	prologue = append(prologue, target.MInstr{Op: target.MMovRR, Rd: oldFPTmp, Rs1: d.FP})
	prologue = append(prologue, target.MInstr{Op: target.MAdjSP, Imm: -frame})
	// FP <- SP + frame (the caller's SP)
	prologue = append(prologue, synthImmInto(target.Reg(31), frame, d)...)
	prologue = append(prologue, target.MInstr{Op: target.MALU, Alu: target.AAdd,
		Rd: d.FP, Rs1: d.SP, Rs2: 31, Size: 8})
	// Save return address and the caller's FP at the top of the frame
	// (frameInstrs synthesizes the address via the assembler temporary
	// when a save slot exceeds disp9 range; slots can reach -288 with
	// many callee-saved registers).
	prologue = frameInstrs(prologue, d, target.MStore, target.Reg(3), -8, false) // RA
	prologue = frameInstrs(prologue, d, target.MStore, oldFPTmp, -16, false)
	// Callee-saved registers actually used by this function.
	for i, r := range s.savedRegs {
		prologue = frameInstrs(prologue, d, target.MStore, r, int32(-24-8*i), r.IsFP())
	}

	var epilogue []target.MInstr
	for i, r := range s.savedRegs {
		epilogue = frameInstrs(epilogue, d, target.MLoad, r, int32(-24-8*i), r.IsFP())
	}
	epilogue = frameInstrs(epilogue, d, target.MLoad, target.Reg(3), -8, false)
	epilogue = frameInstrs(epilogue, d, target.MLoad, oldFPTmp, -16, false)
	epilogue = append(epilogue,
		target.MInstr{Op: target.MMovRR, Rd: d.SP, Rs1: d.FP},
		target.MInstr{Op: target.MMovRR, Rd: d.FP, Rs1: oldFPTmp},
		target.MInstr{Op: target.MRet},
	)

	s.code = append(prologue, s.code...)
	for i := range s.blockStart {
		s.blockStart[i] += len(prologue)
	}
	s.code = append(s.code, epilogue...)
}
