package prof

import (
	"fmt"
	"io"
	"time"

	"llva/internal/telemetry"
)

// The trap-time flight recorder's output: when a run dies on an
// unhandled trap, the machine snapshots everything a post-mortem needs
// — the register file, the virtual backtrace, a disassembly window
// around the faulting PC, and the tail of the telemetry event ring —
// into a CrashReport. The snapshot is built only on the trap path, so
// it costs nothing in steady state.

// RegVal is one named register and its value at trap time.
type RegVal struct {
	Name string `json:"name"`
	Val  uint64 `json:"val"`
}

// Frame is one virtual call-stack frame, outermost first.
type Frame struct {
	Func string `json:"func"` // "?" when the PC maps to no known function
	PC   uint64 `json:"pc"`   // faulting PC (leaf) or return address (callers)
}

// DisasmLine is one decoded instruction of the fault window.
type DisasmLine struct {
	PC    uint64 `json:"pc"`
	Text  string `json:"text"`
	Fault bool   `json:"fault"` // this is the faulting instruction
}

// CrashReport is the machine state snapshot taken when a run ends in an
// unhandled trap.
type CrashReport struct {
	Target   string `json:"target"`
	TrapNum  uint64 `json:"trap"`
	PC       uint64 `json:"pc"`
	Detail   string `json:"detail"`
	Mnemonic string `json:"mnemonic,omitempty"`
	Func     string `json:"func,omitempty"`      // function containing the faulting PC
	FuncBase uint64 `json:"func_base,omitempty"` // code address of Func

	Instrs uint64 `json:"instrs"` // retired virtual instructions at trap time
	Cycles uint64 `json:"cycles"` // simulated cycles at trap time

	Regs      []RegVal          `json:"regs"`
	Backtrace []Frame           `json:"backtrace"`
	Disasm    []DisasmLine      `json:"disasm"`
	Events    []telemetry.Event `json:"events,omitempty"` // ring tail, oldest first
}

// Render writes the report as readable text (the llva-run crash dump).
func (c *CrashReport) Render(w io.Writer) error {
	where := fmt.Sprintf("pc=0x%x", c.PC)
	if c.Func != "" {
		where = fmt.Sprintf("%%%s+0x%x (pc=0x%x)", c.Func, c.funcOff(), c.PC)
	}
	if _, err := fmt.Fprintf(w, "==== virtual machine crash report ====\n"+
		"trap %d at %s on %s: %s\n", c.TrapNum, where, c.Target, c.Detail); err != nil {
		return err
	}
	if c.Mnemonic != "" {
		fmt.Fprintf(w, "faulting instruction: %s\n", c.Mnemonic)
	}
	fmt.Fprintf(w, "retired: %d instructions, %d cycles\n", c.Instrs, c.Cycles)

	fmt.Fprintf(w, "\nvirtual backtrace (outermost first):\n")
	if len(c.Backtrace) == 0 {
		fmt.Fprintf(w, "  (no frames recorded — call tracking was off)\n")
	}
	for i, f := range c.Backtrace {
		marker := "called from"
		if i == len(c.Backtrace)-1 {
			marker = "faulted in"
		}
		fmt.Fprintf(w, "  #%d %-11s %%%-20s pc=0x%x\n", i, marker, f.Func, f.PC)
	}

	fmt.Fprintf(w, "\nregisters (non-zero):\n")
	col := 0
	for _, r := range c.Regs {
		fmt.Fprintf(w, "  %-4s= 0x%-16x", r.Name, r.Val)
		if col++; col%3 == 0 {
			fmt.Fprintln(w)
		}
	}
	if col%3 != 0 {
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\ndisassembly around the fault:\n")
	for _, d := range c.Disasm {
		mark := "   "
		if d.Fault {
			mark = "=> "
		}
		fmt.Fprintf(w, "  %s0x%08x  %s\n", mark, d.PC, d.Text)
	}

	if len(c.Events) > 0 {
		fmt.Fprintf(w, "\nlast %d engine events:\n", len(c.Events))
		for _, e := range c.Events {
			at := time.Unix(0, e.Time).UTC().Format("15:04:05.000000")
			fmt.Fprintf(w, "  %s  %-14s %s", at, e.Kind, e.Name)
			if e.Value != 0 {
				fmt.Fprintf(w, " (%d)", e.Value)
			}
			fmt.Fprintln(w)
		}
	}
	_, err := fmt.Fprintf(w, "==== end crash report ====\n")
	return err
}

// funcOff is the faulting PC's offset into its function; 0 when the
// function base is unknown (FuncBase unset).
func (c *CrashReport) funcOff() uint64 {
	if c.FuncBase == 0 || c.PC < c.FuncBase {
		return 0
	}
	return c.PC - c.FuncBase
}
