package prof

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"llva/internal/telemetry"
)

func TestProfilerAggregation(t *testing.T) {
	p := NewProfiler(100)
	if p.Rate() != 100 {
		t.Fatalf("Rate() = %d, want 100", p.Rate())
	}
	// main->inner twice, main alone once, recursive main->f->f once.
	p.AddSample([]string{"main", "inner"}, 0x10)
	p.AddSample([]string{"main", "inner"}, 0x10)
	p.AddSample([]string{"main"}, 0)
	p.AddSample([]string{"main", "f", "f"}, 0x20)
	p.AddSample(nil, 0) // dropped
	if p.Total() != 4 {
		t.Fatalf("Total() = %d, want 4", p.Total())
	}
	stats := map[string]FuncStat{}
	for _, s := range p.Funcs() {
		stats[s.Name] = s
	}
	if s := stats["main"]; s.Incl != 4 || s.Excl != 1 {
		t.Errorf("main: incl=%d excl=%d, want 4/1", s.Incl, s.Excl)
	}
	if s := stats["inner"]; s.Incl != 2 || s.Excl != 2 {
		t.Errorf("inner: incl=%d excl=%d, want 2/2", s.Incl, s.Excl)
	}
	// Recursion must not double-count inclusive samples.
	if s := stats["f"]; s.Incl != 1 || s.Excl != 1 {
		t.Errorf("f: incl=%d excl=%d, want 1/1 (recursion deduped)", s.Incl, s.Excl)
	}
	// Hottest-first order with name tiebreak.
	fs := p.Funcs()
	if fs[0].Name != "inner" {
		t.Errorf("hottest = %q, want inner", fs[0].Name)
	}
}

func TestWriteFoldedDeterministic(t *testing.T) {
	samples := [][]string{
		{"main", "a"}, {"main", "b"}, {"main"}, {"main", "a"},
	}
	render := func(order []int) string {
		p := NewProfiler(1)
		for _, i := range order {
			p.AddSample(samples[i], 0)
		}
		var b strings.Builder
		if err := p.WriteFolded(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	got := render([]int{0, 1, 2, 3})
	if got != render([]int{3, 2, 1, 0}) {
		t.Fatalf("folded output depends on insertion order:\n%s", got)
	}
	want := "main 1\nmain;a 2\nmain;b 1\n"
	if got != want {
		t.Fatalf("folded = %q, want %q", got, want)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	p := NewProfiler(64)
	p.AddSample([]string{"main", "hot"}, 0x40)
	p.AddSample([]string{"main", "hot"}, 0x40)
	p.AddSample([]string{"main"}, 0x8)
	a := p.Artifact("prog", "vx86")
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("llva-guest-profile v1\n")) {
		t.Fatalf("artifact header missing: %q", data[:32])
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", a, back)
	}
	// Encoding is byte-deterministic for the same sample population.
	data2, err := p.Artifact("prog", "vx86").Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("artifact encoding is not deterministic")
	}
	if hot := back.HotFuncs(0.5); len(hot) != 1 || hot[0].Name != "hot" {
		t.Errorf("HotFuncs(0.5) = %+v, want [hot]", hot)
	}
	if bc := back.BlockCounts("hot"); bc[0x40] != 2 {
		t.Errorf("BlockCounts(hot) = %v, want {0x40:2}", bc)
	}
}

func TestDecodeArtifactRejects(t *testing.T) {
	good, err := NewProfiler(1).Artifact("m", "t").Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"no header":     []byte("no newline here"),
		"wrong magic":   []byte("some-other-format v1\n{}"),
		"wrong version": bytes.Replace(good, []byte(" v1\n"), []byte(" v9\n"), 1),
		"corrupt body":  []byte("llva-guest-profile v1\n{not json"),
	}
	for name, data := range cases {
		if _, err := DecodeArtifact(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	if _, err := DecodeArtifact(good); err != nil {
		t.Errorf("control decode failed: %v", err)
	}
}

func TestTracerChromeJSON(t *testing.T) {
	tr := NewTracer()
	tr.NameProcess(1, "session 1")
	tr.NameThread(1, 0, "guest")
	end := tr.Begin(1, 0, "guest", "run:main", map[string]any{"session": 1})
	tr.Instant(1, 0, "guest", "cancel:main", nil)
	end()
	if tr.Spans() != 1 {
		t.Fatalf("Spans() = %d, want 1", tr.Spans())
	}
	var b bytes.Buffer
	if err := tr.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.Unit)
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["X"] != 1 || phases["i"] != 1 || phases["M"] != 2 {
		t.Errorf("phase counts = %v, want X:1 i:1 M:2", phases)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.NameProcess(0, "x")
	tr.NameThread(0, 0, "y")
	end := tr.Begin(0, 0, "c", "n", nil)
	end()
	tr.Instant(0, 0, "c", "n", nil)
	if tr.Spans() != 0 {
		t.Fatal("nil tracer recorded spans")
	}
	var b bytes.Buffer
	if err := tr.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("nil tracer wrote invalid JSON: %s", b.String())
	}
}

func TestCrashReportRender(t *testing.T) {
	c := &CrashReport{
		Target:   "vx86",
		TrapNum:  5,
		PC:       0x1234,
		Detail:   "load outside data segment",
		Mnemonic: "mload.64 r1, [r2+0]",
		Func:     "bad_load",
		FuncBase: 0x1200,
		Instrs:   4242,
		Cycles:   9000,
		Regs:     []RegVal{{Name: "r1", Val: 7}, {Name: "sp", Val: 0xff00}},
		Backtrace: []Frame{
			{Func: "main", PC: 0x100},
			{Func: "bad_load", PC: 0x1234},
		},
		Disasm: []DisasmLine{
			{PC: 0x1230, Text: "mov r2, 0"},
			{PC: 0x1234, Text: "mload.64 r1, [r2+0]", Fault: true},
		},
		Events: []telemetry.Event{{Kind: telemetry.EvTrapTaken, Name: "oops", Value: 5}},
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"trap 5 at %bad_load+0x34 (pc=0x1234)",
		"faulting instruction: mload.64",
		"faulted in",
		"%main",
		"r1  = 0x7",
		"=> 0x00001234",
		"TrapTaken",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestArtifactMerge(t *testing.T) {
	p1 := NewProfiler(64)
	p1.AddSample([]string{"main", "hot"}, 0x40)
	p1.AddSample([]string{"main"}, 0x8)
	p2 := NewProfiler(64)
	p2.AddSample([]string{"main", "hot"}, 0x40)
	p2.AddSample([]string{"main", "cold"}, 0x10)
	a := p1.Artifact("prog", "vx86")
	b := p2.Artifact("prog", "vx86")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total != 4 {
		t.Errorf("merged Total = %d, want 4", a.Total)
	}
	stats := map[string]FuncStat{}
	for _, s := range a.Funcs {
		stats[s.Name] = s
	}
	if s := stats["hot"]; s.Incl != 2 || s.Excl != 2 {
		t.Errorf("hot: incl=%d excl=%d, want 2/2", s.Incl, s.Excl)
	}
	if s := stats["main"]; s.Incl != 4 || s.Excl != 1 {
		t.Errorf("main: incl=%d excl=%d, want 4/1", s.Incl, s.Excl)
	}
	if bc := a.BlockCounts("hot"); bc[0x40] != 2 {
		t.Errorf("merged BlockCounts(hot) = %v, want {0x40:2}", bc)
	}
	// The merged artifact equals the one a single profiler over both
	// sample populations would produce: byte-identical encoding.
	p3 := NewProfiler(64)
	p3.AddSample([]string{"main", "hot"}, 0x40)
	p3.AddSample([]string{"main"}, 0x8)
	p3.AddSample([]string{"main", "hot"}, 0x40)
	p3.AddSample([]string{"main", "cold"}, 0x10)
	want, err := p3.Artifact("prog", "vx86").Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged encoding differs from single-profiler encoding:\n%s\nvs\n%s", got, want)
	}
	// Incompatible artifacts are rejected, left half untouched.
	for name, bad := range map[string]*Artifact{
		"module":  {Version: ArtifactVersion, Module: "other", Target: "vx86", Rate: 64},
		"target":  {Version: ArtifactVersion, Module: "prog", Target: "vsparc", Rate: 64},
		"rate":    {Version: ArtifactVersion, Module: "prog", Target: "vx86", Rate: 128},
		"version": {Version: ArtifactVersion + 1, Module: "prog", Target: "vx86", Rate: 64},
	} {
		if err := a.Merge(bad); err == nil {
			t.Errorf("%s mismatch: Merge succeeded, want error", name)
		}
	}
}
