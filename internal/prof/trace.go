package prof

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// Span tracing for the engine's own lifecycle: Session load, verify,
// per-function translate, install, run, cancel, and the pipeline's
// background workers. Spans are exported in the Chrome trace_event
// format (the "JSON Array Format" with a traceEvents wrapper), which
// Perfetto (ui.perfetto.dev) and chrome://tracing load directly:
// sessions map to trace "processes" (pid), concurrent actors within a
// session to "threads" (tid).

// chromeEvent is one trace_event record. Phase "X" is a complete span
// (ts + dur), "i" an instant, "M" metadata (process/thread names).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"` // microseconds, "X" only
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Tracer collects spans. All methods are safe for concurrent use and
// safe on a nil receiver (no-ops), so instrumentation sites need no
// "is tracing on?" branches.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []chromeEvent
	named  map[[2]int]bool // (pid,tid<0 for process) already named
}

// NewTracer creates an empty tracer; timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), named: make(map[[2]int]bool)}
}

func (t *Tracer) us(at time.Time) float64 {
	return float64(at.Sub(t.start).Nanoseconds()) / 1e3
}

// NameProcess labels a pid lane in the viewer (e.g. "session 3").
// The first name for a pid wins.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := [2]int{pid, -1}
	if t.named[k] {
		return
	}
	t.named[k] = true
	t.events = append(t.events, chromeEvent{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name},
	})
}

// NameThread labels a (pid, tid) lane in the viewer (e.g. "worker 2").
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := [2]int{pid, tid}
	if t.named[k] {
		return
	}
	t.named[k] = true
	t.events = append(t.events, chromeEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// Begin opens a span and returns its closer; the span is recorded as a
// complete ("X") event when the closer runs. Args may be nil.
func (t *Tracer) Begin(pid, tid int, cat, name string, args map[string]any) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		end := time.Now()
		ev := chromeEvent{
			Name: name, Cat: cat, Ph: "X",
			TS:  t.us(start),
			Dur: float64(end.Sub(start).Nanoseconds()) / 1e3,
			PID: pid, TID: tid, Args: args,
		}
		t.mu.Lock()
		t.events = append(t.events, ev)
		t.mu.Unlock()
	}
}

// Instant records a zero-duration marker (thread-scoped).
func (t *Tracer) Instant(pid, tid int, cat, name string, args map[string]any) {
	if t == nil {
		return
	}
	ev := chromeEvent{
		Name: name, Cat: cat, Ph: "i", S: "t",
		TS:  t.us(time.Now()),
		PID: pid, TID: tid, Args: args,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Spans returns the number of recorded complete ("X") spans.
func (t *Tracer) Spans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.events {
		if t.events[i].Ph == "X" {
			n++
		}
	}
	return n
}

// chromeTrace is the on-the-wire wrapper Perfetto expects.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeJSON writes the collected events as a Chrome trace_event
// JSON document. The tracer stays usable afterwards; the write is a
// snapshot.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	var evs []chromeEvent
	if t != nil {
		t.mu.Lock()
		evs = append(evs, t.events...)
		t.mu.Unlock()
	}
	if evs == nil {
		evs = []chromeEvent{} // an empty trace is still a valid document
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// Handler serves the trace snapshot (the /debug/llva/trace endpoint).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteChromeJSON(w)
	})
}
