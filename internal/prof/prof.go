// Package prof is the guest-level observability layer: where
// internal/telemetry observes the *host* (what the execution engine
// did), prof observes the *guest* — where the virtual program spends
// its virtual cycles, what the engine was doing when, and what the
// machine looked like when it died.
//
// Three pillars:
//
//   - Profiler: a virtual-PC sampling profiler. The machine samples at
//     basic-block boundaries every Rate retired virtual instructions —
//     a deterministic trigger derived from the instruction stream, not
//     the wall clock — capturing the virtual PC and the virtual call
//     stack. Aggregation yields per-function inclusive/exclusive
//     hotness and per-block counts, exported as folded-stack text
//     (flamegraph-ready) and as a versioned artifact the tier-2
//     translator can consume (ROADMAP: superblocks + trace layout).
//
//   - Tracer: begin/end span tracing of the Session lifecycle and the
//     translation pipeline, exported as Chrome trace_event JSON that
//     loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
//   - CrashReport: the trap-time flight recorder's rendering — the
//     unified register file, the virtual backtrace, a disassembly
//     window around the faulting PC, and the tail of the telemetry
//     event ring, as a readable post-mortem.
//
// The package is a leaf: the machine and LLEE depend on it, never the
// reverse, so it can also serve tools that have no machine at all.
package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// DefaultRate is the default sampling interval in retired virtual
// instructions. At the suite's simulated clock (~1 GHz) this is one
// sample per ~4µs of virtual time — dense enough to attribute hotness
// in short benchmark runs, sparse enough that the per-block counter
// check stays invisible in the wall clock.
const DefaultRate = 4096

// FuncStat is one function's aggregated hotness.
type FuncStat struct {
	Name string `json:"name"`
	// Incl counts samples with the function anywhere on the virtual
	// stack (de-duplicated, so recursion does not double-count).
	Incl uint64 `json:"incl"`
	// Excl counts samples whose leaf frame was in the function.
	Excl uint64 `json:"excl"`
}

// Profiler aggregates virtual-PC samples. It is safe for concurrent
// use: many sessions (each on its own machine goroutine) may share one
// Profiler, and exporters may read while runs are still sampling.
type Profiler struct {
	rate uint64

	mu sync.Mutex
	// folded maps "root;caller;leaf" stacks to sample counts.
	folded map[string]uint64
	funcs  map[string]*FuncStat
	// blocks maps function -> block entry offset (from the function's
	// code start) -> samples landing in that block.
	blocks map[string]map[uint64]uint64
	total  uint64
}

// NewProfiler creates a profiler sampling every rate retired virtual
// instructions (rate <= 0 selects DefaultRate).
func NewProfiler(rate int) *Profiler {
	if rate <= 0 {
		rate = DefaultRate
	}
	return &Profiler{
		rate:   uint64(rate),
		folded: make(map[string]uint64),
		funcs:  make(map[string]*FuncStat),
		blocks: make(map[string]map[uint64]uint64),
	}
}

// Rate returns the sampling interval in retired virtual instructions.
func (p *Profiler) Rate() uint64 { return p.rate }

// AddSample records one sample: stack is the virtual call stack
// root-first with the interrupted function last, and off is the
// sampled block's entry offset from the leaf function's code start.
// Empty stacks (a sample before any function was attributable) are
// dropped.
func (p *Profiler) AddSample(stack []string, off uint64) {
	if len(stack) == 0 {
		return
	}
	leaf := stack[len(stack)-1]
	key := strings.Join(stack, ";")
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total++
	p.folded[key]++
	seen := make(map[string]bool, len(stack))
	for _, fn := range stack {
		if seen[fn] {
			continue
		}
		seen[fn] = true
		p.stat(fn).Incl++
	}
	p.stat(leaf).Excl++
	bm := p.blocks[leaf]
	if bm == nil {
		bm = make(map[uint64]uint64)
		p.blocks[leaf] = bm
	}
	bm[off]++
}

// stat returns the record for fn; callers hold p.mu.
func (p *Profiler) stat(fn string) *FuncStat {
	s := p.funcs[fn]
	if s == nil {
		s = &FuncStat{Name: fn}
		p.funcs[fn] = s
	}
	return s
}

// Total returns the number of samples recorded.
func (p *Profiler) Total() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Funcs returns per-function hotness sorted by exclusive count
// (descending), ties broken by name for determinism.
func (p *Profiler) Funcs() []FuncStat {
	p.mu.Lock()
	out := make([]FuncStat, 0, len(p.funcs))
	for _, s := range p.funcs {
		out = append(out, *s)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Excl != out[j].Excl {
			return out[i].Excl > out[j].Excl
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteFolded writes the samples in folded-stack format — one
// "root;caller;leaf count" line per distinct stack, sorted — the input
// format of flamegraph.pl, inferno, and speedscope.
func (p *Profiler) WriteFolded(w io.Writer) error {
	p.mu.Lock()
	keys := make([]string, 0, len(p.folded))
	for k := range p.folded {
		keys = append(keys, k)
	}
	counts := make(map[string]uint64, len(p.folded))
	for k, v := range p.folded {
		counts[k] = v
	}
	p.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, counts[k]); err != nil {
			return err
		}
	}
	return nil
}

// WriteReport writes a human-readable hot-function table: exclusive and
// inclusive sample counts with percentages of the total.
func (p *Profiler) WriteReport(w io.Writer) error {
	total := p.Total()
	if total == 0 {
		_, err := fmt.Fprintln(w, "prof: no samples")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-28s %10s %7s %10s %7s\n",
		"FUNCTION", "EXCL", "EXCL%", "INCL", "INCL%"); err != nil {
		return err
	}
	for _, s := range p.Funcs() {
		if _, err := fmt.Fprintf(w, "%-28s %10d %6.1f%% %10d %6.1f%%\n",
			s.Name, s.Excl, 100*float64(s.Excl)/float64(total),
			s.Incl, 100*float64(s.Incl)/float64(total)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "total: %d samples, 1 per %d retired virtual instructions\n",
		total, p.rate)
	return err
}
