package prof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// The persisted profile artifact: a guest hotness profile in a stable,
// versioned format the tier-2 optimizing translator can consume without
// talking to a live Profiler. The on-disk layout is a magic+version
// header line followed by indented JSON, so a cache entry is both
// machine-checkable and readable with a pager.

// artifactMagic prefixes every serialized artifact; the version is part
// of the header line so a decoder rejects future formats before parsing.
const artifactMagic = "llva-guest-profile"

// ArtifactVersion is the current artifact format version. Bump it when
// the JSON body changes incompatibly; decoders reject other versions.
const ArtifactVersion = 1

// StackCount is one folded virtual stack and its sample count.
type StackCount struct {
	Stack string `json:"stack"` // "root;caller;leaf"
	Count uint64 `json:"count"`
}

// BlockCount is one sampled basic block, identified by its entry
// offset from the owning function's code start — stable across runs of
// the same translation, unlike absolute code addresses.
type BlockCount struct {
	Func  string `json:"func"`
	Off   uint64 `json:"off"`
	Count uint64 `json:"count"`
}

// Artifact is the serializable form of a guest profile.
type Artifact struct {
	Version int    `json:"version"`
	Module  string `json:"module"`
	Target  string `json:"target"`
	Rate    uint64 `json:"rate"` // retired virtual instructions per sample
	Total   uint64 `json:"total_samples"`

	Funcs  []FuncStat   `json:"funcs"`
	Stacks []StackCount `json:"stacks"`
	Blocks []BlockCount `json:"blocks"`
}

// Artifact snapshots the profiler into the versioned exchange form.
// Every slice is sorted, so identical sample populations serialize
// byte-identically.
func (p *Profiler) Artifact(module, target string) *Artifact {
	a := &Artifact{
		Version: ArtifactVersion,
		Module:  module,
		Target:  target,
		Rate:    p.rate,
		Funcs:   p.Funcs(),
	}
	p.mu.Lock()
	a.Total = p.total
	for k, v := range p.folded {
		a.Stacks = append(a.Stacks, StackCount{Stack: k, Count: v})
	}
	for fn, bm := range p.blocks {
		for off, n := range bm {
			a.Blocks = append(a.Blocks, BlockCount{Func: fn, Off: off, Count: n})
		}
	}
	p.mu.Unlock()
	sort.Slice(a.Stacks, func(i, j int) bool { return a.Stacks[i].Stack < a.Stacks[j].Stack })
	sort.Slice(a.Blocks, func(i, j int) bool {
		if a.Blocks[i].Func != a.Blocks[j].Func {
			return a.Blocks[i].Func < a.Blocks[j].Func
		}
		return a.Blocks[i].Off < a.Blocks[j].Off
	})
	return a
}

// Encode serializes the artifact (header line + JSON body).
func (a *Artifact) Encode() ([]byte, error) {
	body, err := json.MarshalIndent(a, "", " ")
	if err != nil {
		return nil, err
	}
	head := fmt.Sprintf("%s v%d\n", artifactMagic, a.Version)
	return append([]byte(head), body...), nil
}

// DecodeArtifact parses a serialized artifact, rejecting unknown
// formats and versions before touching the body.
func DecodeArtifact(data []byte) (*Artifact, error) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return nil, fmt.Errorf("prof: truncated profile artifact")
	}
	head := string(data[:i])
	var version int
	if _, err := fmt.Sscanf(head, artifactMagic+" v%d", &version); err != nil {
		return nil, fmt.Errorf("prof: not a guest profile artifact (header %q)", head)
	}
	if version != ArtifactVersion {
		return nil, fmt.Errorf("prof: unsupported profile artifact version %d (have %d)",
			version, ArtifactVersion)
	}
	var a Artifact
	if err := json.Unmarshal(data[i+1:], &a); err != nil {
		return nil, fmt.Errorf("prof: corrupt profile artifact: %w", err)
	}
	if a.Version != version {
		return nil, fmt.Errorf("prof: artifact header/body version mismatch (%d vs %d)",
			version, a.Version)
	}
	return &a, nil
}

// Merge folds b's samples into a: totals and per-function, per-stack
// and per-block counts are summed, so profiles from repeated runs
// accumulate instead of the last run winning. Both artifacts must be
// the same version and describe the same module, target and sampling
// rate — merging across those boundaries would mix incomparable
// numbers, so it is rejected. All slices are re-sorted, preserving the
// byte-identical-serialization property.
func (a *Artifact) Merge(b *Artifact) error {
	if b.Version != a.Version {
		return fmt.Errorf("prof: cannot merge artifact version %d into %d", b.Version, a.Version)
	}
	if b.Module != a.Module || b.Target != a.Target {
		return fmt.Errorf("prof: cannot merge profile of %s/%s into %s/%s",
			b.Module, b.Target, a.Module, a.Target)
	}
	if b.Rate != a.Rate {
		return fmt.Errorf("prof: cannot merge profiles with different sampling rates (%d vs %d)",
			b.Rate, a.Rate)
	}
	a.Total += b.Total

	funcs := make(map[string]int, len(a.Funcs))
	for i, s := range a.Funcs {
		funcs[s.Name] = i
	}
	for _, s := range b.Funcs {
		if i, ok := funcs[s.Name]; ok {
			a.Funcs[i].Incl += s.Incl
			a.Funcs[i].Excl += s.Excl
		} else {
			funcs[s.Name] = len(a.Funcs)
			a.Funcs = append(a.Funcs, s)
		}
	}
	sort.Slice(a.Funcs, func(i, j int) bool {
		if a.Funcs[i].Excl != a.Funcs[j].Excl {
			return a.Funcs[i].Excl > a.Funcs[j].Excl
		}
		return a.Funcs[i].Name < a.Funcs[j].Name
	})

	stacks := make(map[string]int, len(a.Stacks))
	for i, s := range a.Stacks {
		stacks[s.Stack] = i
	}
	for _, s := range b.Stacks {
		if i, ok := stacks[s.Stack]; ok {
			a.Stacks[i].Count += s.Count
		} else {
			stacks[s.Stack] = len(a.Stacks)
			a.Stacks = append(a.Stacks, s)
		}
	}
	sort.Slice(a.Stacks, func(i, j int) bool { return a.Stacks[i].Stack < a.Stacks[j].Stack })

	type blockKey struct {
		fn  string
		off uint64
	}
	blocks := make(map[blockKey]int, len(a.Blocks))
	for i, bl := range a.Blocks {
		blocks[blockKey{bl.Func, bl.Off}] = i
	}
	for _, bl := range b.Blocks {
		k := blockKey{bl.Func, bl.Off}
		if i, ok := blocks[k]; ok {
			a.Blocks[i].Count += bl.Count
		} else {
			blocks[k] = len(a.Blocks)
			a.Blocks = append(a.Blocks, bl)
		}
	}
	sort.Slice(a.Blocks, func(i, j int) bool {
		if a.Blocks[i].Func != a.Blocks[j].Func {
			return a.Blocks[i].Func < a.Blocks[j].Func
		}
		return a.Blocks[i].Off < a.Blocks[j].Off
	})
	return nil
}

// HotFuncs returns the functions carrying at least minShare of the
// exclusive samples, hottest first — the tier-2 translator's candidate
// list for superblock formation.
func (a *Artifact) HotFuncs(minShare float64) []FuncStat {
	var out []FuncStat
	if a.Total == 0 {
		return out
	}
	for _, s := range a.Funcs {
		if float64(s.Excl)/float64(a.Total) >= minShare {
			out = append(out, s)
		}
	}
	return out
}

// BlockCounts returns fn's sampled block offsets and counts (nil when
// the function was never sampled).
func (a *Artifact) BlockCounts(fn string) map[uint64]uint64 {
	var out map[uint64]uint64
	for _, b := range a.Blocks {
		if b.Func == fn {
			if out == nil {
				out = make(map[uint64]uint64)
			}
			out[b.Off] = b.Count
		}
	}
	return out
}

// String summarizes the artifact for logs.
func (a *Artifact) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "guest profile v%d: %s on %s, %d samples @1/%d instrs, %d funcs",
		a.Version, a.Module, a.Target, a.Total, a.Rate, len(a.Funcs))
	return b.String()
}
