package asm

import (
	"fmt"
	"strings"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF      tokKind = iota
	tokIdent            // bare word: keywords, type names, opcodes
	tokLocal            // %name
	tokInt              // integer literal (possibly signed)
	tokFloat            // floating literal
	tokAttr             // !word (instruction attribute)
	tokPunct            // single punctuation: = , ( ) [ ] { } * : ;
	tokEllipsis         // ...
	tokArrow            // -> (reserved)
	tokString           // "..." quoted string
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokLocal:
		return "%" + t.text
	case tokAttr:
		return "!" + t.text
	case tokString:
		return fmt.Sprintf("%q", t.text)
	}
	return t.text
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c == '.' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token, skipping whitespace and ;-comments.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == ';':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return l.lexToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) lexToken() (token, error) {
	start := l.pos
	line := l.line
	c := l.src[l.pos]
	switch {
	case c == '%':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '"' {
			s, err := l.lexString()
			if err != nil {
				return token{}, err
			}
			return token{kind: tokLocal, text: s, line: line}, nil
		}
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start+1 {
			return token{}, fmt.Errorf("line %d: empty %% identifier", line)
		}
		return token{kind: tokLocal, text: l.src[start+1 : l.pos], line: line}, nil
	case c == '!':
		l.pos++
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokAttr, text: l.src[start+1 : l.pos], line: line}, nil
	case c == '"':
		s, err := l.lexString()
		if err != nil {
			return token{}, err
		}
		return token{kind: tokString, text: s, line: line}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		if word == "." {
			return token{}, fmt.Errorf("line %d: stray '.'", line)
		}
		return token{kind: tokIdent, text: word, line: line}, nil
	case isDigit(c) || c == '-' || c == '+':
		return l.lexNumber()
	default:
		switch c {
		case '=', ',', '(', ')', '[', ']', '{', '}', '*', ':':
			l.pos++
			return token{kind: tokPunct, text: string(c), line: line}, nil
		}
		return token{}, fmt.Errorf("line %d: unexpected character %q", line, string(c))
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	line := l.line
	if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		// could be "..." following a sign? Not valid; fallthrough to error.
		return token{}, fmt.Errorf("line %d: malformed number", line)
	}
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' {
			// Distinguish "1." from "..." (ellipsis never follows digits here).
			isFloat = true
			l.pos++
			continue
		}
		if c == 'e' || c == 'E' {
			isFloat = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '-' || l.src[l.pos] == '+') {
				l.pos++
			}
			continue
		}
		if c == 'x' && l.pos == start+1 && l.src[start] == '0' {
			// hex literal
			l.pos++
			for l.pos < len(l.src) && isHex(l.src[l.pos]) {
				l.pos++
			}
			return token{kind: tokInt, text: l.src[start:l.pos], line: line}, nil
		}
		break
	}
	text := l.src[start:l.pos]
	if strings.HasSuffix(text, "Inf") || strings.HasSuffix(text, "NaN") {
		isFloat = true
	}
	// Accept "-Inf" / "Inf" / "NaN" spellings emitted by the printer.
	if text == "-" || text == "+" {
		rest := l.src[l.pos:]
		for _, word := range []string{"Inf"} {
			if strings.HasPrefix(rest, word) {
				l.pos += len(word)
				return token{kind: tokFloat, text: text + word, line: line}, nil
			}
		}
		return token{}, fmt.Errorf("line %d: malformed number %q", line, text)
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	return token{kind: kind, text: text, line: line}, nil
}

func isHex(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *lexer) lexString() (string, error) {
	line := l.line
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return b.String(), nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case '0':
				b.WriteByte(0)
			default:
				return "", fmt.Errorf("line %d: bad escape \\%c", line, l.src[l.pos])
			}
			l.pos++
			continue
		}
		if c == '\n' {
			return "", fmt.Errorf("line %d: unterminated string", line)
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("line %d: unterminated string", line)
}
