// Package asm implements the textual form of LLVA virtual object code: a
// printer that renders core.Module values as LLVA assembly (the syntax of
// the paper's Figure 2) and a parser that reads it back. Printing then
// parsing any verified module yields an identical module.
package asm

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"llva/internal/core"
)

// Print renders the module as LLVA assembly.
func Print(m *core.Module) string {
	var b strings.Builder
	Fprint(&b, m)
	return b.String()
}

// Fprint renders the module as LLVA assembly to w.
func Fprint(w io.Writer, m *core.Module) {
	fmt.Fprintf(w, "; module %q\n", m.Name)
	endian := "little"
	if !m.LittleEndian {
		endian = "big"
	}
	fmt.Fprintf(w, "target endian = %s\n", endian)
	fmt.Fprintf(w, "target pointersize = %d\n", m.PointerSize*8)

	// Named types, sorted for deterministic output.
	names := make([]string, 0, len(m.Types().NamedTypes()))
	for n := range m.Types().NamedTypes() {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintln(w)
	}
	for _, n := range names {
		t := m.Types().NamedTypes()[n]
		fmt.Fprintf(w, "%%%s = type %s\n", n, t.Definition())
	}

	if len(m.Globals) > 0 {
		fmt.Fprintln(w)
	}
	for _, g := range m.Globals {
		kw := "global"
		if g.IsConst {
			kw = "constant"
		}
		if g.Init == nil {
			fmt.Fprintf(w, "%%%s = external %s %s\n", g.Name(), kw, g.ValueType())
		} else {
			fmt.Fprintf(w, "%%%s = %s %s %s\n", g.Name(), kw, g.ValueType(), g.Init.Ident())
		}
	}

	// Declarations print before definitions so that references to
	// external functions are always resolvable on a linear parse.
	for _, f := range m.Functions {
		if f.IsDeclaration() {
			fmt.Fprintln(w)
			printFunction(w, f)
		}
	}
	for _, f := range m.Functions {
		if !f.IsDeclaration() {
			fmt.Fprintln(w)
			printFunction(w, f)
		}
	}
}

// PrintFunction renders a single function as LLVA assembly.
func PrintFunction(f *core.Function) string {
	var b strings.Builder
	printFunction(&b, f)
	return b.String()
}

func printFunction(w io.Writer, f *core.Function) {
	sig := f.Signature()
	if f.IsDeclaration() {
		fmt.Fprintf(w, "declare %s %%%s(", sig.Ret(), f.Name())
		for i, p := range sig.Params() {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprint(w, p)
		}
		if sig.Variadic() {
			if len(sig.Params()) > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprint(w, "...")
		}
		fmt.Fprintln(w, ")")
		return
	}
	f.AssignNames()
	if f.Internal {
		fmt.Fprint(w, "internal ")
	}
	fmt.Fprintf(w, "%s %%%s(", sig.Ret(), f.Name())
	for i, p := range f.Params {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%s %%%s", p.Type(), p.Name())
	}
	if sig.Variadic() {
		if len(f.Params) > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprint(w, "...")
	}
	fmt.Fprintln(w, ") {")
	for i, bb := range f.Blocks {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s:\n", bb.Name())
		for _, in := range bb.Instructions() {
			fmt.Fprintf(w, "    %s\n", in)
		}
	}
	fmt.Fprintln(w, "}")
}
