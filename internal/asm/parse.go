package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"llva/internal/core"
)

// Parse reads LLVA assembly and returns the module it describes. name is
// used as the module name and in error messages.
func Parse(name, src string) (*core.Module, error) {
	p := &parser{lex: newLexer(src), m: core.NewModule(name)}
	p.ctx = p.m.Types()
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.parseModule(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return p.m, nil
}

type globalFixup struct {
	c    *core.Constant
	name string
	line int
}

type parser struct {
	lex  *lexer
	tok  token
	peek *token
	m    *core.Module
	ctx  *core.TypeContext

	fixups []globalFixup
	// pendingType carries a pre-parsed base type when module-level
	// disambiguation (named-struct-returning function vs. named entity)
	// has already consumed the type token.
	pendingType *core.Type
	// fnRefs holds placeholders for globals/functions referenced inside
	// bodies before their module-level declaration appears; they resolve
	// after the whole module is parsed.
	fnRefs map[*core.Placeholder]int // placeholder -> line
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, got %s", s, p.tok)
	}
	return p.advance()
}

func (p *parser) expectIdent(s string) error {
	if p.tok.kind != tokIdent || p.tok.text != s {
		return p.errf("expected %q, got %s", s, p.tok)
	}
	return p.advance()
}

func (p *parser) isPunct(s string) bool {
	return p.tok.kind == tokPunct && p.tok.text == s
}

func (p *parser) isIdent(s string) bool {
	return p.tok.kind == tokIdent && p.tok.text == s
}

// ---------------------------------------------------------------- module

func (p *parser) parseModule() error {
	for p.tok.kind != tokEOF {
		switch {
		case p.isIdent("target"):
			if err := p.parseTarget(); err != nil {
				return err
			}
		case p.isIdent("declare"):
			if err := p.parseDeclare(); err != nil {
				return err
			}
		case p.isIdent("internal"):
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.parseFunctionDef(true); err != nil {
				return err
			}
		case p.tok.kind == tokLocal:
			// "%name = ..." declares a type/global; "%name* %fn(...)"
			// begins a function definition returning a named-struct
			// pointer.
			nxt, err := p.peekTok()
			if err != nil {
				return err
			}
			if nxt.kind == tokPunct && nxt.text == "=" {
				if err := p.parseNamedEntity(); err != nil {
					return err
				}
			} else {
				p.pendingType = p.ctx.NamedStruct(p.tok.text)
				if err := p.advance(); err != nil {
					return err
				}
				if err := p.parseFunctionDef(false); err != nil {
					return err
				}
			}
		case p.tok.kind == tokIdent:
			// A function definition starting with its return type.
			if err := p.parseFunctionDef(false); err != nil {
				return err
			}
		default:
			return p.errf("unexpected %s at module level", p.tok)
		}
	}
	return p.resolveFixups()
}

func (p *parser) parseTarget() error {
	if err := p.advance(); err != nil { // "target"
		return err
	}
	if p.tok.kind != tokIdent {
		return p.errf("expected target property name")
	}
	prop := p.tok.text
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	switch prop {
	case "endian":
		switch {
		case p.isIdent("little"):
			p.m.LittleEndian = true
		case p.isIdent("big"):
			p.m.LittleEndian = false
		default:
			return p.errf("endian must be little or big")
		}
		return p.advance()
	case "pointersize":
		if p.tok.kind != tokInt {
			return p.errf("pointersize must be an integer")
		}
		bits, err := strconv.Atoi(p.tok.text)
		if err != nil || bits != 32 && bits != 64 {
			return p.errf("pointersize must be 32 or 64")
		}
		p.m.PointerSize = bits / 8
		return p.advance()
	}
	return p.errf("unknown target property %q", prop)
}

// parseNamedEntity handles "%name = type|global|constant|external ...".
func (p *parser) parseNamedEntity() error {
	name := p.tok.text
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	switch {
	case p.isIdent("type"):
		if err := p.advance(); err != nil {
			return err
		}
		if p.isIdent("opaque") {
			p.ctx.NamedStruct(name) // created opaque; body never set
			return p.advance()
		}
		t, err := p.parseType()
		if err != nil {
			return err
		}
		named := p.ctx.NamedStruct(name)
		if named.Opaque() && t.Kind() == core.StructKind {
			p.ctx.SetBody(named, t.Fields()...)
			return nil
		}
		if t.Kind() != core.StructKind {
			return p.errf("named types must be structure types, got %s", t)
		}
		return p.errf("type %%%s defined twice", name)
	case p.isIdent("external"):
		if err := p.advance(); err != nil {
			return err
		}
		isConst := p.isIdent("constant")
		if !isConst && !p.isIdent("global") {
			return p.errf("expected global or constant after external")
		}
		if err := p.advance(); err != nil {
			return err
		}
		t, err := p.parseType()
		if err != nil {
			return err
		}
		p.m.NewGlobal(name, t, nil, isConst)
		return nil
	case p.isIdent("global"), p.isIdent("constant"):
		isConst := p.isIdent("constant")
		if err := p.advance(); err != nil {
			return err
		}
		t, err := p.parseType()
		if err != nil {
			return err
		}
		init, err := p.parseConstant(t)
		if err != nil {
			return err
		}
		p.m.NewGlobal(name, t, init, isConst)
		return nil
	}
	return p.errf("expected type, global, constant or external after %%%s =", name)
}

func (p *parser) parseDeclare() error {
	if err := p.advance(); err != nil { // "declare"
		return err
	}
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	if p.tok.kind != tokLocal {
		return p.errf("expected function name")
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return err
	}
	params, _, variadic, err := p.parseParamList(false)
	if err != nil {
		return err
	}
	sig := p.ctx.Function(ret, params, variadic)
	if f := p.m.Function(name); f != nil {
		if f.Signature() != sig {
			return p.errf("conflicting declaration of %%%s", name)
		}
		return nil
	}
	p.m.NewFunction(name, sig)
	return nil
}

// parseParamList parses "( type [name], ..., [...] )". When named is true,
// parameter names are required and returned.
func (p *parser) parseParamList(named bool) (types []*core.Type, names []string, variadic bool, err error) {
	if err = p.expectPunct("("); err != nil {
		return
	}
	for !p.isPunct(")") {
		if len(types) > 0 || variadic {
			if err = p.expectPunct(","); err != nil {
				return
			}
		}
		if p.tok.kind == tokEllipsis || p.isIdent("...") {
			variadic = true
			if err = p.advance(); err != nil {
				return
			}
			continue
		}
		// The lexer has no ellipsis token for "..." since '.' is an ident
		// char; it lexes as ident "...".
		var t *core.Type
		t, err = p.parseType()
		if err != nil {
			return
		}
		types = append(types, t)
		if p.tok.kind == tokLocal {
			names = append(names, p.tok.text)
			if err = p.advance(); err != nil {
				return
			}
		} else if named {
			err = p.errf("expected parameter name")
			return
		} else {
			names = append(names, "")
		}
	}
	err = p.expectPunct(")")
	return
}

func (p *parser) parseFunctionDef(internal bool) error {
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	if p.tok.kind != tokLocal {
		return p.errf("expected function name, got %s", p.tok)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return err
	}
	params, names, variadic, err := p.parseParamList(true)
	if err != nil {
		return err
	}
	sig := p.ctx.Function(ret, params, variadic)
	f := p.m.Function(name)
	if f != nil {
		if f.Signature() != sig || !f.IsDeclaration() {
			return p.errf("function %%%s redefined", name)
		}
	} else {
		f = p.m.NewFunction(name, sig)
	}
	f.Internal = internal
	for i, n := range names {
		if n != "" {
			f.Params[i].SetName(n)
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	return p.parseBody(f)
}

// ------------------------------------------------------------------ types

func (p *parser) parseType() (*core.Type, error) {
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	return p.parseTypeSuffix(base)
}

func (p *parser) parseTypeSuffix(t *core.Type) (*core.Type, error) {
	for {
		switch {
		case p.isPunct("*"):
			t = p.ctx.Pointer(t)
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.isPunct("("):
			// function type: t is the return type
			params, _, variadic, err := p.parseParamList(false)
			if err != nil {
				return nil, err
			}
			t = p.ctx.Function(t, params, variadic)
		default:
			return t, nil
		}
	}
}

var primTypes = map[string]core.Kind{
	"void": core.VoidKind, "bool": core.BoolKind,
	"ubyte": core.UByteKind, "sbyte": core.SByteKind,
	"ushort": core.UShortKind, "short": core.ShortKind,
	"uint": core.UIntKind, "int": core.IntKind,
	"ulong": core.ULongKind, "long": core.LongKind,
	"float": core.FloatKind, "double": core.DoubleKind,
	"label": core.LabelKind,
}

func (p *parser) parseBaseType() (*core.Type, error) {
	if p.pendingType != nil {
		t := p.pendingType
		p.pendingType = nil
		return t, nil
	}
	switch {
	case p.tok.kind == tokIdent:
		if k, ok := primTypes[p.tok.text]; ok {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return p.ctx.Primitive(k), nil
		}
		return nil, p.errf("expected type, got %s", p.tok)
	case p.tok.kind == tokLocal:
		t := p.ctx.NamedStruct(p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return t, nil
	case p.isPunct("["):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokInt {
			return nil, p.errf("expected array length")
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad array length %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectIdent("x"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return p.ctx.Array(n, elem), nil
	case p.isPunct("{"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		var fields []*core.Type
		for !p.isPunct("}") {
			if len(fields) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			f, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return p.ctx.Struct(fields...), nil
	}
	return nil, p.errf("expected type, got %s", p.tok)
}

// -------------------------------------------------------------- constants

func (p *parser) parseIntText(t *core.Type, text string) (*core.Constant, error) {
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "-0x") {
		neg := strings.HasPrefix(text, "-")
		hex := strings.TrimPrefix(strings.TrimPrefix(text, "-"), "0x")
		u, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			return nil, p.errf("bad hex literal %q", text)
		}
		if neg {
			return core.NewInt(t, -int64(u)), nil
		}
		return core.NewUint(t, u), nil
	}
	if strings.HasPrefix(text, "-") {
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", text)
		}
		return core.NewInt(t, v), nil
	}
	u, err := strconv.ParseUint(text, 10, 64)
	if err != nil {
		return nil, p.errf("bad integer literal %q", text)
	}
	return core.NewUint(t, u), nil
}

// parseConstant parses a constant of the expected type t.
func (p *parser) parseConstant(t *core.Type) (*core.Constant, error) {
	line := p.tok.line
	switch {
	case p.tok.kind == tokInt:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch {
		case t.IsInteger():
			return p.parseIntText(t, text)
		case t.IsFloat():
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, p.errf("bad float literal %q", text)
			}
			return core.NewFloat(t, v), nil
		}
		return nil, p.errf("integer literal for non-numeric type %s", t)
	case p.tok.kind == tokFloat:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !t.IsFloat() {
			return nil, p.errf("float literal for non-float type %s", t)
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			// Accept Inf spellings.
			switch text {
			case "Inf", "+Inf":
				v = inf(1)
			case "-Inf":
				v = inf(-1)
			case "NaN":
				v = nan()
			default:
				return nil, p.errf("bad float literal %q", text)
			}
		}
		return core.NewFloat(t, v), nil
	case p.isIdent("true"), p.isIdent("false"):
		v := p.isIdent("true")
		if err := p.advance(); err != nil {
			return nil, err
		}
		if t.Kind() != core.BoolKind {
			return nil, p.errf("boolean literal for type %s", t)
		}
		return core.NewBool(t, v), nil
	case p.isIdent("null"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if t.Kind() != core.PointerKind {
			return nil, p.errf("null literal for non-pointer type %s", t)
		}
		return core.NewNull(t), nil
	case p.isIdent("undef"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return core.NewUndef(t), nil
	case p.isIdent("zeroinitializer"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return core.NewZero(t), nil
	case p.tok.kind == tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		c := core.NewString(p.ctx, s)
		if c.Type() != t {
			return nil, p.errf("string constant has type %s, want %s", c.Type(), t)
		}
		return c, nil
	case p.isPunct("["):
		if t.Kind() != core.ArrayKind {
			return nil, p.errf("array constant for non-array type %s", t)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var elems []*core.Constant
		for !p.isPunct("]") {
			if len(elems) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			et, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if et != t.Elem() {
				return nil, p.errf("array element type %s, want %s", et, t.Elem())
			}
			e, err := p.parseConstant(et)
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if len(elems) != t.Len() {
			return nil, p.errf("array constant has %d elements, want %d", len(elems), t.Len())
		}
		return core.NewArray(t, elems), nil
	case p.isPunct("{"):
		if t.Kind() != core.StructKind {
			return nil, p.errf("struct constant for non-struct type %s", t)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var elems []*core.Constant
		for !p.isPunct("}") {
			if len(elems) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			i := len(elems)
			if i >= len(t.Fields()) {
				return nil, p.errf("too many fields in struct constant")
			}
			ft, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if ft != t.Fields()[i] {
				return nil, p.errf("struct field %d type %s, want %s", i, ft, t.Fields()[i])
			}
			e, err := p.parseConstant(ft)
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		if len(elems) != len(t.Fields()) {
			return nil, p.errf("struct constant has %d fields, want %d", len(elems), len(t.Fields()))
		}
		return core.NewStruct(t, elems), nil
	case p.tok.kind == tokLocal:
		// Address of a global or function; may be a forward reference,
		// resolved after the whole module is parsed.
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if t.Kind() != core.PointerKind {
			return nil, p.errf("global reference for non-pointer type %s", t)
		}
		if g := p.m.Global(name); g != nil {
			c := core.NewGlobalRef(g)
			if c.Type() != t {
				return nil, p.errf("global %%%s has type %s, want %s", name, c.Type(), t)
			}
			return c, nil
		}
		if f := p.m.Function(name); f != nil {
			c := core.NewGlobalRef(f)
			if c.Type() != t {
				return nil, p.errf("function %%%s has type %s, want %s", name, c.Type(), t)
			}
			return c, nil
		}
		// Forward reference: create an unresolved ConstGlobal and fix it
		// up at end of module.
		c := core.NewUnresolvedGlobalRef(t, name)
		p.fixups = append(p.fixups, globalFixup{c: c, name: name, line: line})
		return c, nil
	}
	return nil, p.errf("expected constant, got %s", p.tok)
}

func (p *parser) resolveFixups() error {
	for ph, line := range p.fnRefs {
		var ref core.Value
		if g := p.m.Global(ph.Name()); g != nil {
			ref = g
		} else if f := p.m.Function(ph.Name()); f != nil {
			ref = f
		} else {
			return fmt.Errorf("line %d: undefined value %%%s", line, ph.Name())
		}
		if ref.Type() != ph.Type() {
			return fmt.Errorf("line %d: %%%s has type %s, used with type %s",
				line, ph.Name(), ref.Type(), ph.Type())
		}
		core.ReplaceAllUsesWith(ph, ref)
	}
	p.fnRefs = nil
	for _, fx := range p.fixups {
		var ref core.Value
		if g := p.m.Global(fx.name); g != nil {
			ref = g
		} else if f := p.m.Function(fx.name); f != nil {
			ref = f
		} else {
			return fmt.Errorf("line %d: undefined global %%%s in initializer", fx.line, fx.name)
		}
		if err := fx.c.Resolve(ref); err != nil {
			return fmt.Errorf("line %d: %w", fx.line, err)
		}
	}
	p.fixups = nil
	return nil
}

func inf(sign int) float64 { return math.Inf(sign) }

func nan() float64 { return math.NaN() }
