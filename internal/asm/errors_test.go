package asm

import (
	"strings"
	"testing"
)

// TestParseErrors checks that malformed assembly is rejected with a
// positioned error rather than accepted or panicking.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring the error must contain ("" = any error)
	}{
		{"empty-percent", "% = type int", ""},
		{"bad-opcode", "int %f() {\nentry:\n %x = frobnicate int 1, 2\n ret int %x\n}", "unknown opcode"},
		{"type-mismatch", "int %f(long %x) {\nentry:\n %y = add int %x, 1\n ret int %y\n}", "type"},
		{"undefined-value", "int %f() {\nentry:\n ret int %nosuch\n}", "undefined"},
		{"undefined-label", "int %f() {\nentry:\n br label %nowhere\n}", "never defined"},
		{"duplicate-value", "int %f() {\nentry:\n %x = add int 1, 2\n %x = add int 3, 4\n ret int %x\n}", "defined twice"},
		{"duplicate-label", "int %f() {\nentry:\n br label %entry\nentry:\n ret int 0\n}", "twice"},
		{"instr-before-label", "int %f() {\n %x = add int 1, 2\nentry:\n ret int %x\n}", "before any label"},
		{"bad-pointersize", "target pointersize = 48", "32 or 64"},
		{"bad-endian", "target endian = middle", "little or big"},
		{"unterminated-fn", "int %f() {\nentry:\n ret int 0\n", "end of input"},
		{"call-ret-mismatch", `
declare long %g()
int %f() {
entry:
    %x = call int %g()
    ret int %x
}`, "returns"},
		{"dup-type", "%t = type { int }\n%t = type { long }", "twice"},
		{"bad-array-const", "%g = global [2 x int] [ int 1 ]", "2"},
		{"string-too-long", "%g = global [2 x ubyte] \"much too long\"", "type"},
		{"gep-struct-dynamic", `
%s = type { int, int }
int %f(%s* %p, long %i) {
entry:
    %q = getelementptr %s* %p, long 0, long %i
    %v = load int* %q
    ret int %v
}`, "constant"},
		{"unwind-with-operand", "void %f() {\nentry:\n unwind int 1\n}", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("bad", tc.src)
			if err == nil {
				t.Fatalf("accepted malformed input:\n%s", tc.src)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err.Error(), tc.want)
			}
		})
	}
}

// TestParserRecoversPositions checks errors carry line numbers.
func TestParserRecoversPositions(t *testing.T) {
	src := "int %f() {\nentry:\n ret long 0\n}"
	_, err := Parse("pos", src)
	if err == nil {
		t.Fatal("accepted return type mismatch")
	}
	if !strings.Contains(err.Error(), "line ") {
		t.Errorf("error lacks a line number: %v", err)
	}
}

// TestCommentsAndWhitespace checks lexical trivia is handled.
func TestCommentsAndWhitespace(t *testing.T) {
	src := `
; leading comment
int %f() {    ; trailing comment
entry:        ;; double comment
    ; a full-line comment
    ret int 42
}
`
	m, err := Parse("c", src)
	if err != nil {
		t.Fatalf("comments broke the parser: %v", err)
	}
	if m.Function("f") == nil {
		t.Fatal("function lost")
	}
}

// TestQuotedIdentifiers checks %"name with spaces" forms.
func TestQuotedIdentifiers(t *testing.T) {
	src := `
%"strange name" = global int 7
int %f() {
entry:
    %v = load int* %"strange name"
    ret int %v
}
`
	m, err := Parse("q", src)
	if err != nil {
		t.Fatalf("quoted identifier rejected: %v", err)
	}
	if m.Global("strange name") == nil {
		t.Fatal("quoted global not registered")
	}
}
