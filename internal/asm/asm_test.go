package asm

import (
	"strings"
	"testing"

	"llva/internal/core"
)

// figure2 is the paper's Figure 2(b): the Sum3rdChildren function over a
// recursive QuadTree structure.
const figure2 = `
; C and LLVA code for a function (paper, Figure 2)
target endian = little
target pointersize = 64

%struct.QuadTree = type { double, [4 x %struct.QuadTree*] }

void %Sum3rdChildren(%struct.QuadTree* %T, double* %Result) {
entry:
    %V = alloca double                       ;; %V is type 'double*'
    %tmp.0 = seteq %struct.QuadTree* %T, null
    br bool %tmp.0, label %endif, label %else

else:
    %tmp.1 = getelementptr %struct.QuadTree* %T, long 0, ubyte 1, long 3
    %Child3 = load %struct.QuadTree** %tmp.1
    call void %Sum3rdChildren(%struct.QuadTree* %Child3, double* %V)
    %tmp.2 = load double* %V
    %tmp.3 = getelementptr %struct.QuadTree* %T, long 0, ubyte 0
    %tmp.4 = load double* %tmp.3
    %Ret.0 = add double %tmp.2, %tmp.4
    br label %endif

endif:
    %Ret.1 = phi double [ %Ret.0, %else ], [ 0.0, %entry ]
    store double %Ret.1, double* %Result
    ret void
}
`

func TestParseFigure2(t *testing.T) {
	m, err := Parse("figure2", figure2)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	f := m.Function("Sum3rdChildren")
	if f == nil {
		t.Fatal("function Sum3rdChildren not found")
	}
	if got := len(f.Blocks); got != 3 {
		t.Fatalf("got %d blocks, want 3", got)
	}
	if got := f.NumInstructions(); got != 14 {
		t.Fatalf("got %d instructions, want 14", got)
	}
	// Figure 2 commentary: with 64-bit pointers the offset of
	// T[0].Children[3] is 32 bytes.
	gep := f.Block("else").Instructions()[0]
	if gep.Op() != core.OpGetElementPtr {
		t.Fatalf("first else instruction is %s, want getelementptr", gep.Op())
	}
	var indices []*core.Constant
	for _, op := range gep.Operands()[1:] {
		indices = append(indices, op.(*core.Constant))
	}
	qt := m.Types().NamedTypes()["struct.QuadTree"]
	off, _ := m.Layout().GEPOffset(qt, indices)
	if off != 32 {
		t.Errorf("GEP offset = %d with 64-bit pointers, want 32 (paper, Section 3.1)", off)
	}
	off32, _ := core.Layout{PointerSize: 4}.GEPOffset(qt, indices)
	if off32 != 20 {
		t.Errorf("GEP offset = %d with 32-bit pointers, want 20 (paper, Section 3.1)", off32)
	}
}

func TestRoundTripFigure2(t *testing.T) {
	m, err := Parse("figure2", figure2)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text1 := Print(m)
	m2, err := Parse("figure2-reprint", text1)
	if err != nil {
		t.Fatalf("reparse printed module: %v\n--- printed ---\n%s", err, text1)
	}
	if err := core.Verify(m2); err != nil {
		t.Fatalf("Verify reparsed: %v", err)
	}
	text2 := Print(m2)
	if text1 != strings.Replace(text2, `"figure2-reprint"`, `"figure2"`, 1) {
		t.Errorf("print->parse->print not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}
