package asm

import (
	"fmt"
	"strconv"

	"llva/internal/core"
)

// bodyParser parses one function body. Forward references to values are
// represented by core.Placeholder and patched when the definition is seen;
// forward-referenced blocks are created immediately and ordered by
// definition at the end.
type bodyParser struct {
	*parser
	f            *core.Function
	bld          *core.Builder
	locals       map[string]core.Value
	placeholders map[string]*core.Placeholder
	blocks       map[string]*core.BasicBlock
	defined      []*core.BasicBlock
}

func (p *parser) parseBody(f *core.Function) (err error) {
	bp := &bodyParser{
		parser:       p,
		f:            f,
		bld:          core.NewBuilder(f),
		locals:       make(map[string]core.Value),
		placeholders: make(map[string]*core.Placeholder),
		blocks:       make(map[string]*core.BasicBlock),
	}
	for _, a := range f.Params {
		bp.locals[a.Name()] = a
	}
	// The builder panics on type errors; surface them as parse errors.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("line %d: %v", p.tok.line, r)
		}
	}()
	return bp.run()
}

func (bp *bodyParser) run() error {
	for {
		switch {
		case bp.isPunct("}"):
			if err := bp.advance(); err != nil {
				return err
			}
			return bp.finish()
		case bp.tok.kind == tokEOF:
			return bp.errf("unexpected end of input in function %%%s", bp.f.Name())
		default:
			// A label is a name followed by ':'.
			if bp.tok.kind == tokIdent || bp.tok.kind == tokInt {
				if nxt, err := bp.peekTok(); err != nil {
					return err
				} else if nxt.kind == tokPunct && nxt.text == ":" {
					name := bp.tok.text
					if err := bp.advance(); err != nil {
						return err
					}
					if err := bp.advance(); err != nil { // ':'
						return err
					}
					if err := bp.defineBlock(name); err != nil {
						return err
					}
					continue
				}
			}
			if bp.bld.Block() == nil {
				return bp.errf("instruction before any label in %%%s", bp.f.Name())
			}
			if err := bp.parseInstruction(); err != nil {
				return err
			}
		}
	}
}

func (bp *bodyParser) getBlock(name string) *core.BasicBlock {
	if bb, ok := bp.blocks[name]; ok {
		return bb
	}
	bb := bp.f.NewBlock(name)
	bp.blocks[name] = bb
	return bb
}

func (bp *bodyParser) defineBlock(name string) error {
	bb := bp.getBlock(name)
	for _, d := range bp.defined {
		if d == bb {
			return bp.errf("label %%%s defined twice", name)
		}
	}
	bp.defined = append(bp.defined, bb)
	bp.bld.SetBlock(bb)
	return nil
}

func (bp *bodyParser) finish() error {
	// Unresolved names may be functions or globals declared later in the
	// module; defer them to module-level resolution. (A truly undefined
	// local is indistinguishable here and reported then.)
	for _, ph := range bp.placeholders {
		if bp.fnRefs == nil {
			bp.fnRefs = make(map[*core.Placeholder]int)
		}
		bp.fnRefs[ph] = bp.tok.line
	}
	if len(bp.defined) != len(bp.f.Blocks) {
		for name, bb := range bp.blocks {
			if bb.Len() == 0 {
				return fmt.Errorf("function %%%s: label %%%s referenced but never defined",
					bp.f.Name(), name)
			}
		}
	}
	// Restore definition order (forward references may have appended
	// blocks out of order).
	bp.f.Blocks = bp.f.Blocks[:0]
	bp.f.Blocks = append(bp.f.Blocks, bp.defined...)
	return nil
}

// resolve returns the value with the given name and expected type,
// creating a placeholder for forward references.
func (bp *bodyParser) resolve(name string, t *core.Type) (core.Value, error) {
	if v, ok := bp.locals[name]; ok {
		if v.Type() != t {
			return nil, bp.errf("%%%s has type %s, expected %s", name, v.Type(), t)
		}
		return v, nil
	}
	if g := bp.m.Global(name); g != nil {
		if g.Type() != t {
			return nil, bp.errf("global %%%s has type %s, expected %s", name, g.Type(), t)
		}
		return g, nil
	}
	if f := bp.m.Function(name); f != nil {
		if f.Type() != t {
			return nil, bp.errf("function %%%s has type %s, expected %s", name, f.Type(), t)
		}
		return f, nil
	}
	if ph, ok := bp.placeholders[name]; ok {
		if ph.Type() != t {
			return nil, bp.errf("%%%s used with conflicting types %s and %s", name, ph.Type(), t)
		}
		return ph, nil
	}
	ph := core.NewPlaceholder(t, name)
	bp.placeholders[name] = ph
	return ph, nil
}

// define registers a newly-created value, patching any forward references.
func (bp *bodyParser) define(name string, v core.Value) error {
	if name == "" {
		return nil
	}
	if _, dup := bp.locals[name]; dup {
		return bp.errf("value %%%s defined twice", name)
	}
	if ph, ok := bp.placeholders[name]; ok {
		if ph.Type() != v.Type() {
			return bp.errf("%%%s defined with type %s but used with type %s",
				name, v.Type(), ph.Type())
		}
		core.ReplaceAllUsesWith(ph, v)
		delete(bp.placeholders, name)
	}
	bp.locals[name] = v
	return nil
}

// parseValue parses an operand of the expected type: a %name or a scalar
// literal.
func (bp *bodyParser) parseValue(t *core.Type) (core.Value, error) {
	if bp.tok.kind == tokLocal {
		name := bp.tok.text
		if err := bp.advance(); err != nil {
			return nil, err
		}
		return bp.resolve(name, t)
	}
	return bp.parseConstant(t)
}

// parseTypedValue parses "<type> <value>" and returns both.
func (bp *bodyParser) parseTypedValue() (*core.Type, core.Value, error) {
	t, err := bp.parseType()
	if err != nil {
		return nil, nil, err
	}
	v, err := bp.parseValue(t)
	return t, v, err
}

func (bp *bodyParser) parseLabel() (*core.BasicBlock, error) {
	if err := bp.expectIdent("label"); err != nil {
		return nil, err
	}
	if bp.tok.kind != tokLocal && bp.tok.kind != tokInt && bp.tok.kind != tokIdent {
		return nil, bp.errf("expected label name, got %s", bp.tok)
	}
	name := bp.tok.text
	if err := bp.advance(); err != nil {
		return nil, err
	}
	return bp.getBlock(name), nil
}

func (bp *bodyParser) parseInstruction() error {
	resultName := ""
	if bp.tok.kind == tokLocal {
		resultName = bp.tok.text
		if err := bp.advance(); err != nil {
			return err
		}
		if err := bp.expectPunct("="); err != nil {
			return err
		}
	}
	if bp.tok.kind != tokIdent {
		return bp.errf("expected opcode, got %s", bp.tok)
	}
	opName := bp.tok.text
	op, ok := core.OpcodeByName[opName]
	if !ok {
		return bp.errf("unknown opcode %q", opName)
	}
	if err := bp.advance(); err != nil {
		return err
	}

	in, err := bp.parseOperands(op, resultName)
	if err != nil {
		return err
	}
	if in != nil && resultName != "" {
		if !in.HasResult() {
			return bp.errf("%s produces no result", op)
		}
		if err := bp.define(resultName, in); err != nil {
			return err
		}
	}
	// Optional exception attribute suffix.
	if bp.tok.kind == tokAttr {
		switch bp.tok.text {
		case "exc":
			in.ExceptionsEnabled = true
		case "noexc":
			in.ExceptionsEnabled = false
		default:
			return bp.errf("unknown attribute !%s", bp.tok.text)
		}
		if err := bp.advance(); err != nil {
			return err
		}
	}
	return nil
}

func (bp *bodyParser) parseOperands(op core.Opcode, name string) (*core.Instruction, error) {
	b := bp.bld
	switch {
	case op == core.OpShl || op == core.OpShr:
		t, x, err := bp.parseTypedValue()
		if err != nil {
			return nil, err
		}
		_ = t
		if err := bp.expectPunct(","); err != nil {
			return nil, err
		}
		_, amt, err := bp.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if op == core.OpShl {
			return b.Shl(x, amt, name), nil
		}
		return b.Shr(x, amt, name), nil

	case op.IsBinary():
		t, x, err := bp.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := bp.expectPunct(","); err != nil {
			return nil, err
		}
		y, err := bp.parseValue(t)
		if err != nil {
			return nil, err
		}
		switch op {
		case core.OpAdd:
			return b.Add(x, y, name), nil
		case core.OpSub:
			return b.Sub(x, y, name), nil
		case core.OpMul:
			return b.Mul(x, y, name), nil
		case core.OpDiv:
			return b.Div(x, y, name), nil
		case core.OpRem:
			return b.Rem(x, y, name), nil
		case core.OpAnd:
			return b.And(x, y, name), nil
		case core.OpOr:
			return b.Or(x, y, name), nil
		case core.OpXor:
			return b.Xor(x, y, name), nil
		case core.OpSetEQ:
			return b.SetEQ(x, y, name), nil
		case core.OpSetNE:
			return b.SetNE(x, y, name), nil
		case core.OpSetLT:
			return b.SetLT(x, y, name), nil
		case core.OpSetGT:
			return b.SetGT(x, y, name), nil
		case core.OpSetLE:
			return b.SetLE(x, y, name), nil
		case core.OpSetGE:
			return b.SetGE(x, y, name), nil
		}
		return nil, bp.errf("unhandled binary op %s", op)

	case op == core.OpRet:
		rt := bp.f.Signature().Ret()
		if bp.isIdent("void") {
			if rt.Kind() != core.VoidKind {
				return nil, bp.errf("ret void in function returning %s", rt)
			}
			if err := bp.advance(); err != nil {
				return nil, err
			}
			return b.RetVoid(), nil
		}
		t, v, err := bp.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if t != rt {
			return nil, bp.errf("ret %s in function returning %s", t, rt)
		}
		return b.Ret(v), nil

	case op == core.OpBr:
		if bp.isIdent("label") {
			bb, err := bp.parseLabel()
			if err != nil {
				return nil, err
			}
			return b.Br(bb), nil
		}
		_, cond, err := bp.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := bp.expectPunct(","); err != nil {
			return nil, err
		}
		tb, err := bp.parseLabel()
		if err != nil {
			return nil, err
		}
		if err := bp.expectPunct(","); err != nil {
			return nil, err
		}
		fb, err := bp.parseLabel()
		if err != nil {
			return nil, err
		}
		return b.CondBr(cond, tb, fb), nil

	case op == core.OpMbr:
		t, v, err := bp.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := bp.expectPunct(","); err != nil {
			return nil, err
		}
		def, err := bp.parseLabel()
		if err != nil {
			return nil, err
		}
		if err := bp.expectPunct("["); err != nil {
			return nil, err
		}
		var cases []int64
		var targets []*core.BasicBlock
		for !bp.isPunct("]") {
			if len(cases) > 0 {
				if err := bp.expectPunct(","); err != nil {
					return nil, err
				}
			}
			ct, err := bp.parseType()
			if err != nil {
				return nil, err
			}
			if ct != t {
				return nil, bp.errf("mbr case type %s, want %s", ct, t)
			}
			if bp.tok.kind != tokInt {
				return nil, bp.errf("mbr case must be an integer constant")
			}
			cv, err := strconv.ParseInt(bp.tok.text, 0, 64)
			if err != nil {
				return nil, bp.errf("bad case value %q", bp.tok.text)
			}
			if err := bp.advance(); err != nil {
				return nil, err
			}
			if err := bp.expectPunct(","); err != nil {
				return nil, err
			}
			tb, err := bp.parseLabel()
			if err != nil {
				return nil, err
			}
			cases = append(cases, cv)
			targets = append(targets, tb)
		}
		if err := bp.expectPunct("]"); err != nil {
			return nil, err
		}
		return b.Mbr(v, def, cases, targets), nil

	case op == core.OpCall || op == core.OpInvoke:
		return bp.parseCall(op, name)

	case op == core.OpUnwind:
		return b.Unwind(), nil

	case op == core.OpLoad:
		_, ptr, err := bp.parseTypedValue()
		if err != nil {
			return nil, err
		}
		return b.Load(ptr, name), nil

	case op == core.OpStore:
		_, v, err := bp.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := bp.expectPunct(","); err != nil {
			return nil, err
		}
		_, ptr, err := bp.parseTypedValue()
		if err != nil {
			return nil, err
		}
		return b.Store(v, ptr), nil

	case op == core.OpGetElementPtr:
		_, ptr, err := bp.parseTypedValue()
		if err != nil {
			return nil, err
		}
		var indices []core.Value
		for bp.isPunct(",") {
			if err := bp.advance(); err != nil {
				return nil, err
			}
			_, idx, err := bp.parseTypedValue()
			if err != nil {
				return nil, err
			}
			indices = append(indices, idx)
		}
		return b.GEP(ptr, indices, name), nil

	case op == core.OpAlloca:
		t, err := bp.parseType()
		if err != nil {
			return nil, err
		}
		if bp.isPunct(",") {
			if err := bp.advance(); err != nil {
				return nil, err
			}
			_, count, err := bp.parseTypedValue()
			if err != nil {
				return nil, err
			}
			return b.AllocaN(t, count, name), nil
		}
		return b.Alloca(t, name), nil

	case op == core.OpCast:
		_, v, err := bp.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := bp.expectIdent("to"); err != nil {
			return nil, err
		}
		to, err := bp.parseType()
		if err != nil {
			return nil, err
		}
		return b.Cast(v, to, name), nil

	case op == core.OpPhi:
		t, err := bp.parseType()
		if err != nil {
			return nil, err
		}
		phi := b.Phi(t, name)
		first := true
		for first || bp.isPunct(",") {
			if !first {
				if err := bp.advance(); err != nil {
					return nil, err
				}
			}
			first = false
			if err := bp.expectPunct("["); err != nil {
				return nil, err
			}
			v, err := bp.parseValue(t)
			if err != nil {
				return nil, err
			}
			if err := bp.expectPunct(","); err != nil {
				return nil, err
			}
			if bp.tok.kind != tokLocal && bp.tok.kind != tokInt {
				return nil, bp.errf("expected predecessor label, got %s", bp.tok)
			}
			bb := bp.getBlock(bp.tok.text)
			if err := bp.advance(); err != nil {
				return nil, err
			}
			if err := bp.expectPunct("]"); err != nil {
				return nil, err
			}
			phi.AddPhiIncoming(v, bb)
		}
		return phi, nil
	}
	return nil, bp.errf("unhandled opcode %s", op)
}

// parseCall parses call and invoke. The callee type may be written either
// as just the return type (signature inferred from the callee symbol or
// the argument list) or as a full pointer-to-function type (required for
// indirect calls to variadic functions).
func (bp *bodyParser) parseCall(op core.Opcode, name string) (*core.Instruction, error) {
	t, err := bp.parseType()
	if err != nil {
		return nil, err
	}
	var sig *core.Type
	retTy := t
	if t.Kind() == core.PointerKind && t.Elem().Kind() == core.FunctionKind {
		sig = t.Elem()
		retTy = sig.Ret()
	}
	if bp.tok.kind != tokLocal {
		return nil, bp.errf("expected callee, got %s", bp.tok)
	}
	calleeName := bp.tok.text
	if err := bp.advance(); err != nil {
		return nil, err
	}
	if err := bp.expectPunct("("); err != nil {
		return nil, err
	}
	var args []core.Value
	for !bp.isPunct(")") {
		if len(args) > 0 {
			if err := bp.expectPunct(","); err != nil {
				return nil, err
			}
		}
		_, v, err := bp.parseTypedValue()
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	if err := bp.expectPunct(")"); err != nil {
		return nil, err
	}

	var callee core.Value
	if sig != nil {
		callee, err = bp.resolve(calleeName, bp.ctx.Pointer(sig))
	} else {
		// Known symbol: use its type; unknown: infer a non-variadic
		// signature from the argument list.
		callee = bp.lookup(calleeName)
		if callee == nil {
			argTypes := make([]*core.Type, len(args))
			for i, a := range args {
				argTypes[i] = a.Type()
			}
			inferred := bp.ctx.Function(retTy, argTypes, false)
			callee, err = bp.resolve(calleeName, bp.ctx.Pointer(inferred))
		} else {
			ct := callee.Type()
			if ct.Kind() != core.PointerKind || ct.Elem().Kind() != core.FunctionKind {
				return nil, bp.errf("%%%s is not callable (type %s)", calleeName, ct)
			}
			if ct.Elem().Ret() != retTy {
				return nil, bp.errf("call returns %s but %%%s returns %s",
					retTy, calleeName, ct.Elem().Ret())
			}
		}
	}
	if err != nil {
		return nil, err
	}

	if op == core.OpCall {
		return bp.bld.Call(callee, args, name), nil
	}
	if err := bp.expectIdent("to"); err != nil {
		return nil, err
	}
	normal, err := bp.parseLabel()
	if err != nil {
		return nil, err
	}
	if err := bp.expectIdent("unwind"); err != nil {
		return nil, err
	}
	uw, err := bp.parseLabel()
	if err != nil {
		return nil, err
	}
	return bp.bld.Invoke(callee, args, normal, uw, name), nil
}

// lookup finds a value by name without creating placeholders.
func (bp *bodyParser) lookup(name string) core.Value {
	if v, ok := bp.locals[name]; ok {
		return v
	}
	if g := bp.m.Global(name); g != nil {
		return g
	}
	if f := bp.m.Function(name); f != nil {
		return f
	}
	return nil
}
