package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/llee"
	"llva/internal/machine"
	"llva/internal/minic"
	"llva/internal/obj"
	"llva/internal/passes"
	"llva/internal/rt"
	"llva/internal/target"
	"llva/internal/telemetry"
)

// Config sizes a Server. System and Target are required; zero values
// elsewhere pick the documented defaults.
type Config struct {
	System *llee.System
	Target *target.Desc

	Workers int // concurrent executing sessions (default: GOMAXPROCS)
	Queue   int // admitted-but-not-started capacity (default: 4×Workers)

	MemSize    uint64 // per-session simulated address space (0: llee default)
	DefaultGas uint64 // budget when the request omits gas (0: unmetered)
	MaxGas     uint64 // hard cap on requested gas (0: uncapped)

	TenantRate  float64 // admitted requests/sec per tenant (0: unlimited)
	TenantBurst int     // token-bucket burst (default 1)
	TenantGas   uint64  // aggregate cycle budget per tenant (0: unlimited)

	MaxOutput int // per-run captured output bytes (default 64 KiB)

	// PoolSessions caps the reusable sessions kept per module (default:
	// Workers; negative disables pooling). Target and MemSize are fixed
	// per server, so (module state, target, memsize) keying collapses to
	// the module's content stamp. Only sessions llee reports Resettable
	// — offline-translated, no SMC redirect, no profiler — are pooled;
	// anything else is discarded after its run, never reset.
	PoolSessions int
}

// Server executes runs of registered modules on a bounded worker pool
// of llee Sessions sharing one System. Admission control happens before
// anything executes: draining, unknown module, tenant rate limit,
// tenant gas budget, and a full queue each refuse the request with a
// typed wire error — a shed request never starts executing.
type Server struct {
	cfg     Config
	tele    *telemetry.Registry
	limiter *tenantLimiter

	modMu sync.RWMutex
	mods  map[string]*moduleEntry

	jobMu  sync.Mutex
	jobs   map[string]*job
	jobSeq atomic.Uint64

	queue    chan *job
	qMu      sync.RWMutex
	qClosed  bool
	draining atomic.Bool
	wg       sync.WaitGroup

	// pool holds finished reusable sessions keyed by module stamp, each
	// list capped at poolCap. Workers pop, Reset, run, and push back;
	// a replaced module's orphaned stamp is dropped wholesale.
	poolMu  sync.Mutex
	pool    map[string][]*llee.Session
	poolCap int
}

type moduleEntry struct {
	mod   *core.Module
	stamp string
}

// job states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

type job struct {
	id       string
	req      RunRequest
	mod      *moduleEntry
	gas      uint64
	ctx      context.Context
	cancel   context.CancelFunc
	admitted time.Time

	mu     sync.Mutex
	state  string
	result *RunResponse
	errB   *errorBody
	status int
	done   chan struct{}
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

func (j *job) finish(status int, res *RunResponse, eb *errorBody) {
	j.mu.Lock()
	if eb != nil {
		j.state = stateFailed
	} else {
		j.state = stateDone
	}
	j.status = status
	j.result = res
	j.errB = eb
	j.mu.Unlock()
	j.cancel()
	close(j.done)
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.System == nil || cfg.Target == nil {
		return nil, errors.New("serve: Config.System and Config.Target are required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.Workers
	}
	if cfg.MaxOutput <= 0 {
		cfg.MaxOutput = 64 << 10
	}
	poolCap := cfg.PoolSessions
	switch {
	case poolCap < 0:
		poolCap = 0
	case poolCap == 0:
		poolCap = cfg.Workers
	}
	s := &Server{
		cfg:     cfg,
		tele:    cfg.System.Telemetry(),
		limiter: newTenantLimiter(cfg.TenantRate, cfg.TenantBurst),
		mods:    make(map[string]*moduleEntry),
		jobs:    make(map[string]*job),
		queue:   make(chan *job, cfg.Queue),
		pool:    make(map[string][]*llee.Session),
		poolCap: poolCap,
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Load compiles and registers a module under req.Name (replacing any
// previous registration of that name).
func (s *Server) Load(req LoadRequest) (LoadResponse, error) {
	if req.Name == "" || req.Source == "" {
		return LoadResponse{}, fmt.Errorf("%w: name and source are required", llee.ErrBadModule)
	}
	var m *core.Module
	var err error
	switch req.Lang {
	case "", "c":
		m, err = minic.Compile(req.Name+".c", req.Source)
		if err == nil {
			_, err = passes.Optimize(m)
		}
	case "llva":
		m, err = asm.Parse(req.Name, req.Source)
	default:
		return LoadResponse{}, fmt.Errorf("%w: unknown lang %q", llee.ErrBadModule, req.Lang)
	}
	if err != nil {
		return LoadResponse{}, fmt.Errorf("%w: %v", llee.ErrBadModule, err)
	}
	m.Name = req.Name
	if err := core.Verify(m); err != nil {
		return LoadResponse{}, fmt.Errorf("%w: %v", llee.ErrBadModule, err)
	}
	enc, err := obj.Encode(m)
	if err != nil {
		return LoadResponse{}, fmt.Errorf("%w: %v", llee.ErrBadModule, err)
	}
	ent := &moduleEntry{mod: m, stamp: llee.Stamp(enc)}
	// Translate the whole module now, before it is runnable: the module
	// state goes offline, so every session of it installs direct-call
	// native code at setup — the precondition for pooled reuse. Paying
	// translation once at load is the paper's offline economics; without
	// this, the first request would create the state online and every
	// session would stay unpoolable for the System's lifetime.
	if err := s.cfg.System.Preload(ent.mod, s.cfg.Target); err != nil {
		return LoadResponse{}, err
	}
	s.modMu.Lock()
	old := s.mods[req.Name]
	s.mods[req.Name] = ent
	orphaned := old != nil && old.stamp != ent.stamp
	if orphaned {
		for _, e := range s.mods {
			if e.stamp == old.stamp {
				orphaned = false
				break
			}
		}
	}
	s.modMu.Unlock()
	if orphaned {
		s.poolMu.Lock()
		delete(s.pool, old.stamp)
		s.poolMu.Unlock()
	}
	return LoadResponse{Name: req.Name, Stamp: ent.stamp}, nil
}

// admit runs the full admission pipeline. On refusal it returns a
// status+errorBody and the job is never created; on admission the job
// is queued and owned by the worker pool.
func (s *Server) admit(ctx context.Context, req RunRequest) (*job, int, *errorBody) {
	s.tele.Counter(MetricRequests).Inc()
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable,
			&errorBody{Code: CodeDraining, Message: "server is draining", RetryAfter: 10}
	}
	s.modMu.RLock()
	mod := s.mods[req.Module]
	s.modMu.RUnlock()
	if mod == nil {
		return nil, http.StatusNotFound,
			&errorBody{Code: CodeNotFound, Message: "unknown module " + req.Module}
	}
	if ok, wait := s.limiter.allow(req.Tenant); !ok {
		s.tele.Counter(MetricRateLimited).Inc()
		return nil, http.StatusTooManyRequests,
			&errorBody{Code: CodeRateLimited, Message: "tenant over request rate", RetryAfter: wait}
	}
	if s.cfg.TenantGas > 0 && req.Tenant != "" {
		if used := s.cfg.System.TenantUsage(req.Tenant).Cycles; used >= s.cfg.TenantGas {
			s.tele.Counter(MetricGasDenied).Inc()
			return nil, http.StatusTooManyRequests, &errorBody{
				Code:    CodeGasBudget,
				Message: fmt.Sprintf("tenant gas budget exhausted: %d of %d cycles used", used, s.cfg.TenantGas),
			}
		}
	}
	gas := req.Gas
	if gas == 0 {
		gas = s.cfg.DefaultGas
	}
	if s.cfg.MaxGas > 0 && (gas == 0 || gas > s.cfg.MaxGas) {
		gas = s.cfg.MaxGas
	}
	if req.Entry == "" {
		req.Entry = "main"
	}
	j := &job{
		id:       "j" + strconv.FormatUint(s.jobSeq.Add(1), 36),
		req:      req,
		mod:      mod,
		gas:      gas,
		state:    stateQueued,
		admitted: time.Now(),
		done:     make(chan struct{}),
	}
	j.ctx, j.cancel = context.WithCancel(ctx)
	// Non-blocking enqueue is the load-shedding decision: a full queue
	// means the pool is saturated and the request is refused NOW, before
	// any execution state exists.
	s.qMu.RLock()
	if s.qClosed {
		s.qMu.RUnlock()
		return nil, http.StatusServiceUnavailable,
			&errorBody{Code: CodeDraining, Message: "server is draining", RetryAfter: 10}
	}
	select {
	case s.queue <- j:
		s.qMu.RUnlock()
	default:
		s.qMu.RUnlock()
		s.tele.Counter(MetricShed).Inc()
		return nil, http.StatusTooManyRequests,
			&errorBody{Code: CodeShed, Message: "worker pool saturated", RetryAfter: 1}
	}
	s.tele.Counter(MetricAccepted).Inc()
	s.tele.Gauge(MetricQueueDepth).Add(1)
	s.jobMu.Lock()
	s.jobs[j.id] = j
	s.jobMu.Unlock()
	return j, 0, nil
}

// workerState is one worker's reusable per-job scratch: the output
// buffer, the limit writer wrapping it, and the session-option slice.
// A worker runs one job at a time, so none of it needs pooling or
// locking — the steady state allocates neither buffer nor slice.
type workerState struct {
	out  bytes.Buffer
	lw   limitWriter
	opts []llee.SessionOption
}

func (s *Server) worker() {
	defer s.wg.Done()
	w := &workerState{}
	for j := range s.queue {
		s.runJob(w, j)
	}
}

// poolGet pops a reusable session for the module stamp, or nil.
func (s *Server) poolGet(stamp string) *llee.Session {
	if s.poolCap == 0 {
		return nil
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	lst := s.pool[stamp]
	if len(lst) == 0 {
		return nil
	}
	sess := lst[len(lst)-1]
	lst[len(lst)-1] = nil
	s.pool[stamp] = lst[:len(lst)-1]
	return sess
}

// poolPut returns a finished session to the pool if it is still
// resettable (an SMC redirect or online mode disqualifies it — such
// sessions are evicted, never reset) and the module's list has room.
func (s *Server) poolPut(stamp string, sess *llee.Session) {
	if s.poolCap == 0 || !sess.Resettable() {
		return
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if lst := s.pool[stamp]; len(lst) < s.poolCap {
		s.pool[stamp] = append(lst, sess)
	}
}

// sessionFor acquires the job's session: a pooled one reset to pristine
// state (re-armed with this job's output writer, gas and tenant) when
// available, else a cold build sealed for later reuse.
func (s *Server) sessionFor(w *workerState, j *job) (*llee.Session, bool, error) {
	if sess := s.poolGet(j.mod.stamp); sess != nil {
		if err := sess.Reset(&w.lw, j.gas, j.req.Tenant); err == nil {
			s.tele.Counter(MetricSessionReuse).Inc()
			return sess, true, nil
		}
		// Reset refused (poolPut filters, so this is belt-and-braces):
		// drop the session and build cold.
	}
	s.tele.Counter(MetricSessionCold).Inc()
	w.opts = append(w.opts[:0],
		llee.WithGas(j.gas), llee.WithTenant(j.req.Tenant), llee.WithReuse(s.poolCap > 0))
	if s.cfg.MemSize != 0 {
		w.opts = append(w.opts, llee.WithMemSize(s.cfg.MemSize))
	}
	sess, err := s.cfg.System.NewSession(j.mod.mod, s.cfg.Target, &w.lw, w.opts...)
	return sess, false, err
}

// runJob executes one admitted job on this worker's goroutine.
func (s *Server) runJob(w *workerState, j *job) {
	s.tele.Gauge(MetricQueueDepth).Add(-1)
	if j.ctx.Err() != nil {
		// Canceled while queued: it never starts.
		s.tele.Counter(MetricCanceled).Inc()
		j.finish(http.StatusRequestTimeout, nil,
			&errorBody{Code: CodeCanceled, Message: "canceled before execution started"})
		return
	}
	s.tele.Counter(MetricStarted).Inc()
	s.tele.Gauge(MetricActive).Add(1)
	defer s.tele.Gauge(MetricActive).Add(-1)
	j.setState(stateRunning)
	started := time.Now()
	queueNS := started.Sub(j.admitted).Nanoseconds()
	s.tele.Histogram(MetricQueueNS).Observe(queueNS)

	w.out.Reset()
	w.lw = limitWriter{w: &w.out, limit: s.cfg.MaxOutput}
	sess, reused, err := s.sessionFor(w, j)
	if err != nil {
		s.tele.Histogram(MetricExecNS).Observe(time.Since(started).Nanoseconds())
		s.tele.Counter(MetricErrors).Inc()
		status, eb := classifyError(err, nil)
		j.finish(status, nil, eb)
		return
	}
	res, err := sess.Run(j.ctx, j.req.Entry, j.req.Args...)
	execNS := time.Since(started).Nanoseconds()
	s.tele.Histogram(MetricExecNS).Observe(execNS)
	var ee *rt.ExitError
	if errors.As(err, &ee) {
		// exit() is an outcome: the exit code is the value.
		res.Value = uint64(uint32(int32(ee.Code)))
		err = nil
	}
	if err != nil {
		status, eb := classifyError(err, s.tele)
		j.finish(status, nil, eb)
		// Errored runs left the machine consistent (traps, gas and
		// cancels unwind at block boundaries): the session pools fine.
		s.poolPut(j.mod.stamp, sess)
		return
	}
	s.tele.Counter(MetricCompleted).Inc()
	j.finish(http.StatusOK, &RunResponse{
		Value:    res.Value,
		Output:   w.out.String(),
		Instrs:   res.Instrs,
		Cycles:   res.Cycles,
		WallNS:   res.Wall.Nanoseconds(),
		QueueNS:  queueNS,
		ExecNS:   execNS,
		CacheHit: sess.CacheHit(),
		Reused:   reused,
	}, nil)
	s.poolPut(j.mod.stamp, sess)
}

// classifyError maps a run failure into the wire taxonomy (and bumps
// the outcome counter when tele is non-nil).
func classifyError(err error, tele *telemetry.Registry) (int, *errorBody) {
	var ge *machine.GasError
	if errors.As(err, &ge) {
		if tele != nil {
			tele.Counter(MetricOutOfGas).Inc()
		}
		return http.StatusPaymentRequired, &errorBody{
			Code: CodeOutOfGas, Message: err.Error(),
			CyclesUsed: ge.Used, GasBudget: ge.Budget,
		}
	}
	var te *llee.ErrTrap
	if errors.As(err, &te) {
		if tele != nil {
			tele.Counter(MetricErrors).Inc()
		}
		return http.StatusUnprocessableEntity, &errorBody{Code: CodeTrap, Message: err.Error()}
	}
	if errors.Is(err, llee.ErrCanceled) || errors.Is(err, context.Canceled) {
		if tele != nil {
			tele.Counter(MetricCanceled).Inc()
		}
		return http.StatusRequestTimeout, &errorBody{Code: CodeCanceled, Message: err.Error()}
	}
	if errors.Is(err, llee.ErrBadModule) {
		if tele != nil {
			tele.Counter(MetricErrors).Inc()
		}
		return http.StatusBadRequest, &errorBody{Code: CodeBadModule, Message: err.Error()}
	}
	if tele != nil {
		tele.Counter(MetricErrors).Inc()
	}
	return http.StatusInternalServerError, &errorBody{Code: CodeInternal, Message: err.Error()}
}

// Drain stops admission (new requests get 503 draining), lets queued
// and running jobs finish, and stops the workers. If ctx expires first,
// the remaining runs are canceled at their next block boundary and
// Drain returns ctx.Err after the workers exit.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.qMu.Lock()
	if !s.qClosed {
		s.qClosed = true
		close(s.queue)
	}
	s.qMu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.jobMu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.jobMu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Register installs the /api/v1 endpoints on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/api/v1/load", s.handleLoad)
	mux.HandleFunc("/api/v1/run", s.handleRun)
	mux.HandleFunc("/api/v1/submit", s.handleSubmit)
	mux.HandleFunc("/api/v1/status", s.handleStatus)
	mux.HandleFunc("/api/v1/cancel", s.handleCancel)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, eb *errorBody) {
	if eb.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(eb.RetryAfter))
	}
	writeJSON(w, status, struct {
		Error *errorBody `json:"error"`
	}{eb})
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req LoadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, &errorBody{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable,
			&errorBody{Code: CodeDraining, Message: "server is draining", RetryAfter: 10})
		return
	}
	resp, err := s.Load(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, &errorBody{Code: CodeBadModule, Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRun is the synchronous path: admit, wait for the worker to
// finish the job, relay the outcome. The job's context is the request's
// — a client hanging up cancels its run at the next block boundary.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, &errorBody{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	j, status, eb := s.admit(r.Context(), req)
	if eb != nil {
		writeError(w, status, eb)
		return
	}
	<-j.done
	s.dropJob(j.id)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.errB != nil {
		writeError(w, j.status, j.errB)
		return
	}
	writeJSON(w, http.StatusOK, j.result)
}

// handleSubmit is the asynchronous path: admit and return the job ID.
// The job runs under its own context, canceled only via /cancel.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, &errorBody{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	j, status, eb := s.admit(context.Background(), req)
	if eb != nil {
		writeError(w, status, eb)
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{Job: j.id})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("job")
	s.jobMu.Lock()
	j := s.jobs[id]
	s.jobMu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, &errorBody{Code: CodeNotFound, Message: "unknown job " + id})
		return
	}
	j.mu.Lock()
	resp := StatusResponse{Job: j.id, State: j.state, Result: j.result, Error: j.errB}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("job")
	s.jobMu.Lock()
	j := s.jobs[id]
	s.jobMu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, &errorBody{Code: CodeNotFound, Message: "unknown job " + id})
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, struct{}{})
}

// dropJob removes a finished sync job from the table (async jobs stay
// queryable until the server exits).
func (s *Server) dropJob(id string) {
	s.jobMu.Lock()
	delete(s.jobs, id)
	s.jobMu.Unlock()
}

// limitWriter caps captured program output so a guest cannot balloon
// the daemon's memory; excess bytes are counted but dropped.
type limitWriter struct {
	w     *bytes.Buffer
	limit int
}

func (lw *limitWriter) Write(p []byte) (int, error) {
	if room := lw.limit - lw.w.Len(); room > 0 {
		if len(p) > room {
			lw.w.Write(p[:room])
		} else {
			lw.w.Write(p)
		}
	}
	return len(p), nil
}
