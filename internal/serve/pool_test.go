package serve

import (
	"context"
	"testing"
)

// plantScanProg is the adversarial pooled-session pair: tenant A's
// entry fills a heap block with a secret; tenant B's entry allocates
// the same block (the reset allocator is deterministic, so it lands on
// the same address) and counts nonzero words. Any survivor from A's
// run shows up in B's return value.
const plantScanProg = `
int plant() {
	int i;
	int *p = malloc(8192);
	for (i = 0; i < 2048; i++) p[i] = 0x5EC2E75E;
	return 1;
}
int scan() {
	int i, n = 0;
	int *p = malloc(8192);
	for (i = 0; i < 2048; i++) if (p[i] != 0) n = n + 1;
	return n;
}
int main() { return 0; }
`

// TestPoolReuseBitIdentical: with one worker, consecutive runs of the
// same module are served by one pooled session — after the cold first
// run every run reports Reused, and value, output and cycle count stay
// bit-identical to the cold run.
func TestPoolReuseBitIdentical(t *testing.T) {
	srv, c, _ := newTestServer(t, Config{Workers: 1})
	mustLoad(t, c, "quick", quickProg)

	var cold RunResponse
	for i := 0; i < 3; i++ {
		resp, err := c.Run(context.Background(), RunRequest{Module: "quick", Tenant: "t"})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if resp.Output != "328350\n" {
			t.Fatalf("run %d: output = %q", i, resp.Output)
		}
		if resp.QueueNS < 0 || resp.ExecNS <= 0 {
			t.Errorf("run %d: latency split queue=%d exec=%d", i, resp.QueueNS, resp.ExecNS)
		}
		if i == 0 {
			if resp.Reused {
				t.Error("first run reports Reused")
			}
			cold = resp
			continue
		}
		if !resp.Reused {
			t.Errorf("run %d not served from the pool", i)
		}
		if resp.Value != cold.Value || resp.Cycles != cold.Cycles || resp.Instrs != cold.Instrs {
			t.Errorf("run %d diverged from cold run: {v=%d c=%d i=%d} vs {v=%d c=%d i=%d}",
				i, resp.Value, resp.Cycles, resp.Instrs, cold.Value, cold.Cycles, cold.Instrs)
		}
	}
	if reuse := srv.tele.CounterValue(MetricSessionReuse); reuse != 2 {
		t.Errorf("session_reuse = %d, want 2", reuse)
	}
	if coldN := srv.tele.CounterValue(MetricSessionCold); coldN != 1 {
		t.Errorf("session_cold = %d, want 1", coldN)
	}
}

// TestPoolCrossTenantIsolation is the end-to-end adversarial gate:
// tenant A plants a secret, tenant B's run is provably served by the
// same pooled session (Reused), and B observes only zeros.
func TestPoolCrossTenantIsolation(t *testing.T) {
	_, c, _ := newTestServer(t, Config{Workers: 1})
	mustLoad(t, c, "adv", plantScanProg)

	a, err := c.Run(context.Background(), RunRequest{Module: "adv", Entry: "plant", Tenant: "A"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != 1 {
		t.Fatalf("plant = %d, want 1", a.Value)
	}
	b, err := c.Run(context.Background(), RunRequest{Module: "adv", Entry: "scan", Tenant: "B"})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Reused {
		t.Fatal("tenant B did not reuse tenant A's session; isolation unexercised")
	}
	if b.Value != 0 {
		t.Fatalf("tenant B read %d secret words from tenant A's run", b.Value)
	}
}

// TestPoolDisabled: PoolSessions < 0 turns pooling off — every run is
// cold and nothing reports Reused.
func TestPoolDisabled(t *testing.T) {
	srv, c, _ := newTestServer(t, Config{Workers: 1, PoolSessions: -1})
	mustLoad(t, c, "quick", quickProg)
	for i := 0; i < 2; i++ {
		resp, err := c.Run(context.Background(), RunRequest{Module: "quick"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Reused {
			t.Errorf("run %d reused with pooling disabled", i)
		}
	}
	if n := srv.tele.CounterValue(MetricSessionReuse); n != 0 {
		t.Errorf("session_reuse = %d with pooling disabled", n)
	}
	if n := srv.tele.CounterValue(MetricSessionCold); n != 2 {
		t.Errorf("session_cold = %d, want 2", n)
	}
}

// TestPoolModuleReplaceEvicts: re-registering a module under the same
// name with different source must orphan the old stamp's pooled
// sessions — the next run executes the new code, cold.
func TestPoolModuleReplaceEvicts(t *testing.T) {
	_, c, _ := newTestServer(t, Config{Workers: 1})
	mustLoad(t, c, "m", quickProg)
	if resp, err := c.Run(context.Background(), RunRequest{Module: "m"}); err != nil || resp.Output != "328350\n" {
		t.Fatalf("v1 run: %v %q", err, resp.Output)
	}
	mustLoad(t, c, "m", `int main() { print_int(7); print_nl(); return 7; }`)
	resp, err := c.Run(context.Background(), RunRequest{Module: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Reused {
		t.Error("run after module replacement reused a stale session")
	}
	if resp.Output != "7\n" || resp.Value != 7 {
		t.Errorf("replaced module ran old code: value=%d output=%q", resp.Value, resp.Output)
	}
}
