package serve

import (
	"sync"
	"time"
)

// tenantLimiter is a lazily-refilled token bucket per tenant: Rate
// tokens per second accrue up to Burst, each admitted request spends
// one. The zero rate disables limiting. Refill happens on access, so an
// idle tenant costs nothing.
type tenantLimiter struct {
	rate  float64 // tokens per second (0: unlimited)
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // test hook
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newTenantLimiter(rate float64, burst int) *tenantLimiter {
	if burst < 1 {
		burst = 1
	}
	return &tenantLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends one token from the tenant's bucket. The second result is
// the back-off hint in whole seconds (≥1) when refused.
func (l *tenantLimiter) allow(tenant string) (bool, int) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := int((1 - b.tokens) / l.rate)
	if wait < 1 {
		wait = 1
	}
	return false, wait
}
