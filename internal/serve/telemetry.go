package serve

// Metric families recorded by the serving layer, all under serve.* in
// the shared telemetry registry (exported at /metrics by llva-serve).
const (
	MetricRequests    = "serve.requests"     // every run/submit that reached admission
	MetricAccepted    = "serve.accepted"     // admitted into the queue
	MetricStarted     = "serve.started"      // picked up by a worker (execution began)
	MetricCompleted   = "serve.completed"    // finished successfully
	MetricShed        = "serve.shed"         // refused: worker pool saturated
	MetricRateLimited = "serve.rate_limited" // refused: tenant over request rate
	MetricGasDenied   = "serve.gas_denied"   // refused: tenant aggregate gas budget spent
	MetricOutOfGas    = "serve.out_of_gas"   // runs stopped by their per-run gas budget
	MetricErrors      = "serve.errors"       // runs that failed (trap, bad module, internal)
	MetricCanceled    = "serve.canceled"     // runs canceled by the client or drain
	MetricActive      = "serve.active"       // gauge: runs executing right now
	MetricQueueDepth  = "serve.queue_depth"  // gauge: admitted, not yet started

	// The former serve.latency_ns histogram is split so scheduling wins
	// are distinguishable from execution wins: queue_ns is admission ->
	// worker pickup, exec_ns is pickup -> completion (session acquisition
	// or reset included — that is the cost pooling amortizes).
	MetricQueueNS = "serve.queue_ns" // histogram: admission -> worker pickup
	MetricExecNS  = "serve.exec_ns"  // histogram: worker pickup -> completion

	// Session-pool outcomes: reuse is a pooled session reset and rerun,
	// cold a full NewSession (first touch, pool empty, or unpoolable).
	MetricSessionReuse = "serve.session_reuse" // runs served by a pooled session
	MetricSessionCold  = "serve.session_cold"  // runs that built a session from scratch
)
