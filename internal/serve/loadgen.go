package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"llva/internal/telemetry"
)

// LoadGenConfig drives a burst of concurrent sessions against a
// running server. Each session loops synchronous runs of Module until
// the shared Total counter is spent (or Duration elapses, when set).
type LoadGenConfig struct {
	Base     string        // server base URL
	Module   string        // registered module name
	Entry    string        // entry symbol (default "main")
	Sessions int           // concurrent client sessions
	Total    int           // total runs to attempt (0: duration-bound)
	Duration time.Duration // stop after this long (0: total-bound)
	Gas      uint64        // per-run gas budget forwarded to the server
	Tenant   string        // tenant label on every request
}

// LoadGenReport aggregates a load-generation burst. Total latency is
// client-observed (request out to response in); the queue/exec splits
// are the server-reported halves of it, so scheduling delay and
// execution cost are separately attributable. SessionReuse/SessionCold
// are the server's pool counters over the burst (deltas read from
// /metrics; zero when the endpoint is not mounted).
type LoadGenReport struct {
	Sessions       int     `json:"sessions"`
	Attempted      int64   `json:"attempted"`
	Completed      int64   `json:"completed"`
	OutOfGas       int64   `json:"out_of_gas"`
	Shed           int64   `json:"shed"`
	RateLimited    int64   `json:"rate_limited"`
	Canceled       int64   `json:"canceled"`
	Errors5xx      int64   `json:"errors_5xx"`
	OtherErrors    int64   `json:"other_errors"`
	WallSeconds    float64 `json:"wall_seconds"`
	SessionsPerSec float64 `json:"sessions_per_sec"` // completed runs / wall
	P50LatencyNS   int64   `json:"p50_latency_ns"`
	P99LatencyNS   int64   `json:"p99_latency_ns"`
	MaxLatencyNS   int64   `json:"max_latency_ns"`
	QueueP50NS     int64   `json:"queue_p50_ns"`
	QueueP99NS     int64   `json:"queue_p99_ns"`
	ExecP50NS      int64   `json:"exec_p50_ns"`
	ExecP99NS      int64   `json:"exec_p99_ns"`
	SessionReuse   int64   `json:"session_reuse"`
	SessionCold    int64   `json:"session_cold"`
}

// poolCounters reads the server's session-pool counters from /metrics.
// Best-effort: a server without the metrics endpoint (tests mounting
// only /api/v1) reports zeros.
func poolCounters(ctx context.Context, base string) (reuse, cold int64, ok bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return 0, 0, false
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, false
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, 0, false
	}
	return int64(snap.Counters[MetricSessionReuse]), int64(snap.Counters[MetricSessionCold]), true
}

func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[len(sorted)*p/100]
}

// RunLoadGen executes the burst and aggregates per-run outcomes.
// Refusals (shed, rate-limited) are counted, not retried: the report
// shows how the server held up, not how patient the clients were.
func RunLoadGen(ctx context.Context, cfg LoadGenConfig) (LoadGenReport, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.Total <= 0 && cfg.Duration <= 0 {
		return LoadGenReport{}, errors.New("loadgen: need Total or Duration")
	}
	reuse0, cold0, _ := poolCounters(ctx, cfg.Base)
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}
	client := NewClient(cfg.Base)
	req := RunRequest{Module: cfg.Module, Entry: cfg.Entry, Gas: cfg.Gas, Tenant: cfg.Tenant}

	var (
		remaining atomic.Int64
		attempted atomic.Int64
		completed atomic.Int64
		outOfGas  atomic.Int64
		shed      atomic.Int64
		rateLtd   atomic.Int64
		canceled  atomic.Int64
		err5xx    atomic.Int64
		otherErr  atomic.Int64

		latMu     sync.Mutex
		latencies []int64
		queueLat  []int64
		execLat   []int64
	)
	if cfg.Total > 0 {
		remaining.Store(int64(cfg.Total))
	} else {
		remaining.Store(1 << 62) // duration-bound: effectively unlimited
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil && remaining.Add(-1) >= 0 {
				attempted.Add(1)
				t0 := time.Now()
				resp, err := client.Run(ctx, req)
				lat := time.Since(t0).Nanoseconds()
				switch {
				case err == nil:
					completed.Add(1)
					latMu.Lock()
					latencies = append(latencies, lat)
					queueLat = append(queueLat, resp.QueueNS)
					execLat = append(execLat, resp.ExecNS)
					latMu.Unlock()
				default:
					var re *RemoteError
					switch {
					case errors.As(err, &re) && re.Code == CodeOutOfGas:
						outOfGas.Add(1)
					case errors.As(err, &re) && re.Code == CodeShed:
						shed.Add(1)
					case errors.As(err, &re) && re.Code == CodeRateLimited:
						rateLtd.Add(1)
					case errors.As(err, &re) && re.Status/100 == 5:
						err5xx.Add(1)
					case ctx.Err() != nil:
						canceled.Add(1)
					default:
						otherErr.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	rep := LoadGenReport{
		Sessions:    cfg.Sessions,
		Attempted:   attempted.Load(),
		Completed:   completed.Load(),
		OutOfGas:    outOfGas.Load(),
		Shed:        shed.Load(),
		RateLimited: rateLtd.Load(),
		Canceled:    canceled.Load(),
		Errors5xx:   err5xx.Load(),
		OtherErrors: otherErr.Load(),
		WallSeconds: wall.Seconds(),
	}
	if wall > 0 {
		rep.SessionsPerSec = float64(rep.Completed) / wall.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		sort.Slice(queueLat, func(a, b int) bool { return queueLat[a] < queueLat[b] })
		sort.Slice(execLat, func(a, b int) bool { return execLat[a] < execLat[b] })
		rep.P50LatencyNS = percentile(latencies, 50)
		rep.P99LatencyNS = percentile(latencies, 99)
		rep.MaxLatencyNS = latencies[len(latencies)-1]
		rep.QueueP50NS = percentile(queueLat, 50)
		rep.QueueP99NS = percentile(queueLat, 99)
		rep.ExecP50NS = percentile(execLat, 50)
		rep.ExecP99NS = percentile(execLat, 99)
	}
	// Pool counters are cumulative per process: report the burst's delta.
	if reuse1, cold1, ok := poolCounters(context.WithoutCancel(ctx), cfg.Base); ok {
		rep.SessionReuse = reuse1 - reuse0
		rep.SessionCold = cold1 - cold0
	}
	return rep, nil
}
