package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"llva/internal/llee"
	"llva/internal/target"
)

const quickProg = `
int work(int n) {
	int i, acc = 0;
	for (i = 0; i < n; i++) acc += i * i;
	return acc;
}
int main() {
	print_int(work(100)); print_nl();
	return 0;
}
`

// slowProg loops long enough that a run reliably outlives the test's
// observation window; it only ends via cancel or gas exhaustion.
const slowProg = `
int main() {
	int i, j, acc = 0;
	for (i = 0; i < 1000000; i++)
		for (j = 0; j < 1000000; j++)
			acc += i + j;
	return acc;
}
`

// newTestServer builds a Server on its own System plus an httptest
// front end, and returns a connected client.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client, *llee.System) {
	t.Helper()
	sys := llee.NewSystem()
	cfg.System = sys
	cfg.Target = target.VX86
	if cfg.MemSize == 0 {
		cfg.MemSize = 1 << 22
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	srv.Register(mux)
	hs := httptest.NewServer(mux)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
		_ = sys.Close()
	})
	return srv, NewClient(hs.URL), sys
}

func mustLoad(t *testing.T, c *Client, name, src string) {
	t.Helper()
	resp, err := c.Load(context.Background(), LoadRequest{Name: name, Source: src})
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	if resp.Stamp == "" {
		t.Fatalf("load %s: empty stamp", name)
	}
}

func TestSyncRun(t *testing.T) {
	_, c, _ := newTestServer(t, Config{Workers: 2})
	mustLoad(t, c, "quick", quickProg)

	res, err := c.Run(context.Background(), RunRequest{Module: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	if want := "328350\n"; res.Output != want {
		t.Fatalf("output %q, want %q", res.Output, want)
	}
	if res.Cycles == 0 || res.Instrs == 0 {
		t.Fatalf("missing stats: %+v", res)
	}
}

func TestLoadErrors(t *testing.T) {
	_, c, _ := newTestServer(t, Config{Workers: 1})
	if _, err := c.Load(context.Background(), LoadRequest{Name: "bad", Source: "int main( {"}); err == nil {
		t.Fatal("want compile error")
	} else if !errors.Is(err, llee.ErrBadModule) {
		t.Fatalf("errors.Is(ErrBadModule) false: %v", err)
	}
	if _, err := c.Run(context.Background(), RunRequest{Module: "nosuch"}); err == nil {
		t.Fatal("want not-found error")
	} else {
		var re *RemoteError
		if !errors.As(err, &re) || re.Code != CodeNotFound || re.Status != http.StatusNotFound {
			t.Fatalf("want 404 not_found, got %v", err)
		}
	}
}

// TestOutOfGasOverHTTP: a gas-limited run comes back as 402 out_of_gas;
// the client error satisfies errors.Is(llee.ErrOutOfGas) across the
// wire and carries a CyclesUsed that is identical on every repeat.
func TestOutOfGasOverHTTP(t *testing.T) {
	_, c, sys := newTestServer(t, Config{Workers: 2})
	mustLoad(t, c, "slow", slowProg)

	const budget = 10_000
	var firstUsed uint64
	for i := 0; i < 3; i++ {
		_, err := c.Run(context.Background(), RunRequest{Module: "slow", Gas: budget})
		if err == nil {
			t.Fatal("want out-of-gas error")
		}
		if !errors.Is(err, llee.ErrOutOfGas) {
			t.Fatalf("errors.Is(llee.ErrOutOfGas) false across HTTP: %v", err)
		}
		var re *RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("no *RemoteError: %v", err)
		}
		if re.Status != http.StatusPaymentRequired || re.Code != CodeOutOfGas {
			t.Fatalf("want 402 out_of_gas, got %d %s", re.Status, re.Code)
		}
		if re.CyclesUsed < budget || re.GasBudget != budget {
			t.Fatalf("used %d of budget %d (wire says %d)", re.CyclesUsed, budget, re.GasBudget)
		}
		if i == 0 {
			firstUsed = re.CyclesUsed
		} else if re.CyclesUsed != firstUsed {
			t.Fatalf("nondeterministic exhaustion over HTTP: %d vs %d", firstUsed, re.CyclesUsed)
		}
	}
	if got := sys.Telemetry().CounterValue(MetricOutOfGas); got != 3 {
		t.Fatalf("serve.out_of_gas = %d, want 3", got)
	}
}

// TestDefaultAndMaxGas: a request without gas gets the server default;
// a request over the cap is clamped to MaxGas.
func TestDefaultAndMaxGas(t *testing.T) {
	_, c, _ := newTestServer(t, Config{Workers: 1, DefaultGas: 5_000, MaxGas: 20_000})
	mustLoad(t, c, "slow", slowProg)

	_, err := c.Run(context.Background(), RunRequest{Module: "slow"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeOutOfGas || re.GasBudget != 5_000 {
		t.Fatalf("default gas not applied: %v", err)
	}
	_, err = c.Run(context.Background(), RunRequest{Module: "slow", Gas: 1 << 60})
	if !errors.As(err, &re) || re.Code != CodeOutOfGas || re.GasBudget != 20_000 {
		t.Fatalf("max gas not enforced: %v", err)
	}
}

// TestSaturationSheds: with one worker and a one-slot queue, requests
// beyond capacity are refused with 429 shed — and the started counter
// proves a shed request never began executing.
func TestSaturationSheds(t *testing.T) {
	srv, c, sys := newTestServer(t, Config{Workers: 1, Queue: 1})
	mustLoad(t, c, "slow", slowProg)
	mustLoad(t, c, "quick", quickProg)

	// Occupy the worker and the queue slot with unbounded slow runs.
	ctx := context.Background()
	j1, err := c.Submit(ctx, RunRequest{Module: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, j1, stateRunning)
	j2, err := c.Submit(ctx, RunRequest{Module: "slow"})
	if err != nil {
		t.Fatal(err)
	}

	startedBefore := sys.Telemetry().CounterValue(MetricStarted)
	const burst = 8
	var wg sync.WaitGroup
	var shed int64
	var shedMu sync.Mutex
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Run(ctx, RunRequest{Module: "quick"})
			var re *RemoteError
			if errors.As(err, &re) && re.Code == CodeShed {
				if !errors.Is(err, ErrShed) {
					t.Error("shed error does not unwrap to ErrShed")
				}
				if re.Status != http.StatusTooManyRequests || re.RetryAfter < 1 {
					t.Errorf("shed response missing 429/Retry-After: %+v", re)
				}
				shedMu.Lock()
				shed++
				shedMu.Unlock()
			} else if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if shed != burst {
		t.Fatalf("shed %d of %d burst requests, want all", shed, burst)
	}
	// Execution never started for any shed request: only j1 is running.
	if got := sys.Telemetry().CounterValue(MetricStarted); got != startedBefore {
		t.Fatalf("serve.started moved %d -> %d during shedding", startedBefore, got)
	}
	if got := sys.Telemetry().CounterValue(MetricShed); got != burst {
		t.Fatalf("serve.shed = %d, want %d", got, burst)
	}

	// Cancel the blockers; both report canceled, j2 without ever starting.
	if err := c.Cancel(ctx, j2); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, j1); err != nil {
		t.Fatal(err)
	}
	st1, err := c.Wait(ctx, j1, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != stateFailed || st1.Error == nil || st1.Error.Code != CodeCanceled {
		t.Fatalf("j1 after cancel: %+v", st1)
	}
	st2, err := c.Wait(ctx, j2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != stateFailed || st2.Error == nil || st2.Error.Code != CodeCanceled {
		t.Fatalf("j2 after cancel: %+v", st2)
	}
	_ = srv
}

func waitState(t *testing.T, c *Client, job, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", job, want)
}

// TestTenantRateLimit: the per-tenant token bucket refuses the burst
// overflow with 429 rate_limited, independently per tenant.
func TestTenantRateLimit(t *testing.T) {
	_, c, _ := newTestServer(t, Config{Workers: 2, TenantRate: 0.001, TenantBurst: 2})
	mustLoad(t, c, "quick", quickProg)

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Run(ctx, RunRequest{Module: "quick", Tenant: "alice"}); err != nil {
			t.Fatalf("burst run %d: %v", i, err)
		}
	}
	_, err := c.Run(ctx, RunRequest{Module: "quick", Tenant: "alice"})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("errors.Is(ErrRateLimited) false: %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusTooManyRequests || re.RetryAfter < 1 {
		t.Fatalf("want 429 with Retry-After, got %v", err)
	}
	// A different tenant still has its own burst.
	if _, err := c.Run(ctx, RunRequest{Module: "quick", Tenant: "bob"}); err != nil {
		t.Fatalf("bob should be unaffected: %v", err)
	}
}

// TestTenantGasBudget: once a tenant's aggregate cycles cross the
// server's TenantGas, further requests are refused at admission.
func TestTenantGasBudget(t *testing.T) {
	_, c, _ := newTestServer(t, Config{Workers: 1, TenantGas: 1})
	mustLoad(t, c, "quick", quickProg)

	ctx := context.Background()
	// First run is admitted (usage 0 < 1) and spends well over a cycle.
	if _, err := c.Run(ctx, RunRequest{Module: "quick", Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Run(ctx, RunRequest{Module: "quick", Tenant: "alice"})
	if !errors.Is(err, ErrGasBudget) {
		t.Fatalf("errors.Is(ErrGasBudget) false: %v", err)
	}
	// The anonymous tenant is never budget-limited.
	if _, err := c.Run(ctx, RunRequest{Module: "quick"}); err != nil {
		t.Fatalf("anonymous run refused: %v", err)
	}
}

// TestSubmitStatusWait: the async path reports queued/running/done and
// returns the same result a sync run would.
func TestSubmitStatusWait(t *testing.T) {
	_, c, _ := newTestServer(t, Config{Workers: 1})
	mustLoad(t, c, "quick", quickProg)

	ctx := context.Background()
	job, err := c.Submit(ctx, RunRequest{Module: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, job, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != stateDone || st.Result == nil {
		t.Fatalf("job did not complete: %+v", st)
	}
	if want := "328350\n"; st.Result.Output != want {
		t.Fatalf("output %q, want %q", st.Result.Output, want)
	}
	if _, err := c.Status(ctx, "jnope"); err == nil {
		t.Fatal("want not-found for unknown job")
	}
}

// TestDrainRefuses: after Drain begins, new work is refused with 503
// draining while in-flight runs complete.
func TestDrainRefuses(t *testing.T) {
	srv, c, _ := newTestServer(t, Config{Workers: 1})
	mustLoad(t, c, "quick", quickProg)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := c.Run(context.Background(), RunRequest{Module: "quick"})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("errors.Is(ErrDraining) false: %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusServiceUnavailable {
		t.Fatalf("want 503, got %v", err)
	}
	if _, err := c.Load(context.Background(), LoadRequest{Name: "x", Source: quickProg}); err == nil {
		t.Fatal("load should be refused while draining")
	}
}

// TestLoadGenSmoke: the in-process load generator completes a short
// burst with no server-side failures.
func TestLoadGenSmoke(t *testing.T) {
	_, c, sys := newTestServer(t, Config{Workers: 4, Queue: 4096})
	mustLoad(t, c, "quick", quickProg)

	rep, err := RunLoadGen(context.Background(), LoadGenConfig{
		Base:     strings.TrimSuffix(c.Base, "/"),
		Module:   "quick",
		Sessions: 32,
		Total:    200,
		Gas:      10_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatalf("no completed runs: %+v", rep)
	}
	if rep.Errors5xx != 0 || rep.OtherErrors != 0 {
		t.Fatalf("server-side failures under load: %+v", rep)
	}
	if rep.Completed+rep.Shed+rep.OutOfGas != rep.Attempted {
		t.Fatalf("outcome accounting off: %+v", rep)
	}
	if rep.Completed > 0 && rep.P50LatencyNS == 0 {
		t.Fatalf("missing latency percentiles: %+v", rep)
	}
	// The server-reported split must be populated too; exec includes the
	// run itself so its p50 is never zero.
	if rep.Completed > 0 && rep.ExecP50NS == 0 {
		t.Fatalf("missing queue/exec latency split: %+v", rep)
	}
	// This harness mounts only /api/v1 — the pool-counter fetch must
	// degrade to zeros, not fail the burst.
	if rep.SessionReuse != 0 || rep.SessionCold != 0 {
		t.Fatalf("pool counters nonzero without /metrics: %+v", rep)
	}
	if got := sys.Telemetry().CounterValue(MetricCompleted); got != uint64(rep.Completed) {
		t.Fatalf("serve.completed %d != report completed %d", got, rep.Completed)
	}
}
