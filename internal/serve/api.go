// Package serve is the multi-tenant execution service built on the
// llee Session API: a Server manages a bounded worker pool of Sessions
// against one shared System, admitting, metering (gas), rate-limiting,
// and shedding requests; a Client maps the HTTP wire protocol back into
// the llee error taxonomy so errors.Is(err, llee.ErrOutOfGas) holds on
// both sides of the network.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"llva/internal/llee"
)

// Wire error codes. Every non-2xx response carries an errorBody whose
// Code is one of these; Client maps them back to typed errors.
const (
	CodeBadRequest  = "bad_request"  // 400: malformed request
	CodeBadModule   = "bad_module"   // 400: module failed to compile/verify
	CodeNotFound    = "not_found"    // 404: unknown module or job
	CodeOutOfGas    = "out_of_gas"   // 402: the run exhausted its gas budget
	CodeTrap        = "trap"         // 422: the program died on an unhandled trap
	CodeCanceled    = "canceled"     // 408: the run was canceled
	CodeShed        = "shed"         // 429: worker pool saturated, request never started
	CodeRateLimited = "rate_limited" // 429: tenant over its request rate
	CodeGasBudget   = "gas_budget"   // 429: tenant exhausted its aggregate gas budget
	CodeDraining    = "draining"     // 503: server is draining for shutdown
	CodeInternal    = "internal"     // 500: unexpected server failure
)

// Admission sentinels: the server-side reasons a request is refused
// before execution starts. RemoteError unwraps to these client-side.
var (
	ErrShed        = errors.New("serve: shed: worker pool saturated")
	ErrRateLimited = errors.New("serve: tenant rate limit exceeded")
	ErrGasBudget   = errors.New("serve: tenant gas budget exhausted")
	ErrDraining    = errors.New("serve: server is draining")
)

// LoadRequest uploads a module. Source is LLVA assembly (Lang "llva")
// or the C subset (Lang "c", the default).
type LoadRequest struct {
	Name   string `json:"name"`
	Lang   string `json:"lang,omitempty"`
	Source string `json:"source"`
}

// LoadResponse identifies the registered module.
type LoadResponse struct {
	Name  string `json:"name"`
	Stamp string `json:"stamp"`
}

// RunRequest executes an entry of a loaded module. Gas is the per-run
// virtual-cycle budget (0: the server's default; capped at the server's
// maximum). The same request shape serves sync run and async submit.
type RunRequest struct {
	Module string   `json:"module"`
	Entry  string   `json:"entry,omitempty"` // default "main"
	Args   []uint64 `json:"args,omitempty"`
	Gas    uint64   `json:"gas,omitempty"`
	Tenant string   `json:"tenant,omitempty"`
}

// RunResponse is a completed run. QueueNS/ExecNS split the server-side
// latency: time admitted-but-queued vs time executing (session
// acquisition included), so clients can tell scheduling delay from run
// cost. Reused reports the run was served by a pooled, reset session.
type RunResponse struct {
	Value    uint64 `json:"value"`
	Output   string `json:"output"`
	Instrs   uint64 `json:"instrs"`
	Cycles   uint64 `json:"cycles"`
	WallNS   int64  `json:"wall_ns"`
	QueueNS  int64  `json:"queue_ns"`
	ExecNS   int64  `json:"exec_ns"`
	CacheHit bool   `json:"cache_hit"`
	Reused   bool   `json:"reused,omitempty"`
}

// SubmitResponse acknowledges an async submission.
type SubmitResponse struct {
	Job string `json:"job"`
}

// StatusResponse reports an async job. Result is set once State is
// "done"; Error once it failed.
type StatusResponse struct {
	Job    string       `json:"job"`
	State  string       `json:"state"` // queued | running | done | failed
	Result *RunResponse `json:"result,omitempty"`
	Error  *errorBody   `json:"error,omitempty"`
}

// errorBody is the wire form of every failure.
type errorBody struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	CyclesUsed uint64 `json:"cycles_used,omitempty"` // out_of_gas: exact cycles consumed
	GasBudget  uint64 `json:"gas_budget,omitempty"`  // out_of_gas: the budget the run carried
	RetryAfter int    `json:"retry_after,omitempty"` // shed/rate_limited: seconds
}

// RemoteError is a server-reported failure decoded by Client. Unwrap
// maps the wire code back into the llee/serve taxonomy, so
// errors.Is(err, llee.ErrOutOfGas) (and ErrShed, ErrRateLimited,
// llee.ErrCanceled, ...) work across the HTTP boundary.
type RemoteError struct {
	Status     int    // HTTP status
	Code       string // wire code (CodeOutOfGas, ...)
	Message    string
	CyclesUsed uint64
	GasBudget  uint64
	RetryAfter int // seconds, when the server asked to back off
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("serve: %s (%d): %s", e.Code, e.Status, e.Message)
}

func (e *RemoteError) Unwrap() error {
	switch e.Code {
	case CodeOutOfGas:
		return llee.ErrOutOfGas
	case CodeCanceled:
		return llee.ErrCanceled
	case CodeBadModule:
		return llee.ErrBadModule
	case CodeShed:
		return ErrShed
	case CodeRateLimited:
		return ErrRateLimited
	case CodeGasBudget:
		return ErrGasBudget
	case CodeDraining:
		return ErrDraining
	}
	return nil
}

// Client talks to a Server over HTTP.
type Client struct {
	Base string // e.g. "http://127.0.0.1:8080"
	HTTP *http.Client
}

// NewClient returns a client whose transport tolerates the many
// concurrent loopback connections a load generator opens.
func NewClient(base string) *Client {
	tr := &http.Transport{
		MaxIdleConns:        4096,
		MaxIdleConnsPerHost: 4096,
	}
	return &Client{Base: base, HTTP: &http.Client{Transport: tr}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return decodeError(resp, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func decodeError(resp *http.Response, data []byte) error {
	var wrap struct {
		Error errorBody `json:"error"`
	}
	re := &RemoteError{Status: resp.StatusCode, Code: CodeInternal, Message: string(data)}
	if err := json.Unmarshal(data, &wrap); err == nil && wrap.Error.Code != "" {
		re.Code = wrap.Error.Code
		re.Message = wrap.Error.Message
		re.CyclesUsed = wrap.Error.CyclesUsed
		re.GasBudget = wrap.Error.GasBudget
		re.RetryAfter = wrap.Error.RetryAfter
	}
	if re.RetryAfter == 0 {
		if s := resp.Header.Get("Retry-After"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				re.RetryAfter = n
			}
		}
	}
	return re
}

// Load registers a module with the server.
func (c *Client) Load(ctx context.Context, req LoadRequest) (LoadResponse, error) {
	var out LoadResponse
	err := c.post(ctx, "/api/v1/load", req, &out)
	return out, err
}

// Run executes synchronously: the call returns when the run completes,
// is shed, or fails.
func (c *Client) Run(ctx context.Context, req RunRequest) (RunResponse, error) {
	var out RunResponse
	err := c.post(ctx, "/api/v1/run", req, &out)
	return out, err
}

// Submit enqueues an async run and returns its job ID.
func (c *Client) Submit(ctx context.Context, req RunRequest) (string, error) {
	var out SubmitResponse
	err := c.post(ctx, "/api/v1/submit", req, &out)
	return out.Job, err
}

// Status reports an async job's state.
func (c *Client) Status(ctx context.Context, job string) (StatusResponse, error) {
	var out StatusResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base+"/api/v1/status?job="+job, nil)
	if err != nil {
		return out, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return out, err
	}
	if resp.StatusCode/100 != 2 {
		return out, decodeError(resp, data)
	}
	return out, json.Unmarshal(data, &out)
}

// Cancel cancels a queued or running async job.
func (c *Client) Cancel(ctx context.Context, job string) error {
	return c.post(ctx, "/api/v1/cancel?job="+job, struct{}{}, nil)
}

// Wait polls Status until the job leaves the queue/run states.
func (c *Client) Wait(ctx context.Context, job string, poll time.Duration) (StatusResponse, error) {
	for {
		st, err := c.Status(ctx, job)
		if err != nil {
			return st, err
		}
		if st.State == "done" || st.State == "failed" {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}
