package machine

import (
	"context"
	"fmt"
	"math"

	"llva/internal/core"
	"llva/internal/mem"
	"llva/internal/rt"
	"llva/internal/target"
)

// TrapError reports an unhandled machine exception. Mnemonic, when the
// trap fired mid-block, is the rendered faulting instruction — what was
// *at* the PC, not just its number (the block engine fills it in from
// the predecoded instruction, so it costs nothing to produce).
type TrapError struct {
	Num      uint64
	PC       uint64
	Detail   string
	Mnemonic string
}

func (e *TrapError) Error() string {
	if e.Mnemonic != "" {
		return fmt.Sprintf("machine: trap %d at pc=0x%x [%s]: %s", e.Num, e.PC, e.Mnemonic, e.Detail)
	}
	return fmt.Sprintf("machine: trap %d at pc=0x%x: %s", e.Num, e.PC, e.Detail)
}

// Trap numbers (aligned with the interpreter's).
const (
	TrapMemoryFault = 1
	TrapDivByZero   = 2
	TrapPrivilege   = 3
)

// unifiedRegs is the size of the machine's single register file: the
// Reg encoding already carries bank+index (integer registers in
// [0, 64), FP registers in [FPBase, FPBase+64)), so both banks live in
// one array and the hot loop indexes it directly — no IsFP re-test per
// operand access. Every Reg ≥ unifiedRegs (only NoReg in decoded code)
// is the absent operand.
const unifiedRegs = 128

// reg reads a register from the unified file.
func (mc *Machine) reg(r target.Reg) uint64 {
	if r < unifiedRegs {
		return mc.regs[r]
	}
	return 0 // NoReg
}

func (mc *Machine) setReg(r target.Reg, v uint64) {
	if r < unifiedRegs {
		mc.regs[r] = v
		// r0 is hardwired to zero on vsparc: r0mask is 0 there (and
		// all-ones on vx86, where r0 is a live register), so the
		// invariant regs[0] == 0 is restored branch-free after every
		// write instead of re-testing the destination.
		mc.regs[0] &= mc.r0mask
	}
}

// canon extends a raw value to the canonical register image for a width
// and signedness (identical to the reference interpreter's convention).
func canonInt(size uint8, signed bool, v uint64) uint64 {
	switch size {
	case 1:
		if signed {
			return uint64(int64(int8(v)))
		}
		return uint64(uint8(v))
	case 2:
		if signed {
			return uint64(int64(int16(v)))
		}
		return uint64(uint16(v))
	case 4:
		if signed {
			return uint64(int64(int32(v)))
		}
		return uint64(uint32(v))
	}
	return v
}

func canonFloat(size uint8, bits uint64) uint64 {
	if size == 4 {
		return math.Float64bits(float64(float32(math.Float64frombits(bits))))
	}
	return bits
}

// Run executes the named function to completion and returns the integer
// return register value. It is RunContext with a background context:
// uncancellable, and byte-for-byte the same execution.
func (mc *Machine) Run(entry string, args ...uint64) (uint64, error) {
	return mc.RunContext(context.Background(), entry, args...)
}

// RunContext executes the named function to completion or until ctx is
// done. Cancellation is polled at basic-block boundaries only — a nil
// Done channel (context.Background) costs one pointer compare per
// block, a live one a non-blocking select — so cycle and instruction
// counts of uncancellable runs are identical to Run. On cancellation
// the returned error is a *CancelError matching both ErrCanceled and
// ctx.Err() under errors.Is.
func (mc *Machine) RunContext(ctx context.Context, entry string, args ...uint64) (uint64, error) {
	addr, ok := mc.funcAddr[entry]
	if !ok {
		// Entry may need a lazy stub (JIT mode).
		if mc.module.Function(entry) != nil && !mc.module.Function(entry).IsDeclaration() {
			var err error
			addr, err = mc.makeStub(entry)
			if err != nil {
				return 0, err
			}
		} else {
			return 0, fmt.Errorf("machine: no code for %%%s", entry)
		}
	}
	// A halt address: one word of unreachable code region.
	mc.haltAddr = 8 // inside the null page: execution stops when reached
	d := mc.desc

	// Establish the initial stack and arguments.
	sp := mc.mem.Size() - 64
	mc.regs[d.SP] = sp
	mc.regs[d.FP] = sp
	if d.StackArgs {
		for i := len(args) - 1; i >= 0; i-- {
			sp -= 8
			if err := mc.mem.Store(sp, 8, args[i]); err != nil {
				return 0, err
			}
		}
		sp -= 8
		if err := mc.mem.Store(sp, 8, mc.haltAddr); err != nil {
			return 0, err
		}
		mc.regs[d.SP] = sp
	} else {
		// Distribute arguments per the register convention, consulting
		// the entry function's signature for the FP/integer split
		// (indexed in place — no per-run scratch slice).
		var params []*core.Type
		if f := mc.module.Function(entry); f != nil {
			params = f.Signature().Params()
		}
		intIdx, fpIdx, stackIdx := 0, 0, 0
		for i, a := range args {
			if i < len(params) && params[i].IsFloat() {
				if fpIdx < len(d.FPArgRegs) {
					mc.regs[d.FPArgRegs[fpIdx]] = a
					fpIdx++
					continue
				}
			} else if intIdx < len(d.ArgRegs) {
				mc.regs[d.ArgRegs[intIdx]] = a
				intIdx++
				continue
			}
			// overflow arguments at [SP + 8k], matching the callee's
			// expectation of [FP + 8k]
			if err := mc.mem.Store(mc.regs[d.SP]+uint64(8*stackIdx), 8, a); err != nil {
				return 0, err
			}
			stackIdx++
		}
		mc.regs[3] = mc.haltAddr // RA
	}
	mc.pc = addr

	// Arm the observability hooks for this run: a fresh virtual call
	// stack, and the sampler's first trigger point.
	mc.callStack = mc.callStack[:0]
	if mc.prof != nil {
		mc.profNext = mc.Stats.Instrs + mc.prof.Rate()
	}

	mc.armGas()
	mc.runCtx = ctx
	err := mc.loop()
	mc.runCtx = nil
	mc.recordRunEnd(err)
	if err != nil {
		return mc.regs[d.RetReg], err
	}
	return mc.regs[d.RetReg], nil
}

// FPResult returns the FP return register (for FP-returning entry points).
func (mc *Machine) FPResult() uint64 { return mc.regs[mc.desc.FPRetReg] }

// loop drives the block engine: fetch (or chain to) the block at the
// current PC and execute it whole. The instruction limit and context
// cancellation are checked at block granularity — a block is at most
// maxBlockInstrs long, so the overshoot is bounded and the
// per-instruction compares are gone.
func (mc *Machine) loop() error {
	max := mc.MaxInstrs
	if max == 0 {
		max = 2_000_000_000
	}
	// Done() of an uncancellable context is nil: the poll degenerates to
	// one nil compare per block and execution is bit-identical to a run
	// without a context.
	var done <-chan struct{}
	if mc.runCtx != nil {
		done = mc.runCtx.Done()
	}
	var b *block
	var err error
	for {
		if b == nil {
			if mc.pc == mc.haltAddr {
				return nil
			}
			if b, err = mc.blockFor(mc.pc); err != nil {
				return err
			}
		}
		if done != nil {
			select {
			case <-done:
				return &CancelError{PC: mc.pc, Err: mc.runCtx.Err()}
			default:
			}
		}
		if mc.Stats.Instrs >= max {
			return fmt.Errorf("machine: instruction limit exceeded (%d)", max)
		}
		// Gas is metered on the virtual clock at block boundaries: the
		// block that crossed the budget ran to completion, then the run
		// stops here, before another block starts. Unmetered runs have
		// gasStop at the clock's maximum, so this is one always-false
		// compare. A run that halts on exactly its budget succeeds: the
		// halt check above wins the boundary.
		if mc.Stats.Cycles >= mc.gasStop {
			return &GasError{PC: mc.pc, Budget: mc.gasBudget, Used: mc.Stats.Cycles - mc.gasStart}
		}
		if b, err = mc.runBlock(b); err != nil {
			return err
		}
		// Deterministic virtual-PC sampling at block boundaries: the
		// trigger is the retired-instruction count, never the wall
		// clock, so runs are bit-identical with the profiler on or off
		// — only the host-side sample log differs. Disabled, this is
		// one nil compare per block.
		if mc.prof != nil && mc.Stats.Instrs >= mc.profNext {
			mc.takeSample()
		}
		// Tier-up hot swap: pending optimized code is installed here,
		// between blocks, so replacement never races guest execution.
		// Off (no OnSwap), this is one nil compare per block.
		if mc.OnSwap != nil && mc.swapPend.Load() {
			mc.swapPend.Store(false)
			mc.OnSwap()
		}
	}
}

// exec executes one instruction; it returns true if it set the PC.
func (mc *Machine) exec(in *target.MInstr, size int) (bool, error) {
	d := mc.desc
	switch in.Op {
	case target.MNop:
	case target.MMovRR:
		mc.setReg(in.Rd, mc.reg(in.Rs1))
	case target.MMovRI:
		if d.WordSize == 4 {
			// vsparc set/or-shifted semantics
			chunk := uint64(in.Imm) & 0xffff
			sh := uint(in.Scale) * 16
			if in.HasImm { // or form
				mc.setReg(in.Rd, mc.reg(in.Rd)|chunk<<sh)
			} else {
				v := uint64(int64(int16(chunk))) << sh
				mc.setReg(in.Rd, v)
			}
		} else {
			mc.setReg(in.Rd, uint64(in.Imm))
		}
	case target.MLoad:
		addr := mc.effAddr(in)
		v, err := mc.mem.Load(addr, int(in.Size))
		if err != nil {
			if in.NoTrap {
				mc.setReg(in.Rd, 0)
				return false, nil
			}
			return false, &TrapError{Num: TrapMemoryFault, PC: mc.pc, Detail: err.Error()}
		}
		if in.FP {
			if in.Size == 4 {
				v = math.Float64bits(float64(math.Float32frombits(uint32(v))))
			}
			mc.setReg(in.Rd, v)
		} else {
			mc.setReg(in.Rd, canonInt(in.Size, in.Signed, v))
		}
	case target.MStore:
		addr := mc.effAddr(in)
		v := mc.reg(in.Rs1)
		if in.FP && in.Size == 4 {
			v = uint64(math.Float32bits(float32(math.Float64frombits(v))))
		}
		if err := mc.mem.Store(addr, int(in.Size), v); err != nil {
			if in.NoTrap {
				return false, nil
			}
			return false, &TrapError{Num: TrapMemoryFault, PC: mc.pc, Detail: err.Error()}
		}
	case target.MLea:
		mc.setReg(in.Rd, mc.effAddr(in))
	case target.MALU:
		return false, mc.execALU(in)
	case target.MCmp:
		a := mc.reg(in.Rs1)
		var b uint64
		if in.HasImm {
			b = uint64(in.Imm)
		} else {
			b = mc.reg(in.Rs2)
		}
		mc.compare(a, b, in.Signed, in.FP)
	case target.MSetCC:
		if d.HasFlags {
			mc.setReg(in.Rd, boolWord(mc.condHolds(in.Cnd)))
		} else {
			mc.compare(mc.reg(in.Rs1), mc.reg(in.Rs2), in.Signed, in.FP)
			mc.setReg(in.Rd, boolWord(mc.condHolds(in.Cnd)))
		}
	case target.MJmp:
		mc.pc = mc.relTarget(in, size)
		return true, nil
	case target.MJcc:
		var take bool
		if d.HasFlags {
			take = mc.condHolds(in.Cnd)
		} else {
			mc.compare(mc.reg(in.Rs1), 0, true, false)
			take = mc.condHolds(in.Cnd)
		}
		if take {
			mc.pc = mc.relTarget(in, size)
			return true, nil
		}
	case target.MCall:
		mc.Stats.Calls++
		ret := mc.pc + uint64(size)
		tgt := uint64(in.Target) * uint64(d.CallTargetScale)
		return true, mc.callTo(tgt, ret)
	case target.MCallInd:
		mc.Stats.Calls++
		ret := mc.pc + uint64(size)
		return true, mc.callTo(mc.reg(in.Rs1), ret)
	case target.MCallExt:
		return mc.execCallExt(in, size)
	case target.MRet:
		if d.StackArgs {
			sp := mc.regs[d.SP]
			v, err := mc.mem.Load(sp, 8)
			if err != nil {
				return false, &TrapError{Num: TrapMemoryFault, PC: mc.pc, Detail: "ret: " + err.Error()}
			}
			mc.regs[d.SP] = sp + 8
			mc.pc = v
		} else {
			mc.pc = mc.regs[3] // RA
		}
		if mc.trackCalls && len(mc.callStack) > 0 {
			mc.callStack = mc.callStack[:len(mc.callStack)-1]
		}
		return true, nil
	case target.MPush:
		sp := mc.regs[d.SP] - 8
		v := mc.reg(in.Rs1)
		if err := mc.mem.Store(sp, 8, v); err != nil {
			return false, &TrapError{Num: TrapMemoryFault, PC: mc.pc, Detail: err.Error()}
		}
		mc.regs[d.SP] = sp
	case target.MPop:
		sp := mc.regs[d.SP]
		v, err := mc.mem.Load(sp, 8)
		if err != nil {
			return false, &TrapError{Num: TrapMemoryFault, PC: mc.pc, Detail: err.Error()}
		}
		mc.setReg(in.Rd, v)
		mc.regs[d.SP] = sp + 8
	case target.MCvt:
		mc.execCvt(in)
	case target.MInvokePush:
		mc.invokeStack = append(mc.invokeStack, invokeFrame{
			handler: mc.relTarget(in, size),
			sp:      mc.regs[d.SP],
			fp:      mc.regs[d.FP],
			depth:   len(mc.callStack),
		})
	case target.MInvokePop:
		if len(mc.invokeStack) == 0 {
			return false, fmt.Errorf("machine: invoke-pop with empty handler stack")
		}
		mc.invokeStack = mc.invokeStack[:len(mc.invokeStack)-1]
	case target.MUnwind:
		if len(mc.invokeStack) == 0 {
			return false, fmt.Errorf("machine: unwind reached the top of the stack")
		}
		fr := mc.invokeStack[len(mc.invokeStack)-1]
		mc.invokeStack = mc.invokeStack[:len(mc.invokeStack)-1]
		// Restore only the invoking frame's SP and FP; every other
		// register keeps whatever the unwound callees left in it. Values
		// the handler needs must live in the frame (the translator spills
		// them around invoke).
		mc.regs[d.SP] = fr.sp
		mc.regs[d.FP] = fr.fp
		mc.pc = fr.handler
		// Unwinding pops every virtual frame above the invoking one in
		// a single step; the shadow call stack follows suit.
		if mc.trackCalls && fr.depth <= len(mc.callStack) {
			mc.callStack = mc.callStack[:fr.depth]
		}
		return true, nil
	case target.MTrap:
		return false, &TrapError{Num: uint64(in.Imm), PC: mc.pc, Detail: "explicit trap"}
	case target.MAdjSP:
		mc.regs[d.SP] = mc.regs[d.SP] + uint64(in.Imm)
	default:
		return false, fmt.Errorf("machine: unimplemented op %s", in.Op)
	}
	return false, nil
}

func (mc *Machine) callTo(tgt, ret uint64) error {
	d := mc.desc
	if d.StackArgs {
		sp := mc.regs[d.SP] - 8
		if err := mc.mem.Store(sp, 8, ret); err != nil {
			return &TrapError{Num: TrapMemoryFault, PC: mc.pc, Detail: "call: " + err.Error()}
		}
		mc.regs[d.SP] = sp
	} else {
		mc.regs[3] = ret // RA
	}
	if mc.trackCalls {
		mc.callStack = append(mc.callStack, ret)
	}
	mc.pc = tgt
	return nil
}

func (mc *Machine) relTarget(in *target.MInstr, size int) uint64 {
	return uint64(int64(mc.pc) + int64(in.Target)*int64(mc.desc.RelBranchScale))
}

func (mc *Machine) effAddr(in *target.MInstr) uint64 {
	a := mc.reg(in.Base)
	if in.Index != target.NoReg {
		a += mc.reg(in.Index) * uint64(in.Scale)
	}
	return a + uint64(int64(in.Disp))
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (mc *Machine) compare(a, b uint64, signed, fp bool) {
	switch {
	case fp:
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		mc.flagEQ, mc.flagLT = x == y, x < y
	case signed:
		mc.flagEQ, mc.flagLT = int64(a) == int64(b), int64(a) < int64(b)
	default:
		mc.flagEQ, mc.flagLT = a == b, a < b
	}
}

func (mc *Machine) condHolds(c target.Cond) bool {
	switch c {
	case target.CondEQ:
		return mc.flagEQ
	case target.CondNE:
		return !mc.flagEQ
	case target.CondLT:
		return mc.flagLT
	case target.CondGE:
		return !mc.flagLT
	case target.CondGT:
		return !mc.flagLT && !mc.flagEQ
	default: // CondLE
		return mc.flagLT || mc.flagEQ
	}
}

func (mc *Machine) execALU(in *target.MInstr) error {
	a := mc.reg(in.Rs1)
	var b uint64
	switch {
	case in.HasImm:
		b = uint64(in.Imm)
	case in.HasMem:
		addr := mc.effAddr(in)
		v, err := mc.mem.Load(addr, int(in.Size))
		if err != nil {
			return &TrapError{Num: TrapMemoryFault, PC: mc.pc, Detail: err.Error()}
		}
		b = canonInt(in.Size, in.Signed, v)
		if in.FP {
			if in.Size == 4 {
				b = math.Float64bits(float64(math.Float32frombits(uint32(v))))
			} else {
				b = v
			}
		}
	default:
		b = mc.reg(in.Rs2)
	}

	if in.FP {
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		var r float64
		switch in.Alu {
		case target.AAdd:
			r = x + y
		case target.ASub:
			r = x - y
		case target.AMul:
			r = x * y
		case target.ADiv:
			r = x / y
		case target.ARem:
			r = math.Mod(x, y)
		default:
			return fmt.Errorf("machine: FP %s", in.Alu)
		}
		mc.setReg(in.Rd, canonFloat(in.Size, math.Float64bits(r)))
		return nil
	}

	size, signed := in.Size, in.Signed
	var r uint64
	switch in.Alu {
	case target.AAdd:
		r = a + b
	case target.ASub:
		r = a - b
	case target.AMul:
		r = a * b
	case target.ADiv, target.ARem:
		if truncBits(size, b) == 0 {
			if in.NoTrap {
				mc.setReg(in.Rd, 0)
				return nil
			}
			return &TrapError{Num: TrapDivByZero, PC: mc.pc, Detail: in.Alu.String() + " by zero"}
		}
		if signed {
			x, y := int64(a), int64(b)
			if x == math.MinInt64 && y == -1 {
				if in.NoTrap {
					mc.setReg(in.Rd, 0)
					return nil
				}
				return &TrapError{Num: TrapDivByZero, PC: mc.pc, Detail: "division overflow"}
			}
			if in.Alu == target.ADiv {
				r = uint64(x / y)
			} else {
				r = uint64(x % y)
			}
		} else {
			x, y := truncBits(size, a), truncBits(size, b)
			if in.Alu == target.ADiv {
				r = x / y
			} else {
				r = x % y
			}
		}
	case target.AAnd:
		r = a & b
	case target.AOr:
		r = a | b
	case target.AXor:
		r = a ^ b
	case target.AShl, target.AShr:
		bits := uint64(size) * 8
		s := b & 0xff
		if s >= bits {
			if in.Alu == target.AShr && signed && int64(a) < 0 {
				mc.setReg(in.Rd, ^uint64(0))
				return nil
			}
			mc.setReg(in.Rd, 0)
			return nil
		}
		if in.Alu == target.AShl {
			r = a << s
		} else if signed {
			r = uint64(int64(a) >> s)
		} else {
			r = truncBits(size, a) >> s
		}
	}
	mc.setReg(in.Rd, canonInt(size, signed, r))
	return nil
}

func truncBits(size uint8, v uint64) uint64 {
	switch size {
	case 1:
		return v & 0xff
	case 2:
		return v & 0xffff
	case 4:
		return v & 0xffffffff
	}
	return v
}

func (mc *Machine) execCvt(in *target.MInstr) {
	v := mc.reg(in.Rs1)
	switch in.Cvt {
	case target.CvtIntExt:
		mc.setReg(in.Rd, canonInt(in.Size, in.Signed, v))
	case target.CvtIntToF:
		var f float64
		if in.Signed {
			f = float64(int64(v))
		} else {
			f = float64(v)
		}
		mc.setReg(in.Rd, canonFloat(in.Size, math.Float64bits(f)))
	case target.CvtFToInt:
		f := math.Float64frombits(v)
		var r uint64
		if math.IsNaN(f) {
			r = 0
		} else if in.Signed || f < 0 {
			r = uint64(int64(clampF(f)))
		} else {
			r = clampFU(f)
		}
		mc.setReg(in.Rd, canonInt(in.Size, in.Signed, r))
	case target.CvtFToF:
		mc.setReg(in.Rd, canonFloat(in.Size, v))
	case target.CvtBits:
		mc.setReg(in.Rd, v)
	}
}

func clampF(f float64) float64 {
	if f > math.MaxInt64 {
		return math.MaxInt64
	}
	if f < math.MinInt64 {
		return math.MinInt64
	}
	return f
}

func clampFU(f float64) uint64 {
	if f >= math.MaxUint64 {
		return math.MaxUint64
	}
	if f < 0 {
		return 0
	}
	return uint64(f)
}

// execCallExt dispatches an external call: the reserved JIT extern, the
// llva.* intrinsics, or the native runtime.
func (mc *Machine) execCallExt(in *target.MInstr, size int) (bool, error) {
	mc.Stats.ExternCalls++
	idx := int(in.Target)
	if idx < 0 || idx >= len(mc.externs) {
		return false, fmt.Errorf("machine: bad extern index %d", idx)
	}
	name := mc.externs[idx]

	if name == JITExtern {
		return true, mc.handleJIT()
	}

	// Arguments are marshalled into the machine's persistent buffer:
	// extern calls are steady-state (print, malloc, math) and must not
	// allocate per call. Fn implementations receive a view and do not
	// retain it.
	var args []uint64
	if int(in.NArgs) <= len(mc.extArgs) {
		args = mc.extArgs[:in.NArgs]
	} else {
		args = make([]uint64, in.NArgs)
	}
	if mc.desc.StackArgs {
		sp := mc.regs[mc.desc.SP]
		for i := range args {
			v, err := mc.mem.Load(sp+uint64(8*i), 8)
			if err != nil {
				return false, err
			}
			args[i] = v
		}
	} else {
		for i := range args {
			if i < len(mc.desc.ArgRegs) {
				args[i] = mc.regs[mc.desc.ArgRegs[i]]
			}
		}
	}

	var res uint64
	var err error
	if isIntrinsicName(name) {
		res, err = mc.intrinsic(name, args)
	} else {
		res, err = mc.env.Call(name, args)
	}
	if err != nil {
		if _, isExit := err.(*rt.ExitError); isExit {
			mc.regs[mc.desc.RetReg] = res
			return false, err
		}
		if flt, isFault := err.(*mem.Fault); isFault {
			return false, &TrapError{Num: TrapMemoryFault, PC: mc.pc, Detail: flt.Error()}
		}
		return false, err
	}
	mc.regs[mc.desc.RetReg] = res
	mc.regs[mc.desc.FPRetReg] = res
	return false, nil
}

func isIntrinsicName(name string) bool {
	return len(name) > 5 && name[:5] == "llva."
}

// handleJIT services a lazy translation stub: the function index is in
// the first scratch register; control transfers to the (possibly freshly
// translated) code.
func (mc *Machine) handleJIT() error {
	id := int(mc.regs[mc.desc.Scratch[0]])
	if id < 0 || id >= len(mc.stubNames) {
		return fmt.Errorf("machine: bad JIT stub id %d", id)
	}
	name := mc.stubNames[id]
	addr := mc.funcAddr[name]
	if addr == mc.stubAddr[id] {
		// Not yet translated: ask the execution manager.
		if mc.OnJIT == nil {
			return fmt.Errorf("machine: %%%s is not translated and no JIT is attached", name)
		}
		mc.Stats.JITRequests++
		a, err := mc.OnJIT(name)
		if err != nil {
			return err
		}
		addr = a
	}
	mc.pc = addr
	return nil
}

// privilegedIntrinsics names the llva.* intrinsics that require the
// privileged bit (hoisted to package scope: the per-call map literal
// used to allocate on every intrinsic dispatch).
var privilegedIntrinsics = map[string]bool{
	"llva.priv.set": true, "llva.trap.register": true,
	"llva.storage.register": true,
}

// intrinsic implements the machine-level llva.* intrinsics; unknown ones
// go to the OnIntrinsic hook (the execution manager).
func (mc *Machine) intrinsic(name string, args []uint64) (uint64, error) {
	if privilegedIntrinsics[name] && !mc.privileged {
		return 0, &TrapError{Num: TrapPrivilege, PC: mc.pc,
			Detail: "privileged intrinsic " + name}
	}
	switch name {
	case "llva.priv.get":
		return boolWord(mc.privileged), nil
	case "llva.priv.set":
		mc.privileged = len(args) > 0 && args[0]&1 != 0
		return 0, nil
	case "llva.stack.depth":
		return mc.Stats.Calls, nil
	case "llva.trap.raise":
		n := uint64(0)
		if len(args) > 0 {
			n = args[0]
		}
		return 0, &TrapError{Num: n, PC: mc.pc, Detail: "explicit trap"}
	}
	if mc.OnIntrinsic != nil {
		return mc.OnIntrinsic(name, args)
	}
	return 0, fmt.Errorf("machine: unhandled intrinsic %%%s", name)
}

// SetPrivileged sets the processor's privileged bit.
func (mc *Machine) SetPrivileged(p bool) { mc.privileged = p }
