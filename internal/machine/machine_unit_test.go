package machine

import (
	"math"
	"strings"
	"testing"

	"llva/internal/asm"
	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/mem"
	"llva/internal/rt"
	"llva/internal/target"
)

func loadProgram(t *testing.T, src string, d *target.Desc) (*Machine, *strings.Builder) {
	t.Helper()
	m, err := asm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	tr, err := codegen.New(d, m)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tr.TranslateModule()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	env := rt.NewEnv(mem.New(0, true), &out)
	mc, err := New(d, m, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.LoadObject(obj); err != nil {
		t.Fatal(err)
	}
	return mc, &out
}

func TestInstructionLimit(t *testing.T) {
	src := `
void %spin() {
entry:
    br label %loop
loop:
    br label %loop
}
`
	mc, _ := loadProgram(t, src, target.VX86)
	mc.MaxInstrs = 10_000
	_, err := mc.Run("spin")
	if err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Errorf("runaway loop not stopped: %v", err)
	}
	if mc.Stats.Instrs < 10_000 {
		t.Errorf("stopped after only %d instructions", mc.Stats.Instrs)
	}
}

func TestICache(t *testing.T) {
	src := `
long %f(long %n) {
entry:
    br label %loop
loop:
    %i = phi long [ 0, %entry ], [ %i2, %loop ]
    %i2 = add long %i, 1
    %done = setge long %i2, %n
    br bool %done, label %exit, label %loop
exit:
    ret long %i2
}
`
	mc, _ := loadProgram(t, src, target.VSPARC)
	if _, err := mc.Run("f", 1000); err != nil {
		t.Fatal(err)
	}
	// The loop executes thousands of instructions but decodes each PC
	// once: fills must be far below executed count.
	if mc.Stats.ICacheFills >= mc.Stats.Instrs/10 {
		t.Errorf("icache ineffective: %d fills for %d instructions",
			mc.Stats.ICacheFills, mc.Stats.Instrs)
	}
}

func TestFPResult(t *testing.T) {
	src := `
double %h(double %x) {
entry:
    %y = mul double %x, %x
    ret double %y
}
`
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		mc, _ := loadProgram(t, src, d)
		if _, err := mc.Run("h", math.Float64bits(1.5)); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if got := math.Float64frombits(mc.FPResult()); got != 2.25 {
			t.Errorf("%s: h(1.5) = %v, want 2.25", d.Name, got)
		}
	}
}

func TestDivByZeroTrapsOnMachine(t *testing.T) {
	src := `
long %f(long %a, long %b) {
entry:
    %q = div long %a, %b
    ret long %q
}
`
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		mc, _ := loadProgram(t, src, d)
		_, err := mc.Run("f", 10, 0)
		te, ok := err.(*TrapError)
		if !ok || te.Num != TrapDivByZero {
			t.Errorf("%s: err = %v, want div-by-zero trap", d.Name, err)
		}
	}
}

func TestNullDerefTrapsOnMachine(t *testing.T) {
	src := `
long %f(long* %p) {
entry:
    %v = load long* %p
    ret long %v
}
`
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		mc, _ := loadProgram(t, src, d)
		_, err := mc.Run("f", 0)
		te, ok := err.(*TrapError)
		if !ok || te.Num != TrapMemoryFault {
			t.Errorf("%s: err = %v, want memory-fault trap", d.Name, err)
		}
	}
}

func TestPrivilegedIntrinsicOnMachine(t *testing.T) {
	src := `
declare void %llva.priv.set(bool %p)
declare bool %llva.priv.get()
int %main() {
entry:
    call void %llva.priv.set(bool false)
    %p = call bool %llva.priv.get()
    %pi = cast bool %p to int
    ;; this must trap: we are unprivileged now
    call void %llva.priv.set(bool true)
    ret int %pi
}
`
	mc, _ := loadProgram(t, src, target.VX86)
	_, err := mc.Run("main")
	te, ok := err.(*TrapError)
	if !ok || te.Num != TrapPrivilege {
		t.Errorf("err = %v, want privilege trap", err)
	}
}
