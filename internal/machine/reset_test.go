package machine

import (
	"strings"
	"testing"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/mem"
	"llva/internal/minic"
	"llva/internal/rt"
	"llva/internal/target"
)

// statefulProg carries every kind of run-visible state a reset must
// erase: a mutated global, heap allocations, and printed output. A
// second run without Reset observes g=1 and returns a different value;
// after Reset it must be bit-identical to the first.
const statefulProg = `
int g = 0;
int main() {
	int i, acc = 0;
	int *p = malloc(400);
	for (i = 0; i < 100; i++) p[i] = i * i;
	for (i = 0; i < 100; i++) acc += p[i];
	g = g + 1;
	print_int(g); print_nl();
	return acc + g;
}
`

func loadMiniC(t *testing.T, src string, d *target.Desc) (*Machine, *rt.Env, *strings.Builder) {
	t.Helper()
	m, err := minic.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	tr, err := codegen.New(d, m)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tr.TranslateModule()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	env := rt.NewEnv(mem.New(0, true), &out)
	mc, err := New(d, m, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.LoadObject(obj); err != nil {
		t.Fatal(err)
	}
	return mc, env, &out
}

// TestMachineResetBitIdentical seals a machine after setup, runs it,
// resets, and reruns: value, output, and the full ExecStats must match
// the first run exactly — the reset session is indistinguishable from a
// fresh one down to the cycle count.
func TestMachineResetBitIdentical(t *testing.T) {
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		t.Run(d.Name, func(t *testing.T) {
			mc, env, out := loadMiniC(t, statefulProg, d)
			if err := mc.Seal(); err != nil {
				t.Fatal(err)
			}
			v1, err := mc.Run("main")
			if err != nil {
				t.Fatal(err)
			}
			stats1, out1 := mc.Stats, out.String()
			if out1 != "1\n" {
				t.Fatalf("first run output = %q, want \"1\\n\"", out1)
			}

			// Sanity: without Reset the mutated global is visible.
			out.Reset()
			v2, err := mc.Run("main")
			if err != nil {
				t.Fatal(err)
			}
			if v2 == v1 || out.String() != "2\n" {
				t.Fatalf("state did not persist across plain reruns: v=%d out=%q", v2, out.String())
			}

			if n := mc.Reset(); n == 0 {
				t.Fatal("Reset restored no pages after two runs")
			}
			out.Reset()
			env.Reset(out)
			v3, err := mc.Run("main")
			if err != nil {
				t.Fatal(err)
			}
			if v3 != v1 {
				t.Errorf("value after reset = %d, want %d", v3, v1)
			}
			if out.String() != out1 {
				t.Errorf("output after reset = %q, want %q", out.String(), out1)
			}
			s := mc.Stats
			if s.Instrs != stats1.Instrs || s.Cycles != stats1.Cycles ||
				s.Branches != stats1.Branches || s.BranchesTaken != stats1.BranchesTaken ||
				s.ExternCalls != stats1.ExternCalls || s.Traps != stats1.Traps {
				t.Errorf("run-visible stats after reset = %+v, want %+v", s, stats1)
			}
			// The predecoded block cache survives Reset by design (code is
			// immutable): the reset run refills nothing.
			if s.ICacheFills != 0 || s.BlockBuilds != 0 {
				t.Errorf("reset run rebuilt code caches: fills=%d builds=%d", s.ICacheFills, s.BlockBuilds)
			}
		})
	}
}

// TestMachineResetErroredRun: a trap unwinds at a block boundary and
// leaves the machine consistent, so Reset must still restore a clean,
// bit-identical machine.
func TestMachineResetErroredRun(t *testing.T) {
	src := `
int g = 0;
int main() {
	int *p = 0;
	g = 7;
	return *p;
}
`
	mc, env, out := loadMiniC(t, src, target.VX86)
	if err := mc.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Run("main"); err == nil {
		t.Fatal("null deref did not trap")
	}
	mc.Reset()
	out.Reset()
	env.Reset(out)
	// The global write from the trapped run must be gone: rerun traps at
	// the same point with the same pre-trap state.
	if _, err := mc.Run("main"); err == nil {
		t.Fatal("rerun did not trap")
	}
	stats1 := mc.Stats
	mc.Reset()
	env.Reset(out)
	if _, err := mc.Run("main"); err == nil {
		t.Fatal("third run did not trap")
	}
	if mc.Stats != stats1 {
		t.Errorf("stats diverge across resets of a trapping run: %+v vs %+v", mc.Stats, stats1)
	}
}
