package machine

import (
	"errors"
	"fmt"
)

// Gas metering: a run may carry a budget of simulated cycles ("gas" —
// the multi-tenant serving layer's unit of account, after gno's
// Machine.MaxCycles). Exhaustion is detected at basic-block boundaries
// only, exactly like context cancellation, so the PR 3 hot loop gains a
// single integer compare per block and the machine state at the stop is
// consistent: the block that crossed the budget ran to completion,
// every retired instruction is accounted, and the virtual clock is
// exact. The trigger is purely the deterministic virtual clock — never
// wall time — so the same program with the same budget exhausts at the
// same virtual cycle on every run.

// ErrOutOfGas reports that RunContext stopped because the run's cycle
// budget was exhausted. The concrete error is always a *GasError.
var ErrOutOfGas = errors.New("machine: out of gas")

// GasError is returned when a gas budget stops execution. Used is the
// exact number of simulated cycles the run consumed when it stopped; it
// can overshoot Budget by at most the length of the block that crossed
// it (blocks are capped at maxBlockInstrs instructions), because blocks
// are atomic with respect to metering.
type GasError struct {
	PC     uint64 // the next program counter at the boundary
	Budget uint64 // the budget the run started with
	Used   uint64 // simulated cycles consumed by the run when it stopped
}

func (e *GasError) Error() string {
	return fmt.Sprintf("machine: out of gas at pc=0x%x: used %d of %d budgeted cycles",
		e.PC, e.Used, e.Budget)
}

// Unwrap makes the error match ErrOutOfGas under errors.Is.
func (e *GasError) Unwrap() error { return ErrOutOfGas }

// SetGas sets the cycle budget of subsequent runs (0: unmetered). The
// budget is per run, not cumulative: each RunContext starts a fresh
// allowance of the configured size.
func (mc *Machine) SetGas(budget uint64) { mc.gasBudget = budget }

// Gas returns the configured per-run cycle budget (0: unmetered).
func (mc *Machine) Gas() uint64 { return mc.gasBudget }

// GasUsed returns the cycles consumed since the current (or last) run
// armed the meter. Meaningful only when a budget is set.
func (mc *Machine) GasUsed() uint64 { return mc.Stats.Cycles - mc.gasStart }

// armGas installs the absolute virtual-clock value at which the current
// run exhausts. An unmetered run gets the maximum clock value, which the
// simulated processor cannot reach (MaxInstrs bounds it long before), so
// the per-block check is one always-false compare — no extra branch for
// the common unmetered case.
func (mc *Machine) armGas() {
	mc.gasStart = mc.Stats.Cycles
	mc.gasStop = ^uint64(0)
	if mc.gasBudget != 0 {
		mc.gasStop = mc.Stats.Cycles + mc.gasBudget
	}
}
