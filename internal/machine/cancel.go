package machine

import (
	"errors"
	"fmt"
)

// ErrCanceled reports that RunContext stopped because its context was
// done. The concrete error is always a *CancelError; the returned chain
// matches both errors.Is(err, ErrCanceled) and errors.Is(err, ctx.Err()).
var ErrCanceled = errors.New("machine: execution canceled")

// CancelError is returned when a context stops execution. Cancellation
// is honored only at basic-block boundaries, so the machine state is
// consistent: the block at PC either ran to completion or never
// started, every retired instruction is accounted, and the virtual
// clock (Stats.Cycles) is exact.
type CancelError struct {
	PC  uint64 // the next program counter at the boundary
	Err error  // the context's verdict: context.Canceled or context.DeadlineExceeded
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("machine: run canceled at pc=0x%x: %v", e.PC, e.Err)
}

// Unwrap makes the error match both ErrCanceled and the context error.
func (e *CancelError) Unwrap() []error { return []error{ErrCanceled, e.Err} }
