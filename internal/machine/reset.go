package machine

import (
	"fmt"

	"llva/internal/mem"
)

// Seal snapshots the machine's post-setup state as the pristine image a
// later Reset returns to. Call it after all code is installed (offline
// mode: LoadObject + data fixups) and before the first run: the sealed
// segment covers the static data image and every installed code byte,
// and arming memory's dirty-page tracking from here makes Reset cost
// proportional to what each run actually touches. A machine that keeps
// installing code after Seal (online JIT, tier-up hot-swap) must not be
// reset — the execution manager never seals those.
func (mc *Machine) Seal() error {
	base := mc.dataImage.Base
	view, err := mc.mem.Bytes(base, mc.codeEnd-base)
	if err != nil {
		return fmt.Errorf("machine: seal: %w", err)
	}
	mc.mem.Seal(mem.Segment{Base: base, Bytes: view})
	return nil
}

// Reset returns a sealed machine to its pristine pre-first-run state so
// the next Run is bit-identical to a fresh machine's: memory restored
// via dirty-page tracking, the register file, flags, shadow stacks and
// privilege level cleared, and the execution counters zeroed (flushed
// to telemetry first, so no deltas are lost). Everything immutable and
// expensive stays: installed code, the predecoded block cache and its
// arenas, symbol bindings, stubs and the extern table. It returns the
// number of dirty pages restored. Must not be called mid-run.
func (mc *Machine) Reset() int {
	mc.flushTelemetry()
	n := mc.mem.Reset()
	mc.regs = [unifiedRegs]uint64{}
	mc.pc = 0
	mc.flagEQ, mc.flagLT = false, false
	mc.pendCycles = 0
	mc.invokeStack = mc.invokeStack[:0]
	mc.callStack = mc.callStack[:0]
	mc.privileged = true
	mc.lastCrash = nil
	mc.profNext = 0
	mc.swapPend.Store(false)
	mc.Stats = ExecStats{}
	mc.teleFlushed = ExecStats{}
	return n
}
