package machine

import (
	"strings"
	"testing"

	"llva/internal/asm"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/mem"
	"llva/internal/minic"
	"llva/internal/passes"
	"llva/internal/rt"
	"llva/internal/target"
)

// crossPrograms must behave identically on the reference interpreter and
// on both simulated processors, optimized or not.
var crossPrograms = map[string]string{
	"arith": `
int main() {
	long a = 1234567891011L;
	long b = -987654321;
	unsigned int u = 4000000000u;
	print_int(a + b); print_nl();
	print_int(a * 7 % 1000003); print_nl();
	print_uint(u / 7); print_nl();
	print_int((int)(u % 13)); print_nl();
	print_int(a >> 5); print_nl();
	print_int(b >> 3); print_nl();   /* arithmetic shift of negative */
	print_uint(u >> 3); print_nl();
	print_int(1 << 30); print_nl();
	return 0;
}`,
	"controlflow": `
int collatz(int n) {
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) n /= 2; else n = 3 * n + 1;
		steps++;
	}
	return steps;
}
int main() {
	int i, total = 0;
	for (i = 1; i <= 40; i++) total += collatz(i);
	print_int(total); print_nl();
	switch (total % 7) {
	case 0: print_str("zero"); break;
	case 1: print_str("one"); break;
	case 2: print_str("two"); break;
	default: print_str("many"); break;
	}
	print_nl();
	return 0;
}`,
	"memory": `
struct Node { long val; struct Node *next; };
int main() {
	struct Node *head = 0;
	long i;
	for (i = 0; i < 50; i++) {
		struct Node *n = (struct Node*)malloc(sizeof(struct Node));
		n->val = i * i;
		n->next = head;
		head = n;
	}
	long sum = 0;
	struct Node *p = head;
	while (p != 0) { sum += p->val; p = p->next; }
	print_int(sum); print_nl();
	return 0;
}`,
	"floats": `
double mc_pi(int iters) {
	double inside = 0.0;
	int i;
	srand(42);
	for (i = 0; i < iters; i++) {
		double x = (double)(rand() % 10000) / 10000.0;
		double y = (double)(rand() % 10000) / 10000.0;
		if (x * x + y * y <= 1.0) inside += 1.0;
	}
	return 4.0 * inside / (double)iters;
}
int main() {
	print_float(mc_pi(2000)); print_nl();
	float f = 1.5f;
	double d = f * 2.0;
	print_float(d); print_nl();
	print_float(sqrt(2.0)); print_nl();
	return 0;
}`,
	"strings": `
int main() {
	char buf[64];
	char *msg = "the quick brown fox";
	int n = (int)strlen(msg);
	int i;
	for (i = 0; i < n; i++) buf[i] = msg[n - 1 - i];
	buf[n] = '\0';
	print_str(buf); print_nl();
	print_int(n); print_nl();
	return 0;
}`,
	"recursion": `
long fib(int n) {
	if (n < 2) return (long)n;
	return fib(n - 1) + fib(n - 2);
}
int main() {
	print_int(fib(18)); print_nl();
	return 0;
}`,
	"fnptr": `
typedef long (*op)(long, long);
long add(long a, long b) { return a + b; }
long mul(long a, long b) { return a * b; }
op table[2] = {add, mul};
int main() {
	long acc = 1;
	int i;
	for (i = 0; i < 8; i++) acc = table[i % 2](acc, (long)(i + 1));
	print_int(acc); print_nl();
	return 0;
}`,
	"sort": `
void quicksort(int *a, int lo, int hi) {
	if (lo >= hi) return;
	int pivot = a[(lo + hi) / 2];
	int i = lo, j = hi;
	while (i <= j) {
		while (a[i] < pivot) i++;
		while (a[j] > pivot) j--;
		if (i <= j) {
			int t = a[i]; a[i] = a[j]; a[j] = t;
			i++; j--;
		}
	}
	quicksort(a, lo, j);
	quicksort(a, i, hi);
}
int main() {
	int a[100];
	int i;
	srand(7);
	for (i = 0; i < 100; i++) a[i] = (int)(rand() % 1000);
	quicksort(a, 0, 99);
	long checksum = 0;
	for (i = 0; i < 100; i++) checksum = checksum * 31 + (long)a[i];
	print_int(checksum); print_nl();
	print_int(a[0]); print_char(' '); print_int(a[99]); print_nl();
	return 0;
}`,
	"exceptions_llva": "", // filled below with hand-written LLVA
}

const exceptionsLLVA = `
declare void %print_int(long %v)
declare void %print_nl()

void %risky(int %x) {
entry:
    %bad = setgt int %x, 5
    br bool %bad, label %boom, label %ok
boom:
    unwind
ok:
    ret void
}

int %main() {
entry:
    br label %loop
loop:
    %i = phi int [ 0, %entry ], [ %i2, %next ]
    %caught = phi int [ 0, %entry ], [ %c2, %next ]
    invoke void %risky(int %i) to label %fine unwind label %handler
fine:
    br label %next
handler:
    br label %bump
bump:
    br label %next
next:
    %inc = phi int [ 0, %fine ], [ 1, %bump ]
    %c2 = add int %caught, %inc
    %i2 = add int %i, 1
    %more = setlt int %i2, 10
    br bool %more, label %loop, label %done
done:
    %cl = cast int %c2 to long
    call void %print_int(long %cl)
    call void %print_nl()
    ret int %c2
}
`

// runInterp executes the module on the reference interpreter.
func runInterp(t *testing.T, m *core.Module) (int, string) {
	t.Helper()
	var out strings.Builder
	ip, err := interp.New(m, &out)
	if err != nil {
		t.Fatalf("interp.New: %v", err)
	}
	code, err := ip.RunMain()
	if err != nil {
		t.Fatalf("interp run: %v\noutput: %s", err, out.String())
	}
	return code, out.String()
}

// runMachine translates offline and executes on the simulated processor.
func runMachine(t *testing.T, m *core.Module, d *target.Desc) (int, string) {
	t.Helper()
	tr, err := codegen.New(d, m)
	if err != nil {
		t.Fatalf("codegen.New: %v", err)
	}
	obj, err := tr.TranslateModule()
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	var out strings.Builder
	env := rt.NewEnv(mem.New(0, true), &out)
	mc, err := New(d, m, env)
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	if err := mc.LoadObject(obj); err != nil {
		t.Fatalf("load: %v", err)
	}
	v, err := mc.Run("main")
	if err != nil {
		if _, isExit := err.(*rt.ExitError); !isExit {
			t.Fatalf("machine run (%s): %v\noutput: %s", d.Name, err, out.String())
		}
	}
	return int(int32(v)), out.String()
}

func compileVariants(t *testing.T, name, src string) map[string]*core.Module {
	t.Helper()
	variants := map[string]*core.Module{}
	for _, opt := range []bool{false, true} {
		var m *core.Module
		var err error
		if src == "" {
			continue
		}
		m, err = minic.Compile(name+".c", src)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		label := "O0"
		if opt {
			if _, err := passes.Optimize(m); err != nil {
				t.Fatalf("optimize: %v", err)
			}
			label = "O2"
		}
		if err := core.Verify(m); err != nil {
			t.Fatalf("verify (%s): %v", label, err)
		}
		variants[label] = m
	}
	return variants
}

// TestCrossEngineConsistency is the codegen correctness oracle: every
// program must produce byte-identical output and the same exit status on
// the interpreter, the vx86 machine and the vsparc machine, both
// unoptimized and after the full O2 pipeline.
func TestCrossEngineConsistency(t *testing.T) {
	for name, src := range crossPrograms {
		if src == "" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			for label, m := range compileVariants(t, name, src) {
				refCode, refOut := runInterp(t, m)
				for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
					code, out := runMachine(t, m, d)
					if out != refOut || code != refCode {
						t.Errorf("%s/%s diverges from interpreter:\ninterp: code=%d out=%q\n%s:  code=%d out=%q",
							label, d.Name, refCode, refOut, d.Name, code, out)
					}
				}
			}
		})
	}
}

func TestInvokeUnwindOnMachines(t *testing.T) {
	m := mustParseAsm(t, exceptionsLLVA)
	refCode, refOut := runInterp(t, m)
	if refCode != 4 { // i = 6..9 unwind
		t.Fatalf("interp baseline = %d, want 4", refCode)
	}
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		code, out := runMachine(t, m, d)
		if code != refCode || out != refOut {
			t.Errorf("%s: code=%d out=%q, want code=%d out=%q", d.Name, code, out, refCode, refOut)
		}
	}
}

func TestJITLazyTranslation(t *testing.T) {
	src := `
int helper(int x) { return x * 3; }
int unused(int x) { return x * 5; }
int main() { return helper(7); }
`
	m, err := minic.Compile("jit.c", src)
	if err != nil {
		t.Fatal(err)
	}
	d := target.VX86
	tr, err := codegen.New(d, m)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	env := rt.NewEnv(mem.New(0, true), &out)
	mc, err := New(d, m, env)
	if err != nil {
		t.Fatal(err)
	}
	translated := map[string]bool{}
	mc.OnJIT = func(name string) (uint64, error) {
		translated[name] = true
		f := m.Function(name)
		nf, err := tr.TranslateFunction(f)
		if err != nil {
			return 0, err
		}
		return mc.InstallCode(nf)
	}
	if err := mc.patchDataFuncAddrs(); err != nil {
		t.Fatal(err)
	}
	v, err := mc.Run("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if int32(v) != 21 {
		t.Errorf("main() = %d, want 21", int32(v))
	}
	if !translated["main"] || !translated["helper"] {
		t.Errorf("JIT should have translated main and helper: %v", translated)
	}
	if translated["unused"] {
		t.Error("JIT translated a function that was never called (should be on demand)")
	}
	if mc.Stats.JITRequests != 2 {
		t.Errorf("JIT requests = %d, want 2", mc.Stats.JITRequests)
	}
}

func mustParseAsm(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := parseAsm(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func parseAsm(src string) (*core.Module, error) { return asm.Parse("test", src) }
