package machine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/mem"
	"llva/internal/rt"
	"llva/internal/target"
)

// genFunc builds a random but well-formed LLVA function over mixed integer
// widths, with arithmetic, comparisons, casts, shifts, selects (via
// branches and phis) and memory traffic through an alloca — then the
// differential test checks the interpreter and both simulated processors
// compute the same result. All potentially-trapping operations carry
// !noexc so random operands cannot abort execution.
func genFunc(r *rand.Rand, m *core.Module, name string) *core.Function {
	ctx := m.Types()
	intTypes := []*core.Type{ctx.SByte(), ctx.UByte(), ctx.Short(),
		ctx.UShort(), ctx.Int(), ctx.UInt(), ctx.Long(), ctx.ULong()}

	long := ctx.Long()
	f := m.NewFunction(name, ctx.Function(long, []*core.Type{long, long}, false))
	b := core.NewBuilder(f)
	entry := f.NewBlock("entry")
	b.SetBlock(entry)

	slot := b.Alloca(long, "slot")
	b.Store(f.Params[0], slot)

	// A pool of same-type value pairs to draw operands from.
	vals := map[*core.Type][]core.Value{
		long: {f.Params[0], f.Params[1], core.NewInt(long, int64(r.Uint64()))},
	}
	pick := func(t *core.Type) core.Value {
		vs := vals[t]
		if len(vs) == 0 {
			c := core.NewUint(t, r.Uint64())
			vals[t] = append(vals[t], c)
			return c
		}
		return vs[r.Intn(len(vs))]
	}
	add := func(t *core.Type, v core.Value) { vals[t] = append(vals[t], v) }

	dbl := ctx.Double()
	flt := ctx.Float()
	vals[dbl] = []core.Value{b.Cast(f.Params[0], dbl, "")}

	n := 8 + r.Intn(24)
	for i := 0; i < n; i++ {
		t := intTypes[r.Intn(len(intTypes))]
		switch r.Intn(9) {
		case 0, 1: // binary arithmetic
			ops := []func(x, y core.Value, n string) *core.Instruction{
				b.Add, b.Sub, b.Mul, b.And, b.Or, b.Xor,
			}
			v := ops[r.Intn(len(ops))](pick(t), pick(t), "")
			add(t, v)
		case 2: // division (suppressed exceptions: random divisors may be 0)
			v := b.Div(pick(t), pick(t), "")
			v.ExceptionsEnabled = false
			add(t, v)
			w := b.Rem(pick(t), pick(t), "")
			w.ExceptionsEnabled = false
			add(t, w)
		case 3: // shift
			amt := core.NewUint(m.Types().UByte(), uint64(r.Intn(80)))
			if r.Intn(2) == 0 {
				add(t, b.Shl(pick(t), amt, ""))
			} else {
				add(t, b.Shr(pick(t), amt, ""))
			}
		case 4: // cast between random integer widths
			from := intTypes[r.Intn(len(intTypes))]
			add(t, b.Cast(pick(from), t, ""))
		case 5: // comparison folded back into an integer
			c := b.SetLT(pick(t), pick(t), "")
			add(t, b.Cast(c, t, ""))
		case 6: // memory round trip through the alloca
			v := b.Cast(pick(t), long, "")
			b.Store(v, slot)
			add(long, b.Load(slot, ""))
		case 7: // floating point: arithmetic, compares, width changes
			ops := []func(x, y core.Value, n string) *core.Instruction{
				b.Add, b.Sub, b.Mul,
			}
			v := ops[r.Intn(len(ops))](pick(dbl), pick(dbl), "")
			add(dbl, v)
			if r.Intn(2) == 0 {
				narrow := b.Cast(pick(dbl), flt, "")
				add(dbl, b.Cast(narrow, dbl, ""))
			}
			c := b.SetLE(pick(dbl), pick(dbl), "")
			add(t, b.Cast(c, t, ""))
		case 8: // int <-> float crossings (clamped by cast semantics)
			add(dbl, b.Cast(pick(t), dbl, ""))
			back := b.Cast(pick(dbl), ctx.Int(), "")
			add(ctx.Int(), back)
		}
	}

	// A diamond with a phi to exercise control flow + phi moves.
	cond := b.SetGT(pick(long), pick(long), "")
	tb := f.NewBlock("t")
	fb := f.NewBlock("f")
	jb := f.NewBlock("j")
	b.CondBr(cond, tb, fb)
	b.SetBlock(tb)
	tv := b.Add(pick(long), pick(long), "")
	b.Br(jb)
	b.SetBlock(fb)
	fv := b.Xor(pick(long), pick(long), "")
	b.Br(jb)
	b.SetBlock(jb)
	phi := b.Phi(long, "")
	phi.AddPhiIncoming(tv, tb)
	phi.AddPhiIncoming(fv, fb)

	// Mix every live long value into the result.
	acc := core.Value(phi)
	for _, v := range vals[long] {
		acc = b.Add(acc, v, "")
		acc = b.Xor(acc, core.NewUint(long, 0x9E3779B97F4A7C15), "")
	}
	b.Ret(acc)
	return f
}

func TestRandomArithmeticDifferential(t *testing.T) {
	const rounds = 150
	root := rand.New(rand.NewSource(20260705))
	for round := 0; round < rounds; round++ {
		seed := root.Int63()
		r := rand.New(rand.NewSource(seed))
		m := core.NewModule(fmt.Sprintf("fuzz%d", round))
		genFunc(r, m, "f")
		if err := core.Verify(m); err != nil {
			t.Fatalf("seed %d: generated invalid IR: %v", seed, err)
		}

		a1 := r.Uint64()
		a2 := r.Uint64()

		ip, err := interp.New(m, &strings.Builder{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := ip.Run("f", a1, a2)
		if err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}

		for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
			tr, err := codegen.New(d, m)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			obj, err := tr.TranslateModule()
			if err != nil {
				t.Fatalf("seed %d: translate %s: %v", seed, d.Name, err)
			}
			env := rt.NewEnv(mem.New(0, true), &strings.Builder{})
			mc, err := New(d, m, env)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := mc.LoadObject(obj); err != nil {
				t.Fatalf("seed %d: load %s: %v", seed, d.Name, err)
			}
			got, err := mc.Run("f", a1, a2)
			if err != nil {
				t.Fatalf("seed %d: run %s: %v", seed, d.Name, err)
			}
			if got != want {
				t.Fatalf("seed %d: %s = %#x, interp = %#x\nargs: %#x %#x",
					seed, d.Name, got, want, a1, a2)
			}
		}
	}
}
