package machine

import (
	"errors"

	"llva/internal/telemetry"
)

// ExecStats accumulates the simulated processor's execution counters.
// The hot loop updates the plain fields (one machine per goroutine);
// Run flushes them into the attached telemetry registry afterwards so
// instrumentation costs nothing per instruction.
type ExecStats struct {
	Instrs, Cycles uint64
	Calls          uint64
	ExternCalls    uint64
	JITRequests    uint64
	ICacheFills    uint64
	Branches       uint64
	BranchesTaken  uint64
	Traps          uint64

	// Block-engine counters (block.go): blocks predecoded, block
	// transitions that followed a cached chain pointer (map-free), and
	// blocks evicted by SMC/code-install invalidation.
	BlockBuilds        uint64
	BlockChains        uint64
	BlockInvalidations uint64

	// Replacements counts InstallCode calls that superseded an earlier
	// installation of the same function (SMC replacement, tier-2
	// hot-swap).
	Replacements uint64
}

// SetTelemetry attaches a metric registry. After every Run the machine
// flushes its counter deltas into the machine.* counter families and
// emits a TrapTaken event when execution ended in an unhandled trap.
func (mc *Machine) SetTelemetry(reg *telemetry.Registry) { mc.tele = reg }

// Telemetry returns the attached registry (nil when none).
func (mc *Machine) Telemetry() *telemetry.Registry { return mc.tele }

// recordRunEnd accounts a finished Run: trap classification plus the
// counter flush.
func (mc *Machine) recordRunEnd(err error) {
	var te *TrapError
	if errors.As(err, &te) {
		mc.Stats.Traps++
		if mc.tele != nil {
			mc.tele.Events().Emit(telemetry.EvTrapTaken, te.Detail, int64(te.Num))
		}
		// The flight recorder snapshots the dying machine after the
		// trap event lands in the ring, so the report's event tail
		// includes the trap itself.
		if mc.recordCrash {
			mc.lastCrash = mc.buildCrashReport(te)
		}
	}
	mc.flushTelemetry()
}

func (mc *Machine) flushTelemetry() {
	if mc.tele == nil {
		return
	}
	cur, last := mc.Stats, mc.teleFlushed
	add := func(name string, c, l uint64) {
		if c > l {
			mc.tele.Counter(name).Add(c - l)
		}
	}
	add("machine.instrs", cur.Instrs, last.Instrs)
	add("machine.cycles", cur.Cycles, last.Cycles)
	add("machine.branches", cur.Branches, last.Branches)
	add("machine.branches_taken", cur.BranchesTaken, last.BranchesTaken)
	add("machine.calls", cur.Calls, last.Calls)
	add("machine.extern_calls", cur.ExternCalls, last.ExternCalls)
	add("machine.jit_requests", cur.JITRequests, last.JITRequests)
	add("machine.icache_fills", cur.ICacheFills, last.ICacheFills)
	add("machine.traps", cur.Traps, last.Traps)
	add("machine.block_builds", cur.BlockBuilds, last.BlockBuilds)
	add("machine.block_chains", cur.BlockChains, last.BlockChains)
	add("machine.block_invalidate", cur.BlockInvalidations, last.BlockInvalidations)
	add("machine.code_replacements", cur.Replacements, last.Replacements)
	mc.teleFlushed = cur
}
