package machine

import (
	"fmt"

	"llva/internal/target"
)

// The basic-block engine: the machine's analog of the trace cache LLEE
// exploits (Section 4.2). Instead of looking up every retired
// instruction in a per-PC decoded map, straight-line runs are predecoded
// once into flat []decoded slices cached by entry PC, executed in a
// tight inner loop with batched Instrs/Cycles accounting, and *chained*:
// each block caches the successor block of its terminator's taken and
// fallthrough edges, so steady-state execution follows pointers and
// never touches the block map. Invalidation (SMC, Section 3.5's
// function-granularity contract) drops every block overlapping the
// invalidated code range; chained pointers into dropped blocks are
// unlinked lazily via the valid flag.

// decoded is one predecoded instruction inside a block.
type decoded struct {
	in  target.MInstr
	n   int    // encoded length
	pc  uint64 // instruction address (precise trap PCs, relative targets)
	cum uint64 // block cycles through this instruction, inclusive
}

// block is a predecoded straight-line run ending at a terminator, the
// block-size cap, or the current end of the code segment.
type block struct {
	entry  uint64
	end    uint64 // first byte past the last instruction
	instrs []decoded
	valid  bool   // cleared by invalidation; chains check it before use
	taken  *block // chained successor of the terminator's taken edge
	fall   *block // chained successor of the fallthrough edge
}

// maxBlockInstrs caps predecode lookahead so the instruction-limit check
// (hoisted to block granularity) overshoots by at most one block.
const maxBlockInstrs = 64

// Arena chunk sizes: blocks and their instruction slices are carved from
// chunked arenas owned by the machine, so steady-state predecoding costs
// O(1/chunk) allocations instead of one block struct plus log2(len)
// append-growth reallocations per block. Invalidated blocks are dropped
// from the map but their arena storage is reclaimed only when the
// machine itself dies — bounded by SMC/tier-up activity, which is rare
// by the §3.5 contract.
const (
	blockChunkLen = 64
	instrChunkLen = 1024
)

// newBlock carves a zeroed block from the machine's block arena.
func (mc *Machine) newBlock() *block {
	if len(mc.blockChunk) == cap(mc.blockChunk) {
		mc.blockChunk = make([]block, 0, blockChunkLen)
	}
	mc.blockChunk = append(mc.blockChunk, block{})
	return &mc.blockChunk[len(mc.blockChunk)-1]
}

// sealInstrs copies the predecode scratch into an exact-size slice carved
// from the instruction arena. The returned slice has no spare capacity,
// so later carves can never alias it.
func (mc *Machine) sealInstrs(scratch []decoded) []decoded {
	if len(scratch) > cap(mc.instrChunk)-len(mc.instrChunk) {
		mc.instrChunk = make([]decoded, 0, instrChunkLen)
	}
	start := len(mc.instrChunk)
	mc.instrChunk = append(mc.instrChunk, scratch...)
	return mc.instrChunk[start:len(mc.instrChunk):len(mc.instrChunk)]
}

// isTerminator reports whether op can redirect the PC (or always traps)
// and therefore ends a basic block.
func isTerminator(op target.MOp) bool {
	switch op {
	case target.MJmp, target.MJcc, target.MCall, target.MCallInd,
		target.MCallExt, target.MRet, target.MUnwind, target.MTrap:
		return true
	}
	return false
}

// blockFor returns the cached block at pc, predecoding it on a miss.
func (mc *Machine) blockFor(pc uint64) (*block, error) {
	if b := mc.blocks[pc]; b != nil {
		return b, nil
	}
	return mc.buildBlock(pc)
}

// buildBlock predecodes the straight-line run starting at pc. Decode
// errors past the first instruction just cut the block short: execution
// that actually falls through to the bad PC reports the error then,
// matching the old per-instruction fetch's lazy semantics.
func (mc *Machine) buildBlock(pc uint64) (*block, error) {
	if pc < mc.codeBase || pc >= mc.codeEnd {
		return nil, &TrapError{Num: TrapMemoryFault, PC: pc,
			Detail: "instruction fetch outside code segment"}
	}
	// The code view is bounded at codeEnd so a truncated encoding at the
	// segment's edge errors exactly like the old 16-byte fetch window.
	view := mc.code[:mc.codeEnd-mc.codeBase]
	// Predecode into the machine's scratch buffer (sized for the largest
	// possible block), then seal the exact-size run into the arena.
	if mc.decodeScratch == nil {
		mc.decodeScratch = make([]decoded, 0, maxBlockInstrs)
	}
	scratch := mc.decodeScratch[:0]
	at := pc
	var cum uint64
	for len(scratch) < maxBlockInstrs && at < mc.codeEnd {
		in, n, err := mc.desc.DecodeFrom(view, int(at-mc.codeBase))
		if err != nil {
			if len(scratch) == 0 {
				return nil, fmt.Errorf("machine: decode at 0x%x: %w", at, err)
			}
			break
		}
		cum += mc.desc.Cycles(&in)
		scratch = append(scratch, decoded{in: in, n: n, pc: at, cum: cum})
		at += uint64(n)
		if isTerminator(in.Op) {
			break
		}
	}
	b := mc.newBlock()
	b.entry = pc
	b.valid = true
	b.instrs = mc.sealInstrs(scratch)
	b.end = at
	mc.blocks[pc] = b
	mc.Stats.BlockBuilds++
	mc.Stats.ICacheFills += uint64(len(b.instrs))
	return b, nil
}

// runBlock executes one predecoded block. It returns the chained
// successor block when the terminator's edge is already linked (or can
// be linked from the block map), nil when the caller must look the next
// PC up itself.
func (mc *Machine) runBlock(b *block) (*block, error) {
	instrs := b.instrs
	for i := range instrs {
		dd := &instrs[i]
		mc.pc = dd.pc
		// Cycles are flushed at block exit; pendCycles keeps the virtual
		// clock exact for externs (clock()) that read it mid-block.
		mc.pendCycles = dd.cum
		jumped, err := mc.exec(&dd.in, dd.n)
		if err != nil {
			mc.Stats.Instrs += uint64(i + 1)
			mc.Stats.Cycles += dd.cum
			mc.pendCycles = 0
			// Surface what was *at* the faulting PC: the predecoded
			// instruction renders for free on this cold path.
			if te, ok := err.(*TrapError); ok && te.Mnemonic == "" && te.PC == dd.pc {
				te.Mnemonic = dd.in.String()
			}
			return nil, err
		}
		if !jumped {
			continue
		}
		// Only a terminator redirects the PC, so this is the last
		// instruction of the block.
		mc.Stats.Instrs += uint64(i + 1)
		mc.Stats.Cycles += dd.cum
		mc.pendCycles = 0
		switch dd.in.Op {
		case target.MJmp, target.MJcc:
			// Taken branches redirect the fetch stream: +1 cycle. This
			// is what makes trace-driven code layout measurable
			// (Section 4.2).
			mc.Stats.Branches++
			mc.Stats.BranchesTaken++
			mc.Stats.Cycles++
			return mc.chain(&b.taken), nil
		case target.MCall:
			// Direct calls have a fixed target: chainable.
			return mc.chain(&b.taken), nil
		}
		// Dynamic transfers (indirect call, return, unwind, JIT stub
		// dispatch) resolve through the block map.
		return nil, nil
	}
	// Fell off the end: an untaken conditional branch, or a block cut at
	// the size cap / a decode boundary. The fallthrough edge is static.
	last := &instrs[len(instrs)-1]
	mc.Stats.Instrs += uint64(len(instrs))
	mc.Stats.Cycles += last.cum
	mc.pendCycles = 0
	if last.in.Op == target.MJcc {
		mc.Stats.Branches++
	}
	mc.pc = b.end
	return mc.chain(&b.fall), nil
}

// chain resolves a successor edge: follow the cached pointer when it is
// still valid, otherwise try to (re)link it from the block map. Only
// pointer-followed transitions count as chains — the steady state the
// metric certifies is map-free.
func (mc *Machine) chain(slot **block) *block {
	if nb := *slot; nb != nil {
		if nb.valid && nb.entry == mc.pc {
			mc.Stats.BlockChains++
			return nb
		}
		*slot = nil
	}
	if nb := mc.blocks[mc.pc]; nb != nil {
		*slot = nb
		return nb
	}
	return nil
}

// invalidateBlocks drops every cached block overlapping [lo, hi) — the
// machine half of the paper's function-granularity SMC contract
// (Section 3.5): after new code is installed over a range or a function
// is rebound, no stale predecoded run of it may execute again. Chained
// pointers into dropped blocks die via the valid flag.
func (mc *Machine) invalidateBlocks(lo, hi uint64) {
	for entry, b := range mc.blocks {
		if b.entry < hi && b.end > lo {
			b.valid = false
			b.taken, b.fall = nil, nil
			delete(mc.blocks, entry)
			mc.Stats.BlockInvalidations++
		}
	}
}
