package machine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/obj"
)

// TestRandomModuleRoundTrips feeds randomly generated (but verified)
// modules through the textual assembler and the binary object format;
// both round trips must verify and compute the same result as the
// original on the reference interpreter.
func TestRandomModuleRoundTrips(t *testing.T) {
	root := rand.New(rand.NewSource(424242))
	for round := 0; round < 40; round++ {
		seed := root.Int63()
		r := rand.New(rand.NewSource(seed))
		m := core.NewModule(fmt.Sprintf("rt%d", round))
		genFunc(r, m, "f")
		if err := core.Verify(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a1, a2 := r.Uint64(), r.Uint64()
		want := runF(t, seed, m, a1, a2)

		// Textual round trip.
		text := asm.Print(m)
		m2, err := asm.Parse("rt", text)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, text)
		}
		if err := core.Verify(m2); err != nil {
			t.Fatalf("seed %d: reparsed module invalid: %v", seed, err)
		}
		if got := runF(t, seed, m2, a1, a2); got != want {
			t.Fatalf("seed %d: asm round trip changed semantics: %#x vs %#x", seed, got, want)
		}

		// Binary round trip.
		data, err := obj.Encode(m)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		m3, err := obj.Decode(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if err := core.Verify(m3); err != nil {
			t.Fatalf("seed %d: decoded module invalid: %v", seed, err)
		}
		if got := runF(t, seed, m3, a1, a2); got != want {
			t.Fatalf("seed %d: obj round trip changed semantics: %#x vs %#x", seed, got, want)
		}
	}
}

func runF(t *testing.T, seed int64, m *core.Module, a1, a2 uint64) uint64 {
	t.Helper()
	ip, err := interp.New(m, &strings.Builder{})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	v, err := ip.Run("f", a1, a2)
	if err != nil {
		t.Fatalf("seed %d: run: %v", seed, err)
	}
	return v
}
