package machine

import (
	"strings"
	"testing"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/mem"
	"llva/internal/minic"
	"llva/internal/prof"
	"llva/internal/rt"
	"llva/internal/target"
	"llva/internal/telemetry"
)

// hotLoopSrc spends nearly all of its retired instructions inside %hot:
// the workload for sampling-attribution and perturbation tests.
const hotLoopSrc = `
int hot(int n) {
	int i, s = 0;
	for (i = 0; i < n; i++) s += i ^ (s >> 3);
	return s;
}
int main() {
	int j, t = 0;
	for (j = 0; j < 40; j++) t += hot(1500);
	print_int(t); print_nl();
	return 0;
}
`

func runHotLoop(t *testing.T, d *target.Desc, p *prof.Profiler) (ExecStats, string) {
	t.Helper()
	m, err := minic.Compile("hot.c", hotLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	mc, out := loadCompiled(t, m, d)
	if p != nil {
		mc.SetProfiler(p)
	}
	if _, err := mc.Run("main"); err != nil {
		t.Fatalf("%s: %v", d.Name, err)
	}
	return mc.Stats, out.String()
}

// TestProfilerDoesNotPerturbExecution: enabling the sampling profiler
// must leave the retired-instruction and cycle counts bit-identical —
// the trigger is derived from the instruction stream, never the wall
// clock, and sampling happens outside the simulated processor's
// accounting.
func TestProfilerDoesNotPerturbExecution(t *testing.T) {
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		base, baseOut := runHotLoop(t, d, nil)
		prof1, profOut := runHotLoop(t, d, prof.NewProfiler(128))
		if base.Instrs != prof1.Instrs || base.Cycles != prof1.Cycles {
			t.Errorf("%s: profiler perturbed execution: instrs %d->%d cycles %d->%d",
				d.Name, base.Instrs, prof1.Instrs, base.Cycles, prof1.Cycles)
		}
		if baseOut != profOut {
			t.Errorf("%s: output changed under profiling", d.Name)
		}
	}
}

// TestProfilerHotAttribution: on a loop-heavy workload, the known hot
// function must carry the lion's share of exclusive samples (the issue's
// >=90% acceptance bar) and appear under main in the folded stacks.
func TestProfilerHotAttribution(t *testing.T) {
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		p := prof.NewProfiler(128)
		stats, _ := runHotLoop(t, d, p)
		if p.Total() < 100 {
			t.Fatalf("%s: only %d samples over %d instrs (rate 128)",
				d.Name, p.Total(), stats.Instrs)
		}
		var hotExcl uint64
		for _, s := range p.Funcs() {
			if s.Name == "hot" {
				hotExcl = s.Excl
			}
		}
		if share := float64(hotExcl) / float64(p.Total()); share < 0.9 {
			t.Errorf("%s: hot carries %.1f%% of exclusive samples, want >=90%%",
				d.Name, 100*share)
		}
		var folded strings.Builder
		if err := p.WriteFolded(&folded); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(folded.String(), "main;hot ") {
			t.Errorf("%s: folded stacks missing main;hot:\n%s", d.Name, folded.String())
		}
	}
}

// TestTrapErrorMnemonic: an unhandled trap surfaces the faulting
// instruction's mnemonic in both the error struct and its message.
func TestTrapErrorMnemonic(t *testing.T) {
	src := `
long %f(long* %p) {
entry:
    %v = load long* %p
    ret long %v
}
`
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		mc, _ := loadProgram(t, src, d)
		_, err := mc.Run("f", 0)
		te, ok := err.(*TrapError)
		if !ok || te.Num != TrapMemoryFault {
			t.Fatalf("%s: err = %v, want memory fault", d.Name, err)
		}
		if te.Mnemonic == "" {
			t.Fatalf("%s: trap carries no mnemonic", d.Name)
		}
		if !strings.Contains(te.Error(), te.Mnemonic) {
			t.Errorf("%s: message %q does not include mnemonic %q",
				d.Name, te.Error(), te.Mnemonic)
		}
	}
}

// TestFlightRecorderCrashReport: a trap with the flight recorder armed
// yields a post-mortem with the faulting function, a caller->callee
// backtrace, registers, a disassembly window marking the fault, and the
// telemetry event tail ending in the trap itself.
func TestFlightRecorderCrashReport(t *testing.T) {
	src := `
long %inner(long* %p) {
entry:
    %v = load long* %p
    ret long %v
}
long %outer(long* %p) {
entry:
    %r = call long %inner(long* %p)
    ret long %r
}
`
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		mc, _ := loadProgram(t, src, d)
		mc.SetTelemetry(telemetry.New())
		mc.EnableFlightRecorder(8)
		if mc.LastCrash() != nil {
			t.Fatalf("%s: crash report before any run", d.Name)
		}
		_, err := mc.Run("outer", 0)
		if _, ok := err.(*TrapError); !ok {
			t.Fatalf("%s: err = %v, want trap", d.Name, err)
		}
		c := mc.LastCrash()
		if c == nil {
			t.Fatalf("%s: no crash report after trap", d.Name)
		}
		if c.Func != "inner" {
			t.Errorf("%s: faulting func = %q, want inner", d.Name, c.Func)
		}
		if len(c.Backtrace) != 2 || c.Backtrace[0].Func != "outer" || c.Backtrace[1].Func != "inner" {
			t.Errorf("%s: backtrace = %+v, want outer -> inner", d.Name, c.Backtrace)
		}
		if len(c.Regs) == 0 {
			t.Errorf("%s: no registers captured", d.Name)
		}
		fault := false
		for _, l := range c.Disasm {
			if l.Fault && l.PC == c.PC {
				fault = true
			}
		}
		if !fault {
			t.Errorf("%s: disassembly window does not mark the faulting PC", d.Name)
		}
		gotTrapEv := false
		for _, e := range c.Events {
			if e.Kind == telemetry.EvTrapTaken {
				gotTrapEv = true
			}
		}
		if !gotTrapEv {
			t.Errorf("%s: event tail misses the trap event: %+v", d.Name, c.Events)
		}
		var b strings.Builder
		if err := c.Render(&b); err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"%inner", "faulted in", "=> ", "registers"} {
			if !strings.Contains(b.String(), want) {
				t.Errorf("%s: rendered report missing %q:\n%s", d.Name, want, b.String())
			}
		}
	}
}

// loadCompiled is loadProgram for an already-compiled module.
func loadCompiled(t *testing.T, m *core.Module, d *target.Desc) (*Machine, *strings.Builder) {
	t.Helper()
	tr, err := codegen.New(d, m)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tr.TranslateModule()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	env := rt.NewEnv(mem.New(0, true), &out)
	mc, err := New(d, m, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.LoadObject(obj); err != nil {
		t.Fatal(err)
	}
	return mc, &out
}
