// Package machine implements the simulated hardware processor that
// executes translated native code — the substitute for the paper's SPARC
// V9 and IA-32 silicon (DESIGN.md, substitution table). It fetches and
// decodes encoded instructions from its flat memory, maintains integer
// and floating-point register files, counts instructions and cycles, and
// provides the loader/relocation machinery the execution manager (LLEE)
// uses, including lazy-JIT stubs for translate-on-demand.
package machine

import (
	"context"
	"fmt"
	"sync/atomic"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/image"
	"llva/internal/mem"
	"llva/internal/prof"
	"llva/internal/rt"
	"llva/internal/target"
	"llva/internal/telemetry"
)

// CodeReserve is the size of the machine's code segment: translated code
// is installed inside [codeBase, codeBase+CodeReserve) and the heap
// starts above it, so translating a function mid-execution (lazy JIT,
// SMC retranslation) never collides with live heap data.
const CodeReserve = 8 << 20

// JITExtern is the reserved external "function" used by lazy translation
// stubs: calling it asks the execution manager to translate the function
// whose index is in the first scratch register, and control transfers to
// the returned code address.
const JITExtern = "llva.jit"

// Machine is one simulated processor instance.
type Machine struct {
	desc *target.Desc
	mem  *mem.Memory
	env  *rt.Env

	// regs is the unified register file: integer bank at [0, 64), FP
	// bank at [64, 128) — exactly the Reg numbering, so decoded
	// operands index it directly (see exec.go).
	regs   [unifiedRegs]uint64
	r0mask uint64 // 0 on vsparc (r0 hardwired to zero), ^0 on vx86
	pc     uint64

	flagEQ, flagLT bool

	// blocks is the predecoded basic-block cache (block.go), the
	// machine's I-cache/trace-cache analog. code is a direct view of
	// the code segment [codeBase, codeLimit) used by the predecoder.
	blocks map[uint64]*block
	code   []byte
	// Predecode storage (block.go): blocks and their instruction slices
	// are carved from chunked arenas; decodeScratch is the reusable
	// predecode buffer sealed into the arena at exact size.
	blockChunk    []block
	instrChunk    []decoded
	decodeScratch []decoded
	// extArgs is the persistent marshalling buffer for external-call
	// arguments: rt.Fn implementations receive a view of it and must not
	// retain it past the call (none do — they consume raw words).
	extArgs [16]uint64
	// pendCycles is the executing block's not-yet-flushed cycle prefix,
	// added to Stats.Cycles by the virtual clock (telemetry.go).
	pendCycles uint64

	codeBase, codeEnd, codeLimit uint64

	// funcCode records each installed function's code range so
	// InvalidateFunction can evict its predecoded blocks.
	funcCode []codeRange

	funcAddr map[string]uint64
	addrFunc map[uint64]string

	externs   []string
	externIdx map[string]int

	invokeStack []invokeFrame

	// Guest-level observability (prof.go). prof/profNext drive the
	// deterministic virtual-PC sampler; callStack is the shadow stack
	// of return addresses maintained while trackCalls is on; the
	// flight recorder fields capture the trap-time snapshot.
	prof        *prof.Profiler
	profNext    uint64
	trackCalls  bool
	callStack   []uint64
	recordCrash bool
	crashEvents int
	lastCrash   *prof.CrashReport

	privileged bool

	// OnJIT is invoked when a lazy stub is hit; it must install the
	// function's code (via InstallCode) and return its entry address.
	OnJIT func(name string) (uint64, error)
	// OnSwap is invoked on the machine's own goroutine at the next block
	// boundary after RequestSwap, so background tier-up can hand
	// optimized code to the machine without racing the run: the callback
	// installs replacements via InstallCode while no guest instruction
	// is in flight.
	OnSwap func()
	// swapPend is armed by RequestSwap (any goroutine) and drained by
	// loop() on the machine goroutine.
	swapPend atomic.Bool
	// OnIntrinsic handles llva.* intrinsic calls not implemented by the
	// machine itself (smc, storage). args are raw words.
	OnIntrinsic func(name string, args []uint64) (uint64, error)

	// Stats accumulates execution counters.
	Stats ExecStats
	// tele, when set, receives the counter deltas after each Run.
	tele        *telemetry.Registry
	teleFlushed ExecStats

	// MaxInstrs bounds execution (0 = 2 billion).
	MaxInstrs uint64

	// Gas metering (gas.go): gasBudget is the per-run cycle allowance
	// set by SetGas (0: unmetered); gasStart/gasStop are the armed run's
	// virtual-clock window, checked once per block by loop().
	gasBudget uint64
	gasStart  uint64
	gasStop   uint64

	// runCtx is the active RunContext's context, polled at block
	// boundaries by loop(); nil outside a run.
	runCtx context.Context

	haltAddr uint64

	// loader state
	module        *core.Module
	dataImage     *image.Data
	globals       map[string]uint64
	stubNames     []string
	stubAddr      []uint64
	callsViaStubs bool
}

// codeRange is one installed function body's extent in code memory.
type codeRange struct {
	name   string
	lo, hi uint64
}

// invokeFrame is one entry of the unwind-handler stack. It records only
// the handler address and the invoking frame's SP/FP: unwinding walks
// frames, it does not checkpoint the register file, so the translator
// must keep values live into a handler in the frame itself
// (internal/codegen spills them around invoke). depth remembers the
// shadow call stack's length at invoke time so an unwind can cut the
// backtrace back to the invoking frame.
type invokeFrame struct {
	handler uint64
	sp, fp  uint64
	depth   int
}

// New creates a machine for the given target over fresh memory, loading
// the module's static data segment.
func New(d *target.Desc, m *core.Module, env *rt.Env) (*Machine, error) {
	data, err := image.Build(m, mem.NullGuard)
	if err != nil {
		return nil, err
	}
	return NewWithImage(d, m, env, data)
}

// NewWithImage creates a machine over a pre-built data image, taking
// ownership of it (fixup patching mutates data.Bytes — hand a prototype
// a Clone, never the prototype itself). The execution manager builds
// the image once per module and clones it per session, so repeated
// session setup skips global layout and initializer encoding.
func NewWithImage(d *target.Desc, m *core.Module, env *rt.Env, data *image.Data) (*Machine, error) {
	mc := &Machine{
		desc:       d,
		mem:        env.Mem,
		env:        env,
		blocks:     make(map[uint64]*block),
		r0mask:     ^uint64(0),
		funcAddr:   make(map[string]uint64),
		addrFunc:   make(map[uint64]string),
		externIdx:  make(map[string]int),
		privileged: true,
		MaxInstrs:  2_000_000_000,
	}
	if d.WordSize == 4 {
		mc.r0mask = 0 // vsparc: r0 reads as zero, writes are discarded
	}
	// The virtual clock is installed once; the per-run hot path never
	// rebuilds the closure.
	env.Clock = func() uint64 { return mc.Stats.Cycles + mc.pendCycles }
	if err := mc.mem.WriteBytes(data.Base, data.Bytes); err != nil {
		return nil, fmt.Errorf("machine: data segment does not fit: %w", err)
	}
	mc.codeBase = (data.Base + uint64(len(data.Bytes)) + 15) &^ 15
	mc.codeEnd = mc.codeBase
	mc.codeLimit = mc.codeBase + CodeReserve
	if mc.codeLimit > mc.mem.Size()/2 {
		mc.codeLimit = mc.mem.Size() / 2
	}
	// One persistent view of the whole code segment: the predecoder
	// reads instructions in place instead of cutting a bounds-checked
	// fetch window per instruction. Memory never reallocates its
	// backing array, so the view stays valid as code is installed.
	code, err := mc.mem.Bytes(mc.codeBase, mc.codeLimit-mc.codeBase)
	mc.code = code
	if err != nil {
		return nil, fmt.Errorf("machine: code segment does not fit: %w", err)
	}
	mc.mem.SetHeapStart(mc.codeLimit)
	mc.globals = data.GlobalAddr
	mc.dataImage = data
	mc.module = m
	return mc, nil
}

// Env returns the runtime environment.
func (mc *Machine) Env() *rt.Env { return mc.env }

// Desc returns the target description.
func (mc *Machine) Desc() *target.Desc { return mc.desc }

// FuncAddr returns the code address of a function, if loaded or stubbed.
func (mc *Machine) FuncAddr(name string) (uint64, bool) {
	a, ok := mc.funcAddr[name]
	return a, ok
}

// NameAt returns the function bound at a code address, if any.
func (mc *Machine) NameAt(addr uint64) (string, bool) {
	n, ok := mc.addrFunc[addr]
	return n, ok
}

// CallsViaStubs forces direct-call relocations to resolve to the callee's
// lazy stub instead of its code address, so every call re-checks the
// current binding. The execution manager enables it in JIT mode: it is
// what makes self-modifying-code invalidation (Section 3.4) take effect
// on the very next invocation.
func (mc *Machine) CallsViaStubs(on bool) { mc.callsViaStubs = on }

// stubFor returns (creating if necessary) the lazy stub of a function.
func (mc *Machine) stubFor(name string) (uint64, error) {
	for id, n := range mc.stubNames {
		if n == name {
			return mc.stubAddr[id], nil
		}
	}
	// makeStub binds funcAddr to the stub only when the name is unbound;
	// preserve an existing binding.
	old, hadOld := mc.funcAddr[name]
	addr, err := mc.makeStub(name)
	if err != nil {
		return 0, err
	}
	if hadOld {
		mc.bind(name, old)
	}
	return addr, nil
}

// InvalidateFunction discards the current translation binding of a
// function: the next call through its stub re-enters the JIT, and every
// predecoded block of the function's installed bodies is evicted so no
// chained block can re-enter the stale code. This is the machine half of
// llva.smc.replace.
func (mc *Machine) InvalidateFunction(name string) error {
	stub, err := mc.stubFor(name)
	if err != nil {
		return err
	}
	mc.bind(name, stub)
	for _, r := range mc.funcCode {
		if r.name == name {
			mc.invalidateBlocks(r.lo, r.hi)
		}
	}
	return nil
}

// externIndex interns an external function name.
func (mc *Machine) externIndex(sym string) int {
	if i, ok := mc.externIdx[sym]; ok {
		return i
	}
	i := len(mc.externs)
	mc.externs = append(mc.externs, sym)
	mc.externIdx[sym] = i
	return i
}

// InstallCode places a translated function into code memory, resolving
// its relocations, and binds its name to the new address. Re-installing a
// name rebinds it (used by SMC invalidation and lazy JIT).
func (mc *Machine) InstallCode(nf *codegen.NativeFunc) (uint64, error) {
	// Reserve this function's address range up front: resolving its
	// relocations may itself emit stubs, which must land after it.
	addr := (mc.codeEnd + 15) &^ 15
	if addr+uint64(len(nf.Code)) > mc.codeLimit {
		return 0, fmt.Errorf("machine: code segment exhausted loading %s", nf.Name)
	}
	hi := addr + uint64(len(nf.Code))
	mc.codeEnd = hi
	// Bind early so self-recursive calls resolve to this function.
	mc.bind(nf.Name, addr)
	// Copy the body into code memory first, then patch relocations in
	// place on the machine's code view: nf.Code itself is shared
	// (cache-decoded objects alias the storage blob) and is never
	// mutated, and the old intermediate per-install copy is gone.
	if err := mc.mem.WriteBytes(addr, nf.Code); err != nil {
		return 0, fmt.Errorf("machine: code segment overflow loading %s", nf.Name)
	}
	installed := mc.code[addr-mc.codeBase : hi-mc.codeBase]
	for _, rl := range nf.Relocs {
		val, err := mc.resolveSym(rl)
		if err != nil {
			return 0, fmt.Errorf("machine: %s: %w", nf.Name, err)
		}
		mc.desc.Patch(installed, rl.Offset, rl.Kind, val)
	}
	// Drop any predecoded blocks overlapping the installed range — new
	// bytes must never execute through a stale predecode (§3.5's
	// function-granularity SMC contract) — and remember the function's
	// extent so InvalidateFunction can evict its blocks later. The
	// recorded range is the body's [addr, hi) captured before relocation:
	// resolving relocations can emit lazy stubs past hi, and those belong
	// to their own callees (addrFunc), not to this function — recording
	// codeEnd here would make funcAt misattribute stub PCs to nf.Name.
	mc.invalidateBlocks(addr, mc.codeEnd)
	for _, r := range mc.funcCode {
		if r.name == nf.Name {
			mc.Stats.Replacements++
			break
		}
	}
	mc.funcCode = append(mc.funcCode, codeRange{name: nf.Name, lo: addr, hi: hi})
	return addr, nil
}

// RequestSwap asks the machine to run its OnSwap callback at the next
// block boundary. Safe to call from any goroutine; the callback itself
// always runs on the machine goroutine (or at the start of the next Run
// if the machine is idle — see llee.Session). Requests coalesce: N
// requests before the next boundary produce one callback.
func (mc *Machine) RequestSwap() { mc.swapPend.Store(true) }

// bind makes addr the current code address of name. Older addresses (the
// stub, or superseded translations) keep their reverse mapping: code at
// those addresses still belongs to the function, and function-pointer
// values already in data may reference them.
func (mc *Machine) bind(name string, addr uint64) {
	mc.funcAddr[name] = addr
	mc.addrFunc[addr] = name
}

// resolveSym resolves a relocation symbol: defined/stubbed functions to
// their code address, globals to their data address, externs to their
// extern-table index.
func (mc *Machine) resolveSym(rl target.Reloc) (uint64, error) {
	if rl.Kind == target.RelocExt {
		return uint64(mc.externIndex(rl.Sym)), nil
	}
	if rl.Kind == target.RelocCall && mc.callsViaStubs {
		if f := mc.module.Function(rl.Sym); f != nil && !f.IsDeclaration() {
			return mc.stubFor(rl.Sym)
		}
	}
	if a, ok := mc.funcAddr[rl.Sym]; ok {
		return a, nil
	}
	if a, ok := mc.globals[rl.Sym]; ok {
		return a, nil
	}
	// Function not yet loaded: create a lazy JIT stub for it.
	if mc.module.Function(rl.Sym) != nil {
		return mc.makeStub(rl.Sym)
	}
	return 0, fmt.Errorf("unresolved symbol %%%s", rl.Sym)
}

// makeStub emits a lazy translation stub: when executed, it traps to the
// execution manager (via the reserved JIT extern), which translates the
// function and transfers control to the fresh code. Function indices ride
// in the first scratch register so the original call's arguments stay
// undisturbed.
func (mc *Machine) makeStub(name string) (uint64, error) {
	id := len(mc.stubNames)
	mc.stubNames = append(mc.stubNames, name)
	var code []byte
	instrs := synthStub(mc.desc, int64(id))
	for i := range instrs {
		start := uint32(len(code))
		var rl []target.Reloc
		code, rl = mc.desc.Encode(&instrs[i], code)
		for _, r := range rl {
			mc.desc.Patch(code, start+r.Offset, r.Kind, uint64(mc.externIndex(JITExtern)))
		}
	}
	addr := (mc.codeEnd + 15) &^ 15
	if addr+uint64(len(code)) > mc.codeLimit {
		return 0, fmt.Errorf("machine: code segment exhausted")
	}
	if err := mc.mem.WriteBytes(addr, code); err != nil {
		return 0, err
	}
	mc.codeEnd = addr + uint64(len(code))
	mc.stubAddr = append(mc.stubAddr, addr)
	// The stub is the function's address until real code is installed;
	// the JIT rebinds but existing callers keep jumping through the stub,
	// so the stub learns the real address on first use (the machine's
	// JIT extern handler re-reads funcAddr each time).
	mc.funcAddr[name] = addr
	mc.addrFunc[addr] = name
	return addr, nil
}

// synthStub builds the stub's MIR.
func synthStub(d *target.Desc, id int64) []target.MInstr {
	out := []target.MInstr{}
	out = append(out, synthImmIntoMachine(d.Scratch[0], id, d)...)
	out = append(out, target.MInstr{Op: target.MCallExt, Sym: JITExtern})
	return out
}

// synthImmIntoMachine mirrors codegen's immediate synthesis (stub ids are
// small, one instruction on either target).
func synthImmIntoMachine(reg target.Reg, v int64, d *target.Desc) []target.MInstr {
	if d.WordSize == 4 && (v < -32768 || v > 32767) {
		panic("machine: stub id out of range")
	}
	if d.WordSize == 4 {
		return []target.MInstr{{Op: target.MMovRI, Rd: reg, Imm: v & 0xffff}}
	}
	return []target.MInstr{{Op: target.MMovRI, Rd: reg, Imm: v}}
}

// LoadObject installs every function of a native object (offline mode).
func (mc *Machine) LoadObject(obj *codegen.NativeObject) error {
	if obj.TargetName != mc.desc.Name {
		return fmt.Errorf("machine: object targets %s, machine is %s",
			obj.TargetName, mc.desc.Name)
	}
	// Two passes so direct calls resolve without stubs: first bind
	// addresses by laying out, then install with relocation.
	for _, nf := range obj.Funcs {
		if _, err := mc.InstallCode(nf); err != nil {
			return err
		}
	}
	// Re-install to fix forward references that became stubs: simpler and
	// rare — instead, pre-binding avoids it; see installAll.
	return mc.patchDataFuncAddrs()
}

// patchDataFuncAddrs resolves function-address fixups in the data image
// (function-pointer tables in globals).
func (mc *Machine) patchDataFuncAddrs() error {
	if mc.dataImage == nil {
		return nil
	}
	err := mc.dataImage.PatchFuncAddrs(mc.module, func(name string) (uint64, bool) {
		if a, ok := mc.funcAddr[name]; ok {
			return a, true
		}
		// Declarations and not-yet-loaded functions get stubs.
		if f := mc.module.Function(name); f != nil {
			if f.IsDeclaration() {
				a, e := mc.makeExternThunk(name)
				if e != nil {
					return 0, false
				}
				return a, true
			}
			a, e := mc.makeStub(name)
			if e != nil {
				return 0, false
			}
			return a, true
		}
		return 0, false
	})
	if err != nil {
		return err
	}
	return mc.mem.WriteBytes(mc.dataImage.Base, mc.dataImage.Bytes)
}

// makeExternThunk emits real code for taking the address of an external
// (native) function: a CallExt followed by a return, so indirect calls to
// it behave like calls to a native library function.
func (mc *Machine) makeExternThunk(name string) (uint64, error) {
	if a, ok := mc.funcAddr[name]; ok {
		return a, nil
	}
	f := mc.module.Function(name)
	nargs := 0
	if f != nil {
		nargs = len(f.Signature().Params())
	}
	instrs := []target.MInstr{
		{Op: target.MCallExt, Sym: name, NArgs: uint8(nargs)},
		{Op: target.MRet},
	}
	var code []byte
	for i := range instrs {
		start := uint32(len(code))
		var rl []target.Reloc
		code, rl = mc.desc.Encode(&instrs[i], code)
		for _, r := range rl {
			mc.desc.Patch(code, start+r.Offset, r.Kind, uint64(mc.externIndex(name)))
		}
	}
	addr := (mc.codeEnd + 15) &^ 15
	if addr+uint64(len(code)) > mc.codeLimit {
		return 0, fmt.Errorf("machine: code segment exhausted")
	}
	if err := mc.mem.WriteBytes(addr, code); err != nil {
		return 0, err
	}
	mc.codeEnd = addr + uint64(len(code))
	mc.bind(name, addr)
	return addr, nil
}

// PrepareLazy resolves data-segment function pointers (to lazy stubs for
// code not yet installed) so a program can start executing in JIT mode
// before anything has been translated.
func (mc *Machine) PrepareLazy() error { return mc.patchDataFuncAddrs() }
