package machine

import (
	"sort"

	"llva/internal/prof"
	"llva/internal/target"
)

// Guest-level observability hooks: the machine half of internal/prof.
//
// Sampling is deterministic — triggered every profiler-rate retired
// virtual instructions, checked at basic-block boundaries where the
// instruction counter is already being flushed — so enabling the
// profiler never changes simulated instruction or cycle counts, and
// disabling it leaves exactly one nil compare per block in the hot
// loop. The wall clock is never consulted.
//
// The virtual backtrace comes from a shadow call stack of return
// addresses, maintained only while call tracking is on: pushed by
// call, popped by ret, truncated by unwind to the invoking frame's
// recorded depth. Samples and crash reports resolve the addresses to
// functions lazily, so tracking a call costs one slice append.

// SetProfiler attaches (or, with nil, detaches) a sampling profiler.
// Attaching enables call tracking so samples carry virtual stacks.
func (mc *Machine) SetProfiler(p *prof.Profiler) {
	mc.prof = p
	if p != nil {
		mc.trackCalls = true
	}
}

// EnableCallTracking turns on the shadow call stack without a profiler
// — enough for crash-report backtraces.
func (mc *Machine) EnableCallTracking() { mc.trackCalls = true }

// EnableFlightRecorder arms the trap-time flight recorder: when a run
// ends in an unhandled trap, a CrashReport with registers, backtrace,
// a disassembly window, and the last events tail of events from the
// attached telemetry ring is captured (LastCrash). Zero steady-state
// cost: the snapshot is built only on the trap path.
func (mc *Machine) EnableFlightRecorder(events int) {
	mc.recordCrash = true
	mc.crashEvents = events
	mc.trackCalls = true
}

// LastCrash returns the flight recorder's snapshot of the most recent
// run that ended in an unhandled trap (nil when none, or the recorder
// is off).
func (mc *Machine) LastCrash() *prof.CrashReport { return mc.lastCrash }

// funcAt resolves the function whose installed code contains pc.
// funcCode is naturally sorted by lo (code addresses only grow), so a
// binary search finds the candidate range.
func (mc *Machine) funcAt(pc uint64) (name string, lo uint64, ok bool) {
	i := sort.Search(len(mc.funcCode), func(i int) bool {
		return mc.funcCode[i].lo > pc
	})
	if i > 0 {
		if r := mc.funcCode[i-1]; pc >= r.lo && pc < r.hi {
			return r.name, r.lo, true
		}
	}
	// Stubs and extern thunks are not in funcCode; they are bound in
	// the reverse map at their entry address.
	if n, found := mc.addrFunc[pc]; found {
		return n, pc, true
	}
	return "", 0, false
}

// virtualStack renders the shadow call stack as function names,
// root-first, with leafPC's function appended as the leaf frame.
// Unattributable frames become "?" so the stack shape survives.
func (mc *Machine) virtualStack(leafPC uint64) ([]string, uint64) {
	stack := make([]string, 0, len(mc.callStack)+1)
	for _, ret := range mc.callStack {
		if n, _, found := mc.funcAt(ret); found {
			stack = append(stack, n)
		} else {
			stack = append(stack, "?")
		}
	}
	leaf, lo, found := mc.funcAt(leafPC)
	if !found {
		leaf, lo = "?", leafPC
	}
	stack = append(stack, leaf)
	return stack, leafPC - lo
}

// takeSample records one virtual-PC sample at a block boundary. The
// next trigger is re-armed relative to the current instruction count,
// so a long block never causes a burst of catch-up samples.
func (mc *Machine) takeSample() {
	mc.profNext = mc.Stats.Instrs + mc.prof.Rate()
	if mc.pc == mc.haltAddr {
		return
	}
	stack, off := mc.virtualStack(mc.pc)
	if len(stack) == 1 && stack[0] == "?" {
		return
	}
	mc.prof.AddSample(stack, off)
}

// buildCrashReport snapshots the machine for the flight recorder after
// an unhandled trap.
func (mc *Machine) buildCrashReport(te *TrapError) *prof.CrashReport {
	c := &prof.CrashReport{
		Target:   mc.desc.Name,
		TrapNum:  te.Num,
		PC:       te.PC,
		Detail:   te.Detail,
		Mnemonic: te.Mnemonic,
		Instrs:   mc.Stats.Instrs,
		Cycles:   mc.Stats.Cycles,
	}
	if n, lo, found := mc.funcAt(te.PC); found {
		c.Func, c.FuncBase = n, lo
	}

	// Registers: non-zero only, with the ABI roles named.
	for r := 0; r < unifiedRegs; r++ {
		v := mc.regs[r]
		if v == 0 {
			continue
		}
		name := target.Reg(r).String()
		switch target.Reg(r) {
		case mc.desc.SP:
			name += "(sp)"
		case mc.desc.FP:
			name += "(fp)"
		}
		c.Regs = append(c.Regs, prof.RegVal{Name: name, Val: v})
	}

	// Virtual backtrace: caller frames carry their return addresses,
	// the leaf frame the faulting PC.
	if mc.trackCalls {
		for _, ret := range mc.callStack {
			f := prof.Frame{Func: "?", PC: ret}
			if n, _, found := mc.funcAt(ret); found {
				f.Func = n
			}
			c.Backtrace = append(c.Backtrace, f)
		}
		leaf := prof.Frame{Func: c.Func, PC: te.PC}
		if leaf.Func == "" {
			leaf.Func = "?"
		}
		c.Backtrace = append(c.Backtrace, leaf)
	}

	c.Disasm = mc.disasmWindow(te.PC, 8, 4)

	if mc.tele != nil && mc.crashEvents > 0 {
		evs := mc.tele.Events().Snapshot()
		if len(evs) > mc.crashEvents {
			evs = evs[len(evs)-mc.crashEvents:]
		}
		c.Events = evs
	}
	return c
}

// disasmWindow decodes up to before instructions preceding pc and
// after following it (plus the faulting instruction itself), starting
// from the containing function's entry so variable-length decoding
// stays on instruction boundaries. Without a containing function it
// decodes forward from pc only.
func (mc *Machine) disasmWindow(pc uint64, before, after int) []prof.DisasmLine {
	if mc.codeEnd <= mc.codeBase {
		return nil
	}
	start := pc
	if _, lo, found := mc.funcAt(pc); found && lo >= mc.codeBase {
		start = lo
	}
	if start < mc.codeBase || start >= mc.codeEnd {
		return nil
	}
	view := mc.code[:mc.codeEnd-mc.codeBase]
	var lines []prof.DisasmLine
	faultIdx := -1
	at := start
	for at < mc.codeEnd {
		in, n, err := mc.desc.DecodeFrom(view, int(at-mc.codeBase))
		if err != nil {
			break
		}
		lines = append(lines, prof.DisasmLine{PC: at, Text: in.String(), Fault: at == pc})
		if at == pc {
			faultIdx = len(lines) - 1
		}
		at += uint64(n)
		if faultIdx >= 0 && len(lines) >= faultIdx+1+after {
			break
		}
		// Safety: an unattributed window shouldn't crawl the whole
		// code segment looking for a fault PC it will never hit.
		if faultIdx < 0 && len(lines) > 4096 {
			break
		}
	}
	if faultIdx < 0 {
		// pc was not on a decode boundary of this window (corrupt code
		// or unknown function): fall back to a forward-only window.
		if start == pc {
			return lines
		}
		return mc.disasmWindowFrom(pc, after)
	}
	lo := faultIdx - before
	if lo < 0 {
		lo = 0
	}
	return lines[lo:]
}

// disasmWindowFrom decodes forward from pc only (no function context).
func (mc *Machine) disasmWindowFrom(pc uint64, count int) []prof.DisasmLine {
	if pc < mc.codeBase || pc >= mc.codeEnd {
		return nil
	}
	view := mc.code[:mc.codeEnd-mc.codeBase]
	var lines []prof.DisasmLine
	at := pc
	for at < mc.codeEnd && len(lines) <= count {
		in, n, err := mc.desc.DecodeFrom(view, int(at-mc.codeBase))
		if err != nil {
			break
		}
		lines = append(lines, prof.DisasmLine{PC: at, Text: in.String(), Fault: at == pc})
		at += uint64(n)
	}
	return lines
}
