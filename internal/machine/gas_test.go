package machine

import (
	"errors"
	"strings"
	"testing"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/mem"
	"llva/internal/minic"
	"llva/internal/rt"
	"llva/internal/target"
)

// gasProg loops long enough to cross many block boundaries, so a
// mid-run budget always has a boundary to fire at.
const gasProg = `
long work(long n) {
	long acc = 0;
	long i;
	for (i = 0; i < n; i++) acc += i * 3 + (acc >> 3);
	return acc;
}
int main() {
	print_int(work(5000)); print_nl();
	return 0;
}`

func newGasMachine(t *testing.T, d *target.Desc, m *core.Module) (*Machine, *strings.Builder) {
	t.Helper()
	tr, err := codegen.New(d, m)
	if err != nil {
		t.Fatalf("codegen.New: %v", err)
	}
	obj, err := tr.TranslateModule()
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	var out strings.Builder
	mc, err := New(d, m, rt.NewEnv(mem.New(0, true), &out))
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	if err := mc.LoadObject(obj); err != nil {
		t.Fatalf("load: %v", err)
	}
	return mc, &out
}

// TestGasMetering covers the budget semantics on both targets: a budget
// of the run's exact cycle count completes (the halt boundary wins), a
// partial budget stops with a *GasError whose Used/PC are deterministic
// across fresh runs, and metering never perturbs the virtual clock.
func TestGasMetering(t *testing.T) {
	m, err := minic.Compile("gas.c", gasProg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		t.Run(d.Name, func(t *testing.T) {
			// Reference: unmetered run fixes the clock and output.
			ref, refOut := newGasMachine(t, d, m)
			if _, err := ref.Run("main"); err != nil {
				if _, isExit := err.(*rt.ExitError); !isExit {
					t.Fatalf("unmetered run: %v", err)
				}
			}
			total := ref.Stats.Cycles
			if total == 0 {
				t.Fatal("reference run retired zero cycles")
			}

			// Exact budget: the run halts on precisely its allowance.
			mc, out := newGasMachine(t, d, m)
			mc.SetGas(total)
			if _, err := mc.Run("main"); err != nil {
				if _, isExit := err.(*rt.ExitError); !isExit {
					t.Fatalf("budget==total should complete, got %v", err)
				}
			}
			if mc.Stats.Cycles != total {
				t.Fatalf("metered clock diverged: %d != %d", mc.Stats.Cycles, total)
			}
			if out.String() != refOut.String() {
				t.Fatalf("metered output diverged: %q != %q", out.String(), refOut.String())
			}

			// Huge budget: always-armed meter, still bit-identical.
			mc, _ = newGasMachine(t, d, m)
			mc.SetGas(1 << 62)
			if _, err := mc.Run("main"); err != nil {
				if _, isExit := err.(*rt.ExitError); !isExit {
					t.Fatalf("huge budget run: %v", err)
				}
			}
			if mc.Stats.Cycles != total {
				t.Fatalf("huge-budget clock diverged: %d != %d", mc.Stats.Cycles, total)
			}

			// Partial budgets exhaust, and do so deterministically:
			// same budget, fresh machine ⇒ same Used, same PC.
			for _, budget := range []uint64{1, total / 4, total / 2} {
				var first *GasError
				for run := 0; run < 2; run++ {
					mc, _ := newGasMachine(t, d, m)
					mc.SetGas(budget)
					_, err := mc.Run("main")
					var ge *GasError
					if !errors.As(err, &ge) {
						t.Fatalf("budget %d run %d: want *GasError, got %v", budget, run, err)
					}
					if !errors.Is(err, ErrOutOfGas) {
						t.Fatalf("budget %d: errors.Is(ErrOutOfGas) false", budget)
					}
					if ge.Used < budget {
						t.Fatalf("budget %d: stopped early at %d cycles", budget, ge.Used)
					}
					if ge.Used >= total {
						t.Fatalf("budget %d: ran to completion (%d >= %d)", budget, ge.Used, total)
					}
					if ge.Budget != budget {
						t.Fatalf("budget %d: error reports budget %d", budget, ge.Budget)
					}
					if got := mc.GasUsed(); got != ge.Used {
						t.Fatalf("budget %d: GasUsed()=%d, error says %d", budget, got, ge.Used)
					}
					if run == 0 {
						first = ge
					} else if ge.Used != first.Used || ge.PC != first.PC {
						t.Fatalf("budget %d nondeterministic: run0={used %d pc %#x} run1={used %d pc %#x}",
							budget, first.Used, first.PC, ge.Used, ge.PC)
					}
				}
			}

			// SetGas(0) disarms: a machine that exhausted once can be
			// reused unmetered.
			mc, _ = newGasMachine(t, d, m)
			mc.SetGas(1)
			if _, err := mc.Run("main"); !errors.Is(err, ErrOutOfGas) {
				t.Fatalf("want out of gas, got %v", err)
			}
			mc.SetGas(0)
			if _, err := mc.Run("main"); err != nil {
				if _, isExit := err.(*rt.ExitError); !isExit {
					t.Fatalf("disarmed rerun: %v", err)
				}
			}
		})
	}
}
