package machine

import (
	"strings"
	"testing"

	"llva/internal/asm"
	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/target"
)

// nativeFor translates src for d and returns its function named fn.
func nativeFor(t *testing.T, src, fn string, d *target.Desc) *codegen.NativeFunc {
	t.Helper()
	m, err := asm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	tr, err := codegen.New(d, m)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tr.TranslateModule()
	if err != nil {
		t.Fatal(err)
	}
	for _, nf := range obj.Funcs {
		if nf.Name == fn {
			return nf
		}
	}
	t.Fatalf("no native function %q", fn)
	return nil
}

// TestBlockChaining: steady-state loop execution must run on chained
// block pointers, not per-PC lookups: far fewer blocks built than
// instructions retired, and most block transitions chained.
func TestBlockChaining(t *testing.T) {
	src := `
long %f(long %n) {
entry:
    br label %loop
loop:
    %i = phi long [ 0, %entry ], [ %i2, %loop ]
    %i2 = add long %i, 1
    %done = setge long %i2, %n
    br bool %done, label %exit, label %loop
exit:
    ret long %i2
}
`
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		mc, _ := loadProgram(t, src, d)
		v, err := mc.Run("f", 10_000)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if v != 10_000 {
			t.Errorf("%s: f(10000) = %d, want 10000", d.Name, v)
		}
		st := mc.Stats
		if st.BlockBuilds == 0 || st.BlockBuilds > 64 {
			t.Errorf("%s: %d block builds for a 3-block function", d.Name, st.BlockBuilds)
		}
		if st.BlockChains < st.Instrs/100 {
			t.Errorf("%s: only %d chained transitions for %d instructions",
				d.Name, st.BlockChains, st.Instrs)
		}
		// The predecode fills must stay the I-cache analog: decoded once,
		// executed thousands of times.
		if st.ICacheFills >= st.Instrs/10 {
			t.Errorf("%s: %d predecode fills for %d instructions",
				d.Name, st.ICacheFills, st.Instrs)
		}
	}
}

// TestSMCInvalidationEvictsBlocks executes a function (building and
// chaining its blocks), patches it — InvalidateFunction then a fresh
// InstallCode under the same name — and re-executes: the new body must
// run, and the old body's predecoded blocks must have been evicted.
func TestSMCInvalidationEvictsBlocks(t *testing.T) {
	const v1 = `
long %f(long %x) {
entry:
    br label %loop
loop:
    %i = phi long [ 0, %entry ], [ %i2, %loop ]
    %i2 = add long %i, 1
    %done = setge long %i2, 8
    br bool %done, label %exit, label %loop
exit:
    %r = add long %x, 1
    ret long %r
}
`
	v2 := strings.Replace(v1, "add long %x, 1", "add long %x, 2", 1)
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		mc, _ := loadProgram(t, v1, d)
		got, err := mc.Run("f", 40)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if got != 41 {
			t.Fatalf("%s: v1 f(40) = %d, want 41", d.Name, got)
		}
		if mc.Stats.BlockChains == 0 {
			t.Fatalf("%s: no chained blocks before invalidation", d.Name)
		}

		evicted := mc.Stats.BlockInvalidations
		if err := mc.InvalidateFunction("f"); err != nil {
			t.Fatalf("%s: invalidate: %v", d.Name, err)
		}
		if mc.Stats.BlockInvalidations <= evicted {
			t.Errorf("%s: InvalidateFunction evicted no blocks", d.Name)
		}
		if _, err := mc.InstallCode(nativeFor(t, v2, "f", d)); err != nil {
			t.Fatalf("%s: reinstall: %v", d.Name, err)
		}
		got, err = mc.Run("f", 40)
		if err != nil {
			t.Fatalf("%s: rerun: %v", d.Name, err)
		}
		if got != 42 {
			t.Errorf("%s: patched f(40) = %d, want 42 (stale block executed?)",
				d.Name, got)
		}
	}
}

// walkTo decodes straight-line code from entry until pc, returning the
// instruction count and cycle sum through the instruction AT pc
// (inclusive). It is the trap-accounting oracle for branch-free code.
func walkTo(t *testing.T, mc *Machine, entry, pc uint64) (instrs uint64, cycles uint64, at target.MInstr) {
	t.Helper()
	a := entry
	for {
		raw, err := mc.mem.Bytes(a, 16)
		if err != nil {
			t.Fatalf("walk: %v", err)
		}
		in, n, err := mc.desc.Decode(raw)
		if err != nil {
			t.Fatalf("walk decode at 0x%x: %v", a, err)
		}
		instrs++
		cycles += mc.desc.Cycles(&in)
		if a == pc {
			return instrs, cycles, in
		}
		if a > pc {
			t.Fatalf("walk overshot trap pc 0x%x (at 0x%x)", pc, a)
		}
		a += uint64(n)
	}
}

// TestPreciseMidBlockTraps: a fault in the middle of a predecoded block
// must report the exact faulting PC, and the batched Instrs/Cycles
// accounting must equal the per-instruction sum up to and including the
// faulting instruction.
func TestPreciseMidBlockTraps(t *testing.T) {
	cases := []struct {
		name string
		src  string
		trap uint64
		arg2 uint64
	}{
		{
			name: "memory-fault",
			src: `
long %f(long* %p, long %x) {
entry:
    %a = add long %x, 1
    %b = add long %a, 2
    %v = load long* %p
    %c = add long %b, %v
    ret long %c
}
`,
			trap: TrapMemoryFault,
			arg2: 7,
		},
		{
			name: "div-by-zero",
			src: `
long %f(long %a, long %b) {
entry:
    %s = add long %a, 3
    %t = mul long %s, 2
    %q = div long %t, %b
    %u = add long %q, 1
    ret long %u
}
`,
			trap: TrapDivByZero,
			arg2: 0,
		},
	}
	for _, tc := range cases {
		for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
			mc, _ := loadProgram(t, tc.src, d)
			_, err := mc.Run("f", 0, tc.arg2)
			te, ok := err.(*TrapError)
			if !ok || te.Num != tc.trap {
				t.Fatalf("%s/%s: err = %v, want trap %d", tc.name, d.Name, err, tc.trap)
			}
			entry, _ := mc.FuncAddr("f")
			if te.PC == entry {
				t.Errorf("%s/%s: trap PC is the block entry, not the faulting instruction",
					tc.name, d.Name)
			}
			// The function is branch-free up to the fault, so a decode
			// walk from its entry is an exact accounting oracle.
			wantInstrs, wantCycles, in := walkTo(t, mc, entry, te.PC)
			switch {
			case tc.trap == TrapMemoryFault && !(in.Op == target.MLoad || (in.Op == target.MALU && in.HasMem)):
				t.Errorf("%s/%s: instruction at trap PC is %s, not a load",
					tc.name, d.Name, in.Op)
			case tc.trap == TrapDivByZero && !(in.Op == target.MALU && in.Alu == target.ADiv):
				t.Errorf("%s/%s: instruction at trap PC is %s, not a div",
					tc.name, d.Name, in.Op)
			}
			if mc.Stats.Instrs != wantInstrs {
				t.Errorf("%s/%s: Stats.Instrs = %d, want %d (through the faulting instruction)",
					tc.name, d.Name, mc.Stats.Instrs, wantInstrs)
			}
			if mc.Stats.Cycles != wantCycles {
				t.Errorf("%s/%s: Stats.Cycles = %d, want %d",
					tc.name, d.Name, mc.Stats.Cycles, wantCycles)
			}
			if mc.Stats.Traps != 1 {
				t.Errorf("%s/%s: Stats.Traps = %d, want 1", tc.name, d.Name, mc.Stats.Traps)
			}
		}
	}
}

// TestDecodeBoundaryLazyError: a block cut short by the end of the code
// segment reports the fetch fault only when execution actually reaches
// the bad PC, like the old per-instruction fetch did.
func TestDecodeBoundaryLazyError(t *testing.T) {
	src := `
long %f(long %x) {
entry:
    %r = add long %x, 1
    ret long %r
}
`
	mc, _ := loadProgram(t, src, target.VX86)
	if _, err := mc.Run("f", 1); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	// Jumping straight past the code end must fault with the precise PC.
	_, err := mc.blockFor(mc.codeEnd + 32)
	te, ok := err.(*TrapError)
	if !ok || te.Num != TrapMemoryFault || te.PC != mc.codeEnd+32 {
		t.Errorf("fetch outside code segment: err = %v", err)
	}
}
