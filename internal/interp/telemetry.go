package interp

import "llva/internal/telemetry"

// Export publishes the profile's aggregate shape as interp.profile.*
// gauges — how much dynamic control-flow information the idle-time
// optimizer has to work with.
func (p *Profile) Export(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	var execs uint64
	for _, n := range p.Block {
		execs += n
	}
	reg.Gauge("interp.profile.blocks").Set(int64(len(p.Block)))
	reg.Gauge("interp.profile.block_execs").Set(int64(execs))
	reg.Gauge("interp.profile.edges").Set(int64(len(p.Edge)))
	reg.Gauge("interp.profile.calls").Set(int64(len(p.Call)))
}
