package interp

import (
	"fmt"

	"llva/internal/core"
)

// Intrinsic functions are implemented by the translator/execution engine
// itself rather than by external software (paper, Section 3.5). They carry
// the reserved "llva." name prefix. Some intrinsics are privileged: calling
// them with the privileged bit clear delivers a privilege trap.
//
// The intrinsic set:
//
//	llva.priv.get() -> bool                     read the privileged bit
//	llva.priv.set(bool)                         write it   [privileged]
//	llva.trap.register(uint, handler)           install trap handler [privileged]
//	llva.trap.raise(uint)                       raise a user trap
//	llva.smc.replace(target, source)            self-modifying code (Section 3.4)
//	llva.stack.depth() -> ulong                 count active frames
//	llva.storage.register(sbyte*)               register the OS storage API (Section 4.1)
//	llva.storage.get() -> sbyte*                query the registered API
//
// IntrinsicDecls returns their LLVA declarations; the trap-handler and smc
// operands are passed as sbyte* so the declarations stay monomorphic.
func IntrinsicDecls() string {
	return `declare bool %llva.priv.get()
declare void %llva.priv.set(bool %p)
declare void %llva.trap.register(uint %num, sbyte* %handler)
declare void %llva.trap.raise(uint %num)
declare void %llva.smc.replace(sbyte* %target, sbyte* %source)
declare ulong %llva.stack.depth()
declare void %llva.storage.register(sbyte* %api)
declare sbyte* %llva.storage.get()
`
}

// privilegedIntrinsics require the privileged bit.
var privilegedIntrinsics = map[string]bool{
	"llva.priv.set":         true,
	"llva.trap.register":    true,
	"llva.storage.register": true,
}

func (ip *Interp) intrinsic(f *core.Function, args []uint64) (uint64, *trap) {
	name := f.Name()
	if privilegedIntrinsics[name] && !ip.privileged {
		return 0, ip.deliver(TrapPrivilege,
			fmt.Errorf("privileged intrinsic %%%s called with privileged bit clear", name))
	}
	a := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch name {
	case "llva.priv.get":
		if ip.privileged {
			return 1, nil
		}
		return 0, nil
	case "llva.priv.set":
		ip.privileged = a(0)&1 != 0
		return 0, nil
	case "llva.trap.register":
		ip.trapHandlers[a(0)] = a(1)
		return 0, nil
	case "llva.trap.raise":
		return 0, ip.deliver(a(0), fmt.Errorf("explicit trap %d", a(0)))
	case "llva.smc.replace":
		return ip.smcReplace(a(0), a(1))
	case "llva.stack.depth":
		return ip.Stats.Calls, nil
	case "llva.storage.register":
		ip.storageAPI = a(0)
		return 0, nil
	case "llva.storage.get":
		return ip.storageAPI, nil
	}
	return 0, &trap{kind: trapFatal, err: fmt.Errorf("interp: unknown intrinsic %%%s", name)}
}

// smcReplace implements the paper's constrained self-modifying-code model:
// the target function's code is replaced, but the change only affects
// FUTURE invocations — any currently-active invocation continues running
// the old body, and the translator simply marks the generated code invalid
// (Section 3.4). Here the replacement is expressed as redirecting target to
// the body of source (both given by address).
func (ip *Interp) smcReplace(targetAddr, sourceAddr uint64) (uint64, *trap) {
	target, ok := ip.addrFunc[targetAddr]
	if !ok {
		return 0, ip.deliver(TrapMemoryFault,
			fmt.Errorf("llva.smc.replace: 0x%x is not a function", targetAddr))
	}
	source, ok := ip.addrFunc[sourceAddr]
	if !ok {
		return 0, ip.deliver(TrapMemoryFault,
			fmt.Errorf("llva.smc.replace: 0x%x is not a function", sourceAddr))
	}
	if target.Signature() != source.Signature() {
		return 0, &trap{kind: trapFatal,
			err: fmt.Errorf("llva.smc.replace: signature mismatch %%%s vs %%%s",
				target.Name(), source.Name())}
	}
	ip.smcRedirect[target] = source
	ip.Stats.SMCInvalidations++
	if ip.onSMC != nil {
		ip.onSMC(target)
	}
	return 0, nil
}

// OnSMC registers a callback fired when code is invalidated via
// llva.smc.replace; the execution manager uses it to discard cached native
// translations.
func (ip *Interp) OnSMC(fn func(*core.Function)) { ip.onSMC = fn }
