package interp

import (
	"math"
	"strings"
	"testing"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/rt"
)

func mustParse(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := asm.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func run(t *testing.T, src, fn string, args ...uint64) (uint64, string) {
	t.Helper()
	m := mustParse(t, src)
	var out strings.Builder
	ip, err := New(m, &out)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v, err := ip.Run(fn, args...)
	if err != nil {
		t.Fatalf("Run(%s): %v\noutput: %s", fn, err, out.String())
	}
	return v, out.String()
}

func TestFactorialRecursive(t *testing.T) {
	src := `
int %fact(int %n) {
entry:
    %isbase = setle int %n, 1
    br bool %isbase, label %base, label %rec
base:
    ret int 1
rec:
    %n1 = sub int %n, 1
    %f = call int %fact(int %n1)
    %r = mul int %n, %f
    ret int %r
}
`
	v, _ := run(t, src, "fact", 10)
	if int32(v) != 3628800 {
		t.Errorf("fact(10) = %d, want 3628800", int32(v))
	}
}

func TestLoopWithPhi(t *testing.T) {
	src := `
long %sumto(long %n) {
entry:
    br label %loop
loop:
    %i = phi long [ 0, %entry ], [ %i.next, %loop ]
    %sum = phi long [ 0, %entry ], [ %sum.next, %loop ]
    %sum.next = add long %sum, %i
    %i.next = add long %i, 1
    %done = setgt long %i.next, %n
    br bool %done, label %exit, label %loop
exit:
    ret long %sum.next
}
`
	v, _ := run(t, src, "sumto", 100)
	if int64(v) != 5050 {
		t.Errorf("sumto(100) = %d, want 5050", int64(v))
	}
}

func TestGlobalsAndMemory(t *testing.T) {
	src := `
%counter = global long 41
%msg = constant [6 x ubyte] "hello"

declare void %print_str(sbyte* %s)

long %bump() {
entry:
    %v = load long* %counter
    %v1 = add long %v, 1
    store long %v1, long* %counter
    %p = getelementptr [6 x ubyte]* %msg, long 0, long 0
    %p8 = cast ubyte* %p to sbyte*
    call void %print_str(sbyte* %p8)
    ret long %v1
}
`
	v, out := run(t, src, "bump")
	if int64(v) != 42 {
		t.Errorf("bump() = %d, want 42", int64(v))
	}
	if out != "hello" {
		t.Errorf("output = %q, want %q", out, "hello")
	}
}

func TestHeapAllocation(t *testing.T) {
	src := `
declare sbyte* %malloc(ulong %n)
declare void %free(sbyte* %p)

long %sumarray(long %n) {
entry:
    %bytes = mul long %n, 8
    %ub = cast long %bytes to ulong
    %raw = call sbyte* %malloc(ulong %ub)
    %arr = cast sbyte* %raw to long*
    br label %fill
fill:
    %i = phi long [ 0, %entry ], [ %i2, %fill ]
    %slot = getelementptr long* %arr, long %i
    store long %i, long* %slot
    %i2 = add long %i, 1
    %more = setlt long %i2, %n
    br bool %more, label %fill, label %sum
sum:
    %j = phi long [ 0, %fill ], [ %j2, %sum ]
    %acc = phi long [ 0, %fill ], [ %acc2, %sum ]
    %slot2 = getelementptr long* %arr, long %j
    %v = load long* %slot2
    %acc2 = add long %acc, %v
    %j2 = add long %j, 1
    %more2 = setlt long %j2, %n
    br bool %more2, label %sum, label %done
done:
    call void %free(sbyte* %raw)
    ret long %acc2
}
`
	v, _ := run(t, src, "sumarray", 100)
	if int64(v) != 4950 {
		t.Errorf("sumarray(100) = %d, want 4950", int64(v))
	}
}

func TestInvokeUnwind(t *testing.T) {
	src := `
void %thrower(int %x) {
entry:
    %bad = setgt int %x, 10
    br bool %bad, label %throw, label %ok
throw:
    unwind
ok:
    ret void
}

int %catcher(int %x) {
entry:
    invoke void %thrower(int %x) to label %normal unwind label %handler
normal:
    ret int 0
handler:
    ret int 1
}
`
	v, _ := run(t, src, "catcher", 5)
	if v != 0 {
		t.Errorf("catcher(5) = %d, want 0 (normal path)", v)
	}
	v, _ = run(t, src, "catcher", 20)
	if v != 1 {
		t.Errorf("catcher(20) = %d, want 1 (unwind path)", v)
	}
}

func TestUnwindCrossesFrames(t *testing.T) {
	src := `
void %inner() {
entry:
    unwind
}
void %middle() {
entry:
    call void %inner()
    ret void
}
int %outer() {
entry:
    invoke void %middle() to label %n unwind label %h
n:
    ret int 0
h:
    ret int 7
}
`
	v, _ := run(t, src, "outer")
	if v != 7 {
		t.Errorf("outer() = %d, want 7: unwind must cross plain call frames", v)
	}
}

func TestExceptionsDisabledDivide(t *testing.T) {
	// div has ExceptionsEnabled true by default; !noexc suppresses the
	// trap and yields 0 (paper, Section 3.3).
	src := `
int %f(int %x) {
entry:
    %q = div int %x, 0 !noexc
    ret int %q
}
`
	v, _ := run(t, src, "f", 100)
	if v != 0 {
		t.Errorf("suppressed div-by-zero = %d, want 0", v)
	}
}

func TestExceptionsEnabledDivideTraps(t *testing.T) {
	src := `
int %f(int %x) {
entry:
    %q = div int %x, 0
    ret int %q
}
`
	m := mustParse(t, src)
	var out strings.Builder
	ip, err := New(m, &out)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ip.Run("f", 100)
	te, ok := err.(*TrapError)
	if !ok {
		t.Fatalf("err = %v, want TrapError", err)
	}
	if te.Num != TrapDivByZero {
		t.Errorf("trap num = %d, want %d", te.Num, TrapDivByZero)
	}
}

func TestNullLoadTraps(t *testing.T) {
	src := `
int %f() {
entry:
    %p = cast long 0 to int*
    %v = load int* %p
    ret int %v
}
`
	m := mustParse(t, src)
	var out strings.Builder
	ip, err := New(m, &out)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ip.Run("f")
	if te, ok := err.(*TrapError); !ok || te.Num != TrapMemoryFault {
		t.Fatalf("err = %v, want memory-fault TrapError", err)
	}
}

func TestSMCReplaceAffectsNextInvocation(t *testing.T) {
	src := `
declare void %llva.smc.replace(sbyte* %target, sbyte* %source)

int %v1() {
entry:
    ret int 1
}
int %v2() {
entry:
    ret int 2
}
int %driver() {
entry:
    %a = call int %v1()
    %t = cast int ()* %v1 to sbyte*
    %s = cast int ()* %v2 to sbyte*
    call void %llva.smc.replace(sbyte* %t, sbyte* %s)
    %b = call int %v1()
    %c = mul int %a, 10
    %r = add int %c, %b
    ret int %r
}
`
	v, _ := run(t, src, "driver")
	if int32(v) != 12 {
		t.Errorf("driver() = %d, want 12 (1 before replace, 2 after)", int32(v))
	}
}

func TestMbr(t *testing.T) {
	src := `
int %classify(int %x) {
entry:
    mbr int %x, label %other [ int 0, label %zero, int 1, label %one, int 2, label %two ]
zero:
    ret int 100
one:
    ret int 200
two:
    ret int 300
other:
    ret int 999
}
`
	cases := map[uint64]int32{0: 100, 1: 200, 2: 300, 7: 999}
	for in, want := range cases {
		v, _ := run(t, src, "classify", in)
		if int32(v) != want {
			t.Errorf("classify(%d) = %d, want %d", in, int32(v), want)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	src := `
double %hyp2(double %a, double %b) {
entry:
    %aa = mul double %a, %a
    %bb = mul double %b, %b
    %s = add double %aa, %bb
    ret double %s
}
`
	m := mustParse(t, src)
	var out strings.Builder
	ip, err := New(m, &out)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ip.Run("hyp2", f64bits(3), f64bits(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := f64frombits(v); got != 25 {
		t.Errorf("hyp2(3,4) = %v, want 25", got)
	}
}

func TestTrapHandlerInvoked(t *testing.T) {
	src := `
declare void %llva.trap.register(uint %num, sbyte* %handler)
declare void %print_str(sbyte* %s)

%msg = constant [9 x ubyte] "handled!"

void %handler(uint %num, sbyte* %info) {
entry:
    %p = getelementptr [9 x ubyte]* %msg, long 0, long 0
    %p8 = cast ubyte* %p to sbyte*
    call void %print_str(sbyte* %p8)
    ret void
}

int %main() {
entry:
    %h = cast void (uint, sbyte*)* %handler to sbyte*
    call void %llva.trap.register(uint 2, sbyte* %h)
    %q = div int 1, 0
    ret int %q
}
`
	m := mustParse(t, src)
	var out strings.Builder
	ip, err := New(m, &out)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ip.Run("main")
	if _, ok := err.(*TrapError); !ok {
		t.Fatalf("err = %v, want TrapError after handler returns", err)
	}
	if out.String() != "handled!" {
		t.Errorf("handler output = %q, want %q", out.String(), "handled!")
	}
}

func TestExitExternal(t *testing.T) {
	src := `
declare void %exit(long %code)
int %main() {
entry:
    call void %exit(long 42)
    ret int 0
}
`
	m := mustParse(t, src)
	var out strings.Builder
	ip, err := New(m, &out)
	if err != nil {
		t.Fatal(err)
	}
	code, err := ip.RunMain()
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	if code != 42 {
		t.Errorf("exit code = %d, want 42", code)
	}
	_ = rt.Signatures()
}

func f64bits(f float64) uint64 { return math.Float64bits(f) }

func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// tiny wrappers keep the test file free of a math import alias clash
