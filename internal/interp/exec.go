package interp

import (
	"fmt"
	"math"

	"llva/internal/core"
	"llva/internal/mem"
)

// canon truncates a raw 64-bit word to the width of type t and re-extends
// it to the canonical in-register form: sign-extended for signed integer
// types, zero-extended otherwise.
func canon(t *core.Type, v uint64) uint64 {
	switch t.Kind() {
	case core.BoolKind:
		return v & 1
	case core.UByteKind:
		return uint64(uint8(v))
	case core.SByteKind:
		return uint64(int64(int8(v)))
	case core.UShortKind:
		return uint64(uint16(v))
	case core.ShortKind:
		return uint64(int64(int16(v)))
	case core.UIntKind:
		return uint64(uint32(v))
	case core.IntKind:
		return uint64(int64(int32(v)))
	case core.FloatKind:
		// Canonical float form: the float64 bits of the float32 value.
		return math.Float64bits(float64(float32(math.Float64frombits(v))))
	}
	return v
}

// constBits converts a scalar constant to its canonical word.
func (ip *Interp) constBits(c *core.Constant) (uint64, *trap) {
	switch c.CK {
	case core.ConstInt, core.ConstBool:
		return canon(c.Type(), c.I), nil
	case core.ConstFloat:
		return canon(c.Type(), math.Float64bits(c.F)), nil
	case core.ConstNull, core.ConstZero, core.ConstUndef:
		return 0, nil
	case core.ConstGlobal:
		switch ref := c.Ref.(type) {
		case *core.GlobalVariable:
			return ip.data.GlobalAddr[ref.Name()], nil
		case *core.Function:
			return ip.funcAddr[ref.Name()], nil
		}
	}
	return 0, &trap{kind: trapFatal, err: fmt.Errorf("interp: non-scalar constant operand %s", c.Ident())}
}

func (ip *Interp) operand(fr *frame, v core.Value) (uint64, *trap) {
	switch x := v.(type) {
	case *core.Constant:
		return ip.constBits(x)
	case *core.GlobalVariable:
		return ip.data.GlobalAddr[x.Name()], nil
	case *core.Function:
		return ip.funcAddr[x.Name()], nil
	case *core.Argument, *core.Instruction:
		w, ok := fr.vals[v]
		if !ok {
			return 0, &trap{kind: trapFatal,
				err: fmt.Errorf("interp: use of undefined value %s in %%%s", v.Ident(), fr.fn.Name())}
		}
		return w, nil
	}
	return 0, &trap{kind: trapFatal, err: fmt.Errorf("interp: bad operand %T", v)}
}

func (ip *Interp) execInstr(fr *frame, in *core.Instruction) (uint64, *trap) {
	op := in.Op()
	switch {
	case op == core.OpShl || op == core.OpShr:
		x, tr := ip.operand(fr, in.Operand(0))
		if tr != nil {
			return 0, tr
		}
		amt, tr := ip.operand(fr, in.Operand(1))
		if tr != nil {
			return 0, tr
		}
		return ip.shift(op, in.Type(), x, amt), nil
	case op.IsBinary():
		x, tr := ip.operand(fr, in.Operand(0))
		if tr != nil {
			return 0, tr
		}
		y, tr := ip.operand(fr, in.Operand(1))
		if tr != nil {
			return 0, tr
		}
		return ip.binary(in, op, in.Operand(0).Type(), x, y)
	}
	switch op {
	case core.OpLoad:
		addr, tr := ip.operand(fr, in.Operand(0))
		if tr != nil {
			return 0, tr
		}
		return ip.load(in, in.Type(), addr)
	case core.OpStore:
		v, tr := ip.operand(fr, in.Operand(0))
		if tr != nil {
			return 0, tr
		}
		addr, tr := ip.operand(fr, in.Operand(1))
		if tr != nil {
			return 0, tr
		}
		return 0, ip.store(in, in.Operand(0).Type(), addr, v)
	case core.OpGetElementPtr:
		return ip.gep(fr, in)
	case core.OpAlloca:
		count := uint64(1)
		if in.NumOperands() == 1 {
			c, tr := ip.operand(fr, in.Operand(0))
			if tr != nil {
				return 0, tr
			}
			count = c
		}
		size := uint64(ip.lay.Size(in.Allocated)) * count
		addr, err := ip.mem.PushStack(size)
		if err != nil {
			return 0, ip.deliver(TrapMemoryFault, err)
		}
		// Zero the stack allocation for deterministic behaviour across
		// engines.
		b, _ := ip.mem.Bytes(addr, size)
		clear(b)
		return addr, nil
	case core.OpCast:
		x, tr := ip.operand(fr, in.Operand(0))
		if tr != nil {
			return 0, tr
		}
		return castBits(in.Operand(0).Type(), in.Type(), x), nil
	case core.OpCall:
		v, _, tr := ip.execCall(fr, in)
		return v, tr
	}
	return 0, &trap{kind: trapFatal, err: fmt.Errorf("interp: unexpected opcode %s", op)}
}

func (ip *Interp) execTerminator(fr *frame, in *core.Instruction) (uint64, *core.BasicBlock, *trap) {
	switch in.Op() {
	case core.OpRet:
		if in.NumOperands() == 0 {
			return 0, nil, nil
		}
		v, tr := ip.operand(fr, in.Operand(0))
		return v, nil, tr
	case core.OpBr:
		if in.NumBlocks() == 1 {
			return 0, in.Block(0), nil
		}
		c, tr := ip.operand(fr, in.Operand(0))
		if tr != nil {
			return 0, nil, tr
		}
		if c&1 != 0 {
			return 0, in.Block(0), nil
		}
		return 0, in.Block(1), nil
	case core.OpMbr:
		v, tr := ip.operand(fr, in.Operand(0))
		if tr != nil {
			return 0, nil, tr
		}
		sv := int64(v)
		for i, cv := range in.Cases {
			if cv == sv {
				return 0, in.Block(i + 1), nil
			}
		}
		return 0, in.Block(0), nil
	case core.OpInvoke:
		v, unwound, tr := ip.execCall(fr, in)
		if tr != nil {
			return 0, nil, tr
		}
		if unwound {
			return 0, in.Block(1), nil
		}
		if in.HasResult() {
			fr.vals[in] = v
		}
		return 0, in.Block(0), nil
	case core.OpUnwind:
		return 0, nil, &trap{kind: trapUnwind}
	}
	return 0, nil, &trap{kind: trapFatal, err: fmt.Errorf("interp: bad terminator %s", in.Op())}
}

// execCall evaluates a call or invoke. For invoke, a trapUnwind from the
// callee is caught here and reported via the unwound flag.
func (ip *Interp) execCall(fr *frame, in *core.Instruction) (uint64, bool, *trap) {
	cv, tr := ip.operand(fr, in.Callee())
	if tr != nil {
		return 0, false, tr
	}
	callee, ok := ip.addrFunc[cv]
	if !ok {
		return 0, false, ip.deliver(TrapMemoryFault,
			fmt.Errorf("indirect call through non-function address 0x%x", cv))
	}
	args := make([]uint64, 0, in.NumOperands()-1)
	for _, a := range in.CallArgs() {
		w, tr := ip.operand(fr, a)
		if tr != nil {
			return 0, false, tr
		}
		args = append(args, w)
	}
	v, tr := ip.call(callee, args)
	if tr != nil && tr.kind == trapUnwind && in.Op() == core.OpInvoke {
		return 0, true, nil
	}
	return v, false, tr
}

func (ip *Interp) load(in *core.Instruction, t *core.Type, addr uint64) (uint64, *trap) {
	size := int(ip.lay.Size(t))
	v, err := ip.mem.Load(addr, size)
	if err != nil {
		if !in.ExceptionsEnabled {
			ip.ignored()
			return 0, nil
		}
		return 0, ip.deliver(TrapMemoryFault, err)
	}
	if t.IsFloat() {
		if t.Kind() == core.FloatKind {
			return math.Float64bits(float64(math.Float32frombits(uint32(v)))), nil
		}
		return v, nil
	}
	return canon(t, v), nil
}

func (ip *Interp) store(in *core.Instruction, t *core.Type, addr, v uint64) *trap {
	size := int(ip.lay.Size(t))
	w := v
	if t.Kind() == core.FloatKind {
		w = uint64(math.Float32bits(float32(math.Float64frombits(v))))
	}
	if err := ip.mem.Store(addr, size, w); err != nil {
		if !in.ExceptionsEnabled {
			ip.ignored()
			return nil
		}
		return ip.deliver(TrapMemoryFault, err)
	}
	return nil
}

func (ip *Interp) gep(fr *frame, in *core.Instruction) (uint64, *trap) {
	base, tr := ip.operand(fr, in.Operand(0))
	if tr != nil {
		return 0, tr
	}
	cur := in.Operand(0).Type().Elem()
	addr := base
	for i, idxOp := range in.Operands()[1:] {
		idx, tr := ip.operand(fr, idxOp)
		if tr != nil {
			return 0, tr
		}
		sidx := int64(idx)
		if i == 0 {
			addr += uint64(sidx * ip.lay.Size(cur))
			continue
		}
		switch cur.Kind() {
		case core.StructKind:
			fi := int(sidx)
			addr += uint64(ip.lay.FieldOffset(cur, fi))
			cur = cur.Fields()[fi]
		case core.ArrayKind:
			cur = cur.Elem()
			addr += uint64(sidx * ip.lay.Size(cur))
		default:
			return 0, &trap{kind: trapFatal, err: fmt.Errorf("interp: GEP into %s", cur)}
		}
	}
	return addr, nil
}

func (ip *Interp) shift(op core.Opcode, t *core.Type, x, amt uint64) uint64 {
	bits := uint64(8 * ip.lay.Size(t))
	s := amt & 0xff
	if s >= bits {
		if op == core.OpShr && t.IsSigned() && int64(x) < 0 {
			return canon(t, ^uint64(0))
		}
		return 0
	}
	switch op {
	case core.OpShl:
		return canon(t, x<<s)
	default: // OpShr: arithmetic for signed, logical for unsigned
		if t.IsSigned() {
			return canon(t, uint64(int64(x)>>s))
		}
		// operate on the truncated unsigned value
		return canon(t, truncTo(t, x)>>s)
	}
}

func truncTo(t *core.Type, v uint64) uint64 {
	switch t.Kind() {
	case core.UByteKind, core.SByteKind:
		return v & 0xff
	case core.UShortKind, core.ShortKind:
		return v & 0xffff
	case core.UIntKind, core.IntKind:
		return v & 0xffffffff
	case core.BoolKind:
		return v & 1
	}
	return v
}

func (ip *Interp) binary(in *core.Instruction, op core.Opcode, t *core.Type, x, y uint64) (uint64, *trap) {
	if t.IsFloat() {
		return floatBinary(op, t, x, y), nil
	}
	// Pointers and booleans only support comparisons (and bool bitwise).
	if op.IsComparison() {
		var eq, lt bool
		if t.IsSigned() {
			eq, lt = int64(x) == int64(y), int64(x) < int64(y)
		} else {
			a, b := truncTo(t, x), truncTo(t, y)
			if t.Kind() == core.PointerKind {
				a, b = x, y
			}
			eq, lt = a == b, a < b
		}
		return cmpBits(op, eq, lt), nil
	}
	switch op {
	case core.OpAdd:
		return canon(t, x+y), nil
	case core.OpSub:
		return canon(t, x-y), nil
	case core.OpMul:
		return canon(t, x*y), nil
	case core.OpDiv, core.OpRem:
		if truncTo(t, y) == 0 {
			if !in.ExceptionsEnabled {
				ip.ignored()
				return 0, nil
			}
			return 0, ip.deliver(TrapDivByZero, fmt.Errorf("%s by zero", op))
		}
		if t.IsSigned() {
			a, b := int64(x), int64(y)
			if a == math.MinInt64 && b == -1 {
				if !in.ExceptionsEnabled {
					ip.ignored()
					return 0, nil
				}
				return 0, ip.deliver(TrapDivByZero, fmt.Errorf("%s overflow", op))
			}
			if op == core.OpDiv {
				return canon(t, uint64(a/b)), nil
			}
			return canon(t, uint64(a%b)), nil
		}
		a, b := truncTo(t, x), truncTo(t, y)
		if op == core.OpDiv {
			return canon(t, a/b), nil
		}
		return canon(t, a%b), nil
	case core.OpAnd:
		return canon(t, x&y), nil
	case core.OpOr:
		return canon(t, x|y), nil
	case core.OpXor:
		return canon(t, x^y), nil
	}
	return 0, &trap{kind: trapFatal, err: fmt.Errorf("interp: bad binary op %s on %s", op, t)}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// cmpBits maps (eq, lt) flags through the comparison opcode.
func cmpBits(op core.Opcode, eq, lt bool) uint64 {
	var r bool
	switch op {
	case core.OpSetEQ:
		r = eq
	case core.OpSetNE:
		r = !eq
	case core.OpSetLT:
		r = lt
	case core.OpSetGE:
		r = !lt
	case core.OpSetGT:
		r = !lt && !eq
	case core.OpSetLE:
		r = lt || eq
	}
	return uint64(boolToInt(r))
}

func floatBinary(op core.Opcode, t *core.Type, x, y uint64) uint64 {
	a, b := math.Float64frombits(x), math.Float64frombits(y)
	var r float64
	switch op {
	case core.OpAdd:
		r = a + b
	case core.OpSub:
		r = a - b
	case core.OpMul:
		r = a * b
	case core.OpDiv:
		r = a / b
	case core.OpRem:
		r = math.Mod(a, b)
	case core.OpSetEQ:
		return uint64(boolToInt(a == b))
	case core.OpSetNE:
		return uint64(boolToInt(a != b))
	case core.OpSetLT:
		return uint64(boolToInt(a < b))
	case core.OpSetGT:
		return uint64(boolToInt(a > b))
	case core.OpSetLE:
		return uint64(boolToInt(a <= b))
	case core.OpSetGE:
		return uint64(boolToInt(a >= b))
	}
	return canon(t, math.Float64bits(r))
}

// castBits implements the cast instruction on canonical words.
func castBits(from, to *core.Type, v uint64) uint64 {
	switch {
	case from == to:
		return v
	case from.IsFloat():
		f := math.Float64frombits(v)
		switch {
		case to.IsFloat():
			return canon(to, v)
		case to.Kind() == core.BoolKind:
			return uint64(boolToInt(f != 0))
		case to.IsInteger():
			if math.IsNaN(f) {
				return 0
			}
			if to.IsSigned() || f < 0 {
				return canon(to, uint64(int64(clampF(f))))
			}
			return canon(to, uint64(clampFU(f)))
		}
		return 0
	case to.IsFloat():
		// integer/bool/pointer to float
		if from.IsSigned() {
			return canon(to, math.Float64bits(float64(int64(v))))
		}
		return canon(to, math.Float64bits(float64(truncTo(from, v))))
	default:
		// int/bool/pointer to int/bool/pointer: the canonical form
		// already carries the source's extension; re-canonicalize at the
		// destination width.
		if to.Kind() == core.BoolKind {
			return uint64(boolToInt(truncTo(from, v) != 0))
		}
		return canon(to, v)
	}
}

func clampF(f float64) float64 {
	if f > math.MaxInt64 {
		return math.MaxInt64
	}
	if f < math.MinInt64 {
		return math.MinInt64
	}
	return f
}

func clampFU(f float64) uint64 {
	if f >= math.MaxUint64 {
		return math.MaxUint64
	}
	if f < 0 {
		return 0
	}
	return uint64(f)
}

var _ = mem.NullGuard
