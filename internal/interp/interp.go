// Package interp is the LLVA reference interpreter: it executes virtual
// object code directly, defining the V-ISA's semantics. It serves as the
// correctness oracle for the native code generators (a program must behave
// identically on the interpreter and on the simulated processor) and
// implements the paper's exception model (Section 3.3), the constrained
// self-modifying-code model (Section 3.4), and the OS-support intrinsics
// (Section 3.5).
package interp

import (
	"fmt"
	"io"

	"llva/internal/core"
	"llva/internal/image"
	"llva/internal/mem"
	"llva/internal/rt"
)

// FuncAddrBase is the fake address assigned to the first function; it lies
// above any heap or stack address so function pointers are distinguishable
// from data pointers in both 32- and 64-bit configurations.
const FuncAddrBase = 0xF0000000

// Trap numbers delivered to registered trap handlers (paper, Section 3.5).
const (
	TrapMemoryFault = 1
	TrapDivByZero   = 2
	TrapPrivilege   = 3
	TrapUser        = 16 // first user-defined trap number
)

// Interp executes LLVA modules.
type Interp struct {
	m    *core.Module
	mem  *mem.Memory
	env  *rt.Env
	lay  core.Layout
	data *image.Data

	funcAddr map[string]uint64
	addrFunc map[uint64]*core.Function

	steps    uint64
	MaxSteps uint64

	privileged   bool
	trapHandlers map[uint64]uint64
	storageAPI   uint64

	// profile, when non-nil, accumulates block and edge execution counts
	// used by the trace-formation machinery (paper, Section 4.2).
	profile *Profile

	// smcRedirect maps a function to its replacement body, installed by
	// the llva.smc.replace intrinsic. The redirect takes effect on the
	// NEXT invocation of the function; active invocations are unaffected
	// (paper, Section 3.4).
	smcRedirect map[*core.Function]*core.Function
	onSMC       func(*core.Function)

	// Stats accumulates execution statistics.
	Stats struct {
		Instructions     uint64
		Calls            uint64
		SMCInvalidations int
		TrapsDelivered   int
		TrapsIgnored     int
	}
}

// Option configures the interpreter.
type Option func(*Interp)

// WithMemSize sets the address-space size.
func WithMemSize(n uint64) Option {
	return func(ip *Interp) { ip.mem = mem.New(n, ip.m.LittleEndian) }
}

// WithMaxSteps bounds the number of executed instructions (0 = default of
// 2 billion).
func WithMaxSteps(n uint64) Option {
	return func(ip *Interp) { ip.MaxSteps = n }
}

// Profile records dynamic control-flow counts: per-block executions,
// per-edge traversals and per-function invocation counts. The software
// trace cache consumes it to identify hot paths (Section 4.2).
type Profile struct {
	Block map[*core.BasicBlock]uint64
	Edge  map[Edge]uint64
	Call  map[*core.Function]uint64
}

// Edge is one traversed CFG edge.
type Edge struct {
	From, To *core.BasicBlock
}

// NewProfile creates an empty profile.
func NewProfile() *Profile {
	return &Profile{
		Block: make(map[*core.BasicBlock]uint64),
		Edge:  make(map[Edge]uint64),
		Call:  make(map[*core.Function]uint64),
	}
}

// WithProfile attaches a profile to the interpreter.
func WithProfile(p *Profile) Option {
	return func(ip *Interp) { ip.profile = p }
}

// New creates an interpreter for module m writing program output to out.
func New(m *core.Module, out io.Writer, opts ...Option) (*Interp, error) {
	ip := &Interp{
		m:            m,
		mem:          mem.New(0, m.LittleEndian),
		lay:          m.Layout(),
		MaxSteps:     2_000_000_000,
		privileged:   true,
		trapHandlers: make(map[uint64]uint64),
		smcRedirect:  make(map[*core.Function]*core.Function),
		funcAddr:     make(map[string]uint64),
		addrFunc:     make(map[uint64]*core.Function),
	}
	for _, o := range opts {
		o(ip)
	}
	ip.env = rt.NewEnv(ip.mem, out)
	ip.env.Clock = func() uint64 { return ip.steps }

	d, err := image.Build(m, mem.NullGuard)
	if err != nil {
		return nil, err
	}
	ip.data = d
	if err := ip.mem.WriteBytes(d.Base, d.Bytes); err != nil {
		return nil, fmt.Errorf("interp: data segment does not fit: %w", err)
	}
	ip.mem.SetHeapStart(d.Base + uint64(len(d.Bytes)))

	for i, f := range m.Functions {
		addr := uint64(FuncAddrBase) + uint64(i)*16
		ip.funcAddr[f.Name()] = addr
		ip.addrFunc[addr] = f
	}
	if err := d.PatchFuncAddrs(m, func(name string) (uint64, bool) {
		a, ok := ip.funcAddr[name]
		return a, ok
	}); err != nil {
		return nil, err
	}
	if err := ip.mem.WriteBytes(d.Base, d.Bytes); err != nil {
		return nil, err
	}
	return ip, nil
}

// Env returns the runtime environment (for registering extra externals).
func (ip *Interp) Env() *rt.Env { return ip.env }

// Memory returns the interpreter's memory.
func (ip *Interp) Memory() *mem.Memory { return ip.mem }

// GlobalAddr returns the address of a global variable.
func (ip *Interp) GlobalAddr(name string) (uint64, bool) {
	a, ok := ip.data.GlobalAddr[name]
	return a, ok
}

// Steps returns the number of instructions executed so far.
func (ip *Interp) Steps() uint64 { return ip.steps }

// SetPrivileged sets the processor privileged bit.
func (ip *Interp) SetPrivileged(p bool) { ip.privileged = p }

// trap is the internal non-local control signal.
type trap struct {
	kind trapKind
	num  uint64 // trap number for deliverable traps
	err  error
}

type trapKind uint8

const (
	trapNone    trapKind = iota
	trapUnwind           // unwind in progress, looking for an invoke
	trapExit             // program called exit
	trapFatal            // unrecoverable error (bad IR, unknown external, ...)
	trapDeliver          // precise exception to deliver to the program
)

// TrapError is returned by Run when an enabled exception is delivered but
// not handled (or after a registered handler returns).
type TrapError struct {
	Num    uint64
	Detail string
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("interp: unhandled trap %d: %s", e.Num, e.Detail)
}

// Run executes the named function with the given argument words and
// returns its result as a raw 64-bit word.
func (ip *Interp) Run(name string, args ...uint64) (uint64, error) {
	f := ip.m.Function(name)
	if f == nil {
		return 0, fmt.Errorf("interp: no function %%%s", name)
	}
	v, tr := ip.call(f, args)
	ip.Stats.Instructions = ip.steps
	if tr == nil {
		return v, nil
	}
	switch tr.kind {
	case trapExit:
		return v, tr.err
	case trapUnwind:
		return 0, fmt.Errorf("interp: unwind reached the top of the stack")
	case trapDeliver:
		return 0, &TrapError{Num: tr.num, Detail: tr.err.Error()}
	default:
		return 0, tr.err
	}
}

// RunMain executes %main() and returns its integer exit status.
func (ip *Interp) RunMain() (int, error) {
	v, err := ip.Run("main")
	if ee, ok := err.(*rt.ExitError); ok {
		return ee.Code, nil
	}
	return int(int32(v)), err
}

// frame holds per-invocation state.
type frame struct {
	fn      *core.Function
	vals    map[core.Value]uint64
	savedSP uint64
}

func (ip *Interp) call(f *core.Function, args []uint64) (uint64, *trap) {
	ip.Stats.Calls++
	if f.IsIntrinsic() {
		return ip.intrinsic(f, args)
	}
	if f.IsDeclaration() {
		v, err := ip.env.Call(f.Name(), args)
		if err != nil {
			if _, isExit := err.(*rt.ExitError); isExit {
				return v, &trap{kind: trapExit, err: err}
			}
			if flt, isFault := err.(*mem.Fault); isFault {
				return 0, ip.deliver(TrapMemoryFault, flt)
			}
			return 0, &trap{kind: trapFatal, err: err}
		}
		return v, nil
	}
	// Self-modifying code: execute the replacement body if one was
	// installed before this invocation began.
	if repl, ok := ip.smcRedirect[f]; ok {
		f = repl
	}

	fr := &frame{fn: f, vals: make(map[core.Value]uint64, 16), savedSP: ip.mem.SP()}
	for i, p := range f.Params {
		if i < len(args) {
			fr.vals[p] = args[i]
		}
	}
	defer ip.mem.SetSP(fr.savedSP)

	if ip.profile != nil {
		ip.profile.Call[f]++
	}
	bb := f.Entry()
	var prev *core.BasicBlock
	for {
		if ip.profile != nil {
			ip.profile.Block[bb]++
			if prev != nil {
				ip.profile.Edge[Edge{From: prev, To: bb}]++
			}
		}
		v, next, tr := ip.execBlock(fr, bb, prev)
		if tr != nil {
			return v, tr
		}
		if next == nil {
			return v, nil // ret
		}
		prev, bb = bb, next
	}
}

// execBlock runs one basic block: first the phis (against prev), then the
// straight-line body, then the terminator. It returns (retval, nextBlock,
// trap): nextBlock nil means the function returned.
func (ip *Interp) execBlock(fr *frame, bb, prev *core.BasicBlock) (uint64, *core.BasicBlock, *trap) {
	instrs := bb.Instructions()
	// Phi nodes evaluate in parallel against the edge just traversed.
	nPhi := 0
	for _, in := range instrs {
		if in.Op() != core.OpPhi {
			break
		}
		nPhi++
	}
	if nPhi > 0 {
		tmp := make([]uint64, nPhi)
		for i := 0; i < nPhi; i++ {
			v := instrs[i].PhiIncomingFor(prev)
			if v == nil {
				return 0, nil, &trap{kind: trapFatal,
					err: fmt.Errorf("interp: phi in %%%s has no incoming for %%%s", bb.Name(), prev.Name())}
			}
			w, tr := ip.operand(fr, v)
			if tr != nil {
				return 0, nil, tr
			}
			tmp[i] = w
		}
		for i := 0; i < nPhi; i++ {
			fr.vals[instrs[i]] = tmp[i]
		}
		ip.steps += uint64(nPhi)
	}

	for _, in := range instrs[nPhi:] {
		ip.steps++
		if ip.steps > ip.MaxSteps {
			return 0, nil, &trap{kind: trapFatal, err: fmt.Errorf("interp: step limit exceeded (%d)", ip.MaxSteps)}
		}
		if in.IsTerminator() {
			return ip.execTerminator(fr, in)
		}
		v, tr := ip.execInstr(fr, in)
		if tr != nil {
			return 0, nil, tr
		}
		if in.HasResult() {
			fr.vals[in] = v
		}
	}
	return 0, nil, &trap{kind: trapFatal, err: fmt.Errorf("interp: block %%%s has no terminator", bb.Name())}
}

// deliver creates a precise-exception trap, first consulting the
// registered trap handler table.
func (ip *Interp) deliver(num uint64, cause error) *trap {
	ip.Stats.TrapsDelivered++
	if haddr, ok := ip.trapHandlers[num]; ok {
		if hf, ok := ip.addrFunc[haddr]; ok {
			// The handler is an ordinary LLVA function taking the trap
			// number and a void* info pointer (paper, Section 3.5).
			_, tr := ip.call(hf, []uint64{num, 0})
			if tr != nil {
				return tr
			}
			// Handler returned: the exception remains fatal for the
			// faulting computation.
		}
	}
	return &trap{kind: trapDeliver, num: num, err: cause}
}

// ignored records a suppressed exception (ExceptionsEnabled == false).
func (ip *Interp) ignored() { ip.Stats.TrapsIgnored++ }
