package target

import (
	"fmt"
	"strings"
)

// MOp is a machine-IR opcode. The set is small enough to decode with a
// single table lookup yet rich enough to express both back-ends; see
// the per-target descriptors for which forms each target emits.
type MOp uint8

const (
	MNop MOp = iota
	MMovRR
	MMovRI
	MLoad
	MStore
	MLea
	MALU
	MCmp
	MSetCC
	MJmp
	MJcc
	MCall
	MCallInd
	MCallExt
	MRet
	MPush
	MPop
	MCvt
	MInvokePush
	MInvokePop
	MUnwind
	MTrap
	MAdjSP

	mOpCount // sentinel for decode validation
)

var mOpNames = [...]string{
	MNop:        "nop",
	MMovRR:      "mov",
	MMovRI:      "movi",
	MLoad:       "load",
	MStore:      "store",
	MLea:        "lea",
	MALU:        "alu",
	MCmp:        "cmp",
	MSetCC:      "setcc",
	MJmp:        "jmp",
	MJcc:        "jcc",
	MCall:       "call",
	MCallInd:    "calli",
	MCallExt:    "callext",
	MRet:        "ret",
	MPush:       "push",
	MPop:        "pop",
	MCvt:        "cvt",
	MInvokePush: "invokepush",
	MInvokePop:  "invokepop",
	MUnwind:     "unwind",
	MTrap:       "trap",
	MAdjSP:      "adjsp",
}

func (op MOp) String() string {
	if int(op) < len(mOpNames) && mOpNames[op] != "" {
		return mOpNames[op]
	}
	return fmt.Sprintf("mop(%d)", uint8(op))
}

// ALUOp selects the arithmetic/logic operation of an MALU instruction.
type ALUOp uint8

const (
	AAdd ALUOp = iota
	ASub
	AMul
	ADiv
	ARem
	AAnd
	AOr
	AXor
	AShl
	AShr

	aluOpCount
)

var aluNames = [...]string{
	AAdd: "add", ASub: "sub", AMul: "mul", ADiv: "div", ARem: "rem",
	AAnd: "and", AOr: "or", AXor: "xor", AShl: "shl", AShr: "shr",
}

func (a ALUOp) String() string {
	if int(a) < len(aluNames) {
		return aluNames[a]
	}
	return fmt.Sprintf("alu(%d)", uint8(a))
}

// Cond is a comparison condition for MJcc/MSetCC.
type Cond uint8

const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondGE
	CondGT
	CondLE

	condCount
)

var condNames = [...]string{
	CondEQ: "eq", CondNE: "ne", CondLT: "lt", CondGE: "ge", CondGT: "gt", CondLE: "le",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// CvtOp selects the conversion performed by MCvt.
type CvtOp uint8

const (
	CvtIntExt CvtOp = iota // integer widen/narrow (Signed selects sext)
	CvtIntToF              // integer -> float of Size bytes
	CvtFToInt              // float -> integer of Size bytes
	CvtFToF                // float precision change to Size bytes
	CvtBits                // raw bit reinterpretation

	cvtOpCount
)

var cvtNames = [...]string{
	CvtIntExt: "intext", CvtIntToF: "itof", CvtFToInt: "ftoi", CvtFToF: "ftof", CvtBits: "bits",
}

func (c CvtOp) String() string {
	if int(c) < len(cvtNames) {
		return cvtNames[c]
	}
	return fmt.Sprintf("cvt(%d)", uint8(c))
}

// MInstr is one machine-IR instruction. Operand fields are interpreted
// per opcode; unused register fields hold NoReg. Disp/Base/Index/Scale
// form a memory operand for MLoad/MStore/MLea and (on targets with
// MemOperands) the memory source of an MALU with HasMem set.
type MInstr struct {
	Op  MOp
	Alu ALUOp
	Cnd Cond
	Cvt CvtOp

	Rd    Reg // destination
	Rs1   Reg // first source
	Rs2   Reg // second source
	Base  Reg // memory base
	Index Reg // memory index (NoReg if absent)

	Scale uint8 // index scale for memory operands; shift count (x16) for vsparc MMovRI
	Size  uint8 // access/operation width in bytes (1,2,4,8)

	Disp   int32 // memory displacement
	Imm    int64 // immediate (valid when HasImm, and for MTrap/MAdjSP)
	Target int32 // branch/call target: block index pre-layout, scaled delta or address after
	NArgs  uint8 // argument count for MCallExt

	HasImm bool // Imm is a live operand
	HasMem bool // the MALU source is the memory operand
	Signed bool // signed variant (compares, shifts, div, extensions)
	FP     bool // floating-point variant
	NoTrap bool // suppress trapping behaviour (speculative loads)

	Sym string // symbol for MCall/MCallExt and symbolic MMovRI
}

// String renders the instruction for diagnostics and panics.
func (in *MInstr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", in.Op)
	if in.Op == MALU {
		fmt.Fprintf(&b, ".%s", in.Alu)
	}
	if in.Op == MJcc || in.Op == MSetCC {
		fmt.Fprintf(&b, ".%s", in.Cnd)
	}
	if in.Op == MCvt {
		fmt.Fprintf(&b, ".%s", in.Cvt)
	}
	if in.FP {
		b.WriteString(".f")
	}
	if in.Size != 0 {
		fmt.Fprintf(&b, ".%d", in.Size)
	}
	for _, r := range []Reg{in.Rd, in.Rs1, in.Rs2} {
		if r != NoReg {
			fmt.Fprintf(&b, " %s", r)
		}
	}
	if in.Base != NoReg || in.Index != NoReg {
		fmt.Fprintf(&b, " [%s+%s*%d%+d]", in.Base, in.Index, in.Scale, in.Disp)
	}
	if in.HasImm {
		fmt.Fprintf(&b, " $%d", in.Imm)
	}
	if in.Sym != "" {
		fmt.Fprintf(&b, " @%s", in.Sym)
	}
	switch in.Op {
	case MJmp, MJcc, MCall, MCallExt, MInvokePush:
		fmt.Fprintf(&b, " ->%d", in.Target)
	case MTrap, MAdjSP:
		fmt.Fprintf(&b, " #%d", in.Imm)
	}
	return b.String()
}
