package target

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// RelocKind classifies a load-time fixup in encoded code.
type RelocKind uint8

const (
	// RelocAbs patches an 8-byte absolute immediate (vx86 MMovRI $sym).
	RelocAbs RelocKind = iota
	// RelocCall patches the 4-byte target of a direct MCall with the
	// callee's code address (scaled by CallTargetScale).
	RelocCall
	// RelocExt patches the 4-byte target of an MCallExt with the
	// extern-table index of the symbol.
	RelocExt
	// RelocHi16 patches a 2-byte slot with bits 16..31 of the address
	// (vsparc sethi half of a symbolic constant).
	RelocHi16
	// RelocLo16 patches a 2-byte slot with bits 0..15 of the address
	// (vsparc or half).
	RelocLo16
)

// Reloc is one fixup the loader must apply after placing code. Offset is
// relative to the start of the instruction that produced it; layout adds
// the instruction's position. Fields are exported so native objects
// (codegen.NativeFunc) serialize through encoding/gob for the
// storage-API code cache (Section 4.1).
type Reloc struct {
	Offset uint32
	Kind   RelocKind
	Sym    string
}

// Encoded-flags bits (byte 1 of every instruction).
const (
	fHasImm = 1 << iota
	fHasMem
	fSigned
	fFP
	fNoTrap
)

// encReg packs a register operand into one byte.
func encReg(r Reg) byte {
	switch {
	case r == NoReg:
		return 0xFF
	case r.IsFP():
		return 0x40 | byte(r-FPBase)
	default:
		return byte(r)
	}
}

func decReg(b byte) Reg {
	switch {
	case b == 0xFF:
		return NoReg
	case b&0x40 != 0:
		return FPBase + Reg(b&0x3F)
	default:
		return Reg(b)
	}
}

func encFlags(in *MInstr) byte {
	var f byte
	if in.HasImm {
		f |= fHasImm
	}
	if in.HasMem {
		f |= fHasMem
	}
	if in.Signed {
		f |= fSigned
	}
	if in.FP {
		f |= fFP
	}
	if in.NoTrap {
		f |= fNoTrap
	}
	return f
}

// Encode appends the byte encoding of one instruction to code and
// returns the extended slice plus any relocations (offsets relative to
// the appended instruction's first byte). The encoded length of an
// instruction is a pure function of its operand shape — never of
// displacement or target *values* — so the translator's measure and
// emit passes always agree, and every encoding fits the processor's
// 16-byte fetch window.
func (d *Desc) Encode(in *MInstr, code []byte) ([]byte, []Reloc) {
	start := len(code)
	var relocs []Reloc
	put8 := func(b byte) { code = append(code, b) }
	putReg := func(r Reg) { put8(encReg(r)) }
	put16 := func(v uint16) { code = binary.LittleEndian.AppendUint16(code, v) }
	put32 := func(v uint32) { code = binary.LittleEndian.AppendUint32(code, v) }
	put64 := func(v uint64) { code = binary.LittleEndian.AppendUint64(code, v) }
	rel := func(kind RelocKind) {
		relocs = append(relocs, Reloc{Offset: uint32(len(code) - start), Kind: kind, Sym: in.Sym})
	}

	put8(byte(in.Op))
	put8(encFlags(in))
	switch in.Op {
	case MNop, MRet, MInvokePop, MUnwind:
		// no operands
	case MMovRR:
		putReg(in.Rd)
		putReg(in.Rs1)
	case MMovRI:
		putReg(in.Rd)
		if d.WordSize == 4 {
			put8(in.Scale)
			if in.Sym != "" {
				if in.HasImm {
					rel(RelocLo16)
				} else {
					rel(RelocHi16)
				}
			}
			put16(uint16(in.Imm))
		} else {
			if in.Sym != "" {
				rel(RelocAbs)
			}
			put64(uint64(in.Imm))
		}
	case MLoad:
		putReg(in.Rd)
		putReg(in.Base)
		putReg(in.Index)
		put8(in.Scale)
		put8(in.Size)
		put32(uint32(in.Disp))
	case MStore:
		putReg(in.Rs1)
		putReg(in.Base)
		putReg(in.Index)
		put8(in.Scale)
		put8(in.Size)
		put32(uint32(in.Disp))
	case MLea:
		putReg(in.Rd)
		putReg(in.Base)
		putReg(in.Index)
		put8(in.Scale)
		put32(uint32(in.Disp))
	case MALU:
		put8(byte(in.Alu))
		put8(in.Size)
		putReg(in.Rd)
		putReg(in.Rs1)
		switch {
		case in.HasImm:
			put64(uint64(in.Imm))
		case in.HasMem:
			putReg(in.Base)
			putReg(in.Index)
			put8(in.Scale)
			put32(uint32(in.Disp))
		default:
			putReg(in.Rs2)
		}
	case MCmp:
		putReg(in.Rs1)
		if in.HasImm {
			put64(uint64(in.Imm))
		} else {
			putReg(in.Rs2)
		}
	case MSetCC:
		put8(byte(in.Cnd))
		putReg(in.Rd)
		putReg(in.Rs1)
		putReg(in.Rs2)
	case MJmp:
		put32(uint32(in.Target))
	case MJcc:
		put8(byte(in.Cnd))
		putReg(in.Rs1)
		put32(uint32(in.Target))
	case MCall:
		if in.Sym != "" {
			rel(RelocCall)
		}
		put32(uint32(in.Target))
	case MCallInd:
		putReg(in.Rs1)
	case MCallExt:
		put8(in.NArgs)
		if in.Sym != "" {
			rel(RelocExt)
		}
		put32(uint32(in.Target))
	case MPush:
		putReg(in.Rs1)
	case MPop:
		putReg(in.Rd)
	case MCvt:
		put8(byte(in.Cvt))
		put8(in.Size)
		putReg(in.Rd)
		putReg(in.Rs1)
	case MInvokePush:
		put32(uint32(in.Target))
	case MTrap, MAdjSP:
		put32(uint32(int32(in.Imm)))
	default:
		panic(fmt.Sprintf("target: encode of unknown op %d", in.Op))
	}
	if len(code)-start > 16 {
		panic(fmt.Sprintf("target: %s encodes to %d bytes (> 16-byte fetch window)",
			in.Op, len(code)-start))
	}
	return code, relocs
}

var errTruncated = errors.New("truncated instruction")

type decoder struct {
	b   []byte
	pos int
	err error
}

func (r *decoder) u8() byte {
	if r.err != nil || r.pos >= len(r.b) {
		r.err = errTruncated
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *decoder) reg() Reg { return decReg(r.u8()) }

func (r *decoder) u16() uint16 {
	if r.err != nil || r.pos+2 > len(r.b) {
		r.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.pos:])
	r.pos += 2
	return v
}

func (r *decoder) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.b) {
		r.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}

func (r *decoder) u64() uint64 {
	if r.err != nil || r.pos+8 > len(r.b) {
		r.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}

// Decode reads one instruction from the front of b, returning it and
// its encoded length. Decoding works on unpatched code (relocation
// slots read as zero), which the translator relies on when inspecting
// raw native objects.
func (d *Desc) Decode(b []byte) (MInstr, int, error) {
	return d.DecodeFrom(b, 0)
}

// DecodeFrom reads one instruction at offset pos of b, returning it and
// its encoded length. It is the processor's predecode entry point: the
// machine holds a single view of its whole code segment and decodes in
// place, instead of cutting a fresh fetch window per instruction.
func (d *Desc) DecodeFrom(b []byte, pos int) (MInstr, int, error) {
	if pos < 0 || pos > len(b) {
		return MInstr{}, 0, errTruncated
	}
	r := &decoder{b: b, pos: pos}
	var in MInstr
	op := MOp(r.u8())
	if op >= mOpCount {
		return in, 0, fmt.Errorf("target: bad opcode byte 0x%02x", byte(op))
	}
	in.Op = op
	flags := r.u8()
	in.HasImm = flags&fHasImm != 0
	in.HasMem = flags&fHasMem != 0
	in.Signed = flags&fSigned != 0
	in.FP = flags&fFP != 0
	in.NoTrap = flags&fNoTrap != 0
	// Absent operands default to NoReg so decoded instructions mirror
	// what the selector built.
	in.Rd, in.Rs1, in.Rs2, in.Base, in.Index = NoReg, NoReg, NoReg, NoReg, NoReg

	switch op {
	case MNop, MRet, MInvokePop, MUnwind:
	case MMovRR:
		in.Rd = r.reg()
		in.Rs1 = r.reg()
	case MMovRI:
		in.Rd = r.reg()
		if d.WordSize == 4 {
			in.Scale = r.u8()
			in.Imm = int64(r.u16())
		} else {
			in.Imm = int64(r.u64())
		}
	case MLoad:
		in.Rd = r.reg()
		in.Base = r.reg()
		in.Index = r.reg()
		in.Scale = r.u8()
		in.Size = r.u8()
		in.Disp = int32(r.u32())
	case MStore:
		in.Rs1 = r.reg()
		in.Base = r.reg()
		in.Index = r.reg()
		in.Scale = r.u8()
		in.Size = r.u8()
		in.Disp = int32(r.u32())
	case MLea:
		in.Rd = r.reg()
		in.Base = r.reg()
		in.Index = r.reg()
		in.Scale = r.u8()
		in.Disp = int32(r.u32())
	case MALU:
		alu := ALUOp(r.u8())
		if alu >= aluOpCount {
			return in, 0, fmt.Errorf("target: bad ALU op byte 0x%02x", byte(alu))
		}
		in.Alu = alu
		in.Size = r.u8()
		in.Rd = r.reg()
		in.Rs1 = r.reg()
		switch {
		case in.HasImm:
			in.Imm = int64(r.u64())
		case in.HasMem:
			in.Base = r.reg()
			in.Index = r.reg()
			in.Scale = r.u8()
			in.Disp = int32(r.u32())
		default:
			in.Rs2 = r.reg()
		}
	case MCmp:
		in.Rs1 = r.reg()
		if in.HasImm {
			in.Imm = int64(r.u64())
		} else {
			in.Rs2 = r.reg()
		}
	case MSetCC:
		in.Cnd = Cond(r.u8())
		in.Rd = r.reg()
		in.Rs1 = r.reg()
		in.Rs2 = r.reg()
	case MJmp:
		in.Target = int32(r.u32())
	case MJcc:
		in.Cnd = Cond(r.u8())
		in.Rs1 = r.reg()
		in.Target = int32(r.u32())
	case MCall:
		in.Target = int32(r.u32())
	case MCallInd:
		in.Rs1 = r.reg()
	case MCallExt:
		in.NArgs = r.u8()
		in.Target = int32(r.u32())
	case MPush:
		in.Rs1 = r.reg()
	case MPop:
		in.Rd = r.reg()
	case MCvt:
		cvt := CvtOp(r.u8())
		if cvt >= cvtOpCount {
			return in, 0, fmt.Errorf("target: bad cvt op byte 0x%02x", byte(cvt))
		}
		in.Cvt = cvt
		in.Size = r.u8()
		in.Rd = r.reg()
		in.Rs1 = r.reg()
	case MInvokePush:
		in.Target = int32(r.u32())
	case MTrap, MAdjSP:
		in.Imm = int64(int32(r.u32()))
	}
	if in.Cnd >= condCount {
		return in, 0, fmt.Errorf("target: bad condition byte 0x%02x", byte(in.Cnd))
	}
	if r.err != nil {
		return in, 0, r.err
	}
	return in, r.pos - pos, nil
}

// Patch applies one relocation value to encoded code at offset.
func (d *Desc) Patch(code []byte, offset uint32, kind RelocKind, val uint64) {
	switch kind {
	case RelocAbs:
		binary.LittleEndian.PutUint64(code[offset:], val)
	case RelocCall:
		binary.LittleEndian.PutUint32(code[offset:], uint32(val/uint64(d.CallTargetScale)))
	case RelocExt:
		binary.LittleEndian.PutUint32(code[offset:], uint32(val))
	case RelocHi16:
		binary.LittleEndian.PutUint16(code[offset:], uint16(val>>16))
	case RelocLo16:
		binary.LittleEndian.PutUint16(code[offset:], uint16(val))
	default:
		panic(fmt.Sprintf("target: unknown reloc kind %d", kind))
	}
}
