// Package target describes the simulated I-ISAs the LLVA translator
// compiles to (paper, Figure 1): a machine-level IR over two register
// files, two concrete targets mirroring the paper's back-ends, and a
// byte encoding with load-time relocations.
//
//   - vx86: CISC-flavoured — stack-passed arguments, a flags register,
//     memory operands and 32-bit immediates, no allocatable registers
//     (the spill-everything back-end of Section 5.2).
//   - vsparc: RISC-flavoured — register arguments, compare-into-register,
//     16-bit immediate chunks (sethi/or-style synthesis), disp9 memory
//     displacements, and a large callee-saved allocatable file served by
//     linear scan.
//
// Both simulate 64-bit little-endian processors; WordSize distinguishes
// the *encoding* granularity (8 = x86-style imm64, 4 = SPARC-style
// 16-bit chunk synthesis), not the data width.
package target

import "fmt"

// Reg names one register: integer physical registers occupy [0, 64),
// floating-point physical registers [FPBase, FPBase+64), and virtual
// registers (pre-allocation) start at VRegBase. NoReg marks an absent
// operand.
type Reg uint16

const (
	// FPBase is the first floating-point physical register.
	FPBase Reg = 64
	// VRegBase is the first virtual register number handed out by the
	// instruction selector.
	VRegBase Reg = 256
	// NoReg is the absent-operand sentinel.
	NoReg Reg = 0xFFFF
	// VSZero is vsparc's hardwired-zero register (r0).
	VSZero Reg = 0
)

// IsVirtual reports whether r is a virtual (pre-allocation) register.
func (r Reg) IsVirtual() bool { return r >= VRegBase && r != NoReg }

// IsFP reports whether r is a physical floating-point register.
func (r Reg) IsFP() bool { return r >= FPBase && r < FPBase+64 }

// String renders a register for diagnostics.
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r.IsVirtual():
		return fmt.Sprintf("v%d", uint16(r-VRegBase))
	case r.IsFP():
		return fmt.Sprintf("f%d", uint16(r-FPBase))
	default:
		return fmt.Sprintf("r%d", uint16(r))
	}
}
