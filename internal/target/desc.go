package target

// Desc describes one simulated I-ISA: its register convention, encoding
// properties, and timing model. The translator, register allocator,
// loader, and processor are all parameterised over it.
type Desc struct {
	Name     string
	WordSize int // immediate-encoding granularity: 8 = imm64, 4 = 16-bit chunks

	StackArgs   bool  // arguments passed on the stack (vx86) vs registers
	HasFlags    bool  // condition codes live in a flags register
	MemOperands bool  // ALU ops may take a memory source operand
	MaxImm      int64 // largest immediate foldable into ALU/compare (0 = none)

	RelBranchScale  int // byte scale of MJmp/MJcc/MInvokePush targets
	CallTargetScale int // byte scale of MCall targets

	SP, FP   Reg
	RetReg   Reg
	FPRetReg Reg

	ArgRegs   []Reg
	FPArgRegs []Reg

	Scratch   [3]Reg // assembler/spill temporaries (integer)
	FPScratch [3]Reg // assembler/spill temporaries (floating point)

	// Allocatable/FPAllocatable are the callee-saved linear-scan pools:
	// the prologue saves exactly the members a function uses, so values
	// in them survive calls. CallerSaved/FPCallerSaved are allocatable
	// registers that calls clobber; the allocator prefers them for
	// values whose live range contains no call. The four pools must be
	// disjoint from each other and from SP/FP/RetReg/Scratch.
	Allocatable   []Reg
	FPAllocatable []Reg
	CallerSaved   []Reg
	FPCallerSaved []Reg
}

// VX86 is the CISC-flavoured target: 64-bit immediates, stack-passed
// arguments, flags-based compares, memory operands, and a 16-register
// file split x86-64 style between caller-saved and callee-saved
// allocatable registers. It models the paper's IA-32 back-end once the
// JIT applies real (if simple) register allocation.
//
// Integer file: r0 return + scratch, r1–r2 scratch, r3 caller-saved,
// r4 SP, r5 FP, r6–r13 callee-saved, r14–r15 caller-saved.
// FP file: f0 return + scratch, f1–f2 scratch, f3–f4 caller-saved,
// f5–f12 callee-saved.
var VX86 = &Desc{
	Name:     "vx86",
	WordSize: 8,

	StackArgs:   true,
	HasFlags:    true,
	MemOperands: true,
	MaxImm:      1<<31 - 1,

	RelBranchScale:  1,
	CallTargetScale: 1,

	SP:       Reg(4),
	FP:       Reg(5),
	RetReg:   Reg(0),
	FPRetReg: FPBase,

	Scratch:   [3]Reg{Reg(0), Reg(1), Reg(2)},
	FPScratch: [3]Reg{FPBase, FPBase + 1, FPBase + 2},

	Allocatable: []Reg{6, 7, 8, 9, 10, 11, 12, 13},
	FPAllocatable: []Reg{
		FPBase + 5, FPBase + 6, FPBase + 7, FPBase + 8,
		FPBase + 9, FPBase + 10, FPBase + 11, FPBase + 12,
	},
	CallerSaved:   []Reg{3, 14, 15},
	FPCallerSaved: []Reg{FPBase + 3, FPBase + 4},
}

// VSPARC is the RISC-flavoured target: register-passed arguments,
// compare-into-register (no flags), 16-bit immediate synthesis
// (sethi/or chains), ±255-byte memory displacements, and a large
// allocatable file split between caller scratch and callee-saved
// registers. It models the paper's SPARC V9 back-end.
//
// Integer file: r0 zero, r1 SP, r2 FP, r3 RA (link), r4–r9 args,
// r10 return, r11–r13 scratch, r14–r30 allocatable, r31 assembler temp.
// FP file: f0 return, f1–f6 args, f7–f9 scratch, f10–f24 allocatable.
var VSPARC = &Desc{
	Name:     "vsparc",
	WordSize: 4,

	RelBranchScale:  1,
	CallTargetScale: 1,

	SP:       Reg(1),
	FP:       Reg(2),
	RetReg:   Reg(10),
	FPRetReg: FPBase,

	ArgRegs:   []Reg{4, 5, 6, 7, 8, 9},
	FPArgRegs: []Reg{FPBase + 1, FPBase + 2, FPBase + 3, FPBase + 4, FPBase + 5, FPBase + 6},

	Scratch:   [3]Reg{Reg(11), Reg(12), Reg(13)},
	FPScratch: [3]Reg{FPBase + 7, FPBase + 8, FPBase + 9},

	Allocatable: []Reg{
		14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30,
	},
	FPAllocatable: []Reg{
		FPBase + 10, FPBase + 11, FPBase + 12, FPBase + 13, FPBase + 14,
		FPBase + 15, FPBase + 16, FPBase + 17, FPBase + 18, FPBase + 19,
		FPBase + 20, FPBase + 21, FPBase + 22, FPBase + 23, FPBase + 24,
	},
}

// Cycles returns the virtual cost of one instruction. The model is
// deliberately simple and deterministic (a blocking in-order pipeline):
// memory traffic costs 2 cycles, multiplies 4, divides 12, FP
// arithmetic 4 (FP divide 12), conversions touching the FP unit 2,
// calls 2, everything else 1. The processor loop adds one extra cycle
// for every taken branch — the redirect penalty that makes trace-driven
// layout (Section 4.2) measurable.
func (d *Desc) Cycles(in *MInstr) uint64 {
	switch in.Op {
	case MLoad, MStore, MPush, MPop:
		return 2
	case MALU:
		if in.HasMem {
			// memory-operand ALU pays the load on top of the op
			return 2 + d.Cycles(&MInstr{Op: MALU, Alu: in.Alu, FP: in.FP})
		}
		switch in.Alu {
		case ADiv, ARem:
			return 12
		case AMul:
			return 4
		default:
			if in.FP {
				return 4
			}
			return 1
		}
	case MCvt:
		switch in.Cvt {
		case CvtIntToF, CvtFToInt, CvtFToF:
			return 2
		}
		return 1
	case MCall, MCallInd, MCallExt, MRet:
		return 2
	case MInvokePush, MUnwind:
		return 4
	default:
		return 1
	}
}
