package rt

import (
	"math"
	"strings"
	"testing"

	"llva/internal/mem"
)

func newEnv() (*Env, *strings.Builder) {
	var out strings.Builder
	m := mem.New(1<<20, true)
	m.SetHeapStart(mem.NullGuard + 4096)
	return NewEnv(m, &out), &out
}

func TestPrintFamily(t *testing.T) {
	e, out := newEnv()
	e.Call("print_int", []uint64{uint64(^uint64(41) + 0)}) // -?? use explicit
	out.Reset()
	e.Call("print_int", []uint64{0xFFFFFFFFFFFFFFFF}) // -1
	e.Call("print_char", []uint64{' '})
	e.Call("print_uint", []uint64{42})
	e.Call("print_nl", nil)
	e.Call("print_float", []uint64{math.Float64bits(2.5)})
	if got := out.String(); got != "-1 42\n2.5000" {
		t.Errorf("output = %q", got)
	}
}

func TestStringsInMemory(t *testing.T) {
	e, _ := newEnv()
	p, err := e.Call("malloc", []uint64{16})
	if err != nil {
		t.Fatal(err)
	}
	e.Mem.WriteBytes(p, []byte("abc\x00"))
	n, err := e.Call("strlen", []uint64{p})
	if err != nil || n != 3 {
		t.Errorf("strlen = %d, %v", n, err)
	}
	q, _ := e.Call("malloc", []uint64{16})
	e.Mem.WriteBytes(q, []byte("abd\x00"))
	cmp, _ := e.Call("strcmp", []uint64{p, q})
	if int64(cmp) >= 0 {
		t.Errorf("strcmp(abc, abd) = %d, want negative", int64(cmp))
	}
}

func TestMemcpyMemset(t *testing.T) {
	e, _ := newEnv()
	src, _ := e.Call("malloc", []uint64{32})
	dst, _ := e.Call("malloc", []uint64{32})
	e.Mem.WriteBytes(src, []byte("0123456789"))
	if _, err := e.Call("memcpy", []uint64{dst, src, 10}); err != nil {
		t.Fatal(err)
	}
	b, _ := e.Mem.Bytes(dst, 10)
	if string(b) != "0123456789" {
		t.Errorf("memcpy result %q", b)
	}
	e.Call("memset", []uint64{dst, 'x', 4})
	b, _ = e.Mem.Bytes(dst, 10)
	if string(b) != "xxxx456789" {
		t.Errorf("memset result %q", b)
	}
}

func TestRandDeterministic(t *testing.T) {
	e1, _ := newEnv()
	e2, _ := newEnv()
	e1.Call("srand", []uint64{99})
	e2.Call("srand", []uint64{99})
	for i := 0; i < 100; i++ {
		a, _ := e1.Call("rand", nil)
		b, _ := e2.Call("rand", nil)
		if a != b {
			t.Fatalf("rand diverged at %d: %d vs %d", i, a, b)
		}
	}
	// srand(0) must not wedge the generator
	e1.Call("srand", []uint64{0})
	v1, _ := e1.Call("rand", nil)
	v2, _ := e1.Call("rand", nil)
	if v1 == v2 {
		t.Error("rand stuck after srand(0)")
	}
}

func TestExitAndUnknown(t *testing.T) {
	e, _ := newEnv()
	_, err := e.Call("exit", []uint64{7})
	ee, ok := err.(*ExitError)
	if !ok || ee.Code != 7 {
		t.Errorf("exit: %v", err)
	}
	if _, err := e.Call("no_such_fn", nil); err == nil {
		t.Error("unknown extern did not error")
	}
	if e.Known("no_such_fn") {
		t.Error("Known(no_such_fn)")
	}
	if !e.Known("malloc") {
		t.Error("!Known(malloc)")
	}
}

func TestMathExterns(t *testing.T) {
	e, _ := newEnv()
	v, _ := e.Call("sqrt", []uint64{math.Float64bits(9)})
	if math.Float64frombits(v) != 3 {
		t.Errorf("sqrt(9) = %v", math.Float64frombits(v))
	}
	v, _ = e.Call("pow", []uint64{math.Float64bits(2), math.Float64bits(10)})
	if math.Float64frombits(v) != 1024 {
		t.Errorf("pow(2,10) = %v", math.Float64frombits(v))
	}
	v, _ = e.Call("fabs", []uint64{math.Float64bits(-1.5)})
	if math.Float64frombits(v) != 1.5 {
		t.Errorf("fabs(-1.5) = %v", math.Float64frombits(v))
	}
}

func TestSignaturesParse(t *testing.T) {
	// Every declared runtime function must actually exist in the env.
	e, _ := newEnv()
	for _, line := range strings.Split(Signatures(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// "declare <ret> %name(...)"
		start := strings.Index(line, "%")
		end := strings.Index(line, "(")
		if start < 0 || end < 0 {
			t.Fatalf("malformed signature line %q", line)
		}
		name := line[start+1 : end]
		if !e.Known(name) {
			t.Errorf("declared runtime function %q not registered", name)
		}
	}
}
