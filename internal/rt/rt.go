// Package rt implements the runtime environment of external (native)
// functions that LLVA programs may call — the analog of the paper's native
// libraries invokable from LLVA executables. The same environment backs
// both the reference interpreter and the simulated hardware processor, so
// a program produces identical output on either execution engine.
//
// All arguments and results cross the boundary as raw 64-bit words;
// floating-point values travel as their IEEE-754 bit patterns.
package rt

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"unicode/utf8"

	"llva/internal/mem"
)

// ErrExit matches any ExitError under errors.Is — for callers that only
// need "the program exited" without the concrete type (the exit code is
// still reachable with errors.As).
var ErrExit = errors.New("rt: program exited")

// ExitError signals that the program called exit(); it unwinds execution
// engines without being a fault.
type ExitError struct{ Code int }

func (e *ExitError) Error() string { return fmt.Sprintf("program exited with status %d", e.Code) }

// Is makes every ExitError match the ErrExit sentinel.
func (e *ExitError) Is(target error) bool { return target == ErrExit }

// Fn is a native function callable from LLVA code.
type Fn func(e *Env, args []uint64) (uint64, error)

// Env is a runtime environment instance. It is not safe for concurrent use
// by multiple execution engines.
type Env struct {
	Mem *mem.Memory
	Out io.Writer
	// Clock supplies the value returned by the clock() external; execution
	// engines set it to their instruction/cycle counter.
	Clock func() uint64

	rand uint64
	// fns is the per-env override table, allocated lazily by Register;
	// lookups fall back to the shared immutable defaultFns, so plain
	// environments (every session) never copy the whole extern table.
	fns map[string]Fn
	// fmtBuf is the reusable number-formatting scratch of the print_*
	// externs; memBuf the bounce buffer of memcpy. Both grow to the
	// program's high-water mark and stay: the steady state of a
	// print-/copy-heavy guest allocates nothing.
	fmtBuf []byte
	memBuf []byte

	Stats struct {
		Calls  int
		Allocs int
		// PoolAllocs/PoolBytes count per-pool allocation activity from
		// the automatic pool allocation transformation.
		PoolAllocs map[uint64]int
		PoolBytes  map[uint64]uint64
	}
}

// defaultFns is the shared extern table every environment starts from.
// It is built once and never mutated after init: Register writes go to a
// per-env overlay, so constructing an Env costs no table copy.
var defaultFns = map[string]Fn{
	"print_int":   printInt,
	"print_uint":  printUint,
	"print_char":  printChar,
	"print_str":   printStr,
	"print_float": printFloat,
	"print_nl":    printNL,
	"malloc":      doMalloc,
	"calloc":      doCalloc,
	"free":        doFree,
	"memcpy":      doMemcpy,
	"memset":      doMemset,
	"strlen":      doStrlen,
	"strcmp":      doStrcmp,
	"pool_alloc":  doPoolAlloc,
	"pool_free":   doPoolFree,
	"exit":        doExit,
	"abort":       doAbort,
	"clock":       doClock,
	"srand":       doSrand,
	"rand":        doRand,
	"sqrt":        doSqrt,
	"fabs":        doFabs,
	"exp":         doExp,
	"log":         doLog,
	"pow":         doPow,
	"sin":         doSin,
	"cos":         doCos,
}

// NewEnv creates an environment over the given memory writing program
// output to out.
func NewEnv(m *mem.Memory, out io.Writer) *Env {
	e := &Env{Mem: m, Out: out, rand: 88172645463325252}
	e.Clock = func() uint64 { return 0 }
	return e
}

// Reset re-arms the environment for a fresh run writing to out: the
// deterministic RNG returns to its seed and the call/alloc statistics
// zero (pool maps drop to nil, matching a fresh Env's lazy allocation),
// so a reused environment is indistinguishable from a new one. The
// Clock binding, registered overrides and the formatting/bounce scratch
// buffers are kept — they carry no run-visible state.
func (e *Env) Reset(out io.Writer) {
	e.Out = out
	e.rand = 88172645463325252
	e.Stats.Calls = 0
	e.Stats.Allocs = 0
	e.Stats.PoolAllocs = nil
	e.Stats.PoolBytes = nil
}

// Register adds or overrides a native function (copy-on-write: the
// shared default table stays untouched).
func (e *Env) Register(name string, fn Fn) {
	if e.fns == nil {
		e.fns = make(map[string]Fn)
	}
	e.fns[name] = fn
}

// Known reports whether name is a registered native function.
func (e *Env) Known(name string) bool {
	if _, ok := e.fns[name]; ok {
		return true
	}
	_, ok := defaultFns[name]
	return ok
}

// Call invokes the named native function.
func (e *Env) Call(name string, args []uint64) (uint64, error) {
	fn, ok := e.fns[name]
	if !ok {
		fn, ok = defaultFns[name]
	}
	if !ok {
		return 0, fmt.Errorf("rt: call to unknown external function %%%s", name)
	}
	e.Stats.Calls++
	return fn(e, args)
}

// Signatures returns the LLVA declarations for every runtime function, in
// assembly syntax, for inclusion in modules that call them.
func Signatures() string {
	return `declare void %print_int(long %v)
declare void %print_uint(ulong %v)
declare void %print_char(long %c)
declare void %print_str(sbyte* %s)
declare void %print_float(double %v)
declare void %print_nl()
declare sbyte* %malloc(ulong %n)
declare sbyte* %calloc(ulong %n, ulong %size)
declare void %free(sbyte* %p)
declare void %memcpy(sbyte* %dst, sbyte* %src, ulong %n)
declare void %memset(sbyte* %dst, long %c, ulong %n)
declare ulong %strlen(sbyte* %s)
declare long %strcmp(sbyte* %a, sbyte* %b)
declare sbyte* %pool_alloc(ulong %pool, ulong %n)
declare void %pool_free(ulong %pool, sbyte* %p)
declare void %exit(long %code)
declare void %abort()
declare ulong %clock()
declare void %srand(ulong %seed)
declare ulong %rand()
declare double %sqrt(double %x)
declare double %fabs(double %x)
declare double %exp(double %x)
declare double %log(double %x)
declare double %pow(double %x, double %y)
declare double %sin(double %x)
declare double %cos(double %x)
`
}

func arg(args []uint64, i int) uint64 {
	if i < len(args) {
		return args[i]
	}
	return 0
}

// emit writes the formatting scratch and keeps its storage for the next
// print. All print_* externs format with strconv/utf8 appenders into
// this buffer — byte-identical to the old fmt verbs (%d, %c, %.4f) but
// with zero steady-state allocations.
func (e *Env) emit(buf []byte) (uint64, error) {
	e.fmtBuf = buf[:0]
	_, err := e.Out.Write(buf)
	return 0, err
}

func printInt(e *Env, a []uint64) (uint64, error) {
	return e.emit(strconv.AppendInt(e.fmtBuf, int64(arg(a, 0)), 10))
}

func printUint(e *Env, a []uint64) (uint64, error) {
	return e.emit(strconv.AppendUint(e.fmtBuf, arg(a, 0), 10))
}

func printChar(e *Env, a []uint64) (uint64, error) {
	// utf8.AppendRune yields U+FFFD for invalid runes, matching %c.
	return e.emit(utf8.AppendRune(e.fmtBuf, rune(arg(a, 0))))
}

func printStr(e *Env, a []uint64) (uint64, error) {
	s, err := e.Mem.CBytes(arg(a, 0))
	if err != nil {
		return 0, err
	}
	// The view is written directly — no string materialization. Writers
	// do not retain the slice past Write.
	_, err = e.Out.Write(s)
	return 0, err
}

func printFloat(e *Env, a []uint64) (uint64, error) {
	// Fixed 4-decimal formatting keeps output deterministic across
	// engines and easy to diff ('f' with precision 4 is what %.4f
	// produces, including NaN/±Inf spellings).
	return e.emit(strconv.AppendFloat(e.fmtBuf, math.Float64frombits(arg(a, 0)), 'f', 4, 64))
}

var nlByte = []byte{'\n'}

func printNL(e *Env, a []uint64) (uint64, error) {
	_, err := e.Out.Write(nlByte)
	return 0, err
}

func doMalloc(e *Env, a []uint64) (uint64, error) {
	e.Stats.Allocs++
	return e.Mem.Alloc(arg(a, 0))
}

func doCalloc(e *Env, a []uint64) (uint64, error) {
	e.Stats.Allocs++
	return e.Mem.Alloc(arg(a, 0) * arg(a, 1))
}

func doFree(e *Env, a []uint64) (uint64, error) {
	return 0, e.Mem.Free(arg(a, 0))
}

func doMemcpy(e *Env, a []uint64) (uint64, error) {
	n := arg(a, 2)
	if n == 0 {
		return 0, nil
	}
	src, err := e.Mem.Bytes(arg(a, 1), n)
	if err != nil {
		return 0, err
	}
	// Copy via the env's persistent bounce buffer so overlapping ranges
	// behave like memmove without allocating per call.
	if uint64(cap(e.memBuf)) < n {
		e.memBuf = make([]byte, n)
	}
	tmp := e.memBuf[:n]
	copy(tmp, src)
	return 0, e.Mem.WriteBytes(arg(a, 0), tmp)
}

func doMemset(e *Env, a []uint64) (uint64, error) {
	n := arg(a, 2)
	if n == 0 {
		return 0, nil
	}
	dst, err := e.Mem.Bytes(arg(a, 0), n)
	if err != nil {
		return 0, err
	}
	c := byte(arg(a, 1))
	for i := range dst {
		dst[i] = c
	}
	return 0, nil
}

func doStrlen(e *Env, a []uint64) (uint64, error) {
	s, err := e.Mem.CBytes(arg(a, 0))
	if err != nil {
		return 0, err
	}
	return uint64(len(s)), nil
}

func doStrcmp(e *Env, a []uint64) (uint64, error) {
	s1, err := e.Mem.CBytes(arg(a, 0))
	if err != nil {
		return 0, err
	}
	s2, err := e.Mem.CBytes(arg(a, 1))
	if err != nil {
		return 0, err
	}
	switch c := bytes.Compare(s1, s2); {
	case c < 0:
		return uint64(^uint64(0)), nil // -1
	case c > 0:
		return 1, nil
	}
	return 0, nil
}

// doPoolAlloc allocates from a per-structure pool (automatic pool
// allocation, paper Section 5.1). Pools are arena-like: pool_free is a
// no-op and memory is reclaimed when the pool is destroyed — which, in
// this runtime, is at program exit.
func doPoolAlloc(e *Env, a []uint64) (uint64, error) {
	if e.Stats.PoolAllocs == nil {
		e.Stats.PoolAllocs = make(map[uint64]int)
		e.Stats.PoolBytes = make(map[uint64]uint64)
	}
	pool, n := arg(a, 0), arg(a, 1)
	e.Stats.PoolAllocs[pool]++
	e.Stats.PoolBytes[pool] += n
	e.Stats.Allocs++
	return e.Mem.Alloc(n)
}

func doPoolFree(e *Env, a []uint64) (uint64, error) {
	// Arena semantics: individual frees are deferred to pool destruction.
	return 0, nil
}

func doExit(e *Env, a []uint64) (uint64, error) {
	return 0, &ExitError{Code: int(int64(arg(a, 0)))}
}

func doAbort(e *Env, a []uint64) (uint64, error) {
	return 0, fmt.Errorf("rt: program aborted")
}

func doClock(e *Env, a []uint64) (uint64, error) { return e.Clock(), nil }

func doSrand(e *Env, a []uint64) (uint64, error) {
	s := arg(a, 0)
	if s == 0 {
		s = 88172645463325252
	}
	e.rand = s
	return 0, nil
}

// doRand is a deterministic xorshift64 generator, identical on every
// engine and platform.
func doRand(e *Env, a []uint64) (uint64, error) {
	x := e.rand
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	e.rand = x
	return x >> 1, nil
}

func f1(fn func(float64) float64) Fn {
	return func(e *Env, a []uint64) (uint64, error) {
		return math.Float64bits(fn(math.Float64frombits(arg(a, 0)))), nil
	}
}

var (
	doSqrt = f1(math.Sqrt)
	doFabs = f1(math.Abs)
	doExp  = f1(math.Exp)
	doLog  = f1(math.Log)
	doSin  = f1(math.Sin)
	doCos  = f1(math.Cos)
)

func doPow(e *Env, a []uint64) (uint64, error) {
	return math.Float64bits(math.Pow(
		math.Float64frombits(arg(a, 0)), math.Float64frombits(arg(a, 1)))), nil
}
