package llee

import (
	"bytes"
	"encoding/gob"
	"testing"

	"llva/internal/codegen"
	"llva/internal/target"
	"llva/internal/workloads"
)

// benchCachedObject is a realistic payload: the full translation of a
// multi-function workload, exactly what readCache/writeCache handle.
func benchCachedObject(b *testing.B) *cachedObject {
	b.Helper()
	w := workloads.ByName("bc")
	m, err := w.CompileOptimized()
	if err != nil {
		b.Fatal(err)
	}
	tr, err := codegen.New(target.VX86, m)
	if err != nil {
		b.Fatal(err)
	}
	nobj, err := tr.TranslateModule()
	if err != nil {
		b.Fatal(err)
	}
	return &cachedObject{TargetName: "vx86", Module: m.Name, Funcs: nobj.Funcs}
}

// BenchmarkCacheCodec compares the versioned binary codec on the hot
// cache read/write path with the gob encoding it replaced (old blobs
// still decode through the gob fallback).
func BenchmarkCacheCodec(b *testing.B) {
	co := benchCachedObject(b)
	bin := encodeCachedObject(co)
	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(co); err != nil {
		b.Fatal(err)
	}
	b.Run("encode/binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			encodeCachedObject(co)
		}
		b.SetBytes(int64(len(bin)))
	})
	b.Run("encode/gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(co); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(gobBuf.Len()))
	})
	b.Run("decode/binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := decodeCachedObject(bin); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(bin)))
	})
	b.Run("decode/gob-fallback", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := decodeCachedObject(gobBuf.Bytes()); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(gobBuf.Len()))
	})
}

// BenchmarkCacheCodecRoundTrip measures the full write-side-plus-read-side
// path a warm cache hit pays: encode on one end, decode on the other.
// allocs/op is the guarded number — decode is zero-copy (views into the
// blob) and encode is a single exact-size buffer, so the steady state
// should stay within a handful of allocations.
func BenchmarkCacheCodecRoundTrip(b *testing.B) {
	co := benchCachedObject(b)
	bin := encodeCachedObject(co)
	b.ReportAllocs()
	b.SetBytes(int64(len(bin)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := encodeCachedObject(co)
		if _, err := decodeCachedObject(blob); err != nil {
			b.Fatal(err)
		}
	}
}
