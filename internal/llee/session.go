package llee

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/machine"
	"llva/internal/mem"
	"llva/internal/prof"
	"llva/internal/rt"
	"llva/internal/target"
	"llva/internal/telemetry"
	"llva/internal/trace"
)

// Session is one execution of a module on one simulated processor,
// created by System.NewSession. Sessions of the same module share the
// system's translation cache — a demanded function is JIT-compiled once
// no matter how many sessions demand it — but each session owns its
// machine, memory image, runtime environment, and SMC redirect state,
// so concurrent sessions never observe each other's execution. A
// Session's methods must not be called concurrently with each other;
// different Sessions are independent.
type Session struct {
	sys *System
	ms  *moduleState
	env *rt.Env
	mc  *machine.Machine

	// id is the session's process-unique ID — the "pid" lane of the
	// span trace; tenant is the owning tenant's label, carried on
	// every span; profiler is the attached guest sampler (nil: off).
	id       uint64
	tenant   string
	profiler *prof.Profiler

	// redirect implements llva.smc.replace for this session only:
	// function -> replacement body. Redirected demands translate
	// privately, bypassing the shared cache, so one session's
	// self-modification never leaks into another's code. Allocated on
	// the first replace — nil-map reads keep the common (no-SMC) session
	// from paying for it.
	redirect map[string]string
	// storageAPIAddr records the address registered via
	// llva.storage.register (exposed to trap handlers/tools).
	storageAPIAddr uint64
	cacheHit       bool
	// reusable is set when the session was created WithReuse on an
	// offline module state and its machine was sealed: Reset can then
	// restore it to a state bit-identical to a fresh session's. An SMC
	// redirect acquired at run time disqualifies it (Resettable).
	reusable bool

	// Tier-up hot-swap state: pending holds tier-2 code delivered by
	// background workers (any goroutine, guarded by pendMu) until the
	// machine installs it at a block boundary; installed2 guards against
	// reinstalling a function this session already swapped (touched only
	// on the machine/run goroutine). drain is the second half of the
	// double buffer: installPending swaps it with pending so repeated
	// drains reuse both slices' storage.
	pendMu     sync.Mutex
	pending    []*codegen.NativeFunc
	drain      []*codegen.NativeFunc
	installed2 map[string]bool

	runMu sync.Mutex
}

// Result describes one Session.Run: the entry function's return value
// and what the run cost on the simulated processor and the wall clock.
type Result struct {
	Value  uint64        // the entry function's return value
	Instrs uint64        // simulated instructions retired by this run
	Cycles uint64        // simulated cycles consumed by this run
	Wall   time.Duration // host wall-clock time of this run
}

// Stats is a point-in-time snapshot of what the execution manager did,
// taken from the telemetry registry (the authoritative source).
type Stats struct {
	CacheHit      bool
	CacheMisses   int
	Translations  int
	TranslateNS   int64
	Invalidations int
}

// NewSession prepares an execution of module m on target d, writing
// program output to out. Session-scoped settings (WithMemSize, WithGas,
// WithTenant, WithProfiler, WithFlightRecorder) are SessionOptions;
// system-scoped policy was fixed by NewSystem — the two option types
// make passing one at the wrong scope a compile error. The first
// session of a module pays for cache validation and profile seeding;
// later sessions of the same module reuse that work.
func (sys *System) NewSession(m *core.Module, d *target.Desc, out io.Writer, opts ...SessionOption) (*Session, error) {
	cfg := sessionConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	id := sys.sessionSeq.Add(1)
	if sys.tracer != nil {
		// Span labels and args are built only when a tracer is attached;
		// the default (untraced) session pays no formatting allocations.
		label := fmt.Sprintf("session %d", id)
		if cfg.tenant != "" {
			label += " (" + cfg.tenant + ")"
		}
		sys.tracer.NameProcess(int(id), label)
		endNew := sys.tracer.Begin(int(id), 0, "llee", "session.new",
			map[string]any{"session": id, "tenant": cfg.tenant, "module": m.Name})
		defer endNew()
	}
	ms, err := sys.state(m, d)
	if err != nil {
		return nil, err
	}
	// The canonical module copy (possibly relaid-out by a persisted
	// profile) is what every session executes — never the caller's m,
	// which may be a structurally identical duplicate. The data image
	// was built once with the module state; each session clones the
	// prototype instead of re-encoding every global initializer.
	env := rt.NewEnv(mem.New(cfg.memSize, ms.module.LittleEndian), out)
	mc, err := machine.NewWithImage(d, ms.module, env, ms.img.Clone())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModule, err)
	}
	s := &Session{
		sys:      sys,
		ms:       ms,
		env:      env,
		mc:       mc,
		id:       id,
		tenant:   cfg.tenant,
		profiler: cfg.profiler,
	}
	mc.SetTelemetry(sys.tele)
	if cfg.gas != 0 {
		mc.SetGas(cfg.gas)
	}
	if cfg.profiler != nil {
		mc.SetProfiler(cfg.profiler)
	}
	if cfg.flightRecorder > 0 {
		mc.EnableFlightRecorder(cfg.flightRecorder)
	}
	mc.OnJIT = s.onJIT
	mc.OnIntrinsic = s.onIntrinsic
	// Preload can flip the state offline concurrently with session
	// creation: snapshot the mode and its object under the state lock so
	// a session is wholly online or wholly offline, never a mix.
	ms.mu.Lock()
	online, nobj := ms.online, ms.nobj
	ms.mu.Unlock()
	if online {
		// Online translation: every call goes through a stub so SMC
		// invalidation can take effect between invocations.
		mc.CallsViaStubs(true)
		if err := mc.PrepareLazy(); err != nil {
			return nil, err
		}
		if ms.tr2 != nil {
			// Background tier-up can hot-swap this session's code: the
			// machine runs the installs at block boundaries, and finished
			// translations (including ones that predate this session) are
			// queued for it.
			s.installed2 = make(map[string]bool)
			mc.OnSwap = s.installPending
			ms.subscribe(s)
		}
	} else {
		if len(ms.loaded2) > 0 {
			// Offline mode binds direct calls at install, so tier-2 code
			// must be merged in before loading, not swapped in after.
			merged := &codegen.NativeObject{TargetName: nobj.TargetName, Module: nobj.Module}
			for _, nf := range nobj.Funcs {
				if nf2 := ms.loaded2[nf.Name]; nf2 != nil {
					nf = nf2
				}
				merged.Add(nf)
			}
			nobj = merged
		}
		if err := mc.LoadObject(nobj); err != nil {
			return nil, err
		}
		s.cacheHit = true
		if cfg.reuse && cfg.profiler == nil {
			// All code is installed and immutable from here: seal the
			// pristine state so Reset restores exactly this machine.
			if err := mc.Seal(); err != nil {
				return nil, err
			}
			s.reusable = true
		}
	}
	return s, nil
}

// ErrNotReusable reports a Reset on a session that cannot be reused: it
// was not created WithReuse on an offline module state, or it acquired
// an SMC redirect at run time.
var ErrNotReusable = errors.New("llee: session is not reusable")

// Resettable reports whether Reset would succeed: the session was
// sealed for reuse and no run self-modified its code. A serving layer
// checks this before pooling a finished session; false means discard.
func (s *Session) Resettable() bool {
	return s.reusable && len(s.redirect) == 0
}

// Reset returns a finished reusable session to its pristine state so
// its next Run is bit-identical — value, instruction and cycle counts,
// and output — to a fresh session's, at a cost proportional to the
// memory the previous run dirtied rather than to total memory size.
// Guest memory, registers, privilege, the deterministic RNG and the
// runtime statistics all roll back; installed native code, the
// predecoded block cache and the data-image prototype's work are kept.
// The session is re-armed for out/gas/tenant (a pool hands one session
// to many tenants — nothing of the prior tenant's run survives to be
// observed). Fails with ErrNotReusable when Resettable is false.
func (s *Session) Reset(out io.Writer, gas uint64, tenant string) error {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if !s.Resettable() {
		return ErrNotReusable
	}
	dirty := s.mc.Reset()
	s.env.Reset(out)
	s.mc.SetGas(gas)
	s.tenant = tenant
	s.storageAPIAddr = 0
	s.sys.tele.Counter(MetricSessionResets).Inc()
	s.sys.tele.Histogram(MetricResetDirtyPages).Observe(int64(dirty))
	return nil
}

// enqueueSwap queues one tier-2 translation for installation and pokes
// the machine; called from background worker goroutines.
func (s *Session) enqueueSwap(nf *codegen.NativeFunc) {
	s.pendMu.Lock()
	s.pending = append(s.pending, nf)
	s.pendMu.Unlock()
	s.mc.RequestSwap()
}

// installPending installs queued tier-2 code. It runs with the machine
// quiescent — at a block boundary mid-run (machine.OnSwap) or before a
// Run — so replacement is the PR 3 SMC path: InstallCode rebinds the
// name and every later call through the stub lands in optimized code,
// while code already on the virtual stack keeps running validly to
// completion. Each function swaps at most once per session, and
// SMC-redirected functions are skipped (the session's own replacement
// wins over the shared profile).
func (s *Session) installPending() {
	s.pendMu.Lock()
	pend := s.pending
	s.pending = s.drain[:0]
	s.drain = pend
	s.pendMu.Unlock()
	for _, nf := range pend {
		if s.installed2[nf.Name] || s.redirect[nf.Name] != "" {
			continue
		}
		if _, err := s.mc.InstallCode(nf); err != nil {
			// Code segment exhausted: tier-1 code keeps running.
			continue
		}
		s.installed2[nf.Name] = true
	}
}

// Run executes the entry function until it returns, the program exits,
// an unhandled trap fires, or ctx is done. Cancellation is honored at
// basic-block boundaries: an uncancellable context costs one nil
// comparison per block, so cycle counts are bit-identical with and
// without a context. Errors classify under the package taxonomy
// (ErrCanceled, ErrTranslate, ErrBadModule, ErrExit, *ErrTrap) via
// errors.Is/As. New translations are written back to the offline cache
// before returning when the storage API is available.
func (s *Session) Run(ctx context.Context, entry string, args ...uint64) (Result, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if f := s.ms.module.Function(entry); f == nil || f.IsDeclaration() {
		return Result{}, fmt.Errorf("%w: no entry function %%%s", ErrBadModule, entry)
	}
	if s.installed2 != nil {
		// Drain tier-up deliveries that arrived while the machine was
		// idle, so this run starts on the freshest code.
		s.installPending()
	}
	instrs0, cycles0 := s.mc.Stats.Instrs, s.mc.Stats.Cycles
	endRun := s.sys.tracer.Begin(int(s.id), 0, "guest", "run:"+entry, s.spanArgs())
	start := time.Now()
	v, err := s.mc.RunContext(ctx, entry, args...)
	endRun()
	res := Result{
		Value:  v,
		Instrs: s.mc.Stats.Instrs - instrs0,
		Cycles: s.mc.Stats.Cycles - cycles0,
		Wall:   time.Since(start),
	}
	err = mapRunError(err)
	if errors.Is(err, ErrCanceled) {
		s.sys.tracer.Instant(int(s.id), 0, "guest", "cancel:"+entry, s.spanArgs())
	}
	// The run is charged to its tenant however it ended: canceled,
	// trapped, and out-of-gas runs consumed real simulated time.
	s.sys.accountRun(s.tenant, res.Cycles)
	endWB := s.sys.tracer.Begin(int(s.id), 0, "llee", "cache.writeback", s.spanArgs())
	werr := s.ms.writeBack()
	endWB()
	if werr != nil && err == nil {
		err = werr
	}
	return res, err
}

// spanArgs is the correlation payload every session span carries (nil
// when tracing is off — spans are no-ops then, so the map would only be
// per-run allocation noise).
func (s *Session) spanArgs() map[string]any {
	if s.sys.tracer == nil {
		return nil
	}
	a := map[string]any{"session": s.id}
	if s.tenant != "" {
		a["tenant"] = s.tenant
	}
	return a
}

// mapRunError lifts machine-level failures into the session taxonomy.
// Exit and translation errors already carry their sentinels from the
// owning layer and pass through unchanged.
func mapRunError(err error) error {
	if err == nil {
		return nil
	}
	var te *machine.TrapError
	if errors.As(err, &te) {
		return &ErrTrap{Num: te.Num, PC: te.PC, Cause: err}
	}
	var ce *machine.CancelError
	if errors.As(err, &ce) {
		return fmt.Errorf("llee: %w", err)
	}
	var ge *machine.GasError
	if errors.As(err, &ge) {
		return fmt.Errorf("llee: %w", err)
	}
	return err
}

// Stats snapshots the system's telemetry registry into the legacy
// counter struct. CacheHit reports whether THIS session loaded a cached
// translation; the counters aggregate over the whole system (exact
// per-session attribution lives in the event trace).
func (s *Session) Stats() Stats {
	t := s.sys.tele
	return Stats{
		CacheHit:      s.cacheHit,
		CacheMisses:   int(t.CounterValue(MetricCacheMisses)),
		Translations:  int(t.CounterValue(MetricTranslations)),
		TranslateNS:   t.Histogram(MetricTranslateNS).Sum(),
		Invalidations: int(t.CounterValue(MetricInvalidations)),
	}
}

// SetGas replaces the session's per-run gas budget (0: unmetered) for
// subsequent Runs; a serving layer reusing one session across requests
// re-arms it per request. Must not race a Run in progress.
func (s *Session) SetGas(budget uint64) { s.mc.SetGas(budget) }

// Gas returns the configured per-run gas budget (0: unmetered).
func (s *Session) Gas() uint64 { return s.mc.Gas() }

// Machine exposes the underlying simulated processor (for statistics).
func (s *Session) Machine() *machine.Machine { return s.mc }

// Env exposes the session's runtime environment.
func (s *Session) Env() *rt.Env { return s.env }

// Module returns the canonical module this session executes (the
// system's copy, which profile-driven relayout may have reordered).
func (s *Session) Module() *core.Module { return s.ms.module }

// System returns the owning system.
func (s *Session) System() *System { return s.sys }

// CacheHit reports whether this session loaded a valid cached
// translation instead of translating online.
func (s *Session) CacheHit() bool { return s.cacheHit }

// StorageAPIAddr reports the address registered via llva.storage.register.
func (s *Session) StorageAPIAddr() uint64 { return s.storageAPIAddr }

// TraceCacheStats reports the state of the software trace cache seeded
// from the persisted profile (zero value when no profile was loaded).
func (s *Session) TraceCacheStats() trace.Stats { return s.ms.traceStats }

// ProfileSeeded reports whether a valid persisted profile was reloaded.
func (s *Session) ProfileSeeded() bool { return s.ms.profileSeeded }

// GatherProfile executes the program once on the instrumented reference
// interpreter and persists the profile through the storage API.
func (s *Session) GatherProfile(entry string, args ...uint64) error {
	return s.ms.gatherProfile(entry, args...)
}

// TranslateOffline compiles the whole module into the offline cache
// without executing anything (idle-time translation, Section 4.1).
func (s *Session) TranslateOffline() error { return s.ms.translateOffline() }

// IdleTimeOptimize reoptimizes the cached translation from the
// persisted profile (Section 4.2). It re-lays out the shared module, so
// call it between executions, not while other sessions run.
func (s *Session) IdleTimeOptimize() (trace.Stats, error) { return s.ms.idleTimeOptimize() }

// onJIT translates one function on demand (honoring SMC redirects) and
// installs its code in this session's machine. The unredirected path
// goes through the system's shared single-flight cache: the demand
// finds a ready translation, joins the in-flight one, or translates
// inline — each function is translated once per system, however many
// sessions demand it. Installation always happens here, on the
// machine's goroutine.
func (s *Session) onJIT(name string) (uint64, error) {
	body := name
	if r, ok := s.redirect[name]; ok {
		body = r
	}
	f := s.ms.module.Function(body)
	if f == nil || f.IsDeclaration() {
		return 0, fmt.Errorf("%w: no body for %%%s", ErrBadModule, body)
	}
	tele := s.sys.tele
	tele.Events().Emit(telemetry.EvJITRequest, name, 0)
	if body == name {
		// Tier-2 code already translated (by background tier-up in this
		// System, or decoded from the profile-stamped cache) is served
		// directly: the demand skips tier-1 entirely.
		if nf2 := s.ms.tier2For(name); nf2 != nil {
			addr, err := s.mc.InstallCode(nf2)
			if err != nil {
				return 0, err
			}
			if s.installed2 != nil {
				s.installed2[name] = true
			}
			return addr, nil
		}
	}
	tele.Events().Emit(telemetry.EvTranslateStart, body, 0)
	endTr := s.sys.tracer.Begin(int(s.id), 0, "llee", "translate:"+name, s.spanArgs())
	start := time.Now()
	var nf *codegen.NativeFunc
	var err error
	performed := true
	if body == name {
		nf, performed, err = s.ms.spec.Demand(name, f)
	} else {
		// SMC-redirected bodies bypass the shared cache: their
		// translation is keyed by the callee's name but built from
		// another body, and must stay private to this session.
		nf, err = s.ms.tr.TranslateFunction(f)
	}
	endTr()
	if err != nil {
		return 0, err
	}
	// The demand-path histogram records the stall the program actually
	// saw: near zero on a shared-cache hit, full translate time inline.
	// The translation counter moves only for the demand that performed
	// the work, so N sessions of one module count each function once.
	ns := time.Since(start).Nanoseconds()
	tele.Histogram(MetricTranslateNS).Observe(ns)
	tele.Events().Emit(telemetry.EvTranslateEnd, name, ns)
	if performed {
		tele.Counter(MetricTranslations).Inc()
	}
	if body != name {
		// Install the replacement body under the callee's name. Only the
		// private redirect translation is renamed: shared translations
		// are immutable once published.
		nf.Name = name
	}
	endIn := s.sys.tracer.Begin(int(s.id), 0, "llee", "install:"+name, s.spanArgs())
	addr, err := s.mc.InstallCode(nf)
	endIn()
	if err != nil {
		return 0, err
	}
	if s.sys.speculate && body == name {
		s.ms.spec.EnqueueCallees(f, s.ms.callWeights)
	}
	if body == name && s.ms.tr2 != nil && s.ms.hot[name] {
		// The function just started running at tier 1 and the profile
		// says it is hot: queue its tier-2 re-translation. Singleflight
		// in the Speculator makes this once per System no matter how
		// many sessions demand it.
		s.ms.spec.TierUp([]*core.Function{f})
	}
	return addr, nil
}

// onIntrinsic handles the intrinsics the machine delegates to the
// execution manager: self-modifying code and the storage API registration.
func (s *Session) onIntrinsic(name string, args []uint64) (uint64, error) {
	switch name {
	case "llva.smc.replace":
		if len(args) < 2 {
			return 0, fmt.Errorf("llva.smc.replace: missing arguments")
		}
		tgt, ok1 := s.mc.NameAt(args[0])
		src, ok2 := s.mc.NameAt(args[1])
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("llva.smc.replace: arguments are not functions")
		}
		ft, fs := s.ms.module.Function(tgt), s.ms.module.Function(src)
		if ft == nil || fs == nil || ft.Signature() != fs.Signature() {
			return 0, fmt.Errorf("llva.smc.replace: signature mismatch %%%s vs %%%s", tgt, src)
		}
		if s.redirect == nil {
			s.redirect = make(map[string]string)
		}
		s.redirect[tgt] = src
		s.sys.tele.Counter(MetricInvalidations).Inc()
		s.sys.tele.Events().Emit(telemetry.EvInvalidate, tgt, 0)
		// Mark this session's generated code invalid; regenerated on the
		// next invocation (paper, Section 3.4). The shared cache keeps
		// the original body's translation: it is still the correct
		// translation of that function for every other session and for
		// write-back (a fresh process starts with no redirects).
		return 0, s.mc.InvalidateFunction(tgt)
	case "llva.storage.register":
		if len(args) > 0 {
			s.storageAPIAddr = args[0]
		}
		return 0, nil
	case "llva.storage.get":
		return s.storageAPIAddr, nil
	case "llva.trap.register":
		// Recorded only: machine-level trap vectoring is outside the
		// simulated processor's scope (the interpreter implements full
		// handler dispatch).
		return 0, nil
	}
	return 0, fmt.Errorf("llee: unhandled intrinsic %%%s", name)
}
