package llee

import (
	"errors"
	"fmt"
	"io"
	"time"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/llee/pipeline"
	"llva/internal/machine"
	"llva/internal/mem"
	"llva/internal/obj"
	"llva/internal/rt"
	"llva/internal/target"
	"llva/internal/telemetry"
	"llva/internal/trace"
)

// Manager is one LLEE instance managing the execution of one LLVA program
// on one simulated processor. It implements the paper's translation
// strategy: look for a cached translation, validate its stamp, load and
// relocate it, and fall back to the JIT compiler on the entry function
// when any condition fails; newly translated code is written back to the
// offline cache when the storage API is available (Section 4.1).
type Manager struct {
	Module *core.Module
	desc   *target.Desc

	storage Storage // nil: no OS storage API registered
	tr      *codegen.Translator
	env     *rt.Env
	mc      *machine.Machine

	objStamp string
	// redirect implements llva.smc.replace: function -> replacement body.
	redirect map[string]string
	// translated accumulates this session's JIT output for write-back.
	translated map[string]*codegen.NativeFunc
	// storageAPIAddr records the address registered via
	// llva.storage.register (exposed to trap handlers/tools).
	storageAPIAddr uint64

	// translateWorkers is the pipeline worker-pool size (0: GOMAXPROCS).
	translateWorkers int
	// speculate enables background ahead-of-time JIT of static callees.
	speculate bool
	// spec is the live speculation pipeline of the current online run.
	spec *pipeline.Speculator
	// cached holds the decoded cache contents of this run's readCache
	// (nil on a miss), so write-back merges without re-reading storage.
	cached map[string]*codegen.NativeFunc
	// specLeftover holds speculative translations never demanded by the
	// run; they are still valid and merged into write-back.
	specLeftover map[string]*codegen.NativeFunc
	// callWeights orders speculation hottest-first when a persisted
	// profile (Section 4.2) was loaded: function name -> call count.
	callWeights map[string]uint64

	// tele records everything the manager, its machine, and the trace
	// cache do; the Stats struct below is a snapshot of it.
	tele *telemetry.Registry
	// traceStats/profileSeeded describe the software trace cache seeded
	// from the persisted profile (Section 4.2).
	traceStats    trace.Stats
	profileSeeded bool

	// Stats describes what the execution manager did. It is refreshed
	// from the telemetry registry after Run/TranslateOffline/
	// IdleTimeOptimize; the registry is the authoritative source.
	Stats struct {
		CacheHit      bool
		CacheMisses   int
		Translations  int
		TranslateNS   int64
		Invalidations int
	}
}

// Option configures a Manager.
type Option func(*config)

type config struct {
	storage          Storage
	memSize          uint64
	tele             *telemetry.Registry
	translateWorkers int
	speculate        bool
}

// WithStorage registers the OS storage API implementation. Without it
// the manager always translates online, exactly like DAISY and Crusoe
// (paper, Section 4.1).
func WithStorage(s Storage) Option { return func(c *config) { c.storage = s } }

// WithMemSize sets the simulated machine's address-space size.
func WithMemSize(n uint64) Option { return func(c *config) { c.memSize = n } }

// WithTelemetry aggregates this manager's metrics and events into an
// existing registry (for multi-run tools such as llva-bench). Without
// it every manager gets a private registry.
func WithTelemetry(reg *telemetry.Registry) Option { return func(c *config) { c.tele = reg } }

// WithTranslateWorkers sets the translation worker-pool size used by
// offline translation and speculative JIT (0 or unset: GOMAXPROCS).
func WithTranslateWorkers(n int) Option { return func(c *config) { c.translateWorkers = n } }

// WithSpeculation toggles speculative background JIT: when a function
// is translated on demand, its static callees are queued for
// ahead-of-time translation on background workers (default on).
func WithSpeculation(on bool) Option { return func(c *config) { c.speculate = on } }

// NewManager creates an execution manager for module m on target d,
// writing program output to out.
func NewManager(m *core.Module, d *target.Desc, out io.Writer, opts ...Option) (*Manager, error) {
	cfg := config{speculate: true}
	for _, o := range opts {
		o(&cfg)
	}
	tr, err := codegen.New(d, m)
	if err != nil {
		return nil, err
	}
	env := rt.NewEnv(mem.New(cfg.memSize, m.LittleEndian), out)
	mc, err := machine.New(d, m, env)
	if err != nil {
		return nil, err
	}
	// The module stamp ties cached translations to this exact virtual
	// object code.
	enc, err := obj.Encode(m)
	if err != nil {
		return nil, err
	}
	mg := &Manager{
		Module:           m,
		desc:             d,
		storage:          cfg.storage,
		tr:               tr,
		env:              env,
		mc:               mc,
		objStamp:         Stamp(enc),
		redirect:         make(map[string]string),
		translated:       make(map[string]*codegen.NativeFunc),
		tele:             cfg.tele,
		translateWorkers: cfg.translateWorkers,
		speculate:        cfg.speculate,
	}
	if mg.tele == nil {
		mg.tele = telemetry.New()
	}
	mc.SetTelemetry(mg.tele)
	mc.OnJIT = mg.onJIT
	mc.OnIntrinsic = mg.onIntrinsic
	return mg, nil
}

// Machine exposes the underlying simulated processor (for statistics).
func (mg *Manager) Machine() *machine.Machine { return mg.mc }

// Env exposes the runtime environment.
func (mg *Manager) Env() *rt.Env { return mg.env }

func (mg *Manager) cacheKey() string {
	return "native:" + mg.Module.Name + ":" + mg.desc.Name
}

// cachedObject is the gob-serialized cache payload.
type cachedObject struct {
	TargetName string
	Module     string
	Funcs      []*codegen.NativeFunc
}

// Run executes the entry function: cached translation when valid,
// JIT-on-demand otherwise, with write-back of new translations. A
// corrupt cache entry is treated as a miss — evicted, surfaced through
// telemetry, and replaced by online translation — never as an
// execution failure (the paper's "online translation whenever
// necessary").
func (mg *Manager) Run(entry string, args ...uint64) (uint64, error) {
	loaded := false
	mg.cached = nil
	mg.specLeftover = nil
	if mg.storage != nil {
		if obj, ok, err := mg.readCache(); err != nil && !errors.Is(err, errCorruptCache) {
			return 0, err
		} else if ok {
			if err := mg.mc.LoadObject(obj); err != nil {
				return 0, err
			}
			mg.tele.Counter(MetricCacheHits).Inc()
			mg.tele.Events().Emit(telemetry.EvCacheHit, mg.cacheKey(), 0)
			// Keep the decoded functions: write-back merges against
			// them instead of re-reading and re-decoding storage.
			mg.cached = make(map[string]*codegen.NativeFunc, len(obj.Funcs))
			for _, nf := range obj.Funcs {
				mg.cached[nf.Name] = nf
			}
			loaded = true
		} else {
			mg.tele.Counter(MetricCacheMisses).Inc()
			mg.tele.Events().Emit(telemetry.EvCacheMiss, mg.cacheKey(), 0)
		}
		// A persisted profile (Section 4.2) seeds the software trace
		// cache on every start without re-profiling; on the online-
		// translation path it also re-lays out the virtual object code
		// before the JIT sees it.
		if err := mg.seedTraceCache(!loaded); err != nil {
			return 0, err
		}
	}
	if !loaded {
		// Online translation: every call goes through a stub so SMC
		// invalidation can take effect between invocations.
		mg.mc.CallsViaStubs(true)
		if mg.speculate {
			mg.spec = pipeline.NewSpeculator(mg.tr, mg.translateWorkers, mg.tele)
		}
		if err := mg.prepareJIT(); err != nil {
			return 0, err
		}
	}
	v, err := mg.mc.Run(entry, args...)
	if mg.spec != nil {
		mg.specLeftover = mg.spec.Close()
		mg.spec = nil
	}
	if werr := mg.writeBack(); werr != nil && err == nil {
		err = werr
	}
	mg.syncStats()
	return v, err
}

// prepareJIT resolves data-segment function pointers to stubs.
func (mg *Manager) prepareJIT() error {
	return mg.mc.PrepareLazy()
}

// TranslateOffline compiles the whole module and stores it in the cache
// without executing anything — the paper's "initiating execution ... but
// flagging it for translation and not actual execution" during OS idle
// time. Translation runs on the pipeline worker pool (one worker per
// core by default); the output is byte-identical to sequential
// translation.
func (mg *Manager) TranslateOffline() error {
	if mg.storage == nil {
		return fmt.Errorf("llee: offline translation requires the storage API")
	}
	mg.tele.Events().Emit(telemetry.EvTranslateStart, mg.Module.Name, int64(len(mg.Module.Functions)))
	start := time.Now()
	nobj, err := pipeline.TranslateModule(mg.tr, mg.translateWorkers, mg.tele)
	if err != nil {
		return err
	}
	mg.recordTranslate(mg.Module.Name, time.Since(start).Nanoseconds(), len(nobj.Funcs))
	mg.syncStats()
	return mg.writeCache(nobj.Funcs)
}

// evictCache deletes a dead (stale or corrupt) cache blob so garbage
// does not accumulate across recompiles. Best-effort: a failed delete
// is surfaced through telemetry, never as an execution error.
func (mg *Manager) evictCache(key string) {
	if err := mg.storage.Delete(key); err != nil {
		mg.tele.Events().Emit(telemetry.EvCacheEvicted, key+": "+err.Error(), -1)
		return
	}
	mg.tele.Counter(MetricCacheEvictions).Inc()
	mg.tele.Events().Emit(telemetry.EvCacheEvicted, key, 0)
}

func (mg *Manager) readCache() (*codegen.NativeObject, bool, error) {
	data, stamp, ok, err := mg.storage.Read(mg.cacheKey())
	if err != nil || !ok {
		return nil, false, err
	}
	if stamp != mg.objStamp {
		// Out-of-date translation: ignore it (the paper's timestamp
		// check failing) and evict the dead blob.
		mg.tele.Counter(MetricStampMismatches).Inc()
		mg.tele.Events().Emit(telemetry.EvStampMismatch, mg.cacheKey(), 0)
		mg.evictCache(mg.cacheKey())
		return nil, false, nil
	}
	co, err := decodeCachedObject(data)
	if err != nil {
		mg.tele.Counter(MetricCacheCorrupt).Inc()
		mg.tele.Events().Emit(telemetry.EvCacheCorrupt, mg.cacheKey(), 0)
		mg.evictCache(mg.cacheKey())
		return nil, false, fmt.Errorf("llee: %w", err)
	}
	nobj := &codegen.NativeObject{TargetName: co.TargetName, Module: co.Module}
	for _, f := range co.Funcs {
		nobj.Add(f)
	}
	return nobj, true, nil
}

func (mg *Manager) writeCache(funcs []*codegen.NativeFunc) error {
	co := cachedObject{TargetName: mg.desc.Name, Module: mg.Module.Name, Funcs: funcs}
	return mg.storage.Write(mg.cacheKey(), mg.objStamp, encodeCachedObject(&co))
}

// writeBack stores this session's JIT output — demand translations plus
// unconsumed speculative ones — merged with the cache contents decoded
// at Run start, when storage is available and something new exists. It
// never re-reads storage: mg.cached is this run's view of the cache
// (empty on a miss, where the stale/corrupt entry was already evicted),
// so previously cached functions survive the merge.
func (mg *Manager) writeBack() error {
	if mg.storage == nil || (len(mg.translated) == 0 && len(mg.specLeftover) == 0) {
		return nil
	}
	merged := make(map[string]*codegen.NativeFunc, len(mg.cached)+len(mg.translated))
	for n, f := range mg.cached {
		merged[n] = f
	}
	for n, f := range mg.specLeftover {
		merged[n] = f
	}
	for n, f := range mg.translated {
		merged[n] = f
	}
	funcs := make([]*codegen.NativeFunc, 0, len(merged))
	for _, f := range mg.Module.Functions {
		if nf, ok := merged[f.Name()]; ok {
			funcs = append(funcs, nf)
		}
	}
	return mg.writeCache(funcs)
}

// onJIT translates one function on demand (honoring SMC redirects) and
// installs its code. With speculation active the demand either finds a
// ready background translation, joins the in-flight one, or translates
// inline under single-flight; either way it then queues the function's
// static callees (hottest-first when a profile is loaded) for
// ahead-of-time translation. Installation always happens here, on the
// machine's goroutine.
func (mg *Manager) onJIT(name string) (uint64, error) {
	body := name
	if r, ok := mg.redirect[name]; ok {
		body = r
	}
	f := mg.Module.Function(body)
	if f == nil || f.IsDeclaration() {
		return 0, fmt.Errorf("llee: no body for %%%s", body)
	}
	mg.tele.Events().Emit(telemetry.EvJITRequest, name, 0)
	mg.tele.Events().Emit(telemetry.EvTranslateStart, body, 0)
	start := time.Now()
	var nf *codegen.NativeFunc
	var err error
	if mg.spec != nil && body == name {
		nf, err = mg.spec.Demand(name, f)
	} else {
		// SMC-redirected bodies bypass speculation: their translation
		// is keyed by the callee's name but built from another body.
		nf, err = mg.tr.TranslateFunction(f)
	}
	if err != nil {
		return 0, err
	}
	// The demand-path histogram records the stall the program actually
	// saw: near zero on a speculation hit, full translate time inline.
	mg.recordTranslate(name, time.Since(start).Nanoseconds(), 1)
	nf.Name = name // install the (possibly replacement) body under the callee's name
	addr, err := mg.mc.InstallCode(nf)
	if err != nil {
		return 0, err
	}
	if body == name {
		mg.translated[name] = nf
	}
	if mg.spec != nil {
		mg.spec.EnqueueCallees(f, mg.callWeights)
	}
	return addr, nil
}

// onIntrinsic handles the intrinsics the machine delegates to the
// execution manager: self-modifying code and the storage API registration.
func (mg *Manager) onIntrinsic(name string, args []uint64) (uint64, error) {
	switch name {
	case "llva.smc.replace":
		if len(args) < 2 {
			return 0, fmt.Errorf("llva.smc.replace: missing arguments")
		}
		tgt, ok1 := mg.mc.NameAt(args[0])
		src, ok2 := mg.mc.NameAt(args[1])
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("llva.smc.replace: arguments are not functions")
		}
		ft, fs := mg.Module.Function(tgt), mg.Module.Function(src)
		if ft == nil || fs == nil || ft.Signature() != fs.Signature() {
			return 0, fmt.Errorf("llva.smc.replace: signature mismatch %%%s vs %%%s", tgt, src)
		}
		mg.redirect[tgt] = src
		if mg.spec != nil {
			// Drop any speculative translation of the old body so it is
			// neither installed nor written back under the new binding.
			mg.spec.Invalidate(tgt)
		}
		mg.tele.Counter(MetricInvalidations).Inc()
		mg.tele.Events().Emit(telemetry.EvInvalidate, tgt, 0)
		// Mark the generated code invalid; regenerated on next invocation
		// (paper, Section 3.4).
		return 0, mg.mc.InvalidateFunction(tgt)
	case "llva.storage.register":
		if len(args) > 0 {
			mg.storageAPIAddr = args[0]
		}
		return 0, nil
	case "llva.storage.get":
		return mg.storageAPIAddr, nil
	case "llva.trap.register":
		// Recorded only: machine-level trap vectoring is outside the
		// simulated processor's scope (the interpreter implements full
		// handler dispatch).
		return 0, nil
	}
	return 0, fmt.Errorf("llee: unhandled intrinsic %%%s", name)
}

// StorageAPIAddr reports the address registered via llva.storage.register.
func (mg *Manager) StorageAPIAddr() uint64 { return mg.storageAPIAddr }
