package llee

import (
	"context"
	"io"

	"llva/internal/core"
	"llva/internal/machine"
	"llva/internal/rt"
	"llva/internal/target"
	"llva/internal/telemetry"
	"llva/internal/trace"
)

// Manager is the original single-object LLEE API, kept as a thin shim
// over the System/Session split so existing callers keep building.
//
// Deprecated: use NewSystem + System.NewSession. A Manager is exactly a
// private System with one Session: nothing is shared across Managers,
// so concurrent executions of one module re-translate per Manager —
// the problem the System API exists to solve. New code also gets
// context cancellation and the typed error taxonomy via Session.Run.
type Manager struct {
	// Module is the canonical module under execution (profile-driven
	// relayout may have reordered its blocks at construction).
	Module *core.Module

	sys  *System
	sess *Session

	// Stats mirrors Session.Stats after Run/TranslateOffline/
	// IdleTimeOptimize.
	//
	// Deprecated: call Session.Stats (or keep reading this field; it is
	// refreshed for compatibility). The telemetry registry is the
	// authoritative source.
	Stats Stats
}

// NewManager creates a single-session execution manager for module m on
// target d, writing program output to out.
//
// Deprecated: use NewSystem(opts...).NewSession(m, d, out, opts...).
func NewManager(m *core.Module, d *target.Desc, out io.Writer, opts ...Option) (*Manager, error) {
	sys := NewSystem(opts...)
	sess, err := sys.NewSession(m, d, out, opts...)
	if err != nil {
		return nil, err
	}
	return &Manager{Module: sess.Module(), sys: sys, sess: sess}, nil
}

// Run executes the entry function: cached translation when valid,
// JIT-on-demand otherwise, with write-back of new translations.
//
// Deprecated: use Session.Run, which takes a context and returns a
// Result. This shim preserves the old per-run pipeline lifecycle:
// background speculation is stopped after the run and its unconsumed
// translations are counted as waste and written back.
func (mg *Manager) Run(entry string, args ...uint64) (uint64, error) {
	res, err := mg.sess.Run(context.Background(), entry, args...)
	mg.sess.ms.spec.Close()
	if werr := mg.sess.ms.writeBack(); werr != nil && err == nil {
		err = werr
	}
	mg.syncStats()
	return res.Value, err
}

// Session returns the shim's underlying session (migration aid).
func (mg *Manager) Session() *Session { return mg.sess }

// System returns the shim's underlying private system (migration aid).
func (mg *Manager) System() *System { return mg.sys }

// Machine exposes the underlying simulated processor (for statistics).
func (mg *Manager) Machine() *machine.Machine { return mg.sess.Machine() }

// Env exposes the runtime environment.
func (mg *Manager) Env() *rt.Env { return mg.sess.Env() }

// Telemetry returns the manager's metric registry (shared with its
// machine). Pass WithTelemetry to aggregate several managers into one.
func (mg *Manager) Telemetry() *telemetry.Registry { return mg.sys.tele }

// TraceCacheStats reports the state of the software trace cache seeded
// from the persisted profile (zero value when no profile was loaded).
func (mg *Manager) TraceCacheStats() trace.Stats { return mg.sess.TraceCacheStats() }

// ProfileSeeded reports whether a valid persisted profile was reloaded.
func (mg *Manager) ProfileSeeded() bool { return mg.sess.ProfileSeeded() }

// StorageAPIAddr reports the address registered via llva.storage.register.
func (mg *Manager) StorageAPIAddr() uint64 { return mg.sess.StorageAPIAddr() }

// TranslateOffline compiles the whole module and stores it in the cache
// without executing anything (idle-time translation, Section 4.1).
func (mg *Manager) TranslateOffline() error {
	err := mg.sess.TranslateOffline()
	mg.syncStats()
	return err
}

// GatherProfile executes the program once on the instrumented reference
// interpreter and persists the profile through the storage API.
func (mg *Manager) GatherProfile(entry string, args ...uint64) error {
	return mg.sess.GatherProfile(entry, args...)
}

// IdleTimeOptimize reoptimizes the cached translation from the
// persisted profile (Section 4.2).
func (mg *Manager) IdleTimeOptimize() (trace.Stats, error) {
	st, err := mg.sess.IdleTimeOptimize()
	mg.syncStats()
	return st, err
}

// syncStats refreshes the API-compatible Stats snapshot from the
// telemetry registry — the registry is the single source of truth. The
// legacy CacheHit semantics (any hit recorded in the registry) are
// preserved.
func (mg *Manager) syncStats() {
	mg.Stats = mg.sess.Stats()
	mg.Stats.CacheHit = mg.sys.tele.CounterValue(MetricCacheHits) > 0
}
