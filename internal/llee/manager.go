package llee

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/machine"
	"llva/internal/mem"
	"llva/internal/obj"
	"llva/internal/rt"
	"llva/internal/target"
	"llva/internal/telemetry"
	"llva/internal/trace"
)

// Manager is one LLEE instance managing the execution of one LLVA program
// on one simulated processor. It implements the paper's translation
// strategy: look for a cached translation, validate its stamp, load and
// relocate it, and fall back to the JIT compiler on the entry function
// when any condition fails; newly translated code is written back to the
// offline cache when the storage API is available (Section 4.1).
type Manager struct {
	Module *core.Module
	desc   *target.Desc

	storage Storage // nil: no OS storage API registered
	tr      *codegen.Translator
	env     *rt.Env
	mc      *machine.Machine

	objStamp string
	// redirect implements llva.smc.replace: function -> replacement body.
	redirect map[string]string
	// translated accumulates this session's JIT output for write-back.
	translated map[string]*codegen.NativeFunc
	// storageAPIAddr records the address registered via
	// llva.storage.register (exposed to trap handlers/tools).
	storageAPIAddr uint64

	// tele records everything the manager, its machine, and the trace
	// cache do; the Stats struct below is a snapshot of it.
	tele *telemetry.Registry
	// traceStats/profileSeeded describe the software trace cache seeded
	// from the persisted profile (Section 4.2).
	traceStats    trace.Stats
	profileSeeded bool

	// Stats describes what the execution manager did. It is refreshed
	// from the telemetry registry after Run/TranslateOffline/
	// IdleTimeOptimize; the registry is the authoritative source.
	Stats struct {
		CacheHit      bool
		CacheMisses   int
		Translations  int
		TranslateNS   int64
		Invalidations int
	}
}

// Option configures a Manager.
type Option func(*config)

type config struct {
	storage Storage
	memSize uint64
	tele    *telemetry.Registry
}

// WithStorage registers the OS storage API implementation. Without it
// the manager always translates online, exactly like DAISY and Crusoe
// (paper, Section 4.1).
func WithStorage(s Storage) Option { return func(c *config) { c.storage = s } }

// WithMemSize sets the simulated machine's address-space size.
func WithMemSize(n uint64) Option { return func(c *config) { c.memSize = n } }

// WithTelemetry aggregates this manager's metrics and events into an
// existing registry (for multi-run tools such as llva-bench). Without
// it every manager gets a private registry.
func WithTelemetry(reg *telemetry.Registry) Option { return func(c *config) { c.tele = reg } }

// NewManager creates an execution manager for module m on target d,
// writing program output to out.
func NewManager(m *core.Module, d *target.Desc, out io.Writer, opts ...Option) (*Manager, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	tr, err := codegen.New(d, m)
	if err != nil {
		return nil, err
	}
	env := rt.NewEnv(mem.New(cfg.memSize, m.LittleEndian), out)
	mc, err := machine.New(d, m, env)
	if err != nil {
		return nil, err
	}
	// The module stamp ties cached translations to this exact virtual
	// object code.
	enc, err := obj.Encode(m)
	if err != nil {
		return nil, err
	}
	mg := &Manager{
		Module:     m,
		desc:       d,
		storage:    cfg.storage,
		tr:         tr,
		env:        env,
		mc:         mc,
		objStamp:   Stamp(enc),
		redirect:   make(map[string]string),
		translated: make(map[string]*codegen.NativeFunc),
		tele:       cfg.tele,
	}
	if mg.tele == nil {
		mg.tele = telemetry.New()
	}
	mc.SetTelemetry(mg.tele)
	mc.OnJIT = mg.onJIT
	mc.OnIntrinsic = mg.onIntrinsic
	return mg, nil
}

// Machine exposes the underlying simulated processor (for statistics).
func (mg *Manager) Machine() *machine.Machine { return mg.mc }

// Env exposes the runtime environment.
func (mg *Manager) Env() *rt.Env { return mg.env }

func (mg *Manager) cacheKey() string {
	return "native:" + mg.Module.Name + ":" + mg.desc.Name
}

// cachedObject is the gob-serialized cache payload.
type cachedObject struct {
	TargetName string
	Module     string
	Funcs      []*codegen.NativeFunc
}

// Run executes the entry function: cached translation when valid,
// JIT-on-demand otherwise, with write-back of new translations.
func (mg *Manager) Run(entry string, args ...uint64) (uint64, error) {
	loaded := false
	if mg.storage != nil {
		if obj, ok, err := mg.readCache(); err != nil {
			return 0, err
		} else if ok {
			if err := mg.mc.LoadObject(obj); err != nil {
				return 0, err
			}
			mg.tele.Counter(MetricCacheHits).Inc()
			mg.tele.Events().Emit(telemetry.EvCacheHit, mg.cacheKey(), 0)
			loaded = true
		} else {
			mg.tele.Counter(MetricCacheMisses).Inc()
			mg.tele.Events().Emit(telemetry.EvCacheMiss, mg.cacheKey(), 0)
		}
		// A persisted profile (Section 4.2) seeds the software trace
		// cache on every start without re-profiling; on the online-
		// translation path it also re-lays out the virtual object code
		// before the JIT sees it.
		if err := mg.seedTraceCache(!loaded); err != nil {
			return 0, err
		}
	}
	if !loaded {
		// Online translation: every call goes through a stub so SMC
		// invalidation can take effect between invocations.
		mg.mc.CallsViaStubs(true)
		if err := mg.prepareJIT(); err != nil {
			return 0, err
		}
	}
	v, err := mg.mc.Run(entry, args...)
	if werr := mg.writeBack(); werr != nil && err == nil {
		err = werr
	}
	mg.syncStats()
	return v, err
}

// prepareJIT resolves data-segment function pointers to stubs.
func (mg *Manager) prepareJIT() error {
	return mg.mc.PrepareLazy()
}

// TranslateOffline compiles the whole module and stores it in the cache
// without executing anything — the paper's "initiating execution ... but
// flagging it for translation and not actual execution" during OS idle
// time.
func (mg *Manager) TranslateOffline() error {
	if mg.storage == nil {
		return fmt.Errorf("llee: offline translation requires the storage API")
	}
	mg.tele.Events().Emit(telemetry.EvTranslateStart, mg.Module.Name, int64(len(mg.Module.Functions)))
	start := time.Now()
	nobj, err := mg.tr.TranslateModule()
	if err != nil {
		return err
	}
	mg.recordTranslate(mg.Module.Name, time.Since(start).Nanoseconds(), len(nobj.Funcs))
	mg.syncStats()
	return mg.writeCache(nobj.Funcs)
}

func (mg *Manager) readCache() (*codegen.NativeObject, bool, error) {
	data, stamp, ok, err := mg.storage.Read(mg.cacheKey())
	if err != nil || !ok {
		return nil, false, err
	}
	if stamp != mg.objStamp {
		// Out-of-date translation: ignore it (the paper's timestamp
		// check failing).
		mg.tele.Counter(MetricStampMismatches).Inc()
		mg.tele.Events().Emit(telemetry.EvStampMismatch, mg.cacheKey(), 0)
		return nil, false, nil
	}
	var co cachedObject
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&co); err != nil {
		return nil, false, fmt.Errorf("llee: corrupt cached translation: %w", err)
	}
	nobj := &codegen.NativeObject{TargetName: co.TargetName, Module: co.Module}
	for _, f := range co.Funcs {
		nobj.Add(f)
	}
	return nobj, true, nil
}

func (mg *Manager) writeCache(funcs []*codegen.NativeFunc) error {
	var buf bytes.Buffer
	co := cachedObject{TargetName: mg.desc.Name, Module: mg.Module.Name, Funcs: funcs}
	if err := gob.NewEncoder(&buf).Encode(&co); err != nil {
		return err
	}
	return mg.storage.Write(mg.cacheKey(), mg.objStamp, buf.Bytes())
}

// writeBack stores this session's JIT output (merged with any previously
// cached functions) when storage is available and something new exists.
func (mg *Manager) writeBack() error {
	if mg.storage == nil || len(mg.translated) == 0 {
		return nil
	}
	merged := make(map[string]*codegen.NativeFunc)
	if old, ok, err := mg.readCache(); err == nil && ok {
		for _, f := range old.Funcs {
			merged[f.Name] = f
		}
	}
	for n, f := range mg.translated {
		merged[n] = f
	}
	funcs := make([]*codegen.NativeFunc, 0, len(merged))
	for _, f := range mg.Module.Functions {
		if nf, ok := merged[f.Name()]; ok {
			funcs = append(funcs, nf)
		}
	}
	return mg.writeCache(funcs)
}

// onJIT translates one function on demand (honoring SMC redirects) and
// installs its code.
func (mg *Manager) onJIT(name string) (uint64, error) {
	body := name
	if r, ok := mg.redirect[name]; ok {
		body = r
	}
	f := mg.Module.Function(body)
	if f == nil || f.IsDeclaration() {
		return 0, fmt.Errorf("llee: no body for %%%s", body)
	}
	mg.tele.Events().Emit(telemetry.EvJITRequest, name, 0)
	mg.tele.Events().Emit(telemetry.EvTranslateStart, body, 0)
	start := time.Now()
	nf, err := mg.tr.TranslateFunction(f)
	if err != nil {
		return 0, err
	}
	mg.recordTranslate(name, time.Since(start).Nanoseconds(), 1)
	nf.Name = name // install the (possibly replacement) body under the callee's name
	addr, err := mg.mc.InstallCode(nf)
	if err != nil {
		return 0, err
	}
	if body == name {
		mg.translated[name] = nf
	}
	return addr, nil
}

// onIntrinsic handles the intrinsics the machine delegates to the
// execution manager: self-modifying code and the storage API registration.
func (mg *Manager) onIntrinsic(name string, args []uint64) (uint64, error) {
	switch name {
	case "llva.smc.replace":
		if len(args) < 2 {
			return 0, fmt.Errorf("llva.smc.replace: missing arguments")
		}
		tgt, ok1 := mg.mc.NameAt(args[0])
		src, ok2 := mg.mc.NameAt(args[1])
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("llva.smc.replace: arguments are not functions")
		}
		ft, fs := mg.Module.Function(tgt), mg.Module.Function(src)
		if ft == nil || fs == nil || ft.Signature() != fs.Signature() {
			return 0, fmt.Errorf("llva.smc.replace: signature mismatch %%%s vs %%%s", tgt, src)
		}
		mg.redirect[tgt] = src
		mg.tele.Counter(MetricInvalidations).Inc()
		mg.tele.Events().Emit(telemetry.EvInvalidate, tgt, 0)
		// Mark the generated code invalid; regenerated on next invocation
		// (paper, Section 3.4).
		return 0, mg.mc.InvalidateFunction(tgt)
	case "llva.storage.register":
		if len(args) > 0 {
			mg.storageAPIAddr = args[0]
		}
		return 0, nil
	case "llva.storage.get":
		return mg.storageAPIAddr, nil
	case "llva.trap.register":
		// Recorded only: machine-level trap vectoring is outside the
		// simulated processor's scope (the interpreter implements full
		// handler dispatch).
		return 0, nil
	}
	return 0, fmt.Errorf("llee: unhandled intrinsic %%%s", name)
}

// StorageAPIAddr reports the address registered via llva.storage.register.
func (mg *Manager) StorageAPIAddr() uint64 { return mg.storageAPIAddr }
