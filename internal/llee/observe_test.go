package llee

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"llva/internal/minic"
	"llva/internal/prof"
	"llva/internal/target"
)

// spinProg spends nearly all its instructions in %spin — enough retired
// instructions that a fine sampling rate yields a meaningful profile.
const spinProg = `
int spin(int n) {
	int i, s = 0;
	for (i = 0; i < n; i++) s += i ^ (s >> 2);
	return s;
}
int main() {
	print_int(spin(5000)); print_nl();
	return 0;
}
`

// TestSessionSpanTracing: 8 concurrent sessions under one tracer must
// produce a valid Chrome trace_event document with every session's
// lifecycle spans on its own pid lane, carrying the session (and
// tenant) correlation args.
func TestSessionSpanTracing(t *testing.T) {
	m, err := minic.Compile("chain.c", chainProg)
	if err != nil {
		t.Fatal(err)
	}
	tracer := prof.NewTracer()
	sys := NewSystem(WithTracer(tracer))
	defer sys.Close()
	const sessions = 8
	var wg sync.WaitGroup
	ids := make([]uint64, sessions)
	for i := 0; i < sessions; i++ {
		s, err := sys.NewSession(m, target.VX86, io.Discard, WithTenant(fmt.Sprintf("tenant-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = s.ID()
		if s.Tenant() != fmt.Sprintf("tenant-%d", i) {
			t.Fatalf("tenant = %q", s.Tenant())
		}
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			if _, err := s.Run(context.Background(), "main"); err != nil {
				t.Errorf("session %d: %v", s.ID(), err)
			}
		}(s)
	}
	wg.Wait()

	var b bytes.Buffer
	if err := tracer.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	runSpans := map[int]bool{}  // pid -> saw run:main complete span
	newSpans := map[int]bool{}  // pid -> saw session.new
	procNames := map[int]bool{} // pid -> named lane
	sawLoad := false
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "X" && e.Name == "run:main":
			runSpans[e.PID] = true
			if e.Args["session"] == nil || e.Args["tenant"] == nil {
				t.Errorf("run span on pid %d misses correlation args: %v", e.PID, e.Args)
			}
		case e.Ph == "X" && e.Name == "session.new":
			newSpans[e.PID] = true
		case e.Ph == "X" && e.Name == "module.load":
			sawLoad = true
		case e.Ph == "M" && e.Name == "process_name":
			procNames[e.PID] = true
		}
	}
	if !sawLoad {
		t.Error("no module.load span recorded")
	}
	for _, id := range ids {
		if !runSpans[int(id)] {
			t.Errorf("session %d has no complete run:main span", id)
		}
		if !newSpans[int(id)] {
			t.Errorf("session %d has no session.new span", id)
		}
		if !procNames[int(id)] {
			t.Errorf("session %d lane is unnamed", id)
		}
	}
	if tracer.Spans() < sessions*2 {
		t.Errorf("Spans() = %d, want >= %d", tracer.Spans(), sessions*2)
	}
}

// TestGuestProfilePersistence: the sampling profile round-trips through
// the storage API with stamp validation, and a stale or wrong-version
// artifact is rejected (stale: evicted silently; wrong version: loud).
func TestGuestProfilePersistence(t *testing.T) {
	m, err := minic.Compile("spin.c", spinProg)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStorage()
	p := prof.NewProfiler(64)
	sys := NewSystem(WithStorage(st))
	defer sys.Close()
	s, err := sys.NewSession(m, target.VX86, io.Discard, WithProfiler(p))
	if err != nil {
		t.Fatal(err)
	}
	if s.Profiler() != p {
		t.Fatal("Profiler() does not return the attached profiler")
	}
	if _, err := s.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if p.Total() == 0 {
		t.Fatal("no samples recorded")
	}
	if err := s.StoreGuestProfile(); err != nil {
		t.Fatal(err)
	}
	a, ok, err := s.LoadGuestProfile()
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if a.Total != p.Total() || a.Target != "vx86" || a.Version != prof.ArtifactVersion {
		t.Errorf("artifact = %s, profiler total %d", a, p.Total())
	}
	hot := a.HotFuncs(0.5)
	if len(hot) != 1 || hot[0].Name != "spin" {
		t.Errorf("HotFuncs = %+v, want [spin]", hot)
	}

	key := "guestprof:" + s.Module().Name + ":vx86"
	good, stamp, ok, err := st.Read(key)
	if err != nil || !ok {
		t.Fatalf("raw read: ok=%v err=%v", ok, err)
	}

	// A stale stamp (different object code) is a silent miss and evicts.
	if err := st.Write(key, "stale-stamp", good); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.LoadGuestProfile(); err != nil || ok {
		t.Fatalf("stale profile: ok=%v err=%v, want miss", ok, err)
	}
	if _, _, ok, _ := st.Read(key); ok {
		t.Error("stale profile was not evicted")
	}

	// A future format version under a valid stamp must fail loudly.
	bad := bytes.Replace(good, []byte(" v1\n"), []byte(" v99\n"), 1)
	if err := st.Write(key, stamp, bad); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadGuestProfile(); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("wrong-version load: err = %v, want version error", err)
	}
}

// TestProfilerOffIsBitIdentical: a session without a profiler and one
// with must retire identical instruction and cycle counts — the
// acceptance bar for "observability is free when off, deterministic
// when on".
func TestProfilerOffIsBitIdentical(t *testing.T) {
	m, err := minic.Compile("spin.c", spinProg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *prof.Profiler) Result {
		sys := NewSystem()
		defer sys.Close()
		opts := []SessionOption{}
		if p != nil {
			opts = append(opts, WithProfiler(p))
		}
		s, err := sys.NewSession(m, target.VX86, io.Discard, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background(), "main")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(nil)
	on := run(prof.NewProfiler(256))
	if off.Instrs != on.Instrs || off.Cycles != on.Cycles {
		t.Errorf("profiler perturbs execution: off instrs=%d cycles=%d, on instrs=%d cycles=%d",
			off.Instrs, off.Cycles, on.Instrs, on.Cycles)
	}
}
