package llee

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/mem"
	"llva/internal/minic"
	"llva/internal/target"
	"llva/internal/workloads"
)

// TestResetDifferentialWorkloads is the tentpole correctness gate: over
// the whole workload suite on both targets, a pooled session that ran
// once and was Reset must produce a bit-identical second run — same
// value, same instruction and cycle counts, same output — as a fresh
// session on the same preloaded state.
func TestResetDifferentialWorkloads(t *testing.T) {
	suite := workloads.All()
	if testing.Short() {
		suite = suite[:4]
	}
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		for _, w := range suite {
			w := w
			t.Run(d.Name+"/"+w.Name, func(t *testing.T) {
				m, err := w.Compile()
				if err != nil {
					t.Fatal(err)
				}
				sys := NewSystem()
				if err := sys.Preload(m, d); err != nil {
					t.Fatal(err)
				}

				var freshOut bytes.Buffer
				fresh, err := sys.NewSession(m, d, &freshOut)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.Run(context.Background(), "main")
				if err != nil {
					t.Fatal(err)
				}

				var out1 bytes.Buffer
				sess, err := sys.NewSession(m, d, &out1, WithReuse(true))
				if err != nil {
					t.Fatal(err)
				}
				if !sess.Resettable() {
					t.Fatal("preloaded WithReuse session is not resettable")
				}
				r1, err := sess.Run(context.Background(), "main")
				if err != nil {
					t.Fatal(err)
				}
				var out2 bytes.Buffer
				if err := sess.Reset(&out2, 0, "t2"); err != nil {
					t.Fatal(err)
				}
				r2, err := sess.Run(context.Background(), "main")
				if err != nil {
					t.Fatal(err)
				}

				for i, r := range []Result{r1, r2} {
					if r.Value != want.Value || r.Instrs != want.Instrs || r.Cycles != want.Cycles {
						t.Errorf("run %d: {v=%d i=%d c=%d}, fresh {v=%d i=%d c=%d}",
							i+1, r.Value, r.Instrs, r.Cycles, want.Value, want.Instrs, want.Cycles)
					}
				}
				if out1.String() != freshOut.String() || out2.String() != freshOut.String() {
					t.Errorf("output diverged: fresh %d bytes, run1 %d, run2 %d",
						freshOut.Len(), out1.Len(), out2.Len())
				}
			})
		}
	}
}

// secretProg plants a recognizable pattern across a heap block and the
// stack, exactly what a malicious prior tenant would leave behind for
// the next tenant of a pooled session to harvest.
const secretProg = `
int main() {
	int i;
	int buf[64];
	int *p = malloc(8192);
	for (i = 0; i < 2048; i++) p[i] = 0x5EC2E75E;
	for (i = 0; i < 64; i++) buf[i] = 0x5EC2E75E;
	return p[0];
}
`

// TestResetErasesSecret is the adversarial isolation gate: after tenant
// A's run planted a secret, Reset hands the session to tenant B with no
// trace of it anywhere in the address space — verified by a host-side
// scan of the entire guest memory, which is strictly stronger than
// anything guest code could observe.
func TestResetErasesSecret(t *testing.T) {
	m, err := minic.Compile("secret.c", secretProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem()
	if err := sys.Preload(m, target.VX86); err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(m, target.VX86, io.Discard, WithReuse(true), WithTenant("A"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}

	needle := bytes.Repeat([]byte{0x5e, 0xe7, 0xc2, 0x5e}, 4) // 16-byte run of the secret
	gm := sess.Env().Mem
	scan := func() bool {
		view, err := gm.Bytes(mem.NullGuard, gm.Size()-mem.NullGuard)
		if err != nil {
			t.Fatal(err)
		}
		return bytes.Contains(view, needle)
	}
	if !scan() {
		t.Fatal("sanity: secret not found in memory after tenant A's run")
	}
	if err := sess.Reset(io.Discard, 0, "B"); err != nil {
		t.Fatal(err)
	}
	if scan() {
		t.Fatal("secret from tenant A survived Reset into tenant B's session")
	}
}

// TestResetTenantAccounting: after Reset re-arms the session for a new
// tenant, cycles bill to the new tenant and the old tenant's ledger
// stops moving.
func TestResetTenantAccounting(t *testing.T) {
	m, err := minic.Compile("acct.c", `int main() { int i, a = 0; for (i = 0; i < 1000; i++) a += i; return a; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem()
	if err := sys.Preload(m, target.VX86); err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(m, target.VX86, io.Discard, WithReuse(true), WithTenant("A"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	aCycles := sys.TenantUsage("A").Cycles
	if aCycles == 0 {
		t.Fatal("tenant A billed no cycles")
	}
	if err := sess.Reset(io.Discard, 0, "B"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if got := sys.TenantUsage("A").Cycles; got != aCycles {
		t.Errorf("tenant A's ledger moved after handoff: %d -> %d", aCycles, got)
	}
	if got := sys.TenantUsage("B").Cycles; got != aCycles {
		t.Errorf("tenant B billed %d cycles, want %d (deterministic rerun)", got, aCycles)
	}
}

// TestOnlineSessionNotResettable: without Preload the module state is
// online (lazy JIT, nondeterministic install order) — WithReuse must
// not make such a session poolable.
func TestOnlineSessionNotResettable(t *testing.T) {
	m := compileTest(t)
	sys := NewSystem()
	sess, err := sys.NewSession(m, target.VX86, io.Discard, WithReuse(true))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Resettable() {
		t.Fatal("online session reports Resettable")
	}
	if err := sess.Reset(io.Discard, 0, "x"); !errors.Is(err, ErrNotReusable) {
		t.Fatalf("Reset on online session = %v, want ErrNotReusable", err)
	}
}

// TestSMCRedirectDisqualifiesReset: a run that self-modifies via
// llva.smc.replace leaves the session carrying a private redirect map;
// it must drop out of the pool rather than leak v2 into the next
// tenant's "fresh" session.
func TestSMCRedirectDisqualifiesReset(t *testing.T) {
	src := `
declare void %llva.smc.replace(sbyte* %t, sbyte* %s)
int %v1(int %x) {
entry:
    %r = add int %x, 1
    ret int %r
}
int %v2(int %x) {
entry:
    %r = add int %x, 2
    ret int %r
}
int %main() {
entry:
    %t = cast int (int)* %v1 to sbyte*
    %s = cast int (int)* %v2 to sbyte*
    call void %llva.smc.replace(sbyte* %t, sbyte* %s)
    %r = call int %v1(int 1)
    ret int %r
}
`
	m, err := asm.Parse("smc", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem()
	if err := sys.Preload(m, target.VX86); err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(m, target.VX86, io.Discard, WithReuse(true))
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Resettable() {
		t.Fatal("session not resettable before the SMC run")
	}
	// Preloaded states run with offline direct-call linkage (warm-cache
	// semantics): the already-resolved call still lands in v1. The
	// redirect map is recorded regardless — and that is what must evict
	// the session from any pool.
	res, err := sess.Run(context.Background(), "main")
	if err != nil {
		t.Fatal(err)
	}
	if int32(res.Value) != 2 {
		t.Fatalf("smc run = %d, want 2 (offline direct-call semantics)", int32(res.Value))
	}
	if sess.Resettable() {
		t.Fatal("session still resettable after acquiring an SMC redirect")
	}
	if err := sess.Reset(io.Discard, 0, "x"); !errors.Is(err, ErrNotReusable) {
		t.Fatalf("Reset after SMC = %v, want ErrNotReusable", err)
	}
}

// TestResetGasRearm: gas budgets re-arm per handoff — a pooled session
// inherits nothing of the previous run's spend, and an out-of-gas run
// still resets cleanly (traps unwind at block boundaries).
func TestResetGasRearm(t *testing.T) {
	m := compileTest(t)
	sys := NewSystem()
	if err := sys.Preload(m, target.VX86); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	sess, err := sys.NewSession(m, target.VX86, &out, WithReuse(true), WithGas(200))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background(), "main"); !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("tiny budget run = %v, want ErrOutOfGas", err)
	}
	out.Reset()
	if err := sess.Reset(&out, 10_000_000, "B"); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background(), "main")
	if err != nil {
		t.Fatalf("re-armed run: %v", err)
	}
	if out.String() != "328350\n" || res.Value != 0 {
		t.Errorf("re-armed run: value=%d out=%q", res.Value, out.String())
	}
}
