package llee

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/image"
	"llva/internal/llee/pipeline"
	"llva/internal/mem"
	"llva/internal/obj"
	"llva/internal/prof"
	"llva/internal/target"
	"llva/internal/telemetry"
	"llva/internal/trace"
)

// System is the process-wide half of the LLEE: it owns the storage API
// binding, the telemetry registry, the translation worker-pool size,
// and — per module and target — a shared native-code cache with
// single-flight deduplication, so N concurrent sessions of the same
// module JIT each demanded function exactly once. Per-run state
// (machine, memory, runtime environment) lives in Session objects
// created with NewSession. A System is safe for concurrent use.
type System struct {
	storage   Storage // nil: no OS storage API registered
	tele      *telemetry.Registry
	tracer    *prof.Tracer // nil: span tracing off (all hooks no-op)
	workers   int
	speculate bool
	tier2     bool

	// sessionSeq hands out session IDs — the "pid" lane of the span
	// trace, and the correlation key across run/translate spans.
	sessionSeq atomic.Uint64

	// tenants accumulates per-tenant usage (tenant.go): every Run of a
	// WithTenant session accrues its cycles here, the unit of account
	// the serving layer's aggregate gas budgets draw against.
	tenantMu sync.Mutex
	tenants  map[string]*TenantUsage

	mu     sync.Mutex
	mods   map[string]*moduleState // stamp + ":" + target name
	closed bool
}

// Options come in two types, one per scope, so the compiler rejects a
// session setting passed to NewSystem (and vice versa) instead of the
// old shared-config design silently accepting and ignoring it:
//
//	SystemOption   process-wide policy, fixed at NewSystem — storage,
//	               telemetry registry, tracer, worker pool, speculation,
//	               tier-2
//	SessionOption  per-run state, fixed at System.NewSession — memory
//	               size, gas budget, tenant label, profiler, flight
//	               recorder
//
// System.NewSession(m, d, out, ...SessionOption) is the one blessed
// session constructor.
type SystemOption func(*systemConfig)

// SessionOption configures one Session at System.NewSession.
type SessionOption func(*sessionConfig)

type systemConfig struct {
	storage          Storage
	tele             *telemetry.Registry
	tracer           *prof.Tracer
	translateWorkers int
	speculate        bool
	tier2            bool
}

type sessionConfig struct {
	memSize        uint64
	gas            uint64
	tenant         string
	profiler       *prof.Profiler
	flightRecorder int
	reuse          bool
}

// tier2MinShare is the exclusive-sample share above which a function is
// considered hot enough for background tier-2 re-translation.
const tier2MinShare = 0.02

// WithStorage registers the OS storage API implementation. Without it
// the system always translates online, exactly like DAISY and Crusoe
// (paper, Section 4.1).
func WithStorage(s Storage) SystemOption { return func(c *systemConfig) { c.storage = s } }

// WithMemSize sets a session's simulated address-space size.
func WithMemSize(n uint64) SessionOption { return func(c *sessionConfig) { c.memSize = n } }

// WithGas sets a session's per-run gas budget in simulated cycles (0:
// unmetered). Each Run starts a fresh allowance; a run that exhausts it
// stops at the next block boundary with an error matching ErrOutOfGas
// whose *machine.GasError carries the exact cycles consumed. The meter
// reads the deterministic virtual clock, never wall time, so the same
// program with the same budget stops at the same cycle on every run.
func WithGas(budget uint64) SessionOption { return func(c *sessionConfig) { c.gas = budget } }

// WithTelemetry aggregates the system's metrics and events into an
// existing registry (for multi-run tools such as llva-bench). Without
// it every system gets a private registry.
func WithTelemetry(reg *telemetry.Registry) SystemOption {
	return func(c *systemConfig) { c.tele = reg }
}

// WithTranslateWorkers sets the translation worker-pool size used by
// offline translation and speculative JIT (0 or unset: GOMAXPROCS).
func WithTranslateWorkers(n int) SystemOption {
	return func(c *systemConfig) { c.translateWorkers = n }
}

// WithSpeculation toggles speculative background JIT: when a function
// is translated on demand, its static callees are queued for
// ahead-of-time translation on background workers (default on).
func WithSpeculation(on bool) SystemOption { return func(c *systemConfig) { c.speculate = on } }

// WithTier2 toggles profile-guided tier-2 translation (default off,
// system-scoped; requires the storage API). When a stamp-valid guest
// profile exists for a module, its hot functions are re-translated with
// superblock formation and hot inlining: eagerly on cache-warm offline
// starts, and in the background — hot-swapped at block boundaries while
// tier-1 code keeps running — on online starts. Tier-2 code is cached
// under a profile-stamped key, so later starts skip straight to it.
func WithTier2(on bool) SystemOption { return func(c *systemConfig) { c.tier2 = on } }

// WithTracer attaches a span tracer to the system: the session
// lifecycle (load, translate, install, run, cancel, write-back) and
// the pipeline workers record begin/end spans carrying session and
// tenant IDs, exportable as Chrome trace_event JSON (Perfetto).
func WithTracer(t *prof.Tracer) SystemOption { return func(c *systemConfig) { c.tracer = t } }

// WithProfiler attaches a guest-level sampling profiler to a session's
// machine (one profiler may be shared by many sessions — it aggregates
// under its own lock). Sampling is deterministic: simulated instruction
// and cycle counts are bit-identical with the profiler on or off.
func WithProfiler(p *prof.Profiler) SessionOption {
	return func(c *sessionConfig) { c.profiler = p }
}

// WithReuse marks the session a candidate for pooled reuse: an offline
// (fully pre-translated) session seals its machine after setup so
// Session.Reset can later return it to a bit-identical pristine state
// instead of the caller discarding it. Online sessions and sessions
// with a profiler attached never become reusable — Resettable reports
// the outcome. Default off: plain sessions skip the seal snapshot and
// the per-store dirty-tracking branch.
func WithReuse(on bool) SessionOption { return func(c *sessionConfig) { c.reuse = on } }

// WithTenant labels a session with a tenant ID: carried on its trace
// spans, and every Run's cycles accrue to the tenant's usage
// (System.TenantUsage, llee.tenant.* telemetry).
func WithTenant(id string) SessionOption { return func(c *sessionConfig) { c.tenant = id } }

// WithFlightRecorder arms a session machine's trap-time flight
// recorder: an unhandled trap snapshots registers, the virtual
// backtrace, a disassembly window around the faulting PC, and the last
// events telemetry events into Session.LastCrash (zero steady-state
// cost).
func WithFlightRecorder(events int) SessionOption {
	return func(c *sessionConfig) { c.flightRecorder = events }
}

// NewSystem creates a process-wide execution-manager instance.
func NewSystem(opts ...SystemOption) *System {
	cfg := systemConfig{speculate: true}
	for _, o := range opts {
		o(&cfg)
	}
	sys := &System{
		storage:   cfg.storage,
		tele:      cfg.tele,
		tracer:    cfg.tracer,
		workers:   cfg.translateWorkers,
		speculate: cfg.speculate,
		tier2:     cfg.tier2,
		mods:      make(map[string]*moduleState),
	}
	if sys.tele == nil {
		sys.tele = telemetry.New()
	}
	sys.tracer.NameProcess(0, "llee system")
	return sys
}

// Tracer returns the attached span tracer (nil when tracing is off;
// prof.Tracer methods are nil-safe, so the result is always usable).
func (sys *System) Tracer() *prof.Tracer { return sys.tracer }

// Telemetry returns the system's metric registry (shared by all of its
// sessions and their machines).
func (sys *System) Telemetry() *telemetry.Registry { return sys.tele }

// Storage returns the registered storage API (nil when none).
func (sys *System) Storage() Storage { return sys.storage }

// Translate compiles every defined function of m for d on the system's
// worker pool and returns the native object, without executing anything
// or touching storage — the static half of llva-llc. The output is
// byte-identical to sequential translation.
func (sys *System) Translate(m *core.Module, d *target.Desc) (*codegen.NativeObject, error) {
	ms, err := sys.state(m, d)
	if err != nil {
		return nil, err
	}
	return ms.translateModule()
}

// Preload makes module m's state on target d offline before any session
// runs: the whole module is translated eagerly on the worker pool (and
// persisted when the storage API is registered), so every subsequent
// NewSession installs direct-call native code up front instead of
// JITting online. This is what makes sessions poolable — only offline
// sessions, whose installed code is immutable, can be sealed for reuse
// (WithReuse). Without Preload, the first session of a fresh module
// creates its state online and it stays online for the System's
// lifetime. Idempotent and safe under concurrency; sessions created
// before the flip stay online and remain correct.
func (sys *System) Preload(m *core.Module, d *target.Desc) error {
	ms, err := sys.state(m, d)
	if err != nil {
		return err
	}
	return ms.ensureOffline()
}

// ensureOffline flips an online module state to offline by translating
// the whole module now. The flip publishes nobj/loaded under ms.mu —
// NewSession snapshots them under the same lock — and persists the
// translation so the next process starts warm.
func (ms *moduleState) ensureOffline() error {
	ms.preMu.Lock()
	defer ms.preMu.Unlock()
	ms.mu.Lock()
	online := ms.online
	ms.mu.Unlock()
	if !online {
		return nil
	}
	nobj, err := ms.translateModule()
	if err != nil {
		return err
	}
	loaded := make(map[string]*codegen.NativeFunc, len(nobj.Funcs))
	for _, nf := range nobj.Funcs {
		loaded[nf.Name] = nf
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.sys.storage != nil {
		if err := ms.writeCache(nobj.Funcs); err != nil {
			return err
		}
	}
	ms.nobj = nobj
	ms.loaded = loaded
	ms.online = false
	return nil
}

// Close flushes every module's pending write-back and stops background
// speculation (counting unconsumed speculative translations as waste —
// they are still persisted, turning them into a warmer next start).
// Existing sessions stay usable afterwards: demands translate inline.
// Close is idempotent; the first storage error is returned.
func (sys *System) Close() error {
	sys.mu.Lock()
	if sys.closed {
		sys.mu.Unlock()
		return nil
	}
	sys.closed = true
	mods := make([]*moduleState, 0, len(sys.mods))
	for _, ms := range sys.mods {
		mods = append(mods, ms)
	}
	sys.mu.Unlock()
	var first error
	for _, ms := range mods {
		ms.spec.Close()
		if err := ms.writeBack(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// moduleState is the system-wide state of one module on one target,
// keyed by content stamp: the translator, the shared single-flight
// translation cache, the decoded offline-cache contents, and the
// profile-seeded trace-cache state. It is created once — under the
// system lock, before any session's machine exists — so the
// profile-driven relayout of the module happens exactly once.
type moduleState struct {
	sys    *System
	module *core.Module // the canonical (possibly relaid-out) module copy
	desc   *target.Desc
	stamp  string

	tr   *codegen.Translator
	spec *pipeline.Speculator

	// img is the prototype data image, built once per module state and
	// cloned per session: repeated NewSession skips global layout and
	// initializer encoding. Valid for the state's whole lifetime —
	// relayout reorders blocks, never globals.
	img *image.Data

	// online reports no valid cached translation existed at creation:
	// sessions JIT on demand and write translations back.
	online bool
	// nobj/loaded hold the decoded offline-cache contents on a hit.
	nobj   *codegen.NativeObject
	loaded map[string]*codegen.NativeFunc

	// callWeights orders speculation hottest-first when a persisted
	// profile (Section 4.2) was loaded: function name -> call count.
	callWeights   map[string]uint64
	traceStats    trace.Stats
	profileSeeded bool

	// Tier-2 state, armed by initTier2 when WithTier2 is on and a
	// stamp-valid guest profile exists. These four are written once under
	// the system lock, before any session exists, then only read:
	// guestArt is the guiding profile, profStamp its content stamp (the
	// tier-2 cache qualifier), tr2 the profile-guided translator and hot
	// the HotFuncs(tier2MinShare) candidate set.
	guestArt  *prof.Artifact
	profStamp string
	tr2       *codegen.Translator
	hot       map[string]bool
	// loaded2 holds tier-2 code decoded from the profile-stamped cache
	// (or translated eagerly on a warm tier-1 start); written once in
	// initTier2, read-only after.
	loaded2 map[string]*codegen.NativeFunc

	// preMu serializes Preload's eager whole-module translation so
	// concurrent Preloads of one module do the work once.
	preMu sync.Mutex

	mu      sync.Mutex
	flushed int // settled translations persisted by the last write-back
	// done2 collects tier-2 translations delivered by the background
	// workers; subs are the online sessions hot-swap deliveries fan out
	// to. Both guarded by mu.
	done2    map[string]*codegen.NativeFunc
	subs     []*Session
	flushed2 int
}

// state returns (creating on first use) the shared per-module state for
// m on d. Modules are identified by content stamp, so two separately
// compiled but identical modules share one state; the first caller's
// module object becomes the canonical copy every session executes.
func (sys *System) state(m *core.Module, d *target.Desc) (*moduleState, error) {
	endLoad := sys.tracer.Begin(0, 0, "llee", "module.load",
		map[string]any{"module": m.Name, "target": d.Name})
	defer endLoad()
	enc, err := obj.Encode(m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModule, err)
	}
	stamp := Stamp(enc)
	sys.mu.Lock()
	defer sys.mu.Unlock()
	if sys.closed {
		return nil, errors.New("llee: system is closed")
	}
	key := stamp + ":" + d.Name
	if ms := sys.mods[key]; ms != nil {
		return ms, nil
	}
	tr, err := codegen.New(d, m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModule, err)
	}
	tr.SetTelemetry(sys.tele)
	ms := &moduleState{sys: sys, module: m, desc: d, stamp: stamp, tr: tr, online: true}
	if sys.storage != nil {
		// The paper's translation strategy: look for a cached
		// translation, validate its stamp, and fall back to online
		// translation when any condition fails. A corrupt entry is a
		// miss — evicted and surfaced through telemetry, never an error.
		nobj, ok, err := ms.readCache()
		if err != nil && !errors.Is(err, errCorruptCache) {
			return nil, err
		}
		if ok {
			ms.nobj = nobj
			ms.loaded = make(map[string]*codegen.NativeFunc, len(nobj.Funcs))
			for _, nf := range nobj.Funcs {
				ms.loaded[nf.Name] = nf
			}
			ms.online = false
			sys.tele.Counter(MetricCacheHits).Inc()
			sys.tele.Events().Emit(telemetry.EvCacheHit, ms.cacheKey(), 0)
		} else {
			sys.tele.Counter(MetricCacheMisses).Inc()
			sys.tele.Events().Emit(telemetry.EvCacheMiss, ms.cacheKey(), 0)
		}
		// A persisted profile (Section 4.2) seeds the software trace
		// cache once per module state; on the online path it also
		// re-lays out the virtual object code — here, before any session
		// machine or translation exists, so every session sees one
		// consistent block order.
		if err := ms.seedTraceCache(ms.online); err != nil {
			return nil, err
		}
		// Tier-2 arms only when a stamp-valid guest profile exists: the
		// first run of a fresh module is always plain tier-1, and the
		// profile a session stores pays off from the next System on.
		if sys.tier2 {
			if err := ms.initTier2(); err != nil {
				return nil, err
			}
		}
	}
	img, err := image.Build(m, mem.NullGuard)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModule, err)
	}
	ms.img = img
	ms.spec = pipeline.NewSpeculator(tr, sys.workers, sys.tele)
	ms.spec.SetTracer(sys.tracer)
	if ms.tr2 != nil {
		ms.spec.SetTier2(ms.tr2, ms.onTierUp)
	}
	sys.mods[key] = ms
	return ms, nil
}

// initTier2 loads the persisted guest profile and prepares the tier-2
// translator, hot set, and code: from the profile-stamped native2 cache
// when valid, or — on a warm tier-1 start, where demand translation
// never runs and background tier-up would have nothing to swap into a
// direct-call object — by eagerly translating the hot functions now,
// under the system lock, so every session of this module state sees the
// same optimized code. Runs once per module state.
func (ms *moduleState) initTier2() error {
	art, ok, err := ms.loadGuestProfile()
	if err != nil || !ok {
		return err
	}
	enc, err := art.Encode()
	if err != nil {
		return err
	}
	ms.guestArt = art
	ms.profStamp = Stamp(enc)
	ms.tr2 = ms.tr.WithTier2(art)
	ms.hot = make(map[string]bool)
	for _, fs := range art.HotFuncs(tier2MinShare) {
		ms.hot[fs.Name] = true
	}
	nobj2, ok, err := ms.readCache2()
	if err != nil && !errors.Is(err, errCorruptCache) {
		return err
	}
	if ok {
		ms.loaded2 = make(map[string]*codegen.NativeFunc, len(nobj2.Funcs))
		for _, nf := range nobj2.Funcs {
			ms.loaded2[nf.Name] = nf
		}
		ms.sys.tele.Counter(MetricCacheHits).Inc()
		ms.sys.tele.Events().Emit(telemetry.EvCacheHit, ms.cacheKey2(), 0)
		return nil
	}
	if !ms.online {
		ms.loaded2 = make(map[string]*codegen.NativeFunc, len(ms.hot))
		for _, f := range ms.module.Functions {
			if f.IsDeclaration() || !ms.hot[f.Name()] {
				continue
			}
			nf, err := ms.tr2.TranslateFunction(f)
			if err != nil {
				// Tier-1 code is always a correct stand-in.
				continue
			}
			ms.loaded2[f.Name()] = nf
		}
		if len(ms.loaded2) > 0 {
			return ms.writeCache2(ms.tier2Funcs(ms.loaded2, nil))
		}
	}
	return nil
}

// cacheKey2 / stamp2 qualify the tier-2 cache entry by both the module
// content and the guiding profile: new object code or a different
// profile each invalidate it.
func (ms *moduleState) cacheKey2() string {
	return "native2:" + ms.module.Name + ":" + ms.desc.Name
}

func (ms *moduleState) stamp2() string { return ms.stamp + "+" + ms.profStamp }

func (ms *moduleState) readCache2() (*codegen.NativeObject, bool, error) {
	tele := ms.sys.tele
	data, stamp, ok, err := ms.sys.storage.Read(ms.cacheKey2())
	if err != nil || !ok {
		return nil, false, err
	}
	if stamp != ms.stamp2() {
		tele.Counter(MetricStampMismatches).Inc()
		tele.Events().Emit(telemetry.EvStampMismatch, ms.cacheKey2(), 0)
		ms.evictCache(ms.cacheKey2())
		return nil, false, nil
	}
	co, err := decodeCachedObject(data)
	if err != nil {
		tele.Counter(MetricCacheCorrupt).Inc()
		tele.Events().Emit(telemetry.EvCacheCorrupt, ms.cacheKey2(), 0)
		ms.evictCache(ms.cacheKey2())
		return nil, false, fmt.Errorf("llee: %w", err)
	}
	nobj := &codegen.NativeObject{TargetName: co.TargetName, Module: co.Module}
	for _, f := range co.Funcs {
		nobj.Add(f)
	}
	return nobj, true, nil
}

func (ms *moduleState) writeCache2(funcs []*codegen.NativeFunc) error {
	co := cachedObject{TargetName: ms.desc.Name, Module: ms.module.Name, Funcs: funcs}
	return ms.sys.storage.Write(ms.cacheKey2(), ms.stamp2(), encodeCachedObject(&co))
}

// tier2Funcs merges two tier-2 code maps (fresh wins) into module
// function order — the deterministic cache layout.
func (ms *moduleState) tier2Funcs(cached, fresh map[string]*codegen.NativeFunc) []*codegen.NativeFunc {
	return mergeForWriteBack(ms.module, cached, fresh)
}

// onTierUp receives one finished background tier-2 translation (on a
// worker goroutine) and fans it out to every subscribed session for
// hot-swap at its machine's next block boundary.
func (ms *moduleState) onTierUp(name string, nf *codegen.NativeFunc) {
	ms.mu.Lock()
	if ms.done2 == nil {
		ms.done2 = make(map[string]*codegen.NativeFunc)
	}
	ms.done2[name] = nf
	subs := append([]*Session(nil), ms.subs...)
	ms.mu.Unlock()
	ms.sys.tele.Events().Emit(telemetry.EvTranslateEnd, "tier2:"+name, 0)
	for _, s := range subs {
		s.enqueueSwap(nf)
	}
}

// subscribe registers a session for tier-up hot-swap delivery and
// replays any translations that finished before it existed.
func (ms *moduleState) subscribe(s *Session) {
	ms.mu.Lock()
	ms.subs = append(ms.subs, s)
	ready := make([]*codegen.NativeFunc, 0, len(ms.done2))
	for _, nf := range ms.done2 {
		ready = append(ready, nf)
	}
	ms.mu.Unlock()
	for _, nf := range ready {
		s.enqueueSwap(nf)
	}
}

// tier2For returns the best available tier-2 code for name, or nil.
func (ms *moduleState) tier2For(name string) *codegen.NativeFunc {
	if ms.tr2 == nil {
		return nil
	}
	ms.mu.Lock()
	nf := ms.done2[name]
	ms.mu.Unlock()
	if nf == nil {
		nf = ms.loaded2[name]
	}
	return nf
}

func (ms *moduleState) cacheKey() string {
	return "native:" + ms.module.Name + ":" + ms.desc.Name
}

// cachedObject is the serialized cache payload.
type cachedObject struct {
	TargetName string
	Module     string
	Funcs      []*codegen.NativeFunc
}

// evictCache deletes a dead (stale or corrupt) cache blob so garbage
// does not accumulate across recompiles. Best-effort: a failed delete
// is surfaced through telemetry, never as an execution error.
func (ms *moduleState) evictCache(key string) {
	tele := ms.sys.tele
	if err := ms.sys.storage.Delete(key); err != nil {
		tele.Events().Emit(telemetry.EvCacheEvicted, key+": "+err.Error(), -1)
		return
	}
	tele.Counter(MetricCacheEvictions).Inc()
	tele.Events().Emit(telemetry.EvCacheEvicted, key, 0)
}

func (ms *moduleState) readCache() (*codegen.NativeObject, bool, error) {
	tele := ms.sys.tele
	data, stamp, ok, err := ms.sys.storage.Read(ms.cacheKey())
	if err != nil || !ok {
		return nil, false, err
	}
	if stamp != ms.stamp {
		// Out-of-date translation: ignore it (the paper's timestamp
		// check failing) and evict the dead blob.
		tele.Counter(MetricStampMismatches).Inc()
		tele.Events().Emit(telemetry.EvStampMismatch, ms.cacheKey(), 0)
		ms.evictCache(ms.cacheKey())
		return nil, false, nil
	}
	co, err := decodeCachedObject(data)
	if err != nil {
		tele.Counter(MetricCacheCorrupt).Inc()
		tele.Events().Emit(telemetry.EvCacheCorrupt, ms.cacheKey(), 0)
		ms.evictCache(ms.cacheKey())
		return nil, false, fmt.Errorf("llee: %w", err)
	}
	nobj := &codegen.NativeObject{TargetName: co.TargetName, Module: co.Module}
	for _, f := range co.Funcs {
		nobj.Add(f)
	}
	return nobj, true, nil
}

func (ms *moduleState) writeCache(funcs []*codegen.NativeFunc) error {
	co := cachedObject{TargetName: ms.desc.Name, Module: ms.module.Name, Funcs: funcs}
	return ms.sys.storage.Write(ms.cacheKey(), ms.stamp, encodeCachedObject(&co))
}

// writeBack persists the shared cache's settled translations — demanded
// by any session plus unconsumed speculative ones — merged with the
// offline-cache contents decoded at creation. It never re-reads
// storage, and skips the write when nothing settled since the last
// flush. Called after every online run and at System.Close.
func (ms *moduleState) writeBack() error {
	if ms.sys.storage == nil {
		return nil
	}
	var first error
	done := ms.spec.Completed()
	ms.mu.Lock()
	if len(done) != 0 && len(done) != ms.flushed {
		if err := ms.writeCache(mergeForWriteBack(ms.module, ms.loaded, done)); err != nil {
			first = err
		} else {
			ms.flushed = len(done)
		}
	}
	ms.mu.Unlock()
	if err := ms.writeBack2(); err != nil && first == nil {
		first = err
	}
	return first
}

// writeBack2 persists background tier-up results under the
// profile-stamped tier-2 cache key, merged with what was already loaded,
// so the next start of this module+profile skips straight to optimized
// code.
func (ms *moduleState) writeBack2() error {
	if ms.tr2 == nil {
		return nil
	}
	done2 := ms.spec.CompletedTier2()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if len(done2) == 0 || len(done2) == ms.flushed2 {
		return nil
	}
	if err := ms.writeCache2(ms.tier2Funcs(ms.loaded2, done2)); err != nil {
		return err
	}
	ms.flushed2 = len(done2)
	return nil
}

// mergeForWriteBack merges previously cached translations with fresh
// ones (fresh wins on collision) and returns them in module function
// order — the deterministic cache layout. Names that are not module
// functions are dropped.
func mergeForWriteBack(m *core.Module, cached, fresh map[string]*codegen.NativeFunc) []*codegen.NativeFunc {
	merged := make(map[string]*codegen.NativeFunc, len(cached)+len(fresh))
	for n, f := range cached {
		merged[n] = f
	}
	for n, f := range fresh {
		merged[n] = f
	}
	funcs := make([]*codegen.NativeFunc, 0, len(merged))
	for _, f := range m.Functions {
		if nf, ok := merged[f.Name()]; ok {
			funcs = append(funcs, nf)
		}
	}
	return funcs
}

// translateModule compiles the whole module on the worker pool and
// records the batch in telemetry.
func (ms *moduleState) translateModule() (*codegen.NativeObject, error) {
	tele := ms.sys.tele
	tele.Events().Emit(telemetry.EvTranslateStart, ms.module.Name, int64(len(ms.module.Functions)))
	start := time.Now()
	nobj, err := pipeline.TranslateModule(ms.tr, ms.sys.workers, tele)
	if err != nil {
		return nil, err
	}
	ms.sys.recordTranslate(ms.module.Name, time.Since(start).Nanoseconds(), len(nobj.Funcs))
	return nobj, nil
}

// translateOffline compiles the whole module and stores it in the cache
// without executing anything — the paper's "flagging it for translation
// and not actual execution" during OS idle time.
func (ms *moduleState) translateOffline() error {
	if ms.sys.storage == nil {
		return fmt.Errorf("llee: offline translation requires the storage API")
	}
	nobj, err := ms.translateModule()
	if err != nil {
		return err
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.writeCache(nobj.Funcs)
}
