package llee

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/llee/pipeline"
	"llva/internal/obj"
	"llva/internal/prof"
	"llva/internal/target"
	"llva/internal/telemetry"
	"llva/internal/trace"
)

// System is the process-wide half of the LLEE: it owns the storage API
// binding, the telemetry registry, the translation worker-pool size,
// and — per module and target — a shared native-code cache with
// single-flight deduplication, so N concurrent sessions of the same
// module JIT each demanded function exactly once. Per-run state
// (machine, memory, runtime environment) lives in Session objects
// created with NewSession. A System is safe for concurrent use.
type System struct {
	storage   Storage // nil: no OS storage API registered
	tele      *telemetry.Registry
	tracer    *prof.Tracer // nil: span tracing off (all hooks no-op)
	workers   int
	speculate bool

	// sessionSeq hands out session IDs — the "pid" lane of the span
	// trace, and the correlation key across run/translate spans.
	sessionSeq atomic.Uint64

	mu     sync.Mutex
	mods   map[string]*moduleState // stamp + ":" + target name
	closed bool
}

// Option configures a System (storage, telemetry, worker pool,
// speculation) or a Session (memory size); options outside a call's
// scope are ignored by it, so one option list can serve both.
type Option func(*config)

type config struct {
	storage          Storage
	memSize          uint64
	tele             *telemetry.Registry
	tracer           *prof.Tracer
	profiler         *prof.Profiler
	tenant           string
	flightRecorder   int
	translateWorkers int
	speculate        bool
}

// WithStorage registers the OS storage API implementation. Without it
// the system always translates online, exactly like DAISY and Crusoe
// (paper, Section 4.1).
func WithStorage(s Storage) Option { return func(c *config) { c.storage = s } }

// WithMemSize sets a session's simulated address-space size.
func WithMemSize(n uint64) Option { return func(c *config) { c.memSize = n } }

// WithTelemetry aggregates the system's metrics and events into an
// existing registry (for multi-run tools such as llva-bench). Without
// it every system gets a private registry.
func WithTelemetry(reg *telemetry.Registry) Option { return func(c *config) { c.tele = reg } }

// WithTranslateWorkers sets the translation worker-pool size used by
// offline translation and speculative JIT (0 or unset: GOMAXPROCS).
func WithTranslateWorkers(n int) Option { return func(c *config) { c.translateWorkers = n } }

// WithSpeculation toggles speculative background JIT: when a function
// is translated on demand, its static callees are queued for
// ahead-of-time translation on background workers (default on).
func WithSpeculation(on bool) Option { return func(c *config) { c.speculate = on } }

// WithTracer attaches a span tracer to the system: the session
// lifecycle (load, translate, install, run, cancel, write-back) and
// the pipeline workers record begin/end spans carrying session and
// tenant IDs, exportable as Chrome trace_event JSON (Perfetto).
func WithTracer(t *prof.Tracer) Option { return func(c *config) { c.tracer = t } }

// WithProfiler attaches a guest-level sampling profiler to a session's
// machine (session-scoped; one profiler may be shared by many
// sessions — it aggregates under its own lock). Sampling is
// deterministic: simulated instruction and cycle counts are
// bit-identical with the profiler on or off.
func WithProfiler(p *prof.Profiler) Option { return func(c *config) { c.profiler = p } }

// WithTenant labels a session with a tenant ID, carried on its trace
// spans (session-scoped).
func WithTenant(id string) Option { return func(c *config) { c.tenant = id } }

// WithFlightRecorder arms a session machine's trap-time flight
// recorder: an unhandled trap snapshots registers, the virtual
// backtrace, a disassembly window around the faulting PC, and the last
// events telemetry events into Session.LastCrash (session-scoped;
// zero steady-state cost).
func WithFlightRecorder(events int) Option {
	return func(c *config) { c.flightRecorder = events }
}

// NewSystem creates a process-wide execution-manager instance.
func NewSystem(opts ...Option) *System {
	cfg := config{speculate: true}
	for _, o := range opts {
		o(&cfg)
	}
	sys := &System{
		storage:   cfg.storage,
		tele:      cfg.tele,
		tracer:    cfg.tracer,
		workers:   cfg.translateWorkers,
		speculate: cfg.speculate,
		mods:      make(map[string]*moduleState),
	}
	if sys.tele == nil {
		sys.tele = telemetry.New()
	}
	sys.tracer.NameProcess(0, "llee system")
	return sys
}

// Tracer returns the attached span tracer (nil when tracing is off;
// prof.Tracer methods are nil-safe, so the result is always usable).
func (sys *System) Tracer() *prof.Tracer { return sys.tracer }

// Telemetry returns the system's metric registry (shared by all of its
// sessions and their machines).
func (sys *System) Telemetry() *telemetry.Registry { return sys.tele }

// Storage returns the registered storage API (nil when none).
func (sys *System) Storage() Storage { return sys.storage }

// Translate compiles every defined function of m for d on the system's
// worker pool and returns the native object, without executing anything
// or touching storage — the static half of llva-llc. The output is
// byte-identical to sequential translation.
func (sys *System) Translate(m *core.Module, d *target.Desc) (*codegen.NativeObject, error) {
	ms, err := sys.state(m, d)
	if err != nil {
		return nil, err
	}
	return ms.translateModule()
}

// Close flushes every module's pending write-back and stops background
// speculation (counting unconsumed speculative translations as waste —
// they are still persisted, turning them into a warmer next start).
// Existing sessions stay usable afterwards: demands translate inline.
// Close is idempotent; the first storage error is returned.
func (sys *System) Close() error {
	sys.mu.Lock()
	if sys.closed {
		sys.mu.Unlock()
		return nil
	}
	sys.closed = true
	mods := make([]*moduleState, 0, len(sys.mods))
	for _, ms := range sys.mods {
		mods = append(mods, ms)
	}
	sys.mu.Unlock()
	var first error
	for _, ms := range mods {
		ms.spec.Close()
		if err := ms.writeBack(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// moduleState is the system-wide state of one module on one target,
// keyed by content stamp: the translator, the shared single-flight
// translation cache, the decoded offline-cache contents, and the
// profile-seeded trace-cache state. It is created once — under the
// system lock, before any session's machine exists — so the
// profile-driven relayout of the module happens exactly once.
type moduleState struct {
	sys    *System
	module *core.Module // the canonical (possibly relaid-out) module copy
	desc   *target.Desc
	stamp  string

	tr   *codegen.Translator
	spec *pipeline.Speculator

	// online reports no valid cached translation existed at creation:
	// sessions JIT on demand and write translations back.
	online bool
	// nobj/loaded hold the decoded offline-cache contents on a hit.
	nobj   *codegen.NativeObject
	loaded map[string]*codegen.NativeFunc

	// callWeights orders speculation hottest-first when a persisted
	// profile (Section 4.2) was loaded: function name -> call count.
	callWeights   map[string]uint64
	traceStats    trace.Stats
	profileSeeded bool

	mu      sync.Mutex
	flushed int // settled translations persisted by the last write-back
}

// state returns (creating on first use) the shared per-module state for
// m on d. Modules are identified by content stamp, so two separately
// compiled but identical modules share one state; the first caller's
// module object becomes the canonical copy every session executes.
func (sys *System) state(m *core.Module, d *target.Desc) (*moduleState, error) {
	endLoad := sys.tracer.Begin(0, 0, "llee", "module.load",
		map[string]any{"module": m.Name, "target": d.Name})
	defer endLoad()
	enc, err := obj.Encode(m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModule, err)
	}
	stamp := Stamp(enc)
	sys.mu.Lock()
	defer sys.mu.Unlock()
	if sys.closed {
		return nil, errors.New("llee: system is closed")
	}
	key := stamp + ":" + d.Name
	if ms := sys.mods[key]; ms != nil {
		return ms, nil
	}
	tr, err := codegen.New(d, m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModule, err)
	}
	tr.SetTelemetry(sys.tele)
	ms := &moduleState{sys: sys, module: m, desc: d, stamp: stamp, tr: tr, online: true}
	if sys.storage != nil {
		// The paper's translation strategy: look for a cached
		// translation, validate its stamp, and fall back to online
		// translation when any condition fails. A corrupt entry is a
		// miss — evicted and surfaced through telemetry, never an error.
		nobj, ok, err := ms.readCache()
		if err != nil && !errors.Is(err, errCorruptCache) {
			return nil, err
		}
		if ok {
			ms.nobj = nobj
			ms.loaded = make(map[string]*codegen.NativeFunc, len(nobj.Funcs))
			for _, nf := range nobj.Funcs {
				ms.loaded[nf.Name] = nf
			}
			ms.online = false
			sys.tele.Counter(MetricCacheHits).Inc()
			sys.tele.Events().Emit(telemetry.EvCacheHit, ms.cacheKey(), 0)
		} else {
			sys.tele.Counter(MetricCacheMisses).Inc()
			sys.tele.Events().Emit(telemetry.EvCacheMiss, ms.cacheKey(), 0)
		}
		// A persisted profile (Section 4.2) seeds the software trace
		// cache once per module state; on the online path it also
		// re-lays out the virtual object code — here, before any session
		// machine or translation exists, so every session sees one
		// consistent block order.
		if err := ms.seedTraceCache(ms.online); err != nil {
			return nil, err
		}
	}
	ms.spec = pipeline.NewSpeculator(tr, sys.workers, sys.tele)
	ms.spec.SetTracer(sys.tracer)
	sys.mods[key] = ms
	return ms, nil
}

func (ms *moduleState) cacheKey() string {
	return "native:" + ms.module.Name + ":" + ms.desc.Name
}

// cachedObject is the serialized cache payload.
type cachedObject struct {
	TargetName string
	Module     string
	Funcs      []*codegen.NativeFunc
}

// evictCache deletes a dead (stale or corrupt) cache blob so garbage
// does not accumulate across recompiles. Best-effort: a failed delete
// is surfaced through telemetry, never as an execution error.
func (ms *moduleState) evictCache(key string) {
	tele := ms.sys.tele
	if err := ms.sys.storage.Delete(key); err != nil {
		tele.Events().Emit(telemetry.EvCacheEvicted, key+": "+err.Error(), -1)
		return
	}
	tele.Counter(MetricCacheEvictions).Inc()
	tele.Events().Emit(telemetry.EvCacheEvicted, key, 0)
}

func (ms *moduleState) readCache() (*codegen.NativeObject, bool, error) {
	tele := ms.sys.tele
	data, stamp, ok, err := ms.sys.storage.Read(ms.cacheKey())
	if err != nil || !ok {
		return nil, false, err
	}
	if stamp != ms.stamp {
		// Out-of-date translation: ignore it (the paper's timestamp
		// check failing) and evict the dead blob.
		tele.Counter(MetricStampMismatches).Inc()
		tele.Events().Emit(telemetry.EvStampMismatch, ms.cacheKey(), 0)
		ms.evictCache(ms.cacheKey())
		return nil, false, nil
	}
	co, err := decodeCachedObject(data)
	if err != nil {
		tele.Counter(MetricCacheCorrupt).Inc()
		tele.Events().Emit(telemetry.EvCacheCorrupt, ms.cacheKey(), 0)
		ms.evictCache(ms.cacheKey())
		return nil, false, fmt.Errorf("llee: %w", err)
	}
	nobj := &codegen.NativeObject{TargetName: co.TargetName, Module: co.Module}
	for _, f := range co.Funcs {
		nobj.Add(f)
	}
	return nobj, true, nil
}

func (ms *moduleState) writeCache(funcs []*codegen.NativeFunc) error {
	co := cachedObject{TargetName: ms.desc.Name, Module: ms.module.Name, Funcs: funcs}
	return ms.sys.storage.Write(ms.cacheKey(), ms.stamp, encodeCachedObject(&co))
}

// writeBack persists the shared cache's settled translations — demanded
// by any session plus unconsumed speculative ones — merged with the
// offline-cache contents decoded at creation. It never re-reads
// storage, and skips the write when nothing settled since the last
// flush. Called after every online run and at System.Close.
func (ms *moduleState) writeBack() error {
	if ms.sys.storage == nil {
		return nil
	}
	done := ms.spec.Completed()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if len(done) == 0 || len(done) == ms.flushed {
		return nil
	}
	if err := ms.writeCache(mergeForWriteBack(ms.module, ms.loaded, done)); err != nil {
		return err
	}
	ms.flushed = len(done)
	return nil
}

// mergeForWriteBack merges previously cached translations with fresh
// ones (fresh wins on collision) and returns them in module function
// order — the deterministic cache layout. Names that are not module
// functions are dropped.
func mergeForWriteBack(m *core.Module, cached, fresh map[string]*codegen.NativeFunc) []*codegen.NativeFunc {
	merged := make(map[string]*codegen.NativeFunc, len(cached)+len(fresh))
	for n, f := range cached {
		merged[n] = f
	}
	for n, f := range fresh {
		merged[n] = f
	}
	funcs := make([]*codegen.NativeFunc, 0, len(merged))
	for _, f := range m.Functions {
		if nf, ok := merged[f.Name()]; ok {
			funcs = append(funcs, nf)
		}
	}
	return funcs
}

// translateModule compiles the whole module on the worker pool and
// records the batch in telemetry.
func (ms *moduleState) translateModule() (*codegen.NativeObject, error) {
	tele := ms.sys.tele
	tele.Events().Emit(telemetry.EvTranslateStart, ms.module.Name, int64(len(ms.module.Functions)))
	start := time.Now()
	nobj, err := pipeline.TranslateModule(ms.tr, ms.sys.workers, tele)
	if err != nil {
		return nil, err
	}
	ms.sys.recordTranslate(ms.module.Name, time.Since(start).Nanoseconds(), len(nobj.Funcs))
	return nobj, nil
}

// translateOffline compiles the whole module and stores it in the cache
// without executing anything — the paper's "flagging it for translation
// and not actual execution" during OS idle time.
func (ms *moduleState) translateOffline() error {
	if ms.sys.storage == nil {
		return fmt.Errorf("llee: offline translation requires the storage API")
	}
	nobj, err := ms.translateModule()
	if err != nil {
		return err
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.writeCache(nobj.Funcs)
}
