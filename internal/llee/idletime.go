package llee

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/telemetry"
	"llva/internal/trace"
)

// Idle-time profile-guided optimization (paper, Section 4.2): "the rich
// information in LLVA also enables 'idle-time' profile-guided
// optimization using the translator's optimization and code generation
// capabilities ... using profile information gathered from executions on
// an end-user's system." The system gathers a profile from a
// representative execution, persists it through the storage API, forms
// hot traces, re-lays out the virtual object code so hot paths fall
// through, and installs the retranslated code in the offline cache — all
// without the end user doing anything but running the program.

// profileBlob is the storage representation of a gathered profile:
// execution counts keyed by function name and block index (stable across
// sessions for identical object code, which the stamp guarantees).
type profileBlob struct {
	Block map[string]map[int]uint64
	Edge  map[string]map[[2]int]uint64
	Call  map[string]uint64
}

func (ms *moduleState) profileKey() string {
	return "profile:" + ms.module.Name + ":" + ms.desc.Name
}

// gatherProfile executes the program once on the instrumented reference
// interpreter (the paper's static-instrumentation-assisted profiling) and
// stores the profile in the offline cache.
func (ms *moduleState) gatherProfile(entry string, args ...uint64) error {
	if ms.sys.storage == nil {
		return fmt.Errorf("llee: profile persistence requires the storage API")
	}
	prof := interp.NewProfile()
	ip, err := interp.New(ms.module, io.Discard, interp.WithProfile(prof))
	if err != nil {
		return err
	}
	if _, err := ip.Run(entry, args...); err != nil {
		return err
	}
	blob := encodeProfile(ms.module, prof)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		return err
	}
	if err := ms.sys.storage.Write(ms.profileKey(), ms.stamp, buf.Bytes()); err != nil {
		return err
	}
	tele := ms.sys.tele
	prof.Export(tele)
	tele.Counter(MetricProfileStores).Inc()
	tele.Events().Emit(telemetry.EvProfileStored, ms.profileKey(), int64(buf.Len()))
	return nil
}

// loadProfile reads and decodes the persisted profile, validating its
// stamp against the current virtual object code. A missing or stale
// profile is not an error (ok=false); a corrupt one is.
func (ms *moduleState) loadProfile() (*interp.Profile, bool, error) {
	tele := ms.sys.tele
	data, stamp, ok, err := ms.sys.storage.Read(ms.profileKey())
	if err != nil || !ok {
		return nil, false, err
	}
	if stamp != ms.stamp {
		tele.Counter(MetricStampMismatches).Inc()
		tele.Events().Emit(telemetry.EvStampMismatch, ms.profileKey(), 0)
		// A profile for different object code is dead weight: evict it
		// so the cache does not accumulate garbage across recompiles.
		ms.evictCache(ms.profileKey())
		return nil, false, nil
	}
	var blob profileBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return nil, false, fmt.Errorf("llee: corrupt profile: %w", err)
	}
	prof := decodeProfile(ms.module, &blob)
	tele.Counter(MetricProfileLoads).Inc()
	tele.Events().Emit(telemetry.EvProfileLoaded, ms.profileKey(), int64(len(prof.Block)))
	return prof, true, nil
}

// seedTraceCache reloads the persisted profile and rebuilds the software
// trace cache from it without re-profiling. It runs once per module
// state — before any session machine exists. When relayout is true (the
// online-translation path) the hot traces also re-lay out the virtual
// object code so the JIT emits straight-line hot paths; a cache hit
// must not relayout, since the cached native code was built against the
// stored block order.
func (ms *moduleState) seedTraceCache(relayout bool) error {
	prof, ok, err := ms.loadProfile()
	if err != nil || !ok {
		return err
	}
	// Call counts order speculative JIT hottest-first (Section 4.2's
	// profile information guiding the §4.1 translate-ahead machinery).
	ms.callWeights = make(map[string]uint64, len(prof.Call))
	for f, n := range prof.Call {
		ms.callWeights[f.Name()] = n
	}
	traces := trace.Form(ms.module, prof, trace.Options{})
	ms.traceStats = trace.Summarize(prof, traces)
	ms.profileSeeded = true
	ms.recordTraceStats(ms.traceStats)
	if relayout && len(traces) > 0 {
		relaid := trace.ApplyLayout(ms.module, traces)
		ms.sys.tele.Gauge(MetricTraceRelaid).Set(int64(relaid))
		if err := core.Verify(ms.module); err != nil {
			return fmt.Errorf("llee: relayout broke the module: %w", err)
		}
	}
	return nil
}

// idleTimeOptimize performs the between-executions step: it loads the
// stored profile (failing softly to a plain offline translation when none
// is valid), applies trace-driven relayout to the virtual object code,
// retranslates the whole module, and replaces the cached translation.
// It returns trace statistics for reporting.
func (ms *moduleState) idleTimeOptimize() (trace.Stats, error) {
	var st trace.Stats
	if ms.sys.storage == nil {
		return st, fmt.Errorf("llee: idle-time optimization requires the storage API")
	}
	prof, ok, err := ms.loadProfile()
	if err != nil {
		return st, err
	}
	if ok {
		traces := trace.Form(ms.module, prof, trace.Options{})
		st = trace.Summarize(prof, traces)
		ms.traceStats = st
		ms.profileSeeded = true
		ms.recordTraceStats(st)
		relaid := trace.ApplyLayout(ms.module, traces)
		ms.sys.tele.Gauge(MetricTraceRelaid).Set(int64(relaid))
		if err := core.Verify(ms.module); err != nil {
			return st, fmt.Errorf("llee: relayout broke the module: %w", err)
		}
	}
	return st, ms.translateOffline()
}

func encodeProfile(m *core.Module, prof *interp.Profile) *profileBlob {
	blob := &profileBlob{
		Block: make(map[string]map[int]uint64),
		Edge:  make(map[string]map[[2]int]uint64),
		Call:  make(map[string]uint64),
	}
	byName := make(map[*core.BasicBlock]struct {
		fn  string
		idx int
	})
	for _, f := range m.Functions {
		for i, bb := range f.Blocks {
			byName[bb] = struct {
				fn  string
				idx int
			}{f.Name(), i}
		}
	}
	for bb, n := range prof.Block {
		k := byName[bb]
		if blob.Block[k.fn] == nil {
			blob.Block[k.fn] = make(map[int]uint64)
		}
		blob.Block[k.fn][k.idx] = n
	}
	for e, n := range prof.Edge {
		kf, kt := byName[e.From], byName[e.To]
		if kf.fn != kt.fn {
			continue
		}
		if blob.Edge[kf.fn] == nil {
			blob.Edge[kf.fn] = make(map[[2]int]uint64)
		}
		blob.Edge[kf.fn][[2]int{kf.idx, kt.idx}] = n
	}
	for f, n := range prof.Call {
		blob.Call[f.Name()] = n
	}
	return blob
}

func decodeProfile(m *core.Module, blob *profileBlob) *interp.Profile {
	prof := interp.NewProfile()
	for _, f := range m.Functions {
		if bc, ok := blob.Block[f.Name()]; ok {
			for idx, n := range bc {
				if idx < len(f.Blocks) {
					prof.Block[f.Blocks[idx]] = n
				}
			}
		}
		if ec, ok := blob.Edge[f.Name()]; ok {
			for pair, n := range ec {
				if pair[0] < len(f.Blocks) && pair[1] < len(f.Blocks) {
					prof.Edge[interp.Edge{From: f.Blocks[pair[0]], To: f.Blocks[pair[1]]}] = n
				}
			}
		}
		if n, ok := blob.Call[f.Name()]; ok {
			prof.Call[f] = n
		}
	}
	return prof
}
