package llee

import "llva/internal/telemetry"

// Per-tenant usage accounting: WithTenant labels a session with its
// owning tenant, and every Run accrues the run's simulated cycles (the
// gas unit) and a run count to that tenant — whether or not the run was
// gas-metered, and regardless of how it ended (an out-of-gas or trapped
// run consumed real simulated time). The serving layer's aggregate
// tenant budgets draw against these totals; the same numbers are
// exported as labeled llee.tenant.* counters for operators.

// TenantUsage is the accumulated consumption of one tenant across all
// of its sessions on one System.
type TenantUsage struct {
	Runs   uint64 // completed Session.Run calls (any outcome)
	Cycles uint64 // simulated cycles consumed by those runs
}

// accountRun accrues one finished run to its tenant (no-op for the
// empty tenant).
func (sys *System) accountRun(tenant string, cycles uint64) {
	if tenant == "" {
		return
	}
	sys.tenantMu.Lock()
	if sys.tenants == nil {
		sys.tenants = make(map[string]*TenantUsage)
	}
	u := sys.tenants[tenant]
	if u == nil {
		u = &TenantUsage{}
		sys.tenants[tenant] = u
	}
	u.Runs++
	u.Cycles += cycles
	sys.tenantMu.Unlock()
	sys.tele.Counter(telemetry.Key(MetricTenantRuns, "tenant", tenant)).Inc()
	sys.tele.Counter(telemetry.Key(MetricTenantCycles, "tenant", tenant)).Add(cycles)
}

// TenantUsage returns a snapshot of one tenant's accumulated usage
// (zero value when the tenant has never run).
func (sys *System) TenantUsage(tenant string) TenantUsage {
	sys.tenantMu.Lock()
	defer sys.tenantMu.Unlock()
	if u := sys.tenants[tenant]; u != nil {
		return *u
	}
	return TenantUsage{}
}

// TenantUsages returns a snapshot of every tenant's accumulated usage.
func (sys *System) TenantUsages() map[string]TenantUsage {
	sys.tenantMu.Lock()
	defer sys.tenantMu.Unlock()
	out := make(map[string]TenantUsage, len(sys.tenants))
	for id, u := range sys.tenants {
		out[id] = *u
	}
	return out
}
