// Package llee is the Low-Level Execution Environment: the transparent
// execution manager of the paper's Section 4.1 and Figure 3. It
// orchestrates translation — "offline translation when possible, online
// translation whenever necessary" — through an OS-independent storage API
// that an operating system MAY implement: caching of translated native
// code and profile information is strictly optional and the system
// operates correctly in its absence.
package llee

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Storage is the V-ABI storage API (paper, Section 4.1): create, delete
// and query offline caches; read and write vectors of bytes tagged by a
// unique string name; and validate entries against a stamp recorded when
// they were written (the paper's timestamp check — content stamps keep
// the implementation hermetic and deterministic).
type Storage interface {
	// Write stores data under key with the given validation stamp.
	Write(key string, stamp string, data []byte) error
	// Read returns the data and stamp stored under key.
	Read(key string) (data []byte, stamp string, ok bool, err error)
	// Delete removes an entry (no-op when absent).
	Delete(key string) error
	// Keys lists stored keys (for cache inspection tools).
	Keys() ([]string, error)
}

// Stamp computes the validation stamp of a blob (used to tie cached
// translations to the exact virtual object code they were derived from).
func Stamp(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:8])
}

// MemStorage is an in-memory Storage, the default for tests and for
// systems whose OS has not registered a persistent implementation.
type MemStorage struct {
	mu sync.Mutex
	m  map[string]memEntry
}

type memEntry struct {
	stamp string
	data  []byte
}

// NewMemStorage creates an empty in-memory store.
func NewMemStorage() *MemStorage {
	return &MemStorage{m: make(map[string]memEntry)}
}

// Write implements Storage.
func (s *MemStorage) Write(key, stamp string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = memEntry{stamp: stamp, data: append([]byte(nil), data...)}
	return nil
}

// Read implements Storage.
func (s *MemStorage) Read(key string) ([]byte, string, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		return nil, "", false, nil
	}
	return append([]byte(nil), e.data...), e.stamp, true, nil
}

// Delete implements Storage.
func (s *MemStorage) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

// Keys implements Storage.
func (s *MemStorage) Keys() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// DirStorage persists cache entries as files in a directory — the role
// played by the user-level disk cache in the paper's prototype.
type DirStorage struct {
	Dir string
}

// NewDirStorage creates the directory if needed.
func NewDirStorage(dir string) (*DirStorage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStorage{Dir: dir}, nil
}

func (s *DirStorage) path(key string) string {
	safe := strings.NewReplacer("/", "_", ":", "_", " ", "_").Replace(key)
	return filepath.Join(s.Dir, safe+".llvacache")
}

// Write implements Storage: the stamp occupies the first line.
func (s *DirStorage) Write(key, stamp string, data []byte) error {
	blob := append([]byte(stamp+"\n"), data...)
	return os.WriteFile(s.path(key), blob, 0o644)
}

// Read implements Storage.
func (s *DirStorage) Read(key string) ([]byte, string, bool, error) {
	blob, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, "", false, nil
	}
	if err != nil {
		return nil, "", false, err
	}
	i := strings.IndexByte(string(blob), '\n')
	if i < 0 {
		return nil, "", false, fmt.Errorf("llee: corrupt cache entry %q", key)
	}
	return blob[i+1:], string(blob[:i]), true, nil
}

// Delete implements Storage.
func (s *DirStorage) Delete(key string) error {
	err := os.Remove(s.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Keys implements Storage.
func (s *DirStorage) Keys() ([]string, error) {
	ents, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".llvacache") {
			out = append(out, strings.TrimSuffix(e.Name(), ".llvacache"))
		}
	}
	sort.Strings(out)
	return out, nil
}
