// Package llee is the Low-Level Execution Environment: the transparent
// execution manager of the paper's Section 4.1 and Figure 3. It
// orchestrates translation — "offline translation when possible, online
// translation whenever necessary" — through an OS-independent storage API
// that an operating system MAY implement: caching of translated native
// code and profile information is strictly optional and the system
// operates correctly in its absence.
package llee

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Storage is the V-ABI storage API (paper, Section 4.1): create, delete
// and query offline caches; read and write vectors of bytes tagged by a
// unique string name; and validate entries against a stamp recorded when
// they were written (the paper's timestamp check — content stamps keep
// the implementation hermetic and deterministic).
type Storage interface {
	// Write stores data under key with the given validation stamp.
	Write(key string, stamp string, data []byte) error
	// Read returns the data and stamp stored under key.
	Read(key string) (data []byte, stamp string, ok bool, err error)
	// Delete removes an entry (no-op when absent).
	Delete(key string) error
	// Keys lists stored keys (for cache inspection tools).
	Keys() ([]string, error)
}

// Stamp computes the validation stamp of a blob (used to tie cached
// translations to the exact virtual object code they were derived from).
func Stamp(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:8])
}

// MemStorage is an in-memory Storage, the default for tests and for
// systems whose OS has not registered a persistent implementation.
type MemStorage struct {
	mu sync.Mutex
	m  map[string]memEntry
}

type memEntry struct {
	stamp string
	data  []byte
}

// NewMemStorage creates an empty in-memory store.
func NewMemStorage() *MemStorage {
	return &MemStorage{m: make(map[string]memEntry)}
}

// Write implements Storage.
func (s *MemStorage) Write(key, stamp string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = memEntry{stamp: stamp, data: append([]byte(nil), data...)}
	return nil
}

// Read implements Storage.
func (s *MemStorage) Read(key string) ([]byte, string, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		return nil, "", false, nil
	}
	return append([]byte(nil), e.data...), e.stamp, true, nil
}

// Delete implements Storage.
func (s *MemStorage) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

// Keys implements Storage.
func (s *MemStorage) Keys() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// DirStorage persists cache entries as flat files in a directory — the
// original on-disk format, superseded as the default by CASStorage
// (cas.go), which NewDirStorage now returns. It remains for
// compatibility: caches written by older builds read and migrate
// cleanly, and tests use it to produce legacy layouts.
type DirStorage struct {
	Dir string
}

// NewFlatDirStorage opens a legacy flat-format store (one file per
// key, no dedup, no eviction), creating the directory if needed.
func NewFlatDirStorage(dir string) (*DirStorage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStorage{Dir: dir}, nil
}

// encodeKey maps a cache key to a filesystem-safe name, injectively:
// bytes outside [A-Za-z0-9._-] become %XX hex escapes ('%' itself
// included), so distinct keys such as "a/b" and "a_b" can never collide
// on one file name.
func encodeKey(key string) string {
	var b strings.Builder
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// decodeKey inverts encodeKey; malformed escapes are kept literally (a
// foreign file in the cache directory, not one of ours).
func decodeKey(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		if name[i] == '%' && i+2 < len(name) {
			if hi, lo := unhex(name[i+1]), unhex(name[i+2]); hi >= 0 && lo >= 0 {
				b.WriteByte(byte(hi<<4 | lo))
				i += 2
				continue
			}
		}
		b.WriteByte(name[i])
	}
	return b.String()
}

func unhex(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	}
	return -1
}

func (s *DirStorage) path(key string) string {
	return filepath.Join(s.Dir, encodeKey(key)+".llvacache")
}

// Write implements Storage: the stamp occupies the first line. The
// entry is written to a temporary file in the cache directory, fsynced
// and renamed into place, and the directory is fsynced after the
// rename — so neither a reader nor a crash (even a power cut between
// rename and the directory metadata reaching disk) can observe a torn
// or vanished entry: it sees either the old blob or the complete new
// one.
func (s *DirStorage) Write(key, stamp string, data []byte) error {
	blob := append([]byte(stamp+"\n"), data...)
	return atomicWriteFile(s.Dir, s.path(key), blob)
}

// Read implements Storage.
func (s *DirStorage) Read(key string) ([]byte, string, bool, error) {
	blob, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, "", false, nil
	}
	if err != nil {
		return nil, "", false, err
	}
	i := strings.IndexByte(string(blob), '\n')
	if i < 0 {
		return nil, "", false, fmt.Errorf("llee: corrupt cache entry %q", key)
	}
	return blob[i+1:], string(blob[:i]), true, nil
}

// Delete implements Storage.
func (s *DirStorage) Delete(key string) error {
	err := os.Remove(s.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Keys implements Storage.
func (s *DirStorage) Keys() ([]string, error) {
	ents, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".llvacache") {
			out = append(out, decodeKey(strings.TrimSuffix(e.Name(), ".llvacache")))
		}
	}
	sort.Strings(out)
	return out, nil
}
