package llee

import (
	"context"
	"errors"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"llva/internal/llee/pipeline"
	"llva/internal/machine"
	"llva/internal/minic"
	"llva/internal/rt"
	"llva/internal/target"
	"llva/internal/telemetry"
)

// TestConcurrentSessionsTranslateOnce: 8 sessions of one module sharing
// one System and one storage must run correctly in parallel, and the
// shared single-flight cache must translate each demanded function
// exactly once system-wide. Run under -race by CI.
func TestConcurrentSessionsTranslateOnce(t *testing.T) {
	m, err := minic.Compile("chain.c", chainProg)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStorage()
	reg := telemetry.New()
	// Speculation off isolates the assertion: every translation is a
	// demand through the shared cache, none from background workers.
	sys := NewSystem(WithStorage(st), WithTelemetry(reg), WithSpeculation(false))
	const sessions = 8
	outs := make([]strings.Builder, sessions)
	sess := make([]*Session, sessions)
	for i := range sess {
		s, err := sys.NewSession(m, target.VX86, &outs[i])
		if err != nil {
			t.Fatal(err)
		}
		sess[i] = s
	}
	var wg sync.WaitGroup
	for i := range sess {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := sess[i].Run(context.Background(), "main")
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			if res.Value != 0 || res.Instrs == 0 || res.Cycles == 0 {
				t.Errorf("session %d: result = %+v", i, res)
			}
		}(i)
	}
	wg.Wait()
	for i := range outs {
		if outs[i].String() != "39\n" {
			t.Errorf("session %d: output = %q, want %q", i, outs[i].String(), "39\n")
		}
	}
	// The program executes main, top, mid, leaf: 4 unique functions, so
	// exactly 4 translations across 32 demands — the rest were hits on or
	// joins of the shared flight.
	if got := reg.CounterValue(MetricTranslations); got != 4 {
		t.Errorf("%s = %d, want 4 (one per unique function)", MetricTranslations, got)
	}
	if got := reg.CounterValue(pipeline.MetricDemandInline); got != 4 {
		t.Errorf("%s = %d, want 4", pipeline.MetricDemandInline, got)
	}
	hits := reg.CounterValue(pipeline.MetricSpecHits)
	joins := reg.CounterValue(pipeline.MetricSpecJoins)
	if hits+joins != (sessions-1)*4 {
		t.Errorf("hits=%d joins=%d, want %d shared demands", hits, joins, (sessions-1)*4)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// The flushed cache warms a fresh system: zero further translations.
	sys2 := NewSystem(WithStorage(st), WithTelemetry(telemetry.New()))
	var out2 strings.Builder
	s2, err := sys2.NewSession(m, target.VX86, &out2)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.CacheHit() {
		t.Error("write-back of the shared cache missed on the next system")
	}
	if _, err := s2.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if out2.String() != "39\n" {
		t.Errorf("warm output = %q", out2.String())
	}
	if got := sys2.Telemetry().CounterValue(MetricTranslations); got != 0 {
		t.Errorf("warm system translated %d functions, want 0", got)
	}
}

// TestConcurrentSessionsWithSpeculation: same sharing property with
// background speculation racing the 8 demand paths; translations still
// happen once per function system-wide (spec workers + inline demands
// together cover the 4 functions exactly once).
func TestConcurrentSessionsWithSpeculation(t *testing.T) {
	m, err := minic.Compile("chain.c", chainProg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	sys := NewSystem(WithTelemetry(reg), WithTranslateWorkers(4))
	const sessions = 8
	outs := make([]strings.Builder, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		s, err := sys.NewSession(m, target.VSPARC, &outs[i])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			if _, err := s.Run(context.Background(), "main"); err != nil {
				t.Errorf("session %d: %v", i, err)
			}
		}(i, s)
	}
	wg.Wait()
	for i := range outs {
		if outs[i].String() != "39\n" {
			t.Errorf("session %d: output = %q", i, outs[i].String())
		}
	}
	spec := reg.CounterValue(pipeline.MetricSpecTranslated)
	inline := reg.CounterValue(pipeline.MetricDemandInline)
	if spec+inline != 4 {
		t.Errorf("spec=%d inline=%d, want total 4 (once per function)", spec, inline)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// loopProg never terminates: only cancellation can stop it.
const loopProg = `
int main() {
	int i = 0;
	while (1) i = i + 1;
	return i;
}
`

// TestRunCancellation: canceling the context mid-run must stop the
// machine at a basic-block boundary with ErrCanceled, and the virtual
// clock must stay exact (every retired block's cycles accounted, no
// partial block pending).
func TestRunCancellation(t *testing.T) {
	m, err := minic.Compile("loop.c", loopProg)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem()
	sess, err := sys.NewSession(m, target.VX86, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sess.Run(ctx, "main")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the loop spin
	cancel()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the run")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, machine.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled in the chain", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, does not match context.Canceled", err)
	}
	var ce *machine.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *machine.CancelError in the chain", err)
	}
	if ce.PC == 0 {
		t.Error("CancelError carries no boundary PC")
	}
	// Block-boundary stop: the virtual clock equals retired cycles
	// exactly — no half-executed block is pending.
	if clk, cyc := sess.Env().Clock(), sess.Machine().Stats.Cycles; clk != cyc {
		t.Errorf("virtual clock %d != retired cycles %d after cancel", clk, cyc)
	}
	if sess.Machine().Stats.Instrs == 0 {
		t.Error("run was canceled before executing anything")
	}
}

// TestRunDeadline: a context deadline classifies identically, matching
// both ErrCanceled and context.DeadlineExceeded.
func TestRunDeadline(t *testing.T) {
	m, err := minic.Compile("loop.c", loopProg)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem()
	sess, err := sys.NewSession(m, target.VSPARC, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = sess.Run(ctx, "main")
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, does not match context.DeadlineExceeded", err)
	}
}

// TestRunPreCanceled: an already-canceled context stops the run at the
// first block boundary, before any user code retires.
func TestRunPreCanceled(t *testing.T) {
	m, err := minic.Compile("loop.c", loopProg)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem()
	sess, err := sys.NewSession(m, target.VX86, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Run(ctx, "main"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestErrorTaxonomy covers the remaining classifications: traps,
// unknown entries, and normal exits.
func TestErrorTaxonomy(t *testing.T) {
	src := `
int main() {
	int zero = 0;
	return 7 / zero;
}
`
	m, err := minic.Compile("trap.c", src)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem()
	sess, err := sys.NewSession(m, target.VX86, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Run(context.Background(), "main")
	var trap *ErrTrap
	if !errors.As(err, &trap) {
		t.Fatalf("err = %v, want *llee.ErrTrap", err)
	}
	if trap.Num != machine.TrapDivByZero {
		t.Errorf("trap num = %d, want %d (div by zero)", trap.Num, machine.TrapDivByZero)
	}
	var mt *machine.TrapError
	if !errors.As(err, &mt) || mt.Num != trap.Num || mt.PC != trap.PC {
		t.Errorf("machine.TrapError not reachable through ErrTrap: %v", err)
	}

	// Unknown or declaration-only entry: ErrBadModule, before execution.
	if _, err := sess.Run(context.Background(), "no_such_function"); !errors.Is(err, ErrBadModule) {
		t.Errorf("unknown entry: err = %v, want ErrBadModule", err)
	}

	// exit() surfaces as ErrExit with the code on *rt.ExitError.
	srcExit := `int main() { exit(41); return 0; }`
	me, err := minic.Compile("exit.c", srcExit)
	if err != nil {
		t.Fatal(err)
	}
	se, err := sys.NewSession(me, target.VX86, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	_, err = se.Run(context.Background(), "main")
	if !errors.Is(err, ErrExit) {
		t.Fatalf("exit run: err = %v, want ErrExit", err)
	}
	var xe *rt.ExitError
	if !errors.As(err, &xe) || xe.Code != 41 {
		t.Errorf("exit run: err = %v, want *rt.ExitError with code 41", err)
	}
}

// TestDirStorageKeyCollisions: distinct keys that the old sanitizer
// flattened onto one file ("a/b" vs "a_b" vs "a:b") must stay distinct,
// and Keys must report the original key names.
func TestDirStorageKeyCollisions(t *testing.T) {
	st, err := NewDirStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a/b", "a_b", "a:b", "a b", "native:prog:vx86", "100%"}
	for i, k := range keys {
		if err := st.Write(k, "s", []byte{byte(i)}); err != nil {
			t.Fatalf("write %q: %v", k, err)
		}
	}
	for i, k := range keys {
		data, stamp, ok, err := st.Read(k)
		if err != nil || !ok || stamp != "s" {
			t.Fatalf("read %q: ok=%v stamp=%q err=%v", k, ok, stamp, err)
		}
		if len(data) != 1 || data[0] != byte(i) {
			t.Errorf("key %q read back %v, want [%d] — keys collided", k, data, i)
		}
	}
	got, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, k := range got {
		found[k] = true
	}
	for _, k := range keys {
		if !found[k] {
			t.Errorf("Keys() lost %q (got %v)", k, got)
		}
	}
}

// TestDirStorageAtomicWrite: overwrites go through a rename, leave no
// temp files behind, and never produce a torn entry.
func TestDirStorageAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write("k", "s1", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := st.Write("k", "s2", []byte("second")); err != nil {
		t.Fatal(err)
	}
	data, stamp, ok, err := st.Read("k")
	if err != nil || !ok || stamp != "s2" || string(data) != "second" {
		t.Fatalf("after overwrite: %q/%q ok=%v err=%v", stamp, data, ok, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("temp file %q left behind", e.Name())
		}
	}
	// Concurrent writers to one key must each leave a consistent entry.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := strings.Repeat(string(rune('a'+i)), 4096)
			for j := 0; j < 20; j++ {
				if err := st.Write("hot", "s", []byte(payload)); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	data, _, ok, err = st.Read("hot")
	if err != nil || !ok {
		t.Fatalf("read hot: ok=%v err=%v", ok, err)
	}
	if len(data) != 4096 || strings.Count(string(data), string(data[0])) != 4096 {
		t.Errorf("torn write observed: %d bytes, mixed contents", len(data))
	}
}

// TestSessionRunUncancellableMatchesManager: a background-context run
// must be cycle-identical to the legacy Manager path (the cancellation
// poll is free when the context cannot be canceled).
func TestSessionRunUncancellableDeterministic(t *testing.T) {
	m1 := compileTest(t)
	sysRef := NewSystem()
	ref, err := sysRef.NewSession(m1, target.VX86, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	m2 := compileTest(t)
	sys := NewSystem()
	sess, err := sys.NewSession(m2, target.VX86, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background(), "main")
	if err != nil {
		t.Fatal(err)
	}
	if mc := ref.Machine(); res.Cycles != mc.Stats.Cycles || res.Instrs != mc.Stats.Instrs {
		t.Errorf("run cost diverged between sessions: (%d cycles, %d instrs) vs (%d cycles, %d instrs)",
			res.Cycles, res.Instrs, mc.Stats.Cycles, mc.Stats.Instrs)
	}
}
