package llee

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"llva/internal/telemetry"
)

// CASStorage is the content-addressed on-disk cache: the default
// persistent Storage since PR 8, replacing the flat one-file-per-key
// DirStorage (which remains readable — legacy entries migrate lazily).
//
// Entries are stored once per unique content: the object file name is
// the SHA-256 of the entry's stamp and payload, and a small index maps
// logical keys ("native:mod:target", "native2:...", "guestprof:...") to
// content hashes. A fleet of machines translating the same module
// therefore shares one copy of the native code no matter how many
// logical keys point at it, and an entry rewritten with identical
// content costs one hash, not one file write.
//
// The index carries an LRU sequence per key; when a byte cap is set
// (SetMaxBytes, llva-run -cache-max-bytes) writes evict
// least-recently-used keys until the unique-object total fits. Reads
// verify the object's hash before trusting it — a flipped bit is a
// recorded miss, never bad code.
//
// Layout under the cache directory:
//
//	objects/<sha256 hex>   stamp line + payload (self-describing)
//	index.llvaidx          "LLVAIDX 1" header, then "seq hash size key"
//
// Concurrency: one CASStorage serializes its operations with a mutex,
// and the index and every object are replaced atomically (temp file +
// rename + fsync), so concurrent stores sharing a directory never
// observe torn data. Two processes racing on the index settle
// last-writer-wins; that can momentarily drop the loser's index entry,
// but never its object — the entry reappears on the next write-back,
// which dedups against the still-present object.
type CASStorage struct {
	dir string

	mu       sync.Mutex
	maxBytes int64
	tele     *telemetry.Registry
	seq      uint64
}

// CAS metric families (recorded when SetTelemetry attached a registry).
const (
	MetricCASHits       = "llee.cas.hits"
	MetricCASMisses     = "llee.cas.misses"
	MetricCASDedups     = "llee.cas.dedup_hits"
	MetricCASEvictions  = "llee.cas.evictions"
	MetricCASMigrations = "llee.cas.migrations"
	MetricCASCorrupt    = "llee.cas.corrupt"
	MetricCASBytes      = "llee.cas.bytes"
)

// NewDirStorage opens (creating if needed) the content-addressed disk
// cache rooted at dir. The name is kept from the flat-format
// predecessor so existing callers transparently get the CAS store;
// flat ".llvacache" entries already in dir keep working and are
// migrated into the CAS layout the first time they are read.
func NewDirStorage(dir string) (*CASStorage, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, err
	}
	return &CASStorage{dir: dir}, nil
}

// SetMaxBytes caps the unique-object bytes kept on disk; writes evict
// least-recently-used keys beyond it. Zero (the default) is unlimited.
func (s *CASStorage) SetMaxBytes(n int64) {
	s.mu.Lock()
	s.maxBytes = n
	s.mu.Unlock()
}

// SetTelemetry attaches a registry for the llee.cas.* counters.
func (s *CASStorage) SetTelemetry(reg *telemetry.Registry) {
	s.mu.Lock()
	s.tele = reg
	s.mu.Unlock()
}

func (s *CASStorage) count(metric string) {
	if s.tele != nil {
		s.tele.Counter(metric).Inc()
	}
}

// casEntry is one logical key's index record.
type casEntry struct {
	hash string
	size int64
	seq  uint64
}

const casIndexName = "index.llvaidx"
const casIndexMagic = "LLVAIDX 1"

func (s *CASStorage) objectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash)
}

// loadIndex reads the on-disk index fresh — disk is the authoritative
// copy, so stores sharing one directory see each other's writes.
// Malformed lines are skipped: they are foreign garbage, not ours.
func (s *CASStorage) loadIndex() map[string]casEntry {
	idx := make(map[string]casEntry)
	blob, err := os.ReadFile(filepath.Join(s.dir, casIndexName))
	if err != nil {
		return idx
	}
	lines := strings.Split(string(blob), "\n")
	if len(lines) == 0 || lines[0] != casIndexMagic {
		return idx
	}
	for _, ln := range lines[1:] {
		f := strings.Fields(ln)
		if len(f) != 4 {
			continue
		}
		seq, err1 := strconv.ParseUint(f[0], 10, 64)
		size, err2 := strconv.ParseInt(f[2], 10, 64)
		if err1 != nil || err2 != nil || len(f[1]) != sha256.Size*2 {
			continue
		}
		idx[decodeKey(f[3])] = casEntry{hash: f[1], size: size, seq: seq}
		if seq > s.seq {
			s.seq = seq
		}
	}
	return idx
}

// storeIndex atomically replaces the on-disk index and refreshes the
// bytes gauge.
func (s *CASStorage) storeIndex(idx map[string]casEntry) error {
	keys := make([]string, 0, len(idx))
	for k := range idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(casIndexMagic)
	b.WriteByte('\n')
	for _, k := range keys {
		e := idx[k]
		fmt.Fprintf(&b, "%d %s %d %s\n", e.seq, e.hash, e.size, encodeKey(k))
	}
	if err := atomicWriteFile(s.dir, filepath.Join(s.dir, casIndexName), []byte(b.String())); err != nil {
		return err
	}
	if s.tele != nil {
		s.tele.Gauge(MetricCASBytes).Set(uniqueBytes(idx))
	}
	return nil
}

// uniqueBytes is the deduplicated on-disk footprint of the index.
func uniqueBytes(idx map[string]casEntry) int64 {
	seen := make(map[string]int64, len(idx))
	for _, e := range idx {
		seen[e.hash] = e.size
	}
	var total int64
	for _, n := range seen {
		total += n
	}
	return total
}

// casHash is the content address: the stamp and payload hashed
// together, exactly as laid out in the object file, so verifying an
// object is rehashing its bytes. The target is part of the payload
// (cachedObject.TargetName), so translations for different processors
// never collide.
func casHash(stamp string, data []byte) string {
	h := sha256.New()
	h.Write([]byte(stamp))
	h.Write([]byte{'\n'})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// Write implements Storage. Identical content — same stamp, same
// payload, any logical key — is stored once: a second write of an
// existing object updates only the index (a dedup hit).
func (s *CASStorage) Write(key, stamp string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.loadIndex()
	hash := casHash(stamp, data)
	if _, err := os.Stat(s.objectPath(hash)); err == nil {
		s.count(MetricCASDedups)
	} else {
		blob := make([]byte, 0, len(stamp)+1+len(data))
		blob = append(blob, stamp...)
		blob = append(blob, '\n')
		blob = append(blob, data...)
		if err := atomicWriteFile(filepath.Join(s.dir, "objects"), s.objectPath(hash), blob); err != nil {
			return err
		}
	}
	s.seq++
	old := idx[key]
	idx[key] = casEntry{hash: hash, size: int64(len(stamp)) + 1 + int64(len(data)), seq: s.seq}
	s.evictLocked(idx, key)
	if err := s.storeIndex(idx); err != nil {
		return err
	}
	if old.hash != "" && old.hash != hash {
		s.gcObject(idx, old.hash)
	}
	// The key may still exist in the legacy flat layout; the CAS entry
	// supersedes it.
	os.Remove(filepath.Join(s.dir, encodeKey(key)+".llvacache"))
	return nil
}

// evictLocked drops least-recently-used keys until the unique-object
// total fits the byte cap. The just-written key is never evicted: a
// cap smaller than one entry must not turn writes into no-ops.
func (s *CASStorage) evictLocked(idx map[string]casEntry, justWritten string) {
	if s.maxBytes <= 0 {
		return
	}
	for uniqueBytes(idx) > s.maxBytes {
		victim := ""
		var vseq uint64
		for k, e := range idx {
			if k == justWritten {
				continue
			}
			if victim == "" || e.seq < vseq {
				victim, vseq = k, e.seq
			}
		}
		if victim == "" {
			return
		}
		hash := idx[victim].hash
		delete(idx, victim)
		s.gcObject(idx, hash)
		s.count(MetricCASEvictions)
		if s.tele != nil {
			s.tele.Events().Emit(telemetry.EvCacheEvicted, victim, 0)
		}
	}
}

// gcObject removes an object file once no index entry references it.
func (s *CASStorage) gcObject(idx map[string]casEntry, hash string) {
	for _, e := range idx {
		if e.hash == hash {
			return
		}
	}
	os.Remove(s.objectPath(hash))
}

// Read implements Storage. The object's bytes are rehashed before use;
// a mismatch (torn foreign write, bit rot) is a recorded miss, so the
// system falls back to translation instead of running bad code. A key
// absent from the index but present in the legacy flat layout is
// migrated into the CAS on the spot.
func (s *CASStorage) Read(key string) ([]byte, string, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.loadIndex()
	e, ok := idx[key]
	if !ok {
		return s.migrateLocked(idx, key)
	}
	blob, err := os.ReadFile(s.objectPath(e.hash))
	if err != nil {
		s.dropCorrupt(idx, key)
		return nil, "", false, nil
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != e.hash {
		os.Remove(s.objectPath(e.hash))
		s.dropCorrupt(idx, key)
		return nil, "", false, nil
	}
	i := strings.IndexByte(string(blob), '\n')
	if i < 0 {
		s.dropCorrupt(idx, key)
		return nil, "", false, nil
	}
	s.seq++
	e.seq = s.seq
	idx[key] = e
	if err := s.storeIndex(idx); err != nil {
		return nil, "", false, err
	}
	s.count(MetricCASHits)
	return blob[i+1:], string(blob[:i]), true, nil
}

// dropCorrupt unlinks a key whose object went bad and records it.
func (s *CASStorage) dropCorrupt(idx map[string]casEntry, key string) {
	hash := idx[key].hash
	delete(idx, key)
	s.storeIndex(idx)
	s.gcObject(idx, hash)
	s.count(MetricCASCorrupt)
	s.count(MetricCASMisses)
}

// migrateLocked adopts a legacy flat-format entry into the CAS layout
// (index + object, legacy file removed) and serves it; with no legacy
// file either, the read is a plain miss.
func (s *CASStorage) migrateLocked(idx map[string]casEntry, key string) ([]byte, string, bool, error) {
	legacy := filepath.Join(s.dir, encodeKey(key)+".llvacache")
	blob, err := os.ReadFile(legacy)
	if err != nil {
		s.count(MetricCASMisses)
		return nil, "", false, nil
	}
	i := strings.IndexByte(string(blob), '\n')
	if i < 0 {
		s.count(MetricCASMisses)
		return nil, "", false, nil
	}
	stamp, data := string(blob[:i]), blob[i+1:]
	hash := casHash(stamp, data)
	if _, err := os.Stat(s.objectPath(hash)); err != nil {
		if err := atomicWriteFile(filepath.Join(s.dir, "objects"), s.objectPath(hash), blob); err != nil {
			return nil, "", false, err
		}
	}
	s.seq++
	idx[key] = casEntry{hash: hash, size: int64(len(blob)), seq: s.seq}
	s.evictLocked(idx, key)
	if err := s.storeIndex(idx); err != nil {
		return nil, "", false, err
	}
	os.Remove(legacy)
	s.count(MetricCASMigrations)
	s.count(MetricCASHits)
	return data, stamp, true, nil
}

// Delete implements Storage.
func (s *CASStorage) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A not-yet-migrated legacy entry is still this key's data.
	if err := os.Remove(filepath.Join(s.dir, encodeKey(key)+".llvacache")); err != nil && !os.IsNotExist(err) {
		return err
	}
	idx := s.loadIndex()
	e, ok := idx[key]
	if !ok {
		return nil
	}
	delete(idx, key)
	if err := s.storeIndex(idx); err != nil {
		return err
	}
	s.gcObject(idx, e.hash)
	return nil
}

// Keys implements Storage: indexed keys plus legacy entries not yet
// migrated, sorted.
func (s *CASStorage) Keys() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.loadIndex()
	seen := make(map[string]bool, len(idx))
	out := make([]string, 0, len(idx))
	for k := range idx {
		seen[k] = true
		out = append(out, k)
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".llvacache") {
			if k := decodeKey(strings.TrimSuffix(e.Name(), ".llvacache")); !seen[k] {
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// atomicWriteFile writes data to path durably: temp file in dir,
// fsync, rename, fsync the directory — after it returns, a crash
// leaves either the old file or the complete new one, never a torn or
// vanished entry.
func atomicWriteFile(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".llvacas-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
