// Package pipeline parallelizes the LLVA translator across host cores.
// The paper's performance argument (Section 5.2, Table 2) depends on
// translation being cheap relative to execution, and Section 4.1 frames
// offline/idle-time translation as the mechanism that hides translator
// cost — the same translate-ahead trick DAISY and Transmeta's Crusoe
// use. This package supplies the two halves of that trick for a
// multi-core host:
//
//   - TranslateModule compiles independent functions across a worker
//     pool with output ordering identical to the sequential
//     Translator.TranslateModule (function translation is deterministic
//     and side-effect free, so the parallel result is byte-identical);
//   - Speculator translates a demanded function's static callees ahead
//     of time on background workers with single-flight deduplication,
//     so the demand (JIT) path either finds a ready translation or
//     joins the in-flight one instead of stalling the program.
//
// Translated code is only ever *installed* on the demand path — the
// simulated processor is single-threaded — so speculation changes when
// translation work happens, never what code runs.
package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/telemetry"
)

// ErrTranslate marks every translation failure surfaced by this package
// (and by the llee demand path), so callers can classify them with
// errors.Is across layers without knowing the translator's error types.
var ErrTranslate = errors.New("pipeline: translation failed")

// translateErr tags a translator failure for fn with ErrTranslate.
func translateErr(fn string, err error) error {
	return fmt.Errorf("%w: %%%s: %v", ErrTranslate, fn, err)
}

// Metric families recorded by the translation pipeline. README.md's
// Observability section documents the full schema.
const (
	MetricWorkers     = "pipeline.workers"
	MetricTranslateNS = "pipeline.translate_ns" // per-worker histogram, label worker=N

	MetricSpecQueueDepth  = "pipeline.spec.queue_depth"
	MetricSpecQueuePeak   = "pipeline.spec.queue_peak"
	MetricSpecEnqueued    = "pipeline.spec.enqueued"
	MetricSpecDropped     = "pipeline.spec.dropped"
	MetricSpecTranslated  = "pipeline.spec.translated"
	MetricSpecHits        = "pipeline.spec.hits"
	MetricSpecJoins       = "pipeline.spec.joins"
	MetricSpecWaste       = "pipeline.spec.waste"
	MetricSpecInvalidated = "pipeline.spec.invalidated"
	MetricDemandInline    = "pipeline.demand_inline"
	MetricTierUps         = "pipeline.tierups"
)

// Workers resolves a worker-count setting: n <= 0 means one worker per
// available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// TranslateModule compiles every defined function of tr's module across
// a pool of workers. The returned object is byte-identical to the one
// produced by tr.TranslateModule: functions appear in module order and
// each translation is independent of the others. On error, the first
// failing function in module order is reported. A nil registry records
// into a private one.
func TranslateModule(tr *codegen.Translator, workers int, reg *telemetry.Registry) (*codegen.NativeObject, error) {
	if reg == nil {
		reg = telemetry.New()
	}
	m := tr.Module()
	var fns []*core.Function
	for _, f := range m.Functions {
		if !f.IsDeclaration() {
			fns = append(fns, f)
		}
	}
	obj := &codegen.NativeObject{TargetName: tr.Target().Name, Module: m.Name}
	workers = Workers(workers)
	if workers > len(fns) {
		workers = len(fns)
	}
	if len(fns) == 0 {
		return obj, nil
	}
	reg.Gauge(MetricWorkers).Set(int64(workers))
	if workers <= 1 {
		h := reg.Histogram(MetricTranslateNS, "worker", "0")
		for _, f := range fns {
			start := time.Now()
			nf, err := tr.TranslateFunction(f)
			h.Observe(time.Since(start).Nanoseconds())
			if err != nil {
				return nil, translateErr(f.Name(), err)
			}
			obj.Add(nf)
		}
		return obj, nil
	}

	// Work-stealing over an atomic index; results land in their module-
	// order slot so the output ordering is deterministic regardless of
	// which worker finishes first.
	results := make([]*codegen.NativeFunc, len(fns))
	errs := make([]error, len(fns))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := reg.Histogram(MetricTranslateNS, "worker", strconv.Itoa(w))
			for {
				i := int(next.Add(1)) - 1
				if i >= len(fns) {
					return
				}
				start := time.Now()
				results[i], errs[i] = tr.TranslateFunction(fns[i])
				h.Observe(time.Since(start).Nanoseconds())
			}
		}(w)
	}
	wg.Wait()
	for i := range fns {
		if errs[i] != nil {
			return nil, translateErr(fns[i].Name(), errs[i])
		}
		obj.Add(results[i])
	}
	return obj, nil
}

// Callees returns f's statically-known, defined, non-intrinsic callees
// in first-use order (the call-graph edge set the Speculator walks).
func Callees(f *core.Function) []*core.Function {
	var out []*core.Function
	seen := map[*core.Function]bool{}
	for _, bb := range f.Blocks {
		for _, in := range bb.Instructions() {
			if op := in.Op(); op != core.OpCall && op != core.OpInvoke {
				continue
			}
			cf := in.CalledFunction()
			if cf == nil || cf == f || cf.IsDeclaration() || cf.IsIntrinsic() || seen[cf] {
				continue
			}
			seen[cf] = true
			out = append(out, cf)
		}
	}
	return out
}
