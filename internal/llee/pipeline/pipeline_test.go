package pipeline

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/minic"
	"llva/internal/target"
	"llva/internal/telemetry"
	"llva/internal/workloads"
)

// sameObject asserts two native objects are byte-identical: same
// function order, code bytes, relocations, and instruction counts.
func sameObject(t *testing.T, seq, par *codegen.NativeObject) {
	t.Helper()
	if seq.TargetName != par.TargetName || seq.Module != par.Module {
		t.Fatalf("header mismatch: %s/%s vs %s/%s",
			seq.TargetName, seq.Module, par.TargetName, par.Module)
	}
	if len(seq.Funcs) != len(par.Funcs) {
		t.Fatalf("function count %d vs %d", len(seq.Funcs), len(par.Funcs))
	}
	for i, sf := range seq.Funcs {
		pf := par.Funcs[i]
		if sf.Name != pf.Name {
			t.Fatalf("func %d ordering: %q vs %q", i, sf.Name, pf.Name)
		}
		if !bytes.Equal(sf.Code, pf.Code) {
			t.Errorf("%%%s: code differs (%d vs %d bytes)", sf.Name, len(sf.Code), len(pf.Code))
		}
		if len(sf.Relocs) != len(pf.Relocs) {
			t.Errorf("%%%s: reloc count %d vs %d", sf.Name, len(sf.Relocs), len(pf.Relocs))
			continue
		}
		for j := range sf.Relocs {
			if sf.Relocs[j] != pf.Relocs[j] {
				t.Errorf("%%%s: reloc %d differs: %+v vs %+v", sf.Name, j, sf.Relocs[j], pf.Relocs[j])
			}
		}
		if sf.NumInstrs != pf.NumInstrs || sf.NumLLVA != pf.NumLLVA {
			t.Errorf("%%%s: counts (%d,%d) vs (%d,%d)",
				sf.Name, sf.NumInstrs, sf.NumLLVA, pf.NumInstrs, pf.NumLLVA)
		}
	}
}

// TestParallelTranslateDifferential asserts the worker-pool translation
// of every workload, on both targets, is byte-identical to the
// sequential Translator.TranslateModule reference.
func TestParallelTranslateDifferential(t *testing.T) {
	for _, w := range workloads.All() {
		m, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
			t.Run(w.Name+"/"+d.Name, func(t *testing.T) {
				tr, err := codegen.New(d, m)
				if err != nil {
					t.Fatal(err)
				}
				seq, err := tr.TranslateModule()
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 4, 8} {
					par, err := TranslateModule(tr, workers, nil)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					sameObject(t, seq, par)
				}
			})
		}
	}
}

func compileN(t testing.TB, nfuncs int) *core.Module {
	t.Helper()
	// f{n-1} is a leaf; every f{i} calls f{i+1}; main calls f0. Defined
	// deepest-first so every call sees its callee already declared.
	src := ""
	for i := nfuncs - 1; i >= 0; i-- {
		callee := "return a + x;"
		if i+1 < nfuncs {
			callee = fmt.Sprintf("return a + f%d(x) + x;", i+1)
		}
		src += fmt.Sprintf("int f%d(int x) { int i, a = 0; for (i = 0; i < x; i++) a += i * x; %s }\n", i, callee)
	}
	src += "int main() { return f0(7); }\n"
	m, err := minic.Compile("chain.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestConcurrentDemandSingleFlight hammers Demand for the same
// functions from many goroutines while speculation floods the queue:
// every function must be translated exactly once (single-flight), and
// every caller must get the same result. Run under -race by CI.
func TestConcurrentDemandSingleFlight(t *testing.T) {
	m := compileN(t, 24)
	tr, err := codegen.New(target.VX86, m)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	s := NewSpeculator(tr, 4, reg)

	var fns []*core.Function
	for _, f := range m.Functions {
		if !f.IsDeclaration() {
			fns = append(fns, f)
		}
	}
	// Flood speculation with everything, then demand everything from 8
	// goroutines at once.
	s.Enqueue(fns)
	results := make([][]*codegen.NativeFunc, 8)
	performed := make([]atomic.Int64, len(fns))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, f := range fns {
				nf, did, err := s.Demand(f.Name(), f)
				if err != nil {
					t.Errorf("demand %%%s: %v", f.Name(), err)
					return
				}
				if did {
					performed[i].Add(1)
				}
				results[g] = append(results[g], nf)
				s.EnqueueCallees(f, nil)
			}
		}(g)
	}
	wg.Wait()
	leftover := s.Close()

	// At most one of the 8 demanders of each function performed the
	// translation itself; the rest hit or joined the shared flight.
	for i := range fns {
		if n := performed[i].Load(); n > 1 {
			t.Errorf("%%%s: %d demanders performed the translation, want <= 1", fns[i].Name(), n)
		}
	}

	// Single-flight: one translation per function, no matter how demand
	// and speculation raced.
	total := reg.CounterValue(MetricSpecTranslated) + reg.CounterValue(MetricDemandInline)
	if total != uint64(len(fns)) {
		t.Errorf("translated %d times for %d functions (spec=%d inline=%d)",
			total, len(fns),
			reg.CounterValue(MetricSpecTranslated), reg.CounterValue(MetricDemandInline))
	}
	// Same pointer observed by every demander (the flight's result).
	for g := 1; g < 8; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d saw a different translation for %%%s", g, fns[i].Name())
			}
		}
	}
	// Everything was demanded, so nothing is waste.
	if len(leftover) != 0 {
		t.Errorf("%d unconsumed speculative translations, want 0", len(leftover))
	}
	if w := reg.CounterValue(MetricSpecWaste); w != 0 {
		t.Errorf("waste = %d, want 0", w)
	}
}

// TestSpeculatorWasteAndSalvage enqueues without demanding: Close must
// count the unconsumed translations as waste and hand them back for
// cache write-back.
func TestSpeculatorWasteAndSalvage(t *testing.T) {
	m := compileN(t, 6)
	tr, err := codegen.New(target.VSPARC, m)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	s := NewSpeculator(tr, 2, reg)
	var fns []*core.Function
	for _, f := range m.Functions {
		if !f.IsDeclaration() {
			fns = append(fns, f)
		}
	}
	s.Enqueue(fns)
	// Close discards whatever is still queued (prompt shutdown), so give
	// the workers time to drain the backlog first.
	deadline := time.Now().Add(10 * time.Second)
	for reg.CounterValue(MetricSpecTranslated) < uint64(len(fns)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	leftover := s.Close()
	translated := reg.CounterValue(MetricSpecTranslated)
	if translated == 0 {
		t.Fatal("speculation translated nothing")
	}
	if uint64(len(leftover)) != translated {
		t.Errorf("salvaged %d, translated %d", len(leftover), translated)
	}
	if reg.CounterValue(MetricSpecWaste) != translated {
		t.Errorf("waste = %d, want %d", reg.CounterValue(MetricSpecWaste), translated)
	}
	// Salvaged translations are the real thing.
	ref, err := tr.TranslateFunction(m.Function("f0"))
	if err != nil {
		t.Fatal(err)
	}
	if got := leftover["f0"]; got == nil || !bytes.Equal(got.Code, ref.Code) {
		t.Error("salvaged translation of f0 does not match a fresh one")
	}
	// Close is idempotent and Enqueue after Close is a no-op.
	if again := s.Close(); again != nil {
		t.Error("second Close returned results")
	}
	s.Enqueue(fns)
}

// TestSpeculatorInvalidate drops a completed speculative translation so
// it is neither hit nor salvaged.
func TestSpeculatorInvalidate(t *testing.T) {
	m := compileN(t, 3)
	tr, err := codegen.New(target.VX86, m)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	s := NewSpeculator(tr, 1, reg)
	f := m.Function("f1")
	nf1, performed1, err := s.Demand("f1", f)
	if err != nil {
		t.Fatal(err)
	}
	if !performed1 {
		t.Error("first demand did not perform the translation")
	}
	s.Invalidate("f1")
	nf2, performed2, err := s.Demand("f1", f)
	if err != nil {
		t.Fatal(err)
	}
	if !performed2 {
		t.Error("post-invalidate demand did not retranslate")
	}
	if nf1 == nf2 {
		t.Error("invalidated translation was reused")
	}
	if reg.CounterValue(MetricSpecInvalidated) != 1 {
		t.Errorf("invalidated = %d, want 1", reg.CounterValue(MetricSpecInvalidated))
	}
	s.Close()
}

// TestCallees checks static call-graph extraction order and filtering.
func TestCallees(t *testing.T) {
	src := `
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) * 2; }
int main() { print_int(mid(1)); print_int(leaf(2)); print_int(mid(3)); return 0; }
`
	m, err := minic.Compile("c.c", src)
	if err != nil {
		t.Fatal(err)
	}
	got := Callees(m.Function("main"))
	// print_int is a declaration: excluded. mid before leaf (first use),
	// each once.
	if len(got) != 2 || got[0].Name() != "mid" || got[1].Name() != "leaf" {
		names := make([]string, len(got))
		for i, f := range got {
			names[i] = f.Name()
		}
		t.Errorf("callees = %v, want [mid leaf]", names)
	}
}

// TestWorkers checks the worker-count resolution rule.
func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit count not honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("defaulted count must be >= 1")
	}
}
