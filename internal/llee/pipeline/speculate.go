package pipeline

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/prof"
	"llva/internal/telemetry"
)

// specQueueCap bounds the speculation backlog; enqueues beyond it are
// dropped (and counted) rather than blocking the demand path.
const specQueueCap = 256

// flight is one function's translation, demanded or speculative.
// Exactly one goroutine translates; everyone else waits on done.
type flight struct {
	done        chan struct{}
	nf          *codegen.NativeFunc
	err         error
	speculative bool // started by a background worker
	tier2       bool // profile-guided retranslation (key "tier2:<name>")
	consumed    atomic.Bool
}

// specJob is one queued background translation: a speculative tier-1
// translation of a not-yet-demanded function, or a tier-2 re-translation
// of a hot, already-running one.
type specJob struct {
	f     *core.Function
	tier2 bool
}

// tier2Key is the flights-map key of a tier-2 translation; tier-1 and
// tier-2 code of one function are distinct cache entries with their own
// singleflight.
func tier2Key(name string) string { return "tier2:" + name }

// Speculator runs ahead-of-time JIT translation on background workers
// (paper Section 4.1: use otherwise-idle resources to hide translator
// cost). The demand path calls Demand; callees of demanded functions are
// queued via EnqueueCallees, ordered by persisted-profile call counts
// when available (Section 4.2). Single-flight bookkeeping guarantees
// each function is translated at most once no matter how demand and
// speculation interleave — the flights map doubles as the shared
// native-code cache when many sessions demand from one Speculator.
type Speculator struct {
	tr     *codegen.Translator
	reg    *telemetry.Registry
	tracer *prof.Tracer // nil-safe; spans for background translations

	mu      sync.Mutex
	flights map[string]*flight
	closed  bool
	started bool // background workers spawned (first Enqueue)
	workers int
	depth   int64 // queued-but-not-started entries, mirrors the gauge
	peak    int64

	// Background tier-up (SetTier2): tr2 is the profile-guided
	// translator, onTierUp delivers each finished tier-2 translation for
	// hot-swap installation. Both nil until a profile exists.
	tr2      *codegen.Translator
	onTierUp func(name string, nf *codegen.NativeFunc)

	queue chan specJob
	wg    sync.WaitGroup
}

// NewSpeculator creates a speculation pipeline with the given worker
// pool size over tr. Workers are spawned lazily on the first Enqueue, so
// a Speculator used purely as a single-flight demand cache costs no
// goroutines. A nil registry records into a private one.
func NewSpeculator(tr *codegen.Translator, workers int, reg *telemetry.Registry) *Speculator {
	if reg == nil {
		reg = telemetry.New()
	}
	s := &Speculator{
		tr:      tr,
		reg:     reg,
		flights: make(map[string]*flight),
		workers: Workers(workers),
		queue:   make(chan specJob, specQueueCap),
	}
	reg.Gauge(MetricWorkers).Set(int64(s.workers))
	return s
}

// SetTracer attaches a span tracer; each speculative translation is
// recorded as a span on a per-worker lane of the system process (pid 0).
// Must be called before the first Enqueue; a nil tracer is fine (all
// tracer methods are nil-safe).
func (s *Speculator) SetTracer(t *prof.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

// start spawns the background workers; callers hold s.mu.
func (s *Speculator) start() {
	if s.started || s.closed {
		return
	}
	s.started = true
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
}

// Trace lane for speculation workers: worker i reports as thread
// specWorkerTIDBase+i of the system process (pid 0), keeping background
// translation visually separate from per-session guest lanes.
const specWorkerTIDBase = 100

func (s *Speculator) worker(id int) {
	defer s.wg.Done()
	h := s.reg.Histogram(MetricTranslateNS, "worker", strconv.Itoa(id))
	depth := s.reg.Gauge(MetricSpecQueueDepth)
	translated := s.reg.Counter(MetricSpecTranslated)
	s.mu.Lock()
	tracer := s.tracer // published before start(); snapshot under mu for the race detector
	s.mu.Unlock()
	tid := specWorkerTIDBase + id
	tracer.NameThread(0, tid, "spec worker "+strconv.Itoa(id))
	for j := range s.queue {
		depth.Add(-1)
		name := j.f.Name()
		key, span := name, "speculate:"
		if j.tier2 {
			key, span = tier2Key(name), "tierup:"
		}
		s.mu.Lock()
		s.depth--
		tr, deliver := s.tr, (func(string, *codegen.NativeFunc))(nil)
		if j.tier2 {
			tr, deliver = s.tr2, s.onTierUp
		}
		if s.flights[key] != nil || s.closed || tr == nil {
			// Demanded (or already speculated) since it was queued, or
			// shutting down: skip.
			s.mu.Unlock()
			continue
		}
		fl := &flight{done: make(chan struct{}), speculative: true, tier2: j.tier2}
		s.flights[key] = fl
		s.mu.Unlock()
		end := tracer.Begin(0, tid, "pipeline", span+name, nil)
		start := time.Now()
		nf, err := tr.TranslateFunction(j.f)
		fl.nf = nf
		if err != nil {
			fl.err = translateErr(name, err)
		}
		h.Observe(time.Since(start).Nanoseconds())
		end()
		translated.Inc()
		if j.tier2 && err == nil && deliver != nil {
			// Hand the optimized code to the system for hot-swap; the
			// callback owns delivery, so a tier-2 flight is never waste.
			s.reg.Counter(MetricTierUps).Inc()
			fl.consumed.Store(true)
			deliver(name, nf)
		}
		close(fl.done)
	}
}

// Demand translates f (registered under name) for immediate
// installation. If a translation is ready — speculative, or demanded
// earlier by another session — it is returned without translating
// (hit); if one is in flight the caller joins it instead of duplicating
// the work; otherwise the caller translates inline, excluding everyone
// else from picking the same function. The second result reports
// whether THIS call performed the translation (exactly one caller per
// name sees true, however demands interleave).
func (s *Speculator) Demand(name string, f *core.Function) (*codegen.NativeFunc, bool, error) {
	s.mu.Lock()
	fl := s.flights[name]
	if fl == nil {
		fl = &flight{done: make(chan struct{})}
		s.flights[name] = fl
		s.mu.Unlock()
		nf, err := s.tr.TranslateFunction(f)
		fl.nf = nf
		if err != nil {
			fl.err = translateErr(name, err)
		}
		s.reg.Counter(MetricDemandInline).Inc()
		close(fl.done)
		fl.consumed.Store(true)
		return fl.nf, true, fl.err
	}
	s.mu.Unlock()
	select {
	case <-fl.done:
		s.reg.Counter(MetricSpecHits).Inc()
		s.reg.Events().Emit(telemetry.EvSpecHit, name, 0)
	default:
		s.reg.Counter(MetricSpecJoins).Inc()
		<-fl.done
	}
	fl.consumed.Store(true)
	return fl.nf, false, fl.err
}

// Completed returns the successfully settled tier-1 translations —
// demanded and speculative alike — without stopping the pipeline or
// blocking on in-flight work. This is the write-back view of the shared
// cache; tier-2 results live under their own profile-stamped cache key
// and are reported by CompletedTier2.
func (s *Speculator) Completed() map[string]*codegen.NativeFunc {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*codegen.NativeFunc, len(s.flights))
	for name, fl := range s.flights {
		if fl.tier2 {
			continue
		}
		select {
		case <-fl.done:
			if fl.err == nil && fl.nf != nil {
				out[name] = fl.nf
			}
		default:
		}
	}
	return out
}

// CompletedTier2 returns the settled tier-2 translations, keyed by
// plain function name.
func (s *Speculator) CompletedTier2() map[string]*codegen.NativeFunc {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out map[string]*codegen.NativeFunc
	for name, fl := range s.flights {
		if !fl.tier2 {
			continue
		}
		select {
		case <-fl.done:
			if fl.err == nil && fl.nf != nil {
				if out == nil {
					out = make(map[string]*codegen.NativeFunc)
				}
				out[name[len("tier2:"):]] = fl.nf
			}
		default:
		}
	}
	return out
}

// SetTier2 arms background tier-up: hot functions passed to TierUp are
// re-translated on the worker pool with tr2 (a profile-guided
// translator) and each result is delivered through onTierUp, from the
// worker goroutine, for hot-swap installation. Passing nil disarms.
func (s *Speculator) SetTier2(tr2 *codegen.Translator, onTierUp func(name string, nf *codegen.NativeFunc)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr2 = tr2
	s.onTierUp = onTierUp
}

// TierUp queues functions for background tier-2 re-translation.
// Singleflight holds per function across every session of the System:
// a function already tiered-up or in flight is skipped. No-op until
// SetTier2 armed the pipeline.
func (s *Speculator) TierUp(fns []*core.Function) {
	s.enqueue(fns, true)
}

// EnqueueCallees queues f's static callees for ahead-of-time
// translation, hottest-first when profile call counts are available.
func (s *Speculator) EnqueueCallees(f *core.Function, weights map[string]uint64) {
	callees := Callees(f)
	if len(weights) > 0 {
		sort.SliceStable(callees, func(i, j int) bool {
			return weights[callees[i].Name()] > weights[callees[j].Name()]
		})
	}
	s.Enqueue(callees)
}

// Enqueue queues functions for speculative translation. Functions
// already translated, in flight, or not fitting the queue are skipped.
func (s *Speculator) Enqueue(fns []*core.Function) {
	s.enqueue(fns, false)
}

func (s *Speculator) enqueue(fns []*core.Function, tier2 bool) {
	depth := s.reg.Gauge(MetricSpecQueueDepth)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(fns) == 0 || (tier2 && s.tr2 == nil) {
		return
	}
	s.start()
	for _, f := range fns {
		key := f.Name()
		if tier2 {
			key = tier2Key(key)
		}
		if s.flights[key] != nil {
			continue
		}
		select {
		case s.queue <- specJob{f: f, tier2: tier2}:
			s.depth++
			if s.depth > s.peak {
				s.peak = s.depth
				s.reg.Gauge(MetricSpecQueuePeak).Set(s.peak)
			}
			depth.Add(1)
			s.reg.Counter(MetricSpecEnqueued).Inc()
			s.reg.Events().Emit(telemetry.EvSpecEnqueued, f.Name(), s.depth)
		default:
			s.reg.Counter(MetricSpecDropped).Inc()
		}
	}
}

// Invalidate drops any completed or in-flight translation of name (SMC
// replacement, Section 3.4): the next Demand retranslates and an
// orphaned in-flight result is discarded.
func (s *Speculator) Invalidate(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.flights[name] != nil {
		delete(s.flights, name)
		s.reg.Counter(MetricSpecInvalidated).Inc()
	}
}

// Close discards the remaining queue, stops the workers, and returns the successful
// speculative translations no Demand ever consumed — counted as waste,
// but still valid stamp-keyed translations the manager can write back
// to the offline cache (turning "wasted" speculation into a warmer next
// start). Close is idempotent; after it, Enqueue is a no-op.
func (s *Speculator) Close() map[string]*codegen.NativeFunc {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Gauge(MetricSpecQueueDepth).Set(0)
	out := make(map[string]*codegen.NativeFunc)
	for name, fl := range s.flights {
		<-fl.done // all settled: workers exited, demands are synchronous
		if fl.err != nil || !fl.speculative || fl.tier2 || fl.consumed.Load() {
			continue
		}
		s.reg.Counter(MetricSpecWaste).Inc()
		s.reg.Events().Emit(telemetry.EvSpecWaste, name, 0)
		out[name] = fl.nf
	}
	return out
}
