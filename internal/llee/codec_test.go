package llee

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"

	"llva/internal/codegen"
	"llva/internal/target"
)

func sampleCachedObject() *cachedObject {
	return &cachedObject{
		TargetName: "vx86",
		Module:     "m",
		Funcs: []*codegen.NativeFunc{
			{
				Name: "main",
				Code: []byte{1, 2, 3, 4, 5},
				Relocs: []target.Reloc{
					{Offset: 1, Kind: target.RelocCall, Sym: "callee"},
					{Offset: 9, Kind: target.RelocExt, Sym: "print_int"},
				},
				NumInstrs: 7,
				NumLLVA:   3,
			},
			{Name: "empty"}, // no code, no relocs
			{Name: "leaf", Code: bytes.Repeat([]byte{0xAB}, 300), NumInstrs: 150, NumLLVA: 50},
		},
	}
}

func TestCacheCodecRoundTrip(t *testing.T) {
	co := sampleCachedObject()
	blob := encodeCachedObject(co)
	if !bytes.HasPrefix(blob, codecMagic) {
		t.Fatal("encoded blob is missing the codec magic")
	}
	got, err := decodeCachedObject(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(co, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, co)
	}
}

// TestCacheCodecGobFallback: blobs written before the binary codec are
// plain gob and must still decode.
func TestCacheCodecGobFallback(t *testing.T) {
	co := sampleCachedObject()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(co); err != nil {
		t.Fatal(err)
	}
	got, err := decodeCachedObject(buf.Bytes())
	if err != nil {
		t.Fatalf("gob fallback: %v", err)
	}
	if !reflect.DeepEqual(co, got) {
		t.Error("gob fallback round trip mismatch")
	}
}

func TestCacheCodecCorrupt(t *testing.T) {
	co := sampleCachedObject()
	blob := encodeCachedObject(co)
	cases := map[string][]byte{
		"empty":       {},
		"garbage":     []byte("not a cache blob at all"),
		"bad version": append(append([]byte{}, codecMagic...), 99),
		"truncated":   blob[:len(blob)/2],
		"trailing":    append(append([]byte{}, blob...), 0xFF),
	}
	for name, data := range cases {
		if _, err := decodeCachedObject(data); !errors.Is(err, errCorruptCache) {
			t.Errorf("%s: err = %v, want errCorruptCache", name, err)
		}
	}
}

func TestCacheCodecEmptyObject(t *testing.T) {
	co := &cachedObject{TargetName: "vsparc", Module: "empty"}
	got, err := decodeCachedObject(encodeCachedObject(co))
	if err != nil {
		t.Fatal(err)
	}
	if got.TargetName != "vsparc" || got.Module != "empty" || len(got.Funcs) != 0 {
		t.Errorf("empty object round trip: %+v", got)
	}
}
