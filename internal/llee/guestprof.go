package llee

import (
	"fmt"

	"llva/internal/prof"
	"llva/internal/telemetry"
)

// Guest-profile persistence: the sampling profiler's aggregate (virtual
// PCs, virtual call stacks, per-block hotness) survives the process
// through the same storage API that backs the offline translation cache
// and the instrumented-interpreter profile. The artifact is stamped with
// the module's content hash, so a profile gathered against different
// virtual object code is evicted rather than misattributed, and the
// artifact carries its own format version so a future encoding change
// fails loudly instead of decoding garbage.

func (ms *moduleState) guestProfileKey() string {
	return "guestprof:" + ms.module.Name + ":" + ms.desc.Name
}

// storeGuestProfile persists the sampler's current aggregate, merged
// into any stamp-valid profile already stored (prof.Artifact.Merge sums
// the counts), so repeated runs accumulate hotness instead of the last
// run winning. A stale, corrupt, or incompatible (version/rate) stored
// profile is simply overwritten.
func (ms *moduleState) storeGuestProfile(p *prof.Profiler) error {
	if ms.sys.storage == nil {
		return fmt.Errorf("llee: guest-profile persistence requires the storage API")
	}
	if p == nil {
		return fmt.Errorf("llee: no profiler attached")
	}
	art := p.Artifact(ms.module.Name, ms.desc.Name)
	if old, stamp, ok, _ := ms.sys.storage.Read(ms.guestProfileKey()); ok && stamp == ms.stamp {
		if prev, err := prof.DecodeArtifact(old); err == nil && prev.Merge(art) == nil {
			art = prev
		}
	}
	data, err := art.Encode()
	if err != nil {
		return err
	}
	if err := ms.sys.storage.Write(ms.guestProfileKey(), ms.stamp, data); err != nil {
		return err
	}
	tele := ms.sys.tele
	tele.Counter(MetricProfileStores).Inc()
	tele.Events().Emit(telemetry.EvProfileStored, ms.guestProfileKey(), int64(len(data)))
	return nil
}

// loadGuestProfile reads back a persisted sampling profile, validating
// both the module stamp and the artifact's format version. A missing or
// stale profile is not an error (ok=false); a corrupt or
// wrong-version one is.
func (ms *moduleState) loadGuestProfile() (*prof.Artifact, bool, error) {
	if ms.sys.storage == nil {
		return nil, false, nil
	}
	tele := ms.sys.tele
	data, stamp, ok, err := ms.sys.storage.Read(ms.guestProfileKey())
	if err != nil || !ok {
		return nil, false, err
	}
	if stamp != ms.stamp {
		tele.Counter(MetricStampMismatches).Inc()
		tele.Events().Emit(telemetry.EvStampMismatch, ms.guestProfileKey(), 0)
		ms.evictCache(ms.guestProfileKey())
		return nil, false, nil
	}
	a, err := prof.DecodeArtifact(data)
	if err != nil {
		return nil, false, fmt.Errorf("llee: guest profile: %w", err)
	}
	tele.Counter(MetricProfileLoads).Inc()
	tele.Events().Emit(telemetry.EvProfileLoaded, ms.guestProfileKey(), int64(a.Total))
	return a, true, nil
}

// ID returns the session's process-unique ID (its pid lane in the span
// trace).
func (s *Session) ID() uint64 { return s.id }

// Tenant returns the tenant label carried on this session's spans ("" when
// unset).
func (s *Session) Tenant() string { return s.tenant }

// Profiler returns the attached guest sampling profiler (nil when the
// session was created without WithProfiler).
func (s *Session) Profiler() *prof.Profiler { return s.profiler }

// LastCrash returns the flight recorder's report for the most recent
// unhandled trap, or nil when none fired or the recorder is off.
func (s *Session) LastCrash() *prof.CrashReport { return s.mc.LastCrash() }

// StoreGuestProfile persists the session's sampling-profiler aggregate
// through the storage API, stamped against the current virtual object
// code.
func (s *Session) StoreGuestProfile() error {
	return s.ms.storeGuestProfile(s.profiler)
}

// LoadGuestProfile reads back the persisted sampling profile for this
// session's module and target. ok is false when none is stored or the
// stored one was built against different object code.
func (s *Session) LoadGuestProfile() (*prof.Artifact, bool, error) {
	return s.ms.loadGuestProfile()
}
