package llee

import (
	"io"
	"testing"

	"llva/internal/core"
	"llva/internal/minic"
	"llva/internal/target"
	"llva/internal/workloads"
)

func benchModule(b *testing.B, src string) *core.Module {
	b.Helper()
	m, err := minic.Compile("bench.c", src)
	if err != nil {
		b.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkNewSession measures steady-state session creation on a warm
// System: the module is translated once, then every further NewSession
// reuses the cached native code and the prebuilt image prototype. The
// allocs/op column is the zero-alloc-steady-state contract — after the
// first session the remaining allocations are the Session/Machine
// structs, the machine address space, and the cloned image bytes; no
// re-translation, no re-encoding, no eager tracing state.
func BenchmarkNewSession(b *testing.B) {
	m := benchModule(b, testProg)
	sys := NewSystem()
	defer sys.Close()
	// Warm the shared translation and image prototype.
	if _, err := sys.NewSession(m, target.VX86, io.Discard); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.NewSession(m, target.VX86, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewSessionLarge is the same measurement over a realistic
// multi-function workload, where the per-install copies and per-session
// image re-encoding eliminated in this change used to dominate.
func BenchmarkNewSessionLarge(b *testing.B) {
	w := workloads.ByName("bc")
	m, err := w.CompileOptimized()
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystem()
	defer sys.Close()
	if _, err := sys.NewSession(m, target.VX86, io.Discard); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.NewSession(m, target.VX86, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
