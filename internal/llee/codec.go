package llee

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"llva/internal/codegen"
	"llva/internal/target"
)

// The translation-cache codec. Cached native objects are hot on every
// start (read on the warm path, written on every cold run), so they use
// a hand-rolled length-prefixed binary format instead of gob: no
// reflection, no per-blob type dictionary, and ~an order of magnitude
// faster both ways (BenchmarkCacheCodec). The format is versioned by a
// magic header; blobs written by older builds (plain gob) don't start
// with the magic and fall back to the gob decoder, so existing caches
// keep working.
//
// Allocation discipline (DESIGN.md §13): encoding sizes the output
// exactly (one allocation per blob, no append regrowth), and decoding
// aliases the input — function code and symbol names are views into the
// storage blob, never copied out. The caller owns the blob it passes to
// decodeCachedObject and must not mutate it afterwards; InstallCode
// honors that by patching relocations in machine memory, not in
// NativeFunc.Code.

// codecMagic tags binary-codec cache blobs; the byte after it is the
// format version.
var codecMagic = []byte("LLVC")

const codecVersion = 1

// errCorruptCache marks a cache blob that exists but cannot be decoded.
// Callers treat it as a miss (fall back to the JIT, paper Section 4.1)
// rather than an execution failure, but record it via telemetry.
var errCorruptCache = errors.New("corrupt cached translation")

// encodedSize computes the exact byte length encodeCachedObject will
// produce, so the output buffer is allocated once at final size.
func encodedSize(co *cachedObject) int {
	n := len(codecMagic) + 1
	n += uvarintLen(uint64(len(co.TargetName))) + len(co.TargetName)
	n += uvarintLen(uint64(len(co.Module))) + len(co.Module)
	n += uvarintLen(uint64(len(co.Funcs)))
	for _, f := range co.Funcs {
		n += uvarintLen(uint64(len(f.Name))) + len(f.Name)
		n += uvarintLen(uint64(len(f.Code))) + len(f.Code)
		n += uvarintLen(uint64(len(f.Relocs)))
		for _, r := range f.Relocs {
			n += uvarintLen(uint64(r.Offset)) + 1
			n += uvarintLen(uint64(len(r.Sym))) + len(r.Sym)
		}
		n += uvarintLen(uint64(f.NumInstrs))
		n += uvarintLen(uint64(f.NumLLVA))
	}
	return n
}

// uvarintLen is the encoded length of v as a binary uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func encodeCachedObject(co *cachedObject) []byte {
	buf := make([]byte, 0, encodedSize(co))
	buf = append(buf, codecMagic...)
	buf = append(buf, codecVersion)
	buf = appendString(buf, co.TargetName)
	buf = appendString(buf, co.Module)
	buf = binary.AppendUvarint(buf, uint64(len(co.Funcs)))
	for _, f := range co.Funcs {
		buf = appendString(buf, f.Name)
		buf = binary.AppendUvarint(buf, uint64(len(f.Code)))
		buf = append(buf, f.Code...)
		buf = binary.AppendUvarint(buf, uint64(len(f.Relocs)))
		for _, r := range f.Relocs {
			buf = binary.AppendUvarint(buf, uint64(r.Offset))
			buf = append(buf, byte(r.Kind))
			buf = appendString(buf, r.Sym)
		}
		buf = binary.AppendUvarint(buf, uint64(f.NumInstrs))
		buf = binary.AppendUvarint(buf, uint64(f.NumLLVA))
	}
	return buf
}

// codecReaderPool recycles the decode cursors; decodeCachedObject is on
// the warm-start path of every session and must not allocate scratch.
var codecReaderPool = sync.Pool{New: func() any { return new(codecReader) }}

func decodeCachedObject(data []byte) (*cachedObject, error) {
	if !bytes.HasPrefix(data, codecMagic) {
		// Pre-versioning blob: gob.
		var co cachedObject
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&co); err != nil {
			return nil, fmt.Errorf("%w: %v", errCorruptCache, err)
		}
		return &co, nil
	}
	d := codecReaderPool.Get().(*codecReader)
	defer func() {
		d.buf, d.err = nil, nil
		codecReaderPool.Put(d)
	}()
	d.buf = data[len(codecMagic):]
	if v := d.byte(); v != codecVersion {
		return nil, fmt.Errorf("%w: unknown cache codec version %d", errCorruptCache, v)
	}
	co := &cachedObject{}
	co.TargetName = d.string()
	co.Module = d.string()
	nf := d.uvarint()
	if max := uint64(len(d.buf)); nf > max {
		// A corrupt count cannot exceed one function per remaining byte;
		// bounding it keeps the preallocation below from trusting garbage.
		nf = max
	}
	co.Funcs = make([]*codegen.NativeFunc, 0, nf)
	for i := uint64(0); i < nf && d.err == nil; i++ {
		f := &codegen.NativeFunc{}
		f.Name = d.string()
		f.Code = d.bytes(d.uvarint())
		nr := d.uvarint()
		if max := uint64(len(d.buf)); nr > max {
			nr = max
		}
		if nr > 0 {
			f.Relocs = make([]target.Reloc, 0, nr)
		}
		for j := uint64(0); j < nr && d.err == nil; j++ {
			f.Relocs = append(f.Relocs, target.Reloc{
				Offset: uint32(d.uvarint()),
				Kind:   target.RelocKind(d.byte()),
				Sym:    d.string(),
			})
		}
		f.NumInstrs = int(d.uvarint())
		f.NumLLVA = int(d.uvarint())
		co.Funcs = append(co.Funcs, f)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", errCorruptCache, d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errCorruptCache, len(d.buf))
	}
	return co, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// codecReader is a sticky-error cursor over a cache blob.
type codecReader struct {
	buf []byte
	err error
}

func (d *codecReader) fail() {
	if d.err == nil {
		d.err = errors.New("truncated blob")
	}
}

func (d *codecReader) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *codecReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// bytes returns the next n bytes as a view of the blob (zero copy: the
// decoded object aliases the caller's data).
func (d *codecReader) bytes(n uint64) []byte {
	if d.err != nil || n == 0 {
		return nil
	}
	if uint64(len(d.buf)) < n {
		d.fail()
		return nil
	}
	out := d.buf[:n:n]
	d.buf = d.buf[n:]
	return out
}

func (d *codecReader) string() string {
	return string(d.bytes(d.uvarint()))
}
