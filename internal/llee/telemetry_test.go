package llee

import (
	"context"
	"strings"
	"testing"

	"llva/internal/minic"
	"llva/internal/target"
	"llva/internal/telemetry"
)

// TestProfilePersistenceRoundTrip checks the tentpole claim end to end:
// a profile gathered in one session and persisted through the storage
// API is reloaded by a fresh manager (observable as a ProfileLoaded
// event and non-empty trace-cache stats) without re-profiling, and
// seeds trace-driven relayout on the online-translation path.
func TestProfilePersistenceRoundTrip(t *testing.T) {
	st := NewMemStorage()

	// Session 1: gather and persist the profile only — no native cache,
	// so the next session exercises the JIT path.
	m1, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	sys1 := NewSystem(WithStorage(st))
	sess1, err := sys1.NewSession(m1, target.VSPARC, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess1.GatherProfile("main"); err != nil {
		t.Fatal(err)
	}
	if got := sys1.Telemetry().CounterValue(MetricProfileStores); got != 1 {
		t.Errorf("profile stores = %d, want 1", got)
	}
	if evs := sys1.Telemetry().Events().Find(telemetry.EvProfileStored); len(evs) != 1 {
		t.Errorf("ProfileStored events = %d, want 1", len(evs))
	}

	// Session 2: fresh manager, same storage. The run misses the native
	// cache but reloads the persisted profile, so the trace cache is
	// seeded before the JIT translates anything.
	m2, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	var out2 strings.Builder
	reg := telemetry.New()
	sys2 := NewSystem(WithStorage(st), WithTelemetry(reg))
	sess2, err := sys2.NewSession(m2, target.VSPARC, &out2)
	if err != nil {
		t.Fatal(err)
	}
	if sys2.Telemetry() != reg {
		t.Fatal("WithTelemetry registry not adopted")
	}
	if _, err := sess2.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if !sess2.ProfileSeeded() {
		t.Error("persisted profile was not reloaded")
	}
	if evs := reg.Events().Find(telemetry.EvProfileLoaded); len(evs) != 1 {
		t.Errorf("ProfileLoaded events = %d, want 1", len(evs))
	}
	if ts := sess2.TraceCacheStats(); ts.Traces == 0 || ts.BlocksCovered == 0 {
		t.Errorf("trace cache not seeded: %+v", ts)
	}
	if evs := reg.Events().Find(telemetry.EvTraceFormed); len(evs) != 1 {
		t.Errorf("TraceFormed events = %d, want 1", len(evs))
	}
	// No re-profiling happened: exactly the one stored profile exists and
	// the manager never wrote another.
	if got := reg.CounterValue(MetricProfileStores); got != 0 {
		t.Errorf("session 2 stored %d profiles (re-profiled?)", got)
	}
	if got := reg.CounterValue(MetricCacheMisses); got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}
	if sess2.Stats().Translations == 0 {
		t.Error("JIT path did not translate (expected online translation)")
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 3: warm start — cache hit, profile still seeds the trace
	// cache (without relayout), output identical.
	m3, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	var out3 strings.Builder
	sys3 := NewSystem(WithStorage(st))
	sess3, err := sys3.NewSession(m3, target.VSPARC, &out3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess3.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if !sess3.CacheHit() {
		t.Error("warm run missed the native cache")
	}
	if !sess3.ProfileSeeded() || sess3.TraceCacheStats().Traces == 0 {
		t.Error("warm run did not reseed the trace cache from storage")
	}
	if out3.String() != out2.String() {
		t.Errorf("output differs: %q vs %q", out3.String(), out2.String())
	}
}

// TestStatsMirrorsTelemetry checks that the API-compatible Stats struct
// is an exact snapshot of the registry, and that the machine flushed
// its execution counters into the same registry.
func TestStatsMirrorsTelemetry(t *testing.T) {
	m, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStorage()
	sys := NewSystem(WithStorage(st))
	sess, err := sys.NewSession(m, target.VX86, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	reg := sys.Telemetry()
	st2 := sess.Stats()
	if got := int(reg.CounterValue(MetricTranslations)); got != st2.Translations {
		t.Errorf("translations: registry %d vs Stats %d", got, st2.Translations)
	}
	if sum := reg.Histogram(MetricTranslateNS).Sum(); sum != st2.TranslateNS {
		t.Errorf("translate ns: registry %d vs Stats %d", sum, st2.TranslateNS)
	}
	if got := int(reg.CounterValue(MetricCacheMisses)); got != st2.CacheMisses {
		t.Errorf("cache misses: registry %d vs Stats %d", got, st2.CacheMisses)
	}
	mcStats := sess.Machine().Stats
	if got := reg.CounterValue("machine.instrs"); got != mcStats.Instrs {
		t.Errorf("machine.instrs: registry %d vs machine %d", got, mcStats.Instrs)
	}
	if got := reg.CounterValue("machine.cycles"); got != mcStats.Cycles {
		t.Errorf("machine.cycles: registry %d vs machine %d", got, mcStats.Cycles)
	}
	if mcStats.Branches == 0 || mcStats.BranchesTaken == 0 {
		t.Errorf("branch counters not incremented: %+v", mcStats)
	}
	if mcStats.BranchesTaken > mcStats.Branches {
		t.Errorf("taken (%d) > executed (%d)", mcStats.BranchesTaken, mcStats.Branches)
	}
	if len(reg.Events().Find(telemetry.EvTranslateEnd)) == 0 {
		t.Error("no TranslateEnd events recorded")
	}
	if len(reg.Events().Find(telemetry.EvJITRequest)) == 0 {
		t.Error("no JITRequest events recorded")
	}
}
