package llee

import (
	"llva/internal/telemetry"
	"llva/internal/trace"
)

// Metric families recorded by the execution manager. DESIGN.md's
// Observability section documents the full schema.
const (
	MetricCacheHits       = "llee.cache.hits"
	MetricCacheMisses     = "llee.cache.misses"
	MetricStampMismatches = "llee.cache.stamp_mismatches"
	MetricCacheEvictions  = "llee.cache.evictions"
	MetricCacheCorrupt    = "llee.cache.corrupt"
	MetricTranslations    = "llee.translations"
	MetricTranslateNS     = "llee.translate_ns"
	MetricInvalidations   = "llee.invalidations"
	MetricProfileLoads    = "llee.profile.loads"
	MetricProfileStores   = "llee.profile.stores"

	MetricTraceCount     = "llee.trace.count"
	MetricTraceCovered   = "llee.trace.blocks_covered"
	MetricTraceCrossProc = "llee.trace.cross_procedure"
	MetricTraceCoverage  = "llee.trace.coverage_pct"
	MetricTraceRelaid    = "llee.trace.relaid_functions"
)

// Telemetry returns the manager's metric registry (shared with its
// machine). Pass WithTelemetry to aggregate several managers into one.
func (mg *Manager) Telemetry() *telemetry.Registry { return mg.tele }

// TraceCacheStats reports the state of the software trace cache seeded
// from the persisted profile (zero value when no profile was loaded).
func (mg *Manager) TraceCacheStats() trace.Stats { return mg.traceStats }

// ProfileSeeded reports whether a valid persisted profile was reloaded.
func (mg *Manager) ProfileSeeded() bool { return mg.profileSeeded }

// syncStats refreshes the API-compatible Stats snapshot from the
// telemetry registry — the registry is the single source of truth.
func (mg *Manager) syncStats() {
	t := mg.tele
	mg.Stats.CacheHit = t.CounterValue(MetricCacheHits) > 0
	mg.Stats.CacheMisses = int(t.CounterValue(MetricCacheMisses))
	mg.Stats.Translations = int(t.CounterValue(MetricTranslations))
	mg.Stats.TranslateNS = t.Histogram(MetricTranslateNS).Sum()
	mg.Stats.Invalidations = int(t.CounterValue(MetricInvalidations))
}

// recordTranslate accounts one translation batch (n functions, ns total).
func (mg *Manager) recordTranslate(name string, ns int64, n int) {
	mg.tele.Histogram(MetricTranslateNS).Observe(ns)
	mg.tele.Counter(MetricTranslations).Add(uint64(n))
	mg.tele.Events().Emit(telemetry.EvTranslateEnd, name, ns)
}

// recordTraceStats publishes software-trace-cache state.
func (mg *Manager) recordTraceStats(st trace.Stats) {
	st.Export(mg.tele)
	mg.tele.Events().Emit(telemetry.EvTraceFormed, mg.Module.Name, int64(st.Traces))
}
