package llee

import (
	"llva/internal/telemetry"
	"llva/internal/trace"
)

// Metric families recorded by the execution manager. DESIGN.md's
// Observability section documents the full schema.
const (
	MetricCacheHits       = "llee.cache.hits"
	MetricCacheMisses     = "llee.cache.misses"
	MetricStampMismatches = "llee.cache.stamp_mismatches"
	MetricCacheEvictions  = "llee.cache.evictions"
	MetricCacheCorrupt    = "llee.cache.corrupt"
	MetricTranslations    = "llee.translations"
	MetricTranslateNS     = "llee.translate_ns"
	MetricInvalidations   = "llee.invalidations"
	MetricProfileLoads    = "llee.profile.loads"
	MetricProfileStores   = "llee.profile.stores"

	MetricTraceCount     = "llee.trace.count"
	MetricTraceCovered   = "llee.trace.blocks_covered"
	MetricTraceCrossProc = "llee.trace.cross_procedure"
	MetricTraceCoverage  = "llee.trace.coverage_pct"
	MetricTraceRelaid    = "llee.trace.relaid_functions"

	// Per-tenant usage, labeled {tenant=...} via telemetry.Key
	// (tenant.go): completed runs and simulated cycles consumed.
	MetricTenantRuns   = "llee.tenant.runs"
	MetricTenantCycles = "llee.tenant.cycles"

	// Session reuse (Session.Reset): resets performed, and how many
	// dirty pages each reset had to restore.
	MetricSessionResets   = "llee.session.resets"
	MetricResetDirtyPages = "llee.session.reset_dirty_pages"
)

// recordTranslate accounts one translation batch (n functions, ns total).
func (sys *System) recordTranslate(name string, ns int64, n int) {
	sys.tele.Histogram(MetricTranslateNS).Observe(ns)
	sys.tele.Counter(MetricTranslations).Add(uint64(n))
	sys.tele.Events().Emit(telemetry.EvTranslateEnd, name, ns)
}

// recordTraceStats publishes software-trace-cache state.
func (ms *moduleState) recordTraceStats(st trace.Stats) {
	st.Export(ms.sys.tele)
	ms.sys.tele.Events().Emit(telemetry.EvTraceFormed, ms.module.Name, int64(st.Traces))
}
