package llee

import (
	"context"
	"io"
	"testing"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/target"
	"llva/internal/telemetry"
)

// TestSMCReplaceEvictsPredecodedBlocks drives llva.smc.replace through a
// full manager run: main executes v1's blocks (predecoding and chaining
// them on the simulated processor), replaces v1 with v2 mid-run, and
// calls v1 again — the call must re-enter the JIT and execute v2, and
// the machine must report evicted blocks, not serve stale predecode.
func TestSMCReplaceEvictsPredecodedBlocks(t *testing.T) {
	src := `
declare void %llva.smc.replace(sbyte* %t, sbyte* %s)
int %v1(int %x) {
entry:
    %r = add int %x, 1
    ret int %r
}
int %v2(int %x) {
entry:
    %r = add int %x, 2
    ret int %r
}
int %main() {
entry:
    %a = call int %v1(int 1)
    %t = cast int (int)* %v1 to sbyte*
    %s = cast int (int)* %v2 to sbyte*
    call void %llva.smc.replace(sbyte* %t, sbyte* %s)
    %b = call int %v1(int 1)
    %r = add int %a, %b
    ret int %r
}
`
	m, err := asm.Parse("smc", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		reg := telemetry.New()
		sys := NewSystem(WithTelemetry(reg))
		sess, err := sys.NewSession(m, d, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(context.Background(), "main")
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		v := res.Value
		// v1(1)=2 before the replace, v1(1)→v2(1)=3 after: 5.
		if int32(v) != 5 {
			t.Errorf("%s: main = %d, want 5 (stale code executed after smc.replace?)",
				d.Name, int32(v))
		}
		if n := reg.CounterValue("machine.block_invalidate"); n == 0 {
			t.Errorf("%s: smc.replace evicted no predecoded blocks", d.Name)
		}
		if n := reg.CounterValue("machine.block_builds"); n == 0 {
			t.Errorf("%s: no blocks predecoded", d.Name)
		}
	}
}
