package llee

import (
	"context"
	"strings"
	"testing"

	"llva/internal/minic"
	"llva/internal/target"
)

const hotProg = `
static int classify(int n) {
	if (n % 7 == 0) return 3;      /* cold */
	if (n % 2 == 0) return 1;      /* warm */
	return 2;                       /* hot-ish */
}
int main() {
	int i, acc = 0;
	for (i = 0; i < 3000; i++) acc += classify(i);
	print_int(acc); print_nl();
	return 0;
}
`

// TestIdleTimePGO drives the paper's Section 4.2 loop: run + profile,
// idle-time reoptimize into the cache, then a warm run executes the
// trace-optimized translation with no online translation at all.
func TestIdleTimePGO(t *testing.T) {
	st := NewMemStorage()

	// Session 1: normal run, then profile gathering (transparent to the
	// user in the paper; explicit here).
	m1, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	sys1 := NewSystem(WithStorage(st))
	var out1 strings.Builder
	sess1, err := sys1.NewSession(m1, target.VSPARC, &out1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess1.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if err := sess1.GatherProfile("main"); err != nil {
		t.Fatal(err)
	}
	baseCycles := sess1.Machine().Stats.Cycles
	if err := sys1.Close(); err != nil {
		t.Fatal(err)
	}

	// Idle time: reoptimize with the stored profile.
	m2, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := NewSystem(WithStorage(st))
	sess2, err := sys2.NewSession(m2, target.VSPARC, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sess2.IdleTimeOptimize()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Traces == 0 {
		t.Error("idle-time optimization formed no traces")
	}

	// Session 2: the user runs again — pure cache hit on optimized code,
	// identical output, and no regression in simulated cycles.
	m3, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	sys3 := NewSystem(WithStorage(st))
	var out3 strings.Builder
	sess3, err := sys3.NewSession(m3, target.VSPARC, &out3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess3.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if !sess3.CacheHit() {
		t.Error("post-idle-time run missed the cache")
	}
	if sess3.Stats().Translations != 0 {
		t.Errorf("post-idle-time run translated %d functions online", sess3.Stats().Translations)
	}
	if out3.String() != out1.String() {
		t.Errorf("optimized output differs: %q vs %q", out3.String(), out1.String())
	}
	optCycles := sess3.Machine().Stats.Cycles
	if optCycles > baseCycles+baseCycles/50 {
		t.Errorf("idle-time optimization regressed cycles: %d -> %d", baseCycles, optCycles)
	}
	t.Logf("cycles: %d -> %d; traces=%d coverage=%.0f%%",
		baseCycles, optCycles, stats.Traces, stats.Coverage*100)
}

// TestIdleTimeWithoutProfile falls back to a plain offline translation.
func TestIdleTimeWithoutProfile(t *testing.T) {
	st := NewMemStorage()
	m, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(WithStorage(st))
	sess, err := sys.NewSession(m, target.VX86, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sess.IdleTimeOptimize()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Traces != 0 {
		t.Error("traces formed with no profile")
	}
	// And the translation landed in the cache.
	m2, _ := minic.Compile("hot.c", hotProg)
	sys2 := NewSystem(WithStorage(st))
	sess2, err := sys2.NewSession(m2, target.VX86, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if !sess2.CacheHit() {
		t.Error("offline translation did not populate the cache")
	}
}
