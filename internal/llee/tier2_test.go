package llee

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"llva/internal/codegen"
	"llva/internal/llee/pipeline"
	"llva/internal/minic"
	"llva/internal/prof"
	"llva/internal/target"
	"llva/internal/telemetry"
)

// seedGuestProfile runs hotProg once under the sampling profiler and
// persists the guest profile (plus, as a side effect of Close, the
// tier-1 native cache). It returns the reference output and the tier-1
// simulated cycle count.
func seedGuestProfile(t *testing.T, st Storage, d *target.Desc) (string, uint64) {
	t.Helper()
	m, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(WithStorage(st))
	var out strings.Builder
	s, err := sys.NewSession(m, d, &out, WithProfiler(prof.NewProfiler(64)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if err := s.StoreGuestProfile(); err != nil {
		t.Fatal(err)
	}
	cycles := s.Machine().Stats.Cycles
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	return out.String(), cycles
}

// hotFuncCount decodes the persisted guest profile and reports how many
// functions clear the tier-2 hotness bar — the expected number of
// background tier-ups.
func hotFuncCount(t *testing.T, st Storage, module string, d *target.Desc) int {
	t.Helper()
	data, _, ok, err := st.Read("guestprof:" + module + ":" + d.Name)
	if err != nil || !ok {
		t.Fatalf("guest profile read: ok=%v err=%v", ok, err)
	}
	art, err := prof.DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	return len(art.HotFuncs(tier2MinShare))
}

// TestTier2WarmStartUsesOptimizedCode: with both the tier-1 cache and a
// guest profile persisted, a WithTier2 system eagerly re-translates the
// hot functions at tier 2 and loads them with the cached object — same
// output, fewer simulated cycles — and a third system skips straight to
// the profile-stamped tier-2 cache without translating anything.
func TestTier2WarmStartUsesOptimizedCode(t *testing.T) {
	st := NewMemStorage()
	ref, baseCycles := seedGuestProfile(t, st, target.VX86)

	m2, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := telemetry.New()
	sys2 := NewSystem(WithStorage(st), WithTelemetry(reg2), WithTier2(true))
	var out2 strings.Builder
	s2, err := sys2.NewSession(m2, target.VX86, &out2)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.CacheHit() {
		t.Fatal("tier-2 warm start missed the tier-1 cache")
	}
	if _, err := s2.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if out2.String() != ref {
		t.Errorf("tier-2 output = %q, want %q", out2.String(), ref)
	}
	if got := reg2.CounterValue(codegen.MetricTier2Funcs); got == 0 {
		t.Error("warm start translated no tier-2 functions")
	}
	if got := reg2.CounterValue(codegen.MetricSuperblocks); got == 0 {
		t.Error("tier-2 translation formed no superblocks")
	}
	optCycles := s2.Machine().Stats.Cycles
	if optCycles >= baseCycles {
		t.Errorf("tier-2 did not reduce cycles: %d -> %d", baseCycles, optCycles)
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third start: the profile-stamped tier-2 cache is valid, so the hot
	// functions decode from storage — no tier-2 translation at all — and
	// execution is cycle-identical to the second start.
	m3, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	reg3 := telemetry.New()
	sys3 := NewSystem(WithStorage(st), WithTelemetry(reg3), WithTier2(true))
	defer sys3.Close()
	var out3 strings.Builder
	s3, err := sys3.NewSession(m3, target.VX86, &out3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if out3.String() != ref {
		t.Errorf("cached tier-2 output = %q, want %q", out3.String(), ref)
	}
	if got := reg3.CounterValue(codegen.MetricTier2Funcs); got != 0 {
		t.Errorf("cached tier-2 start translated %d functions, want 0", got)
	}
	if got := s3.Machine().Stats.Cycles; got != optCycles {
		t.Errorf("cached tier-2 cycles = %d, want %d (byte-identical code)", got, optCycles)
	}
	t.Logf("cycles: tier-1 %d -> tier-2 %d", baseCycles, optCycles)
}

// waitTierUps blocks until the background workers finished n tier-up
// translations (they run on, and synchronize through, the speculator's
// worker pool; the machine installs them later, at block boundaries).
func waitTierUps(t *testing.T, reg *telemetry.Registry, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for reg.CounterValue(pipeline.MetricTierUps) < uint64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("tier-ups stalled: %d of %d after 10s",
				reg.CounterValue(pipeline.MetricTierUps), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTier2HotSwapReplacesTier1: on an online start (guest profile
// present, no tier-1 cache), the first run JIT-compiles at tier 1 and
// queues the hot functions for background tier-up; the finished
// translations hot-swap over the installed tier-1 code, so the second
// run of the same session is cheaper — with byte-identical output.
func TestTier2HotSwapReplacesTier1(t *testing.T) {
	st := NewMemStorage()
	ref, _ := seedGuestProfile(t, st, target.VX86)
	m, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the tier-1 cache so the next system starts online.
	if err := st.Delete("native:" + m.Name + ":" + target.VX86.Name); err != nil {
		t.Fatal(err)
	}
	hot := hotFuncCount(t, st, m.Name, target.VX86)
	if hot == 0 {
		t.Fatal("no hot functions in the seeded profile")
	}

	reg := telemetry.New()
	sys := NewSystem(WithStorage(st), WithTelemetry(reg), WithTier2(true))
	defer sys.Close()
	var out strings.Builder
	s, err := sys.NewSession(m, target.VX86, &out)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Run(context.Background(), "main")
	if err != nil {
		t.Fatal(err)
	}
	waitTierUps(t, reg, hot)
	r2, err := s.Run(context.Background(), "main")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != ref+ref {
		t.Errorf("output across hot-swap = %q, want %q", out.String(), ref+ref)
	}
	if s.Machine().Stats.Replacements == 0 {
		t.Error("hot-swap never replaced installed tier-1 code")
	}
	if r2.Cycles >= r1.Cycles {
		t.Errorf("post-swap run is not cheaper: %d -> %d cycles", r1.Cycles, r2.Cycles)
	}
	if got := reg.CounterValue(codegen.MetricTier2Funcs); got != uint64(hot) {
		t.Errorf("%s = %d, want %d", codegen.MetricTier2Funcs, got, hot)
	}
	t.Logf("run cycles: %d -> %d (%d hot funcs, %d replacements)",
		r1.Cycles, r2.Cycles, hot, s.Machine().Stats.Replacements)
}

// TestTier2ConcurrentSessions: 8 sessions racing background tier-up
// must each keep producing the reference output, while the system
// translates each hot function at tier 2 exactly once (singleflight),
// and no session installs a given tier-2 function more than once.
// Run under -race by CI (make race-tier2).
func TestTier2ConcurrentSessions(t *testing.T) {
	st := NewMemStorage()
	ref, _ := seedGuestProfile(t, st, target.VX86)
	m, err := minic.Compile("hot.c", hotProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("native:" + m.Name + ":" + target.VX86.Name); err != nil {
		t.Fatal(err)
	}
	hot := hotFuncCount(t, st, m.Name, target.VX86)

	reg := telemetry.New()
	sys := NewSystem(WithStorage(st), WithTelemetry(reg), WithTier2(true))
	const sessions = 8
	outs := make([]strings.Builder, sessions)
	sess := make([]*Session, sessions)
	for i := range sess {
		s, err := sys.NewSession(m, target.VX86, &outs[i])
		if err != nil {
			t.Fatal(err)
		}
		sess[i] = s
	}
	var wg sync.WaitGroup
	for i := range sess {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Two runs per session: the second drains any tier-up
			// deliveries that arrived while the machine was idle, so
			// swapped and unswapped executions interleave freely.
			for run := 0; run < 2; run++ {
				if _, err := sess[i].Run(context.Background(), "main"); err != nil {
					t.Errorf("session %d run %d: %v", i, run, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := range outs {
		if outs[i].String() != ref+ref {
			t.Errorf("session %d: output = %q, want %q", i, outs[i].String(), ref+ref)
		}
	}
	// Exactly-once tier-up system-wide: every hot function was demanded
	// by all 8 sessions, but the singleflight key collapses the 8 TierUp
	// requests into one background translation each.
	if got := reg.CounterValue(pipeline.MetricTierUps); got != uint64(hot) {
		t.Errorf("%s = %d, want %d", pipeline.MetricTierUps, got, hot)
	}
	if got := reg.CounterValue(codegen.MetricTier2Funcs); got != uint64(hot) {
		t.Errorf("%s = %d, want %d", codegen.MetricTier2Funcs, got, hot)
	}
	// Exactly-once installation per session: a function is either served
	// at tier 2 directly on demand (no replacement) or swapped over its
	// tier-1 installation once — never twice. Which of the two happens
	// per function is a benign timing race.
	for i := range sess {
		if n := sess[i].Machine().Stats.Replacements; n > uint64(hot) {
			t.Errorf("session %d: %d replacements for %d hot funcs", i, n, hot)
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreGuestProfileMerges: two processes profiling the same module
// accumulate — the second StoreGuestProfile merges with the persisted
// artifact instead of overwriting it.
func TestStoreGuestProfileMerges(t *testing.T) {
	st := NewMemStorage()
	var want uint64
	for i := 0; i < 2; i++ {
		m, err := minic.Compile("hot.c", hotProg)
		if err != nil {
			t.Fatal(err)
		}
		sys := NewSystem(WithStorage(st))
		p := prof.NewProfiler(64)
		s, err := sys.NewSession(m, target.VX86, &strings.Builder{}, WithProfiler(p))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(context.Background(), "main"); err != nil {
			t.Fatal(err)
		}
		if err := s.StoreGuestProfile(); err != nil {
			t.Fatal(err)
		}
		if p.Total() == 0 {
			t.Fatalf("process %d recorded no samples", i)
		}
		// The persisted artifact accumulates every process's samples.
		want += p.Total()
		a, ok, err := s.LoadGuestProfile()
		if err != nil || !ok {
			t.Fatalf("load after store %d: ok=%v err=%v", i, ok, err)
		}
		if a.Total != want {
			t.Errorf("store %d: persisted total = %d, want %d (sum of both processes)", i, a.Total, want)
		}
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
