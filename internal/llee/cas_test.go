package llee

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"llva/internal/target"
	"llva/internal/telemetry"
)

func casObjects(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, "objects"))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".tmp") {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestCASDedup: identical content written under different logical keys
// — and again through a second store instance sharing the directory —
// is stored once.
func TestCASDedup(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	st.SetTelemetry(reg)
	payload := []byte("identical native code")
	if err := st.Write("native:a:vx86", "s1", payload); err != nil {
		t.Fatal(err)
	}
	if err := st.Write("native:b:vx86", "s1", payload); err != nil {
		t.Fatal(err)
	}
	if n := len(casObjects(t, dir)); n != 1 {
		t.Errorf("objects = %d, want 1 (dedup)", n)
	}
	if n := reg.CounterValue(MetricCASDedups); n != 1 {
		t.Errorf("dedup counter = %d, want 1", n)
	}

	// A second store instance on the same directory picks the index up
	// from disk and dedups too.
	st2, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := telemetry.New()
	st2.SetTelemetry(reg2)
	if err := st2.Write("native:c:vsparc", "s1", payload); err != nil {
		t.Fatal(err)
	}
	if n := len(casObjects(t, dir)); n != 1 {
		t.Errorf("objects after cross-instance write = %d, want 1", n)
	}
	if n := reg2.CounterValue(MetricCASDedups); n != 1 {
		t.Errorf("cross-instance dedup counter = %d, want 1", n)
	}
	// All three keys read back, through either instance.
	for _, k := range []string{"native:a:vx86", "native:b:vx86", "native:c:vsparc"} {
		data, stamp, ok, err := st.Read(k)
		if err != nil || !ok || stamp != "s1" || string(data) != string(payload) {
			t.Errorf("read %q: data=%q stamp=%q ok=%v err=%v", k, data, stamp, ok, err)
		}
	}
	// Distinct content under one of the keys splits it off again, and
	// the shared object survives for the remaining keys.
	if err := st.Write("native:b:vx86", "s2", []byte("changed")); err != nil {
		t.Fatal(err)
	}
	if n := len(casObjects(t, dir)); n != 2 {
		t.Errorf("objects after divergent rewrite = %d, want 2", n)
	}
	if data, _, ok, _ := st.Read("native:a:vx86"); !ok || string(data) != string(payload) {
		t.Errorf("shared object lost after sibling rewrite: ok=%v data=%q", ok, data)
	}
}

// TestCASLRUEviction: with a byte cap, writes evict the
// least-recently-used key — and a Read refreshes recency.
func TestCASLRUEviction(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	st.SetTelemetry(reg)
	// Each entry is 1 (stamp) + 1 (newline) + 100 (payload) = 102 bytes;
	// the cap fits two.
	st.SetMaxBytes(250)
	pay := func(c byte) []byte { return []byte(strings.Repeat(string(c), 100)) }
	for _, k := range []string{"a", "b"} {
		if err := st.Write(k, "s", pay(k[0])); err != nil {
			t.Fatal(err)
		}
	}
	// Writing c must evict a (the oldest).
	if err := st.Write("c", "s", pay('c')); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := st.Read("a"); ok {
		t.Error("a survived eviction; want LRU eviction of the oldest key")
	}
	if n := reg.CounterValue(MetricCASEvictions); n != 1 {
		t.Errorf("eviction counter = %d, want 1", n)
	}
	// Touch b, then write d: now c is the LRU victim, not b.
	if _, _, ok, _ := st.Read("b"); !ok {
		t.Fatal("b missing before recency test")
	}
	if err := st.Write("d", "s", pay('d')); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := st.Read("b"); !ok {
		t.Error("b evicted despite being recently read")
	}
	if _, _, ok, _ := st.Read("c"); ok {
		t.Error("c survived; want it evicted as least recently used")
	}
	// Evicted keys' objects are gone from disk too.
	if n := len(casObjects(t, dir)); n != 2 {
		t.Errorf("objects on disk = %d, want 2 after evictions", n)
	}
}

// TestCASLegacyMigration: entries written by the flat-format DirStorage
// are listed, readable, and adopted into the CAS layout on first read.
func TestCASLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	legacy, err := NewFlatDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.Write("native:prog:vx86", "oldstamp", []byte("legacy code")); err != nil {
		t.Fatal(err)
	}
	st, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	st.SetTelemetry(reg)
	keys, err := st.Keys()
	if err != nil || len(keys) != 1 || keys[0] != "native:prog:vx86" {
		t.Fatalf("Keys() = %v, %v; want the legacy key", keys, err)
	}
	data, stamp, ok, err := st.Read("native:prog:vx86")
	if err != nil || !ok || stamp != "oldstamp" || string(data) != "legacy code" {
		t.Fatalf("migrating read: data=%q stamp=%q ok=%v err=%v", data, stamp, ok, err)
	}
	if n := reg.CounterValue(MetricCASMigrations); n != 1 {
		t.Errorf("migration counter = %d, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, encodeKey("native:prog:vx86")+".llvacache")); !os.IsNotExist(err) {
		t.Error("legacy flat file still present after migration")
	}
	if n := len(casObjects(t, dir)); n != 1 {
		t.Errorf("objects after migration = %d, want 1", n)
	}
	// Second read comes from the CAS, not migration.
	if _, _, ok, err := st.Read("native:prog:vx86"); !ok || err != nil {
		t.Fatalf("post-migration read: ok=%v err=%v", ok, err)
	}
	if n := reg.CounterValue(MetricCASMigrations); n != 1 {
		t.Errorf("second read migrated again (counter %d)", n)
	}
}

// TestCASCorruptObject: a bit-flipped object fails hash verification
// and reads as a miss — never as data.
func TestCASCorruptObject(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	st.SetTelemetry(reg)
	if err := st.Write("k", "s", []byte("precious bits")); err != nil {
		t.Fatal(err)
	}
	objs := casObjects(t, dir)
	if len(objs) != 1 {
		t.Fatal("expected one object")
	}
	path := filepath.Join(dir, "objects", objs[0])
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x40
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	data, _, ok, err := st.Read("k")
	if err != nil || ok {
		t.Fatalf("corrupt read: data=%q ok=%v err=%v; want a clean miss", data, ok, err)
	}
	if n := reg.CounterValue(MetricCASCorrupt); n != 1 {
		t.Errorf("corrupt counter = %d, want 1", n)
	}
}

// TestCASConcurrent: writers, readers and deleters race on one store
// under a byte cap; every read that succeeds must return untorn,
// key-matching content (run under -race via make race-cache).
func TestCASConcurrent(t *testing.T) {
	st, err := NewDirStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetMaxBytes(4 * 1024)
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5"}
	pay := func(k string) string { return strings.Repeat(k, 256) }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := keys[(g+i)%len(keys)]
				switch {
				case g%4 == 3 && i%10 == 9:
					if err := st.Delete(k); err != nil {
						t.Errorf("delete %s: %v", k, err)
					}
				case g%2 == 0:
					if err := st.Write(k, "s", []byte(pay(k))); err != nil {
						t.Errorf("write %s: %v", k, err)
					}
				default:
					data, stamp, ok, err := st.Read(k)
					if err != nil {
						t.Errorf("read %s: %v", k, err)
					}
					if ok && (stamp != "s" || string(data) != pay(k)) {
						t.Errorf("read %s: torn or mismatched content (%d bytes)", k, len(data))
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCASDedupAcrossSystems: two Systems sharing one cache directory
// through separate store instances translate the same module; the
// second write-back finds the first one's object and dedups instead of
// writing a second copy.
func TestCASDedupAcrossSystems(t *testing.T) {
	dir := t.TempDir()
	stA, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	regB := telemetry.New()
	stB.SetTelemetry(regB)

	// Speculation off keeps each system's write-back content exactly the
	// demanded translations — deterministic, so the two systems produce
	// byte-identical cache payloads.
	sysA := NewSystem(WithStorage(stA), WithSpeculation(false))
	sysB := NewSystem(WithStorage(stB), WithSpeculation(false))
	defer sysA.Close()
	defer sysB.Close()

	var outA, outB strings.Builder
	// Both sessions exist before either runs, so both start cold and
	// both write back.
	sessA, err := sysA.NewSession(compileTest(t), target.VX86, &outA)
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := sysB.NewSession(compileTest(t), target.VX86, &outB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sessA.Run(context.Background(), "main"); err != nil {
		t.Fatalf("system A run: %v", err)
	}
	if _, err := sessB.Run(context.Background(), "main"); err != nil {
		t.Fatalf("system B run: %v", err)
	}
	if outA.String() != "328350\n" || outB.String() != outA.String() {
		t.Fatalf("outputs differ: %q vs %q", outA.String(), outB.String())
	}
	if n := regB.CounterValue(MetricCASDedups); n < 1 {
		t.Errorf("system B dedup counter = %d, want >= 1", n)
	}
	if n := len(casObjects(t, dir)); n != 1 {
		t.Errorf("shared directory holds %d objects, want 1", n)
	}
}
