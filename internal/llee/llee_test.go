package llee

import (
	"context"
	"strings"
	"testing"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/minic"
	"llva/internal/target"
)

const testProg = `
int work(int n) {
	int i, acc = 0;
	for (i = 0; i < n; i++) acc += i * i;
	return acc;
}
int main() {
	print_int(work(100)); print_nl();
	return 0;
}
`

func compileTest(t *testing.T) *core.Module {
	t.Helper()
	m, err := minic.Compile("prog.c", testProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunWithoutStorage(t *testing.T) {
	// No storage API: online translation only, still correct (paper:
	// "they are strictly optional and the system will operate correctly
	// in their absence").
	m := compileTest(t)
	sys := NewSystem()
	var out strings.Builder
	sess, err := sys.NewSession(m, target.VX86, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background(), "main"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.String() != "328350\n" {
		t.Errorf("output = %q", out.String())
	}
	if sess.CacheHit() || sess.Stats().Translations == 0 {
		t.Errorf("expected online JIT translation: %+v", sess.Stats())
	}
}

func TestColdThenWarmCache(t *testing.T) {
	m := compileTest(t)
	st := NewMemStorage()

	// Cold run: JIT, write-back (Close flushes speculative leftovers).
	sys1 := NewSystem(WithStorage(st))
	var out1 strings.Builder
	sess1, err := sys1.NewSession(m, target.VSPARC, &out1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess1.Run(context.Background(), "main"); err != nil {
		t.Fatalf("cold run: %v\n%s", err, out1.String())
	}
	if sess1.CacheHit() {
		t.Error("cold run claimed a cache hit")
	}
	if sess1.Stats().Translations == 0 {
		t.Error("cold run translated nothing")
	}
	if err := sys1.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm run: loads the cached translation, no JIT at all.
	m2 := compileTest(t)
	sys2 := NewSystem(WithStorage(st))
	var out2 strings.Builder
	sess2, err := sys2.NewSession(m2, target.VSPARC, &out2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Run(context.Background(), "main"); err != nil {
		t.Fatalf("warm run: %v\n%s", err, out2.String())
	}
	if !sess2.CacheHit() {
		t.Error("warm run missed the cache")
	}
	if sess2.Stats().Translations != 0 {
		t.Errorf("warm run translated %d functions, want 0", sess2.Stats().Translations)
	}
	if out1.String() != out2.String() {
		t.Errorf("outputs differ: %q vs %q", out1.String(), out2.String())
	}
	if sess2.Machine().Stats.JITRequests != 0 {
		t.Errorf("warm run issued %d JIT requests", sess2.Machine().Stats.JITRequests)
	}
}

func TestStaleCacheInvalidatedByStamp(t *testing.T) {
	m := compileTest(t)
	st := NewMemStorage()
	sys := NewSystem(WithStorage(st))
	var out strings.Builder
	sess, err := sys.NewSession(m, target.VX86, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// A *different* program under the same module name must not reuse the
	// stale translation (the timestamp/stamp check, Section 4.1).
	m2, err := minic.Compile("prog.c", strings.Replace(testProg, "100", "10", 1))
	if err != nil {
		t.Fatal(err)
	}
	sys2 := NewSystem(WithStorage(st))
	var out2 strings.Builder
	sess2, err := sys2.NewSession(m2, target.VX86, &out2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if sess2.CacheHit() {
		t.Error("stale cached translation was used despite stamp mismatch")
	}
	if out2.String() != "285\n" {
		t.Errorf("output = %q, want %q", out2.String(), "285\n")
	}
}

func TestOfflineTranslation(t *testing.T) {
	m := compileTest(t)
	st := NewMemStorage()
	sys := NewSystem(WithStorage(st))
	var out strings.Builder
	sess, err := sys.NewSession(m, target.VX86, &out)
	if err != nil {
		t.Fatal(err)
	}
	// Idle-time offline translation, no execution.
	if err := sess.TranslateOffline(); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("offline translation executed the program")
	}
	// Subsequent execution hits the cache.
	m2 := compileTest(t)
	sys2 := NewSystem(WithStorage(st))
	var out2 strings.Builder
	sess2, err := sys2.NewSession(m2, target.VX86, &out2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if !sess2.CacheHit() {
		t.Error("offline-translated program was retranslated online")
	}
}

func TestDirStorage(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write("k1", "stampA", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, stamp, ok, err := st.Read("k1")
	if err != nil || !ok || stamp != "stampA" || string(data) != "hello" {
		t.Fatalf("read = %q %q %v %v", data, stamp, ok, err)
	}
	keys, err := st.Keys()
	if err != nil || len(keys) != 1 {
		t.Fatalf("keys = %v (%v)", keys, err)
	}
	if err := st.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := st.Read("k1"); ok {
		t.Error("entry survived delete")
	}
}

const smcProg = `
declare void %llva.smc.replace(sbyte* %target, sbyte* %source)
declare void %print_int(long %v)
declare void %print_nl()

int %impl.v1(int %x) {
entry:
    %r = add int %x, 1
    ret int %r
}
int %impl.v2(int %x) {
entry:
    %r = mul int %x, 100
    ret int %r
}
int %main() {
entry:
    %a = call int %impl.v1(int 5)
    %al = cast int %a to long
    call void %print_int(long %al)
    call void %print_nl()
    %t = cast int (int)* %impl.v1 to sbyte*
    %s = cast int (int)* %impl.v2 to sbyte*
    call void %llva.smc.replace(sbyte* %t, sbyte* %s)
    %b = call int %impl.v1(int 5)
    %bl = cast int %b to long
    call void %print_int(long %bl)
    call void %print_nl()
    ret int 0
}
`

// TestSMCOnMachine checks the full Section 3.4 path on native code: the
// replacement takes effect on the next invocation, via translation
// invalidation and retranslation.
func TestSMCOnMachine(t *testing.T) {
	m, err := asm.Parse("smc", smcProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		sys := NewSystem()
		var out strings.Builder
		sess, err := sys.NewSession(m, d, &out)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(context.Background(), "main"); err != nil {
			t.Fatalf("%s: %v\n%s", d.Name, err, out.String())
		}
		if out.String() != "6\n500\n" {
			t.Errorf("%s: output = %q, want %q", d.Name, out.String(), "6\n500\n")
		}
		if sess.Stats().Invalidations != 1 {
			t.Errorf("%s: invalidations = %d, want 1", d.Name, sess.Stats().Invalidations)
		}
	}
}
