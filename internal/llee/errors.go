package llee

import (
	"errors"
	"fmt"

	"llva/internal/llee/pipeline"
	"llva/internal/machine"
	"llva/internal/rt"
)

// Typed error taxonomy of the session API. Every failure surfaced by
// System.NewSession and Session.Run classifies under exactly one of
// these with errors.Is/errors.As, uniformly across the llee, machine,
// and pipeline layers:
//
//	ErrCanceled   the run's context was canceled or its deadline passed
//	ErrOutOfGas   the run exhausted its WithGas cycle budget
//	ErrTranslate  the translator rejected a function (JIT or offline)
//	ErrBadModule  the module, target, or requested entry is unusable
//	ErrExit       the program called exit() — an outcome, not a failure
//	*ErrTrap      execution ended in an unhandled machine trap
//
// The sentinels for conditions detected below llee are re-exported from
// the layer that owns them (llee imports machine and pipeline, never
// the reverse), so errors.Is works against either package's name.
var (
	// ErrCanceled is machine.ErrCanceled: Session.Run stopped at a block
	// boundary because its context was done. The chain also matches the
	// context's own error (context.Canceled or context.DeadlineExceeded).
	ErrCanceled = machine.ErrCanceled
	// ErrOutOfGas is machine.ErrOutOfGas: Session.Run stopped at a block
	// boundary because its WithGas cycle budget was exhausted. Use
	// errors.As with *machine.GasError to read the exact cycles consumed
	// and the budget the run started with.
	ErrOutOfGas = machine.ErrOutOfGas
	// ErrTranslate is pipeline.ErrTranslate: a demand, speculative, or
	// offline translation failed.
	ErrTranslate = pipeline.ErrTranslate
	// ErrExit is rt.ErrExit: the program called exit(). Use errors.As
	// with *rt.ExitError to read the exit code.
	ErrExit = rt.ErrExit
	// ErrBadModule reports an unusable module: it fails to encode, the
	// target rejects it, or a requested entry function does not exist.
	ErrBadModule = errors.New("llee: bad module")
)

// ErrTrap reports that a run ended in an unhandled machine trap. It
// wraps the underlying *machine.TrapError, so errors.As reaches the
// machine-level detail and trap constants.
type ErrTrap struct {
	Num   uint64 // trap number (machine.TrapMemoryFault, ...)
	PC    uint64 // faulting program counter
	Cause error  // the underlying *machine.TrapError
}

func (e *ErrTrap) Error() string {
	return fmt.Sprintf("llee: trap %d at pc=0x%x: %v", e.Num, e.PC, e.Cause)
}

func (e *ErrTrap) Unwrap() error { return e.Cause }
