package llee

import (
	"context"
	"errors"
	"io"
	"testing"

	"llva/internal/core"
	"llva/internal/machine"
	"llva/internal/minic"
	"llva/internal/target"
	"llva/internal/telemetry"
)

// TestGasThroughSessionRun: WithGas exhaustion surfaces through
// Session.Run as an error matching llee.ErrOutOfGas (and carrying the
// *machine.GasError details), and the cycles-used at exhaustion are
// deterministic — the same budget stops at the same virtual cycle in
// every fresh System, on both targets.
func TestGasThroughSessionRun(t *testing.T) {
	m, err := compileHot(t)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 10_000
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		var firstUsed uint64
		for run := 0; run < 2; run++ {
			sys := NewSystem()
			sess, err := sys.NewSession(m, d, io.Discard, WithGas(budget))
			if err != nil {
				t.Fatal(err)
			}
			if sess.Gas() != budget {
				t.Fatalf("%s: Gas() = %d, want %d", d.Name, sess.Gas(), budget)
			}
			res, err := sess.Run(context.Background(), "main")
			if !errors.Is(err, ErrOutOfGas) {
				t.Fatalf("%s: errors.Is(ErrOutOfGas) false: %v", d.Name, err)
			}
			var ge *machine.GasError
			if !errors.As(err, &ge) {
				t.Fatalf("%s: no *machine.GasError in chain: %v", d.Name, err)
			}
			if ge.Used < budget || ge.Budget != budget {
				t.Fatalf("%s: used %d of budget %d (error says %d)", d.Name, ge.Used, budget, ge.Budget)
			}
			if res.Cycles != ge.Used {
				t.Fatalf("%s: Result.Cycles %d != GasError.Used %d", d.Name, res.Cycles, ge.Used)
			}
			if run == 0 {
				firstUsed = ge.Used
			} else if ge.Used != firstUsed {
				t.Fatalf("%s: nondeterministic exhaustion: %d vs %d cycles", d.Name, firstUsed, ge.Used)
			}
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestGasDeterministicTier2: exhaustion stays deterministic when the
// session executes profile-guided tier-2 code from a warm cache — the
// config the serving daemon runs steady-state. (Tier-2 code retires
// different cycle counts than tier-1 by design; the invariant is that
// each configuration exhausts at ITS same cycle on every run.)
func TestGasDeterministicTier2(t *testing.T) {
	m, err := compileHot(t)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStorage()

	// Seed: cold run populates the native cache, profile gathering the
	// guest profile tier-2 needs.
	sys := NewSystem(WithStorage(st))
	sess, err := sys.NewSession(m, target.VX86, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if err := sess.GatherProfile("main"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	const budget = 10_000
	var firstUsed uint64
	for run := 0; run < 2; run++ {
		m2, err := compileHot(t)
		if err != nil {
			t.Fatal(err)
		}
		sys2 := NewSystem(WithStorage(st), WithTier2(true))
		sess2, err := sys2.NewSession(m2, target.VX86, io.Discard, WithGas(budget))
		if err != nil {
			t.Fatal(err)
		}
		if !sess2.CacheHit() {
			t.Fatal("tier-2 run missed the cache (online tier-up is wall-clock-timed; this test needs the deterministic offline path)")
		}
		_, err = sess2.Run(context.Background(), "main")
		var ge *machine.GasError
		if !errors.As(err, &ge) {
			t.Fatalf("run %d: want *machine.GasError, got %v", run, err)
		}
		if run == 0 {
			firstUsed = ge.Used
		} else if ge.Used != firstUsed {
			t.Fatalf("tier-2 nondeterministic exhaustion: %d vs %d cycles", firstUsed, ge.Used)
		}
		if err := sys2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTenantAccounting: every Run of a WithTenant session accrues its
// cycles and a run count to the tenant — on the System snapshot API and
// as labeled telemetry — and unlabeled sessions accrue nowhere.
func TestTenantAccounting(t *testing.T) {
	m := compileTest(t)
	reg := telemetry.New()
	sys := NewSystem(WithTelemetry(reg))

	runOnce := func(tenant string) uint64 {
		var opts []SessionOption
		if tenant != "" {
			opts = append(opts, WithTenant(tenant))
		}
		sess, err := sys.NewSession(m, target.VX86, io.Discard, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if sess.Tenant() != tenant {
			t.Fatalf("Tenant() = %q, want %q", sess.Tenant(), tenant)
		}
		res, err := sess.Run(context.Background(), "main")
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}

	alice := runOnce("alice") + runOnce("alice")
	bob := runOnce("bob")
	runOnce("") // unlabeled: accounted nowhere

	if u := sys.TenantUsage("alice"); u.Runs != 2 || u.Cycles != alice {
		t.Errorf("alice usage = %+v, want {Runs:2 Cycles:%d}", u, alice)
	}
	if u := sys.TenantUsage("bob"); u.Runs != 1 || u.Cycles != bob {
		t.Errorf("bob usage = %+v, want {Runs:1 Cycles:%d}", u, bob)
	}
	if u := sys.TenantUsage(""); u.Runs != 0 || u.Cycles != 0 {
		t.Errorf("empty tenant accrued usage: %+v", u)
	}
	if all := sys.TenantUsages(); len(all) != 2 {
		t.Errorf("TenantUsages has %d entries, want 2: %v", len(all), all)
	}
	if got := reg.CounterValue(telemetry.Key(MetricTenantRuns, "tenant", "alice")); got != 2 {
		t.Errorf("alice runs counter = %d, want 2", got)
	}
	if got := reg.CounterValue(telemetry.Key(MetricTenantCycles, "tenant", "bob")); got != bob {
		t.Errorf("bob cycles counter = %d, want %d", got, bob)
	}
}

// compileHot compiles the shared hot-loop program fresh (Systems share
// canonical module state keyed by content stamp, so tests that want
// separate Systems compile their own copy).
func compileHot(t *testing.T) (*core.Module, error) {
	t.Helper()
	return minic.Compile("hot.c", hotProg)
}
