package llee

import (
	"context"
	"io"
	"strings"
	"testing"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/llee/pipeline"
	"llva/internal/minic"
	"llva/internal/obj"
	"llva/internal/target"
	"llva/internal/telemetry"
)

// cacheKeyStamp computes the storage key and content stamp a System
// would use for m on d, so tests can plant blobs BEFORE construction
// (the cache is read once, when the module state is created).
func cacheKeyStamp(t *testing.T, m *core.Module, d *target.Desc) (string, string) {
	t.Helper()
	enc, err := obj.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	return "native:" + m.Name + ":" + d.Name, Stamp(enc)
}

const chainProg = `
int leaf(int x) { return x * 3 + 1; }
int mid(int x) { return leaf(x) + x; }
int top(int x) { return mid(x) - 2; }
int main() {
	print_int(top(10)); print_nl();
	return 0;
}
`

// TestCorruptCacheFallsBackToJIT: a cache blob with a valid stamp but
// garbage contents must be treated as a miss — surfaced through
// telemetry, evicted, and replaced by online translation — never as an
// execution failure.
func TestCorruptCacheFallsBackToJIT(t *testing.T) {
	m := compileTest(t)
	st := NewMemStorage()
	reg := telemetry.New()
	// Plant garbage under the real key with the real stamp, so only the
	// decode step can reject it.
	key, stamp := cacheKeyStamp(t, m, target.VX86)
	if err := st.Write(key, stamp, []byte("\x00not a cache blob")); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(WithStorage(st), WithTelemetry(reg))
	var out strings.Builder
	sess, err := sys.NewSession(m, target.VX86, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background(), "main"); err != nil {
		t.Fatalf("run with corrupt cache: %v", err)
	}
	if out.String() != "328350\n" {
		t.Errorf("output = %q", out.String())
	}
	if sess.CacheHit() {
		t.Error("corrupt entry counted as a cache hit")
	}
	if sess.Stats().Translations == 0 {
		t.Error("corrupt cache did not fall back to JIT")
	}
	if got := reg.CounterValue(MetricCacheCorrupt); got != 1 {
		t.Errorf("%s = %d, want 1", MetricCacheCorrupt, got)
	}
	if got := reg.CounterValue(MetricCacheEvictions); got != 1 {
		t.Errorf("%s = %d, want 1", MetricCacheEvictions, got)
	}
	// The run's write-back must have replaced the garbage with a valid
	// blob: the next run is a clean warm hit.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sys2 := NewSystem(WithStorage(st))
	var out2 strings.Builder
	sess2, err := sys2.NewSession(compileTest(t), target.VX86, &out2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Run(context.Background(), "main"); err != nil {
		t.Fatalf("warm run after corruption recovery: %v", err)
	}
	if !sess2.CacheHit() {
		t.Error("recovered cache entry missed")
	}
	if out2.String() != out.String() {
		t.Errorf("outputs differ: %q vs %q", out2.String(), out.String())
	}
}

// TestStaleCacheEvicted: a stamp mismatch must delete the dead blob, not
// just ignore it.
func TestStaleCacheEvicted(t *testing.T) {
	m := compileTest(t)
	st := NewMemStorage()
	reg := telemetry.New()
	key, _ := cacheKeyStamp(t, m, target.VSPARC)
	if err := st.Write(key, "stale-stamp", []byte("old translation")); err != nil {
		t.Fatal(err)
	}
	// Creating the session validates the cache entry: the stale blob must
	// be detected and evicted right there.
	sys := NewSystem(WithStorage(st), WithTelemetry(reg))
	sess, err := sys.NewSession(m, target.VSPARC, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if sess.CacheHit() {
		t.Error("stale entry counted as a cache hit")
	}
	if _, _, ok, _ := st.Read(key); ok {
		t.Error("stale blob survived the stamp mismatch")
	}
	if got := reg.CounterValue(MetricStampMismatches); got != 1 {
		t.Errorf("%s = %d, want 1", MetricStampMismatches, got)
	}
	if got := reg.CounterValue(MetricCacheEvictions); got != 1 {
		t.Errorf("%s = %d, want 1", MetricCacheEvictions, got)
	}
}

// TestMergeForWriteBack: the write-back merge must preserve cached
// functions no session retranslated, prefer the fresh translation on
// collision, keep module function order, and drop names that are not
// module functions — all from the in-memory view, never re-reading
// storage.
func TestMergeForWriteBack(t *testing.T) {
	m := compileTest(t) // defines work and main, in that order
	nf := func(name string, fill byte) *codegen.NativeFunc {
		return &codegen.NativeFunc{Name: name, Code: []byte{fill, fill}}
	}
	cached := map[string]*codegen.NativeFunc{
		"work": nf("work", 1), // only in the old cache: must survive
		"main": nf("main", 2), // superseded by a fresh translation
	}
	fresh := map[string]*codegen.NativeFunc{
		"main":  nf("main", 3),
		"ghost": nf("ghost", 4), // not a module function: dropped
	}
	funcs := mergeForWriteBack(m, cached, fresh)
	got := map[string]byte{}
	for _, f := range funcs {
		got[f.Name] = f.Code[0]
	}
	if len(funcs) != 2 || got["work"] != 1 || got["main"] != 3 {
		t.Errorf("merged cache = %v, want work:1 main:3", got)
	}
	// Deterministic layout: module order, whatever map iteration did.
	var order []string
	for _, f := range funcs {
		order = append(order, f.Name)
	}
	var want []string
	for _, f := range m.Functions {
		if _, ok := got[f.Name()]; ok {
			want = append(want, f.Name())
		}
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("function order = %v, want %v (module order)", order, want)
		}
	}
}

// TestConcurrentSpeculativeRun exercises the full online path with
// speculation across a call chain: background workers race the machine's
// demand translations while the program runs. Run under -race by CI.
func TestConcurrentSpeculativeRun(t *testing.T) {
	m, err := minic.Compile("chain.c", chainProg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		reg := telemetry.New()
		sys := NewSystem(WithTelemetry(reg), WithTranslateWorkers(4), WithSpeculation(true))
		var out strings.Builder
		sess, err := sys.NewSession(m, d, &out)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(context.Background(), "main"); err != nil {
			t.Fatalf("%s: %v\n%s", d.Name, err, out.String())
		}
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
		if out.String() != "39\n" { // leaf(10)=31, mid=41, top=39
			t.Errorf("%s: output = %q, want %q", d.Name, out.String(), "39\n")
		}
		// main's callees were queued; translation happened exactly once
		// per executed function no matter how demand and speculation raced.
		if reg.CounterValue(pipeline.MetricSpecEnqueued) == 0 {
			t.Errorf("%s: speculation enqueued nothing", d.Name)
		}
		spec := reg.CounterValue(pipeline.MetricSpecTranslated)
		inline := reg.CounterValue(pipeline.MetricDemandInline)
		if spec+inline != 4 { // main, top, mid, leaf
			t.Errorf("%s: spec=%d inline=%d, want total 4", d.Name, spec, inline)
		}
	}
}

// TestSpeculativeAndSequentialRunsAgree: the same program with
// speculation on and off must behave identically, and the write-back of
// a speculative run must be a valid warm cache for a sequential one.
func TestSpeculativeAndSequentialRunsAgree(t *testing.T) {
	m, err := minic.Compile("chain.c", chainProg)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStorage()
	sysS := NewSystem(WithStorage(st), WithTranslateWorkers(4), WithSpeculation(true))
	var outSpec strings.Builder
	sessS, err := sysS.NewSession(m, target.VX86, &outSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sessS.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if err := sysS.Close(); err != nil {
		t.Fatal(err)
	}
	sysQ := NewSystem(WithStorage(st), WithSpeculation(false))
	var outSeq strings.Builder
	sessQ, err := sysQ.NewSession(m, target.VX86, &outSeq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sessQ.Run(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}
	if outSpec.String() != outSeq.String() {
		t.Errorf("outputs differ: %q vs %q", outSpec.String(), outSeq.String())
	}
	if !sessQ.CacheHit() {
		t.Error("speculative run's write-back was not a usable warm cache")
	}
	if sessQ.Stats().Translations != 0 {
		t.Errorf("warm sequential run translated %d functions, want 0", sessQ.Stats().Translations)
	}
}
