// Package image builds the static data segment of an LLVA program: it
// assigns addresses to global variables and encodes their initializers as
// raw bytes for the configured pointer size and endianness. Both the
// reference interpreter and the native-code loader use it, so globals have
// the same layout on every execution engine.
package image

import (
	"encoding/binary"
	"fmt"
	"math"

	"llva/internal/core"
)

// FuncFixup records a location in the data segment that must receive the
// address of a function once code has been placed.
type FuncFixup struct {
	Offset uint64 // byte offset within Data
	Name   string // function name
}

// Data is the encoded static data segment of a module.
type Data struct {
	Base       uint64
	Bytes      []byte
	GlobalAddr map[string]uint64
	FuncFixups []FuncFixup
}

// Build lays out and encodes all globals of m starting at base.
func Build(m *core.Module, base uint64) (*Data, error) {
	lay := m.Layout()
	d := &Data{Base: base, GlobalAddr: make(map[string]uint64)}

	// Pass 1: assign addresses.
	off := uint64(0)
	for _, g := range m.Globals {
		a := uint64(lay.Align(g.ValueType()))
		off = (off + a - 1) &^ (a - 1)
		d.GlobalAddr[g.Name()] = base + off
		off += uint64(lay.Size(g.ValueType()))
	}
	d.Bytes = make([]byte, off)

	// Pass 2: encode initializers.
	enc := &encoder{m: m, lay: lay, d: d}
	for _, g := range m.Globals {
		if g.Init == nil {
			continue // external: left zeroed
		}
		at := d.GlobalAddr[g.Name()] - base
		if err := enc.constant(g.Init, at); err != nil {
			return nil, fmt.Errorf("image: global %%%s: %w", g.Name(), err)
		}
	}
	return d, nil
}

type encoder struct {
	m   *core.Module
	lay core.Layout
	d   *Data
}

func (e *encoder) putInt(off uint64, size int, v uint64) {
	b := e.d.Bytes[off : off+uint64(size)]
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		if e.m.LittleEndian {
			binary.LittleEndian.PutUint16(b, uint16(v))
		} else {
			binary.BigEndian.PutUint16(b, uint16(v))
		}
	case 4:
		if e.m.LittleEndian {
			binary.LittleEndian.PutUint32(b, uint32(v))
		} else {
			binary.BigEndian.PutUint32(b, uint32(v))
		}
	case 8:
		if e.m.LittleEndian {
			binary.LittleEndian.PutUint64(b, v)
		} else {
			binary.BigEndian.PutUint64(b, v)
		}
	}
}

func (e *encoder) constant(c *core.Constant, off uint64) error {
	t := c.Type()
	switch c.CK {
	case core.ConstZero, core.ConstUndef:
		return nil // already zero
	case core.ConstInt, core.ConstBool:
		e.putInt(off, int(e.lay.Size(t)), c.I)
		return nil
	case core.ConstFloat:
		if t.Kind() == core.FloatKind {
			e.putInt(off, 4, uint64(math.Float32bits(float32(c.F))))
		} else {
			e.putInt(off, 8, math.Float64bits(c.F))
		}
		return nil
	case core.ConstNull:
		return nil
	case core.ConstGlobal:
		switch ref := c.Ref.(type) {
		case *core.GlobalVariable:
			addr, ok := e.d.GlobalAddr[ref.Name()]
			if !ok {
				return fmt.Errorf("reference to unknown global %%%s", ref.Name())
			}
			e.putInt(off, e.m.PointerSize, addr)
			return nil
		case *core.Function:
			e.d.FuncFixups = append(e.d.FuncFixups, FuncFixup{Offset: off, Name: ref.Name()})
			return nil
		}
		return fmt.Errorf("unresolved global reference")
	case core.ConstArray:
		esz := uint64(e.lay.Size(t.Elem()))
		for i, el := range c.Elems {
			if err := e.constant(el, off+uint64(i)*esz); err != nil {
				return err
			}
		}
		return nil
	case core.ConstStruct:
		for i, el := range c.Elems {
			fo := uint64(e.lay.FieldOffset(t, i))
			if err := e.constant(el, off+fo); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unencodable constant kind %d", c.CK)
}

// Clone returns a copy of d whose Bytes are private. PatchFuncAddrs
// writes resolved function addresses into Bytes, so a prototype image
// shared across machines must be cloned per machine; the address map
// and fixup list are never mutated after Build and stay shared.
func (d *Data) Clone() *Data {
	return &Data{
		Base:       d.Base,
		Bytes:      append([]byte(nil), d.Bytes...),
		GlobalAddr: d.GlobalAddr,
		FuncFixups: d.FuncFixups,
	}
}

// PatchFuncAddrs resolves all function fixups using the supplied address
// map, writing pointer-size values with the module's endianness.
func (d *Data) PatchFuncAddrs(m *core.Module, addrOf func(name string) (uint64, bool)) error {
	for _, fx := range d.FuncFixups {
		addr, ok := addrOf(fx.Name)
		if !ok {
			return fmt.Errorf("image: no address for function %%%s", fx.Name)
		}
		b := d.Bytes[fx.Offset : fx.Offset+uint64(m.PointerSize)]
		if m.PointerSize == 4 {
			if m.LittleEndian {
				binary.LittleEndian.PutUint32(b, uint32(addr))
			} else {
				binary.BigEndian.PutUint32(b, uint32(addr))
			}
		} else {
			if m.LittleEndian {
				binary.LittleEndian.PutUint64(b, addr)
			} else {
				binary.BigEndian.PutUint64(b, addr)
			}
		}
	}
	return nil
}
