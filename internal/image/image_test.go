package image

import (
	"encoding/binary"
	"testing"

	"llva/internal/asm"
	"llva/internal/core"
)

const src = `
target endian = little
target pointersize = 64

%counter = global long 42
%pair = global { int, double } { int 7, double 1.5 }
%arr = constant [3 x short] [ short 1, short -2, short 3 ]
%msg = constant [3 x ubyte] "ab"
%ptr = global long* %counter
%fptab = global [2 x void ()*] [ void ()* %f, void ()* %g ]
%ext = external global int

void %f() {
entry:
    ret void
}
void %g() {
entry:
    ret void
}
`

func build(t *testing.T) (*core.Module, *Data) {
	t.Helper()
	m, err := asm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	d, err := Build(m, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestScalarEncoding(t *testing.T) {
	_, d := build(t)
	off := d.GlobalAddr["counter"] - d.Base
	if got := binary.LittleEndian.Uint64(d.Bytes[off:]); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
}

func TestStructEncoding(t *testing.T) {
	_, d := build(t)
	off := d.GlobalAddr["pair"] - d.Base
	if got := binary.LittleEndian.Uint32(d.Bytes[off:]); got != 7 {
		t.Errorf("pair.0 = %d, want 7", got)
	}
	// double at offset 8 (alignment padding after the int)
	bits := binary.LittleEndian.Uint64(d.Bytes[off+8:])
	if bits != 0x3FF8000000000000 { // 1.5
		t.Errorf("pair.1 bits = %#x", bits)
	}
}

func TestArrayAndStringEncoding(t *testing.T) {
	_, d := build(t)
	off := d.GlobalAddr["arr"] - d.Base
	if int16(binary.LittleEndian.Uint16(d.Bytes[off+2:])) != -2 {
		t.Error("negative short element wrong")
	}
	soff := d.GlobalAddr["msg"] - d.Base
	if string(d.Bytes[soff:soff+2]) != "ab" || d.Bytes[soff+2] != 0 {
		t.Errorf("string bytes = % x", d.Bytes[soff:soff+3])
	}
}

func TestGlobalToGlobalPointer(t *testing.T) {
	_, d := build(t)
	off := d.GlobalAddr["ptr"] - d.Base
	got := binary.LittleEndian.Uint64(d.Bytes[off:])
	if got != d.GlobalAddr["counter"] {
		t.Errorf("ptr = %#x, want address of counter %#x", got, d.GlobalAddr["counter"])
	}
}

func TestFunctionFixups(t *testing.T) {
	m, d := build(t)
	if len(d.FuncFixups) != 2 {
		t.Fatalf("%d function fixups, want 2", len(d.FuncFixups))
	}
	addrs := map[string]uint64{"f": 0xAAAA0, "g": 0xBBBB0}
	if err := d.PatchFuncAddrs(m, func(name string) (uint64, bool) {
		a, ok := addrs[name]
		return a, ok
	}); err != nil {
		t.Fatal(err)
	}
	off := d.GlobalAddr["fptab"] - d.Base
	if got := binary.LittleEndian.Uint64(d.Bytes[off:]); got != 0xAAAA0 {
		t.Errorf("fptab[0] = %#x", got)
	}
	if got := binary.LittleEndian.Uint64(d.Bytes[off+8:]); got != 0xBBBB0 {
		t.Errorf("fptab[1] = %#x", got)
	}
}

func TestAlignmentOfGlobals(t *testing.T) {
	_, d := build(t)
	if d.GlobalAddr["counter"]%8 != 0 {
		t.Error("long global not 8-aligned")
	}
	if d.GlobalAddr["pair"]%8 != 0 {
		t.Error("struct with double not 8-aligned")
	}
	// external globals get zeroed space
	if _, ok := d.GlobalAddr["ext"]; !ok {
		t.Error("external global has no address")
	}
}
