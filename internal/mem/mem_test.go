package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(1<<20, true)
	fn := func(off uint16, v uint64, szSel uint8) bool {
		size := 1 << (szSel % 4) // 1,2,4,8
		addr := uint64(NullGuard) + uint64(off)
		if err := m.Store(addr, size, v); err != nil {
			return false
		}
		got, err := m.Load(addr, size)
		if err != nil {
			return false
		}
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*uint(size)) - 1
		}
		return got == v&mask
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestEndianness(t *testing.T) {
	le := New(1<<16, true)
	be := New(1<<16, false)
	addr := uint64(NullGuard)
	le.Store(addr, 4, 0x11223344)
	be.Store(addr, 4, 0x11223344)
	lb, _ := le.Bytes(addr, 4)
	bb, _ := be.Bytes(addr, 4)
	if lb[0] != 0x44 || lb[3] != 0x11 {
		t.Errorf("little-endian bytes: % x", lb)
	}
	if bb[0] != 0x11 || bb[3] != 0x44 {
		t.Errorf("big-endian bytes: % x", bb)
	}
}

func TestNullGuardFaults(t *testing.T) {
	m := New(1<<16, true)
	if _, err := m.Load(0, 8); err == nil {
		t.Error("null load did not fault")
	}
	if _, err := m.Load(NullGuard-1, 1); err == nil {
		t.Error("guard-page load did not fault")
	}
	if err := m.Store(8, 4, 1); err == nil {
		t.Error("null store did not fault")
	}
	if _, err := m.Load(m.Size()-4, 8); err == nil {
		t.Error("out-of-bounds load did not fault")
	}
	// overflow wrap
	if _, err := m.Load(^uint64(0)-2, 8); err == nil {
		t.Error("wrapping load did not fault")
	}
}

func TestAllocatorReuseAndZeroing(t *testing.T) {
	m := New(1<<20, true)
	m.SetHeapStart(NullGuard + 64)
	a, err := m.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if a%16 != 0 {
		t.Errorf("allocation not 16-aligned: %#x", a)
	}
	m.Store(a, 8, 0xDEAD)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Errorf("freed block not reused: %#x vs %#x", b, a)
	}
	if v, _ := m.Load(b, 8); v != 0 {
		t.Errorf("reused block not zeroed: %#x", v)
	}
	// double free faults
	m.Free(b)
	if err := m.Free(b); err == nil {
		t.Error("double free did not fault")
	}
	// free(null) is a no-op
	if err := m.Free(0); err != nil {
		t.Error("free(0) must be a no-op")
	}
}

func TestStackAllocation(t *testing.T) {
	m := New(1<<20, true)
	sp0 := m.SP()
	a, err := m.PushStack(24)
	if err != nil {
		t.Fatal(err)
	}
	if a >= sp0 || a%16 != 0 {
		t.Errorf("stack allocation at %#x (sp was %#x)", a, sp0)
	}
	if err := m.SetSP(sp0); err != nil {
		t.Fatal(err)
	}
	// stack overflow into the heap region faults
	if err := m.SetSP(100); err == nil {
		t.Error("stack collision did not fault")
	}
}

func TestFloatRoundTrip(t *testing.T) {
	m := New(1<<16, true)
	addr := uint64(NullGuard)
	if err := m.StoreFloat(addr, 8, 3.25); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.LoadFloat(addr, 8); v != 3.25 {
		t.Errorf("double round trip = %v", v)
	}
	if err := m.StoreFloat(addr, 4, 1.5); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.LoadFloat(addr, 4); v != 1.5 {
		t.Errorf("float round trip = %v", v)
	}
}

func TestCString(t *testing.T) {
	m := New(1<<16, true)
	addr := uint64(NullGuard)
	m.WriteBytes(addr, []byte("hello\x00world"))
	s, err := m.CString(addr)
	if err != nil || s != "hello" {
		t.Errorf("CString = %q, %v", s, err)
	}
}
