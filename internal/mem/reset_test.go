package mem

import (
	"bytes"
	"testing"
)

// sealFixture builds a memory that looks like a loaded session: a
// static image at NullGuard, the heap starting right after it, sealed
// with that image as the segment Reset must restore.
func sealFixture(t *testing.T) (*Memory, []byte) {
	t.Helper()
	m := New(1<<20, true)
	image := bytes.Repeat([]byte{0x5a, 0xc3, 0x01, 0x7f}, PageSize) // ~4 pages
	if err := m.WriteBytes(NullGuard, image); err != nil {
		t.Fatal(err)
	}
	m.SetHeapStart((NullGuard + uint64(len(image)) + 15) &^ 15)
	m.Seal(Segment{Base: NullGuard, Bytes: image})
	if !m.Sealed() {
		t.Fatal("Sealed() = false after Seal")
	}
	return m, image
}

// TestResetRestoresPristine runs a "guest turn" that writes everywhere
// it can — over the sealed image, onto the heap, onto the stack — and
// checks Reset returns every byte of the address space to the sealed
// snapshot.
func TestResetRestoresPristine(t *testing.T) {
	m, _ := sealFixture(t)
	pristine := append([]byte(nil), m.data...)
	sp0, brk0 := m.SP(), m.brk

	// Scribble over the sealed image (Store), the heap (Alloc + WriteBytes),
	// and the stack (PushStack + Store), plus a writable view (Bytes).
	if err := m.Store(NullGuard+123, 8, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	a, err := m.Alloc(3 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBytes(a, bytes.Repeat([]byte{0xab}, 3*PageSize)); err != nil {
		t.Fatal(err)
	}
	sp, err := m.PushStack(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store(sp, 8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	view, err := m.Bytes(NullGuard+PageSize, 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(view, bytes.Repeat([]byte{0xee}, 64))

	if m.DirtyPages() == 0 {
		t.Fatal("no dirty pages recorded after writes")
	}
	if n := m.Reset(); n == 0 {
		t.Fatal("Reset restored no pages")
	}
	if !bytes.Equal(m.data, pristine) {
		for i := range m.data {
			if m.data[i] != pristine[i] {
				t.Fatalf("byte %#x differs after Reset: got %#x want %#x", i, m.data[i], pristine[i])
			}
		}
	}
	if m.SP() != sp0 || m.brk != brk0 {
		t.Errorf("allocator not restored: sp %#x/%#x brk %#x/%#x", m.SP(), sp0, m.brk, brk0)
	}
	if m.DirtyPages() != 0 {
		t.Errorf("DirtyPages() = %d after Reset, want 0", m.DirtyPages())
	}
}

// TestResetCostScalesWithDirty pins the tentpole property: reset cost
// is proportional to the pages a run touched, not the address space.
func TestResetCostScalesWithDirty(t *testing.T) {
	m, _ := sealFixture(t)
	heap := m.heapStart

	if err := m.Store(heap, 8, 1); err != nil {
		t.Fatal(err)
	}
	if n := m.Reset(); n != 1 {
		t.Errorf("one-store run reset %d pages, want 1", n)
	}

	const pages = 32
	for i := 0; i < pages; i++ {
		if err := m.Store(heap+uint64(i+1)*PageSize, 8, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.Reset(); n != pages {
		t.Errorf("%d-page run reset %d pages", pages, n)
	}

	// An untouched run costs nothing.
	if n := m.Reset(); n != 0 {
		t.Errorf("idle reset restored %d pages, want 0", n)
	}
}

// TestResetAllocatorDeterminism replays an identical Alloc/Free script
// before and after Reset: the addresses must match exactly, or a reused
// session's heap layout (and therefore its cycle count) would drift
// from a fresh one.
func TestResetAllocatorDeterminism(t *testing.T) {
	m, _ := sealFixture(t)

	// Pre-seal allocations (session setup) must survive Reset: re-seal
	// with a live block and a populated free list.
	setup, err := m.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	tmp, _ := m.Alloc(64)
	if err := m.Free(tmp); err != nil {
		t.Fatal(err)
	}
	m.Seal(Segment{Base: NullGuard, Bytes: make([]byte, 16)})

	script := func() []uint64 {
		var addrs []uint64
		a, _ := m.Alloc(64) // must come from the sealed free list
		b, _ := m.Alloc(4096)
		c, _ := m.Alloc(33)
		addrs = append(addrs, a, b, c)
		m.Free(b)
		d, _ := m.Alloc(4000) // same class as b: reuses its slot
		addrs = append(addrs, d)
		return addrs
	}
	first := script()
	m.Reset()
	second := script()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("alloc %d: %#x before reset, %#x after", i, first[i], second[i])
		}
	}
	// The pre-seal block is still accounted for.
	if err := m.Free(setup); err != nil {
		t.Errorf("pre-seal block lost across Reset: %v", err)
	}
}

// TestResetUnsealedNoop: memories that never sealed (every non-serve
// session) pay nothing and change nothing.
func TestResetUnsealedNoop(t *testing.T) {
	m := New(1<<16, true)
	if err := m.Store(NullGuard, 8, 42); err != nil {
		t.Fatal(err)
	}
	if n := m.Reset(); n != 0 {
		t.Errorf("unsealed Reset = %d, want 0", n)
	}
	if v, _ := m.Load(NullGuard, 8); v != 42 {
		t.Errorf("unsealed Reset clobbered memory: %d", v)
	}
}
