// Package mem provides the flat, byte-addressable memory used by both the
// LLVA reference interpreter and the simulated hardware processor. Memory
// is partitioned into a null-guard page, a static data segment, a code
// segment, a heap growing upward and a stack growing downward — matching
// the paper's model in which memory is partitioned into stack, heap and
// global memory and all memory is explicitly allocated.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Fault describes a memory access violation (the LLVA memory exception).
type Fault struct {
	Addr uint64
	Size int
	Op   string // "load", "store", "exec", "alloc"
}

func (f *Fault) Error() string {
	return fmt.Sprintf("memory fault: %s of %d byte(s) at 0x%x", f.Op, f.Size, f.Addr)
}

// Layout constants for the default address space.
const (
	// NullGuard is the size of the unmapped page at address zero; any
	// access below this address faults, implementing null-pointer
	// detection.
	NullGuard = 0x1000
	// DefaultSize is the default address-space size (64 MiB).
	DefaultSize = 64 << 20
	// PageShift/PageSize set the dirty-tracking granularity (Seal/Reset):
	// one bit per 4 KiB page.
	PageShift = 12
	PageSize  = 1 << PageShift
)

// Segment is a pristine byte range captured by Seal and re-applied over
// dirty pages by Reset (the static data + code image of a machine).
type Segment struct {
	Base  uint64
	Bytes []byte
}

// Memory is a flat address space with a bump-pointer heap and free lists.
type Memory struct {
	data   []byte
	little bool

	heapStart uint64
	brk       uint64
	stackTop  uint64
	sp        uint64

	// free lists per size class (power-of-two classes up to 1 MiB)
	free map[int][]uint64
	// sizes of live heap blocks, for free()
	blockSize map[uint64]uint64

	// Dirty-page tracking, armed by Seal: every mutation marks its pages
	// in the dirty bitmap (and, first time per page, the dirty list), so
	// Reset restores pristine state touching only what the run wrote.
	// Untracked memories (the default) pay one branch per mutation.
	track     bool
	dirty     []uint64 // bitmap, one bit per page
	dirtyList []uint32 // pages marked since the last Reset, unordered

	// State captured by Seal and re-applied by Reset.
	sealed        []Segment
	sealHeapStart uint64
	sealBrk       uint64
	sealSP        uint64
	sealBlocks    map[uint64]uint64 // nil when no heap blocks were live at Seal
	sealFree      map[int][]uint64  // nil when all free lists were empty at Seal
}

// New creates a memory of the given size (0 means DefaultSize) with the
// given byte order. The heap initially starts right after the null guard;
// call SetHeapStart after loading static segments.
func New(size uint64, littleEndian bool) *Memory {
	if size == 0 {
		size = DefaultSize
	}
	m := &Memory{
		data:      make([]byte, size),
		little:    littleEndian,
		heapStart: NullGuard,
		brk:       NullGuard,
		stackTop:  size,
		sp:        size,
		free:      make(map[int][]uint64),
		blockSize: make(map[uint64]uint64),
	}
	return m
}

// Size returns the total address-space size.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

// LittleEndian reports the configured byte order.
func (m *Memory) LittleEndian() bool { return m.little }

// SetHeapStart moves the heap break above the static segments. It must be
// called before any allocation.
func (m *Memory) SetHeapStart(addr uint64) {
	addr = (addr + 15) &^ 15
	m.heapStart = addr
	m.brk = addr
}

// HeapUsed returns the number of heap bytes ever allocated.
func (m *Memory) HeapUsed() uint64 { return m.brk - m.heapStart }

// SP returns the current stack pointer.
func (m *Memory) SP() uint64 { return m.sp }

// SetSP sets the stack pointer (used by call frames). It faults if the
// stack would collide with the heap.
func (m *Memory) SetSP(sp uint64) error {
	if sp > m.stackTop || sp < m.brk+NullGuard {
		return &Fault{Addr: sp, Size: 0, Op: "alloc"}
	}
	m.sp = sp
	return nil
}

// PushStack allocates n bytes on the stack (16-byte aligned) and returns
// the new stack pointer, which is also the address of the allocation.
func (m *Memory) PushStack(n uint64) (uint64, error) {
	sp := (m.sp - n) &^ 15
	if err := m.SetSP(sp); err != nil {
		return 0, err
	}
	return sp, nil
}

func (m *Memory) check(addr uint64, size int, op string) error {
	if addr < NullGuard || addr+uint64(size) > uint64(len(m.data)) || addr+uint64(size) < addr {
		return &Fault{Addr: addr, Size: size, Op: op}
	}
	return nil
}

// Load reads size (1, 2, 4 or 8) bytes at addr as an unsigned integer.
func (m *Memory) Load(addr uint64, size int) (uint64, error) {
	if err := m.check(addr, size, "load"); err != nil {
		return 0, err
	}
	b := m.data[addr : addr+uint64(size)]
	switch size {
	case 1:
		return uint64(b[0]), nil
	case 2:
		if m.little {
			return uint64(binary.LittleEndian.Uint16(b)), nil
		}
		return uint64(binary.BigEndian.Uint16(b)), nil
	case 4:
		if m.little {
			return uint64(binary.LittleEndian.Uint32(b)), nil
		}
		return uint64(binary.BigEndian.Uint32(b)), nil
	case 8:
		if m.little {
			return binary.LittleEndian.Uint64(b), nil
		}
		return binary.BigEndian.Uint64(b), nil
	}
	return 0, &Fault{Addr: addr, Size: size, Op: "load"}
}

// Store writes size (1, 2, 4 or 8) bytes at addr.
func (m *Memory) Store(addr uint64, size int, v uint64) error {
	if err := m.check(addr, size, "store"); err != nil {
		return err
	}
	if m.track {
		m.markDirty(addr, uint64(size))
	}
	b := m.data[addr : addr+uint64(size)]
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		if m.little {
			binary.LittleEndian.PutUint16(b, uint16(v))
		} else {
			binary.BigEndian.PutUint16(b, uint16(v))
		}
	case 4:
		if m.little {
			binary.LittleEndian.PutUint32(b, uint32(v))
		} else {
			binary.BigEndian.PutUint32(b, uint32(v))
		}
	case 8:
		if m.little {
			binary.LittleEndian.PutUint64(b, v)
		} else {
			binary.BigEndian.PutUint64(b, v)
		}
	default:
		return &Fault{Addr: addr, Size: size, Op: "store"}
	}
	return nil
}

// LoadFloat reads a float (size 4) or double (size 8) at addr.
func (m *Memory) LoadFloat(addr uint64, size int) (float64, error) {
	v, err := m.Load(addr, size)
	if err != nil {
		return 0, err
	}
	if size == 4 {
		return float64(math.Float32frombits(uint32(v))), nil
	}
	return math.Float64frombits(v), nil
}

// StoreFloat writes a float (size 4) or double (size 8) at addr.
func (m *Memory) StoreFloat(addr uint64, size int, v float64) error {
	if size == 4 {
		return m.Store(addr, 4, uint64(math.Float32bits(float32(v))))
	}
	return m.Store(addr, 8, math.Float64bits(v))
}

// Bytes returns a direct view of n bytes at addr for bulk access. The
// view is writable, so under dirty tracking the whole range is
// conservatively marked dirty.
func (m *Memory) Bytes(addr, n uint64) ([]byte, error) {
	if err := m.check(addr, int(n), "load"); err != nil {
		return nil, err
	}
	if m.track {
		m.markDirty(addr, n)
	}
	return m.data[addr : addr+n], nil
}

// WriteBytes copies b into memory at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) error {
	if err := m.check(addr, len(b), "store"); err != nil {
		return err
	}
	if m.track {
		m.markDirty(addr, uint64(len(b)))
	}
	copy(m.data[addr:], b)
	return nil
}

// CBytes returns a direct view of the NUL-terminated byte string at
// addr (capped at 1 MiB, like CString) without materializing a Go
// string. The view aliases memory: callers must consume it before the
// guest runs again.
func (m *Memory) CBytes(addr uint64) ([]byte, error) {
	const limit = 1 << 20
	if err := m.check(addr, 1, "load"); err != nil {
		return nil, err
	}
	end := addr
	max := addr + limit
	if max > uint64(len(m.data)) {
		max = uint64(len(m.data))
	}
	for end < max && m.data[end] != 0 {
		end++
	}
	return m.data[addr:end:end], nil
}

// CString reads a NUL-terminated string at addr (capped at 1 MiB).
func (m *Memory) CString(addr uint64) (string, error) {
	const limit = 1 << 20
	if err := m.check(addr, 1, "load"); err != nil {
		return "", err
	}
	end := addr
	max := addr + limit
	if max > uint64(len(m.data)) {
		max = uint64(len(m.data))
	}
	for end < max && m.data[end] != 0 {
		end++
	}
	return string(m.data[addr:end]), nil
}

// sizeClass returns the power-of-two size class index for n, or -1 for
// huge blocks.
func sizeClass(n uint64) int {
	if n > 1<<20 {
		return -1
	}
	c := 0
	s := uint64(16)
	for s < n {
		s <<= 1
		c++
	}
	return c
}

func classSize(c int) uint64 { return 16 << uint(c) }

// Alloc allocates n bytes of heap memory (16-byte aligned, zeroed) and
// returns its address. Allocation of 0 bytes returns a unique non-null
// address.
func (m *Memory) Alloc(n uint64) (uint64, error) {
	if n == 0 {
		n = 1
	}
	if c := sizeClass(n); c >= 0 {
		if lst := m.free[c]; len(lst) > 0 {
			addr := lst[len(lst)-1]
			m.free[c] = lst[:len(lst)-1]
			sz := classSize(c)
			if m.track {
				m.markDirty(addr, sz)
			}
			clear(m.data[addr : addr+sz])
			m.blockSize[addr] = sz
			return addr, nil
		}
		n = classSize(c)
	} else {
		n = (n + 15) &^ 15
	}
	addr := m.brk
	if addr+n > m.sp-NullGuard {
		return 0, &Fault{Addr: addr, Size: int(n), Op: "alloc"}
	}
	m.brk = addr + n
	m.blockSize[addr] = n
	return addr, nil
}

// markDirty records that [addr, addr+n) was (or may have been) written.
// Page-granular and idempotent; the common case — a small store inside
// an already-dirty page — is one shift, one mask test.
func (m *Memory) markDirty(addr, n uint64) {
	if n == 0 {
		return
	}
	for p := uint32(addr >> PageShift); p <= uint32((addr+n-1)>>PageShift); p++ {
		if w, b := p>>6, uint64(1)<<(p&63); m.dirty[w]&b == 0 {
			m.dirty[w] |= b
			m.dirtyList = append(m.dirtyList, p)
		}
	}
}

// Seal snapshots the current memory as the pristine state Reset returns
// to, and arms dirty-page tracking. segs name the byte ranges whose
// content must be restored (static data and installed code); everything
// outside them is zero at seal time by construction — sealing happens
// after image load and code install, before the first run — so Reset
// only has to zero dirty pages and re-copy the segments over them.
// Allocator state (heap break, SP, free lists) is captured too.
func (m *Memory) Seal(segs ...Segment) {
	m.sealed = m.sealed[:0]
	for _, s := range segs {
		m.sealed = append(m.sealed, Segment{Base: s.Base, Bytes: append([]byte(nil), s.Bytes...)})
	}
	m.sealHeapStart = m.heapStart
	m.sealBrk = m.brk
	m.sealSP = m.sp
	m.sealBlocks = nil
	if len(m.blockSize) > 0 {
		m.sealBlocks = make(map[uint64]uint64, len(m.blockSize))
		for a, sz := range m.blockSize {
			m.sealBlocks[a] = sz
		}
	}
	m.sealFree = nil
	for c, lst := range m.free {
		if len(lst) == 0 {
			continue
		}
		if m.sealFree == nil {
			m.sealFree = make(map[int][]uint64)
		}
		m.sealFree[c] = append([]uint64(nil), lst...)
	}
	pages := (len(m.data) + PageSize - 1) / PageSize
	if len(m.dirty) == 0 {
		m.dirty = make([]uint64, (pages+63)/64)
	}
	clear(m.dirty)
	m.dirtyList = m.dirtyList[:0]
	m.track = true
}

// Sealed reports whether Seal has armed dirty-page tracking.
func (m *Memory) Sealed() bool { return m.track }

// Reset restores the memory to its sealed pristine state, touching only
// dirty pages: each is zeroed, then any sealed segment bytes overlapping
// it are re-copied. Allocator state rolls back to the Seal snapshot. It
// returns the number of dirty pages restored — the unit reset cost
// scales with. Reset on an unsealed memory is a no-op.
func (m *Memory) Reset() int {
	if !m.track {
		return 0
	}
	n := len(m.dirtyList)
	for _, p := range m.dirtyList {
		lo := uint64(p) << PageShift
		hi := lo + PageSize
		if hi > uint64(len(m.data)) {
			hi = uint64(len(m.data))
		}
		clear(m.data[lo:hi])
		for _, s := range m.sealed {
			sLo, sHi := s.Base, s.Base+uint64(len(s.Bytes))
			if sHi <= lo || sLo >= hi {
				continue
			}
			cLo, cHi := max(lo, sLo), min(hi, sHi)
			copy(m.data[cLo:cHi], s.Bytes[cLo-sLo:cHi-sLo])
		}
		m.dirty[p>>6] &^= 1 << (p & 63)
	}
	m.dirtyList = m.dirtyList[:0]
	m.heapStart = m.sealHeapStart
	m.brk = m.sealBrk
	m.sp = m.sealSP
	clear(m.blockSize)
	for a, sz := range m.sealBlocks {
		m.blockSize[a] = sz
	}
	for c, lst := range m.free {
		m.free[c] = lst[:0]
	}
	for c, lst := range m.sealFree {
		m.free[c] = append(m.free[c], lst...)
	}
	return n
}

// DirtyPages returns the number of pages written since Seal (or the
// last Reset); 0 when tracking is off.
func (m *Memory) DirtyPages() int { return len(m.dirtyList) }

// Free releases a heap block previously returned by Alloc. Freeing null is
// a no-op; freeing an unknown address faults.
func (m *Memory) Free(addr uint64) error {
	if addr == 0 {
		return nil
	}
	sz, ok := m.blockSize[addr]
	if !ok {
		return &Fault{Addr: addr, Size: 0, Op: "alloc"}
	}
	delete(m.blockSize, addr)
	if c := sizeClass(sz); c >= 0 && classSize(c) == sz {
		m.free[c] = append(m.free[c], addr)
	}
	return nil
}
