package trace

import (
	"strings"
	"testing"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/machine"
	"llva/internal/mem"
	"llva/internal/minic"
	"llva/internal/rt"
	"llva/internal/target"
)

const hotLoopProg = `
static int step(int x) {
	if (x % 2 == 0) return x / 2;
	return 3 * x + 1;
}
int main() {
	int i, total = 0;
	for (i = 1; i <= 200; i++) {
		int n = i;
		while (n != 1) { n = step(n); total++; }
	}
	print_int(total); print_nl();
	return 0;
}
`

func profileOf(t *testing.T, m *core.Module) (*interp.Profile, string) {
	t.Helper()
	prof := interp.NewProfile()
	var out strings.Builder
	ip, err := interp.New(m, &out, interp.WithProfile(prof))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.RunMain(); err != nil {
		t.Fatal(err)
	}
	return prof, out.String()
}

func TestTraceFormation(t *testing.T) {
	m, err := minic.Compile("hot.c", hotLoopProg)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := profileOf(t, m)
	traces := Form(m, prof, Options{})
	if len(traces) == 0 {
		t.Fatal("no traces formed on a loop-dominated program")
	}
	st := Summarize(prof, traces)
	if st.Coverage < 0.5 {
		t.Errorf("trace coverage = %.2f, want >= 0.5 for a hot loop\n%s",
			st.Coverage, Describe(traces))
	}
	if st.CrossProcedure == 0 {
		t.Errorf("expected at least one cross-procedure trace (step() is hot)\n%s",
			Describe(traces))
	}
}

func runCycles(t *testing.T, m *core.Module, d *target.Desc) (uint64, string) {
	t.Helper()
	tr, err := codegen.New(d, m)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tr.TranslateModule()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	env := rt.NewEnv(mem.New(0, true), &out)
	mc, err := machine.New(d, m, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.LoadObject(obj); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Run("main"); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	return mc.Stats.Cycles, out.String()
}

// TestTraceLayoutPreservesSemanticsAndHelps re-lays out the hot program
// and checks it still verifies, produces identical output, and does not
// regress cycle counts (taken branches cost extra on the machine).
func TestTraceLayoutPreservesSemanticsAndHelps(t *testing.T) {
	base, err := minic.Compile("hot.c", hotLoopProg)
	if err != nil {
		t.Fatal(err)
	}
	baseCycles, baseOut := runCycles(t, base, target.VSPARC)

	opt, err := minic.Compile("hot.c", hotLoopProg)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := profileOf(t, opt)
	traces := Form(opt, prof, Options{})
	moved := ApplyLayout(opt, traces)
	if moved == 0 {
		t.Fatal("layout moved nothing")
	}
	if err := core.Verify(opt); err != nil {
		t.Fatalf("verify after relayout: %v", err)
	}
	optCycles, optOut := runCycles(t, opt, target.VSPARC)
	if optOut != baseOut {
		t.Fatalf("relayout changed program output: %q vs %q", optOut, baseOut)
	}
	if optCycles > baseCycles+baseCycles/50 {
		t.Errorf("trace layout regressed cycles: %d -> %d", baseCycles, optCycles)
	}
	t.Logf("cycles: %d -> %d (%.2f%%)", baseCycles, optCycles,
		100*float64(int64(baseCycles)-int64(optCycles))/float64(baseCycles))
}

func TestTracesStopAtColdBranches(t *testing.T) {
	src := `
int main() {
	int i, acc = 0;
	for (i = 0; i < 1000; i++) {
		if (i == 500) acc += 1000;   /* cold path */
		else acc += 1;
	}
	print_int(acc); print_nl();
	return 0;
}`
	m, err := minic.Compile("cold.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := profileOf(t, m)
	traces := Form(m, prof, Options{})
	for _, tr := range traces {
		for _, bb := range tr.Blocks {
			if prof.Block[bb] < 50 {
				t.Errorf("trace includes cold block %s (%d executions)",
					bb.Name(), prof.Block[bb])
			}
		}
	}
}
