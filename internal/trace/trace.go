// Package trace implements the software trace cache of the paper's
// Section 4.2: using the explicit CFG plus runtime profile information,
// it identifies hot traces — frequently executed paths through basic
// blocks, potentially crossing procedure boundaries through direct calls
// — and re-lays out function bodies so hot paths run straight-line. The
// LLVA representation makes this easy precisely because the CFG is
// available at run time: no interpretation or binary-level reconstruction
// is needed (contrast with Dynamo, as the paper notes).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"llva/internal/core"
	"llva/internal/interp"
)

// Trace is one hot path through the program.
type Trace struct {
	// Blocks is the path, in execution order. Blocks may belong to
	// different functions when the trace crosses a call.
	Blocks []*core.BasicBlock
	// Heat is the execution count of the seed block.
	Heat uint64
	// CrossProcedure marks traces that follow a direct call into the
	// callee's entry block.
	CrossProcedure bool
}

// Options tunes trace formation.
type Options struct {
	// MinHeat is the minimum seed block execution count (default 50).
	MinHeat uint64
	// MinBranchProb is the minimum probability of the followed successor
	// edge (default 0.6).
	MinBranchProb float64
	// MaxBlocks bounds trace length (default 16).
	MaxBlocks int
	// NoFollowCalls disables cross-procedure traces.
	NoFollowCalls bool
}

func (o *Options) defaults() {
	if o.MinHeat == 0 {
		o.MinHeat = 50
	}
	if o.MinBranchProb == 0 {
		o.MinBranchProb = 0.6
	}
	if o.MaxBlocks == 0 {
		o.MaxBlocks = 16
	}
}

// Form grows traces from hot seed blocks, following the most likely
// successor edge while it stays probable enough, stopping at blocks
// already claimed by another trace (the standard most-frequently-used
// trace-formation heuristic).
func Form(m *core.Module, prof *interp.Profile, opts Options) []*Trace {
	opts.defaults()

	// Seeds: blocks sorted by heat.
	type seed struct {
		bb   *core.BasicBlock
		heat uint64
	}
	var seeds []seed
	for bb, n := range prof.Block {
		if n >= opts.MinHeat {
			seeds = append(seeds, seed{bb, n})
		}
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].heat != seeds[j].heat {
			return seeds[i].heat > seeds[j].heat
		}
		return seeds[i].bb.Name() < seeds[j].bb.Name()
	})

	claimed := make(map[*core.BasicBlock]bool)
	var traces []*Trace
	for _, s := range seeds {
		if claimed[s.bb] {
			continue
		}
		tr := &Trace{Heat: s.heat}
		cur := s.bb
		for len(tr.Blocks) < opts.MaxBlocks && cur != nil && !claimed[cur] {
			claimed[cur] = true
			tr.Blocks = append(tr.Blocks, cur)
			next, cross := nextBlock(cur, prof, opts)
			if cross {
				tr.CrossProcedure = true
			}
			cur = next
		}
		if len(tr.Blocks) >= 2 {
			traces = append(traces, tr)
		}
	}
	return traces
}

// nextBlock picks the most probable successor of bb (or the entry of a
// hot direct callee), when probable enough.
func nextBlock(bb *core.BasicBlock, prof *interp.Profile, opts Options) (*core.BasicBlock, bool) {
	total := prof.Block[bb]
	if total == 0 {
		return nil, false
	}
	// Cross-procedure extension: a block whose body is dominated by one
	// hot direct call can extend the trace into the callee (paper: "the
	// ability to gather cross-procedure traces").
	if !opts.NoFollowCalls {
		for _, in := range bb.Instructions() {
			if in.Op() != core.OpCall {
				continue
			}
			callee := in.CalledFunction()
			if callee == nil || callee.IsDeclaration() || callee.IsIntrinsic() {
				continue
			}
			calls := prof.Call[callee]
			if calls > 0 && float64(calls) >= float64(total)*opts.MinBranchProb &&
				prof.Block[callee.Entry()] >= opts.MinHeat {
				return callee.Entry(), true
			}
		}
	}
	var best *core.BasicBlock
	var bestN uint64
	for _, succ := range bb.Successors() {
		n := prof.Edge[interp.Edge{From: bb, To: succ}]
		if n > bestN {
			best, bestN = succ, n
		}
	}
	if best == nil || float64(bestN) < float64(total)*opts.MinBranchProb {
		return nil, false
	}
	return best, false
}

// ApplyLayout reorders each function's blocks so that intra-procedural
// trace segments are contiguous in layout order: the translator's
// fallthrough elision then removes the jumps between them, turning hot
// paths into straight-line native code.
func ApplyLayout(m *core.Module, traces []*Trace) int {
	moved := 0
	for _, f := range m.Functions {
		if f.IsDeclaration() {
			continue
		}
		order := layoutOrder(f, traces)
		if order != nil {
			f.Blocks = order
			moved++
		}
	}
	return moved
}

func layoutOrder(f *core.Function, traces []*Trace) []*core.BasicBlock {
	inFunc := make(map[*core.BasicBlock]bool, len(f.Blocks))
	for _, bb := range f.Blocks {
		inFunc[bb] = true
	}
	placed := make(map[*core.BasicBlock]bool, len(f.Blocks))
	var order []*core.BasicBlock
	add := func(bb *core.BasicBlock) {
		if !placed[bb] {
			placed[bb] = true
			order = append(order, bb)
		}
	}
	// The entry block must stay first.
	add(f.Entry())
	changed := false
	for _, tr := range traces {
		for _, bb := range tr.Blocks {
			if inFunc[bb] {
				if !placed[bb] {
					changed = true
				}
				add(bb)
			}
		}
	}
	if !changed {
		return nil
	}
	for _, bb := range f.Blocks {
		add(bb)
	}
	return order
}

// Stats summarizes a set of traces against a profile.
type Stats struct {
	Traces         int
	CrossProcedure int
	BlocksCovered  int
	// Coverage is the fraction of dynamic block executions that fall in
	// some trace.
	Coverage float64
}

// Summarize computes coverage statistics.
func Summarize(prof *interp.Profile, traces []*Trace) Stats {
	var s Stats
	s.Traces = len(traces)
	inTrace := make(map[*core.BasicBlock]bool)
	for _, tr := range traces {
		if tr.CrossProcedure {
			s.CrossProcedure++
		}
		for _, bb := range tr.Blocks {
			inTrace[bb] = true
		}
	}
	s.BlocksCovered = len(inTrace)
	var total, covered uint64
	for bb, n := range prof.Block {
		total += n
		if inTrace[bb] {
			covered += n
		}
	}
	if total > 0 {
		s.Coverage = float64(covered) / float64(total)
	}
	return s
}

// Describe renders traces for logs and tools.
func Describe(traces []*Trace) string {
	var b strings.Builder
	for i, tr := range traces {
		fmt.Fprintf(&b, "trace %d (heat %d", i, tr.Heat)
		if tr.CrossProcedure {
			b.WriteString(", cross-procedure")
		}
		b.WriteString("): ")
		for j, bb := range tr.Blocks {
			if j > 0 {
				b.WriteString(" -> ")
			}
			fmt.Fprintf(&b, "%s/%s", bb.Parent().Name(), bb.Name())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
