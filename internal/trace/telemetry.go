package trace

import "llva/internal/telemetry"

// Export publishes the trace-cache state as llee.trace.* gauges.
// Coverage is scaled to whole percent (gauges are integral).
func (s Stats) Export(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("llee.trace.count").Set(int64(s.Traces))
	reg.Gauge("llee.trace.blocks_covered").Set(int64(s.BlocksCovered))
	reg.Gauge("llee.trace.cross_procedure").Set(int64(s.CrossProcedure))
	reg.Gauge("llee.trace.coverage_pct").Set(int64(s.Coverage * 100))
}
