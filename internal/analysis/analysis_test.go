package analysis

import (
	"testing"

	"llva/internal/asm"
	"llva/internal/core"
)

func parse(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := asm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

const diamond = `
int %f(bool %c) {
entry:
    br bool %c, label %left, label %right
left:
    br label %join
right:
    br label %join
join:
    %v = phi int [ 1, %left ], [ 2, %right ]
    ret int %v
}
`

func TestDominatorsDiamond(t *testing.T) {
	m := parse(t, diamond)
	f := m.Function("f")
	dt := NewDomTree(f)
	idx := dt.CFG.Index
	entry := idx[f.Block("entry")]
	left := idx[f.Block("left")]
	right := idx[f.Block("right")]
	join := idx[f.Block("join")]

	if dt.IDom[join] != entry {
		t.Errorf("idom(join) = %d, want entry", dt.IDom[join])
	}
	if !dt.Dominates(entry, join) || !dt.Dominates(entry, left) {
		t.Error("entry must dominate everything")
	}
	if dt.Dominates(left, join) || dt.Dominates(right, join) {
		t.Error("neither branch arm dominates the join")
	}
	if !dt.Dominates(join, join) {
		t.Error("dominance must be reflexive")
	}

	// Dominance frontiers: left and right have {join}; entry has none.
	df := dt.Frontiers()
	if len(df[left]) != 1 || df[left][0] != join {
		t.Errorf("DF(left) = %v, want {join}", df[left])
	}
	if len(df[right]) != 1 || df[right][0] != join {
		t.Errorf("DF(right) = %v, want {join}", df[right])
	}
	if len(df[entry]) != 0 {
		t.Errorf("DF(entry) = %v, want empty", df[entry])
	}
}

const loopNest = `
void %f(int %n) {
entry:
    br label %outer
outer:
    %i = phi int [ 0, %entry ], [ %i2, %outer.latch ]
    br label %inner
inner:
    %j = phi int [ 0, %outer ], [ %j2, %inner ]
    %j2 = add int %j, 1
    %jd = setge int %j2, %n
    br bool %jd, label %outer.latch, label %inner
outer.latch:
    %i2 = add int %i, 1
    %id = setge int %i2, %n
    br bool %id, label %exit, label %outer
exit:
    ret void
}
`

func TestLoopNest(t *testing.T) {
	m := parse(t, loopNest)
	f := m.Function("f")
	dt := NewDomTree(f)
	li := NewLoopInfo(dt)
	if len(li.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(li.Loops))
	}
	idx := dt.CFG.Index
	inner := idx[f.Block("inner")]
	outer := idx[f.Block("outer")]
	if got := li.Depth(inner); got != 2 {
		t.Errorf("depth(inner) = %d, want 2", got)
	}
	if got := li.Depth(outer); got != 1 {
		t.Errorf("depth(outer) = %d, want 1", got)
	}
	if got := li.Depth(idx[f.Block("exit")]); got != 0 {
		t.Errorf("depth(exit) = %d, want 0", got)
	}
	innerLoop := li.LoopOf[inner]
	if innerLoop.Parent == nil || innerLoop.Parent.Header != outer {
		t.Error("inner loop not nested in outer")
	}
}

const callgraphSrc = `
declare void %print_int(long %v)

int %leaf(int %x) {
entry:
    ret int %x
}
int %middle(int %x) {
entry:
    %r = call int %leaf(int %x)
    ret int %r
}
int %viaPtr(int (int)* %fn, int %x) {
entry:
    %r = call int %fn(int %x)
    ret int %r
}
int %main() {
entry:
    %a = call int %middle(int 1)
    %b = call int %viaPtr(int (int)* %leaf, int 2)
    %s = add int %a, %b
    ret int %s
}
`

func TestCallGraph(t *testing.T) {
	m := parse(t, callgraphSrc)
	cg := NewCallGraph(m)
	leaf := m.Function("leaf")
	middle := m.Function("middle")
	mainF := m.Function("main")
	viaPtr := m.Function("viaPtr")

	if !cg.AddressTaken[leaf] {
		t.Error("leaf's address escapes (passed to viaPtr)")
	}
	if cg.AddressTaken[middle] {
		t.Error("middle's address never escapes")
	}
	has := func(from, to *core.Function) bool {
		for _, f := range cg.Callees[from] {
			if f == to {
				return true
			}
		}
		return false
	}
	if !has(middle, leaf) || !has(mainF, middle) || !has(mainF, viaPtr) {
		t.Error("direct call edges missing")
	}
	// The indirect call in viaPtr conservatively targets the
	// address-taken, signature-matching leaf.
	if !has(viaPtr, leaf) {
		t.Error("indirect call edge to address-taken candidate missing")
	}
}

const aliasSrc = `
%struct.P = type { long, long }
long %f(%struct.P* %p, long* %q) {
entry:
    %a = alloca long
    %b = alloca long
    %f0 = getelementptr %struct.P* %p, long 0, ubyte 0
    %f1 = getelementptr %struct.P* %p, long 0, ubyte 1
    %f0b = getelementptr %struct.P* %p, long 0, ubyte 0
    store long 1, long* %a
    store long 2, long* %b
    %v = load long* %f0
    ret long %v
}
`

func TestAlias(t *testing.T) {
	m := parse(t, aliasSrc)
	f := m.Function("f")
	ins := f.Entry().Instructions()
	a, b := ins[0], ins[1]
	f0, f1, f0b := ins[2], ins[3], ins[4]

	if Alias(a, b) != NoAlias {
		t.Error("distinct allocas must not alias")
	}
	if Alias(f0, f1) != NoAlias {
		t.Error("distinct struct fields must not alias")
	}
	if Alias(f0, f0b) != MustAlias {
		t.Error("identical constant GEPs must alias")
	}
	if Alias(a, f.Params[0]) != NoAlias {
		t.Error("non-escaping alloca cannot alias an incoming pointer")
	}
	if Alias(f.Params[0], f.Params[1]) != MayAlias {
		t.Error("two unknown pointers may alias")
	}
}

const escapeSrc = `
declare void %sink(long* %p)
long %f() {
entry:
    %kept = alloca long
    %leaked = alloca long
    store long 1, long* %kept
    call void %sink(long* %leaked)
    %v = load long* %kept
    ret long %v
}
`

func TestEscapes(t *testing.T) {
	m := parse(t, escapeSrc)
	ins := m.Function("f").Entry().Instructions()
	kept, leaked := ins[0], ins[1]
	if Escapes(kept) {
		t.Error("kept alloca does not escape")
	}
	if !Escapes(leaked) {
		t.Error("alloca passed to a call escapes")
	}
}

func TestLivenessAcrossBlocks(t *testing.T) {
	m := parse(t, diamond)
	f := m.Function("f")
	cfg := NewCFG(f)
	lv := NewLiveness(cfg)
	entry := cfg.Index[f.Block("entry")]
	// The condition parameter is live into entry.
	if !lv.LiveIn[entry][f.Params[0]] {
		t.Error("parameter not live-in at entry")
	}
	// Phi semantics: the phi's result is defined in join; nothing is
	// live-out of join.
	join := cfg.Index[f.Block("join")]
	if len(lv.LiveOut[join]) != 0 {
		t.Errorf("join has live-out values: %v", lv.LiveOut[join])
	}
}

func TestPostOrderAndReachability(t *testing.T) {
	src := `
void %f() {
entry:
    ret void
orphan:
    ret void
}
`
	m := parse(t, src)
	cfg := NewCFG(m.Function("f"))
	if cfg.Reachable[1] {
		t.Error("orphan block marked reachable")
	}
	po := cfg.PostOrder()
	if len(po) != 1 || po[0] != 0 {
		t.Errorf("post order = %v, want [0]", po)
	}
}
