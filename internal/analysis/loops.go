package analysis

import "llva/internal/core"

// Loop describes one natural loop.
type Loop struct {
	// Header is the loop header block index.
	Header int
	// Blocks are the indices of all blocks in the loop (including the
	// header).
	Blocks []int
	// Latches are the blocks with back edges to the header.
	Latches []int
	// Parent is the enclosing loop, or nil.
	Parent *Loop
	// Depth is the nesting depth (outermost = 1).
	Depth int
}

// Contains reports whether the loop contains block b.
func (l *Loop) Contains(b int) bool {
	for _, x := range l.Blocks {
		if x == b {
			return true
		}
	}
	return false
}

// LoopInfo is the loop nest of a function.
type LoopInfo struct {
	CFG   *CFG
	Loops []*Loop
	// LoopOf[b] is the innermost loop containing block b, or nil.
	LoopOf []*Loop
}

// NewLoopInfo finds all natural loops using back edges in the dominator
// tree.
func NewLoopInfo(dt *DomTree) *LoopInfo {
	c := dt.CFG
	n := len(c.Blocks)
	li := &LoopInfo{CFG: c, LoopOf: make([]*Loop, n)}

	// Find back edges: s -> h where h dominates s.
	headerLoops := make(map[int]*Loop)
	for s := 0; s < n; s++ {
		if !c.Reachable[s] {
			continue
		}
		for _, h := range c.Succs[s] {
			if !dt.Dominates(h, s) {
				continue
			}
			l := headerLoops[h]
			if l == nil {
				l = &Loop{Header: h}
				headerLoops[h] = l
				li.Loops = append(li.Loops, l)
			}
			l.Latches = append(l.Latches, s)
		}
	}

	// Collect loop bodies: backwards reachability from each latch,
	// stopping at the header.
	for _, l := range li.Loops {
		in := make(map[int]bool)
		in[l.Header] = true
		var stack []int
		for _, latch := range l.Latches {
			if !in[latch] {
				in[latch] = true
				stack = append(stack, latch)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range c.Preds[b] {
				if c.Reachable[p] && !in[p] {
					in[p] = true
					stack = append(stack, p)
				}
			}
		}
		for b := range in {
			l.Blocks = append(l.Blocks, b)
		}
	}

	// Nesting: a loop is inside another if its header is in the other's
	// body (and they differ). Assign innermost loop per block.
	for _, l := range li.Loops {
		for _, other := range li.Loops {
			if l == other || !other.Contains(l.Header) {
				continue
			}
			// other contains l; pick the smallest such container.
			if l.Parent == nil || len(other.Blocks) < len(l.Parent.Blocks) {
				l.Parent = other
			}
		}
	}
	for _, l := range li.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	for _, l := range li.Loops {
		for _, b := range l.Blocks {
			if li.LoopOf[b] == nil || l.Depth > li.LoopOf[b].Depth {
				li.LoopOf[b] = l
			}
		}
	}
	return li
}

// Depth returns the loop nesting depth of block b (0 = not in a loop).
func (li *LoopInfo) Depth(b int) int {
	if li.LoopOf[b] == nil {
		return 0
	}
	return li.LoopOf[b].Depth
}

// CallGraph maps each function to the functions it may call. Indirect
// calls through function pointers conservatively target every
// address-taken function with a matching signature — the kind of
// call-graph precision the LLVA type system makes possible (Section 5.1).
type CallGraph struct {
	M *core.Module
	// Callees[f] lists the possible callees of f.
	Callees map[*core.Function][]*core.Function
	// Callers is the reverse relation.
	Callers map[*core.Function][]*core.Function
	// AddressTaken reports functions whose address escapes.
	AddressTaken map[*core.Function]bool
}

// NewCallGraph builds the call graph of m.
func NewCallGraph(m *core.Module) *CallGraph {
	cg := &CallGraph{
		M:            m,
		Callees:      make(map[*core.Function][]*core.Function),
		Callers:      make(map[*core.Function][]*core.Function),
		AddressTaken: make(map[*core.Function]bool),
	}
	// Address-taken: any use of a function that is not the callee operand
	// of a call/invoke, plus global initializers.
	for _, f := range m.Functions {
		for _, u := range f.Uses() {
			if (u.User.Op() == core.OpCall || u.User.Op() == core.OpInvoke) && u.Index == 0 {
				continue
			}
			cg.AddressTaken[f] = true
		}
	}
	var scanConst func(c *core.Constant)
	scanConst = func(c *core.Constant) {
		if c == nil {
			return
		}
		if c.CK == core.ConstGlobal {
			if f, ok := c.Ref.(*core.Function); ok {
				cg.AddressTaken[f] = true
			}
		}
		for _, e := range c.Elems {
			scanConst(e)
		}
	}
	for _, g := range m.Globals {
		scanConst(g.Init)
	}

	addEdge := func(from, to *core.Function) {
		cg.Callees[from] = append(cg.Callees[from], to)
		cg.Callers[to] = append(cg.Callers[to], from)
	}
	for _, f := range m.Functions {
		seen := make(map[*core.Function]bool)
		for _, bb := range f.Blocks {
			for _, in := range bb.Instructions() {
				if in.Op() != core.OpCall && in.Op() != core.OpInvoke {
					continue
				}
				if callee := in.CalledFunction(); callee != nil {
					if !seen[callee] {
						seen[callee] = true
						addEdge(f, callee)
					}
					continue
				}
				// Indirect: all address-taken functions of this type.
				sig := in.Callee().Type().Elem()
				for _, cand := range m.Functions {
					if cg.AddressTaken[cand] && cand.Signature() == sig && !seen[cand] {
						seen[cand] = true
						addEdge(f, cand)
					}
				}
			}
		}
	}
	return cg
}
